package pdm

import (
	"testing"
	"time"
)

// TestEndToEndDefaultPipeline exercises the public API exactly as the
// README's quick start does: generate a small fleet, run the default
// pipeline over a failing vehicle, and check the alarms make sense.
func TestEndToEndDefaultPipeline(t *testing.T) {
	fleet := NewFleet(SmallFleetConfig())
	if len(fleet.Records) == 0 || len(fleet.Events) == 0 {
		t.Fatal("fleet generation produced no data")
	}

	// Pick a vehicle with a recorded failure.
	var target string
	var failAt time.Time
	for _, ev := range fleet.Events {
		if ev.Type == EventRepair {
			target = ev.VehicleID
			failAt = ev.Time
			break
		}
	}
	if target == "" {
		t.Fatal("no recorded failures in small fleet")
	}

	p, err := NewDefaultPipeline(target)
	if err != nil {
		t.Fatal(err)
	}
	var alarms []Alarm
	evIdx := 0
	for _, rec := range fleet.Records {
		for evIdx < len(fleet.Events) && !fleet.Events[evIdx].Time.After(rec.Time) {
			p.HandleEvent(fleet.Events[evIdx])
			evIdx++
		}
		a, err := p.HandleRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		alarms = append(alarms, a...)
	}
	for _, a := range alarms {
		if a.VehicleID != target {
			t.Fatalf("alarm for wrong vehicle: %+v", a)
		}
		if a.Feature == "" {
			t.Error("alarm lacks feature explanation")
		}
	}

	// Metric plumbing via the public API.
	m := Evaluate(ConsolidateDaily(alarms), fleet.Events, 30*24*time.Hour)
	if m.TotalFailures < 1 {
		t.Fatalf("evaluation found no failures: %+v", m)
	}
	_ = failAt
}

// TestPublicConstructors ensures every exported constructor produces a
// working component.
func TestPublicConstructors(t *testing.T) {
	for _, kind := range []TransformKind{Correlation, Raw, Delta, MeanAgg, Histogram, Spectral} {
		tr, err := NewTransformer(kind, 10)
		if err != nil {
			t.Fatalf("NewTransformer(%v): %v", kind, err)
		}
		if tr.Dim() <= 0 {
			t.Errorf("%v: non-positive dim", kind)
		}
	}
	names := []string{"a", "b", "c"}
	ref := [][]float64{{1, 2, 3}, {2, 3, 4}, {3, 4, 5}, {1.5, 2.5, 3.5}}
	dets := []Detector{
		NewClosestPair(names),
		NewGrand(GrandConfig{Measure: GrandKNN}),
		NewTranAD(TranADConfig{Epochs: 1, Window: 2}),
		NewXGBoost(names, GBTConfig{NumTrees: 5}),
	}
	for _, d := range dets {
		if err := d.Fit(ref); err != nil {
			t.Fatalf("%s: Fit: %v", d.Name(), err)
		}
		s, err := d.Score([]float64{1, 2, 3})
		if err != nil {
			t.Fatalf("%s: Score: %v", d.Name(), err)
		}
		if len(s) != d.Channels() {
			t.Errorf("%s: %d scores for %d channels", d.Name(), len(s), d.Channels())
		}
	}
	if th := NewSelfTuningThreshold(3); th == nil {
		t.Fatal("nil self-tuning threshold")
	}
	if th := NewConstantThreshold(0.9); th == nil {
		t.Fatal("nil constant threshold")
	}
}

// TestRunVehicleHelper checks the batch driver on the public surface.
func TestRunVehicleHelper(t *testing.T) {
	fleet := NewFleet(SmallFleetConfig())
	vehicle := fleet.AllVehicleIDs()[0]
	makeCfg := func() PipelineConfig {
		tr, _ := NewTransformer(Correlation, 12)
		return PipelineConfig{
			Transformer:   tr,
			Detector:      NewClosestPair(tr.FeatureNames()),
			Thresholder:   NewSelfTuningThreshold(10),
			ProfileLength: 30,
		}
	}
	alarms, err := RunVehicle(vehicle, fleet.Records, fleet.Events, makeCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range alarms {
		if a.VehicleID != vehicle {
			t.Fatal("alarm for wrong vehicle")
		}
	}
}
