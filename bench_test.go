package pdm

// Benchmark harness: one testing.B benchmark per paper table and figure,
// plus ablation benches for the design choices DESIGN.md calls out.
//
// The benchmarks run at the small fleet scale so `go test -bench=.`
// completes in minutes; `cmd/navarchos-bench` regenerates the exhibits
// at the larger bench scale. Wall-clock numbers per technique ×
// transform (Table 1) come from the BenchmarkTable1/* sub-benchmarks.

import (
	"io"
	"sync"
	"testing"
	"time"

	"github.com/navarchos/pdm/internal/core"
	"github.com/navarchos/pdm/internal/eval"
	"github.com/navarchos/pdm/internal/experiments"
	"github.com/navarchos/pdm/internal/fleetsim"
	"github.com/navarchos/pdm/internal/transform"
)

var (
	benchFleetOnce sync.Once
	benchFleet     *fleetsim.Fleet
	benchGridOnce  sync.Once
	benchGrid      *eval.GridResult
)

// fleetForBench generates the shared small fleet once.
func fleetForBench(b *testing.B) *fleetsim.Fleet {
	b.Helper()
	benchFleetOnce.Do(func() {
		benchFleet = fleetsim.Generate(fleetsim.SmallConfig())
	})
	return benchFleet
}

// gridForBench computes the shared small comparison grid once.
func gridForBench(b *testing.B) *eval.GridResult {
	b.Helper()
	f := fleetForBench(b)
	benchGridOnce.Do(func() {
		g, err := eval.RunGrid(eval.GridSpec{
			Records: f.Records,
			Events:  f.Events,
			Settings: map[string][]string{
				experiments.Setting26: f.EventVehicleIDs(),
				experiments.Setting40: f.AllVehicleIDs(),
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		benchGrid = g
	})
	return benchGrid
}

func benchOpts(b *testing.B) *experiments.Options {
	return &experiments.Options{Fleet: fleetForBench(b)}
}

// BenchmarkFleetGeneration measures the synthetic-dataset substrate.
func BenchmarkFleetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fleetsim.Generate(fleetsim.SmallConfig())
	}
}

// BenchmarkFigure1 regenerates the DTC/event timeline exhibit.
func BenchmarkFigure1(b *testing.B) {
	opts := benchOpts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1(opts)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

// BenchmarkFigure2 regenerates the clustering + LOF outlier exhibit.
func BenchmarkFigure2(b *testing.B) {
	opts := benchOpts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure2(opts, 1200)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

// BenchmarkFigures45 regenerates the technique × transformation grid
// figures from the shared grid.
func BenchmarkFigures45(b *testing.B) {
	opts := benchOpts(b)
	opts.Grid = gridForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figures45(opts)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard, experiments.Setting40)
		r.Render(io.Discard, experiments.Setting26)
	}
}

// BenchmarkFigure6 ranks the data transformations (critical diagrams).
func BenchmarkFigure6(b *testing.B) {
	opts := benchOpts(b)
	opts.Grid = gridForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure6(opts)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

// BenchmarkFigure7 ranks the detection techniques (critical diagrams).
func BenchmarkFigure7(b *testing.B) {
	opts := benchOpts(b)
	opts.Grid = gridForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7(opts)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

// BenchmarkTable1 measures the Table 1 grid directly: the wall-clock of
// a full fit-and-score pass for every technique × transformation. The
// per-sub-benchmark ns/op values ARE the repository's Table 1.
func BenchmarkTable1(b *testing.B) {
	f := fleetForBench(b)
	for _, tech := range eval.PaperTechniques() {
		for _, kind := range transform.PaperKinds() {
			b.Run(tech.String()+"_"+kind.String(), func(b *testing.B) {
				spec := eval.GridSpec{
					Records:  f.Records,
					Events:   f.Events,
					Settings: map[string][]string{"s": f.EventVehicleIDs()},
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eval.CollectTraceSet(spec, tech, kind); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable2 regenerates the complete-solution analytic table.
func BenchmarkTable2(b *testing.B) {
	opts := benchOpts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(opts)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

// BenchmarkTable3 regenerates the reset-policy ablation table.
func BenchmarkTable3(b *testing.B) {
	opts := benchOpts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3(opts)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

// BenchmarkFigure8 regenerates the per-feature score trace exhibit.
func BenchmarkFigure8(b *testing.B) {
	opts := benchOpts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8(opts, "")
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

// --- ablation benches for DESIGN.md's called-out choices ---------------

// ablate runs closest-pair on correlations over the small fleet with the
// given window/profile/reset policy and reports best-F0.5 as a metric.
func ablate(b *testing.B, window, profile int, policy core.ResetPolicy) {
	b.Helper()
	f := fleetForBench(b)
	spec := eval.GridSpec{
		Records:         f.Records,
		Events:          f.Events,
		Settings:        map[string][]string{"s": f.EventVehicleIDs()},
		Techniques:      []eval.Technique{eval.ClosestPair},
		Transforms:      []transform.Kind{transform.Correlation},
		PHs:             []time.Duration{30 * 24 * time.Hour},
		Window:          window,
		ProfileWindowed: profile,
		ResetPolicy:     policy,
	}
	var best float64
	for i := 0; i < b.N; i++ {
		res, err := eval.RunGrid(spec)
		if err != nil {
			b.Fatal(err)
		}
		best = res.Cells[0].Best.F05
	}
	b.ReportMetric(best, "F0.5")
}

// BenchmarkAblationWindow sweeps the correlation window length.
func BenchmarkAblationWindow(b *testing.B) {
	for _, w := range []int{8, 12, 20, 30} {
		b.Run(itoa2(w), func(b *testing.B) { ablate(b, w, 45, core.ResetOnAllEvents) })
	}
}

// BenchmarkAblationProfileLength sweeps the reference-profile size.
func BenchmarkAblationProfileLength(b *testing.B) {
	for _, p := range []int{25, 45, 75} {
		b.Run(itoa2(p), func(b *testing.B) { ablate(b, 12, p, core.ResetOnAllEvents) })
	}
}

// BenchmarkAblationResetPolicy compares the Table 3 design choice.
func BenchmarkAblationResetPolicy(b *testing.B) {
	b.Run("all-events", func(b *testing.B) { ablate(b, 12, 45, core.ResetOnAllEvents) })
	b.Run("repairs-only", func(b *testing.B) { ablate(b, 12, 45, core.ResetOnRepairsOnly) })
}

// BenchmarkExtensionTransforms scores the future-work transforms
// (histogram, spectral) under the same harness.
func BenchmarkExtensionTransforms(b *testing.B) {
	f := fleetForBench(b)
	for _, kind := range []transform.Kind{transform.Histogram, transform.Spectral} {
		b.Run(kind.String(), func(b *testing.B) {
			spec := eval.GridSpec{
				Records:         f.Records,
				Events:          f.Events,
				Settings:        map[string][]string{"s": f.EventVehicleIDs()},
				Techniques:      []eval.Technique{eval.ClosestPair},
				Transforms:      []transform.Kind{kind},
				PHs:             []time.Duration{30 * 24 * time.Hour},
				Window:          32, // spectral needs a power-of-two-ish window
				ProfileWindowed: 30,
			}
			var best float64
			for i := 0; i < b.N; i++ {
				res, err := eval.RunGrid(spec)
				if err != nil {
					b.Fatal(err)
				}
				best = res.Cells[0].Best.F05
			}
			b.ReportMetric(best, "F0.5")
		})
	}
}

// BenchmarkStreamingThroughput measures the complete solution's pure
// per-record streaming cost (records/second of the default pipeline).
func BenchmarkStreamingThroughput(b *testing.B) {
	f := fleetForBench(b)
	vehicle := f.EventVehicleIDs()[0]
	var records []Record
	for _, r := range f.Records {
		if r.VehicleID == vehicle {
			records = append(records, r)
		}
	}
	b.ResetTimer()
	processed := 0
	for i := 0; i < b.N; i++ {
		p, err := NewDefaultPipeline(vehicle)
		if err != nil {
			b.Fatal(err)
		}
		for _, rec := range records {
			if _, err := p.HandleRecord(rec); err != nil {
				b.Fatal(err)
			}
		}
		processed += len(records)
	}
	b.ReportMetric(float64(processed)/b.Elapsed().Seconds(), "records/s")
}

// itoa2 avoids strconv for tiny labels.
func itoa2(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for n > 0 {
		pos--
		buf[pos] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[pos:])
}

// BenchmarkBaselines measures the related-work baselines (isolation
// forest, MLP) under the identical protocol, reporting each best F0.5.
func BenchmarkBaselines(b *testing.B) {
	f := fleetForBench(b)
	for _, tech := range eval.ExtensionTechniques() {
		b.Run(tech.String(), func(b *testing.B) {
			spec := eval.GridSpec{
				Records:    f.Records,
				Events:     f.Events,
				Settings:   map[string][]string{"s": f.EventVehicleIDs()},
				Techniques: []eval.Technique{tech},
				Transforms: []transform.Kind{transform.Correlation},
				PHs:        []time.Duration{30 * 24 * time.Hour},
			}
			var best float64
			for i := 0; i < b.N; i++ {
				res, err := eval.RunGrid(spec)
				if err != nil {
					b.Fatal(err)
				}
				best = res.Cells[0].Best.F05
			}
			b.ReportMetric(best, "F0.5")
		})
	}
}
