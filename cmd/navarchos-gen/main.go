// Command navarchos-gen generates a synthetic vehicle-fleet dataset —
// the stand-in for the paper's proprietary Navarchos traces — and writes
// it as CSV: one telemetry file (per-minute PID records) and one event
// file (services, repairs, DTCs as the FMS records them).
//
// Usage:
//
//	navarchos-gen -scale bench -seed 1 -out ./data
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/navarchos/pdm/internal/fleetsim"
	"github.com/navarchos/pdm/internal/obd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("navarchos-gen: ")
	scale := flag.String("scale", "bench", "dataset scale: small | bench | paper")
	seed := flag.Int64("seed", 1, "generator seed (fully deterministic)")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	var cfg fleetsim.Config
	switch *scale {
	case "small":
		cfg = fleetsim.SmallConfig()
	case "bench":
		cfg = fleetsim.BenchConfig()
	case "paper":
		cfg = fleetsim.DefaultConfig()
	default:
		log.Fatalf("unknown scale %q (want small, bench or paper)", *scale)
	}
	cfg.Seed = *seed

	fleet := fleetsim.Generate(cfg)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	recPath := filepath.Join(*out, "records.csv")
	rf, err := os.Create(recPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := fleetsim.WriteRecordsCSV(rf, fleet.Records); err != nil {
		log.Fatal(err)
	}
	if err := rf.Close(); err != nil {
		log.Fatal(err)
	}

	evPath := filepath.Join(*out, "events.csv")
	ef, err := os.Create(evPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := fleetsim.WriteEventsCSV(ef, fleet.Events); err != nil {
		log.Fatal(err)
	}
	if err := ef.Close(); err != nil {
		log.Fatal(err)
	}

	failures := 0
	for _, ev := range fleet.Events {
		if ev.Type == obd.EventRepair {
			failures++
		}
	}
	fmt.Printf("wrote %s (%d records) and %s (%d events, %d failures)\n",
		recPath, len(fleet.Records), evPath, len(fleet.Events), failures)
	fmt.Printf("vehicles: %d total, %d with recorded events\n",
		len(fleet.Vehicles), len(fleet.EventVehicleIDs()))
}
