// Command navarchos-detect runs the paper's complete solution
// (Algorithm 1: correlation transform → dynamic reference profile →
// closest-pair detection → self-tuning thresholds) over a fleet in
// streaming fashion and prints every alarm with its feature-level
// explanation.
//
// Data comes either from CSV files written by navarchos-gen (-records /
// -events) or from a freshly generated synthetic fleet (-scale).
//
// Usage:
//
//	navarchos-detect -scale small
//	navarchos-detect -records data/records.csv -events data/events.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/navarchos/pdm"
	"github.com/navarchos/pdm/internal/fleetsim"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/timeseries"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("navarchos-detect: ")
	scale := flag.String("scale", "", "generate a fleet instead of reading CSV: small | bench | paper")
	seed := flag.Int64("seed", 1, "generator seed (with -scale)")
	recordsPath := flag.String("records", "", "records CSV (from navarchos-gen)")
	eventsPath := flag.String("events", "", "events CSV (from navarchos-gen)")
	factor := flag.Float64("factor", 14, "self-tuning threshold factor")
	flag.Parse()

	var records []timeseries.Record
	var events []obd.Event
	switch {
	case *scale != "":
		var cfg fleetsim.Config
		switch *scale {
		case "small":
			cfg = fleetsim.SmallConfig()
		case "bench":
			cfg = fleetsim.BenchConfig()
		case "paper":
			cfg = fleetsim.DefaultConfig()
		default:
			log.Fatalf("unknown scale %q", *scale)
		}
		cfg.Seed = *seed
		fleet := fleetsim.Generate(cfg)
		records, events = fleet.Records, fleet.Events
	case *recordsPath != "" && *eventsPath != "":
		rf, err := os.Open(*recordsPath)
		if err != nil {
			log.Fatal(err)
		}
		records, err = fleetsim.ReadRecordsCSV(rf)
		rf.Close()
		if err != nil {
			log.Fatal(err)
		}
		ef, err := os.Open(*eventsPath)
		if err != nil {
			log.Fatal(err)
		}
		events, err = fleetsim.ReadEventsCSV(ef)
		ef.Close()
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("provide either -scale or both -records and -events")
	}

	// One streaming pipeline per vehicle, fed chronologically.
	pipelines := map[string]*pdm.Pipeline{}
	mk := func(vehicle string) *pdm.Pipeline {
		tr, err := pdm.NewTransformer(pdm.Correlation, 12)
		if err != nil {
			log.Fatal(err)
		}
		p, err := pdm.NewPipeline(vehicle, pdm.PipelineConfig{
			Transformer:   tr,
			Detector:      pdm.NewClosestPair(tr.FeatureNames()),
			Thresholder:   pdm.NewSelfTuningThreshold(*factor),
			ProfileLength: 45,
			Filter:        timeseries.NewWarmupFilter(5, 20*time.Minute),
			DensityM:      5,
			DensityK:      15,
		})
		if err != nil {
			log.Fatal(err)
		}
		return p
	}

	var alarms []pdm.Alarm
	evIdx := 0
	for _, rec := range records {
		for evIdx < len(events) && !events[evIdx].Time.After(rec.Time) {
			ev := events[evIdx]
			if p, ok := pipelines[ev.VehicleID]; ok {
				p.HandleEvent(ev)
			}
			evIdx++
		}
		p, ok := pipelines[rec.VehicleID]
		if !ok {
			p = mk(rec.VehicleID)
			pipelines[rec.VehicleID] = p
		}
		a, err := p.HandleRecord(rec)
		if err != nil {
			log.Fatal(err)
		}
		alarms = append(alarms, a...)
	}

	daily := pdm.ConsolidateDaily(alarms)
	fmt.Printf("processed %d records from %d vehicles; %d raw violations, %d day-level alarms\n",
		len(records), len(pipelines), len(alarms), len(daily))
	for _, a := range daily {
		fmt.Printf("%s  %-8s %-32s score=%.4f threshold=%.4f\n",
			a.Time.Format("2006-01-02 15:04"), a.VehicleID, a.Feature, a.Score, a.Threshold)
	}
	m := pdm.Evaluate(daily, events, 30*24*time.Hour)
	fmt.Printf("\nagainst recorded repairs (PH=30d): TP=%d FP=%d of %d failures — P=%.2f R=%.2f F0.5=%.2f\n",
		m.TP, m.FP, m.TotalFailures, m.Precision, m.Recall, m.F05)
}
