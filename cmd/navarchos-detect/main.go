// Command navarchos-detect runs the paper's complete solution
// (Algorithm 1: correlation transform → dynamic reference profile →
// closest-pair detection → self-tuning thresholds) over a fleet in
// streaming fashion and prints every alarm with its feature-level
// explanation.
//
// Data comes either from CSV files written by navarchos-gen (-records /
// -events) or from a freshly generated synthetic fleet (-scale). The
// fleet streams through the sharded concurrent engine; -checkpoint and
// -resume serialize and restore the engine's mutable state so a long
// replay can be split across process invocations without changing a
// single alarm.
//
// Usage:
//
//	navarchos-detect -scale small
//	navarchos-detect -records data/records.csv -events data/events.csv
//	navarchos-detect -scale small -checkpoint fleet.ckpt
//	navarchos-detect -scale small -resume fleet.ckpt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/navarchos/pdm"
	"github.com/navarchos/pdm/internal/fleetsim"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/timeseries"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("navarchos-detect: ")
	scale := flag.String("scale", "", "generate a fleet instead of reading CSV: small | bench | paper")
	seed := flag.Int64("seed", 1, "generator seed (with -scale)")
	recordsPath := flag.String("records", "", "records CSV (from navarchos-gen)")
	eventsPath := flag.String("events", "", "events CSV (from navarchos-gen)")
	factor := flag.Float64("factor", 14, "self-tuning threshold factor")
	shards := flag.Int("shards", 0, "engine shard count (0 = GOMAXPROCS)")
	checkpointPath := flag.String("checkpoint", "", "write engine state to this file after the run")
	resumePath := flag.String("resume", "", "restore engine state from this file before the run")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars, /debug/pprof/* and /fleet on this address (e.g. :8080)")
	journalPath := flag.String("journal", "", "append every alarm as a JSON line to this file (with -debug-addr)")
	hold := flag.Duration("hold", 0, "keep the debug server up this long after the replay finishes")
	flag.Parse()

	var records []timeseries.Record
	var events []obd.Event
	switch {
	case *scale != "":
		var cfg fleetsim.Config
		switch *scale {
		case "small":
			cfg = fleetsim.SmallConfig()
		case "bench":
			cfg = fleetsim.BenchConfig()
		case "paper":
			cfg = fleetsim.DefaultConfig()
		default:
			log.Fatalf("unknown scale %q", *scale)
		}
		cfg.Seed = *seed
		fleet := fleetsim.Generate(cfg)
		records, events = fleet.Records, fleet.Events
	case *recordsPath != "" && *eventsPath != "":
		rf, err := os.Open(*recordsPath)
		if err != nil {
			log.Fatal(err)
		}
		records, err = fleetsim.ReadRecordsCSV(rf)
		rf.Close()
		if err != nil {
			log.Fatal(err)
		}
		ef, err := os.Open(*eventsPath)
		if err != nil {
			log.Fatal(err)
		}
		events, err = fleetsim.ReadEventsCSV(ef)
		ef.Close()
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("provide either -scale or both -records and -events")
	}

	// Observability: one registry + observer shared by every pipeline
	// and the engine, a bounded alarm journal, and the debug endpoint.
	// Without -debug-addr the observer stays nil and costs nothing.
	var observer *pdm.Observer
	var journal *pdm.AlarmJournal
	var registry *pdm.MetricsRegistry
	if *debugAddr != "" {
		registry = pdm.NewMetricsRegistry()
		journal = pdm.NewAlarmJournal(256)
		if *journalPath != "" {
			jf, err := os.Create(*journalPath)
			if err != nil {
				log.Fatal(err)
			}
			defer jf.Close()
			journal.SetSink(jf)
		}
		observer = pdm.NewObserver(registry, pdm.ObserverConfig{Journal: journal})
	}

	// Config only: the immutable assembly recipe for each vehicle's
	// pipeline. Mutable state lives inside the engine and travels
	// through -checkpoint / -resume instead.
	engCfg := pdm.FleetEngineConfig{
		NewConfig: func(string) (pdm.PipelineConfig, error) {
			tr, err := pdm.NewTransformer(pdm.Correlation, 12)
			if err != nil {
				return pdm.PipelineConfig{}, err
			}
			wf := timeseries.NewWarmupFilter(5, 20*time.Minute)
			return pdm.PipelineConfig{
				Transformer:   tr,
				Detector:      pdm.NewClosestPair(tr.FeatureNames()),
				Thresholder:   pdm.NewSelfTuningThreshold(*factor),
				ProfileLength: 45,
				Filter:        wf.Keep,
				FilterState:   wf,
				DensityM:      5,
				DensityK:      15,
				Observer:      observer,
			}, nil
		},
		Shards:   *shards,
		Observer: observer,
	}

	var eng *pdm.FleetEngine
	var err error
	if *resumePath != "" {
		f, oerr := os.Open(*resumePath)
		if oerr != nil {
			log.Fatal(oerr)
		}
		eng, err = pdm.NewFleetEngineFromCheckpoint(f, engCfg)
		f.Close()
		if err != nil {
			log.Fatalf("resume %s: %v", *resumePath, err)
		}
	} else {
		eng, err = pdm.NewFleetEngine(engCfg)
		if err != nil {
			log.Fatal(err)
		}
	}

	if *debugAddr != "" {
		srv, err := pdm.StartDebugServer(*debugAddr, pdm.DebugConfig{
			Registry:    registry,
			Journal:     journal,
			FleetStatus: func() any { return eng.Stats() },
		})
		if err != nil {
			log.Fatalf("debug server: %v", err)
		}
		defer srv.Close()
		fmt.Printf("debug endpoint on http://%s (/metrics /debug/vars /debug/pprof/ /fleet)\n", srv.Addr())
	}

	var alarms []pdm.Alarm
	done := make(chan struct{})
	go func() {
		defer close(done)
		for a := range eng.Alarms() {
			alarms = append(alarms, a)
		}
	}()
	if err := eng.Replay(records, events); err != nil {
		log.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
	<-done

	if *checkpointPath != "" {
		f, err := os.Create(*checkpointPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.Checkpoint(f); err != nil {
			log.Fatalf("checkpoint: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fi, _ := os.Stat(*checkpointPath)
		fmt.Printf("checkpoint written to %s (%d bytes)\n", *checkpointPath, fi.Size())
	}

	st := eng.Stats()
	daily := pdm.ConsolidateDaily(alarms)
	fmt.Printf("processed %d records from %d vehicles; %d raw violations, %d day-level alarms\n",
		len(records), st.Vehicles, len(alarms), len(daily))
	for _, a := range daily {
		fmt.Printf("%s  %-8s %-32s score=%.4f threshold=%.4f\n",
			a.Time.Format("2006-01-02 15:04"), a.VehicleID, a.Feature, a.Score, a.Threshold)
	}
	m := pdm.Evaluate(daily, events, 30*24*time.Hour)
	fmt.Printf("\nagainst recorded repairs (PH=30d): TP=%d FP=%d of %d failures — P=%.2f R=%.2f F0.5=%.2f\n",
		m.TP, m.FP, m.TotalFailures, m.Precision, m.Recall, m.F05)

	if *debugAddr != "" && *hold > 0 {
		fmt.Printf("holding debug endpoint open for %v (curl /metrics, /fleet)\n", *hold)
		time.Sleep(*hold)
	}
}
