// Command navarchos-explore reproduces the paper's Section 2 data
// exploration on the synthetic fleet: the Figure 1 DTC/event timelines
// and the Figure 2 agglomerative clustering with top-1% LOF outlier
// analysis.
//
// Usage:
//
//	navarchos-explore -scale bench -seed 1
package main

import (
	"flag"
	"log"
	"os"

	"github.com/navarchos/pdm/internal/experiments"
	"github.com/navarchos/pdm/internal/fleetsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("navarchos-explore: ")
	scale := flag.String("scale", "bench", "dataset scale: small | bench | paper")
	seed := flag.Int64("seed", 1, "generator seed")
	maxDays := flag.Int("maxdays", 4000, "cap on clustered vehicle-days (O(n²) memory)")
	flag.Parse()

	var cfg fleetsim.Config
	switch *scale {
	case "small":
		cfg = fleetsim.SmallConfig()
	case "bench":
		cfg = fleetsim.BenchConfig()
	case "paper":
		cfg = fleetsim.DefaultConfig()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	cfg.Seed = *seed
	opts := &experiments.Options{FleetConfig: cfg}

	fig1, err := experiments.Figure1(opts)
	if err != nil {
		log.Fatal(err)
	}
	fig1.Render(os.Stdout)

	fig2, err := experiments.Figure2(opts, *maxDays)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.WriteString("\n")
	fig2.Render(os.Stdout)
}
