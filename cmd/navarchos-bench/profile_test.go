package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// checkPprofFile asserts a pprof output exists and looks like a gzipped
// protobuf (pprof's on-disk format), i.e. the profile was flushed.
func checkPprofFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatalf("%s is not a gzipped pprof profile (%d bytes, % x...)", path, len(data), data[:min(4, len(data))])
	}
}

func TestStartProfilesStopIdempotent(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := startProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	stop() // second call must be a no-op, not a crash or truncation
	checkPprofFile(t, cpu)
	checkPprofFile(t, mem)
}

// TestFatalFlushesProfiles is the regression test for profiles lost on
// error paths: log.Fatal exits through os.Exit, skipping deferred
// flushes, so fatal() must flush explicitly before exiting. The test
// re-execs itself so the real exit path runs.
func TestFatalFlushesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")

	if os.Getenv("BENCH_FATAL_HELPER") == "1" {
		stop, err := startProfiles(os.Getenv("BENCH_CPU"), os.Getenv("BENCH_MEM"))
		if err != nil {
			os.Exit(3)
		}
		stopProfiles = stop
		defer stop() // skipped by os.Exit — exactly the old bug
		fatalf("simulated experiment failure")
		os.Exit(3) // unreachable
	}

	cmd := exec.Command(os.Args[0], "-test.run=TestFatalFlushesProfiles$")
	cmd.Env = append(os.Environ(),
		"BENCH_FATAL_HELPER=1", "BENCH_CPU="+cpu, "BENCH_MEM="+mem)
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("helper should exit 1 via log.Fatalf, got %v", err)
	}
	checkPprofFile(t, cpu)
	checkPprofFile(t, mem)
}
