// Command navarchos-bench regenerates every table and figure of the
// paper's evaluation on the synthetic fleet.
//
// Usage:
//
//	navarchos-bench                      # everything, bench scale
//	navarchos-bench -experiment fig4     # one exhibit
//	navarchos-bench -scale small         # quick pass
//
// Experiments: fig1 fig2 fig4 fig5 fig6 fig7 table1 table2 table3 fig8
// baselines perf gridperf checkpoint fitperf scoreperf ingest handoff
// all.
//
// With -json, the perf experiment additionally writes its
// throughput/latency results to BENCH_<n>.json (smallest unused n), so
// the performance trajectory stays machine-readable across PRs; a
// gridperf, checkpoint, fitperf, scoreperf, ingest or handoff run in
// the same invocation is embedded under "grid" / "checkpoint" /
// "fitperf" / "scoreperf" / "ingest" / "handoff". Every JSON file
// carries an "env" header (go
// version, GOMAXPROCS, git revision, SIMD class) identifying the
// producing machine.
//
// -cpuprofile and -memprofile write pprof profiles covering the whole
// run (the memory profile is taken at exit, after a final GC).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/navarchos/pdm/internal/experiments"
	"github.com/navarchos/pdm/internal/fleetsim"
	"github.com/navarchos/pdm/internal/obs"
)

// stopProfiles flushes active profiles; fatal exits through it so a
// failing experiment still leaves usable -cpuprofile/-memprofile files.
var stopProfiles = func() {}

func fatal(v ...any) {
	stopProfiles()
	log.Fatal(v...)
}

func fatalf(format string, v ...any) {
	stopProfiles()
	log.Fatalf(format, v...)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("navarchos-bench: ")
	scale := flag.String("scale", "bench", "dataset scale: small | bench | paper")
	seed := flag.Int64("seed", 1, "generator seed")
	experiment := flag.String("experiment", "all", "which exhibit to regenerate")
	vehicle := flag.String("vehicle", "", "vehicle for fig8 (default: first failing)")
	jsonOut := flag.Bool("json", false, "write perf results to BENCH_<n>.json")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof/* on this address while experiments run")
	fitperfStrict := flag.Bool("fitperf-strict", false, "fail fitperf unless every equivalence-grid cell matches (test-scale gate; bench-scale raw/delta XGBoost cells may differ by design)")
	scoreperfStrict := flag.Bool("scoreperf-strict", false, "fail scoreperf unless every equivalence cell matches and the tranad last-row scorer beats the full-window scorer by >=2x")
	flag.Parse()

	stop, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	stopProfiles = stop
	defer stop()

	if *debugAddr != "" {
		srv, err := obs.StartDebugServer(*debugAddr, obs.DebugConfig{Registry: obs.NewRegistry()})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("debug endpoint on http://%s (/debug/pprof/ /debug/vars /metrics)\n", srv.Addr())
	}

	var cfg fleetsim.Config
	switch *scale {
	case "small":
		cfg = fleetsim.SmallConfig()
	case "bench":
		cfg = fleetsim.BenchConfig()
	case "paper":
		cfg = fleetsim.DefaultConfig()
	default:
		fatalf("unknown scale %q", *scale)
	}
	cfg.Seed = *seed
	opts := &experiments.Options{FleetConfig: cfg}
	out := os.Stdout

	want := map[string]bool{}
	for _, e := range strings.Split(*experiment, ",") {
		want[strings.TrimSpace(e)] = true
	}
	has := func(name string) bool { return want["all"] || want[name] }
	ran := false

	if has("fig1") {
		ran = true
		r, err := experiments.Figure1(opts)
		if err != nil {
			fatal(err)
		}
		r.Render(out)
		fmt.Fprintln(out)
	}
	if has("fig2") {
		ran = true
		r, err := experiments.Figure2(opts, 0)
		if err != nil {
			fatal(err)
		}
		r.Render(out)
		fmt.Fprintln(out)
	}
	if has("fig4") || has("fig5") {
		ran = true
		r, err := experiments.Figures45(opts)
		if err != nil {
			fatal(err)
		}
		if has("fig4") {
			r.Render(out, experiments.Setting40)
			fmt.Fprintln(out)
		}
		if has("fig5") {
			r.Render(out, experiments.Setting26)
			fmt.Fprintln(out)
		}
	}
	if has("fig6") {
		ran = true
		r, err := experiments.Figure6(opts)
		if err != nil {
			fatal(err)
		}
		r.Render(out)
		fmt.Fprintln(out)
	}
	if has("fig7") {
		ran = true
		r, err := experiments.Figure7(opts)
		if err != nil {
			fatal(err)
		}
		r.Render(out)
		fmt.Fprintln(out)
	}
	if has("table1") {
		ran = true
		r, err := experiments.Table1(opts)
		if err != nil {
			fatal(err)
		}
		r.Render(out)
		fmt.Fprintln(out)
	}
	if has("table2") {
		ran = true
		r, err := experiments.Table2(opts)
		if err != nil {
			fatal(err)
		}
		r.Render(out)
		fmt.Fprintln(out)
	}
	if has("table3") {
		ran = true
		r, err := experiments.Table3(opts)
		if err != nil {
			fatal(err)
		}
		r.Render(out)
		fmt.Fprintln(out)
	}
	if has("baselines") {
		ran = true
		r, err := experiments.Baselines(opts)
		if err != nil {
			fatal(err)
		}
		r.Render(out)
		fmt.Fprintln(out)
	}
	if has("fig8") {
		ran = true
		r, err := experiments.Figure8(opts, *vehicle)
		if err != nil {
			fatal(err)
		}
		r.Render(out)
		fmt.Fprintln(out)
	}
	var gridPerf *experiments.GridPerfResult
	if has("gridperf") {
		ran = true
		g, err := experiments.GridPerf(opts)
		if err != nil {
			fatal(err)
		}
		gridPerf = g
		g.Render(out)
		fmt.Fprintln(out)
	}
	var ckptPerf *experiments.CheckpointPerfResult
	if has("checkpoint") {
		ran = true
		c, err := experiments.CheckpointPerf(opts, 0, 0)
		if err != nil {
			fatal(err)
		}
		ckptPerf = c
		c.Render(out)
		fmt.Fprintln(out)
	}
	var fitPerf *experiments.FitPerfResult
	if has("fitperf") {
		ran = true
		fp, err := experiments.FitPerf(opts)
		if err != nil {
			fatal(err)
		}
		fitPerf = fp
		fp.Render(out)
		fmt.Fprintln(out)
		if !fp.Equivalence.LosslessCellsMatch {
			fatalf("fitperf: legacy and current fit kernels disagree on the guaranteed (lossless) grid cells")
		}
		if *fitperfStrict && !fp.Equivalence.CellsMatch {
			fatalf("fitperf: -fitperf-strict set and legacy/current fit kernels disagree on grid cells")
		}
	}
	var ingestPerf *experiments.IngestPerfResult
	if has("ingest") {
		ran = true
		ip, err := experiments.IngestPerf(opts)
		if err != nil {
			fatal(err)
		}
		ingestPerf = ip
		ip.Render(out)
		fmt.Fprintln(out)
		for _, run := range ip.Runs {
			if !run.AlarmsIdentical {
				fatalf("ingest: wire and replay alarms differ at %d shards", run.Shards)
			}
		}
	}
	var handoffPerf *experiments.HandoffPerfResult
	if has("handoff") {
		ran = true
		hp, err := experiments.HandoffPerf(opts)
		if err != nil {
			fatal(err)
		}
		handoffPerf = hp
		hp.Render(out)
		fmt.Fprintln(out)
		for _, run := range hp.Runs {
			if !run.AlarmsIdentical {
				fatalf("handoff: migrated and uninterrupted alarms differ (%d → %d shards)",
					run.SrcShards, run.DstShards)
			}
		}
	}
	var scorePerf *experiments.ScorePerfResult
	if has("scoreperf") {
		ran = true
		sp, err := experiments.ScorePerf(opts)
		if err != nil {
			fatal(err)
		}
		scorePerf = sp
		sp.Render(out)
		fmt.Fprintln(out)
		if !sp.TranAD.BitIdentical || !sp.Regress.BitIdentical {
			fatalf("scoreperf: legacy and current scoring paths disagree bit-for-bit")
		}
		if !sp.Equivalence.CellsMatch {
			fatalf("scoreperf: full-window and last-row scorers disagree on grid cells")
		}
		if *scoreperfStrict && sp.TranAD.SpeedupVsFull < 2 {
			fatalf("scoreperf: -scoreperf-strict set and tranad last-row speedup vs full-window is %.2fx (< 2x)", sp.TranAD.SpeedupVsFull)
		}
	}
	if has("perf") || *jsonOut {
		ran = true
		r, err := experiments.Perf(opts, nil)
		if err != nil {
			fatal(err)
		}
		r.Grid = gridPerf
		r.Checkpoint = ckptPerf
		r.FitPerf = fitPerf
		r.ScorePerf = scorePerf
		r.Ingest = ingestPerf
		r.Handoff = handoffPerf
		r.Render(out)
		fmt.Fprintln(out)
		if *jsonOut {
			path, err := writeBenchJSON(r)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(out, "perf results written to %s\n", path)
		}
	}
	if !ran {
		fatalf("unknown experiment %q (want fig1 fig2 fig4 fig5 fig6 fig7 table1 table2 table3 fig8 baselines perf gridperf checkpoint fitperf scoreperf ingest handoff or all)", *experiment)
	}
}

// writeBenchJSON writes the perf result to BENCH_<n>.json, picking the
// smallest n not already taken so earlier runs are never overwritten.
func writeBenchJSON(r *experiments.PerfResult) (string, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	for n := 0; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); err == nil {
			continue
		} else if !os.IsNotExist(err) {
			return "", err
		}
		return path, os.WriteFile(path, append(data, '\n'), 0o644)
	}
}
