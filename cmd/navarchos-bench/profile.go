package main

import (
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// startProfiles begins CPU and/or heap profiling and returns a stop
// function that flushes both to disk. stop is idempotent, so it can be
// deferred for the normal exit AND called explicitly on the fatal path:
// log.Fatal exits through os.Exit, which skips deferred calls, and that
// is exactly how the profiles of a failing run used to be lost.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					return
				}
				runtime.GC() // settle the heap so the profile shows live objects
				pprof.WriteHeapProfile(f) //nolint:errcheck // best effort at exit
				f.Close()
			}
		})
	}, nil
}
