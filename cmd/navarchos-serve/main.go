// Command navarchos-serve is the long-running fleet ingest front end:
// the sharded detection engine behind an HTTP data plane. Producers
// POST telemetry batches — NVWIRE1 binary frames, CSV, or JSON — to
// /ingest (or stream frames over a held-open connection to
// /ingest/stream); the server decodes without per-record allocation,
// admits whole batches through the engine's IngestBatch seam, and
// exposes detection state over the observability endpoints.
//
// Routes:
//
//	POST /ingest          one batch (Content-Type selects the decoder:
//	                      NVWIRE1 binary by default, text/csv,
//	                      application/json)
//	POST /ingest/stream   NVWIRE1 frame stream, chunked-friendly; also
//	                      accepts KindHandoff frames (vehicle adoption)
//	GET  /alarms          recent alarm-journal entries (?n=), each with
//	                      ingest provenance (batch/trace id, arrival
//	                      time, queue wait, e2e latency)
//	GET  /vehicles/{id}   one vehicle's retained alarm history (?n=)
//	GET  /fleet           engine stats + journal tail (+ placement view
//	                      when -peers is set)
//	GET  /metrics         Prometheus exposition (incl. pdm_ingest_*,
//	                      pdm_ctrl_*, pdm_e2e_*)
//	POST /admin/cordon    fence a vehicle (?vehicle=, ?off=1 to lift)
//	POST /admin/drain     move vehicles to a peer (?to=URL [?vehicle=])
//	GET  /admin/placement ring members + resident vehicles
//	GET  /admin/events    control-plane event log: drains, cordons,
//	                      adoptions, peer conflicts (?n=, ?vehicle=)
//	     /debug/vars, /debug/pprof/*
//
// Producers must upload each vehicle's telemetry in chronological
// order; under that contract the alarms are bit-identical to an
// offline Replay of the same stream. -checkpoint / -resume carry the
// engine's mutable state across restarts without changing an alarm.
//
// Multi-instance placement: give each instance a -name and the full
// peer list with -peers; the instances agree on a consistent-hash ring
// and each refuses vehicles owned elsewhere with a typed 409 pointing
// at the owner. Vehicles move between live instances with
// POST /admin/drain — state travels as handoff frames over the same
// ingest wire path, and the alarms stay bit-identical through the move.
//
// Usage:
//
//	navarchos-serve -addr :8080
//	navarchos-serve -addr :8080 -shards 8 -journal alarms.jsonl
//	navarchos-serve -addr :8080 -resume fleet.ckpt -checkpoint fleet.ckpt
//	navarchos-serve -addr :8081 -name a -peers b=http://host2:8082
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

// parsePeers parses the -peers flag: "name=baseURL,name=baseURL".
func parsePeers(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	peers := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want name=baseURL)", part)
		}
		peers[name] = url
	}
	return peers, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("navarchos-serve: ")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	shards := flag.Int("shards", 0, "engine shard count (0 = GOMAXPROCS)")
	batchSize := flag.Int("batch-size", 0, "engine batch size (0 = default)")
	queueDepth := flag.Int("queue-depth", 0, "per-shard queue depth in batches (0 = default)")
	factor := flag.Float64("factor", 14, "self-tuning threshold factor")
	journalCap := flag.Int("journal-cap", 256, "alarm journal ring capacity")
	journalPath := flag.String("journal", "", "append every alarm as a JSON line to this file")
	eventsPath := flag.String("events", "", "append every control-plane event as a JSON line to this file")
	checkpointPath := flag.String("checkpoint", "", "write engine state to this file on shutdown")
	resumePath := flag.String("resume", "", "restore engine state from this file at startup")
	maxBody := flag.Int64("max-body", 64<<20, "maximum ingest request body, bytes")
	name := flag.String("name", "", "this instance's name on the placement ring")
	peers := flag.String("peers", "", "comma-separated peer list, name=baseURL each")
	flag.Parse()

	peerMap, err := parsePeers(*peers)
	if err != nil {
		log.Fatal(err)
	}
	cfg := serverConfig{
		shards:     *shards,
		batchSize:  *batchSize,
		queueDepth: *queueDepth,
		factor:     *factor,
		journalCap: *journalCap,
		maxBody:    *maxBody,
		alarmLog:   os.Stdout,
		name:       *name,
		peers:      peerMap,
	}
	if *journalPath != "" {
		jf, err := os.Create(*journalPath)
		if err != nil {
			log.Fatal(err)
		}
		defer jf.Close()
		cfg.jsonlSink = jf
	}
	if *eventsPath != "" {
		ef, err := os.Create(*eventsPath)
		if err != nil {
			log.Fatal(err)
		}
		defer ef.Close()
		cfg.eventsSink = ef
	}
	if *resumePath != "" {
		rf, err := os.Open(*resumePath)
		if err != nil {
			log.Fatal(err)
		}
		cfg.resume = rf
		defer rf.Close()
	}
	s, err := newServer(cfg)
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: s.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("ingest data plane on %s (POST /ingest, GET /fleet /alarms /metrics)\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case got := <-sig:
		fmt.Printf("caught %v; draining\n", got)
	}

	// Stop accepting requests, then stop the engine (flushes pending
	// batches, completes in-flight fits) and snapshot if asked.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if err := s.close(); err != nil {
		log.Printf("engine close: %v", err)
	}
	if *checkpointPath != "" {
		f, err := os.Create(*checkpointPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.eng.Checkpoint(f); err != nil {
			log.Fatalf("checkpoint: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fi, _ := os.Stat(*checkpointPath)
		fmt.Printf("checkpoint written to %s (%d bytes)\n", *checkpointPath, fi.Size())
	}
	st := s.eng.Stats()
	fmt.Printf("served %d records, %d events from %d vehicles; %d alarms journaled\n",
		st.RecordsIn, st.EventsIn, st.Vehicles, s.journal.Total())
}
