package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/navarchos/pdm/internal/fleetsim"
	"github.com/navarchos/pdm/internal/timeseries"
	"github.com/navarchos/pdm/internal/wire"
)

// singleRecordFrame encodes one NVWIRE1 frame holding one record for
// the vehicle, stamped minute minutes after base.
func singleRecordFrame(vehicle string, base time.Time, minute int) []byte {
	var enc wire.Encoder
	rec := timeseries.Record{VehicleID: vehicle, Time: base.Add(time.Duration(minute) * time.Minute)}
	enc.Record(&rec)
	enc.End()
	return enc.Bytes()
}

// namedServer builds a server with a ring identity for the placement
// and drain tests. A large journal keeps every alarm for bit-identity
// comparison.
func namedServer(t *testing.T, name string, peers map[string]string) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(serverConfig{
		shards: 2, factor: 4, journalCap: 1 << 14,
		name: name, peers: peers,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux)
	t.Cleanup(func() {
		ts.Close()
		s.close() //nolint:errcheck // engine already exercised
	})
	return s, ts
}

// alarmKey flattens a journal entry to a comparable key carrying the
// exact float bits, so equality means bit-identical alarms.
type alarmKey struct {
	vehicle, feature   string
	nanos              int64
	scoreB, thresholdB uint64
}

func journalKeys(t *testing.T, s *server) []alarmKey {
	t.Helper()
	entries := s.journal.Last(1 << 14)
	keys := make([]alarmKey, 0, len(entries))
	for _, e := range entries {
		keys = append(keys, alarmKey{
			vehicle: e.VehicleID, feature: e.Feature, nanos: e.Time.UnixNano(),
			scoreB: math.Float64bits(e.Score), thresholdB: math.Float64bits(e.Threshold),
		})
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.vehicle != b.vehicle {
			return a.vehicle < b.vehicle
		}
		if a.nanos != b.nanos {
			return a.nanos < b.nanos
		}
		if a.feature != b.feature {
			return a.feature < b.feature
		}
		return a.scoreB < b.scoreB
	})
	return keys
}

// splitFrames re-encodes the fleet stream cut at a record boundary so
// the two halves can be fed to different instances in order.
func splitFrames(t *testing.T) (first, second []byte, vehicles map[string]bool) {
	t.Helper()
	cfg := fleetsim.SmallConfig()
	cfg.NumVehicles = 5
	cfg.Days = 120
	cfg.RecordedVehicles = 4
	cfg.RecordedFailures = 2
	cfg.HiddenFailures = 1
	f := fleetsim.Generate(cfg)
	vehicles = map[string]bool{}
	for i := range f.Records {
		vehicles[f.Records[i].VehicleID] = true
	}
	cutR := len(f.Records) / 2
	cutT := f.Records[cutR].Time
	cutE := sort.Search(len(f.Events), func(i int) bool { return f.Events[i].Time.After(cutT) })
	var err error
	if first, _, err = wire.EncodeStream(nil, f.Records[:cutR], f.Events[:cutE], 256); err != nil {
		t.Fatal(err)
	}
	if second, _, err = wire.EncodeStream(nil, f.Records[cutR:], f.Events[cutE:], 256); err != nil {
		t.Fatal(err)
	}
	return first, second, vehicles
}

// TestServeDrainHandoff is the HTTP-level drain gate: feed half a
// fleet to instance a, drain every vehicle to instance b over the
// handoff wire path, feed the second half to b, and require the merged
// alarm journals to be bit-identical to one instance ingesting the
// whole stream. Also pins the typed 409 for post-drain ingest on a.
func TestServeDrainHandoff(t *testing.T) {
	first, second, vehicles := splitFrames(t)
	sa, tsa := namedServer(t, "a", nil)
	sb, tsb := namedServer(t, "b", nil)
	sref, tsref := namedServer(t, "ref", nil)

	// Reference: the whole stream through one instance.
	for _, frames := range [][]byte{first, second} {
		if resp, body := postBody(t, tsref.URL+"/ingest/stream", "application/octet-stream", frames); resp.StatusCode != http.StatusOK {
			t.Fatalf("reference ingest: %d %s", resp.StatusCode, body)
		}
	}

	// First half into a, then move every vehicle to b live.
	if resp, body := postBody(t, tsa.URL+"/ingest/stream", "application/octet-stream", first); resp.StatusCode != http.StatusOK {
		t.Fatalf("first half: %d %s", resp.StatusCode, body)
	}
	resp, body := postBody(t, tsa.URL+"/admin/drain?to="+tsb.URL, "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %d %s", resp.StatusCode, body)
	}
	var dr drainResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Moved != len(vehicles) || dr.To != tsb.URL {
		t.Fatalf("drain response %+v, want %d vehicles to %s", dr, len(vehicles), tsb.URL)
	}
	for _, v := range dr.Vehicles {
		if !vehicles[v] {
			t.Fatalf("drain moved unexpected vehicle %q", v)
		}
	}

	// a is empty and remembers where its vehicles went; b holds them.
	resp, body = postGet(t, tsa.URL+"/admin/placement")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("placement: %d", resp.StatusCode)
	}
	var pl struct {
		Self      string            `json:"self"`
		Residents []string          `json:"residents"`
		Migrated  map[string]string `json:"migrated"`
	}
	if err := json.Unmarshal(body, &pl); err != nil {
		t.Fatal(err)
	}
	if pl.Self != "a" || len(pl.Residents) != 0 || len(pl.Migrated) != len(vehicles) {
		t.Fatalf("placement after drain: %s", body)
	}
	for v := range vehicles {
		if pl.Migrated[v] != tsb.URL {
			t.Fatalf("vehicle %s migrated to %q, want %s", v, pl.Migrated[v], tsb.URL)
		}
	}
	if got := len(sb.eng.VehicleIDs()); got != len(vehicles) {
		t.Fatalf("b holds %d vehicles, want %d", got, len(vehicles))
	}

	// Second half lands on b; the handoff carried the warm state so the
	// merged journals match the reference bit-for-bit.
	if resp, body := postBody(t, tsb.URL+"/ingest/stream", "application/octet-stream", second); resp.StatusCode != http.StatusOK {
		t.Fatalf("second half: %d %s", resp.StatusCode, body)
	}
	// Flush enqueues but does not wait; the quiesce inside VehicleIDs is
	// the barrier that makes every admitted record's alarms visible.
	for _, s := range []*server{sa, sb, sref} {
		s.eng.Flush()
		s.eng.VehicleIDs()
	}
	merged := append(journalKeys(t, sa), journalKeys(t, sb)...)
	sort.Slice(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.vehicle != b.vehicle {
			return a.vehicle < b.vehicle
		}
		if a.nanos != b.nanos {
			return a.nanos < b.nanos
		}
		if a.feature != b.feature {
			return a.feature < b.feature
		}
		return a.scoreB < b.scoreB
	})
	ref := journalKeys(t, sref)
	if len(ref) == 0 {
		t.Fatal("reference run raised no alarms; the gate is vacuous")
	}
	if len(merged) != len(ref) {
		t.Fatalf("merged journals have %d alarms, reference %d", len(merged), len(ref))
	}
	for i := range ref {
		if merged[i] != ref[i] {
			t.Fatalf("alarm %d diverged across the drain:\n  got  %+v\n  want %+v", i, merged[i], ref[i])
		}
	}

	// Stale ingest on a is a typed 409 pointing at b, not a silent drop.
	var enc wire.Encoder
	rec := timeseries.Record{VehicleID: dr.Vehicles[0], Time: time.Now().UTC()}
	enc.Record(&rec)
	enc.End()
	resp, body = postBody(t, tsa.URL+"/ingest/stream", "application/octet-stream", enc.Bytes())
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale ingest: %d %s, want 409", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("409 without a Retry-After header")
	}
	var ua unavailableResponse
	if err := json.Unmarshal(body, &ua); err != nil {
		t.Fatal(err)
	}
	if ua.Vehicle != dr.Vehicles[0] || ua.State != "migrating" || ua.Peer != tsb.URL {
		t.Fatalf("409 body %s, want vehicle %s migrating at %s", body, dr.Vehicles[0], tsb.URL)
	}
	if st := sa.eng.Stats(); st.Drops != 0 {
		t.Fatalf("source dropped %d alarms", st.Drops)
	}

	// The drain shows up in the control-plane metrics family.
	if resp, metrics := postGet(t, tsa.URL+"/metrics"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(string(metrics), "pdm_ctrl_handoffs_total "+strconv.Itoa(dr.Moved)) {
		t.Fatalf("/metrics does not count %d handoffs:\n%s", dr.Moved, metrics)
	}
}

// TestServeCordonEndpoint pins the admin fence: cordoned vehicles 409
// on ingest with the fence state in the body, and ?off=1 readmits.
func TestServeCordonEndpoint(t *testing.T) {
	s, ts := namedServer(t, "", nil)
	frame := func() []byte {
		var enc wire.Encoder
		rec := timeseries.Record{VehicleID: "veh-x", Time: time.Now().UTC()}
		enc.Record(&rec)
		enc.End()
		return enc.Bytes()
	}()

	resp, body := postBody(t, ts.URL+"/admin/cordon?vehicle=veh-x", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cordon: %d %s", resp.StatusCode, body)
	}
	resp, body = postBody(t, ts.URL+"/ingest/stream", "application/octet-stream", frame)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cordoned ingest: %d %s, want 409", resp.StatusCode, body)
	}
	var ua unavailableResponse
	if err := json.Unmarshal(body, &ua); err != nil {
		t.Fatal(err)
	}
	if ua.Vehicle != "veh-x" || ua.State != "cordoned" || ua.Refused != 1 {
		t.Fatalf("409 body %s", body)
	}
	if resp, body := postBody(t, ts.URL+"/admin/cordon?vehicle=veh-x&off=1", "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("uncordon: %d %s", resp.StatusCode, body)
	}
	if resp, body := postBody(t, ts.URL+"/ingest/stream", "application/octet-stream", frame); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-uncordon ingest: %d %s", resp.StatusCode, body)
	}
	if st := s.eng.Stats(); st.RecordsIn != 1 {
		t.Fatalf("engine admitted %d records, want exactly the readmitted one", st.RecordsIn)
	}
}

// TestServePlacementRouting gives an instance a peer on the ring and
// checks that vehicles hashed to the peer are refused with the owner's
// URL while locally-owned vehicles admit normally.
func TestServePlacementRouting(t *testing.T) {
	peerURL := "http://peer.invalid:9"
	s, ts := namedServer(t, "a", map[string]string{"b": peerURL})

	// Find one vehicle per owner deterministically off the same ring.
	var mine, theirs string
	for i := 0; mine == "" || theirs == ""; i++ {
		id := "veh-" + string(rune('a'+i%26)) + "-" + string(rune('0'+i/26%10))
		if s.ring.Owner(id) == "a" {
			if mine == "" {
				mine = id
			}
		} else if theirs == "" {
			theirs = id
		}
		if i > 10_000 {
			t.Fatal("ring never split ownership")
		}
	}

	var enc wire.Encoder
	base := time.Now().UTC()
	for i, id := range []string{mine, theirs} {
		rec := timeseries.Record{VehicleID: id, Time: base.Add(time.Duration(i) * time.Minute)}
		enc.Record(&rec)
	}
	enc.End()

	resp, body := postBody(t, ts.URL+"/ingest/stream", "application/octet-stream", enc.Bytes())
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("misrouted batch: %d %s, want 409", resp.StatusCode, body)
	}
	var ua unavailableResponse
	if err := json.Unmarshal(body, &ua); err != nil {
		t.Fatal(err)
	}
	if ua.Vehicle != theirs || ua.State != "misrouted" || ua.Refused != 1 || ua.Peer != peerURL {
		t.Fatalf("misroute 409 body %s, want %s refused toward %s", body, theirs, peerURL)
	}
	// The locally-owned record was admitted despite the 409.
	if st := s.eng.Stats(); st.RecordsIn != 1 {
		t.Fatalf("engine admitted %d records, want 1 (only %s)", st.RecordsIn, mine)
	}

	// Placement lists both ring members with the peer's URL.
	resp, body = postGet(t, ts.URL+"/admin/placement")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("placement: %d", resp.StatusCode)
	}
	var pl struct {
		Self    string            `json:"self"`
		Members []placementMember `json:"members"`
	}
	if err := json.Unmarshal(body, &pl); err != nil {
		t.Fatal(err)
	}
	if pl.Self != "a" || len(pl.Members) != 2 ||
		pl.Members[0].Name != "a" || pl.Members[1].Name != "b" || pl.Members[1].URL != peerURL {
		t.Fatalf("placement body %s", body)
	}
}

// TestServeAdoptionOverridesRing pins the sticky-placement override:
// after a drain, the adopting instance must admit ingest for the moved
// vehicle even though the static ring still places it on the origin.
// Without the override the vehicle is unreachable — the origin 409s
// with "migrating" toward the adoptee and the adoptee 409s with
// "misrouted" back toward the origin.
func TestServeAdoptionOverridesRing(t *testing.T) {
	// b is built first with a placeholder URL for a (the ring only
	// needs the names); the URL is patched once a's listener exists.
	sb, tsb := namedServer(t, "b", map[string]string{"a": ""})
	sa, tsa := namedServer(t, "a", map[string]string{"b": tsb.URL})
	sb.peers["a"] = tsa.URL

	var veh string
	for i := 0; veh == ""; i++ {
		if id := "veh-" + strconv.Itoa(i); sa.ring.Owner(id) == "b" {
			veh = id
		}
		if i > 10_000 {
			t.Fatal("ring never placed a vehicle on b")
		}
	}
	base := time.Now().UTC()
	frame := func(minute int) []byte {
		var enc wire.Encoder
		rec := timeseries.Record{VehicleID: veh, Time: base.Add(time.Duration(minute) * time.Minute)}
		enc.Record(&rec)
		enc.End()
		return enc.Bytes()
	}

	if resp, body := postBody(t, tsb.URL+"/ingest/stream", "application/octet-stream", frame(0)); resp.StatusCode != http.StatusOK {
		t.Fatalf("owner ingest on b: %d %s", resp.StatusCode, body)
	}
	if resp, body := postBody(t, tsb.URL+"/admin/drain?vehicle="+veh+"&to="+tsa.URL, "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("drain b->a: %d %s", resp.StatusCode, body)
	}

	// The adoptee admits the ring-mismatched vehicle.
	if resp, body := postBody(t, tsa.URL+"/ingest/stream", "application/octet-stream", frame(1)); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain ingest on a: %d %s, want 200", resp.StatusCode, body)
	}
	if st := sa.eng.Stats(); st.RecordsIn != 1 {
		t.Fatalf("a admitted %d records, want 1", st.RecordsIn)
	}
	resp, body := postGet(t, tsa.URL+"/admin/placement")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("placement: %d", resp.StatusCode)
	}
	var pl struct {
		Adopted []string `json:"adopted"`
	}
	if err := json.Unmarshal(body, &pl); err != nil {
		t.Fatal(err)
	}
	if len(pl.Adopted) != 1 || pl.Adopted[0] != veh {
		t.Fatalf("placement adopted %v, want [%s]", pl.Adopted, veh)
	}

	// Draining it home clears the override: a goes back to refusing
	// the vehicle as misrouted.
	if resp, body := postBody(t, tsa.URL+"/admin/drain?vehicle="+veh+"&to="+tsb.URL, "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("drain a->b: %d %s", resp.StatusCode, body)
	}
	resp, body = postBody(t, tsa.URL+"/ingest/stream", "application/octet-stream", frame(2))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("post-drain-home ingest on a: %d %s, want 409", resp.StatusCode, body)
	}
	var ua unavailableResponse
	if err := json.Unmarshal(body, &ua); err != nil {
		t.Fatal(err)
	}
	if ua.Vehicle != veh || ua.State != "misrouted" || ua.Peer != tsb.URL {
		t.Fatalf("409 body %s, want %s misrouted toward %s", body, veh, tsb.URL)
	}
	if st := sb.eng.Stats(); st.RecordsIn != 1 {
		t.Fatalf("b admitted %d records, want 1", st.RecordsIn)
	}
}

// TestServeDrainKeepsOperatorFence pins the unknown-vehicle drain
// path: a vehicle pre-fenced via /admin/cordon that never built a
// handler must keep its fence through a drain that names it — the
// drain has nothing to move but must not silently reopen ingest.
// Also pins that a plain cordon 409 carries no peer hint.
func TestServeDrainKeepsOperatorFence(t *testing.T) {
	s, ts := namedServer(t, "a", nil)
	base := time.Now().UTC()

	if resp, body := postBody(t, ts.URL+"/admin/cordon?vehicle=veh-z", "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("cordon: %d %s", resp.StatusCode, body)
	}
	// The target URL is never contacted: the vehicle has no handler, so
	// there is nothing to ship.
	resp, body := postBody(t, ts.URL+"/admin/drain?vehicle=veh-z&to=http://peer.invalid:9", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain of unknown vehicle: %d %s", resp.StatusCode, body)
	}
	var dr drainResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Moved != 0 {
		t.Fatalf("drain moved %d vehicles, want 0", dr.Moved)
	}

	resp, body = postBody(t, ts.URL+"/ingest/stream", "application/octet-stream", singleRecordFrame("veh-z", base, 0))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("post-drain ingest: %d %s, want 409 (fence erased by the drain?)", resp.StatusCode, body)
	}
	var ua unavailableResponse
	if err := json.Unmarshal(body, &ua); err != nil {
		t.Fatal(err)
	}
	if ua.State != "cordoned" {
		t.Fatalf("409 state %q, want cordoned", ua.State)
	}
	if ua.Peer != "" {
		t.Fatalf("cordon 409 carries peer hint %q, want none", ua.Peer)
	}
	if st := s.eng.Stats(); st.RecordsIn != 0 {
		t.Fatalf("engine admitted %d records through the fence", st.RecordsIn)
	}
}

// TestServeDrainPartialFailure pins the transactional per-vehicle
// handoff: when the peer fails mid-drain, vehicles it confirmed stay
// moved, the failing vehicle is re-adopted locally, and no vehicle is
// ever live on both instances — the split-brain a bulk re-adopt would
// produce.
func TestServeDrainPartialFailure(t *testing.T) {
	sa, tsa := namedServer(t, "a", nil)
	sb, tsb := namedServer(t, "b", nil)

	// A flaky front for b: the first handoff POST forwards verbatim,
	// every later one fails before reaching b.
	var calls atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) > 1 {
			http.Error(w, "injected failure", http.StatusServiceUnavailable)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := http.Post(tsb.URL+r.URL.Path, r.Header.Get("Content-Type"), bytes.NewReader(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		fwd, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		w.Write(fwd) //nolint:errcheck // test server
	}))
	t.Cleanup(flaky.Close)

	base := time.Now().UTC()
	for _, v := range []string{"veh-1", "veh-2"} {
		if resp, body := postBody(t, tsa.URL+"/ingest/stream", "application/octet-stream", singleRecordFrame(v, base, 0)); resp.StatusCode != http.StatusOK {
			t.Fatalf("seed ingest %s: %d %s", v, resp.StatusCode, body)
		}
	}

	// VehicleIDs drains in sorted order: veh-1 ships first (confirmed),
	// veh-2 hits the injected failure.
	resp, body := postBody(t, tsa.URL+"/admin/drain?to="+flaky.URL, "", nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("partial drain: %d %s, want 502", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "after 1 vehicles moved") {
		t.Fatalf("drain error does not report the confirmed vehicles: %s", body)
	}

	// Exactly one live copy of each vehicle: veh-1 on b, veh-2 back on a.
	if got := sb.eng.VehicleIDs(); len(got) != 1 || got[0] != "veh-1" {
		t.Fatalf("b holds %v, want [veh-1]", got)
	}
	if got := sa.eng.VehicleIDs(); len(got) != 1 || got[0] != "veh-2" {
		t.Fatalf("a holds %v, want [veh-2]", got)
	}

	// The re-adopted vehicle serves on a again; the moved one 409s with
	// the drain target recorded per vehicle.
	if resp, body := postBody(t, tsa.URL+"/ingest/stream", "application/octet-stream", singleRecordFrame("veh-2", base, 1)); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-adopted ingest: %d %s, want 200", resp.StatusCode, body)
	}
	resp, body = postBody(t, tsa.URL+"/ingest/stream", "application/octet-stream", singleRecordFrame("veh-1", base, 1))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("moved-vehicle ingest: %d %s, want 409", resp.StatusCode, body)
	}
	var ua unavailableResponse
	if err := json.Unmarshal(body, &ua); err != nil {
		t.Fatal(err)
	}
	if ua.Vehicle != "veh-1" || ua.State != "migrating" || ua.Peer != flaky.URL {
		t.Fatalf("409 body %s, want veh-1 migrating toward %s", body, flaky.URL)
	}
}

// TestServeDrainPeerConflictKeepsFence pins the double-adoption guard:
// when the peer already serves a live handler for the vehicle, the
// drain must NOT re-adopt the extracted state locally — that would put
// the vehicle live on both instances. The local copy stays fenced with
// the 409 hint pointing at the peer, whose copy wins.
func TestServeDrainPeerConflictKeepsFence(t *testing.T) {
	sa, tsa := namedServer(t, "a", nil)
	sb, tsb := namedServer(t, "b", nil)
	base := time.Now().UTC()

	for _, ts := range []*httptest.Server{tsa, tsb} {
		if resp, body := postBody(t, ts.URL+"/ingest/stream", "application/octet-stream", singleRecordFrame("veh-dup", base, 0)); resp.StatusCode != http.StatusOK {
			t.Fatalf("seed ingest: %d %s", resp.StatusCode, body)
		}
	}

	resp, body := postBody(t, tsa.URL+"/admin/drain?vehicle=veh-dup&to="+tsb.URL, "", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting drain: %d %s, want 409", resp.StatusCode, body)
	}

	// a must not hold a live handler — the peer's copy is the only one.
	if got := sa.eng.VehicleIDs(); len(got) != 0 {
		t.Fatalf("origin still serves %v after the conflict", got)
	}
	resp, body = postBody(t, tsa.URL+"/ingest/stream", "application/octet-stream", singleRecordFrame("veh-dup", base, 1))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("post-conflict ingest on a: %d %s, want 409", resp.StatusCode, body)
	}
	var ua unavailableResponse
	if err := json.Unmarshal(body, &ua); err != nil {
		t.Fatal(err)
	}
	if ua.State != "migrating" || ua.Peer != tsb.URL {
		t.Fatalf("409 body %s, want migrating toward %s", body, tsb.URL)
	}

	// b keeps serving its copy untouched.
	if resp, body := postBody(t, tsb.URL+"/ingest/stream", "application/octet-stream", singleRecordFrame("veh-dup", base, 1)); resp.StatusCode != http.StatusOK {
		t.Fatalf("peer ingest after conflict: %d %s, want 200", resp.StatusCode, body)
	}
	if st := sb.eng.Stats(); st.RecordsIn != 2 {
		t.Fatalf("peer admitted %d records, want 2", st.RecordsIn)
	}
}
