package main

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"github.com/navarchos/pdm/internal/fleetsim"
	"github.com/navarchos/pdm/internal/obs"
	"github.com/navarchos/pdm/internal/wire"
)

// tracedFleetFrames encodes the synthetic fleet's records as NVWIRE1
// frames that each carry a trace-context item, the way an instrumented
// producer tags its uploads.
func tracedFleetFrames(t *testing.T, traceID uint64) ([]byte, int) {
	t.Helper()
	cfg := fleetsim.SmallConfig()
	cfg.NumVehicles = 6
	cfg.Days = 120
	cfg.RecordedVehicles = 5
	cfg.RecordedFailures = 2
	cfg.HiddenFailures = 1
	f := fleetsim.Generate(cfg)
	var enc wire.Encoder
	frames := 0
	for start := 0; start < len(f.Records); start += 512 {
		end := min(start+512, len(f.Records))
		enc.Begin()
		enc.TraceContext(traceID)
		for i := start; i < end; i++ {
			enc.Record(&f.Records[i])
		}
		enc.End()
		frames++
	}
	if enc.Err() != nil {
		t.Fatal(enc.Err())
	}
	return enc.Bytes(), frames
}

// TestServeAlarmProvenance is the acceptance path for end-to-end
// provenance: after a traced wire upload, every journal entry served
// by GET /alarms must say which ingest batch caused it (batch ID, the
// producer's trace ID, wire arrival time, a positive ingest-to-alarm
// latency), and the pdm_e2e_* family must account for the traffic on
// /metrics.
func TestServeAlarmProvenance(t *testing.T) {
	const traceID = 0xabc123
	s, ts := testServer(t)
	frames, nframes := tracedFleetFrames(t, traceID)

	resp, body := postBody(t, ts.URL+"/ingest", "application/octet-stream", frames)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /ingest: %d %s", resp.StatusCode, body)
	}
	// Flush enqueues but does not wait; the quiesce inside VehicleIDs
	// makes every admitted record's alarms journal-visible.
	s.eng.Flush()
	s.eng.VehicleIDs()

	resp, body = postGet(t, ts.URL+"/alarms?n=256")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /alarms: %d", resp.StatusCode)
	}
	var alarms struct {
		Total  uint64           `json:"total"`
		Alarms []obs.AlarmEvent `json:"alarms"`
	}
	if err := json.Unmarshal(body, &alarms); err != nil {
		t.Fatal(err)
	}
	if len(alarms.Alarms) == 0 {
		t.Fatal("no journaled alarms after ingesting a failing fleet")
	}
	for i, a := range alarms.Alarms {
		if a.BatchID == 0 || a.BatchID > uint64(nframes) {
			t.Fatalf("alarm %d has batch_id %d, want 1..%d", i, a.BatchID, nframes)
		}
		if a.TraceID != traceID {
			t.Fatalf("alarm %d has trace_id %#x, want %#x", i, a.TraceID, traceID)
		}
		if a.ArrivalTime.IsZero() {
			t.Fatalf("alarm %d has no arrival_time", i)
		}
		if a.E2ELatencyS <= 0 {
			t.Fatalf("alarm %d has e2e_latency_s %v, want > 0", i, a.E2ELatencyS)
		}
		if a.QueueWaitS < 0 {
			t.Fatalf("alarm %d has negative queue_wait_s %v", i, a.QueueWaitS)
		}
	}

	resp, metrics := postGet(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	text := string(metrics)
	for _, want := range []string{
		"pdm_e2e_alarm_latency_seconds_count",
		"pdm_e2e_queue_wait_seconds",
		"pdm_e2e_traced_batches_total " + strconv.Itoa(nframes),
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
	if strings.Contains(text, "pdm_e2e_traced_alarms_total 0\n") {
		t.Fatal("pdm_e2e_traced_alarms_total stayed 0 despite journaled traced alarms")
	}
}

// TestServeAdminEventsDrainAudit pins the drain audit trail: moving a
// fleet to a peer must leave a drain-start/drain-finish pair per
// vehicle on the source's GET /admin/events, an adopt entry per
// vehicle on the target's, a working ?vehicle= filter, the event-log
// cross-link on /admin/placement, and the per-kind counters on
// /metrics.
func TestServeAdminEventsDrainAudit(t *testing.T) {
	first, _, vehicles := splitFrames(t)
	_, tsa := namedServer(t, "a", nil)
	_, tsb := namedServer(t, "b", nil)

	if resp, body := postBody(t, tsa.URL+"/ingest/stream", "application/octet-stream", first); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %s", resp.StatusCode, body)
	}
	resp, body := postBody(t, tsa.URL+"/admin/drain?to="+tsb.URL, "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %d %s", resp.StatusCode, body)
	}
	var dr drainResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Moved != len(vehicles) {
		t.Fatalf("drain moved %d vehicles, want %d", dr.Moved, len(vehicles))
	}

	type eventsResponse struct {
		Total  uint64             `json:"total"`
		Events []obs.ControlEvent `json:"events"`
	}
	getEvents := func(base, query string) eventsResponse {
		t.Helper()
		resp, body := postGet(t, base+"/admin/events"+query)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /admin/events%s: %d", query, resp.StatusCode)
		}
		var er eventsResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		return er
	}

	// Source: one drain-start and one drain-finish per vehicle, in
	// order, pointing at the target.
	src := getEvents(tsa.URL, "?n=0")
	if src.Total != uint64(2*dr.Moved) {
		t.Fatalf("source logged %d events, want %d (start+finish per vehicle)", src.Total, 2*dr.Moved)
	}
	starts, finishes := map[string]bool{}, map[string]bool{}
	for _, e := range src.Events {
		if e.Engine != "a" || e.Peer != tsb.URL || !vehicles[e.VehicleID] {
			t.Fatalf("drain event with wrong endpoints: %+v", e)
		}
		switch e.Kind {
		case obs.EventDrainStart:
			starts[e.VehicleID] = true
		case obs.EventDrainFinish:
			if !starts[e.VehicleID] {
				t.Fatalf("drain-finish for %s before its drain-start", e.VehicleID)
			}
			if e.DurationS <= 0 {
				t.Fatalf("drain-finish without a duration: %+v", e)
			}
			finishes[e.VehicleID] = true
		default:
			t.Fatalf("unexpected event kind %q on the source", e.Kind)
		}
	}
	if len(starts) != dr.Moved || len(finishes) != dr.Moved {
		t.Fatalf("per-vehicle audit incomplete: %d starts, %d finishes, want %d each",
			len(starts), len(finishes), dr.Moved)
	}

	// The per-vehicle filter isolates one audit trail.
	veh := dr.Vehicles[0]
	forVeh := getEvents(tsa.URL, "?vehicle="+veh)
	if len(forVeh.Events) != 2 {
		t.Fatalf("?vehicle=%s returned %d events, want 2", veh, len(forVeh.Events))
	}
	for _, e := range forVeh.Events {
		if e.VehicleID != veh {
			t.Fatalf("?vehicle=%s leaked an event for %s", veh, e.VehicleID)
		}
	}

	// Target: one adopt per vehicle, arriving over the handoff wire path.
	dst := getEvents(tsb.URL, "?n=0")
	adopts := map[string]bool{}
	for _, e := range dst.Events {
		if e.Kind == obs.EventAdopt && vehicles[e.VehicleID] {
			adopts[e.VehicleID] = true
		}
	}
	if len(adopts) != dr.Moved {
		t.Fatalf("target logged %d adopt events, want %d", len(adopts), dr.Moved)
	}

	// Cordon/uncordon are audited too.
	if resp, _ := postBody(t, tsb.URL+"/admin/cordon?vehicle="+veh, "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("cordon: %d", resp.StatusCode)
	}
	if resp, _ := postBody(t, tsb.URL+"/admin/cordon?vehicle="+veh+"&off=1", "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("uncordon: %d", resp.StatusCode)
	}
	tail := getEvents(tsb.URL, "?vehicle="+veh)
	kinds := make([]string, 0, len(tail.Events))
	for _, e := range tail.Events {
		kinds = append(kinds, e.Kind)
	}
	if len(kinds) < 3 || kinds[len(kinds)-2] != obs.EventCordon || kinds[len(kinds)-1] != obs.EventUncordon {
		t.Fatalf("cordon audit trail = %v, want ... cordon, uncordon", kinds)
	}

	// Placement cross-links the event log.
	resp, body = postGet(t, tsa.URL+"/admin/placement")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("placement: %d", resp.StatusCode)
	}
	var pl struct {
		EventsTotal uint64 `json:"events_total"`
		EventsURL   string `json:"events_url"`
	}
	if err := json.Unmarshal(body, &pl); err != nil {
		t.Fatal(err)
	}
	if pl.EventsTotal != src.Total || pl.EventsURL != "/admin/events" {
		t.Fatalf("placement cross-link = %+v, want %d events at /admin/events", pl, src.Total)
	}

	// The per-kind counter family counts the audit.
	if resp, metrics := postGet(t, tsa.URL+"/metrics"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(string(metrics), `pdm_ctrl_events_total{kind="drain-finish"} `+strconv.Itoa(dr.Moved)) {
		t.Fatalf("/metrics does not count %d drain-finish events", dr.Moved)
	}
}

// TestServeFleetPlacementView pins the /fleet debug endpoint's
// control-plane satellite: with peers configured the response embeds
// the placement view; without peers the field is absent.
func TestServeFleetPlacementView(t *testing.T) {
	_, tsRouted := namedServer(t, "a", map[string]string{"b": "http://127.0.0.1:1"})
	resp, body := postGet(t, tsRouted.URL+"/fleet")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /fleet: %d", resp.StatusCode)
	}
	var routed struct {
		Placement *placementResponse `json:"placement"`
	}
	if err := json.Unmarshal(body, &routed); err != nil {
		t.Fatal(err)
	}
	if routed.Placement == nil {
		t.Fatalf("/fleet with peers lacks a placement view: %s", body)
	}
	if routed.Placement.Self != "a" || len(routed.Placement.Members) != 2 ||
		routed.Placement.EventsURL != "/admin/events" {
		t.Fatalf("/fleet placement = %+v", routed.Placement)
	}

	_, tsSolo := testServer(t)
	resp, body = postGet(t, tsSolo.URL+"/fleet")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /fleet: %d", resp.StatusCode)
	}
	var solo map[string]json.RawMessage
	if err := json.Unmarshal(body, &solo); err != nil {
		t.Fatal(err)
	}
	if _, present := solo["placement"]; present {
		t.Fatal("single-instance /fleet leaked a placement field")
	}
}
