package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/navarchos/pdm/internal/fleetsim"
	"github.com/navarchos/pdm/internal/obs"
	"github.com/navarchos/pdm/internal/wire"
)

// testServer builds a 2-shard server with the fleet tests' sensitive
// threshold factor so the synthetic fleet raises journaled alarms.
func testServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(serverConfig{shards: 2, factor: 4, journalCap: 256})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux)
	t.Cleanup(func() {
		ts.Close()
		s.close() //nolint:errcheck // engine already exercised
	})
	return s, ts
}

func testFleetFrames(t *testing.T) ([]byte, int, int, int) {
	t.Helper()
	cfg := fleetsim.SmallConfig()
	cfg.NumVehicles = 6
	cfg.Days = 120
	cfg.RecordedVehicles = 5
	cfg.RecordedFailures = 2
	cfg.HiddenFailures = 1
	f := fleetsim.Generate(cfg)
	frames, nframes, err := wire.EncodeStream(nil, f.Records, f.Events, 512)
	if err != nil {
		t.Fatal(err)
	}
	return frames, nframes, len(f.Records), len(f.Events)
}

func postBody(t *testing.T, url, contentType string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestServeWireIngestEndToEnd drives the whole data plane over HTTP: a
// binary NVWIRE1 upload must be admitted in full, raise journaled
// alarms queryable fleet-wide and per vehicle, and show up in the
// ingest metrics exposition.
func TestServeWireIngestEndToEnd(t *testing.T) {
	s, ts := testServer(t)
	frames, nframes, nrecs, nevs := testFleetFrames(t)

	resp, body := postBody(t, ts.URL+"/ingest", "application/octet-stream", frames)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /ingest: %d %s", resp.StatusCode, body)
	}
	var ir ingestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Frames != nframes || ir.Records != nrecs || ir.Events != nevs {
		t.Fatalf("ingest response %+v, want %d frames / %d records / %d events",
			ir, nframes, nrecs, nevs)
	}

	// The engine saw everything. The handler's Flush enqueues but does
	// not wait; the quiesce inside VehicleIDs is the barrier that makes
	// the consumer-side counters (and every alarm) visible.
	s.eng.VehicleIDs()
	st := s.eng.Stats()
	if st.RecordsIn != uint64(nrecs) || st.EventsIn != uint64(nevs) {
		t.Fatalf("engine stats %d/%d, want %d/%d", st.RecordsIn, st.EventsIn, nrecs, nevs)
	}

	// Fleet-wide alarm history.
	resp, body = postGet(t, ts.URL+"/alarms")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /alarms: %d", resp.StatusCode)
	}
	var alarms struct {
		Total  uint64           `json:"total"`
		Alarms []obs.AlarmEvent `json:"alarms"`
	}
	if err := json.Unmarshal(body, &alarms); err != nil {
		t.Fatal(err)
	}
	if alarms.Total == 0 || len(alarms.Alarms) == 0 {
		t.Fatalf("no journaled alarms after ingesting a failing fleet: %s", body)
	}

	// Per-vehicle history: every entry must belong to the vehicle asked
	// for, and match the journal's own view.
	veh := alarms.Alarms[len(alarms.Alarms)-1].VehicleID
	resp, body = postGet(t, ts.URL+"/vehicles/"+veh)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /vehicles/%s: %d", veh, resp.StatusCode)
	}
	var vh struct {
		Vehicle string           `json:"vehicle"`
		Alarms  []obs.AlarmEvent `json:"alarms"`
	}
	if err := json.Unmarshal(body, &vh); err != nil {
		t.Fatal(err)
	}
	if vh.Vehicle != veh || len(vh.Alarms) == 0 {
		t.Fatalf("GET /vehicles/%s = %s", veh, body)
	}
	for _, a := range vh.Alarms {
		if a.VehicleID != veh {
			t.Fatalf("vehicle endpoint leaked %s into %s's history", a.VehicleID, veh)
		}
	}

	// Ingest metrics are scraped through the same mux.
	resp, body = postGet(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	for _, fam := range []string{"pdm_ingest_records_total", "pdm_ingest_frames_total",
		"pdm_ingest_bytes_total", "pdm_ingest_decode_seconds"} {
		if !strings.Contains(string(body), fam) {
			t.Fatalf("/metrics missing %s", fam)
		}
	}
}

func postGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestServeStreamEndpoint uploads the same frames through the
// streaming route, which decodes frame-by-frame off the request body.
func TestServeStreamEndpoint(t *testing.T) {
	s, ts := testServer(t)
	frames, nframes, nrecs, _ := testFleetFrames(t)
	resp, body := postBody(t, ts.URL+"/ingest/stream", "application/octet-stream", frames)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /ingest/stream: %d %s", resp.StatusCode, body)
	}
	var ir ingestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Frames != nframes || ir.Records != nrecs {
		t.Fatalf("stream response %+v, want %d frames / %d records", ir, nframes, nrecs)
	}
	// Quiesce before reading the consumer-side counter: the handler's
	// Flush enqueues but does not wait for shard consumers.
	s.eng.VehicleIDs()
	if st := s.eng.Stats(); st.RecordsIn != uint64(nrecs) {
		t.Fatalf("engine saw %d records, want %d", st.RecordsIn, nrecs)
	}
}

// TestServeRejectsCorruptUpload pins the failure path: a corrupt frame
// is refused with 400, counted in pdm_ingest_rejects_total, and admits
// nothing downstream of the broken frame.
func TestServeRejectsCorruptUpload(t *testing.T) {
	_, ts := testServer(t)
	frames, _, _, _ := testFleetFrames(t)
	corrupt := append([]byte(nil), frames...)
	corrupt[wire.HeaderSize+3] ^= 0xff // payload flip: CRC mismatch on frame 1

	resp, body := postBody(t, ts.URL+"/ingest", "application/octet-stream", corrupt)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt upload: %d %s, want 400", resp.StatusCode, body)
	}
	resp, metrics := postGet(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if !strings.Contains(string(metrics), "pdm_ingest_rejects_total 1") {
		t.Fatalf("/metrics does not count the reject:\n%s", metrics)
	}

	// Garbage that is not even a header is refused too.
	resp, _ = postBody(t, ts.URL+"/ingest", "application/octet-stream", []byte("not a frame"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload: %d, want 400", resp.StatusCode)
	}
}

// TestServeTextFormats exercises the CSV and JSON compatibility
// decoders through the Content-Type switch.
func TestServeTextFormats(t *testing.T) {
	s, ts := testServer(t)
	csv := "vehicle,time,rpm,speed,coolantTemp,intakeTemp,mapIntake,MAFairFlowRate\n" +
		"veh-csv,2023-05-01T10:00:00Z,1500,60,88,25,95,14\n" +
		"veh-csv,2023-05-01T10:01:00Z,1520,61,88.5,25,96,14.2\n"
	resp, body := postBody(t, ts.URL+"/ingest", "text/csv", []byte(csv))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST csv: %d %s", resp.StatusCode, body)
	}
	var ir ingestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Records != 2 {
		t.Fatalf("csv ingest %+v, want 2 records", ir)
	}

	ndjson := `{"vehicle":"veh-json","time":"2023-05-01T10:00:00Z","values":[1500,60,88,25,95,14]}
{"vehicle":"veh-json","time":"2023-05-01T10:05:00Z","event":"repair","note":"water pump"}
`
	resp, body = postBody(t, ts.URL+"/ingest", "application/json; charset=utf-8", []byte(ndjson))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST json: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Records != 1 || ir.Events != 1 {
		t.Fatalf("json ingest %+v, want 1 record + 1 event", ir)
	}

	// A schema violation in either format is a 400, not a 500.
	resp, _ = postBody(t, ts.URL+"/ingest", "text/csv", []byte("not,a,schema\n1,2,3\n"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad csv header: %d, want 400", resp.StatusCode)
	}

	s.eng.VehicleIDs() // barrier: Flush alone does not wait for consumers
	if st := s.eng.Stats(); st.RecordsIn != 3 || st.EventsIn != 1 {
		t.Fatalf("engine stats %d/%d, want 3 records / 1 event", st.RecordsIn, st.EventsIn)
	}
}
