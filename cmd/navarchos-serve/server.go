package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/navarchos/pdm"
	"github.com/navarchos/pdm/internal/fleet"
	"github.com/navarchos/pdm/internal/obs"
	"github.com/navarchos/pdm/internal/timeseries"
	"github.com/navarchos/pdm/internal/wire"
)

// serverConfig assembles the ingest front end.
type serverConfig struct {
	shards     int
	batchSize  int
	queueDepth int
	factor     float64
	journalCap int
	maxBody    int64
	resume     io.Reader // restore engine state from a checkpoint
	alarmLog   io.Writer // one line per raw alarm (nil = discard)
	jsonlSink  io.Writer // journal JSONL sink (nil = none)
}

// server owns the engine, the observability stack, and the HTTP mux.
// Ingest requests decode on the request goroutine and admit through
// Engine.IngestBatch, so engine backpressure propagates naturally to
// slow down exactly the producers that overrun a shard.
type server struct {
	eng     *pdm.FleetEngine
	reg     *pdm.MetricsRegistry
	journal *pdm.AlarmJournal
	ingest  *obs.IngestMetrics
	mux     *http.ServeMux
	maxBody int64
	drained chan struct{}
}

// newServer builds the engine with the paper's complete solution per
// vehicle (correlation transform, closest-pair detection, self-tuning
// thresholds) and wires the HTTP routes over obs.NewDebugMux.
func newServer(cfg serverConfig) (*server, error) {
	if cfg.maxBody <= 0 {
		cfg.maxBody = 64 << 20
	}
	reg := pdm.NewMetricsRegistry()
	journal := pdm.NewAlarmJournal(cfg.journalCap)
	if cfg.jsonlSink != nil {
		journal.SetSink(cfg.jsonlSink)
	}
	observer := pdm.NewObserver(reg, pdm.ObserverConfig{Journal: journal})

	engCfg := pdm.FleetEngineConfig{
		NewConfig: func(string) (pdm.PipelineConfig, error) {
			tr, err := pdm.NewTransformer(pdm.Correlation, 12)
			if err != nil {
				return pdm.PipelineConfig{}, err
			}
			wf := timeseries.NewWarmupFilter(5, 20*time.Minute)
			return pdm.PipelineConfig{
				Transformer:   tr,
				Detector:      pdm.NewClosestPair(tr.FeatureNames()),
				Thresholder:   pdm.NewSelfTuningThreshold(cfg.factor),
				ProfileLength: 45,
				Filter:        wf.Keep,
				FilterState:   wf,
				DensityM:      5,
				DensityK:      15,
				Observer:      observer,
			}, nil
		},
		Shards:     cfg.shards,
		BatchSize:  cfg.batchSize,
		QueueDepth: cfg.queueDepth,
		Observer:   observer,
	}
	var eng *pdm.FleetEngine
	var err error
	if cfg.resume != nil {
		eng, err = pdm.NewFleetEngineFromCheckpoint(cfg.resume, engCfg)
	} else {
		eng, err = pdm.NewFleetEngine(engCfg)
	}
	if err != nil {
		return nil, err
	}

	s := &server{
		eng:     eng,
		reg:     reg,
		journal: journal,
		ingest:  obs.NewIngestMetrics(reg),
		maxBody: cfg.maxBody,
		drained: make(chan struct{}),
	}
	// The journal captures every alarm with full context via the
	// observer; the channel drain below is the live tail for operators.
	go func() {
		defer close(s.drained)
		for a := range eng.Alarms() {
			if cfg.alarmLog != nil {
				fmt.Fprintf(cfg.alarmLog, "%s  %-8s %-32s score=%.4f threshold=%.4f\n",
					a.Time.Format("2006-01-02 15:04"), a.VehicleID, a.Feature, a.Score, a.Threshold)
			}
		}
	}()

	s.mux = pdm.NewDebugMux(pdm.DebugConfig{
		Registry:    reg,
		Journal:     journal,
		FleetStatus: func() any { return eng.Stats() },
	})
	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("POST /ingest/stream", s.handleIngestStream)
	s.mux.HandleFunc("GET /alarms", s.handleAlarms)
	s.mux.HandleFunc("GET /vehicles/{id}", s.handleVehicle)
	return s, nil
}

// close flushes and stops the engine and waits for the alarm drain.
func (s *server) close() error {
	err := s.eng.Close()
	<-s.drained
	return err
}

// countingReader tallies bytes handed to a decoder.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ingestResponse is the POST /ingest response body.
type ingestResponse struct {
	Frames  int `json:"frames"`
	Records int `json:"records"`
	Events  int `json:"events"`
}

// handleIngest admits one telemetry batch. The decoder is chosen by
// Content-Type — NVWIRE1 binary by default, text/csv and
// application/json for interoperability — and every format delivers
// through the same FrameSink into Engine.IngestBatch. Producers must
// upload each vehicle's telemetry in chronological order (the engine's
// ordering contract); batches themselves may interleave vehicles
// freely.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = strings.TrimSpace(ct[:i])
	}
	switch ct {
	case "text/csv":
		s.decodeAndAdmit(w, r, func(body io.Reader, sink wire.FrameSink) error {
			_, err := wire.DecodeCSV(body, 0, sink)
			return err
		})
	case "application/json":
		s.decodeAndAdmit(w, r, func(body io.Reader, sink wire.FrameSink) error {
			_, err := wire.DecodeJSON(body, 0, sink)
			return err
		})
	default: // NVWIRE1 binary
		s.handleIngestStream(w, r)
	}
}

// handleIngestStream decodes a (possibly chunked) NVWIRE1 frame stream,
// admitting each frame as it completes — a producer can hold the
// connection open and trickle frames without buffering the whole body.
func (s *server) handleIngestStream(w http.ResponseWriter, r *http.Request) {
	s.decodeAndAdmit(w, r, func(body io.Reader, sink wire.FrameSink) error {
		var dec wire.Decoder
		dec.MaxFrameBytes = int(s.maxBody)
		_, err := dec.DecodeStream(body, sink)
		return err
	})
}

// decodeAndAdmit runs one decoder over the request body, counting
// outcomes into the ingest metrics and flushing the engine so admitted
// records become visible to /fleet and /alarms promptly.
func (s *server) decodeAndAdmit(w http.ResponseWriter, r *http.Request,
	decode func(io.Reader, wire.FrameSink) error) {
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, s.maxBody)}
	var resp ingestResponse
	var engineErr error
	sink := wire.SinkFunc(func(b *wire.Batch) error {
		if err := s.eng.IngestBatch(b.Records, b.Events); err != nil {
			engineErr = err
			return err
		}
		resp.Frames++
		resp.Records += len(b.Records)
		resp.Events += len(b.Events)
		return nil
	})
	start := time.Now()
	err := decode(body, sink)
	s.ingest.ObserveDecode(time.Since(start), body.n, resp.Frames, resp.Records, resp.Events)
	if err != nil {
		if engineErr != nil || errors.Is(err, fleet.ErrClosed) {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		// Decode-level rejection: corrupt, truncated, or schema-invalid.
		s.ingest.Reject()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.eng.Flush()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck // client went away
}

// journalN parses the ?n= query (default def).
func journalN(r *http.Request, def int) int {
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			return v
		}
	}
	return def
}

// handleAlarms returns the most recent journal entries, oldest first.
func (s *server) handleAlarms(w http.ResponseWriter, r *http.Request) {
	alarms := s.journal.Last(journalN(r, 32))
	if alarms == nil {
		alarms = []pdm.AlarmJournalEntry{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct { //nolint:errcheck // client went away
		Total  uint64                  `json:"total"`
		Alarms []pdm.AlarmJournalEntry `json:"alarms"`
	}{s.journal.Total(), alarms})
}

// handleVehicle returns one vehicle's retained alarm history.
func (s *server) handleVehicle(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	alarms := s.journal.LastFor(id, journalN(r, 32))
	if alarms == nil {
		alarms = []pdm.AlarmJournalEntry{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct { //nolint:errcheck // client went away
		Vehicle string                  `json:"vehicle"`
		Alarms  []pdm.AlarmJournalEntry `json:"alarms"`
	}{id, alarms})
}
