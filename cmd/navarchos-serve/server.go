package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/navarchos/pdm"
	"github.com/navarchos/pdm/internal/controlplane"
	"github.com/navarchos/pdm/internal/fleet"
	"github.com/navarchos/pdm/internal/obs"
	"github.com/navarchos/pdm/internal/timeseries"
	"github.com/navarchos/pdm/internal/wire"
)

// serverConfig assembles the ingest front end.
type serverConfig struct {
	shards     int
	batchSize  int
	queueDepth int
	factor     float64
	journalCap int
	maxBody    int64
	resume     io.Reader // restore engine state from a checkpoint
	alarmLog   io.Writer // one line per raw alarm (nil = discard)
	jsonlSink  io.Writer // journal JSONL sink (nil = none)
	eventsSink io.Writer // control-plane event log JSONL sink (nil = none)

	// name identifies this instance on the placement ring ("self" when
	// empty); peers maps the other instances' names to their base URLs.
	// With no peers the ring is a single node and /ingest admits every
	// vehicle — the single-instance deployment is unchanged.
	name  string
	peers map[string]string
}

// server owns the engine, the observability stack, and the HTTP mux.
// Ingest requests decode on the request goroutine and admit through
// Engine.IngestBatch, so engine backpressure propagates naturally to
// slow down exactly the producers that overrun a shard.
type server struct {
	eng     *pdm.FleetEngine
	reg     *pdm.MetricsRegistry
	journal *pdm.AlarmJournal
	ingest  *obs.IngestMetrics
	ctrl    *obs.CtrlMetrics
	events  *obs.EventLog
	mux     *http.ServeMux
	maxBody int64
	drained chan struct{}

	// batchSeq numbers ingest batches for alarm provenance: every
	// admitted frame gets a process-monotone batch ID.
	batchSeq atomic.Uint64

	// Placement: this instance's name, its peers, and the consistent
	// ring over all of them. The ring is static per process — placement
	// changes travel as drains, not ring edits.
	name   string
	peers  map[string]string
	ring   *controlplane.Ring
	client *http.Client

	// migrated maps each vehicle this instance drained away to the
	// peer base URL that adopted it, so a later 409 for that vehicle
	// can point the producer at the adoptee. Entries are per vehicle
	// and per drain — a vehicle that is merely cordoned, or drained in
	// an earlier drain to a different peer, never borrows another
	// vehicle's destination. Adopting a vehicle back removes its entry.
	migrateMu sync.Mutex
	migrated  map[string]string

	// adopted tracks vehicles this instance accepted via handoff even
	// though the ring places them on a peer. Adoption overrides ring
	// ownership — the ring gives the default placement, a drain re-pins
	// — so ingest for these vehicles stays local instead of being
	// refused as misrouted (which would leave a drained vehicle
	// bounced between the origin's cordon fence and the adoptee's
	// router forever). Draining a vehicle away removes its entry.
	adoptMu sync.Mutex
	adopted map[string]bool
}

// isAdopted reports whether id was handed to this instance despite a
// peer owning it on the ring. Only consulted on a ring mismatch, so
// the lock is off the common ingest path.
func (s *server) isAdopted(id string) bool {
	s.adoptMu.Lock()
	ok := s.adopted[id]
	s.adoptMu.Unlock()
	return ok
}

// newServer builds the engine with the paper's complete solution per
// vehicle (correlation transform, closest-pair detection, self-tuning
// thresholds) and wires the HTTP routes over obs.NewDebugMux.
func newServer(cfg serverConfig) (*server, error) {
	if cfg.maxBody <= 0 {
		cfg.maxBody = 64 << 20
	}
	reg := pdm.NewMetricsRegistry()
	journal := pdm.NewAlarmJournal(cfg.journalCap)
	if cfg.jsonlSink != nil {
		journal.SetSink(cfg.jsonlSink)
	}
	observer := pdm.NewObserver(reg, pdm.ObserverConfig{Journal: journal})

	engCfg := pdm.FleetEngineConfig{
		NewConfig: func(string) (pdm.PipelineConfig, error) {
			tr, err := pdm.NewTransformer(pdm.Correlation, 12)
			if err != nil {
				return pdm.PipelineConfig{}, err
			}
			wf := timeseries.NewWarmupFilter(5, 20*time.Minute)
			return pdm.PipelineConfig{
				Transformer:   tr,
				Detector:      pdm.NewClosestPair(tr.FeatureNames()),
				Thresholder:   pdm.NewSelfTuningThreshold(cfg.factor),
				ProfileLength: 45,
				Filter:        wf.Keep,
				FilterState:   wf,
				DensityM:      5,
				DensityK:      15,
				Observer:      observer,
			}, nil
		},
		Shards:     cfg.shards,
		BatchSize:  cfg.batchSize,
		QueueDepth: cfg.queueDepth,
		Observer:   observer,
	}
	var eng *pdm.FleetEngine
	var err error
	if cfg.resume != nil {
		eng, err = pdm.NewFleetEngineFromCheckpoint(cfg.resume, engCfg)
	} else {
		eng, err = pdm.NewFleetEngine(engCfg)
	}
	if err != nil {
		return nil, err
	}

	name := cfg.name
	if name == "" {
		name = "self"
	}
	ring := controlplane.NewRing(0)
	ring.Add(name)
	for peer := range cfg.peers {
		ring.Add(peer)
	}
	events := obs.NewEventLog(cfg.journalCap, reg)
	if cfg.eventsSink != nil {
		events.SetSink(cfg.eventsSink)
	}
	s := &server{
		eng:      eng,
		reg:      reg,
		journal:  journal,
		ingest:   obs.NewIngestMetrics(reg),
		ctrl:     obs.NewCtrlMetrics(reg),
		events:   events,
		maxBody:  cfg.maxBody,
		drained:  make(chan struct{}),
		name:     name,
		peers:    cfg.peers,
		ring:     ring,
		client:   &http.Client{Timeout: 30 * time.Second},
		adopted:  make(map[string]bool),
		migrated: make(map[string]string),
	}
	// The journal captures every alarm with full context via the
	// observer; the channel drain below is the live tail for operators.
	go func() {
		defer close(s.drained)
		for a := range eng.Alarms() {
			if cfg.alarmLog != nil {
				fmt.Fprintf(cfg.alarmLog, "%s  %-8s %-32s score=%.4f threshold=%.4f\n",
					a.Time.Format("2006-01-02 15:04"), a.VehicleID, a.Feature, a.Score, a.Threshold)
			}
		}
	}()

	debugCfg := pdm.DebugConfig{
		Registry:    reg,
		Journal:     journal,
		FleetStatus: func() any { return eng.Stats() },
	}
	if s.routed() {
		// One endpoint, both planes: /fleet pairs the engine stats with
		// the control-plane placement view when this instance has peers.
		debugCfg.Placement = func() any { return s.placementView() }
	}
	s.mux = pdm.NewDebugMux(debugCfg)
	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("POST /ingest/stream", s.handleIngestStream)
	s.mux.HandleFunc("GET /alarms", s.handleAlarms)
	s.mux.HandleFunc("GET /vehicles/{id}", s.handleVehicle)
	s.mux.HandleFunc("POST /admin/cordon", s.handleAdminCordon)
	s.mux.HandleFunc("POST /admin/drain", s.handleAdminDrain)
	s.mux.HandleFunc("GET /admin/placement", s.handleAdminPlacement)
	s.mux.HandleFunc("GET /admin/events", s.handleAdminEvents)
	return s, nil
}

// close flushes and stops the engine and waits for the alarm drain.
func (s *server) close() error {
	err := s.eng.Close()
	<-s.drained
	return err
}

// countingReader tallies bytes handed to a decoder.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ingestResponse is the POST /ingest response body.
type ingestResponse struct {
	Frames  int `json:"frames"`
	Records int `json:"records"`
	Events  int `json:"events"`
	// Handoffs counts adopted vehicle-handoff frames (streaming binary
	// ingest only).
	Handoffs int `json:"handoffs,omitempty"`
}

// unavailableResponse is the typed 409 body for a vehicle the instance
// cannot serve right now (cordoned, mid-handoff, or owned elsewhere).
// RetryAfter mirrors the Retry-After header; Peer, when set, is where
// the vehicle went (the last drain target or the ring owner's URL).
type unavailableResponse struct {
	Error      string `json:"error"`
	Vehicle    string `json:"vehicle"`
	State      string `json:"state"`
	Refused    int    `json:"refused"`
	RetryAfter int    `json:"retry_after_seconds"`
	Peer       string `json:"peer,omitempty"`
}

// writeUnavailable sends the typed 409: the producer should wait
// RetryAfter (or re-resolve placement to Peer) and resend exactly the
// refused vehicles — batch admission is all-or-nothing per vehicle, so
// the retry cannot duplicate records. The Peer hint is attached only
// for a vehicle this instance actually drained away (state
// "migrating" with a recorded destination); a plain cordon has no
// peer to point at.
func (s *server) writeUnavailable(w http.ResponseWriter, resp unavailableResponse) {
	if resp.RetryAfter <= 0 {
		resp.RetryAfter = 1
	}
	if resp.Peer == "" && resp.State == fleet.StateMigrating {
		s.migrateMu.Lock()
		resp.Peer = s.migrated[resp.Vehicle]
		s.migrateMu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", strconv.Itoa(resp.RetryAfter))
	w.WriteHeader(http.StatusConflict)
	json.NewEncoder(w).Encode(resp) //nolint:errcheck // client went away
}

// misroute records items refused because their ring owner is another
// instance.
type misroute struct {
	vehicle string
	owner   string
	refused int
}

// routed reports whether this instance shares the ring with peers.
func (s *server) routed() bool { return len(s.peers) > 0 }

// filterOwned drops items whose ring owner is a peer, in place,
// counting them into mis. Per-vehicle all-or-nothing holds trivially:
// ownership is a pure function of the vehicle ID, so either every one
// of a vehicle's items passes or none does.
func (s *server) filterOwned(b *wire.Batch, mis *misroute) {
	keepR := b.Records[:0]
	for _, r := range b.Records {
		if owner := s.ring.Owner(r.VehicleID); owner != s.name && !s.isAdopted(r.VehicleID) {
			mis.refused++
			if mis.vehicle == "" {
				mis.vehicle, mis.owner = r.VehicleID, owner
			}
			continue
		}
		keepR = append(keepR, r)
	}
	b.Records = keepR
	keepE := b.Events[:0]
	for _, ev := range b.Events {
		if owner := s.ring.Owner(ev.VehicleID); owner != s.name && !s.isAdopted(ev.VehicleID) {
			mis.refused++
			if mis.vehicle == "" {
				mis.vehicle, mis.owner = ev.VehicleID, owner
			}
			continue
		}
		keepE = append(keepE, ev)
	}
	b.Events = keepE
}

// handleIngest admits one telemetry batch. The decoder is chosen by
// Content-Type — NVWIRE1 binary by default, text/csv and
// application/json for interoperability — and every format delivers
// through the same FrameSink into Engine.IngestBatch. Producers must
// upload each vehicle's telemetry in chronological order (the engine's
// ordering contract); batches themselves may interleave vehicles
// freely.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = strings.TrimSpace(ct[:i])
	}
	switch ct {
	case "text/csv":
		s.decodeAndAdmit(w, r, func(body io.Reader, sink wire.FrameSink, _ *ingestResponse) error {
			_, err := wire.DecodeCSV(body, 0, sink)
			return err
		})
	case "application/json":
		s.decodeAndAdmit(w, r, func(body io.Reader, sink wire.FrameSink, _ *ingestResponse) error {
			_, err := wire.DecodeJSON(body, 0, sink)
			return err
		})
	default: // NVWIRE1 binary
		s.handleIngestStream(w, r)
	}
}

// handleIngestStream decodes a (possibly chunked) NVWIRE1 frame stream,
// admitting each frame as it completes — a producer can hold the
// connection open and trickle frames without buffering the whole body.
// This is also the endpoint that accepts vehicle-handoff frames: a
// peer's drain delivers extracted vehicles here and they are adopted
// into the local engine before the next telemetry frame decodes.
func (s *server) handleIngestStream(w http.ResponseWriter, r *http.Request) {
	s.decodeAndAdmit(w, r, func(body io.Reader, sink wire.FrameSink, resp *ingestResponse) error {
		var dec wire.Decoder
		dec.MaxFrameBytes = int(s.maxBody)
		dec.HandoffSink = func(state []byte) error {
			// The payload aliases the decode buffer; the snapshot must
			// outlive this call, so clone before decoding.
			vs, err := fleet.DecodeVehicleState(bytes.Clone(state))
			if err != nil {
				return err
			}
			if err := s.eng.AdoptVehicle(vs); err != nil {
				return err
			}
			if s.ring.Owner(vs.ID) != s.name {
				s.adoptMu.Lock()
				s.adopted[vs.ID] = true
				s.adoptMu.Unlock()
			}
			// A vehicle handed back after an earlier drain away lives
			// here again; its old migration hint is stale.
			s.migrateMu.Lock()
			delete(s.migrated, vs.ID)
			s.migrateMu.Unlock()
			s.events.Record(obs.ControlEvent{Kind: obs.EventAdopt, Engine: s.name, VehicleID: vs.ID})
			resp.Handoffs++
			return nil
		}
		_, err := dec.DecodeStream(body, sink)
		return err
	})
}

// decodeAndAdmit runs one decoder over the request body, counting
// outcomes into the ingest metrics and flushing the engine so admitted
// records become visible to /fleet and /alarms promptly.
//
// Engine-level refusals map to typed statuses rather than silent drops:
// a cordoned or mid-handoff vehicle is 409 Conflict with a Retry-After
// hint (retry the refused vehicles verbatim — admission is all-or-
// nothing per vehicle), a closed engine is 503, and everything the
// decoder itself rejects stays 400.
func (s *server) decodeAndAdmit(w http.ResponseWriter, r *http.Request,
	decode func(io.Reader, wire.FrameSink, *ingestResponse) error) {
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, s.maxBody)}
	var resp ingestResponse
	var engineErr error
	var mis misroute
	start := time.Now()
	sink := wire.SinkFunc(func(b *wire.Batch) error {
		if s.routed() {
			s.filterOwned(b, &mis)
		}
		// One provenance context per frame: request receipt stands in
		// for the first frame's wire arrival; on a long-lived stream,
		// later frames are stamped as they complete decoding.
		arrival := start
		if resp.Frames > 0 {
			arrival = time.Now()
		}
		bc := &obs.BatchCtx{
			BatchID: s.batchSeq.Add(1),
			TraceID: b.TraceID,
			Arrival: arrival,
		}
		if err := s.eng.IngestBatchCtx(b.Records, b.Events, bc); err != nil {
			engineErr = err
			return err
		}
		resp.Frames++
		resp.Records += len(b.Records)
		resp.Events += len(b.Events)
		return nil
	})
	err := decode(body, sink, &resp)
	s.ingest.ObserveDecode(time.Since(start), body.n, resp.Frames, resp.Records, resp.Events)
	if err != nil {
		var vu *fleet.VehicleUnavailableError
		switch {
		case errors.As(err, &vu):
			// Frames admitted before the refusal stay admitted — flush
			// them so the producer's retry resumes, not restarts.
			s.eng.Flush()
			s.writeUnavailable(w, unavailableResponse{
				Error:   "vehicle unavailable",
				Vehicle: vu.VehicleID,
				State:   vu.State,
				Refused: vu.Refused,
			})
		case errors.Is(err, fleet.ErrVehicleExists):
			// A handoff for a vehicle this engine already serves: the
			// sender must not retry blindly, the state diverged.
			http.Error(w, err.Error(), http.StatusConflict)
		case engineErr != nil || errors.Is(err, fleet.ErrClosed):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		default:
			// Decode-level rejection: corrupt, truncated, schema-invalid
			// telemetry, or a handoff payload that is not a valid
			// vehicle state.
			s.ingest.Reject()
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	s.eng.Flush()
	if mis.refused > 0 {
		// Misrouted items were filtered (never admitted); everything
		// owned here went through. Point the producer at the owner.
		s.writeUnavailable(w, unavailableResponse{
			Error:   "vehicle placed on peer " + mis.owner,
			Vehicle: mis.vehicle,
			State:   "misrouted",
			Refused: mis.refused,
			Peer:    s.peers[mis.owner],
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck // client went away
}

// journalN parses the ?n= query (default def).
func journalN(r *http.Request, def int) int {
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			return v
		}
	}
	return def
}

// handleAlarms returns the most recent journal entries, oldest first.
func (s *server) handleAlarms(w http.ResponseWriter, r *http.Request) {
	alarms := s.journal.Last(journalN(r, 32))
	if alarms == nil {
		alarms = []pdm.AlarmJournalEntry{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct { //nolint:errcheck // client went away
		Total  uint64                  `json:"total"`
		Alarms []pdm.AlarmJournalEntry `json:"alarms"`
	}{s.journal.Total(), alarms})
}

// handleVehicle returns one vehicle's retained alarm history.
func (s *server) handleVehicle(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	alarms := s.journal.LastFor(id, journalN(r, 32))
	if alarms == nil {
		alarms = []pdm.AlarmJournalEntry{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct { //nolint:errcheck // client went away
		Vehicle string                  `json:"vehicle"`
		Alarms  []pdm.AlarmJournalEntry `json:"alarms"`
	}{id, alarms})
}

// writeJSON writes v as the 200 response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client went away
}

// handleAdminCordon fences one vehicle (POST /admin/cordon?vehicle=X):
// further ingest for it gets the typed 409 until the fence lifts.
// ?off=1 lifts the fence instead.
func (s *server) handleAdminCordon(w http.ResponseWriter, r *http.Request) {
	vehicle := r.URL.Query().Get("vehicle")
	if vehicle == "" {
		http.Error(w, "missing ?vehicle=", http.StatusBadRequest)
		return
	}
	if r.URL.Query().Get("off") != "" {
		s.eng.Uncordon(vehicle)
		s.events.Record(obs.ControlEvent{Kind: obs.EventUncordon, Engine: s.name, VehicleID: vehicle})
	} else {
		s.eng.Cordon(vehicle)
		s.events.Record(obs.ControlEvent{Kind: obs.EventCordon, Engine: s.name, VehicleID: vehicle})
	}
	state := s.eng.CordonState(vehicle)
	if state == "" {
		state = "serving"
	}
	writeJSON(w, struct {
		Vehicle string `json:"vehicle"`
		State   string `json:"state"`
	}{vehicle, state})
}

// drainResponse is the POST /admin/drain response body.
type drainResponse struct {
	Moved    int      `json:"moved"`
	Vehicles []string `json:"vehicles"`
	To       string   `json:"to"`
}

// handleAdminDrain moves vehicles to a peer (POST /admin/drain?to=URL,
// optionally ?vehicle=ID for a single vehicle; default all residents).
// The handoff is transactional per vehicle: each vehicle is extracted
// at a batch boundary and shipped as its own single-frame POST to the
// peer's /ingest/stream (ship), so one request never carries more
// than one vehicle's state and the peer's -max-body bounds a frame,
// not the whole fleet. Only a peer-confirmed adoption counts as moved
// — an unconfirmed vehicle is re-adopted locally before the drain
// aborts, so at every instant each vehicle is live on exactly one
// instance. Vehicles confirmed before a mid-drain failure stay moved
// (the response says how many); re-issuing the drain resumes with the
// rest. Moved vehicles stay fenced here ("migrating") and later
// ingest for them 409s with the recorded peer hint.
func (s *server) handleAdminDrain(w http.ResponseWriter, r *http.Request) {
	to := strings.TrimRight(r.URL.Query().Get("to"), "/")
	if to == "" {
		http.Error(w, "missing ?to=", http.StatusBadRequest)
		return
	}
	var ids []string
	if v := r.URL.Query().Get("vehicle"); v != "" {
		ids = []string{v}
	} else {
		ids = s.eng.VehicleIDs()
	}

	var names []string
	fail := func(status int, err error) {
		http.Error(w, fmt.Sprintf("drain failed after %d vehicles moved: %v", len(names), err), status)
	}
	for _, id := range ids {
		start := time.Now()
		vs, err := s.eng.ExtractVehicle(id)
		if errors.Is(err, fleet.ErrUnknownVehicle) {
			// Placed here but never materialised — nothing to move, and
			// an operator fence set via /admin/cordon stays put (the
			// engine restores it on the failed extraction).
			continue
		}
		if err != nil {
			fail(http.StatusInternalServerError, err)
			return
		}
		s.events.Record(obs.ControlEvent{Kind: obs.EventDrainStart, Engine: s.name,
			Peer: to, VehicleID: id})
		if status, err := s.ship(to, vs); err != nil {
			s.events.Record(obs.ControlEvent{Kind: obs.EventDrainAbort, Engine: s.name,
				Peer: to, VehicleID: id, Detail: err.Error()})
			fail(status, err)
			return
		}
		s.ctrl.ObserveHandoff(time.Since(start))
		s.adoptMu.Lock()
		delete(s.adopted, id)
		s.adoptMu.Unlock()
		s.migrateMu.Lock()
		s.migrated[id] = to
		s.migrateMu.Unlock()
		s.events.Record(obs.ControlEvent{Kind: obs.EventDrainFinish, Engine: s.name,
			Peer: to, VehicleID: id, DurationS: time.Since(start).Seconds()})
		names = append(names, id)
	}
	sort.Strings(names)
	writeJSON(w, drainResponse{Moved: len(names), Vehicles: names, To: to})
}

// ship delivers one extracted vehicle to the peer as a single
// KindHandoff frame and returns nil only when the peer confirmed the
// adoption (2xx with handoffs == 1 in its ingestResponse). Every
// unconfirmed outcome re-adopts the state locally before returning,
// with two exceptions that would otherwise leave the vehicle live on
// both instances at once:
//
//   - the peer answered 409 — it already serves a live handler for
//     the vehicle, so the peer's copy wins and the local state stays
//     fenced (re-adopting here would be the split-brain the handoff
//     design exists to prevent); the 409 hint is pointed at the peer;
//   - the POST failed in transport, so the confirmation may have been
//     lost rather than the delivery: the peer's placement is
//     consulted, and if the vehicle is resident there the handoff is
//     treated as confirmed.
func (s *server) ship(to string, vs fleet.VehicleState) (int, error) {
	frame, err := wire.AppendHandoff(nil, vs.Encode())
	if err != nil {
		return http.StatusInternalServerError, s.readopt(vs, err)
	}
	resp, err := s.client.Post(to+"/ingest/stream", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		if s.residentOn(to, vs.ID) {
			return 0, nil
		}
		return http.StatusBadGateway, s.readopt(vs, err)
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close() //nolint:errcheck // read to completion above
	if resp.StatusCode == http.StatusConflict {
		s.migrateMu.Lock()
		s.migrated[vs.ID] = to
		s.migrateMu.Unlock()
		s.events.Record(obs.ControlEvent{Kind: obs.EventPeerConflict, Engine: s.name,
			Peer: to, VehicleID: vs.ID, Detail: string(bytes.TrimSpace(body))})
		return http.StatusConflict, fmt.Errorf(
			"peer already serves vehicle %s (%s); local state kept fenced, peer copy wins",
			vs.ID, bytes.TrimSpace(body))
	}
	var ir ingestResponse
	if resp.StatusCode/100 == 2 && json.Unmarshal(body, &ir) == nil && ir.Handoffs == 1 {
		return 0, nil
	}
	return http.StatusBadGateway, s.readopt(vs, fmt.Errorf(
		"peer did not adopt vehicle %s: %s: %s", vs.ID, resp.Status, bytes.TrimSpace(body)))
}

// readopt returns an extracted vehicle to local service after a ship
// the peer did not confirm, so a failed drain strands nothing.
func (s *server) readopt(vs fleet.VehicleState, cause error) error {
	if err := s.eng.AdoptVehicle(vs); err != nil {
		// Should be unreachable (we hold the only copy of the extracted
		// state), but losing a vehicle must be loud.
		return fmt.Errorf("%v; re-adopt of vehicle %s failed, state lost: %v", cause, vs.ID, err)
	}
	return cause
}

// residentOn reports whether the peer's placement lists id as
// resident — the tiebreaker for a handoff POST whose response was
// lost in transport.
func (s *server) residentOn(peer, id string) bool {
	resp, err := s.client.Get(peer + "/admin/placement")
	if err != nil {
		return false
	}
	defer resp.Body.Close() //nolint:errcheck // body fully decoded
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var pl struct {
		Residents []string `json:"residents"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&pl) != nil {
		return false
	}
	for _, v := range pl.Residents {
		if v == id {
			return true
		}
	}
	return false
}

// placementMember is one ring member in the placement listing.
type placementMember struct {
	Name string `json:"name"`
	URL  string `json:"url,omitempty"` // empty for this instance
}

// placementResponse is this instance's control-plane view: the ring
// membership, the vehicles resident in the local engine, the adoption
// and migration override tables, and a cross-link into the event log
// that audits how the tables got that way. Served by /admin/placement
// and embedded in /fleet's "placement" field when peers are configured.
type placementResponse struct {
	Self      string            `json:"self"`
	Members   []placementMember `json:"members"`
	Residents []string          `json:"residents"`
	Adopted   []string          `json:"adopted,omitempty"`
	Migrated  map[string]string `json:"migrated,omitempty"`
	// EventsTotal counts control-plane events ever recorded; EventsURL
	// is where the retained entries are served.
	EventsTotal uint64 `json:"events_total"`
	EventsURL   string `json:"events_url"`
}

// placementView snapshots the control-plane state.
func (s *server) placementView() placementResponse {
	members := []placementMember{{Name: s.name}}
	for name, url := range s.peers {
		members = append(members, placementMember{Name: name, URL: url})
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Name < members[j].Name })
	s.migrateMu.Lock()
	migrated := make(map[string]string, len(s.migrated))
	for id, to := range s.migrated {
		migrated[id] = to
	}
	s.migrateMu.Unlock()
	s.adoptMu.Lock()
	adopted := make([]string, 0, len(s.adopted))
	for id := range s.adopted {
		adopted = append(adopted, id)
	}
	s.adoptMu.Unlock()
	sort.Strings(adopted)
	return placementResponse{
		Self:        s.name,
		Members:     members,
		Residents:   s.eng.VehicleIDs(),
		Adopted:     adopted,
		Migrated:    migrated,
		EventsTotal: s.events.Total(),
		EventsURL:   "/admin/events",
	}
}

// handleAdminPlacement reports this instance's view of the ring and the
// vehicles currently resident in its engine.
func (s *server) handleAdminPlacement(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.placementView())
}

// handleAdminEvents returns the most recent control-plane events,
// oldest first (?n= bounds the count, ?vehicle= filters to one
// vehicle's audit trail).
func (s *server) handleAdminEvents(w http.ResponseWriter, r *http.Request) {
	n := journalN(r, 64)
	var events []obs.ControlEvent
	if v := r.URL.Query().Get("vehicle"); v != "" {
		events = s.events.LastFor(v, n)
	} else {
		events = s.events.Last(n)
	}
	if events == nil {
		events = []obs.ControlEvent{}
	}
	writeJSON(w, struct {
		Total  uint64             `json:"total"`
		Events []obs.ControlEvent `json:"events"`
	}{s.events.Total(), events})
}
