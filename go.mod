module github.com/navarchos/pdm

go 1.22
