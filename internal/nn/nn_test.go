package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/navarchos/pdm/internal/mat"
)

// numericalGradCheck verifies Backward against central finite
// differences of a scalar loss L = sum(out^2)/2 for both parameters and
// inputs.
func numericalGradCheck(t *testing.T, layer Layer, rows, cols int, seed int64, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := mat.NewMatrix(rows, cols)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	loss := func() float64 {
		out := layer.Forward(x.Clone())
		var l float64
		for _, v := range out.Data {
			l += v * v / 2
		}
		return l
	}
	// Analytic gradients.
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	out := layer.Forward(x.Clone())
	gradOut := out.Clone() // dL/dout = out for L = sum(out^2)/2
	dx := layer.Backward(gradOut)

	// Input gradient check (sampled entries).
	const eps = 1e-5
	checkEntries := len(x.Data)
	if checkEntries > 20 {
		checkEntries = 20
	}
	for c := 0; c < checkEntries; c++ {
		i := rng.Intn(len(x.Data))
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := loss()
		x.Data[i] = orig - eps
		lm := loss()
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dx.Data[i]) > tol*(1+math.Abs(num)) {
			t.Errorf("input grad [%d]: analytic %v vs numeric %v", i, dx.Data[i], num)
		}
	}
	// Parameter gradient check (sampled entries). Recompute analytic
	// gradients freshly since loss() calls above overwrote caches.
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	out = layer.Forward(x.Clone())
	layer.Backward(out.Clone())
	for pi, p := range layer.Params() {
		n := len(p.W)
		samples := n
		if samples > 10 {
			samples = 10
		}
		for c := 0; c < samples; c++ {
			j := rng.Intn(n)
			orig := p.W[j]
			p.W[j] = orig + eps
			lp := loss()
			p.W[j] = orig - eps
			lm := loss()
			p.W[j] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-p.G[j]) > tol*(1+math.Abs(num)) {
				t.Errorf("param %d grad [%d]: analytic %v vs numeric %v", pi, j, p.G[j], num)
			}
		}
	}
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	numericalGradCheck(t, NewLinear(4, 3, rng), 5, 4, 2, 1e-4)
}

func TestReLUGradients(t *testing.T) {
	numericalGradCheck(t, NewReLU(), 4, 6, 3, 1e-4)
}

func TestSigmoidGradients(t *testing.T) {
	numericalGradCheck(t, NewSigmoid(), 4, 6, 4, 1e-4)
}

func TestTanhGradients(t *testing.T) {
	numericalGradCheck(t, NewTanh(), 4, 6, 5, 1e-4)
}

func TestLayerNormGradients(t *testing.T) {
	numericalGradCheck(t, NewLayerNorm(6), 4, 6, 6, 1e-3)
}

func TestSelfAttentionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	numericalGradCheck(t, NewSelfAttention(6, 2, rng), 5, 6, 8, 1e-3)
}

func TestResidualGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	numericalGradCheck(t, NewResidual(NewLinear(6, 6, rng)), 3, 6, 10, 1e-4)
}

func TestSequentialGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seq := NewSequential(
		NewLinear(5, 8, rng),
		NewReLU(),
		NewLinear(8, 5, rng),
	)
	numericalGradCheck(t, seq, 4, 5, 12, 1e-4)
}

func TestPositionalEncoding(t *testing.T) {
	pe := NewPositionalEncoding(8)
	x := mat.NewMatrix(4, 8)
	out := pe.Forward(x)
	// Position 0: sin(0)=0 at even dims, cos(0)=1 at odd dims.
	if out.At(0, 0) != 0 || out.At(0, 1) != 1 {
		t.Errorf("pos 0 encoding = %v, %v", out.At(0, 0), out.At(0, 1))
	}
	// Different positions get different encodings.
	same := true
	for j := 0; j < 8; j++ {
		if out.At(1, j) != out.At(2, j) {
			same = false
		}
	}
	if same {
		t.Error("positions 1 and 2 have identical encodings")
	}
	// Identity gradient and no params.
	g := mat.NewMatrix(4, 8)
	for i := range g.Data {
		g.Data[i] = float64(i)
	}
	back := pe.Backward(g)
	for i := range g.Data {
		if back.Data[i] != g.Data[i] {
			t.Fatal("positional encoding gradient not identity")
		}
	}
	if pe.Params() != nil {
		t.Error("positional encoding should have no params")
	}
}

func TestSelfAttentionPanicsOnBadHeads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dim not divisible by heads should panic")
		}
	}()
	NewSelfAttention(7, 2, rand.New(rand.NewSource(1)))
}

func TestMSELoss(t *testing.T) {
	pred, _ := mat.FromRows([][]float64{{1, 2}})
	target, _ := mat.FromRows([][]float64{{0, 4}})
	loss, grad := MSELoss(pred, target)
	// ((1)^2 + (2)^2)/2 = 2.5
	if math.Abs(loss-2.5) > 1e-12 {
		t.Errorf("loss = %v, want 2.5", loss)
	}
	// grad = 2*(pred-target)/n
	if grad.At(0, 0) != 1 || grad.At(0, 1) != -2 {
		t.Errorf("grad = %v", grad.Data)
	}
}

func TestAdamConvergesOnRegression(t *testing.T) {
	// Learn y = 2x1 - 3x2 + 1 with a linear layer.
	rng := rand.New(rand.NewSource(21))
	layer := NewLinear(2, 1, rng)
	opt := NewAdam(layer.Params(), 0.05)
	var finalLoss float64
	for epoch := 0; epoch < 400; epoch++ {
		x := mat.NewMatrix(16, 2)
		y := mat.NewMatrix(16, 1)
		for i := 0; i < 16; i++ {
			a, b := rng.NormFloat64(), rng.NormFloat64()
			x.Set(i, 0, a)
			x.Set(i, 1, b)
			y.Set(i, 0, 2*a-3*b+1)
		}
		pred := layer.Forward(x)
		loss, grad := MSELoss(pred, y)
		finalLoss = loss
		layer.Backward(grad)
		opt.Step()
	}
	if finalLoss > 1e-3 {
		t.Errorf("final loss = %v, want < 1e-3", finalLoss)
	}
	// Weights close to the generator.
	w := layer.Params()[0].W
	b := layer.Params()[1].W
	if math.Abs(w[0]-2) > 0.05 || math.Abs(w[1]+3) > 0.05 || math.Abs(b[0]-1) > 0.05 {
		t.Errorf("learned w=%v b=%v, want [2 -3], [1]", w, b)
	}
}

func TestAutoencoderLearnsIdentityOnStructure(t *testing.T) {
	// A small autoencoder with a 2-unit bottleneck can reconstruct data
	// that lives on a 2D manifold in 4D.
	rng := rand.New(rand.NewSource(31))
	ae := NewSequential(
		NewLinear(4, 6, rng),
		NewTanh(),
		NewLinear(6, 2, rng),
		NewLinear(2, 6, rng),
		NewTanh(),
		NewLinear(6, 4, rng),
	)
	opt := NewAdam(ae.Params(), 0.01)
	sample := func() []float64 {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		return []float64{a, b, a + b, a - b}
	}
	var loss float64
	for epoch := 0; epoch < 600; epoch++ {
		rows := make([][]float64, 16)
		for i := range rows {
			rows[i] = sample()
		}
		x, _ := mat.FromRows(rows)
		pred := ae.Forward(x)
		var grad *mat.Matrix
		loss, grad = MSELoss(pred, x)
		ae.Backward(grad)
		opt.Step()
	}
	if loss > 0.05 {
		t.Errorf("autoencoder reconstruction loss = %v, want < 0.05", loss)
	}
}

// TestTranADStackGradients runs the numerical gradient check on the full
// encoder stack the TranAD detector uses (attention + layer norm +
// residual FFN), catching any interaction bug between the layers'
// backward passes.
func TestTranADStackGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	dm := 8
	stack := NewSequential(
		NewLinear(4, dm, rng),
		NewPositionalEncoding(dm),
		NewResidual(NewSelfAttention(dm, 2, rng)),
		NewLayerNorm(dm),
		NewResidual(NewSequential(
			NewLinear(dm, 2*dm, rng),
			NewReLU(),
			NewLinear(2*dm, dm, rng),
		)),
		NewLayerNorm(dm),
		NewLinear(dm, 4, rng),
	)
	numericalGradCheck(t, stack, 6, 4, 78, 5e-3)
}
