package nn

import (
	"math/rand"

	"github.com/navarchos/pdm/internal/mat"
)

// Linear is a fully connected layer: y = xW + b with W of shape in×out.
type Linear struct {
	In, Out int
	w, b    *Param
	x       *mat.Matrix // cached input
}

// NewLinear creates a Glorot-initialised dense layer using rng.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{In: in, Out: out, w: newParam(in * out), b: newParam(out)}
	xavierInit(rng, l.w.W, in, out)
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(x *mat.Matrix) *mat.Matrix {
	l.x = x
	out := mat.NewMatrix(x.Rows, l.Out)
	for i := 0; i < x.Rows; i++ {
		xi := x.Row(i)
		oi := out.Row(i)
		copy(oi, l.b.W)
		for k := 0; k < l.In; k++ {
			v := xi[k]
			if v == 0 {
				continue
			}
			wrow := l.w.W[k*l.Out : (k+1)*l.Out]
			for j := range oi {
				oi[j] += v * wrow[j]
			}
		}
	}
	return out
}

// Backward implements Layer.
func (l *Linear) Backward(grad *mat.Matrix) *mat.Matrix {
	dx := mat.NewMatrix(l.x.Rows, l.In)
	for i := 0; i < grad.Rows; i++ {
		gi := grad.Row(i)
		xi := l.x.Row(i)
		di := dx.Row(i)
		// db += g ; dW += x^T g ; dx = g W^T
		for j := 0; j < l.Out; j++ {
			l.b.G[j] += gi[j]
		}
		for k := 0; k < l.In; k++ {
			wrow := l.w.W[k*l.Out : (k+1)*l.Out]
			grow := l.w.G[k*l.Out : (k+1)*l.Out]
			xv := xi[k]
			var acc float64
			for j := 0; j < l.Out; j++ {
				grow[j] += xv * gi[j]
				acc += gi[j] * wrow[j]
			}
			di[k] = acc
		}
	}
	return dx
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.w, l.b} }
