package nn

import (
	"math/rand"

	"github.com/navarchos/pdm/internal/mat"
)

// Linear is a fully connected layer: y = xW + b with W of shape in×out.
//
// The default fast path writes into layer-owned scratch matrices via the
// mat axpy kernels: zero allocations once the scratch is warm, and
// bit-identical outputs to the legacy allocate-per-call path (the axpy
// accumulation visits k in the same order the scalar loops did). The
// legacy path is retained behind SetLegacyKernels as the fit-perf
// baseline and as the oracle for the equivalence tests.
type Linear struct {
	In, Out int
	w, b    *Param
	x       *mat.Matrix // cached input
	legacy  bool
	// fastDots routes the input-gradient dots of Backward through
	// mat.DotUnrolled4 (FMA-reassociated where the CPU has it). Like the
	// attention fastDots flag it abandons bit-exactness against the
	// legacy reduction order, so it is only switched on where no such
	// contract exists (tranad minibatch training).
	fastDots bool
	out, dx  mat.Matrix // scratch, grown once
}

// NewLinear creates a Glorot-initialised dense layer using rng.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{In: in, Out: out, w: newParam(in * out), b: newParam(out)}
	xavierInit(rng, l.w.W, in, out)
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(x *mat.Matrix) *mat.Matrix {
	if l.legacy {
		return l.forwardLegacy(x)
	}
	l.x = x
	out := l.out.EnsureShape(x.Rows, l.Out)
	for i := 0; i < x.Rows; i++ {
		mat.LinFwd(x.Row(i), l.b.W, l.w.W, out.Row(i))
	}
	return out
}

func (l *Linear) forwardLegacy(x *mat.Matrix) *mat.Matrix {
	l.x = x
	out := mat.NewMatrix(x.Rows, l.Out)
	for i := 0; i < x.Rows; i++ {
		xi := x.Row(i)
		oi := out.Row(i)
		copy(oi, l.b.W)
		for k := 0; k < l.In; k++ {
			v := xi[k]
			if v == 0 {
				continue
			}
			wrow := l.w.W[k*l.Out : (k+1)*l.Out]
			for j := range oi {
				oi[j] += v * wrow[j]
			}
		}
	}
	return out
}

// Backward implements Layer.
func (l *Linear) Backward(grad *mat.Matrix) *mat.Matrix {
	if l.legacy {
		return l.backwardLegacy(grad)
	}
	dx := l.dx.EnsureShape(l.x.Rows, l.In)
	for i := 0; i < grad.Rows; i++ {
		gi := grad.Row(i)
		xi := l.x.Row(i)
		di := dx.Row(i)
		// db += g ; dW += x^T g ; dx = g W^T — split into an axpy per
		// W row plus a dot. The axpy is elementwise and stays inside
		// the bit-exact contract; the dot is in-order by default and
		// FMA-reassociated when fastDots is on.
		mat.AddScaled(l.b.G, 1, gi)
		if l.fastDots {
			mat.LinBwdFast(xi, gi, l.w.W, l.w.G, di)
			continue
		}
		for k := 0; k < l.In; k++ {
			mat.AddScaled(l.w.G[k*l.Out:(k+1)*l.Out], xi[k], gi)
			wrow := l.w.W[k*l.Out : (k+1)*l.Out]
			var acc float64
			for j := 0; j < l.Out; j++ {
				acc += gi[j] * wrow[j]
			}
			di[k] = acc
		}
	}
	return dx
}

func (l *Linear) backwardLegacy(grad *mat.Matrix) *mat.Matrix {
	dx := mat.NewMatrix(l.x.Rows, l.In)
	for i := 0; i < grad.Rows; i++ {
		gi := grad.Row(i)
		xi := l.x.Row(i)
		di := dx.Row(i)
		// db += g ; dW += x^T g ; dx = g W^T
		for j := 0; j < l.Out; j++ {
			l.b.G[j] += gi[j]
		}
		for k := 0; k < l.In; k++ {
			wrow := l.w.W[k*l.Out : (k+1)*l.Out]
			grow := l.w.G[k*l.Out : (k+1)*l.Out]
			xv := xi[k]
			var acc float64
			for j := 0; j < l.Out; j++ {
				grow[j] += xv * gi[j]
				acc += gi[j] * wrow[j]
			}
			di[k] = acc
		}
	}
	return dx
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.w, l.b} }
