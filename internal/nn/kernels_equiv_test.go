package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/navarchos/pdm/internal/mat"
)

// buildTestNet assembles the same block structure tranad uses: dense →
// positional encoding → residual attention → layer norm → residual MLP →
// layer norm, so the equivalence test covers every layer type.
func buildTestNet(rng *rand.Rand) *Sequential {
	dim := 12
	return NewSequential(
		NewLinear(6, dim, rng),
		NewPositionalEncoding(dim),
		NewResidual(NewSelfAttention(dim, 2, rng)),
		NewLayerNorm(dim),
		NewResidual(NewSequential(
			NewLinear(dim, 2*dim, rng),
			NewReLU(),
			NewLinear(2*dim, dim, rng),
		)),
		NewLayerNorm(dim),
		NewLinear(dim, 6, rng),
		NewSigmoid(),
		NewTanh(),
	)
}

// TestFastKernelsBitIdenticalToLegacy trains two identically seeded nets
// — one on the legacy allocate-per-call path, one on the scratch-reuse
// kernels — through several Adam steps and requires Float64bits-equal
// outputs and weights at every step. This is the determinism contract
// DESIGN.md §11 documents: the kernel rewrite must not move a single
// bit of the optimisation trajectory.
func TestFastKernelsBitIdenticalToLegacy(t *testing.T) {
	legacyNet := buildTestNet(rand.New(rand.NewSource(7)))
	fastNet := buildTestNet(rand.New(rand.NewSource(7)))
	SetLegacyKernels(legacyNet, true)

	legacyOpt := NewAdam(legacyNet.Params(), 0.01)
	fastOpt := NewAdam(fastNet.Params(), 0.01)

	dataRng := rand.New(rand.NewSource(8))
	grad := mat.NewMatrix(0, 0)
	for step := 0; step < 5; step++ {
		x := mat.NewMatrix(8, 6)
		target := mat.NewMatrix(8, 6)
		for i := range x.Data {
			x.Data[i] = dataRng.NormFloat64()
			target.Data[i] = dataRng.NormFloat64()
		}

		legacyOut := legacyNet.Forward(x.Clone())
		fastOut := fastNet.Forward(x.Clone())
		for i := range legacyOut.Data {
			if math.Float64bits(legacyOut.Data[i]) != math.Float64bits(fastOut.Data[i]) {
				t.Fatalf("step %d: forward output %d differs: legacy %v fast %v",
					step, i, legacyOut.Data[i], fastOut.Data[i])
			}
		}

		lossL, gradL := MSELoss(legacyOut, target)
		lossF, gradF := MSELossInto(grad, fastOut, target)
		if math.Float64bits(lossL) != math.Float64bits(lossF) {
			t.Fatalf("step %d: loss differs: %v vs %v", step, lossL, lossF)
		}

		legacyNet.Backward(gradL)
		fastNet.Backward(gradF)
		legacyOpt.Step()
		fastOpt.Step()

		lp, fp := legacyNet.Params(), fastNet.Params()
		for pi := range lp {
			for j := range lp[pi].W {
				if math.Float64bits(lp[pi].W[j]) != math.Float64bits(fp[pi].W[j]) {
					t.Fatalf("step %d: param %d weight %d differs: legacy %v fast %v",
						step, pi, j, lp[pi].W[j], fp[pi].W[j])
				}
			}
		}
	}
}

// TestFastKernelsZeroSteadyStateAllocs checks the zero-allocation
// contract: once the scratch is warm, a full forward/backward/loss pass
// allocates nothing.
func TestFastKernelsZeroSteadyStateAllocs(t *testing.T) {
	net := buildTestNet(rand.New(rand.NewSource(9)))
	opt := NewAdam(net.Params(), 0.01)
	x := mat.NewMatrix(8, 6)
	target := mat.NewMatrix(8, 6)
	rng := rand.New(rand.NewSource(10))
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
		target.Data[i] = rng.NormFloat64()
	}
	grad := mat.NewMatrix(0, 0)
	trainOnce := func() {
		out := net.Forward(x)
		_, g := MSELossInto(grad, out, target)
		net.Backward(g)
		opt.Step()
	}
	trainOnce() // warm the scratch
	// Sequential.Params allocates (it appends), so measure the training
	// step alone.
	if allocs := testing.AllocsPerRun(20, trainOnce); allocs != 0 {
		t.Fatalf("steady-state train step allocates %v times, want 0", allocs)
	}
}

// TestFastDotsCloseToExact sanity-checks the reassociating minibatch
// attention path against the exact one: same data, same seed, results
// equal within float tolerance (not bits).
func TestFastDotsCloseToExact(t *testing.T) {
	exact := buildTestNet(rand.New(rand.NewSource(11)))
	fast := buildTestNet(rand.New(rand.NewSource(11)))
	SetFastDots(fast, true)

	x := mat.NewMatrix(8, 6)
	target := mat.NewMatrix(8, 6)
	rng := rand.New(rand.NewSource(12))
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
		target.Data[i] = rng.NormFloat64()
	}
	outE := exact.Forward(x.Clone())
	outF := fast.Forward(x.Clone())
	_, gE := MSELoss(outE, target)
	_, gF := MSELoss(outF, target)
	exact.Backward(gE)
	fast.Backward(gF)
	pe, pf := exact.Params(), fast.Params()
	for pi := range pe {
		for j := range pe[pi].G {
			d := math.Abs(pe[pi].G[j] - pf[pi].G[j])
			if d > 1e-12 {
				t.Fatalf("param %d grad %d: exact %v fastDots %v", pi, j, pe[pi].G[j], pf[pi].G[j])
			}
		}
	}
}
