package nn

import (
	"math"

	"github.com/navarchos/pdm/internal/mat"
)

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *mat.Matrix) *mat.Matrix {
	out := x.Clone()
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
			r.mask[i] = false
		} else {
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *mat.Matrix) *mat.Matrix {
	out := grad.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Sigmoid is the logistic activation.
type Sigmoid struct {
	y *mat.Matrix
}

// NewSigmoid returns a Sigmoid layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *mat.Matrix) *mat.Matrix {
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	s.y = out
	return out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad *mat.Matrix) *mat.Matrix {
	out := grad.Clone()
	for i := range out.Data {
		y := s.y.Data[i]
		out.Data[i] *= y * (1 - y)
	}
	return out
}

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	y *mat.Matrix
}

// NewTanh returns a Tanh layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (t *Tanh) Forward(x *mat.Matrix) *mat.Matrix {
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = math.Tanh(v)
	}
	t.y = out
	return out
}

// Backward implements Layer.
func (t *Tanh) Backward(grad *mat.Matrix) *mat.Matrix {
	out := grad.Clone()
	for i := range out.Data {
		y := t.y.Data[i]
		out.Data[i] *= 1 - y*y
	}
	return out
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }
