package nn

import (
	"math"

	"github.com/navarchos/pdm/internal/mat"
)

// The activations share one shape: an element-wise map on Forward and an
// element-wise gate on Backward. The default fast path writes into
// layer-owned scratch (zero allocations once warm); the math is
// element-wise, so fast and legacy outputs are bit-identical.

// ReLU is the rectified linear activation.
type ReLU struct {
	mask    []bool
	legacy  bool
	out, dx mat.Matrix
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *mat.Matrix) *mat.Matrix {
	var out *mat.Matrix
	if r.legacy {
		out = x.Clone()
	} else {
		out = r.out.EnsureShape(x.Rows, x.Cols)
		copy(out.Data, x.Data)
	}
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
			r.mask[i] = false
		} else {
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *mat.Matrix) *mat.Matrix {
	var out *mat.Matrix
	if r.legacy {
		out = grad.Clone()
	} else {
		out = r.dx.EnsureShape(grad.Rows, grad.Cols)
		copy(out.Data, grad.Data)
	}
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Sigmoid is the logistic activation.
type Sigmoid struct {
	y       *mat.Matrix
	legacy  bool
	out, dx mat.Matrix
}

// NewSigmoid returns a Sigmoid layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *mat.Matrix) *mat.Matrix {
	var out *mat.Matrix
	if s.legacy {
		out = x.Clone()
	} else {
		out = s.out.EnsureShape(x.Rows, x.Cols)
		copy(out.Data, x.Data)
	}
	for i, v := range out.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	s.y = out
	return out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad *mat.Matrix) *mat.Matrix {
	var out *mat.Matrix
	if s.legacy {
		out = grad.Clone()
	} else {
		out = s.dx.EnsureShape(grad.Rows, grad.Cols)
		copy(out.Data, grad.Data)
	}
	for i := range out.Data {
		y := s.y.Data[i]
		out.Data[i] *= y * (1 - y)
	}
	return out
}

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	y       *mat.Matrix
	legacy  bool
	out, dx mat.Matrix
}

// NewTanh returns a Tanh layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (t *Tanh) Forward(x *mat.Matrix) *mat.Matrix {
	var out *mat.Matrix
	if t.legacy {
		out = x.Clone()
	} else {
		out = t.out.EnsureShape(x.Rows, x.Cols)
		copy(out.Data, x.Data)
	}
	for i, v := range out.Data {
		out.Data[i] = math.Tanh(v)
	}
	t.y = out
	return out
}

// Backward implements Layer.
func (t *Tanh) Backward(grad *mat.Matrix) *mat.Matrix {
	var out *mat.Matrix
	if t.legacy {
		out = grad.Clone()
	} else {
		out = t.dx.EnsureShape(grad.Rows, grad.Cols)
		copy(out.Data, grad.Data)
	}
	for i := range out.Data {
		y := t.y.Data[i]
		out.Data[i] *= 1 - y*y
	}
	return out
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }
