// Package nn is a small pure-Go neural-network kernel with explicit
// backpropagation: dense layers, activations, layer normalisation,
// multi-head self-attention and the Adam optimiser. It exists to support
// the TranAD-style transformer reconstruction detector without any
// external numerical dependency.
//
// Layers operate on mat.Matrix values whose rows are either batch
// samples (dense nets) or sequence positions (attention). Forward caches
// whatever Backward needs; a layer therefore handles one
// forward/backward pair at a time and is not safe for concurrent use.
package nn

import (
	"math"
	"math/rand"

	"github.com/navarchos/pdm/internal/mat"
)

// Param is one learnable tensor with its gradient accumulator, flattened
// row-major.
type Param struct {
	W []float64 // weights
	G []float64 // gradient, same length
}

func newParam(n int) *Param { return &Param{W: make([]float64, n), G: make([]float64, n)} }

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Layer is a differentiable module.
type Layer interface {
	// Forward maps input to output, caching intermediates for Backward.
	Forward(x *mat.Matrix) *mat.Matrix
	// Backward receives dL/d(output) and returns dL/d(input), adding
	// parameter gradients into Params.
	Backward(grad *mat.Matrix) *mat.Matrix
	// Params returns the layer's learnable parameters (may be empty).
	Params() []*Param
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward implements Layer.
func (s *Sequential) Forward(x *mat.Matrix) *mat.Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *mat.Matrix) *mat.Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// xavierInit fills w with Glorot-uniform values scaled by fan-in/out.
func xavierInit(rng *rand.Rand, w []float64, fanIn, fanOut int) {
	scale := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range w {
		w[i] = (rng.Float64()*2 - 1) * scale
	}
}
