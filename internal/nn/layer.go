// Package nn is a small pure-Go neural-network kernel with explicit
// backpropagation: dense layers, activations, layer normalisation,
// multi-head self-attention and the Adam optimiser. It exists to support
// the TranAD-style transformer reconstruction detector without any
// external numerical dependency.
//
// Layers operate on mat.Matrix values whose rows are either batch
// samples (dense nets) or sequence positions (attention). Forward caches
// whatever Backward needs; a layer therefore handles one
// forward/backward pair at a time and is not safe for concurrent use.
package nn

import (
	"math"
	"math/rand"

	"github.com/navarchos/pdm/internal/mat"
)

// Param is one learnable tensor with its gradient accumulator, flattened
// row-major.
type Param struct {
	W []float64 // weights
	G []float64 // gradient, same length
}

func newParam(n int) *Param { return &Param{W: make([]float64, n), G: make([]float64, n)} }

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Layer is a differentiable module.
type Layer interface {
	// Forward maps input to output, caching intermediates for Backward.
	Forward(x *mat.Matrix) *mat.Matrix
	// Backward receives dL/d(output) and returns dL/d(input), adding
	// parameter gradients into Params.
	Backward(grad *mat.Matrix) *mat.Matrix
	// Params returns the layer's learnable parameters (may be empty).
	Params() []*Param
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward implements Layer.
func (s *Sequential) Forward(x *mat.Matrix) *mat.Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *mat.Matrix) *mat.Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// SetLegacyKernels switches layer (recursively, through Sequential,
// Residual and SelfAttention wrappers) between the default scratch-reuse
// fit kernels and the legacy allocate-per-call implementations. Both
// paths produce bit-identical outputs; the legacy path exists as the
// fit-perf baseline and as the oracle for the kernel-equivalence tests.
func SetLegacyKernels(layer Layer, legacy bool) {
	switch l := layer.(type) {
	case *Sequential:
		for _, inner := range l.Layers {
			SetLegacyKernels(inner, legacy)
		}
	case *Residual:
		l.legacy = legacy
		SetLegacyKernels(l.Inner, legacy)
	case *SelfAttention:
		l.legacy = legacy
		SetLegacyKernels(l.wq, legacy)
		SetLegacyKernels(l.wk, legacy)
		SetLegacyKernels(l.wv, legacy)
		SetLegacyKernels(l.wo, legacy)
	case *Linear:
		l.legacy = legacy
	case *LayerNorm:
		l.legacy = legacy
	case *PositionalEncoding:
		l.legacy = legacy
	case *ReLU:
		l.legacy = legacy
	case *Sigmoid:
		l.legacy = legacy
	case *Tanh:
		l.legacy = legacy
	}
}

// SetFastDots enables the reassociating reductions — the attention
// gradient product (mat.MatMulT over four accumulators) on every
// SelfAttention block and the FMA input-gradient dots on every Linear —
// under layer. It trades bit-exactness against the legacy reduction
// order for speed, so it is only enabled where no such contract exists
// (tranad minibatch training). It has no effect on legacy-mode layers.
func SetFastDots(layer Layer, on bool) {
	switch l := layer.(type) {
	case *Sequential:
		for _, inner := range l.Layers {
			SetFastDots(inner, on)
		}
	case *Residual:
		SetFastDots(l.Inner, on)
	case *SelfAttention:
		l.fastDots = on
		SetFastDots(l.wq, on)
		SetFastDots(l.wk, on)
		SetFastDots(l.wv, on)
		SetFastDots(l.wo, on)
	case *Linear:
		l.fastDots = on
	}
}

// CopyWeights copies the weight values of src into dst. The two
// parameter lists must come from identically shaped networks. It is the
// replica-synchronisation step of minibatch-parallel training.
func CopyWeights(dst, src []*Param) {
	if len(dst) != len(src) {
		panic("nn: CopyWeights: parameter count mismatch")
	}
	for i, p := range dst {
		copy(p.W, src[i].W)
	}
}

// AddGrads accumulates src's gradients into dst's. Reducing replica
// gradients through this in a fixed replica order keeps minibatch
// training deterministic regardless of how many goroutines computed
// them.
func AddGrads(dst, src []*Param) {
	if len(dst) != len(src) {
		panic("nn: AddGrads: parameter count mismatch")
	}
	for i, p := range dst {
		// alpha=1 is exact (1·x == x bitwise), so the SIMD axpy keeps
		// the reduction bit-identical to the scalar loop.
		mat.AddScaled(p.G, 1, src[i].G)
	}
}

// ZeroGrads clears every gradient accumulator in params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// xavierInit fills w with Glorot-uniform values scaled by fan-in/out.
func xavierInit(rng *rand.Rand, w []float64, fanIn, fanOut int) {
	scale := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range w {
		w[i] = (rng.Float64()*2 - 1) * scale
	}
}
