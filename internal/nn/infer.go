package nn

import (
	"math"

	"github.com/navarchos/pdm/internal/mat"
)

// Row-level inference kernels.
//
// Forward/Backward exist for training: every layer caches whatever its
// backward pass needs, and every layer maps the whole sequence even when
// the consumer only reads one output row. Streaming detection needs
// neither — the TranAD scoring hot path reads exactly the window's last
// position, and all of the model's layers except self-attention act
// row-wise — so each layer additionally exposes a cache-free single-row
// evaluator here. The evaluators replay the fast Forward path's exact
// per-row operation sequence (same kernels, same reduction orders), so a
// composition of ApplyRow calls is bit-identical to slicing that row out
// of a full Forward; the kernel-equivalence tests in the tranad package
// pin this down against the legacy path.
//
// ApplyRow/AttendLast write into caller-owned buffers (or layer-owned
// inference scratch disjoint from the training caches), allocate nothing
// once warm, and never touch the Forward caches — scoring a stream
// between deferred training steps cannot corrupt an in-flight
// forward/backward pair.

// ApplyRow computes one dense row, out = b + x·W, through the same fused
// mat.LinFwd kernel the fast Forward path runs per row. len(x) must be
// In and len(out) must be Out.
func (l *Linear) ApplyRow(x, out []float64) {
	mat.LinFwd(x, l.b.W, l.w.W, out)
}

// ApplyRow normalises one row with the layer's gain and bias:
// out = xhat·gain + bias with xhat = (x - mean) / sqrt(var + eps). The
// reductions run in the fast Forward path's fused two-pass order (they
// are in-order sums and must stay scalar), and the elementwise
// normalise runs through mat.NormRow, whose SIMD dispatch replays the
// scalar operation sequence per lane — so the bits match a full
// Forward of the same row at every dispatch level.
func (l *LayerNorm) ApplyRow(x, out []float64) {
	var m float64
	for _, xv := range x {
		m += xv
	}
	m /= float64(len(x))
	var ss float64
	for _, xv := range x {
		d := xv - m
		ss += d * d
	}
	v := ss / float64(len(x))
	inv := 1 / math.Sqrt(v+l.Eps)
	mat.NormRow(x, l.gain.W, l.bias.W, out, m, inv)
}

// RowAt returns position pos of the sinusoidal table at width cols,
// growing the layer's cached table as needed (the same lazily built
// table Forward replays by addition). The returned slice is owned by
// the layer and must not be modified.
func (p *PositionalEncoding) RowAt(pos, cols int) []float64 {
	p.ensureTable(pos+1, cols)
	return p.pe.Row(pos)
}

// ensureTable grows the cached encoding table to at least rows×cols.
// Entries come from peAt, the same expression the legacy path evaluates
// inline, so table replay and legacy addition add identical values.
func (p *PositionalEncoding) ensureTable(rows, cols int) {
	if p.pe.Rows >= rows && p.pe.Cols == cols {
		return
	}
	if p.pe.Rows > rows {
		rows = p.pe.Rows
	}
	p.pe.EnsureShape(rows, cols)
	for pos := 0; pos < rows; pos++ {
		row := p.pe.Row(pos)
		for j := 0; j < cols; j++ {
			row[j] = p.peAt(pos, j)
		}
	}
}

// AttendLast evaluates the attention block for the LAST row of x only:
// keys and values are projected for every position (the last query
// attends over all of them), but the query projection, softmax, value
// mix and output projection run for one row instead of seq. out must
// have length Dim and receives what row seq-1 of Forward(x) would hold,
// bit for bit: the score dots accumulate in the k-order of the fast
// path's MatMul, the softmax replays its scale/max/exp/normalise loop
// order, and the value mix accumulates in j-order. Inference scratch is
// disjoint from the training caches.
func (a *SelfAttention) AttendLast(x *mat.Matrix, out []float64) {
	seq := x.Rows
	k := a.infK.EnsureShape(seq, a.Dim)
	v := a.infV.EnsureShape(seq, a.Dim)
	for i := 0; i < seq; i++ {
		a.wk.ApplyRow(x.Row(i), k.Row(i))
		a.wv.ApplyRow(x.Row(i), v.Row(i))
	}
	if cap(a.infQ) < a.Dim {
		a.infQ = make([]float64, a.Dim)
	}
	q := a.infQ[:a.Dim]
	a.wq.ApplyRow(x.Row(seq-1), q)
	if cap(a.infS) < seq {
		a.infS = make([]float64, seq)
	}
	s := a.infS[:seq]
	if cap(a.infC) < a.Dim {
		a.infC = make([]float64, a.Dim)
	}
	concat := a.infC[:a.Dim]
	scale := 1 / math.Sqrt(float64(a.dk))
	for h := 0; h < a.Heads; h++ {
		off := h * a.dk
		qh := q[off : off+a.dk]
		maxv := math.Inf(-1)
		for j := 0; j < seq; j++ {
			kj := k.Row(j)[off : off+a.dk]
			var dot float64
			for t := 0; t < a.dk; t++ {
				dot += qh[t] * kj[t]
			}
			dot *= scale
			s[j] = dot
			if dot > maxv {
				maxv = dot
			}
		}
		var sum float64
		for j := range s {
			s[j] = math.Exp(s[j] - maxv)
			sum += s[j]
		}
		inv := 1 / sum
		for j := range s {
			s[j] *= inv
		}
		orow := concat[off : off+a.dk]
		for t := range orow {
			orow[t] = 0
		}
		for j := 0; j < seq; j++ {
			mat.AddScaled(orow, s[j], v.Row(j)[off:off+a.dk])
		}
	}
	a.wo.ApplyRow(concat, out)
}
