package nn

import (
	"math"

	"github.com/navarchos/pdm/internal/mat"
)

// LayerNorm normalises each row to zero mean and unit variance and
// applies a learned per-feature gain and bias.
type LayerNorm struct {
	Dim   int
	Eps   float64
	gain  *Param
	bias  *Param
	xhat  *mat.Matrix
	isdev []float64 // 1/std per row
}

// NewLayerNorm returns a layer norm over rows of width dim.
func NewLayerNorm(dim int) *LayerNorm {
	l := &LayerNorm{Dim: dim, Eps: 1e-5, gain: newParam(dim), bias: newParam(dim)}
	for i := range l.gain.W {
		l.gain.W[i] = 1
	}
	return l
}

// Forward implements Layer.
func (l *LayerNorm) Forward(x *mat.Matrix) *mat.Matrix {
	out := mat.NewMatrix(x.Rows, x.Cols)
	l.xhat = mat.NewMatrix(x.Rows, x.Cols)
	l.isdev = make([]float64, x.Rows)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		m := mat.Mean(row)
		v := mat.Variance(row)
		inv := 1 / math.Sqrt(v+l.Eps)
		l.isdev[i] = inv
		xh := l.xhat.Row(i)
		o := out.Row(i)
		for j, xv := range row {
			xh[j] = (xv - m) * inv
			o[j] = xh[j]*l.gain.W[j] + l.bias.W[j]
		}
	}
	return out
}

// Backward implements Layer.
func (l *LayerNorm) Backward(grad *mat.Matrix) *mat.Matrix {
	dx := mat.NewMatrix(grad.Rows, grad.Cols)
	n := float64(l.Dim)
	for i := 0; i < grad.Rows; i++ {
		g := grad.Row(i)
		xh := l.xhat.Row(i)
		// Param grads.
		for j := 0; j < l.Dim; j++ {
			l.gain.G[j] += g[j] * xh[j]
			l.bias.G[j] += g[j]
		}
		// dxhat = g * gain; standard layer-norm input gradient.
		var sumDx, sumDxXh float64
		dxhat := make([]float64, l.Dim)
		for j := 0; j < l.Dim; j++ {
			dxhat[j] = g[j] * l.gain.W[j]
			sumDx += dxhat[j]
			sumDxXh += dxhat[j] * xh[j]
		}
		inv := l.isdev[i]
		d := dx.Row(i)
		for j := 0; j < l.Dim; j++ {
			d[j] = (dxhat[j] - sumDx/n - xh[j]*sumDxXh/n) * inv
		}
	}
	return dx
}

// Params implements Layer.
func (l *LayerNorm) Params() []*Param { return []*Param{l.gain, l.bias} }
