package nn

import (
	"math"

	"github.com/navarchos/pdm/internal/mat"
)

// LayerNorm normalises each row to zero mean and unit variance and
// applies a learned per-feature gain and bias.
//
// The fast path reuses layer-owned scratch for the output, the cached
// x-hat, the inverse deviations and the per-row dxhat work vector (the
// legacy path allocated dxhat once per row per Backward). The reduction
// orders are unchanged, so fast and legacy are bit-identical.
type LayerNorm struct {
	Dim   int
	Eps   float64
	gain  *Param
	bias  *Param
	xhat  *mat.Matrix
	isdev []float64 // 1/std per row

	legacy   bool
	out, dx  mat.Matrix
	xhatS    mat.Matrix
	dxhatRow []float64
}

// NewLayerNorm returns a layer norm over rows of width dim.
func NewLayerNorm(dim int) *LayerNorm {
	l := &LayerNorm{Dim: dim, Eps: 1e-5, gain: newParam(dim), bias: newParam(dim)}
	for i := range l.gain.W {
		l.gain.W[i] = 1
	}
	return l
}

// Forward implements Layer.
func (l *LayerNorm) Forward(x *mat.Matrix) *mat.Matrix {
	var out *mat.Matrix
	if l.legacy {
		out = mat.NewMatrix(x.Rows, x.Cols)
		l.xhat = mat.NewMatrix(x.Rows, x.Cols)
		l.isdev = make([]float64, x.Rows)
	} else {
		out = l.out.EnsureShape(x.Rows, x.Cols)
		l.xhat = l.xhatS.EnsureShape(x.Rows, x.Cols)
		if cap(l.isdev) < x.Rows {
			l.isdev = make([]float64, x.Rows)
		}
		l.isdev = l.isdev[:x.Rows]
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		var m, v float64
		if l.legacy {
			m = mat.Mean(row)
			v = mat.Variance(row)
		} else {
			// The same reductions mat.Mean and mat.Variance perform
			// (identical order, so identical bits), fused into two
			// passes over the row instead of three.
			for _, xv := range row {
				m += xv
			}
			m /= float64(len(row))
			var ss float64
			for _, xv := range row {
				d := xv - m
				ss += d * d
			}
			v = ss / float64(len(row))
		}
		inv := 1 / math.Sqrt(v+l.Eps)
		l.isdev[i] = inv
		xh := l.xhat.Row(i)
		o := out.Row(i)
		for j, xv := range row {
			xh[j] = (xv - m) * inv
			o[j] = xh[j]*l.gain.W[j] + l.bias.W[j]
		}
	}
	return out
}

// Backward implements Layer.
func (l *LayerNorm) Backward(grad *mat.Matrix) *mat.Matrix {
	var dx *mat.Matrix
	if l.legacy {
		dx = mat.NewMatrix(grad.Rows, grad.Cols)
	} else {
		dx = l.dx.EnsureShape(grad.Rows, grad.Cols)
		if cap(l.dxhatRow) < l.Dim {
			l.dxhatRow = make([]float64, l.Dim)
		}
	}
	n := float64(l.Dim)
	for i := 0; i < grad.Rows; i++ {
		g := grad.Row(i)
		xh := l.xhat.Row(i)
		// Param grads.
		for j := 0; j < l.Dim; j++ {
			l.gain.G[j] += g[j] * xh[j]
			l.bias.G[j] += g[j]
		}
		// dxhat = g * gain; standard layer-norm input gradient.
		var sumDx, sumDxXh float64
		var dxhat []float64
		if l.legacy {
			dxhat = make([]float64, l.Dim)
		} else {
			dxhat = l.dxhatRow[:l.Dim]
		}
		for j := 0; j < l.Dim; j++ {
			dxhat[j] = g[j] * l.gain.W[j]
			sumDx += dxhat[j]
			sumDxXh += dxhat[j] * xh[j]
		}
		inv := l.isdev[i]
		d := dx.Row(i)
		for j := 0; j < l.Dim; j++ {
			d[j] = (dxhat[j] - sumDx/n - xh[j]*sumDxXh/n) * inv
		}
	}
	return dx
}

// Params implements Layer.
func (l *LayerNorm) Params() []*Param { return []*Param{l.gain, l.bias} }
