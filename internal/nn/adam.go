package nn

import (
	"math"

	"github.com/navarchos/pdm/internal/mat"
)

// Adam is the Adam optimiser (Kingma & Ba) over a parameter set.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	// Legacy pins Step to the original scalar update loop. The
	// mat.AdamStep kernel is bit-identical to it (the SIMD lanes replay
	// the same IEEE operation sequence), so the flag exists purely to
	// keep the LegacyFitKernels baseline an honest measurement of the
	// pre-kernel fit path.
	Legacy bool
	params []*Param
	m, v   [][]float64
	t      int
}

// NewAdam builds an optimiser for params with the given learning rate
// and standard defaults β1=0.9, β2=0.999, ε=1e-8.
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p.W))
		a.v[i] = make([]float64, len(p.W))
	}
	return a
}

// Step applies one update from the accumulated gradients and clears
// them.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		if !a.Legacy {
			mat.AdamStep(p.W, p.G, m, v, a.Beta1, a.Beta2, bc1, bc2, a.LR, a.Eps)
			p.ZeroGrad()
			continue
		}
		for j := range p.W {
			g := p.G[j]
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / bc1
			vh := v[j] / bc2
			p.W[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// MSELoss returns the mean squared error between pred and target along
// with the gradient dL/dpred (already divided by the element count).
func MSELoss(pred, target *mat.Matrix) (float64, *mat.Matrix) {
	return MSELossInto(mat.NewMatrix(pred.Rows, pred.Cols), pred, target)
}

// MSELossInto is the allocation-free MSELoss: it writes the gradient
// into grad (reshaped to pred's dimensions) and returns the loss with
// grad. The arithmetic is element-wise and identical to MSELoss.
func MSELossInto(grad, pred, target *mat.Matrix) (float64, *mat.Matrix) {
	grad.EnsureShape(pred.Rows, pred.Cols)
	n := float64(len(pred.Data))
	var loss float64
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / n
	}
	return loss / n, grad
}
