package nn

import (
	"math"
	"math/rand"

	"github.com/navarchos/pdm/internal/mat"
)

// SelfAttention is multi-head scaled dot-product self-attention over a
// sequence: the input matrix's rows are sequence positions, its columns
// the model dimension. Dim must be divisible by Heads.
//
// The default fast path packs each head's Q/K/V column slice into
// contiguous scratch and runs the score and mixing products through
// mat.MatMul, whose k-ordered axpy accumulation reproduces the legacy
// scalar loops bit for bit; every intermediate lives in layer-owned
// scratch, so a warm layer allocates nothing per call. With
// SetFastDots the attention-gradient product additionally switches to
// mat.MatMulT/DotUnrolled4, which reassociates the reduction — tranad
// enables it only for minibatch training, where no bit-exactness against
// the legacy per-window trajectory is contracted.
type SelfAttention struct {
	Dim, Heads, dk int
	wq, wk, wv, wo *Linear

	legacy   bool
	fastDots bool

	// caches
	x       *mat.Matrix
	q, k, v *mat.Matrix
	attn    []*mat.Matrix // per head: seq×seq softmax weights
	concat  *mat.Matrix

	// fast-path scratch, grown once
	attnS        []*mat.Matrix
	concatS      mat.Matrix
	qh, kh, vh   mat.Matrix
	khT, oh, doh mat.Matrix
	dAttn        mat.Matrix
	dQ, dK, dV   mat.Matrix

	// inference scratch for AttendLast, disjoint from the training
	// caches above so streaming scores cannot clobber an in-flight
	// forward/backward pair
	infK, infV       mat.Matrix
	infQ, infS, infC []float64
}

// NewSelfAttention builds a multi-head self-attention block.
func NewSelfAttention(dim, heads int, rng *rand.Rand) *SelfAttention {
	if heads < 1 || dim%heads != 0 {
		panic("nn: SelfAttention dim must be divisible by heads")
	}
	return &SelfAttention{
		Dim:   dim,
		Heads: heads,
		dk:    dim / heads,
		wq:    NewLinear(dim, dim, rng),
		wk:    NewLinear(dim, dim, rng),
		wv:    NewLinear(dim, dim, rng),
		wo:    NewLinear(dim, dim, rng),
	}
}

// packHead copies head h's column slice of src (seq×Dim) into dst,
// reshaped to seq×dk.
func (a *SelfAttention) packHead(dst *mat.Matrix, src *mat.Matrix, h int) *mat.Matrix {
	off := h * a.dk
	dst.EnsureShape(src.Rows, a.dk)
	for i := 0; i < src.Rows; i++ {
		copy(dst.Row(i), src.Row(i)[off:off+a.dk])
	}
	return dst
}

// Forward implements Layer.
func (a *SelfAttention) Forward(x *mat.Matrix) *mat.Matrix {
	if a.legacy {
		return a.forwardLegacy(x)
	}
	a.x = x
	a.q = a.wq.Forward(x)
	a.k = a.wk.Forward(x)
	a.v = a.wv.Forward(x)
	seq := x.Rows
	if len(a.attnS) < a.Heads {
		a.attnS = make([]*mat.Matrix, a.Heads)
		for h := range a.attnS {
			a.attnS[h] = &mat.Matrix{}
		}
	}
	a.attn = a.attnS[:a.Heads]
	a.concat = a.concatS.EnsureShape(seq, a.Dim)
	scale := 1 / math.Sqrt(float64(a.dk))
	for h := 0; h < a.Heads; h++ {
		off := h * a.dk
		qh := a.packHead(&a.qh, a.q, h)
		kh := a.packHead(&a.kh, a.k, h)
		vh := a.packHead(&a.vh, a.v, h)
		// scores = Qh Kh^T * scale — MatMul against the transposed key
		// block accumulates over t in the same order as the legacy
		// row-row dots — then softmax per row.
		attn := mat.MatMul(a.attnS[h], qh, kh.TransposeInto(&a.khT))
		for i := 0; i < seq; i++ {
			srow := attn.Row(i)
			maxv := math.Inf(-1)
			for j := range srow {
				srow[j] *= scale
				if srow[j] > maxv {
					maxv = srow[j]
				}
			}
			var sum float64
			for j := range srow {
				srow[j] = math.Exp(srow[j] - maxv)
				sum += srow[j]
			}
			inv := 1 / sum
			for j := range srow {
				srow[j] *= inv
			}
		}
		// out_h = attn · Vh, written into the concat slot.
		oh := mat.MatMul(&a.oh, attn, vh)
		for i := 0; i < seq; i++ {
			copy(a.concat.Row(i)[off:off+a.dk], oh.Row(i))
		}
	}
	return a.wo.Forward(a.concat)
}

func (a *SelfAttention) forwardLegacy(x *mat.Matrix) *mat.Matrix {
	a.x = x
	a.q = a.wq.Forward(x)
	a.k = a.wk.Forward(x)
	a.v = a.wv.Forward(x)
	seq := x.Rows
	a.attn = make([]*mat.Matrix, a.Heads)
	a.concat = mat.NewMatrix(seq, a.Dim)
	scale := 1 / math.Sqrt(float64(a.dk))
	for h := 0; h < a.Heads; h++ {
		off := h * a.dk
		// scores = Qh Kh^T * scale, softmax per row.
		attn := mat.NewMatrix(seq, seq)
		for i := 0; i < seq; i++ {
			qi := a.q.Row(i)[off : off+a.dk]
			srow := attn.Row(i)
			maxv := math.Inf(-1)
			for j := 0; j < seq; j++ {
				kj := a.k.Row(j)[off : off+a.dk]
				var s float64
				for t := 0; t < a.dk; t++ {
					s += qi[t] * kj[t]
				}
				s *= scale
				srow[j] = s
				if s > maxv {
					maxv = s
				}
			}
			var sum float64
			for j := range srow {
				srow[j] = math.Exp(srow[j] - maxv)
				sum += srow[j]
			}
			inv := 1 / sum
			for j := range srow {
				srow[j] *= inv
			}
		}
		a.attn[h] = attn
		// out_h = attn · Vh, written into the concat slot.
		for i := 0; i < seq; i++ {
			orow := a.concat.Row(i)[off : off+a.dk]
			arow := attn.Row(i)
			for j := 0; j < seq; j++ {
				w := arow[j]
				if w == 0 {
					continue
				}
				vj := a.v.Row(j)[off : off+a.dk]
				for t := 0; t < a.dk; t++ {
					orow[t] += w * vj[t]
				}
			}
		}
	}
	return a.wo.Forward(a.concat)
}

// Backward implements Layer.
func (a *SelfAttention) Backward(grad *mat.Matrix) *mat.Matrix {
	seq := a.x.Rows
	dConcat := a.wo.Backward(grad)
	var dQ, dK, dV *mat.Matrix
	if a.legacy {
		dQ = mat.NewMatrix(seq, a.Dim)
		dK = mat.NewMatrix(seq, a.Dim)
		dV = mat.NewMatrix(seq, a.Dim)
	} else {
		dQ = a.dQ.EnsureShape(seq, a.Dim).Zero()
		dK = a.dK.EnsureShape(seq, a.Dim).Zero()
		dV = a.dV.EnsureShape(seq, a.Dim).Zero()
	}
	scale := 1 / math.Sqrt(float64(a.dk))

	for h := 0; h < a.Heads; h++ {
		off := h * a.dk
		attn := a.attn[h]
		// dV += attn^T · dOut_h ; dAttn = dOut_h · Vh^T.
		var dAttn *mat.Matrix
		if a.legacy {
			dAttn = mat.NewMatrix(seq, seq)
		} else {
			dAttn = a.dAttn.EnsureShape(seq, seq)
		}
		if !a.legacy && a.fastDots {
			// Reassociating path: dAttn as one MatMulT over the packed
			// head blocks, then the dV axpy sweep.
			doh := a.packHead(&a.doh, dConcat, h)
			vh := a.packHead(&a.vh, a.v, h)
			mat.MatMulT(dAttn, doh, vh)
			for i := 0; i < seq; i++ {
				arow := attn.Row(i)
				doi := doh.Row(i)
				for j := 0; j < seq; j++ {
					mat.AddScaled(dV.Row(j)[off:off+a.dk], arow[j], doi)
				}
			}
		} else {
			for i := 0; i < seq; i++ {
				doi := dConcat.Row(i)[off : off+a.dk]
				arow := attn.Row(i)
				darow := dAttn.Row(i)
				for j := 0; j < seq; j++ {
					vj := a.v.Row(j)[off : off+a.dk]
					dvj := dV.Row(j)[off : off+a.dk]
					var dot float64
					for t := 0; t < a.dk; t++ {
						dvj[t] += arow[j] * doi[t]
						dot += doi[t] * vj[t]
					}
					darow[j] = dot
				}
			}
		}
		// Softmax backward per row: dS = attn ⊙ (dAttn - rowsum(dAttn ⊙ attn)).
		for i := 0; i < seq; i++ {
			arow := attn.Row(i)
			darow := dAttn.Row(i)
			var dot float64
			for j := 0; j < seq; j++ {
				dot += darow[j] * arow[j]
			}
			for j := 0; j < seq; j++ {
				darow[j] = arow[j] * (darow[j] - dot)
			}
		}
		// dQ += dS · Kh * scale ; dK += dS^T · Qh * scale.
		for i := 0; i < seq; i++ {
			darow := dAttn.Row(i)
			qi := a.q.Row(i)[off : off+a.dk]
			dqi := dQ.Row(i)[off : off+a.dk]
			for j := 0; j < seq; j++ {
				ds := darow[j] * scale
				if ds == 0 {
					continue
				}
				kj := a.k.Row(j)[off : off+a.dk]
				dkj := dK.Row(j)[off : off+a.dk]
				for t := 0; t < a.dk; t++ {
					dqi[t] += ds * kj[t]
					dkj[t] += ds * qi[t]
				}
			}
		}
	}

	dx := a.wq.Backward(dQ)
	dxk := a.wk.Backward(dK)
	dxv := a.wv.Backward(dV)
	for i := range dx.Data {
		dx.Data[i] += dxk.Data[i] + dxv.Data[i]
	}
	return dx
}

// Params implements Layer.
func (a *SelfAttention) Params() []*Param {
	var out []*Param
	out = append(out, a.wq.Params()...)
	out = append(out, a.wk.Params()...)
	out = append(out, a.wv.Params()...)
	out = append(out, a.wo.Params()...)
	return out
}

// PositionalEncoding adds fixed sinusoidal position information to a
// sequence (rows = positions). It has no parameters. The fast path
// computes the encoding table once and replays it by addition; the table
// entries come from the same expression the legacy path evaluates, so
// both paths add identical values.
type PositionalEncoding struct {
	Dim    int
	legacy bool
	pe     mat.Matrix
	out    mat.Matrix
}

// NewPositionalEncoding returns the standard sinusoidal encoder.
func NewPositionalEncoding(dim int) *PositionalEncoding { return &PositionalEncoding{Dim: dim} }

// peAt is the sinusoidal table entry for one (position, channel) pair.
func (p *PositionalEncoding) peAt(pos, j int) float64 {
	angle := float64(pos) / math.Pow(10000, float64(2*(j/2))/float64(p.Dim))
	if j%2 == 0 {
		return math.Sin(angle)
	}
	return math.Cos(angle)
}

// Forward implements Layer.
func (p *PositionalEncoding) Forward(x *mat.Matrix) *mat.Matrix {
	if p.legacy {
		out := x.Clone()
		for pos := 0; pos < out.Rows; pos++ {
			row := out.Row(pos)
			for j := 0; j < out.Cols; j++ {
				row[j] += p.peAt(pos, j)
			}
		}
		return out
	}
	p.ensureTable(x.Rows, x.Cols)
	out := p.out.EnsureShape(x.Rows, x.Cols)
	for pos := 0; pos < x.Rows; pos++ {
		row := out.Row(pos)
		xrow := x.Row(pos)
		perow := p.pe.Row(pos)
		for j := range row {
			row[j] = xrow[j] + perow[j]
		}
	}
	return out
}

// Backward implements Layer (identity gradient).
func (p *PositionalEncoding) Backward(grad *mat.Matrix) *mat.Matrix { return grad }

// Params implements Layer.
func (p *PositionalEncoding) Params() []*Param { return nil }

// Residual wraps a layer with a skip connection: y = x + f(x).
type Residual struct {
	Inner  Layer
	legacy bool
	out    mat.Matrix
	dout   mat.Matrix
}

// NewResidual wraps inner with a skip connection.
func NewResidual(inner Layer) *Residual { return &Residual{Inner: inner} }

// Forward implements Layer.
func (r *Residual) Forward(x *mat.Matrix) *mat.Matrix {
	y := r.Inner.Forward(x)
	var out *mat.Matrix
	if r.legacy {
		out = y.Clone()
	} else {
		out = r.out.EnsureShape(y.Rows, y.Cols)
		copy(out.Data, y.Data)
	}
	for i := range out.Data {
		out.Data[i] += x.Data[i]
	}
	return out
}

// Backward implements Layer.
func (r *Residual) Backward(grad *mat.Matrix) *mat.Matrix {
	dInner := r.Inner.Backward(grad)
	var out *mat.Matrix
	if r.legacy {
		out = dInner.Clone()
	} else {
		out = r.dout.EnsureShape(dInner.Rows, dInner.Cols)
		copy(out.Data, dInner.Data)
	}
	for i := range out.Data {
		out.Data[i] += grad.Data[i]
	}
	return out
}

// Params implements Layer.
func (r *Residual) Params() []*Param { return r.Inner.Params() }
