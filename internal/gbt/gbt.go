// Package gbt implements gradient-boosted regression trees in the style
// of XGBoost (Chen & Guestrin, KDD 2016) for squared-error regression:
// second-order boosting with L2-regularised leaf weights, exact greedy
// split finding, a minimum-gain (γ) pruning criterion, depth limits and
// row/column subsampling. It is the model behind the paper's
// regression-based detector (Section 3.6).
package gbt

import (
	"errors"
	"math/rand"
	"sort"
)

// Config holds the boosting hyper-parameters. Zero fields take the
// defaults noted per field (mirroring common XGBoost settings scaled to
// this library's small feature spaces).
type Config struct {
	NumTrees       int     // boosting rounds (default 50)
	MaxDepth       int     // maximum tree depth (default 4)
	LearningRate   float64 // shrinkage η (default 0.3)
	Lambda         float64 // L2 regularisation on leaf weights (default 1)
	Gamma          float64 // minimum split gain (default 0)
	MinChildWeight float64 // minimum hessian (= sample count) per child (default 1)
	Subsample      float64 // row subsample fraction per tree (default 1)
	ColSample      float64 // feature subsample fraction per tree (default 1)
	Seed           int64   // RNG seed for subsampling (default 1)

	// LegacyFitKernels restores the exact greedy split search over
	// pre-sorted row orderings (the pre-optimisation path). The default
	// is the pre-binned histogram search of hist.go, which proposes the
	// same midpoint thresholds whenever a feature has at most 256
	// distinct values. Predictions do not depend on this flag's value at
	// predict time; it only selects the training algorithm.
	LegacyFitKernels bool
}

func (c *Config) defaults() {
	if c.NumTrees <= 0 {
		c.NumTrees = 50
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 4
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.3
	}
	if c.Lambda < 0 {
		c.Lambda = 0
	} else if c.Lambda == 0 {
		c.Lambda = 1
	}
	if c.MinChildWeight <= 0 {
		c.MinChildWeight = 1
	}
	if c.Subsample <= 0 || c.Subsample > 1 {
		c.Subsample = 1
	}
	if c.ColSample <= 0 || c.ColSample > 1 {
		c.ColSample = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ErrNoData is returned when Train receives no rows.
var ErrNoData = errors.New("gbt: no training data")

// ErrDimension is returned on ragged inputs or mismatched X/y lengths.
var ErrDimension = errors.New("gbt: dimension mismatch")

// node is one tree node in the flat arena.
type node struct {
	feature   int
	threshold float64
	left      int
	right     int
	leaf      float64
	isLeaf    bool
}

type tree struct{ nodes []node }

func (t *tree) predict(x []float64) float64 {
	i := 0
	for {
		n := &t.nodes[i]
		if n.isLeaf {
			return n.leaf
		}
		if x[n.feature] < n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Regressor is a trained boosted ensemble.
type Regressor struct {
	cfg   Config
	base  float64
	trees []tree
	dim   int
}

// Train fits a boosted regression ensemble on X (rows = samples) and
// targets y.
func Train(X [][]float64, y []float64, cfg Config) (*Regressor, error) {
	cfg.defaults()
	if len(X) == 0 {
		return nil, ErrNoData
	}
	if len(X) != len(y) {
		return nil, ErrDimension
	}
	dim := len(X[0])
	for _, row := range X {
		if len(row) != dim {
			return nil, ErrDimension
		}
	}
	r := &Regressor{cfg: cfg, dim: dim}
	// Base score: mean target (the optimal constant under squared loss).
	var sum float64
	for _, v := range y {
		sum += v
	}
	r.base = sum / float64(len(y))

	rng := rand.New(rand.NewSource(cfg.Seed))
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = r.base
	}
	grad := make([]float64, len(y))

	// Pre-sorted feature orderings (legacy exact scan only) or the
	// one-off feature binning (histogram scan): either is computed once
	// and shared across all boosting rounds.
	var order [][]int
	var bins *histBins
	var hb *histBuilder
	if cfg.LegacyFitKernels {
		order = make([][]int, dim)
		for f := 0; f < dim; f++ {
			idx := make([]int, len(X))
			for i := range idx {
				idx[i] = i
			}
			sort.SliceStable(idx, func(a, b int) bool { return X[idx[a]][f] < X[idx[b]][f] })
			order[f] = idx
		}
	} else {
		bins = buildBins(X, dim)
		hb = &histBuilder{
			X: X, grad: grad, cfg: cfg, bins: bins, dim: dim,
			cands: make([]histCand, dim),
		}
	}

	for round := 0; round < cfg.NumTrees; round++ {
		for i := range grad {
			grad[i] = pred[i] - y[i] // squared loss gradient; hessian = 1
		}
		inBag := sampleRows(len(X), cfg.Subsample, rng)
		feats := sampleFeatures(dim, cfg.ColSample, rng)
		var tr tree
		if cfg.LegacyFitKernels {
			b := &treeBuilder{
				X: X, grad: grad, cfg: cfg,
				order: order, inBag: inBag, feats: feats,
			}
			tr = b.build()
		} else {
			hb.inBag, hb.feats = inBag, feats
			hb.tr = tree{}
			tr = hb.build()
		}
		r.trees = append(r.trees, tr)
		for i := range pred {
			pred[i] += cfg.LearningRate * tr.predict(X[i])
		}
	}
	return r, nil
}

// Predict returns the ensemble prediction for x.
func (r *Regressor) Predict(x []float64) float64 {
	out := r.base
	for i := range r.trees {
		out += r.cfg.LearningRate * r.trees[i].predict(x)
	}
	return out
}

// NumFeatures returns the trained input dimensionality.
func (r *Regressor) NumFeatures() int { return r.dim }

// NumTrees returns the number of fitted trees.
func (r *Regressor) NumTrees() int { return len(r.trees) }

func sampleRows(n int, frac float64, rng *rand.Rand) []bool {
	inBag := make([]bool, n)
	if frac >= 1 {
		for i := range inBag {
			inBag[i] = true
		}
		return inBag
	}
	for i := range inBag {
		inBag[i] = rng.Float64() < frac
	}
	return inBag
}

func sampleFeatures(dim int, frac float64, rng *rand.Rand) []bool {
	feats := make([]bool, dim)
	if frac >= 1 {
		for i := range feats {
			feats[i] = true
		}
		return feats
	}
	k := int(float64(dim)*frac + 0.5)
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(dim)
	for _, f := range perm[:k] {
		feats[f] = true
	}
	return feats
}

// treeBuilder grows one regression tree with exact greedy splits.
type treeBuilder struct {
	X     [][]float64
	grad  []float64
	cfg   Config
	order [][]int
	inBag []bool
	feats []bool
	tr    tree
}

func (b *treeBuilder) build() tree {
	rows := make([]int, 0, len(b.X))
	for i := range b.X {
		if b.inBag[i] {
			rows = append(rows, i)
		}
	}
	if len(rows) == 0 {
		// Degenerate bag: a single zero leaf.
		b.tr.nodes = append(b.tr.nodes, node{isLeaf: true})
		return b.tr
	}
	b.grow(rows, 0)
	return b.tr
}

// grow adds the subtree over rows and returns its node index.
func (b *treeBuilder) grow(rows []int, depth int) int {
	var g float64
	h := float64(len(rows))
	for _, i := range rows {
		g += b.grad[i]
	}
	leafWeight := -g / (h + b.cfg.Lambda)

	idx := len(b.tr.nodes)
	b.tr.nodes = append(b.tr.nodes, node{isLeaf: true, leaf: leafWeight})
	if depth >= b.cfg.MaxDepth || h < 2*b.cfg.MinChildWeight {
		return idx
	}
	feat, thr, gain := b.bestSplit(rows, g, h)
	if feat < 0 || gain <= b.cfg.Gamma {
		return idx
	}
	var left, right []int
	for _, i := range rows {
		if b.X[i][feat] < thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return idx
	}
	l := b.grow(left, depth+1)
	r := b.grow(right, depth+1)
	b.tr.nodes[idx] = node{feature: feat, threshold: thr, left: l, right: r}
	return idx
}

// bestSplit scans every allowed feature for the gain-maximising split.
func (b *treeBuilder) bestSplit(rows []int, gTot, hTot float64) (feature int, threshold, gain float64) {
	feature = -1
	parent := gTot * gTot / (hTot + b.cfg.Lambda)
	member := map[int]bool{}
	for _, i := range rows {
		member[i] = true
	}
	for f := range b.feats {
		if !b.feats[f] {
			continue
		}
		var gl, hl float64
		var prev float64
		started := false
		for _, i := range b.order[f] {
			if !member[i] {
				continue
			}
			v := b.X[i][f]
			if started && v > prev {
				gr := gTot - gl
				hr := hTot - hl
				if hl >= b.cfg.MinChildWeight && hr >= b.cfg.MinChildWeight {
					gn := 0.5 * (gl*gl/(hl+b.cfg.Lambda) + gr*gr/(hr+b.cfg.Lambda) - parent)
					if gn > gain {
						gain = gn
						feature = f
						threshold = (prev + v) / 2
					}
				}
			}
			gl += b.grad[i]
			hl++
			prev = v
			started = true
		}
	}
	return feature, threshold, gain
}
