package gbt

import (
	"math"
	"math/rand"
	"testing"

	"github.com/navarchos/pdm/internal/fitpool"
)

// TestBinsLosslessOnFewDistinct checks that with at most 256 distinct
// values per feature every distinct value occupies its own bin and the
// bin ranges collapse to single points.
func TestBinsLosslessOnFewDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, dim := 500, 3
	X := make([][]float64, n)
	for i := range X {
		X[i] = []float64{float64(rng.Intn(10)), float64(rng.Intn(200)) / 7, 1.5}
	}
	b := buildBins(X, dim)
	if b.nbins[0] != 10 || b.nbins[2] != 1 {
		t.Fatalf("nbins = %v, want feature 0 -> 10, feature 2 -> 1", b.nbins)
	}
	for f := 0; f < dim; f++ {
		for k := 0; k < b.nbins[f]; k++ {
			if b.lo[f][k] != b.hi[f][k] {
				t.Fatalf("feature %d bin %d not a point: [%v, %v]", f, k, b.lo[f][k], b.hi[f][k])
			}
		}
		for i, row := range X {
			k := int(b.binned[f][i])
			if b.lo[f][k] != row[f] {
				t.Fatalf("feature %d row %d: value %v binned to bin %d = %v", f, i, row[f], k, b.lo[f][k])
			}
		}
	}
}

// TestBinsQuantisedOnManyDistinct checks the coarse branch: >256
// distinct values are spread over exactly 256 ordered, range-disjoint
// bins and every row lands in the bin covering its value.
func TestBinsQuantisedOnManyDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 3000
	X := make([][]float64, n)
	for i := range X {
		X[i] = []float64{rng.NormFloat64()}
	}
	b := buildBins(X, 1)
	if b.nbins[0] != maxBins {
		t.Fatalf("nbins = %d, want %d", b.nbins[0], maxBins)
	}
	for k := 0; k < maxBins; k++ {
		if b.lo[0][k] > b.hi[0][k] {
			t.Fatalf("bin %d inverted: [%v, %v]", k, b.lo[0][k], b.hi[0][k])
		}
		if k > 0 && b.hi[0][k-1] >= b.lo[0][k] {
			t.Fatalf("bins %d and %d overlap", k-1, k)
		}
	}
	for i, row := range X {
		k := int(b.binned[0][i])
		if row[0] < b.lo[0][k] || row[0] > b.hi[0][k] {
			t.Fatalf("row %d: value %v outside bin %d range [%v, %v]", i, row[0], k, b.lo[0][k], b.hi[0][k])
		}
	}
}

// TestHistMatchesExactOnDiscreteFeatures trains the histogram and the
// legacy exact path on data where binning is lossless and requires
// identical tree structures: same splits, same thresholds, same leaves.
func TestHistMatchesExactOnDiscreteFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, dim := 400, 4
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, dim)
		for j := range row {
			row[j] = float64(rng.Intn(50)) / 3
		}
		X[i] = row
		y[i] = row[0]*2 - row[1] + 0.3*row[2]*row[3] + 0.01*rng.NormFloat64()
	}
	cfg := Config{NumTrees: 20, MaxDepth: 4, Seed: 7}
	legacyCfg := cfg
	legacyCfg.LegacyFitKernels = true
	exact, err := Train(X, y, legacyCfg)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.trees) != len(hist.trees) {
		t.Fatalf("tree count differs: %d vs %d", len(exact.trees), len(hist.trees))
	}
	for ti := range exact.trees {
		en, hn := exact.trees[ti].nodes, hist.trees[ti].nodes
		if len(en) != len(hn) {
			t.Fatalf("tree %d node count differs: %d vs %d", ti, len(en), len(hn))
		}
		for ni := range en {
			e, h := en[ni], hn[ni]
			if e.isLeaf != h.isLeaf || e.feature != h.feature ||
				e.left != h.left || e.right != h.right ||
				math.Float64bits(e.threshold) != math.Float64bits(h.threshold) {
				t.Fatalf("tree %d node %d differs: exact %+v hist %+v", ti, ni, e, h)
			}
			if math.Abs(e.leaf-h.leaf) > 1e-9 {
				t.Fatalf("tree %d node %d leaf differs: %v vs %v", ti, ni, e.leaf, h.leaf)
			}
		}
	}
}

// TestHistQualityOnContinuousFeatures checks that with genuinely
// continuous features (lossy 256-bin quantisation, plus subsampling) the
// histogram path still fits the function about as well as the exact
// path.
func TestHistQualityOnContinuousFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 1200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		X[i] = row
		y[i] = math.Sin(row[0]) + row[1]*row[1] - row[2]
	}
	mse := func(r *Regressor) float64 {
		var s float64
		for i := range X {
			d := r.Predict(X[i]) - y[i]
			s += d * d
		}
		return s / float64(n)
	}
	cfg := Config{NumTrees: 40, MaxDepth: 4, Subsample: 0.8, ColSample: 0.9, Seed: 5}
	legacyCfg := cfg
	legacyCfg.LegacyFitKernels = true
	exact, err := Train(X, y, legacyCfg)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := Train(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	me, mh := mse(exact), mse(hist)
	if mh > me*1.25+0.01 {
		t.Fatalf("hist mse %v much worse than exact %v", mh, me)
	}
}

// TestHistDeterministicAcrossWorkers checks the parallel feature scan
// contract: the trained ensemble is bitwise independent of the fitpool
// worker count.
func TestHistDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, dim := 600, 5
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		X[i] = row
		y[i] = row[0] - row[3]
	}
	train := func(workers int) *Regressor {
		defer fitpool.SetWorkers(fitpool.Workers())
		fitpool.SetWorkers(workers)
		r, err := Train(X, y, Config{NumTrees: 15, MaxDepth: 4, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := train(1), train(6)
	for ti := range a.trees {
		an, bn := a.trees[ti].nodes, b.trees[ti].nodes
		if len(an) != len(bn) {
			t.Fatalf("tree %d node count depends on workers", ti)
		}
		for ni := range an {
			if an[ni] != bn[ni] {
				t.Fatalf("tree %d node %d depends on workers: %+v vs %+v", ti, ni, an[ni], bn[ni])
			}
		}
	}
}

func benchData(n, dim int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(9))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		X[i] = row
		y[i] = row[0] * row[1]
	}
	return X, y
}

func BenchmarkHistogramSplit(b *testing.B) {
	X, y := benchData(2000, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(X, y, Config{NumTrees: 10, MaxDepth: 4, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactSplit(b *testing.B) {
	X, y := benchData(2000, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(X, y, Config{NumTrees: 10, MaxDepth: 4, Seed: 1, LegacyFitKernels: true}); err != nil {
			b.Fatal(err)
		}
	}
}
