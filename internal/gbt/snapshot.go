package gbt

import (
	"errors"

	"github.com/navarchos/pdm/internal/checkpoint"
)

// ErrBadSnapshot is returned when serialized regressor bytes do not
// decode into a valid ensemble.
var ErrBadSnapshot = errors.New("gbt: malformed regressor snapshot")

// regressorTag marks serialized Regressor payloads so a gbt blob cannot
// be confused with another model family's bytes.
const regressorTag = uint8(0x47) // 'G'

// maxNodes bounds a single serialized tree so hostile length prefixes
// cannot drive allocation (a depth-limited tree is far smaller).
const maxNodes = 1 << 22

// AppendTo serialises the trained ensemble into b. Unlike the detector
// snapshots, the full Config is included: Predict reads
// cfg.LearningRate, so a regressor's behaviour is not reconstructable
// from the trees alone.
func (r *Regressor) AppendTo(b *checkpoint.Buf) {
	b.Uint8(regressorTag)
	b.Int(r.cfg.NumTrees)
	b.Int(r.cfg.MaxDepth)
	b.Float64(r.cfg.LearningRate)
	b.Float64(r.cfg.Lambda)
	b.Float64(r.cfg.Gamma)
	b.Float64(r.cfg.MinChildWeight)
	b.Float64(r.cfg.Subsample)
	b.Float64(r.cfg.ColSample)
	b.Int64(r.cfg.Seed)
	b.Float64(r.base)
	b.Int(r.dim)
	b.Int(len(r.trees))
	for i := range r.trees {
		nodes := r.trees[i].nodes
		b.Int(len(nodes))
		for j := range nodes {
			n := &nodes[j]
			b.Bool(n.isLeaf)
			b.Int(n.feature)
			b.Float64(n.threshold)
			b.Int(n.left)
			b.Int(n.right)
			b.Float64(n.leaf)
		}
	}
}

// ReadRegressor decodes an ensemble serialised by AppendTo. Node links
// are validated so a corrupted arena cannot send Predict out of bounds
// or into a cycle.
func ReadRegressor(rb *checkpoint.RBuf) (*Regressor, error) {
	if rb.Uint8() != regressorTag {
		return nil, ErrBadSnapshot
	}
	var r Regressor
	r.cfg.NumTrees = rb.Int()
	r.cfg.MaxDepth = rb.Int()
	r.cfg.LearningRate = rb.Float64()
	r.cfg.Lambda = rb.Float64()
	r.cfg.Gamma = rb.Float64()
	r.cfg.MinChildWeight = rb.Float64()
	r.cfg.Subsample = rb.Float64()
	r.cfg.ColSample = rb.Float64()
	r.cfg.Seed = rb.Int64()
	r.base = rb.Float64()
	r.dim = rb.Int()
	numTrees := rb.Int()
	if err := rb.Err(); err != nil {
		return nil, err
	}
	if r.dim <= 0 || numTrees < 0 || numTrees > maxNodes {
		return nil, ErrBadSnapshot
	}
	r.trees = make([]tree, 0, numTrees)
	for t := 0; t < numTrees; t++ {
		numNodes := rb.Int()
		if err := rb.Err(); err != nil {
			return nil, err
		}
		if numNodes <= 0 || numNodes > maxNodes {
			return nil, ErrBadSnapshot
		}
		nodes := make([]node, numNodes)
		for j := range nodes {
			n := &nodes[j]
			n.isLeaf = rb.Bool()
			n.feature = rb.Int()
			n.threshold = rb.Float64()
			n.left = rb.Int()
			n.right = rb.Int()
			n.leaf = rb.Float64()
			if rb.Err() != nil {
				return nil, rb.Err()
			}
			if !n.isLeaf {
				// predict only descends: children strictly after the
				// parent keeps traversal acyclic and in bounds.
				if n.feature < 0 || n.feature >= r.dim ||
					n.left <= j || n.left >= numNodes ||
					n.right <= j || n.right >= numNodes {
					return nil, ErrBadSnapshot
				}
			}
		}
		r.trees = append(r.trees, tree{nodes: nodes})
	}
	if err := rb.Err(); err != nil {
		return nil, err
	}
	return &r, nil
}
