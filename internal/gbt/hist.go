package gbt

import (
	"sort"

	"github.com/navarchos/pdm/internal/fitpool"
)

// maxBins is the histogram resolution of the binned split search. With
// at most maxBins distinct values per feature the binning is lossless:
// every distinct value gets its own bin and the candidate thresholds are
// exactly the midpoints the exact greedy scan would propose.
const maxBins = 256

// histBins is the per-Train binning of the design matrix: each feature's
// values are mapped once to uint8 bin indices, and every tree node then
// searches splits over per-bin gradient histograms instead of re-walking
// pre-sorted row orderings through a membership hash. lo[f][k] / hi[f][k]
// record the smallest and largest raw value landing in bin k, so
// candidate thresholds stay midpoints in data space.
type histBins struct {
	binned [][]uint8   // [feature][row] -> bin index
	lo, hi [][]float64 // [feature][bin] -> value range of the bin
	nbins  []int       // [feature] -> number of occupied bins
}

// buildBins bins every feature of X. Features with more than maxBins
// distinct values are quantised by spreading the distinct values evenly
// over maxBins bins (equal-frequency over distinct values), which keeps
// outliers from collapsing the bulk of the distribution into one bin.
func buildBins(X [][]float64, dim int) *histBins {
	n := len(X)
	b := &histBins{
		binned: make([][]uint8, dim),
		lo:     make([][]float64, dim),
		hi:     make([][]float64, dim),
		nbins:  make([]int, dim),
	}
	vals := make([]float64, n)
	for f := 0; f < dim; f++ {
		for i, row := range X {
			vals[i] = row[f]
		}
		sort.Float64s(vals)
		distinct := make([]float64, 0, n)
		for i, v := range vals {
			if i == 0 || v != distinct[len(distinct)-1] {
				distinct = append(distinct, v)
			}
		}
		nb := len(distinct)
		if nb > maxBins {
			nb = maxBins
		}
		lo := make([]float64, nb)
		hi := make([]float64, nb)
		// Distinct value j lands in bin j*nb/len(distinct): identity when
		// the binning is lossless, equal-frequency over distinct values
		// otherwise.
		for j, v := range distinct {
			k := j * nb / len(distinct)
			if j == 0 || k != (j-1)*nb/len(distinct) {
				lo[k] = v
			}
			hi[k] = v
		}
		// cut[k] = upper edge of bin k; assignment is a binary search for
		// the first bin whose hi covers the value.
		binned := make([]uint8, n)
		for i, row := range X {
			v := row[f]
			k := sort.SearchFloat64s(hi, v)
			// SearchFloat64s returns the first index with hi[k] >= v,
			// which is exactly the bin whose range contains v.
			binned[i] = uint8(k)
		}
		b.binned[f] = binned
		b.lo[f] = lo
		b.hi[f] = hi
		b.nbins[f] = nb
	}
	return b
}

// nodeHist is one tree node's gradient histogram: per feature, per bin,
// the gradient sum and the sample count (the hessian of squared loss).
// Both arrays are flat with stride maxBins.
type nodeHist struct {
	gh  []float64
	cnt []float64
}

func newNodeHist(dim int) *nodeHist {
	return &nodeHist{gh: make([]float64, dim*maxBins), cnt: make([]float64, dim*maxBins)}
}

func (h *nodeHist) zero() {
	for i := range h.gh {
		h.gh[i] = 0
		h.cnt[i] = 0
	}
}

// subtract removes child from h in place — the sibling trick: the
// larger child's histogram is the parent's minus the smaller child's,
// computed in O(bins) instead of O(rows).
func (h *nodeHist) subtract(child *nodeHist) {
	for i := range h.gh {
		h.gh[i] -= child.gh[i]
		h.cnt[i] -= child.cnt[i]
	}
}

// histBuilder grows one regression tree with binned split search.
type histBuilder struct {
	X     [][]float64
	grad  []float64
	cfg   Config
	bins  *histBins
	inBag []bool
	feats []bool
	dim   int
	tr    tree

	free  []*nodeHist // recycled node histograms
	cands []histCand  // per-feature scratch of the parallel scan
}

type histCand struct {
	gain, thr float64
	ok        bool
}

func (b *histBuilder) get() *nodeHist {
	if n := len(b.free); n > 0 {
		h := b.free[n-1]
		b.free = b.free[:n-1]
		h.zero()
		return h
	}
	return newNodeHist(b.dim)
}

func (b *histBuilder) put(h *nodeHist) { b.free = append(b.free, h) }

// fill accumulates the histogram of rows for every allowed feature.
func (b *histBuilder) fill(h *nodeHist, rows []int) {
	for f := 0; f < b.dim; f++ {
		if !b.feats[f] {
			continue
		}
		binned := b.bins.binned[f]
		gh := h.gh[f*maxBins : (f+1)*maxBins]
		cnt := h.cnt[f*maxBins : (f+1)*maxBins]
		for _, i := range rows {
			k := binned[i]
			gh[k] += b.grad[i]
			cnt[k]++
		}
	}
}

func (b *histBuilder) build() tree {
	rows := make([]int, 0, len(b.X))
	for i := range b.X {
		if b.inBag[i] {
			rows = append(rows, i)
		}
	}
	if len(rows) == 0 {
		b.tr.nodes = append(b.tr.nodes, node{isLeaf: true})
		return b.tr
	}
	root := b.get()
	b.fill(root, rows)
	b.grow(rows, 0, root)
	return b.tr
}

// grow adds the subtree over rows (whose histogram is h) and returns its
// node index. grow takes ownership of h: it is recycled or passed on to
// a child before returning.
func (b *histBuilder) grow(rows []int, depth int, h *nodeHist) int {
	var g float64
	hess := float64(len(rows))
	for _, i := range rows {
		g += b.grad[i]
	}
	leafWeight := -g / (hess + b.cfg.Lambda)

	idx := len(b.tr.nodes)
	b.tr.nodes = append(b.tr.nodes, node{isLeaf: true, leaf: leafWeight})
	if depth >= b.cfg.MaxDepth || hess < 2*b.cfg.MinChildWeight {
		b.put(h)
		return idx
	}
	feat, thr, gain := b.bestSplit(h, g, hess)
	if feat < 0 || gain <= b.cfg.Gamma {
		b.put(h)
		return idx
	}
	var left, right []int
	for _, i := range rows {
		if b.X[i][feat] < thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		b.put(h)
		return idx
	}
	// Sibling trick: fill the smaller child's histogram from its rows,
	// derive the larger child's by subtraction from the parent's.
	small := left
	if len(right) < len(left) {
		small = right
	}
	hs := b.get()
	b.fill(hs, small)
	h.subtract(hs) // h is now the large child's histogram
	hl, hr := hs, h
	if len(right) < len(left) {
		hl, hr = h, hs
	}
	l := b.grow(left, depth+1, hl)
	r := b.grow(right, depth+1, hr)
	b.tr.nodes[idx] = node{feature: feat, threshold: thr, left: l, right: r}
	return idx
}

// bestSplit scans every allowed feature's histogram for the
// gain-maximising split. Features are scanned in parallel across fitpool
// workers; each writes an independent per-feature candidate slot and the
// reduction walks features in ascending order, so the chosen split never
// depends on the worker count.
func (b *histBuilder) bestSplit(h *nodeHist, gTot, hTot float64) (feature int, threshold, gain float64) {
	feature = -1
	parent := gTot * gTot / (hTot + b.cfg.Lambda)
	fitpool.Run(b.dim, fitpool.Workers(), func(_, f int) {
		b.cands[f] = b.scanFeature(f, h, gTot, hTot, parent)
	})
	for f := 0; f < b.dim; f++ {
		if b.cands[f].ok && b.cands[f].gain > gain {
			gain = b.cands[f].gain
			threshold = b.cands[f].thr
			feature = f
		}
	}
	return feature, threshold, gain
}

// scanFeature walks feature f's bins in ascending value order. A
// candidate split sits between two consecutive occupied bins; its
// threshold is the midpoint of the bins' value ranges, matching the
// between-adjacent-values thresholds of the exact scan (exactly so when
// the binning is lossless).
func (b *histBuilder) scanFeature(f int, h *nodeHist, gTot, hTot, parent float64) histCand {
	var c histCand
	if !b.feats[f] {
		return c
	}
	gh := h.gh[f*maxBins : (f+1)*maxBins]
	cnt := h.cnt[f*maxBins : (f+1)*maxBins]
	lo, hi := b.bins.lo[f], b.bins.hi[f]
	var gl, hl float64
	prev := -1 // last occupied bin below the candidate edge
	for k := 0; k < b.bins.nbins[f]; k++ {
		if cnt[k] == 0 {
			continue
		}
		if prev >= 0 && hl >= b.cfg.MinChildWeight && hTot-hl >= b.cfg.MinChildWeight {
			gr := gTot - gl
			hr := hTot - hl
			gn := 0.5 * (gl*gl/(hl+b.cfg.Lambda) + gr*gr/(hr+b.cfg.Lambda) - parent)
			if gn > c.gain {
				c.gain = gn
				c.thr = (hi[prev] + lo[k]) / 2
				c.ok = true
			}
		}
		gl += gh[k]
		hl += cnt[k]
		prev = k
	}
	return c
}
