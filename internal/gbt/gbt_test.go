package gbt

import (
	"math"
	"math/rand"
	"testing"
)

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err != ErrNoData {
		t.Error("empty data should error")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, Config{}); err != ErrDimension {
		t.Error("X/y length mismatch should error")
	}
	if _, err := Train([][]float64{{1, 2}, {3}}, []float64{1, 2}, Config{}); err != ErrDimension {
		t.Error("ragged X should error")
	}
}

func TestFitsStepFunction(t *testing.T) {
	// y = 10 if x > 0.5 else -10 — one split suffices.
	var X [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		v := float64(i) / 100
		X = append(X, []float64{v})
		if v > 0.5 {
			y = append(y, 10)
		} else {
			y = append(y, -10)
		}
	}
	r, err := Train(X, y, Config{NumTrees: 30, MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p := r.Predict([]float64{0.1}); math.Abs(p+10) > 0.5 {
		t.Errorf("Predict(0.1) = %v, want ≈ -10", p)
	}
	if p := r.Predict([]float64{0.9}); math.Abs(p-10) > 0.5 {
		t.Errorf("Predict(0.9) = %v, want ≈ 10", p)
	}
	if r.NumTrees() != 30 || r.NumFeatures() != 1 {
		t.Errorf("NumTrees=%d NumFeatures=%d", r.NumTrees(), r.NumFeatures())
	}
}

func TestFitsNonlinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var X [][]float64
	var y []float64
	f := func(a, b float64) float64 { return a*a - 2*b + a*b }
	for i := 0; i < 600; i++ {
		a, b := rng.Float64()*4-2, rng.Float64()*4-2
		X = append(X, []float64{a, b})
		y = append(y, f(a, b))
	}
	r, err := Train(X, y, Config{NumTrees: 120, MaxDepth: 5, LearningRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var sse, sst float64
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	for i, x := range X {
		d := r.Predict(x) - y[i]
		sse += d * d
		dd := y[i] - mean
		sst += dd * dd
	}
	r2 := 1 - sse/sst
	if r2 < 0.97 {
		t.Errorf("training R² = %v, want ≥ 0.97", r2)
	}
	// Generalisation on fresh points.
	var genErr float64
	n := 100
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*4-2, rng.Float64()*4-2
		d := r.Predict([]float64{a, b}) - f(a, b)
		genErr += d * d
	}
	genErr /= float64(n)
	if genErr > 0.4 {
		t.Errorf("generalisation MSE = %v, want small", genErr)
	}
}

func TestConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	r, err := Train(X, y, Config{NumTrees: 10})
	if err != nil {
		t.Fatal(err)
	}
	if p := r.Predict([]float64{2.5}); math.Abs(p-7) > 1e-9 {
		t.Errorf("constant target prediction = %v, want 7", p)
	}
}

func TestDeterministicTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		X = append(X, []float64{a, b})
		y = append(y, a+2*b+0.1*rng.NormFloat64())
	}
	cfg := Config{NumTrees: 20, Subsample: 0.7, ColSample: 0.5, Seed: 42}
	r1, _ := Train(X, y, cfg)
	r2, _ := Train(X, y, cfg)
	for i := 0; i < 20; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		if r1.Predict(x) != r2.Predict(x) {
			t.Fatal("same seed produced different models")
		}
	}
	cfg2 := cfg
	cfg2.Seed = 43
	r3, _ := Train(X, y, cfg2)
	diff := false
	for i := 0; i < 20; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		if r1.Predict(x) != r3.Predict(x) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds with subsampling produced identical models")
	}
}

func TestGammaPruning(t *testing.T) {
	// Pure-noise target: with a large gamma no split should be worth
	// making, so every tree is a single leaf and predictions equal the
	// base score.
	rng := rand.New(rand.NewSource(10))
	var X [][]float64
	var y []float64
	var sum float64
	for i := 0; i < 100; i++ {
		X = append(X, []float64{rng.Float64()})
		v := rng.NormFloat64() * 0.01
		y = append(y, v)
		sum += v
	}
	r, err := Train(X, y, Config{NumTrees: 5, Gamma: 100})
	if err != nil {
		t.Fatal(err)
	}
	base := sum / 100
	if p := r.Predict([]float64{0.5}); math.Abs(p-base) > 1e-9 {
		t.Errorf("pruned model prediction = %v, want base %v", p, base)
	}
}

func TestMinChildWeight(t *testing.T) {
	// With MinChildWeight larger than half the data, no split is legal.
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{1, 2, 3, 4}
	r, err := Train(X, y, Config{NumTrees: 3, MinChildWeight: 3})
	if err != nil {
		t.Fatal(err)
	}
	// All predictions collapse to the mean.
	if p := r.Predict([]float64{1}); math.Abs(p-2.5) > 1e-9 {
		t.Errorf("prediction = %v, want 2.5", p)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	c.defaults()
	if c.NumTrees != 50 || c.MaxDepth != 4 || c.LearningRate != 0.3 || c.Lambda != 1 ||
		c.MinChildWeight != 1 || c.Subsample != 1 || c.ColSample != 1 || c.Seed != 1 {
		t.Errorf("defaults = %+v", c)
	}
	c = Config{Subsample: 2, ColSample: -1}
	c.defaults()
	if c.Subsample != 1 || c.ColSample != 1 {
		t.Errorf("fraction clamps = %+v", c)
	}
}
