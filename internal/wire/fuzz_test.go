package wire

import (
	"bytes"
	"testing"

	"github.com/navarchos/pdm/internal/obd"
)

// FuzzWireDecode is the hostile-input gate: whatever bytes arrive,
// DecodeInto must either decode a frame or return a typed error — it
// must never panic, never over-read, and a frame it does accept must
// re-encode to semantically identical items. Seeds cover a valid
// multi-item frame plus each corruption class from the unit tests.
func FuzzWireDecode(f *testing.F) {
	recs, evs := testStream(25, 3)
	valid, _, err := EncodeStream(nil, recs, evs, 1024)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(valid[:HeaderSize])
	f.Add(valid[:len(valid)-2])
	flipped := append([]byte(nil), valid...)
	flipped[HeaderSize+5] ^= 0xff
	f.Add(flipped)
	// A frame using the trace-context extension, so the corpus mutates
	// the new item surface too.
	var tenc Encoder
	tenc.Begin()
	tenc.TraceContext(0xfeedface)
	for i := range recs[:4] {
		tenc.Record(&recs[i])
	}
	tenc.End()
	if tenc.Err() != nil {
		f.Fatal(tenc.Err())
	}
	f.Add(append([]byte(nil), tenc.Bytes()...))

	f.Fuzz(func(t *testing.T, data []byte) {
		var dec Decoder
		dec.MaxFrameBytes = 1 << 20 // keep hostile length prefixes cheap
		var b Batch
		n, err := dec.DecodeInto(data, &b)
		if err != nil {
			if n != 0 {
				t.Fatalf("decode failed with %v but consumed %d bytes", err, n)
			}
			return
		}
		if n < HeaderSize || n > len(data) {
			t.Fatalf("decode consumed %d bytes of %d", n, len(data))
		}
		// Accepted frames must round-trip: re-encode the decoded items
		// and decode again to the same contents.
		var enc Encoder
		enc.Begin()
		enc.TraceContext(b.TraceID)
		ri, ei := 0, 0
		for ri < len(b.Records) {
			enc.Record(&b.Records[ri])
			ri++
		}
		for ei < len(b.Events) {
			enc.Event(&b.Events[ei])
			ei++
		}
		enc.End()
		if enc.Err() != nil {
			t.Fatalf("re-encode of an accepted frame failed: %v", enc.Err())
		}
		var b2 Batch
		if _, err := dec.DecodeInto(enc.Bytes(), &b2); err != nil {
			t.Fatalf("re-encoded frame did not decode: %v", err)
		}
		if len(b2.Records) != len(b.Records) || len(b2.Events) != len(b.Events) {
			t.Fatalf("round trip changed item counts: %d/%d -> %d/%d",
				len(b.Records), len(b.Events), len(b2.Records), len(b2.Events))
		}
		if b2.TraceID != b.TraceID {
			t.Fatalf("round trip changed trace ID: %#x -> %#x", b.TraceID, b2.TraceID)
		}
		// The stream decoder must agree with the buffer decoder on the
		// same bytes (same acceptance, never a panic).
		var streamDec Decoder
		streamDec.MaxFrameBytes = 1 << 20
		streamDec.DecodeStream(bytes.NewReader(data), nopSink{}) //nolint:errcheck // outcome-agnostic: must only not panic
	})

	// Compile-time-ish guard: the fuzz target assumes records carry
	// exactly NumPIDs values.
	if obd.NumPIDs <= 0 {
		f.Fatal("obd.NumPIDs must be positive")
	}
}
