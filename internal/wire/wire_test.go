package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"strings"
	"testing"
	"time"
	"unsafe"

	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/timeseries"
)

// testStream builds a deterministic mixed stream: nrecs records across
// nveh vehicles (one per minute, round-robin) and one event per 97
// records, with awkward float values (negative zero, tiny subnormals,
// NaN payloads are excluded — records never carry NaN) to exercise
// bit-exactness.
func testStream(nrecs, nveh int) ([]timeseries.Record, []obd.Event) {
	base := time.Date(2023, 3, 1, 8, 0, 0, 0, time.UTC)
	recs := make([]timeseries.Record, 0, nrecs)
	var evs []obd.Event
	x := uint64(12345)
	next := func() float64 {
		x = x*6364136223846793005 + 1442695040888963407
		return float64(int64(x>>12)) / float64(1<<20)
	}
	for i := 0; i < nrecs; i++ {
		var r timeseries.Record
		r.VehicleID = vehID(i % nveh)
		r.Time = base.Add(time.Duration(i) * time.Minute)
		for p := 0; p < int(obd.NumPIDs); p++ {
			r.Values[p] = next()
		}
		if i%113 == 0 {
			r.Values[0] = math.Copysign(0, -1) // -0.0 must round-trip
		}
		recs = append(recs, r)
		if i%97 == 42 {
			ev := obd.Event{
				VehicleID: r.VehicleID,
				Time:      r.Time.Add(30 * time.Second),
				Type:      obd.EventType(i % 3),
				Note:      "note-" + r.VehicleID,
			}
			if ev.Type == obd.EventDTC {
				ev.DTC = &obd.DTC{Code: "P0128", Kind: obd.DTCStored}
			}
			evs = append(evs, ev)
		}
	}
	return recs, evs
}

func vehID(i int) string {
	return "veh-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

// TestRoundTrip pins the core format contract: encode a mixed stream,
// decode it, and require Float64bits-identical records and structurally
// identical events, in order.
func TestRoundTrip(t *testing.T) {
	recs, evs := testStream(500, 7)
	frames, nframes, err := EncodeStream(nil, recs, evs, 64)
	if err != nil {
		t.Fatal(err)
	}
	if want := (len(recs) + len(evs) + 63) / 64; nframes != want {
		t.Fatalf("EncodeStream produced %d frames, want %d", nframes, want)
	}

	var dec Decoder
	var b Batch
	got, err := dec.DecodeAll(frames, &b)
	if err != nil {
		t.Fatal(err)
	}
	if got != nframes {
		t.Fatalf("DecodeAll decoded %d frames, want %d", got, nframes)
	}
	if len(b.Records) != len(recs) || len(b.Events) != len(evs) {
		t.Fatalf("decoded %d records / %d events, want %d / %d",
			len(b.Records), len(b.Events), len(recs), len(evs))
	}
	for i := range recs {
		want, got := &recs[i], &b.Records[i]
		if got.VehicleID != want.VehicleID || !got.Time.Equal(want.Time) {
			t.Fatalf("record %d: id/time mismatch: got %s@%v want %s@%v",
				i, got.VehicleID, got.Time, want.VehicleID, want.Time)
		}
		for p := range want.Values {
			if math.Float64bits(got.Values[p]) != math.Float64bits(want.Values[p]) {
				t.Fatalf("record %d value %d: bits %x != %x", i, p,
					math.Float64bits(got.Values[p]), math.Float64bits(want.Values[p]))
			}
		}
	}
	for i := range evs {
		want, got := evs[i], b.Events[i]
		if got.VehicleID != want.VehicleID || !got.Time.Equal(want.Time) ||
			got.Type != want.Type || got.Note != want.Note {
			t.Fatalf("event %d mismatch: got %+v want %+v", i, got, want)
		}
		if (got.DTC == nil) != (want.DTC == nil) {
			t.Fatalf("event %d DTC presence mismatch", i)
		}
		if want.DTC != nil && *got.DTC != *want.DTC {
			t.Fatalf("event %d DTC mismatch: got %+v want %+v", i, *got.DTC, *want.DTC)
		}
	}
}

// TestDecodeIntern pins the interning contract behind the zero-alloc
// guarantee: a returning vehicle's decoded ID must be the same string
// header, not a fresh allocation.
func TestDecodeIntern(t *testing.T) {
	recs, _ := testStream(10, 2)
	frames, _, err := EncodeStream(nil, recs, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	var dec Decoder
	var b Batch
	if _, err := dec.DecodeAll(frames, &b); err != nil {
		t.Fatal(err)
	}
	seen := map[string]*byte{}
	for i := range b.Records {
		id := b.Records[i].VehicleID
		ptr := unsafe.StringData(id)
		if prev, ok := seen[id]; ok && prev != ptr {
			t.Fatalf("vehicle ID %q decoded to two different string allocations", id)
		}
		seen[id] = ptr
	}
}

// TestDecodeZeroAlloc is the steady-state allocation oracle: after the
// first frame establishes batch capacity and the intern table, decoding
// a frame of records costs zero allocations per record.
func TestDecodeZeroAlloc(t *testing.T) {
	recs, _ := testStream(256, 4)
	frames, _, err := EncodeStream(nil, recs, nil, 256)
	if err != nil {
		t.Fatal(err)
	}
	var dec Decoder
	var b Batch
	// Warm up: capacity + intern table.
	if _, err := dec.DecodeAll(frames, &b); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		b.Reset()
		if _, err := dec.DecodeInto(frames, &b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state decode allocated %.1f times per frame of %d records, want 0",
			allocs, len(recs))
	}
}

// TestDecodeStream feeds the same frames through the io.Reader path and
// requires identical batch boundaries and contents.
func TestDecodeStream(t *testing.T) {
	recs, evs := testStream(300, 5)
	frames, nframes, err := EncodeStream(nil, recs, evs, 50)
	if err != nil {
		t.Fatal(err)
	}
	var dec Decoder
	var got Batch
	calls := 0
	n, err := dec.DecodeStream(bytes.NewReader(frames), SinkFunc(func(b *Batch) error {
		calls++
		got.Records = append(got.Records, b.Records...)
		got.Events = append(got.Events, b.Events...)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if n != nframes || calls != nframes {
		t.Fatalf("stream decoded %d frames with %d sink calls, want %d", n, calls, nframes)
	}
	if len(got.Records) != len(recs) || len(got.Events) != len(evs) {
		t.Fatalf("stream decoded %d/%d items, want %d/%d",
			len(got.Records), len(got.Events), len(recs), len(evs))
	}
	// A stream cut mid-frame must surface as ErrTruncated.
	if _, err := dec.DecodeStream(bytes.NewReader(frames[:len(frames)-3]), nopSink{}); err != ErrTruncated {
		t.Fatalf("truncated stream: got %v, want ErrTruncated", err)
	}
}

type nopSink struct{}

func (nopSink) ConsumeBatch(*Batch) error { return nil }

// TestDecodeRejectsCorruption walks the typed-error contract: magic,
// version, kind, CRC, truncation, oversize and structural corruption
// each fail with their error and never panic.
func TestDecodeRejectsCorruption(t *testing.T) {
	recs, evs := testStream(40, 3)
	frame, _, err := EncodeStream(nil, recs, evs, 1024)
	if err != nil {
		t.Fatal(err)
	}
	var dec Decoder
	check := func(name string, buf []byte, want error) {
		t.Helper()
		var b Batch
		if _, err := dec.DecodeInto(buf, &b); err != want {
			t.Fatalf("%s: got %v, want %v", name, err, want)
		}
	}
	corrupt := func(mut func(c []byte)) []byte {
		c := append([]byte(nil), frame...)
		mut(c)
		return c
	}
	check("empty", nil, ErrTruncated)
	check("short header", frame[:HeaderSize-1], ErrTruncated)
	check("bad magic", corrupt(func(c []byte) { c[0] = 'X' }), ErrBadMagic)
	check("bad version", corrupt(func(c []byte) { c[4] = 99 }), ErrBadVersion)
	check("bad kind", corrupt(func(c []byte) { c[5] = 7 }), ErrBadKind)
	check("payload bit flip", corrupt(func(c []byte) { c[HeaderSize+10] ^= 0x40 }), ErrCorrupt)
	check("truncated payload", frame[:len(frame)-1], ErrTruncated)
	check("oversize length", corrupt(func(c []byte) {
		binary.LittleEndian.PutUint32(c[6:], uint32(DefaultMaxFrameBytes+1))
	}), ErrFrameTooLarge)
	// A lying item count with a fixed-up CRC is structural corruption.
	check("bad count", corrupt(func(c []byte) {
		binary.LittleEndian.PutUint32(c[HeaderSize:], 1<<30)
		binary.LittleEndian.PutUint32(c[10:], crc32.Checksum(c[HeaderSize:], castagnoli))
	}), ErrBadFrame)
}

// TestEncoderLimits pins the encoder's sticky error: an oversize
// vehicle ID fails the stream instead of truncating it silently.
func TestEncoderLimits(t *testing.T) {
	var enc Encoder
	enc.Record(&timeseries.Record{VehicleID: strings.Repeat("v", maxIDLen+1)})
	enc.End()
	if enc.Err() == nil {
		t.Fatal("encoding an oversize vehicle ID did not error")
	}
}

// TestTraceContextRoundTrip pins the trace-context extension item:
// a frame carrying one survives encode→decode with the producer's
// trace ID intact, a frame without one decodes to TraceID 0 (the
// pre-extension format is a strict subset), and TraceContext(0) emits
// nothing so untraced producers keep their byte-identical frames.
func TestTraceContextRoundTrip(t *testing.T) {
	recs, _ := testStream(8, 2)

	var traced Encoder
	traced.Begin()
	traced.TraceContext(0xdeadbeefcafe)
	for i := range recs {
		traced.Record(&recs[i])
	}
	traced.End()
	if traced.Err() != nil {
		t.Fatal(traced.Err())
	}

	var dec Decoder
	var b Batch
	if _, err := dec.DecodeInto(traced.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if b.TraceID != 0xdeadbeefcafe {
		t.Fatalf("decoded TraceID %#x, want %#x", b.TraceID, uint64(0xdeadbeefcafe))
	}
	if len(b.Records) != len(recs) {
		t.Fatalf("trace item displaced records: got %d, want %d", len(b.Records), len(recs))
	}

	// Old-format frames (no trace item) must keep decoding and must not
	// inherit a trace ID from a previously decoded frame.
	var plain Encoder
	plain.Begin()
	for i := range recs {
		plain.Record(&recs[i])
	}
	plain.End()
	b.Reset()
	if _, err := dec.DecodeInto(plain.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if b.TraceID != 0 {
		t.Fatalf("untraced frame decoded to TraceID %#x, want 0", b.TraceID)
	}

	// A zero trace ID is "no context": the encoder emits no item, so the
	// frame is byte-identical to one that never called TraceContext.
	var zero Encoder
	zero.Begin()
	zero.TraceContext(0)
	for i := range recs {
		zero.Record(&recs[i])
	}
	zero.End()
	if !bytes.Equal(zero.Bytes(), plain.Bytes()) {
		t.Fatal("TraceContext(0) changed the encoded frame bytes")
	}
}

// TestCSVDecode pins the CSV compat path: schema-checked streaming
// decode in batches through the same FrameSink as the binary path.
func TestCSVDecode(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("vehicle,time,rpm,speed,coolantTemp,intakeTemp,mapIntake,MAFairFlowRate\n")
	sb.WriteString("veh-01,2023-03-01T08:00:00Z,1500.5,62.25,88,21,101,14.5\n")
	sb.WriteString("veh-02,2023-03-01T08:01:00Z,900,0,87,20,35,4.125\n")
	var got Batch
	batches := 0
	n, err := DecodeCSV(strings.NewReader(sb.String()), 1, SinkFunc(func(b *Batch) error {
		batches++
		got.Records = append(got.Records, b.Records...)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || batches != 2 || len(got.Records) != 2 {
		t.Fatalf("decoded %d rows in %d batches (%d records), want 2/2/2", n, batches, len(got.Records))
	}
	if got.Records[0].VehicleID != "veh-01" || got.Records[0].Values[obd.EngineRPM] != 1500.5 {
		t.Fatalf("row 1 decoded as %+v", got.Records[0])
	}
	if _, err := DecodeCSV(strings.NewReader("not,a,schema\n1,2,3\n"), 0, nopSink{}); err == nil {
		t.Fatal("schema mismatch did not error")
	}
}

// TestJSONDecode pins the JSON compat path for both accepted shapes
// (array, NDJSON) and both item kinds.
func TestJSONDecode(t *testing.T) {
	array := `[
	 {"vehicle":"veh-01","time":"2023-03-01T08:00:00Z","values":[1500,60,88,21,101,14.5]},
	 {"vehicle":"veh-01","time":"2023-03-01T08:01:00Z","event":"repair","note":"water pump"},
	 {"vehicle":"veh-02","time":"2023-03-01T08:02:00Z","event":"dtc","dtc":"P0128:stored"}
	]`
	ndjson := `{"vehicle":"veh-01","time":"2023-03-01T08:00:00Z","values":[1500,60,88,21,101,14.5]}
	{"vehicle":"veh-01","time":"2023-03-01T08:01:00Z","event":"repair","note":"water pump"}
	{"vehicle":"veh-02","time":"2023-03-01T08:02:00Z","event":"dtc","dtc":"P0128:stored"}`
	for name, input := range map[string]string{"array": array, "ndjson": ndjson} {
		var got Batch
		n, err := DecodeJSON(strings.NewReader(input), 0, SinkFunc(func(b *Batch) error {
			got.Records = append(got.Records, b.Records...)
			got.Events = append(got.Events, b.Events...)
			return nil
		}))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n != 3 || len(got.Records) != 1 || len(got.Events) != 2 {
			t.Fatalf("%s: decoded %d items (%d records, %d events), want 3 (1, 2)",
				name, n, len(got.Records), len(got.Events))
		}
		if got.Events[1].DTC == nil || got.Events[1].DTC.Kind != obd.DTCStored {
			t.Fatalf("%s: DTC event decoded as %+v", name, got.Events[1])
		}
	}
	if _, err := DecodeJSON(strings.NewReader(`[{"vehicle":"v","time":"2023-03-01T08:00:00Z","values":[1]}]`), 0, nopSink{}); err == nil {
		t.Fatal("short values vector did not error")
	}
}
