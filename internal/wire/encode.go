package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/navarchos/pdm/internal/core"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/timeseries"
)

// Encoder builds NVWIRE1 frames in an append-only buffer. The zero
// value is ready to use; Reset reuses the buffer for a new stream, so a
// steady-state producer (the bench harness, a telemetry forwarder)
// encodes without allocating. Frames are built by Begin / Record /
// Event / End; multiple frames accumulate in the same buffer.
type Encoder struct {
	buf   []byte
	open  bool
	start int    // offset of the open frame's header
	count uint32 // items in the open frame
	err   error  // sticky: first item that failed to encode
}

// Reset drops all encoded bytes, keeping the buffer's capacity.
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	e.open = false
	e.count = 0
	e.err = nil
}

// Bytes returns every finished frame encoded so far. It panics if a
// frame is still open — End must close it first.
func (e *Encoder) Bytes() []byte {
	if e.open {
		panic("wire: Encoder.Bytes with an open frame")
	}
	return e.buf
}

// Err returns the sticky encode error (nil while every item fit the
// format's limits).
func (e *Encoder) Err() error { return e.err }

// Begin opens a new telemetry-batch frame, closing any open one first.
func (e *Encoder) Begin() {
	if e.open {
		e.End()
	}
	e.start = len(e.buf)
	e.buf = append(e.buf, Magic...)
	e.buf = append(e.buf, Version, KindBatch)
	// Payload length and CRC are patched by End.
	e.buf = append(e.buf, 0, 0, 0, 0, 0, 0, 0, 0)
	// Payload starts with the item count, also patched by End.
	e.buf = append(e.buf, 0, 0, 0, 0)
	e.count = 0
	e.open = true
}

// End closes the open frame, patching its item count, payload length
// and CRC. A no-op when no frame is open.
func (e *Encoder) End() {
	if !e.open {
		return
	}
	payload := e.buf[e.start+HeaderSize:]
	binary.LittleEndian.PutUint32(payload, e.count)
	binary.LittleEndian.PutUint32(e.buf[e.start+6:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(e.buf[e.start+10:], crc32.Checksum(payload, castagnoli))
	e.open = false
}

// Count returns the number of items in the open frame (0 when closed).
func (e *Encoder) Count() int {
	if !e.open {
		return 0
	}
	return int(e.count)
}

// setErr records the first encode failure; later items are dropped so
// a stream built through a sticky encoder is never silently partial.
func (e *Encoder) setErr(err error) {
	if e.err == nil {
		e.err = err
	}
}

// appendString appends a uint16-length-prefixed string, rejecting
// strings beyond the format's limit.
func (e *Encoder) appendString(s string, what string) bool {
	if len(s) > maxIDLen {
		e.setErr(fmt.Errorf("wire: %s of %d bytes exceeds the %d-byte limit", what, len(s), maxIDLen))
		return false
	}
	e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(len(s)))
	e.buf = append(e.buf, s...)
	return true
}

// Record appends one telemetry record to the open frame (opening one if
// necessary).
func (e *Encoder) Record(r *timeseries.Record) {
	if e.err != nil {
		return
	}
	if !e.open {
		e.Begin()
	}
	e.buf = append(e.buf, tagRecord)
	if !e.appendString(r.VehicleID, "vehicle ID") {
		return
	}
	e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(r.Time.UnixNano()))
	e.buf = append(e.buf, uint8(obd.NumPIDs))
	for p := 0; p < int(obd.NumPIDs); p++ {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(r.Values[p]))
	}
	e.count++
}

// Event appends one maintenance event to the open frame (opening one if
// necessary).
func (e *Encoder) Event(ev *obd.Event) {
	if e.err != nil {
		return
	}
	if !e.open {
		e.Begin()
	}
	e.buf = append(e.buf, tagEvent)
	if !e.appendString(ev.VehicleID, "vehicle ID") {
		return
	}
	e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(ev.Time.UnixNano()))
	e.buf = append(e.buf, uint8(ev.Type))
	var flags uint8
	if ev.DTC != nil {
		flags |= flagDTC
	}
	e.buf = append(e.buf, flags)
	if ev.DTC != nil {
		if !e.appendString(ev.DTC.Code, "DTC code") {
			return
		}
		e.buf = append(e.buf, uint8(ev.DTC.Kind))
	}
	if !e.appendString(ev.Note, "event note") {
		return
	}
	e.count++
}

// Item tags and event flags.
const (
	tagRecord = 0
	tagEvent  = 1
	tagTrace  = 2
	flagDTC   = 1 << 0
)

// TraceContext appends the frame's trace-context item carrying a
// producer-assigned trace ID (opening a frame if necessary). Stamp it
// once, right after Begin, so receivers attribute every item in the
// frame to it. A zero ID is the "no trace" value and appends nothing.
func (e *Encoder) TraceContext(id uint64) {
	if e.err != nil || id == 0 {
		return
	}
	if !e.open {
		e.Begin()
	}
	e.buf = append(e.buf, tagTrace)
	// No vehicle ID: the item describes the whole frame.
	e.buf = binary.LittleEndian.AppendUint16(e.buf, 0)
	e.buf = binary.LittleEndian.AppendUint64(e.buf, id)
	// Reserved flags byte pads the item to minItemSize.
	e.buf = append(e.buf, 0)
	e.count++
}

// AppendHandoff appends one vehicle-handoff frame carrying a
// serialized fleet.VehicleState and returns the extended buffer. The
// state travels opaque to the wire layer — CRC-framed like telemetry,
// decoded by the receiver's engine through the same per-vehicle codec
// its checkpoints use. Errors only when the state exceeds the frame
// size bound.
func AppendHandoff(dst []byte, state []byte) ([]byte, error) {
	if len(state) > DefaultMaxFrameBytes {
		return dst, fmt.Errorf("%w: %d-byte vehicle state", ErrFrameTooLarge, len(state))
	}
	dst = append(dst, Magic...)
	dst = append(dst, Version, KindHandoff)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(state)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(state, castagnoli))
	return append(dst, state...), nil
}

// EncodeStream encodes whole record and event streams as a sequence of
// frames of up to perFrame items each, appended to dst. The streams are
// merged chronologically with events before same-timestamp records —
// exactly the order fleet.Engine.Replay feeds them — so decoding the
// result and admitting each batch through IngestBatch reproduces a
// replay bit-for-bit. Returns the extended buffer and the frame count.
func EncodeStream(dst []byte, records []timeseries.Record, events []obd.Event, perFrame int) ([]byte, int, error) {
	if perFrame <= 0 {
		perFrame = 512
	}
	enc := Encoder{buf: dst}
	frames := 0
	cut := func() {
		if enc.Count() >= perFrame {
			enc.End()
			frames++
		}
	}
	err := core.Merged("", records, events,
		func(ev obd.Event) error {
			enc.Event(&ev)
			cut()
			return enc.Err()
		},
		func(r timeseries.Record) error {
			enc.Record(&r)
			cut()
			return enc.Err()
		})
	if err != nil {
		return dst, 0, err
	}
	if enc.Count() > 0 {
		enc.End()
		frames++
	}
	return enc.Bytes(), frames, nil
}
