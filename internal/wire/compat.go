package wire

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/timeseries"
)

// This file is the compatibility ingest path: CSV and JSON batch
// decoders that deliver through the same FrameSink as the binary
// decoder, so navarchos-serve treats every wire format identically
// downstream of decode. These paths parse text and therefore allocate —
// they exist for interoperability (navarchos-gen CSV dumps, ad-hoc
// curl), not for the throughput bound; high-volume producers should
// speak NVWIRE1.

// DecodeCSV streams telemetry records in the navarchos-gen CSV schema
// (vehicle,time,rpm,speed,coolantTemp,intakeTemp,mapIntake,
// MAFairFlowRate) into sink in batches of up to batchSize records
// (default 512). Returns the record count.
func DecodeCSV(r io.Reader, batchSize int, sink FrameSink) (int, error) {
	if batchSize <= 0 {
		batchSize = 512
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("wire: csv header: %w", err)
	}
	wantCols := 2 + int(obd.NumPIDs)
	if len(header) != wantCols || header[0] != "vehicle" || header[1] != "time" {
		return 0, fmt.Errorf("wire: csv header %v does not match the records schema", header)
	}
	var batch Batch
	total := 0
	flush := func() error {
		if batch.Len() == 0 {
			return nil
		}
		if err := sink.ConsumeBatch(&batch); err != nil {
			return err
		}
		batch.Reset()
		return nil
	}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return total, fmt.Errorf("wire: csv row %d: %w", line, err)
		}
		if len(row) != wantCols {
			return total, fmt.Errorf("wire: csv row %d has %d columns, want %d", line, len(row), wantCols)
		}
		var rec timeseries.Record
		rec.VehicleID = row[0]
		rec.Time, err = time.Parse(time.RFC3339, row[1])
		if err != nil {
			return total, fmt.Errorf("wire: csv row %d time: %w", line, err)
		}
		for p := 0; p < int(obd.NumPIDs); p++ {
			rec.Values[p], err = strconv.ParseFloat(row[2+p], 64)
			if err != nil {
				return total, fmt.Errorf("wire: csv row %d col %s: %w", line, obd.PID(p), err)
			}
		}
		batch.Records = append(batch.Records, rec)
		total++
		if batch.Len() >= batchSize {
			if err := flush(); err != nil {
				return total, err
			}
		}
	}
	return total, flush()
}

// jsonItem is the JSON ingest shape: a record when "event" is absent
// (values in PID order), an event otherwise.
type jsonItem struct {
	Vehicle string    `json:"vehicle"`
	Time    time.Time `json:"time"`
	Values  []float64 `json:"values,omitempty"`
	Event   string    `json:"event,omitempty"` // service | repair | dtc
	DTC     string    `json:"dtc,omitempty"`   // "P0128" or "P0128:stored"
	Note    string    `json:"note,omitempty"`
}

// DecodeJSON streams telemetry items into sink in batches of up to
// batchSize (default 512). The input is either a JSON array of items or
// newline-delimited item objects; each item is
//
//	{"vehicle":"veh-01","time":"2023-01-01T10:00:00Z","values":[v0,...,v5]}
//	{"vehicle":"veh-01","time":"...","event":"repair","note":"water pump"}
//
// with values in canonical PID order. Returns the item count.
func DecodeJSON(r io.Reader, batchSize int, sink FrameSink) (int, error) {
	if batchSize <= 0 {
		batchSize = 512
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	inArray := false
	tok, err := dec.Token()
	if err == io.EOF {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wire: json: %w", err)
	}
	if delim, ok := tok.(json.Delim); ok && delim == '[' {
		inArray = true
	} else {
		// Not an array: re-decode the stream as concatenated objects.
		if delim, ok := tok.(json.Delim); !ok || delim != '{' {
			return 0, fmt.Errorf("wire: json input must be an array or a stream of objects")
		}
		// Replay the consumed '{' plus the decoder's buffered bytes.
		dec = json.NewDecoder(io.MultiReader(strings.NewReader("{"), dec.Buffered(), r))
		dec.DisallowUnknownFields()
	}
	var batch Batch
	total := 0
	flush := func() error {
		if batch.Len() == 0 {
			return nil
		}
		if err := sink.ConsumeBatch(&batch); err != nil {
			return err
		}
		batch.Reset()
		return nil
	}
	for {
		if inArray && !dec.More() {
			if _, err := dec.Token(); err != nil { // consume ']'
				return total, fmt.Errorf("wire: json: %w", err)
			}
			break
		}
		var it jsonItem
		if err := dec.Decode(&it); err != nil {
			if !inArray && err == io.EOF {
				break
			}
			return total, fmt.Errorf("wire: json item %d: %w", total+1, err)
		}
		if err := appendJSONItem(&batch, &it); err != nil {
			return total, fmt.Errorf("wire: json item %d: %w", total+1, err)
		}
		total++
		if batch.Len() >= batchSize {
			if err := flush(); err != nil {
				return total, err
			}
		}
	}
	return total, flush()
}

// appendJSONItem validates one decoded item and appends it to the batch.
func appendJSONItem(b *Batch, it *jsonItem) error {
	if it.Vehicle == "" {
		return fmt.Errorf("missing vehicle")
	}
	if it.Time.IsZero() {
		return fmt.Errorf("missing time")
	}
	if it.Event == "" {
		if len(it.Values) != int(obd.NumPIDs) {
			return fmt.Errorf("record has %d values, want %d", len(it.Values), obd.NumPIDs)
		}
		var rec timeseries.Record
		rec.VehicleID = it.Vehicle
		rec.Time = it.Time.UTC()
		copy(rec.Values[:], it.Values)
		b.Records = append(b.Records, rec)
		return nil
	}
	ev := obd.Event{VehicleID: it.Vehicle, Time: it.Time.UTC(), Note: it.Note}
	switch it.Event {
	case "service":
		ev.Type = obd.EventService
	case "repair":
		ev.Type = obd.EventRepair
	case "dtc":
		ev.Type = obd.EventDTC
	default:
		return fmt.Errorf("unknown event type %q", it.Event)
	}
	if it.DTC != "" {
		d := obd.DTC{Code: it.DTC, Kind: obd.DTCPending}
		if i := strings.IndexByte(it.DTC, ':'); i >= 0 {
			d.Code = it.DTC[:i]
			if it.DTC[i+1:] == "stored" {
				d.Kind = obd.DTCStored
			}
		}
		ev.DTC = &d
	}
	b.Events = append(b.Events, ev)
	return nil
}
