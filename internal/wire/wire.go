// Package wire implements NVWIRE1, the telemetry ingest wire format:
// length-prefixed, CRC-checked binary frames carrying batches of
// telemetry records and maintenance events, with an allocation-free
// batch decoder. It is the data plane between the network edge
// (cmd/navarchos-serve) and the fleet engine's batch admission seam
// (fleet.Engine.IngestBatch): the hot path from socket to shard never
// touches the allocator once a connection is warm, which is what keeps
// real-world ingest from becoming allocator-bound long before the
// scoring path saturates.
//
// # Frame layout
//
// A stream is a sequence of self-delimiting frames:
//
//	offset  size  field
//	0       4     magic "NVW1"
//	4       1     version (1)
//	5       1     frame kind (0 = telemetry batch, 1 = vehicle handoff)
//	6       4     payload length, little-endian uint32
//	10      4     CRC-32C (Castagnoli) of the payload, little-endian
//	14      n     payload
//
// A vehicle-handoff payload is one serialized fleet.VehicleState (the
// engine's canonical per-vehicle checkpoint codec) — the frame that
// lets the control plane's drain travel the same zero-copy wire path
// as telemetry instead of a second serialization stack. Decoders route
// it to their HandoffSink; decoders without one refuse the frame.
//
// A telemetry-batch payload is an item count followed by that many
// items in stream order:
//
//	uint32  count
//	count × item:
//	  uint8   tag (0 = record, 1 = event, 2 = trace context)
//	  uint16  vehicle-ID length + that many bytes (always 0 for trace)
//	  record: int64 timestamp, UTC unix nanoseconds;
//	          uint8 value count (= obd.NumPIDs) + count × IEEE-754 bits
//	  event:  int64 timestamp, UTC unix nanoseconds;
//	          uint8 type; uint8 flags (bit 0: DTC present);
//	          [uint16 DTC code length + bytes; uint8 DTC kind];
//	          uint16 note length + bytes
//	  trace:  uint64 producer trace ID; uint8 reserved flags (0)
//
// The trace-context item is the format's provenance extension: a
// producer stamps at most one per frame (conventionally first) and the
// decoder surfaces it as Batch.TraceID, where the ingest path threads
// it into alarm provenance. It is deliberately an *item*, not a header
// change — frames without one are byte-identical to the pre-extension
// format, so old golden frames keep decoding and old decoders reject
// only frames that actually use the extension.
//
// All integers are little-endian and fixed-width; floats travel as
// IEEE-754 bit patterns, so a record round-trips bit-exactly — the
// property that makes wire-fed alarms Float64bits-identical to the same
// trace fed through fleet.Engine.Replay.
//
// # Ordering contract
//
// Items within a frame and frames within a stream are processed in
// order. Feeding each vehicle's elements chronologically, events before
// same-timestamp records (the core.RunVehicle contract), makes wire
// ingest bit-identical to an in-memory replay at any shard count.
// Encoder callers get this for free from EncodeStream, which merges
// record and event streams exactly as Replay does.
//
// # Safety
//
// The decoder never panics and never over-reads on truncated, corrupt
// or adversarial input: every length is validated against the bytes
// actually present, frames are bounded by MaxFrameBytes, and corruption
// surfaces as one of the typed errors (ErrBadMagic, ErrBadVersion,
// ErrTruncated, ErrCorrupt, ErrFrameTooLarge, ErrBadFrame) — the
// contract FuzzWireDecode pins.
package wire

import (
	"errors"
	"hash/crc32"

	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/timeseries"
)

// Format constants.
const (
	// Magic opens every NVWIRE1 frame.
	Magic = "NVW1"
	// Version is the current format version byte.
	Version = 1
	// KindBatch is the telemetry-batch frame kind.
	KindBatch = 0
	// KindHandoff is the vehicle-handoff frame kind: the payload is one
	// serialized fleet.VehicleState.
	KindHandoff = 1
	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 14
	// DefaultMaxFrameBytes bounds a frame payload unless the decoder
	// overrides it: large enough for tens of thousands of records per
	// frame, small enough that a corrupt length prefix cannot balloon
	// memory.
	DefaultMaxFrameBytes = 16 << 20
	// maxIDLen bounds one vehicle-ID, DTC-code or note string.
	maxIDLen = 1024
	// maxIntern bounds the decoder's vehicle-ID intern table; fleets
	// beyond it still decode, later IDs just allocate per record.
	maxIntern = 1 << 16
	// minItemSize is the smallest encodable item (record tag + empty ID
	// + timestamp + value count), used to sanity-check count prefixes.
	// The trace-context item is padded with a reserved flags byte to
	// exactly this size so the sanity check stays exact.
	minItemSize = 1 + 2 + 8 + 1
)

// Typed decode errors. ErrTruncated doubles as the "need more bytes"
// signal for callers feeding partial buffers.
var (
	ErrBadMagic      = errors.New("wire: bad magic (not an NVWIRE1 frame)")
	ErrBadVersion    = errors.New("wire: unsupported frame version")
	ErrBadKind       = errors.New("wire: unknown frame kind")
	ErrTruncated     = errors.New("wire: truncated frame")
	ErrCorrupt       = errors.New("wire: frame CRC mismatch")
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	ErrBadFrame      = errors.New("wire: malformed frame payload")
)

// castagnoli is the CRC-32C table shared by encoder and decoder.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Batch is one decoded telemetry frame: records and events in
// per-vehicle stream order. The decoder reuses both slices' capacity
// across frames, so a long-lived Batch is what makes the decode loop
// allocation-free; treat the contents as valid only until the next
// DecodeInto on the same Batch.
type Batch struct {
	Records []timeseries.Record
	Events  []obd.Event
	// TraceID is the producer trace context carried by the frame's
	// trace-context item (0 when the frame carried none; when a corrupt
	// producer stamps several, the last one wins).
	TraceID uint64
}

// Reset empties the batch, keeping capacity.
func (b *Batch) Reset() {
	b.Records = b.Records[:0]
	b.Events = b.Events[:0]
	b.TraceID = 0
}

// Len returns the number of items in the batch.
func (b *Batch) Len() int { return len(b.Records) + len(b.Events) }

// FrameSink consumes decoded batches. The batch is only valid for the
// duration of the call — the decoder reuses its backing arrays for the
// next frame — so sinks must finish routing (or copy) before returning.
// fleet.Engine.IngestBatch copies envelopes into shard queues, which
// satisfies the contract. All three ingest decoders (binary stream,
// CSV, JSON) deliver through this interface, so the serve path treats
// every format identically downstream of decode.
type FrameSink interface {
	ConsumeBatch(b *Batch) error
}

// SinkFunc adapts a function to the FrameSink interface.
type SinkFunc func(b *Batch) error

// ConsumeBatch implements FrameSink.
func (f SinkFunc) ConsumeBatch(b *Batch) error { return f(b) }
