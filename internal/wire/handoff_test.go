package wire

import (
	"bytes"
	"errors"
	"testing"
)

// TestHandoffRoundTrip pins the KindHandoff frame contract: the payload
// reaches the sink byte-for-byte, interleaves freely with telemetry
// frames on every decode path, and a decoder without a sink refuses the
// frame instead of swallowing state.
func TestHandoffRoundTrip(t *testing.T) {
	state := []byte("NVCHKPT-style opaque vehicle state \x00\x01\xfe\xff")
	frame, err := AppendHandoff(nil, state)
	if err != nil {
		t.Fatal(err)
	}

	// Single-frame decode.
	var got [][]byte
	dec := Decoder{HandoffSink: func(s []byte) error {
		got = append(got, append([]byte(nil), s...))
		return nil
	}}
	var b Batch
	n, err := dec.DecodeInto(frame, &b)
	if err != nil || n != len(frame) {
		t.Fatalf("DecodeInto = %d, %v, want %d bytes consumed", n, err, len(frame))
	}
	if len(got) != 1 || !bytes.Equal(got[0], state) {
		t.Fatalf("sink saw %q, want %q", got, state)
	}
	if b.Len() != 0 {
		t.Fatalf("handoff frame leaked %d items into the batch", b.Len())
	}

	// Interleaved with telemetry on the streaming path: handoff frames
	// pass through the sink while record frames still decode around
	// them, in order.
	recs, evs := testStream(64, 3)
	stream, frames, err := EncodeStream(nil, recs[:32], evs[:1], 16)
	if err != nil {
		t.Fatal(err)
	}
	if stream, err = AppendHandoff(stream, state); err != nil {
		t.Fatal(err)
	}
	tail, tailFrames, err := EncodeStream(nil, recs[32:], nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	stream = append(stream, tail...)

	got = nil
	var decoded int
	nframes, err := dec.DecodeStream(bytes.NewReader(stream), SinkFunc(func(b *Batch) error {
		decoded += len(b.Records)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if nframes != frames+1+tailFrames {
		t.Fatalf("decoded %d frames, want %d", nframes, frames+1+tailFrames)
	}
	if decoded != len(recs) || len(got) != 1 || !bytes.Equal(got[0], state) {
		t.Fatalf("interleaved stream: %d records, %d handoffs", decoded, len(got))
	}

	// An empty state is a legal frame (the codec, not the wire, decides
	// what a valid vehicle state is).
	empty, err := AppendHandoff(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got = nil
	if _, err := dec.DecodeAll(empty, &b); err != nil || len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("empty handoff: %v, sink saw %q", err, got)
	}
}

// TestHandoffRefusals pins the failure paths: nil sink, sink error
// propagation, CRC corruption, and the frame size bound.
func TestHandoffRefusals(t *testing.T) {
	state := []byte("some vehicle state")
	frame, err := AppendHandoff(nil, state)
	if err != nil {
		t.Fatal(err)
	}

	// A decoder without a HandoffSink must refuse the frame — a plain
	// telemetry endpoint cannot be tricked into accepting state.
	var plain Decoder
	var b Batch
	if _, err := plain.DecodeInto(frame, &b); !errors.Is(err, ErrBadKind) {
		t.Fatalf("nil-sink decode = %v, want ErrBadKind", err)
	}

	// Sink errors surface from the decode call.
	boom := errors.New("adopt failed")
	dec := Decoder{HandoffSink: func([]byte) error { return boom }}
	if _, err := dec.DecodeInto(frame, &b); !errors.Is(err, boom) {
		t.Fatalf("sink error = %v, want %v", err, boom)
	}

	// Corruption is caught by the CRC before the sink ever runs.
	corrupt := append([]byte(nil), frame...)
	corrupt[HeaderSize] ^= 0x01
	ran := false
	dec = Decoder{HandoffSink: func([]byte) error { ran = true; return nil }}
	if _, err := dec.DecodeInto(corrupt, &b); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt handoff = %v, want ErrCorrupt", err)
	}
	if ran {
		t.Fatal("sink ran on a corrupt frame")
	}

	// Oversized states are refused at encode time.
	if _, err := AppendHandoff(nil, make([]byte, DefaultMaxFrameBytes+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized state = %v, want ErrFrameTooLarge", err)
	}
}
