package wire

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenPath is the committed NVWIRE1 exemplar: a real frame file that
// pins the byte-level format across PRs. If the format ever changes
// incompatibly, this test fails before any deployed producer does.
// Regenerate deliberately with WIRE_GOLDEN_UPDATE=1 go test -run
// TestGoldenFrameFile ./internal/wire/ (and bump Version).
const goldenPath = "testdata/golden.nvwire"

// goldenStream is the deterministic content behind the golden file.
func goldenStream() ([]byte, error) {
	recs, evs := testStream(200, 5)
	frames, _, err := EncodeStream(nil, recs, evs, 64)
	return frames, err
}

// TestGoldenFrameFile decodes the committed golden frame file and
// requires (a) today's encoder to reproduce it byte-for-byte and (b)
// the decode to yield the expected item counts — the `make
// ingest-smoke` anchor proving the on-disk format is stable.
func TestGoldenFrameFile(t *testing.T) {
	want, err := goldenStream()
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("WIRE_GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, want, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(want))
	}
	got, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with WIRE_GOLDEN_UPDATE=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden file (%d bytes) no longer matches the encoder's output (%d bytes): the wire format changed — if intentional, bump Version and regenerate",
			len(got), len(want))
	}
	var dec Decoder
	var b Batch
	frames, err := dec.DecodeAll(got, &b)
	if err != nil {
		t.Fatal(err)
	}
	recs, evs := testStream(200, 5)
	if frames == 0 || len(b.Records) != len(recs) || len(b.Events) != len(evs) {
		t.Fatalf("golden decode: %d frames, %d records, %d events; want >0, %d, %d",
			frames, len(b.Records), len(b.Events), len(recs), len(evs))
	}
}
