package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"time"

	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/timeseries"
)

// Decoder decodes NVWIRE1 frames. The zero value is ready to use. A
// decoder is NOT safe for concurrent use — give each connection its
// own (they are cheap; the intern table is the only state).
//
// Steady-state decoding is allocation-free: records are appended into
// the caller's Batch (whose capacity is reused across frames), floats
// are reinterpreted bit patterns, and vehicle-ID strings are interned
// so a returning vehicle's ID is a map lookup, not an allocation.
// Events allocate their note/DTC strings — they are orders of magnitude
// rarer than records, so they never carry the throughput bound.
type Decoder struct {
	// MaxFrameBytes bounds one frame's payload (DefaultMaxFrameBytes
	// when zero). Oversized length prefixes fail with ErrFrameTooLarge
	// before any allocation happens.
	MaxFrameBytes int

	// HandoffSink receives each KindHandoff frame's CRC-verified
	// payload (one serialized fleet.VehicleState). The slice aliases
	// the decode buffer and is valid only for the duration of the call
	// — the sink must adopt (or copy) before returning. A nil sink
	// refuses handoff frames with ErrBadKind, so a plain telemetry
	// endpoint cannot be tricked into swallowing state.
	HandoffSink func(state []byte) error

	intern map[string]string
}

// maxFrame resolves the frame size limit.
func (d *Decoder) maxFrame() int {
	if d.MaxFrameBytes > 0 {
		return d.MaxFrameBytes
	}
	return DefaultMaxFrameBytes
}

// internID returns the canonical string for a vehicle-ID byte slice,
// allocating only the first time an ID is seen. The m[string(b)] lookup
// compiles to a no-allocation map access; the table is bounded by
// maxIntern so hostile streams full of unique IDs cannot balloon it.
func (d *Decoder) internID(b []byte) string {
	if s, ok := d.intern[string(b)]; ok {
		return s
	}
	s := string(b)
	if d.intern == nil {
		d.intern = make(map[string]string)
	}
	if len(d.intern) < maxIntern {
		d.intern[s] = s
	}
	return s
}

// DecodeInto decodes the first complete frame in buf, appending its
// items into b (call b.Reset first to decode a frame in isolation), and
// returns the number of bytes consumed. ErrTruncated means buf holds
// less than one complete frame — stream callers read more and retry.
// The decode is bit-exact: Float64bits of every value survive the
// round trip.
func (d *Decoder) DecodeInto(buf []byte, b *Batch) (int, error) {
	if len(buf) < HeaderSize {
		return 0, ErrTruncated
	}
	if string(buf[:4]) != Magic {
		return 0, ErrBadMagic
	}
	if buf[4] != Version {
		return 0, ErrBadVersion
	}
	kind := buf[5]
	if kind != KindBatch && !(kind == KindHandoff && d.HandoffSink != nil) {
		return 0, ErrBadKind
	}
	n := int(binary.LittleEndian.Uint32(buf[6:]))
	if n > d.maxFrame() {
		return 0, ErrFrameTooLarge
	}
	if len(buf) < HeaderSize+n {
		return 0, ErrTruncated
	}
	payload := buf[HeaderSize : HeaderSize+n]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(buf[10:]) {
		return 0, ErrCorrupt
	}
	if kind == KindHandoff {
		if err := d.HandoffSink(payload); err != nil {
			return 0, err
		}
		return HeaderSize + n, nil
	}
	if err := d.decodePayload(payload, b); err != nil {
		return 0, err
	}
	return HeaderSize + n, nil
}

// decodePayload parses one CRC-verified telemetry-batch payload.
func (d *Decoder) decodePayload(payload []byte, b *Batch) error {
	r := payloadReader{data: payload}
	count := int(r.uint32())
	// Each item needs at least minItemSize bytes; a count prefix
	// claiming more is corrupt, not a reason to allocate.
	if count < 0 || count*minItemSize > r.remaining() {
		return ErrBadFrame
	}
	for i := 0; i < count; i++ {
		tag := r.uint8()
		id := r.bytes16()
		nanos := int64(r.uint64())
		if r.failed || len(id) > maxIDLen {
			return ErrBadFrame
		}
		ts := time.Unix(0, nanos).UTC()
		switch tag {
		case tagRecord:
			nv := int(r.uint8())
			if nv != int(obd.NumPIDs) {
				return ErrBadFrame
			}
			b.Records = append(b.Records, timeseries.Record{})
			rec := &b.Records[len(b.Records)-1]
			rec.VehicleID = d.internID(id)
			rec.Time = ts
			for p := 0; p < nv; p++ {
				rec.Values[p] = math.Float64frombits(r.uint64())
			}
		case tagEvent:
			typ := obd.EventType(r.uint8())
			if typ < obd.EventService || typ > obd.EventDTC {
				return ErrBadFrame
			}
			flags := r.uint8()
			ev := obd.Event{VehicleID: d.internID(id), Time: ts, Type: typ}
			if flags&flagDTC != 0 {
				code := r.bytes16()
				kind := obd.DTCKind(r.uint8())
				if r.failed || len(code) > maxIDLen || kind < obd.DTCPending || kind > obd.DTCStored {
					return ErrBadFrame
				}
				ev.DTC = &obd.DTC{Code: string(code), Kind: kind}
			}
			note := r.bytes16()
			if r.failed || len(note) > maxIDLen {
				return ErrBadFrame
			}
			if len(note) > 0 {
				ev.Note = string(note)
			}
			b.Events = append(b.Events, ev)
		case tagTrace:
			// The common-prefix uint64 is the trace ID here, not a
			// timestamp; the item carries no vehicle ID. The reserved
			// flags byte is read and ignored so future producers can
			// use it without breaking this decoder.
			if len(id) != 0 {
				return ErrBadFrame
			}
			r.uint8()
			b.TraceID = uint64(nanos)
		default:
			return ErrBadFrame
		}
		if r.failed {
			return ErrBadFrame
		}
	}
	if r.remaining() != 0 {
		return ErrBadFrame
	}
	return nil
}

// DecodeAll decodes every frame in buf into b, returning the frame
// count. Trailing partial frames are an error: an HTTP batch body is a
// whole number of frames or it is corrupt.
func (d *Decoder) DecodeAll(buf []byte, b *Batch) (int, error) {
	frames := 0
	for len(buf) > 0 {
		n, err := d.DecodeInto(buf, b)
		if err != nil {
			return frames, err
		}
		buf = buf[n:]
		frames++
	}
	return frames, nil
}

// DecodeStream reads consecutive frames from r, decoding each into a
// reused internal batch delivered to sink — the long-lived connection
// path of navarchos-serve's streaming endpoint. It returns the frame
// count and the first read, decode or sink error; a stream ending at a
// frame boundary returns nil. The frame buffer grows to the largest
// frame seen and is then reused, so steady state reads are
// allocation-free too.
func (d *Decoder) DecodeStream(r io.Reader, sink FrameSink) (int, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 64<<10)
	}
	var (
		buf    []byte
		batch  Batch
		frames int
	)
	for {
		var header [HeaderSize]byte
		if _, err := io.ReadFull(br, header[:]); err != nil {
			if err == io.EOF {
				return frames, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return frames, ErrTruncated
			}
			return frames, err
		}
		n := int(binary.LittleEndian.Uint32(header[6:]))
		if n > d.maxFrame() {
			return frames, ErrFrameTooLarge
		}
		if need := HeaderSize + n; cap(buf) < need {
			buf = make([]byte, need)
		}
		frame := buf[:HeaderSize+n]
		copy(frame, header[:])
		if _, err := io.ReadFull(br, frame[HeaderSize:]); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return frames, ErrTruncated
			}
			return frames, err
		}
		batch.Reset()
		if _, err := d.DecodeInto(frame, &batch); err != nil {
			return frames, err
		}
		frames++
		if err := sink.ConsumeBatch(&batch); err != nil {
			return frames, err
		}
	}
}

// payloadReader is a bounds-checked cursor over a frame payload: the
// first out-of-range read sets failed and every later read returns
// zero, so decode call sites stay linear and a hostile length can never
// cause an over-read. Unlike checkpoint.RBuf it hands out sub-slices of
// the payload without copying — the decoder's zero-copy seam.
type payloadReader struct {
	data   []byte
	pos    int
	failed bool
}

func (r *payloadReader) remaining() int { return len(r.data) - r.pos }

func (r *payloadReader) take(n int) []byte {
	if r.failed || n < 0 || r.pos+n > len(r.data) {
		r.failed = true
		return nil
	}
	p := r.data[r.pos : r.pos+n]
	r.pos += n
	return p
}

func (r *payloadReader) uint8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *payloadReader) uint32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *payloadReader) uint64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// bytes16 reads a uint16-length-prefixed byte slice aliasing the
// payload (valid until the caller's buffer is reused).
func (r *payloadReader) bytes16() []byte {
	p := r.take(2)
	if p == nil {
		return nil
	}
	return r.take(int(binary.LittleEndian.Uint16(p)))
}
