package dsp

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestFFTKnownValues(t *testing.T) {
	// FFT of [1, 0, 0, 0] is [1, 1, 1, 1].
	x := []complex128{1, 0, 0, 0}
	got, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
	// FFT of a constant is a DC spike.
	x = []complex128{2, 2, 2, 2}
	got, _ = FFT(x)
	if cmplx.Abs(got[0]-8) > 1e-12 {
		t.Errorf("DC bin = %v, want 8", got[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(got[i]) > 1e-12 {
			t.Errorf("bin %d = %v, want 0", i, got[i])
		}
	}
}

func TestFFTSinusoidPeak(t *testing.T) {
	// A pure sinusoid at bin k concentrates energy at bins k and n-k.
	n := 64
	k := 5
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(k) * float64(i) / float64(n))
	}
	spec, err := FFTReal(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		mag := cmplx.Abs(spec[i])
		if i == k || i == n-k {
			if mag < float64(n)/2-1e-6 {
				t.Errorf("bin %d magnitude = %v, want ~%v", i, mag, n/2)
			}
		} else if mag > 1e-6 {
			t.Errorf("bin %d magnitude = %v, want ~0", i, mag)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	// Parseval: sum |x|^2 == (1/n) sum |X|^2.
	x := []float64{3, 1, -2, 0.5, 7, -1, 0, 2}
	var tdom float64
	for _, v := range x {
		tdom += v * v
	}
	spec, err := FFTReal(x)
	if err != nil {
		t.Fatal(err)
	}
	var fdom float64
	for _, v := range spec {
		fdom += real(v)*real(v) + imag(v)*imag(v)
	}
	fdom /= float64(len(spec))
	if math.Abs(tdom-fdom) > 1e-9 {
		t.Errorf("Parseval violated: %v vs %v", tdom, fdom)
	}
}

func TestFFTErrorsAndEdges(t *testing.T) {
	if _, err := FFT(make([]complex128, 3)); err != ErrNotPowerOfTwo {
		t.Error("length 3 should error")
	}
	if out, err := FFT(nil); err != nil || len(out) != 0 {
		t.Error("empty FFT should be a no-op")
	}
	if out, err := FFT([]complex128{5}); err != nil || out[0] != 5 {
		t.Error("length-1 FFT should be identity")
	}
	// FFTReal pads 5 -> 8.
	spec, err := FFTReal(make([]float64, 5))
	if err != nil || len(spec) != 8 {
		t.Errorf("FFTReal padding: len=%d err=%v", len(spec), err)
	}
}

func TestBandEnergies(t *testing.T) {
	n := 64
	// Low-frequency sinusoid: energy in the first band.
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 2 * float64(i) / float64(n))
	}
	be, err := BandEnergies(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	if be[0] < 0.95 {
		t.Errorf("low-freq energy in band 0 = %v, want ~1", be[0])
	}
	// High-frequency sinusoid: energy in the last band.
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 28 * float64(i) / float64(n))
	}
	be, _ = BandEnergies(x, 4)
	if be[3] < 0.95 {
		t.Errorf("high-freq energy in band 3 = %v, want ~1 (%v)", be[3], be)
	}
	// Energies sum to 1 for non-degenerate signals.
	var sum float64
	for _, v := range be {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("band energies sum = %v", sum)
	}
	// Constant signal: zero AC power -> all zeros.
	for i := range x {
		x[i] = 3
	}
	be, _ = BandEnergies(x, 4)
	for _, v := range be {
		if v != 0 {
			t.Errorf("constant signal band energies = %v, want zeros", be)
		}
	}
	if _, err := BandEnergies(x, 0); err == nil {
		t.Error("zero bands should error")
	}
}
