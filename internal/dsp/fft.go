// Package dsp provides the minimal signal-processing kernel behind the
// frequency-domain data transformation the paper lists among its "key
// alternatives" (Section 3.1): an iterative radix-2 FFT and band-energy
// summarisation.
package dsp

import (
	"errors"
	"math"
	"math/bits"
	"math/cmplx"
)

// ErrNotPowerOfTwo is returned when an FFT input length is not a power
// of two.
var ErrNotPowerOfTwo = errors.New("dsp: FFT length must be a power of two")

// FFT computes the in-place iterative radix-2 Cooley–Tukey transform of
// x and returns it. len(x) must be a power of two (and may be 0 or 1, in
// which case x is returned unchanged).
func FFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if n <= 1 {
		return x, nil
	}
	if n&(n-1) != 0 {
		return nil, ErrNotPowerOfTwo
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size *= 2 {
		half := size / 2
		step := cmplx.Exp(complex(0, -2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= step
			}
		}
	}
	return x, nil
}

// FFTReal transforms a real signal, zero-padding it up to the next power
// of two, and returns the complex spectrum.
func FFTReal(x []float64) ([]complex128, error) {
	n := nextPow2(len(x))
	buf := make([]complex128, n)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	return FFT(buf)
}

// nextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// BandEnergies splits the positive-frequency half of the spectrum of a
// real signal into nb contiguous bands and returns each band's mean
// power, normalised by total power so the features are amplitude
// invariant (the DC bin is excluded — signal level is what the mean
// transform already captures). A zero-power signal yields all zeros.
func BandEnergies(x []float64, nb int) ([]float64, error) {
	if nb < 1 {
		return nil, errors.New("dsp: BandEnergies needs at least one band")
	}
	spec, err := FFTReal(x)
	if err != nil {
		return nil, err
	}
	half := len(spec) / 2
	out := make([]float64, nb)
	if half <= 1 {
		return out, nil
	}
	var total float64
	power := make([]float64, half-1)
	for i := 1; i < half; i++ {
		p := real(spec[i])*real(spec[i]) + imag(spec[i])*imag(spec[i])
		power[i-1] = p
		total += p
	}
	if total == 0 {
		return out, nil
	}
	for i, p := range power {
		band := i * nb / len(power)
		out[band] += p
	}
	for i := range out {
		out[i] /= total
	}
	return out, nil
}
