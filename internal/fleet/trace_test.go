package fleet

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"testing"
	"time"

	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/obs"
	"github.com/navarchos/pdm/internal/timeseries"
	"github.com/navarchos/pdm/internal/transform"
)

// tracedTestID is the producer trace ID every traced test batch
// carries, so journal entries can be checked for faithful propagation.
const tracedTestID = 0x7ace

// ingestTraced feeds a chronological stream through IngestBatchCtx in
// fixed-size chunks with one fresh BatchCtx per chunk — the shape the
// serve wire path produces, one context per decoded frame. Events ride
// with the chunk covering their timestamp (Merged's events-first
// order, as in splitEvents). Returns the number of batches submitted.
func ingestTraced(t *testing.T, e *Engine, records []timeseries.Record, events []obd.Event, chunk int) int {
	t.Helper()
	batches := 0
	remaining := events
	for start := 0; start < len(records); start += chunk {
		end := start + chunk
		var evChunk []obd.Event
		if end >= len(records) {
			end = len(records)
			evChunk, remaining = remaining, nil
		} else {
			evChunk, remaining = splitEvents(remaining, records[end].Time)
		}
		batches++
		bc := &obs.BatchCtx{BatchID: uint64(batches), TraceID: tracedTestID, Arrival: time.Now()}
		if err := e.IngestBatchCtx(records[start:end], evChunk, bc); err != nil {
			t.Fatal(err)
		}
	}
	return batches
}

// checkProvenance requires every journal entry in the tail to carry
// the batch context the traced ingest attached: a batch ID, the test's
// trace ID, a wall-clock arrival, and a positive end-to-end latency.
func checkProvenance(t *testing.T, j *obs.Journal) {
	t.Helper()
	for _, e := range j.Last(16) {
		if e.BatchID == 0 || e.TraceID != tracedTestID {
			t.Fatalf("journal entry missing batch context: batch=%d trace=%#x", e.BatchID, e.TraceID)
		}
		if e.ArrivalTime.IsZero() || e.E2ELatencyS <= 0 {
			t.Fatalf("journal entry missing latency provenance: arrival=%v e2e=%v", e.ArrivalTime, e.E2ELatencyS)
		}
		if e.QueueWaitS < 0 {
			t.Fatalf("journal entry has negative queue wait: %v", e.QueueWaitS)
		}
	}
}

// promCounter extracts one untyped counter value from an exposition.
func promCounter(t *testing.T, text, name string) uint64 {
	t.Helper()
	m := regexp.MustCompile(name + ` ([0-9]+)\b`).FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("exposition missing %s", name)
	}
	v, err := strconv.ParseUint(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestEngineTracedBitIdentity is the provenance layer's identity gate:
// for every paper technique × transform grid cell, an engine fed the
// stream through the traced batch path (IngestBatchCtx, one BatchCtx
// per chunk, full observation) must emit exactly the alarms an
// untraced Replay emits — provenance may annotate alarms, never change
// them — while every journaled alarm carries its batch context and the
// pdm_e2e_* counters account for every traced batch and alarm.
func TestEngineTracedBitIdentity(t *testing.T) {
	records, events := syntheticStream(2, 150)

	for _, tech := range paperTechniques() {
		for _, kind := range transform.AllKinds() {
			tech, kind := tech, kind
			t.Run(fmt.Sprintf("%s_%s", tech.name, kind), func(t *testing.T) {
				run := func(o *obs.Observer, traced bool) ([]detector.Alarm, int) {
					cfg := Config{NewConfig: gridConfig(tech, kind, nil), Shards: 3, BatchSize: 16, Observer: o}
					if o != nil {
						cfg.NewConfig = observedGrid(cfg.NewConfig, o)
					}
					e, err := NewEngine(cfg)
					if err != nil {
						t.Fatal(err)
					}
					wait := drainAlarms(e)
					batches := 0
					if traced {
						batches = ingestTraced(t, e, records, events, 48)
					} else if err := e.Replay(records, events); err != nil {
						t.Fatal(err)
					}
					if err := e.Close(); err != nil {
						t.Fatal(err)
					}
					a := wait()
					sortAlarms(a)
					return a, batches
				}

				plain, _ := run(nil, false)
				reg := obs.NewRegistry()
				j := obs.NewJournal(128)
				traced, batches := run(obs.NewObserver(reg, obs.ObserverConfig{Journal: j}), true)

				if !sameAlarms(plain, traced) {
					t.Fatalf("alarms diverged under tracing: plain %d, traced %d",
						len(plain), len(traced))
				}
				checkProvenance(t, j)

				var buf bytes.Buffer
				if err := reg.WritePrometheus(&buf); err != nil {
					t.Fatal(err)
				}
				text := buf.String()
				if got := promCounter(t, text, "pdm_e2e_traced_batches_total"); got != uint64(batches) {
					t.Fatalf("traced batches counter = %d, want %d", got, batches)
				}
				if got := promCounter(t, text, "pdm_e2e_traced_alarms_total"); got != uint64(len(traced)) {
					t.Fatalf("traced alarms counter = %d, want %d", got, len(traced))
				}
				if got := promCounter(t, text, "pdm_e2e_alarm_latency_seconds_count"); got != uint64(len(traced)) {
					t.Fatalf("alarm latency observations = %d, want %d", got, len(traced))
				}
			})
		}
	}
}

// TestVehicleHandoffDrainGateTraced is the drain gate with provenance
// on: source and target engines both ingest through the traced batch
// path while every vehicle is drained source→target mid-stream through
// the state codec. The combined alarms must stay bit-identical to an
// uninterrupted untraced Replay, and alarms journaled on the adopting
// engine must still carry their ingest batch context — migration does
// not sever provenance.
func TestVehicleHandoffDrainGateTraced(t *testing.T) {
	const (
		vehicles   = 2
		perVehicle = 200
		split      = 263
	)
	records, events := syntheticStream(vehicles, perVehicle)
	evFirst, evSecond := splitEvents(events, records[split].Time)

	for _, tech := range paperTechniques() {
		for _, kind := range transform.AllKinds() {
			tech, kind := tech, kind
			t.Run(fmt.Sprintf("%s_%s", tech.name, kind), func(t *testing.T) {
				eRef, err := NewEngine(Config{NewConfig: gridConfig(tech, kind, nil), Shards: 3, BatchSize: 16})
				if err != nil {
					t.Fatal(err)
				}
				waitRef := drainAlarms(eRef)
				if err := eRef.Replay(records, events); err != nil {
					t.Fatal(err)
				}
				if err := eRef.Close(); err != nil {
					t.Fatal(err)
				}
				refAlarms := waitRef()
				sortAlarms(refAlarms)

				newObserved := func(shards int) (*Engine, *obs.Journal) {
					j := obs.NewJournal(128)
					o := obs.NewObserver(obs.NewRegistry(), obs.ObserverConfig{Journal: j})
					e, err := NewEngine(Config{
						NewConfig: observedGrid(gridConfig(tech, kind, nil), o),
						Shards:    shards, BatchSize: 16, Observer: o,
					})
					if err != nil {
						t.Fatal(err)
					}
					return e, j
				}

				src, _ := newObserved(3)
				waitSrc := drainAlarms(src)
				ingestTraced(t, src, records[:split], evFirst, 48)

				dst, dstJournal := newObserved(1)
				waitDst := drainAlarms(dst)

				for _, id := range src.VehicleIDs() {
					vs, err := src.ExtractVehicle(id)
					if err != nil {
						t.Fatalf("ExtractVehicle(%s): %v", id, err)
					}
					decoded, err := DecodeVehicleState(vs.Encode())
					if err != nil {
						t.Fatalf("codec round trip %s: %v", id, err)
					}
					if err := dst.AdoptVehicle(decoded); err != nil {
						t.Fatalf("AdoptVehicle(%s): %v", id, err)
					}
				}
				if err := src.Close(); err != nil {
					t.Fatal(err)
				}
				srcAlarms := waitSrc()

				ingestTraced(t, dst, records[split:], evSecond, 48)
				if err := dst.Close(); err != nil {
					t.Fatal(err)
				}
				dstAlarms := waitDst()

				got := append(append([]detector.Alarm{}, srcAlarms...), dstAlarms...)
				sortAlarms(got)
				if !sameAlarms(got, refAlarms) {
					t.Errorf("traced drained alarms differ: %d+%d vs %d uninterrupted untraced",
						len(srcAlarms), len(dstAlarms), len(refAlarms))
				}
				if len(dstAlarms) > 0 {
					checkProvenance(t, dstJournal)
				}
			})
		}
	}
}
