package fleet

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/navarchos/pdm/internal/core"
	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/detector/closestpair"
	"github.com/navarchos/pdm/internal/fleetsim"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/thresholds"
	"github.com/navarchos/pdm/internal/timeseries"
	"github.com/navarchos/pdm/internal/transform"
)

// testConfig is the paper's complete solution at test scale: correlation
// transform, closest-pair detection, self-tuning thresholds.
func testConfig() core.Config {
	tr, err := transform.New(transform.Correlation, 12)
	if err != nil {
		panic(err)
	}
	wf := timeseries.NewWarmupFilter(5, 20*time.Minute)
	return core.Config{
		Transformer:   tr,
		Detector:      closestpair.New(tr.FeatureNames()),
		Thresholder:   thresholds.NewSelfTuning(4),
		ProfileLength: 45,
		Filter:        wf.Keep,
		FilterState:   wf,
		DensityM:      3,
		DensityK:      10,
	}
}

var (
	testFleetOnce sync.Once
	testFleet     *fleetsim.Fleet
)

func smallFleet() *fleetsim.Fleet {
	testFleetOnce.Do(func() {
		cfg := fleetsim.SmallConfig()
		cfg.NumVehicles = 6
		cfg.Days = 120
		cfg.RecordedVehicles = 5
		cfg.RecordedFailures = 2
		cfg.HiddenFailures = 1
		testFleet = fleetsim.Generate(cfg)
	})
	return testFleet
}

// alarmKey orders alarms deterministically for comparison.
func sortAlarms(a []detector.Alarm) {
	sort.Slice(a, func(i, j int) bool {
		if a[i].VehicleID != a[j].VehicleID {
			return a[i].VehicleID < a[j].VehicleID
		}
		if !a[i].Time.Equal(a[j].Time) {
			return a[i].Time.Before(a[j].Time)
		}
		return a[i].Channel < a[j].Channel
	})
}

// serialAlarms replays every vehicle through core.RunVehicle.
func serialAlarms(t *testing.T, f *fleetsim.Fleet) []detector.Alarm {
	t.Helper()
	var out []detector.Alarm
	for _, v := range f.AllVehicleIDs() {
		a, err := core.RunVehicle(v, f.Records, f.Events, testConfig)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, a...)
	}
	sortAlarms(out)
	return out
}

// engineAlarms replays the whole fleet through an engine with the given
// shard count.
func engineAlarms(t *testing.T, f *fleetsim.Fleet, shards, batch int) ([]detector.Alarm, EngineStats) {
	t.Helper()
	e, err := NewEngine(Config{
		NewConfig: func(string) (core.Config, error) { return testConfig(), nil },
		Shards:    shards,
		BatchSize: batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []detector.Alarm
	done := make(chan struct{})
	go func() {
		defer close(done)
		for a := range e.Alarms() {
			out = append(out, a)
		}
	}()
	if err := e.Replay(f.Records, f.Events); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	sortAlarms(out)
	return out, e.Stats()
}

// TestEngineMatchesSerialReplay is the determinism guarantee: for any
// shard count the engine yields exactly the alarms of a serial
// core.RunVehicle replay of every vehicle.
func TestEngineMatchesSerialReplay(t *testing.T) {
	f := smallFleet()
	want := serialAlarms(t, f)
	if len(want) == 0 {
		t.Fatal("test fleet produced no alarms; determinism check is vacuous")
	}
	for _, shards := range []int{1, 2, 3, 8} {
		for _, batch := range []int{1, 7, 64} {
			got, stats := engineAlarms(t, f, shards, batch)
			if len(got) != len(want) {
				t.Fatalf("shards=%d batch=%d: %d alarms, want %d", shards, batch, len(got), len(want))
			}
			for i := range got {
				g, w := got[i], want[i]
				if g.VehicleID != w.VehicleID || !g.Time.Equal(w.Time) ||
					g.Channel != w.Channel || g.Score != w.Score || g.Threshold != w.Threshold {
					t.Fatalf("shards=%d batch=%d: alarm %d differs:\n got %+v\nwant %+v", shards, batch, i, g, w)
				}
			}
			if stats.RecordsIn != uint64(len(f.Records)) {
				t.Errorf("shards=%d: RecordsIn = %d, want %d", shards, stats.RecordsIn, len(f.Records))
			}
			if stats.EventsIn != uint64(len(f.Events)) {
				t.Errorf("shards=%d: EventsIn = %d, want %d", shards, stats.EventsIn, len(f.Events))
			}
			if stats.Alarms != uint64(len(want)) {
				t.Errorf("shards=%d: stats.Alarms = %d, want %d", shards, stats.Alarms, len(want))
			}
			if stats.Vehicles != len(f.AllVehicleIDs()) {
				t.Errorf("shards=%d: Vehicles = %d, want %d", shards, stats.Vehicles, len(f.AllVehicleIDs()))
			}
			if stats.SamplesScored == 0 {
				t.Errorf("shards=%d: SamplesScored = 0", shards)
			}
			if stats.Drops != 0 {
				t.Errorf("shards=%d: Drops = %d, want 0", shards, stats.Drops)
			}
		}
	}
}

// TestEngineSkipVehicle checks ErrSkipVehicle excludes vehicles without
// failing the run.
func TestEngineSkipVehicle(t *testing.T) {
	f := smallFleet()
	keep := f.AllVehicleIDs()[0]
	e, err := NewEngine(Config{
		NewConfig: func(v string) (core.Config, error) {
			if v != keep {
				return core.Config{}, ErrSkipVehicle
			}
			return testConfig(), nil
		},
		Shards:     3,
		DropAlarms: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Replay(f.Records, f.Events); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Vehicles != 1 {
		t.Errorf("Vehicles = %d, want 1 (only %s kept)", st.Vehicles, keep)
	}
	if st.RecordsIn != uint64(len(f.Records)) {
		t.Errorf("RecordsIn = %d, want %d (skipped records still counted)", st.RecordsIn, len(f.Records))
	}
}

// TestEngineConfigError checks a NewConfig failure is sticky and
// reported, not a crash.
func TestEngineConfigError(t *testing.T) {
	f := smallFleet()
	boom := errors.New("boom")
	e, err := NewEngine(Config{
		NewConfig:  func(string) (core.Config, error) { return core.Config{}, boom },
		Shards:     2,
		DropAlarms: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Replay(f.Records[:500], nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want wrapped boom", err)
	}
	if e.Stats().Vehicles != 0 {
		t.Error("no pipeline should have been built")
	}
}

// TestEngineIngestAfterClose checks post-Close ingestion errors cleanly.
func TestEngineIngestAfterClose(t *testing.T) {
	e, err := NewEngine(Config{
		NewConfig: func(string) (core.Config, error) { return testConfig(), nil },
		Shards:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.IngestRecord(timeseries.Record{VehicleID: "v"}); !errors.Is(err, ErrClosed) {
		t.Errorf("IngestRecord after Close = %v, want ErrClosed", err)
	}
	if err := e.IngestEvent(obd.Event{VehicleID: "v"}); !errors.Is(err, ErrClosed) {
		t.Errorf("IngestEvent after Close = %v, want ErrClosed", err)
	}
}

// TestEngineConcurrentIngestion is the race-detector stress test: many
// producers feed disjoint vehicles concurrently while Stats is polled,
// and every record must be accounted for.
func TestEngineConcurrentIngestion(t *testing.T) {
	const (
		producers           = 8
		vehiclesPerProducer = 4
		recordsPerVehicle   = 400
	)
	// A raw-transform config with a short profile so scoring starts
	// well within each vehicle's stream.
	stressCfg := func(string) (core.Config, error) {
		tr, err := transform.New(transform.Raw, 0)
		if err != nil {
			return core.Config{}, err
		}
		return core.Config{
			Transformer:   tr,
			Detector:      closestpair.New(tr.FeatureNames()),
			Thresholder:   thresholds.NewSelfTuning(4),
			ProfileLength: 40,
			Filter:        func(*timeseries.Record) bool { return true },
		}, nil
	}
	e, err := NewEngine(Config{
		NewConfig:  stressCfg,
		Shards:     4,
		BatchSize:  16,
		QueueDepth: 8,
		DropAlarms: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2023, 5, 1, 8, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < recordsPerVehicle; i++ {
				for v := 0; v < vehiclesPerProducer; v++ {
					id := "veh-" + string(rune('a'+p)) + "-" + string(rune('a'+v))
					var vals [obd.NumPIDs]float64
					vals[obd.EngineRPM] = 1500 + float64(i%40)*25
					vals[obd.Speed] = 40 + float64(i%40)
					vals[obd.CoolantTemp] = 88
					vals[obd.IntakeTemp] = 25
					vals[obd.MAPIntake] = 40 + float64(i%17)
					vals[obd.MAFAirFlowRate] = 10 + float64(i%13)
					if err := e.IngestRecord(timeseries.Record{
						VehicleID: id,
						Time:      base.Add(time.Duration(i) * time.Minute),
						Values:    vals,
					}); err != nil {
						t.Error(err)
						return
					}
					if i%97 == 0 {
						if err := e.IngestEvent(obd.Event{
							VehicleID: id,
							Time:      base.Add(time.Duration(i) * time.Minute),
							Type:      obd.EventService,
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}
		}(p)
	}
	// Poll Stats concurrently so the race detector exercises the
	// snapshot path against live shards.
	stopPoll := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopPoll:
				return
			case <-tick.C:
				_ = e.Stats()
			}
		}
	}()
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	close(stopPoll)
	pollWG.Wait()
	st := e.Stats()
	wantRecords := uint64(producers * vehiclesPerProducer * recordsPerVehicle)
	if st.RecordsIn != wantRecords {
		t.Errorf("RecordsIn = %d, want %d", st.RecordsIn, wantRecords)
	}
	if st.Vehicles != producers*vehiclesPerProducer {
		t.Errorf("Vehicles = %d, want %d", st.Vehicles, producers*vehiclesPerProducer)
	}
	if st.SamplesScored == 0 {
		t.Error("no samples scored under stress")
	}
	var fromPipelines uint64
	e.Pipelines(func(p *core.Pipeline) { fromPipelines += p.ScoredSamples() })
	if fromPipelines != st.SamplesScored {
		t.Errorf("pipeline scored sum %d != stats %d", fromPipelines, st.SamplesScored)
	}
}
