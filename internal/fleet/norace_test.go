//go:build !race

package fleet

// raceEnabled reports that the race detector is off; see race_test.go.
const raceEnabled = false
