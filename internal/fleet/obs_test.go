package fleet

import (
	"bytes"
	"fmt"
	"io"
	"regexp"
	"sync"
	"testing"

	"github.com/navarchos/pdm/internal/core"
	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/obs"
	"github.com/navarchos/pdm/internal/timeseries"
	"github.com/navarchos/pdm/internal/transform"
)

// observedGrid decorates a per-vehicle config factory with an observer,
// so every pipeline the engine builds is instrumented.
func observedGrid(base func(string) (core.Config, error), o *obs.Observer) func(string) (core.Config, error) {
	return func(v string) (core.Config, error) {
		cfg, err := base(v)
		cfg.Observer = o
		return cfg, err
	}
}

// TestEngineObservedBitIdentity extends the resume gate's bit-identity
// guarantee to instrumentation: for every paper technique × transform
// grid cell, a fully observed engine (fleet metrics, stage latency
// sampling, score distributions, alarm journal) must emit exactly the
// alarms an unobserved engine emits.
func TestEngineObservedBitIdentity(t *testing.T) {
	records, events := syntheticStream(2, 150)

	for _, tech := range paperTechniques() {
		for _, kind := range transform.AllKinds() {
			tech, kind := tech, kind
			t.Run(fmt.Sprintf("%s_%s", tech.name, kind), func(t *testing.T) {
				run := func(o *obs.Observer) []detector.Alarm {
					cfg := Config{NewConfig: gridConfig(tech, kind, nil), Shards: 3, BatchSize: 16, Observer: o}
					if o != nil {
						cfg.NewConfig = observedGrid(cfg.NewConfig, o)
					}
					e, err := NewEngine(cfg)
					if err != nil {
						t.Fatal(err)
					}
					wait := drainAlarms(e)
					if err := e.Replay(records, events); err != nil {
						t.Fatal(err)
					}
					if err := e.Close(); err != nil {
						t.Fatal(err)
					}
					a := wait()
					sortAlarms(a)
					return a
				}

				plain := run(nil)
				reg := obs.NewRegistry()
				j := obs.NewJournal(128)
				observed := run(obs.NewObserver(reg, obs.ObserverConfig{Journal: j}))

				if !sameAlarms(plain, observed) {
					t.Fatalf("alarms diverged under observation: plain %d, observed %d",
						len(plain), len(observed))
				}
				if j.Total() != uint64(len(observed)) {
					t.Fatalf("journal total %d, want %d", j.Total(), len(observed))
				}
				for _, e := range j.Last(8) {
					if e.Technique != tech.name || e.Transform != kind.String() {
						t.Fatalf("journal entry mislabelled: %+v (want %s/%s)", e, tech.name, kind)
					}
				}
			})
		}
	}
}

// countHandler is a minimal Handler whose ScoredSamples tracks records
// one-to-one, making RecordsIn == SamplesScored the consistency oracle.
type countHandler struct{ n uint64 }

func (h *countHandler) HandleRecord(timeseries.Record) ([]detector.Alarm, error) {
	h.n++
	return nil, nil
}
func (h *countHandler) HandleEvent(obd.Event) {}
func (h *countHandler) ScoredSamples() uint64 { return h.n }

// TestEngineStatsConsistent hammers a live engine with concurrent
// producers while repeatedly taking consistent snapshots. Because the
// shard loop counts a record before handling it, a mid-batch Stats may
// observe RecordsIn ahead of SamplesScored; StatsConsistent quiesces at
// a batch boundary, so the two must always agree exactly.
func TestEngineStatsConsistent(t *testing.T) {
	e, err := NewEngine(Config{
		NewHandler: func(string) (Handler, error) { return &countHandler{}, nil },
		Shards:     4,
		BatchSize:  8,
	})
	if err != nil {
		t.Fatal(err)
	}

	const producers, perProducer = 4, 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				r := timeseries.Record{VehicleID: fmt.Sprintf("veh-%02d", (p*7+i)%16)}
				if err := e.IngestRecord(r); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	snaps := make(chan struct{})
	go func() {
		defer close(snaps)
		for i := 0; i < 25; i++ {
			st := e.StatsConsistent()
			if st.RecordsIn != st.SamplesScored {
				t.Errorf("inconsistent cut: RecordsIn %d != SamplesScored %d", st.RecordsIn, st.SamplesScored)
				return
			}
		}
	}()
	wg.Wait()
	<-snaps

	// All producers done: a final live consistent snapshot must account
	// for every ingested record, including partially filled batches.
	st := e.StatsConsistent()
	if want := uint64(producers * perProducer); st.RecordsIn != want || st.SamplesScored != want {
		t.Fatalf("final consistent stats = %d records / %d scored, want %d",
			st.RecordsIn, st.SamplesScored, want)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Closed engine: StatsConsistent degenerates to Stats, still exact.
	if got := e.StatsConsistent().RecordsIn; got != uint64(producers*perProducer) {
		t.Fatalf("closed-engine stats = %d", got)
	}
}

// TestEngineMetricsExposition checks the fleet-level metric families a
// live observed engine publishes: vehicle gauge, per-shard counters,
// batch latency, and the checkpoint-duration histogram fed by a live
// Checkpoint.
func TestEngineMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	o := obs.NewObserver(reg, obs.ObserverConfig{})
	e, err := NewEngine(Config{
		NewConfig: observedGrid(gridConfig(paperTechniques()[0], transform.Correlation, nil), o),
		Shards:    2,
		BatchSize: 16,
		Observer:  o,
	})
	if err != nil {
		t.Fatal(err)
	}
	records, events := syntheticStream(3, 60)
	wait := drainAlarms(e)
	if err := e.Replay(records, events); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(io.Discard); err != nil { // live: exercises quiesce + ckptH
		t.Fatal(err)
	}
	st := e.StatsConsistent()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for what, re := range map[string]*regexp.Regexp{
		"vehicle gauge":   regexp.MustCompile(`pdm_fleet_vehicles 3\b`),
		"shard records":   regexp.MustCompile(`pdm_fleet_shard_records_total\{shard="0"\} [0-9]+`),
		"shard scored":    regexp.MustCompile(`pdm_fleet_shard_samples_scored_total\{shard="1"\} [0-9]+`),
		"queue gauge":     regexp.MustCompile(`pdm_fleet_shard_queue_depth\{shard="0"\} [0-9]+`),
		"batch latency":   regexp.MustCompile(`pdm_fleet_batch_seconds_count [1-9]`),
		"checkpoint hist": regexp.MustCompile(`pdm_fleet_checkpoint_seconds_count 1\b`),
	} {
		if !re.MatchString(text) {
			t.Errorf("exposition missing %s (%s)", what, re)
		}
	}
	// The per-shard record counters must sum to the engine's own total.
	sumRe := regexp.MustCompile(`pdm_fleet_shard_records_total\{shard="[0-9]+"\} ([0-9]+)`)
	var sum uint64
	for _, m := range sumRe.FindAllStringSubmatch(text, -1) {
		var v uint64
		fmt.Sscan(m[1], &v)
		sum += v
	}
	if sum != st.RecordsIn {
		t.Errorf("shard counters sum to %d, engine reports %d", sum, st.RecordsIn)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	wait()
}
