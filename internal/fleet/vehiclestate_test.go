package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"github.com/navarchos/pdm/internal/core"
	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/timeseries"
	"github.com/navarchos/pdm/internal/transform"
)

// TestVehicleStateCodec pins the per-vehicle payload format: encode →
// decode round-trips exactly, and a successfully decoded payload
// re-encodes to the same bytes (the codec is canonical — there is one
// representation per state, which is what lets a checkpoint section
// and a wire handoff frame share it).
func TestVehicleStateCodec(t *testing.T) {
	cases := []VehicleState{
		{ID: "veh-00", Snapshot: []byte{1, 2, 3, 0xff}},
		{ID: "v", Snapshot: nil},
		{ID: "", Snapshot: []byte("snap")},
	}
	for _, vs := range cases {
		enc := vs.Encode()
		got, err := DecodeVehicleState(enc)
		if err != nil {
			t.Fatalf("decode(%q): %v", vs.ID, err)
		}
		if got.ID != vs.ID || !bytes.Equal(got.Snapshot, vs.Snapshot) {
			t.Errorf("round trip %q: got %q/%x", vs.ID, got.ID, got.Snapshot)
		}
		if !bytes.Equal(got.Encode(), enc) {
			t.Errorf("vehicle %q: re-encode not canonical", vs.ID)
		}
	}
	for _, bad := range [][]byte{
		{},        // truncated length prefix
		{1, 2, 3}, // short read
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, // hostile ID length
		append(cases[0].Encode(), 0xAA),                  // trailing garbage
	} {
		if _, err := DecodeVehicleState(bad); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("decode(%x): err = %v, want ErrBadCheckpoint", bad, err)
		}
	}
}

// FuzzVehicleStateRoundTrip fuzzes the per-vehicle codec with
// untrusted bytes — the payload arrives off the network inside NVWIRE1
// handoff frames, so it must reject corruption with typed errors,
// never panic or over-read, and every accepted payload must be
// canonical (re-encode to the input bytes).
func FuzzVehicleStateRoundTrip(f *testing.F) {
	seed := VehicleState{ID: "veh-07", Snapshot: []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}
	f.Add(seed.Encode())
	f.Add([]byte{})
	f.Add([]byte{6, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		vs, err := DecodeVehicleState(data)
		if err != nil {
			if !errors.Is(err, ErrBadCheckpoint) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if !bytes.Equal(vs.Encode(), data) {
			t.Fatalf("accepted payload is not canonical: %x", data)
		}
	})
}

// TestCordonRefusesIngest covers the availability fence on the
// record/event/batch ingest paths: a cordoned vehicle's items are
// refused with the typed, retryable error while other vehicles flow,
// and Uncordon restores service.
func TestCordonRefusesIngest(t *testing.T) {
	f := smallFleet()
	e, err := NewEngine(Config{NewConfig: func(string) (core.Config, error) { return testConfig(), nil }, Shards: 2, BatchSize: 4, DropAlarms: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	recs := f.Records
	a, b := recs[0].VehicleID, ""
	for _, r := range recs {
		if r.VehicleID != a {
			b = r.VehicleID
			break
		}
	}
	if err := e.IngestRecord(recs[0]); err != nil {
		t.Fatal(err)
	}

	e.Cordon(a)
	if st := e.CordonState(a); st != StateCordoned {
		t.Fatalf("CordonState = %q, want %q", st, StateCordoned)
	}
	var vu *VehicleUnavailableError
	if err := e.IngestRecord(recs[0]); !errors.As(err, &vu) || vu.State != StateCordoned || vu.Refused != 1 {
		t.Fatalf("IngestRecord on cordoned vehicle: %v", err)
	}
	if err := e.IngestEvent(obd.Event{VehicleID: a, Time: recs[0].Time, Type: obd.EventService}); !errors.As(err, &vu) {
		t.Fatalf("IngestEvent on cordoned vehicle: %v", err)
	}

	// Batch refusal is all-or-nothing per vehicle, partial per call:
	// vehicle b's records are admitted, vehicle a's are refused and
	// counted.
	var batch []timeseries.Record
	var wantRefused int
	for _, r := range recs[:40] {
		if r.VehicleID == a || r.VehicleID == b {
			batch = append(batch, r)
			if r.VehicleID == a {
				wantRefused++
			}
		}
	}
	vu = nil
	if err := e.IngestBatch(batch, nil); !errors.As(err, &vu) {
		t.Fatalf("IngestBatch with cordoned vehicle: %v", err)
	}
	if vu.VehicleID != a || vu.State != StateCordoned || vu.Refused != wantRefused {
		t.Fatalf("refusal = %+v, want vehicle %s cordoned with %d items", vu, a, wantRefused)
	}

	e.Uncordon(a)
	if st := e.CordonState(a); st != "" {
		t.Fatalf("CordonState after Uncordon = %q", st)
	}
	if err := e.IngestBatch(batch, nil); err != nil {
		t.Fatalf("IngestBatch after Uncordon: %v", err)
	}
}

// TestExtractAdoptErrors covers the typed failure surface of the two
// handoff verbs.
func TestExtractAdoptErrors(t *testing.T) {
	e, err := NewEngine(Config{NewConfig: func(string) (core.Config, error) { return testConfig(), nil }, Shards: 2, BatchSize: 4, DropAlarms: true})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := e.ExtractVehicle("nope"); !errors.Is(err, ErrUnknownVehicle) {
		t.Fatalf("extract unknown: %v", err)
	}
	// A failed extraction must not leave the vehicle fenced.
	if st := e.CordonState("nope"); st != "" {
		t.Fatalf("failed extract left cordon %q", st)
	}

	recs := smallFleet().Records
	id := recs[0].VehicleID
	for _, r := range recs[:20] {
		if r.VehicleID == id {
			if err := e.IngestRecord(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	vs, err := e.ExtractVehicle(id)
	if err != nil {
		t.Fatalf("ExtractVehicle: %v", err)
	}
	if st := e.CordonState(id); st != StateMigrating {
		t.Fatalf("post-extract CordonState = %q, want %q", st, StateMigrating)
	}
	var vu *VehicleUnavailableError
	if err := e.IngestRecord(recs[0]); recs[0].VehicleID != id || !errors.As(err, &vu) || vu.State != StateMigrating {
		t.Fatalf("ingest mid-handoff: %v", err)
	}
	if err := e.AdoptVehicle(vs); err != nil {
		t.Fatalf("AdoptVehicle (re-adopt): %v", err)
	}
	if st := e.CordonState(id); st != "" {
		t.Fatalf("adopt did not lift cordon: %q", st)
	}
	if err := e.AdoptVehicle(vs); !errors.Is(err, ErrVehicleExists) {
		t.Fatalf("double adopt: %v", err)
	}

	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Closed engine: extraction still works (ownership contract), but
	// adoption needs a running target.
	if _, err := e.ExtractVehicle(id); err != nil {
		t.Fatalf("extract after close: %v", err)
	}
	if err := e.AdoptVehicle(vs); !errors.Is(err, ErrClosed) {
		t.Fatalf("adopt after close: %v", err)
	}
}

// TestVehicleHandoffDrainGate is the migration half of the drain gate:
// for every paper technique × transform, drain a LIVE engine mid-replay
// vehicle by vehicle (each extraction quiescing only the owning shard),
// push every VehicleState through the canonical byte codec, adopt on a
// second live engine with a different shard count, replay the rest
// there, and require the merged alarm stream and every per-sample
// score/threshold Float64bits-identical to an uninterrupted
// single-engine run.
func TestVehicleHandoffDrainGate(t *testing.T) {
	const (
		vehicles   = 2
		perVehicle = 200
		split      = 263
	)
	records, events := syntheticStream(vehicles, perVehicle)
	evFirst, evSecond := splitEvents(events, records[split].Time)

	for _, tech := range paperTechniques() {
		for _, kind := range transform.AllKinds() {
			tech, kind := tech, kind
			t.Run(fmt.Sprintf("%s_%s", tech.name, kind), func(t *testing.T) {
				refTraces := newTraceSet()
				eRef, err := NewEngine(Config{NewConfig: gridConfig(tech, kind, refTraces), Shards: 3, BatchSize: 16})
				if err != nil {
					t.Fatal(err)
				}
				waitRef := drainAlarms(eRef)
				if err := eRef.Replay(records, events); err != nil {
					t.Fatal(err)
				}
				if err := eRef.Close(); err != nil {
					t.Fatal(err)
				}
				refAlarms := waitRef()
				sortAlarms(refAlarms)

				// Source and target share one trace set: a migrated
				// vehicle keeps appending to the same per-vehicle trace,
				// so the combined rows must equal the reference's.
				liveTraces := newTraceSet()
				src, err := NewEngine(Config{NewConfig: gridConfig(tech, kind, liveTraces), Shards: 3, BatchSize: 16})
				if err != nil {
					t.Fatal(err)
				}
				waitSrc := drainAlarms(src)
				if err := src.Replay(records[:split], evFirst); err != nil {
					t.Fatal(err)
				}

				dst, err := NewEngine(Config{NewConfig: gridConfig(tech, kind, liveTraces), Shards: 1, BatchSize: 16})
				if err != nil {
					t.Fatal(err)
				}
				waitDst := drainAlarms(dst)

				// Drain the live source: extract + adopt one vehicle at a
				// time, through the wire-payload codec.
				ids := src.VehicleIDs()
				if len(ids) != vehicles {
					t.Fatalf("VehicleIDs = %v, want %d vehicles", ids, vehicles)
				}
				for _, id := range ids {
					vs, err := src.ExtractVehicle(id)
					if err != nil {
						t.Fatalf("ExtractVehicle(%s): %v", id, err)
					}
					decoded, err := DecodeVehicleState(vs.Encode())
					if err != nil {
						t.Fatalf("codec round trip %s: %v", id, err)
					}
					if err := dst.AdoptVehicle(decoded); err != nil {
						t.Fatalf("AdoptVehicle(%s): %v", id, err)
					}
					// The source now refuses the moved vehicle instead of
					// silently re-warming a fresh handler.
					var vu *VehicleUnavailableError
					if err := src.IngestRecord(timeseries.Record{VehicleID: id}); !errors.As(err, &vu) {
						t.Fatalf("source ingest after drain of %s: %v", id, err)
					}
				}
				if err := src.Close(); err != nil {
					t.Fatal(err)
				}
				srcAlarms := waitSrc()

				if err := dst.Replay(records[split:], evSecond); err != nil {
					t.Fatal(err)
				}
				if err := dst.Close(); err != nil {
					t.Fatal(err)
				}
				dstAlarms := waitDst()

				got := append(append([]detector.Alarm{}, srcAlarms...), dstAlarms...)
				sortAlarms(got)
				if !sameAlarms(got, refAlarms) {
					t.Errorf("drained alarms differ: %d+%d vs %d uninterrupted",
						len(srcAlarms), len(dstAlarms), len(refAlarms))
				}
				for id, ref := range refTraces.m {
					live := liveTraces.m[id]
					if live == nil {
						t.Fatalf("vehicle %s missing from drained run", id)
					}
					if len(live.Scores) != len(ref.Scores) {
						t.Fatalf("vehicle %s: %d samples vs %d uninterrupted", id, len(live.Scores), len(ref.Scores))
					}
					if !bitEqualRows(live.Scores, ref.Scores) || !bitEqualRows(live.Thresholds, ref.Thresholds) {
						t.Errorf("vehicle %s: migrated scores/thresholds diverge", id)
					}
				}
			})
		}
	}
}

// TestConcurrentMigrationIngest hammers IngestBatch from one producer
// per vehicle while a migrator bounces every vehicle between two
// engines. The availability fence plus per-vehicle all-or-nothing
// batch refusal must guarantee exactly-once processing: no record is
// lost, none is duplicated, and alarms and per-sample scores are
// bit-identical to an uninterrupted single-engine run. Run under
// `make race-fleet` this doubles as the fence's race gate.
func TestConcurrentMigrationIngest(t *testing.T) {
	const (
		vehicles   = 4
		perVehicle = 240
		chunk      = 9
		rounds     = 8
	)
	records, events := syntheticStream(vehicles, perVehicle)

	tech := paperTechniques()[0] // closest-pair: cheap, alarm-dense
	kind := transform.AllKinds()[0]

	refTraces := newTraceSet()
	eRef, err := NewEngine(Config{NewConfig: gridConfig(tech, kind, refTraces), Shards: 2, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	waitRef := drainAlarms(eRef)
	if err := eRef.Replay(records, events); err != nil {
		t.Fatal(err)
	}
	if err := eRef.Close(); err != nil {
		t.Fatal(err)
	}
	refAlarms := waitRef()
	sortAlarms(refAlarms)

	liveTraces := newTraceSet()
	mk := func(shards int) *Engine {
		e, err := NewEngine(Config{NewConfig: gridConfig(tech, kind, liveTraces), Shards: shards, BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	eA, eB := mk(2), mk(3)
	waitA, waitB := drainAlarms(eA), drainAlarms(eB)

	// Per-vehicle streams, chronological, the vehicle's service event
	// attached to the chunk that covers its timestamp.
	type stream struct {
		recs []timeseries.Record
		evs  []obd.Event
	}
	perVeh := map[string]*stream{}
	for _, r := range records {
		if perVeh[r.VehicleID] == nil {
			perVeh[r.VehicleID] = &stream{}
		}
		perVeh[r.VehicleID].recs = append(perVeh[r.VehicleID].recs, r)
	}
	for _, ev := range events {
		perVeh[ev.VehicleID].evs = append(perVeh[ev.VehicleID].evs, ev)
	}

	// owner tracks which engine a producer should try first; the fence
	// is what actually guarantees exactly-once, the table only steers.
	var ownMu sync.Mutex
	owner := map[string]*Engine{}
	for id := range perVeh {
		owner[id] = eA
		// Pre-fence on the engine that does not own the vehicle yet, so
		// a misrouted batch is refused instead of growing a fresh
		// diverging handler.
		eB.Cordon(id)
	}
	getOwner := func(id string) *Engine {
		ownMu.Lock()
		defer ownMu.Unlock()
		return owner[id]
	}

	var wg sync.WaitGroup
	for id, st := range perVeh {
		id, st := id, st
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < len(st.recs); i += chunk {
				j := i + chunk
				if j > len(st.recs) {
					j = len(st.recs)
				}
				var evs []obd.Event
				for _, ev := range st.evs {
					if !ev.Time.Before(st.recs[i].Time) && (j == len(st.recs) || ev.Time.Before(st.recs[j].Time)) {
						evs = append(evs, ev)
					}
				}
				for attempt := 0; ; attempt++ {
					err := getOwner(id).IngestBatch(st.recs[i:j], evs)
					if err == nil {
						break
					}
					var vu *VehicleUnavailableError
					if !errors.As(err, &vu) {
						t.Errorf("vehicle %s: IngestBatch: %v", id, err)
						return
					}
					if attempt > 1_000_000 {
						t.Errorf("vehicle %s: refused forever", id)
						return
					}
					runtime.Gosched()
				}
			}
		}()
	}

	// The migrator bounces every vehicle A→B→A… while producers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			for id := range perVeh {
				from := getOwner(id)
				to := eA
				if from == eA {
					to = eB
				}
				vs, err := from.ExtractVehicle(id)
				if err != nil {
					if errors.Is(err, ErrUnknownVehicle) {
						continue // producer has not materialised it yet
					}
					t.Errorf("extract %s: %v", id, err)
					return
				}
				if err := to.AdoptVehicle(vs); err != nil {
					t.Errorf("adopt %s: %v", id, err)
					return
				}
				ownMu.Lock()
				owner[id] = to
				ownMu.Unlock()
			}
			runtime.Gosched()
		}
	}()
	wg.Wait()

	if err := eA.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eB.Close(); err != nil {
		t.Fatal(err)
	}
	alarms := append(waitA(), waitB()...)
	sortAlarms(alarms)

	stA, stB := eA.Stats(), eB.Stats()
	if got := stA.RecordsIn + stB.RecordsIn; got != uint64(len(records)) {
		t.Errorf("records processed = %d (A %d + B %d), want %d — lost or duplicated",
			got, stA.RecordsIn, stB.RecordsIn, len(records))
	}
	if got := stA.EventsIn + stB.EventsIn; got != uint64(len(events)) {
		t.Errorf("events processed = %d, want %d", got, len(events))
	}
	if stA.Drops+stB.Drops != 0 {
		t.Errorf("drops = %d, want 0", stA.Drops+stB.Drops)
	}
	if !sameAlarms(alarms, refAlarms) {
		t.Errorf("migrated alarms differ: %d vs %d uninterrupted", len(alarms), len(refAlarms))
	}
	for id, ref := range refTraces.m {
		live := liveTraces.m[id]
		if live == nil {
			t.Fatalf("vehicle %s missing from migrated run", id)
		}
		if len(live.Scores) != len(ref.Scores) || !bitEqualRows(live.Scores, ref.Scores) {
			t.Errorf("vehicle %s: migrated per-sample scores diverge (%d vs %d rows)",
				id, len(live.Scores), len(ref.Scores))
		}
	}
}
