package fleet

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/navarchos/pdm/internal/core"
	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/fleetsim"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/timeseries"
	"github.com/navarchos/pdm/internal/wire"
)

// batchedAlarms replays the fleet through IngestBatch in chunks of the
// given size, cutting the globally merged stream at arbitrary points so
// batches span shard boundaries and record/event interleaves.
func batchedAlarms(t *testing.T, f *fleetsim.Fleet, shards, chunk int) ([]detector.Alarm, EngineStats) {
	t.Helper()
	type item struct {
		isEvent bool
		rec     timeseries.Record
		ev      obd.Event
	}
	var items []item
	err := core.Merged("", f.Records, f.Events,
		func(ev obd.Event) error { items = append(items, item{isEvent: true, ev: ev}); return nil },
		func(r timeseries.Record) error { items = append(items, item{rec: r}); return nil })
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{
		NewConfig: func(string) (core.Config, error) { return testConfig(), nil },
		Shards:    shards,
		BatchSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []detector.Alarm
	done := make(chan struct{})
	go func() {
		defer close(done)
		for a := range e.Alarms() {
			out = append(out, a)
		}
	}()
	var recs []timeseries.Record
	var evs []obd.Event
	for start := 0; start < len(items); start += chunk {
		end := start + chunk
		if end > len(items) {
			end = len(items)
		}
		recs, evs = recs[:0], evs[:0]
		for _, it := range items[start:end] {
			if it.isEvent {
				evs = append(evs, it.ev)
			} else {
				recs = append(recs, it.rec)
			}
		}
		if err := e.IngestBatch(recs, evs); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	sortAlarms(out)
	return out, e.Stats()
}

// requireSameAlarms asserts bit-exact alarm identity: same count, and
// per alarm the same vehicle, instant, channel, and Float64bits-equal
// score and threshold.
func requireSameAlarms(t *testing.T, label string, got, want []detector.Alarm) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d alarms, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.VehicleID != w.VehicleID || !g.Time.Equal(w.Time) || g.Channel != w.Channel ||
			math.Float64bits(g.Score) != math.Float64bits(w.Score) ||
			math.Float64bits(g.Threshold) != math.Float64bits(w.Threshold) {
			t.Fatalf("%s: alarm %d differs:\n got %+v\nwant %+v", label, i, g, w)
		}
	}
}

// TestIngestBatchMatchesReplay pins the admission seam's determinism:
// for any shard count and chunk size — including chunks that span shard
// boundaries and split record/event ties — IngestBatch yields exactly
// the serial replay's alarms, bit for bit.
func TestIngestBatchMatchesReplay(t *testing.T) {
	f := smallFleet()
	want := serialAlarms(t, f)
	if len(want) == 0 {
		t.Fatal("test fleet produced no alarms; identity check is vacuous")
	}
	for _, shards := range []int{1, 2, 3} {
		for _, chunk := range []int{1, 37, 1024} {
			got, stats := batchedAlarms(t, f, shards, chunk)
			requireSameAlarms(t, fmt.Sprintf("shards=%d chunk=%d", shards, chunk), got, want)
			if stats.RecordsIn != uint64(len(f.Records)) {
				t.Errorf("shards=%d chunk=%d: RecordsIn = %d, want %d",
					shards, chunk, stats.RecordsIn, len(f.Records))
			}
			if stats.EventsIn != uint64(len(f.Events)) {
				t.Errorf("shards=%d chunk=%d: EventsIn = %d, want %d",
					shards, chunk, stats.EventsIn, len(f.Events))
			}
		}
	}
}

// TestWireVsReplayAlarmIdentity is the end-to-end data-plane oracle
// gated in `make ingest-smoke`: a fleet encoded to NVWIRE1 frames,
// stream-decoded, and admitted through IngestBatch must produce alarms
// Float64bits-identical to an in-memory Replay — at one shard and at
// two, where batches genuinely split across shard queues.
func TestWireVsReplayAlarmIdentity(t *testing.T) {
	f := smallFleet()
	frames, nframes, err := wire.EncodeStream(nil, f.Records, f.Events, 256)
	if err != nil {
		t.Fatal(err)
	}
	if nframes < 2 {
		t.Fatalf("only %d frames; multi-frame path not exercised", nframes)
	}
	for _, shards := range []int{1, 2} {
		want, _ := engineAlarms(t, f, shards, 16)
		if len(want) == 0 {
			t.Fatal("replay produced no alarms; identity check is vacuous")
		}
		e, err := NewEngine(Config{
			NewConfig: func(string) (core.Config, error) { return testConfig(), nil },
			Shards:    shards,
			BatchSize: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		var got []detector.Alarm
		done := make(chan struct{})
		go func() {
			defer close(done)
			for a := range e.Alarms() {
				got = append(got, a)
			}
		}()
		var dec wire.Decoder
		decoded, err := dec.DecodeStream(bytes.NewReader(frames), wire.SinkFunc(func(b *wire.Batch) error {
			return e.IngestBatch(b.Records, b.Events)
		}))
		if err != nil {
			t.Fatal(err)
		}
		if decoded != nframes {
			t.Fatalf("decoded %d frames, want %d", decoded, nframes)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		<-done
		sortAlarms(got)
		requireSameAlarms(t, fmt.Sprintf("wire shards=%d", shards), got, want)
	}
}

// TestIngestBatchEmptyAndClosed checks the trivial edges: an empty
// batch is a no-op on a live engine, and any batch after Close errors
// cleanly with ErrClosed.
func TestIngestBatchEmptyAndClosed(t *testing.T) {
	e, err := NewEngine(Config{
		NewHandler: func(string) (Handler, error) { return &countHandler{}, nil },
		Shards:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.IngestBatch(nil, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().RecordsIn; got != 0 {
		t.Fatalf("RecordsIn = %d after only empty batches", got)
	}
	if err := e.IngestBatch([]timeseries.Record{{VehicleID: "veh-0"}}, nil); err != ErrClosed {
		t.Fatalf("IngestBatch after Close = %v, want ErrClosed", err)
	}
}

// TestIngestBatchBackpressure pins the batch path to the same
// backpressure contract as IngestRecord: with the shard queue full and
// the consumer held, the next batch must block until the shard drains.
func TestIngestBatchBackpressure(t *testing.T) {
	const queueDepth = 2
	gate := make(chan struct{})
	e, err := NewEngine(Config{
		NewHandler: func(string) (Handler, error) {
			return &gateHandler{gate: gate}, nil
		},
		Shards:     1,
		BatchSize:  1, // every record is its own batch
		QueueDepth: queueDepth,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := []timeseries.Record{{VehicleID: "veh-0"}}

	// First record: dequeued immediately, shard parks inside the handler.
	if err := e.IngestBatch(rec, nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	// One batch call filling the queue exactly must not block.
	fill := make([]timeseries.Record, queueDepth)
	for i := range fill {
		fill[i].VehicleID = "veh-0"
	}
	if err := e.IngestBatch(fill, nil); err != nil {
		t.Fatal(err)
	}

	// Queue is full: the next batch must block on the channel send.
	blocked := make(chan struct{})
	go func() {
		if err := e.IngestBatch(rec, nil); err != nil {
			t.Error(err)
		}
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("IngestBatch into a full shard queue returned without blocking")
	case <-time.After(50 * time.Millisecond):
	}

	close(gate)
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked IngestBatch never completed after the consumer drained")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := e.Stats().RecordsIn, uint64(queueDepth+2); got != want {
		t.Fatalf("RecordsIn = %d, want %d", got, want)
	}
}

// TestIngestBatchDuringCheckpointBarrier races IngestBatch against a
// live checkpoint. The barrier holds every ingest mutex while shards
// are parked; a concurrent batch must land entirely before the barrier
// or entirely after the release, and no record may be lost or
// double-counted.
func TestIngestBatchDuringCheckpointBarrier(t *testing.T) {
	e, err := NewEngine(Config{
		NewConfig: func(string) (core.Config, error) { return testConfig(), nil },
		Shards:    2,
		BatchSize: 64, // large: batches below stay pending until flushed
	})
	if err != nil {
		t.Fatal(err)
	}
	f := smallFleet()
	batch := func(n, salt int) []timeseries.Record {
		out := make([]timeseries.Record, n)
		for i := range out {
			out[i] = f.Records[(salt+i)%len(f.Records)]
			out[i].VehicleID = fmt.Sprintf("veh-%02d", (salt+i)%8)
		}
		return out
	}
	const staged = 40
	if err := e.IngestBatch(batch(staged, 0), nil); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var buf bytes.Buffer
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := e.Checkpoint(&buf); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		// Races the quiesce: must serialize against the barrier, never
		// deadlock or inject into the quiesced window.
		if err := e.IngestBatch(batch(staged, 7), nil); err != nil {
			t.Error(err)
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("IngestBatch deadlocked against an in-flight checkpoint barrier")
	}
	if buf.Len() == 0 {
		t.Fatal("checkpoint wrote no data")
	}

	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := e.Stats().RecordsIn, uint64(2*staged); got != want {
		t.Fatalf("RecordsIn = %d, want %d (lost or duplicated by the barrier race)", got, want)
	}
}
