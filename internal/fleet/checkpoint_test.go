package fleet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/navarchos/pdm/internal/checkpoint"
	"github.com/navarchos/pdm/internal/core"
	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/detector/closestpair"
	"github.com/navarchos/pdm/internal/detector/grand"
	"github.com/navarchos/pdm/internal/detector/regress"
	"github.com/navarchos/pdm/internal/detector/tranad"
	"github.com/navarchos/pdm/internal/gbt"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/thresholds"
	"github.com/navarchos/pdm/internal/timeseries"
	"github.com/navarchos/pdm/internal/transform"
)

// paperTechnique names one of the paper's four step-3 techniques with
// its benchmark-scale hyper-parameters (mirroring eval.NewDetector,
// which this package cannot import: eval's grid builds on fleet).
type paperTechnique struct {
	name       string
	constantTh bool
	build      func(featureNames []string) detector.Detector
}

func paperTechniques() []paperTechnique {
	return []paperTechnique{
		{"closest-pair", false, func(n []string) detector.Detector { return closestpair.New(n) }},
		{"grand", true, func([]string) detector.Detector { return grand.New(grand.Config{Measure: grand.KNN}) }},
		{"tranad", false, func([]string) detector.Detector {
			return tranad.New(tranad.Config{Window: 8, DModel: 12, Heads: 2, Epochs: 5, MaxWindows: 256, Seed: 7})
		}},
		{"xgboost", false, func(n []string) detector.Detector {
			return regress.New(n, gbt.Config{NumTrees: 25, MaxDepth: 3, Seed: 7})
		}},
	}
}

// traceSet hands each vehicle its own Trace; NewConfig is called from
// shard goroutines so the map needs a lock (traces themselves are
// owned by a single shard).
type traceSet struct {
	mu sync.Mutex
	m  map[string]*core.Trace
}

func newTraceSet() *traceSet { return &traceSet{m: map[string]*core.Trace{}} }

func (t *traceSet) get(v string) *core.Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.m[v]
	if !ok {
		tr = &core.Trace{}
		t.m[v] = tr
	}
	return tr
}

// gridConfig builds the per-vehicle factory for one grid cell
// (technique × transformation), with per-vehicle traces when traces is
// non-nil.
func gridConfig(tech paperTechnique, kind transform.Kind, traces *traceSet) func(string) (core.Config, error) {
	return func(v string) (core.Config, error) {
		tr, err := transform.New(kind, 12)
		if err != nil {
			return core.Config{}, err
		}
		var th thresholds.Thresholder = thresholds.NewSelfTuning(3)
		if tech.constantTh {
			th = thresholds.NewConstant(0.5)
		}
		cfg := core.Config{
			Transformer:   tr,
			Detector:      tech.build(tr.FeatureNames()),
			Thresholder:   th,
			ProfileLength: 30,
			Filter:        func(*timeseries.Record) bool { return true },
		}
		if traces != nil {
			cfg.Trace = traces.get(v)
		}
		return cfg, nil
	}
}

// syntheticStream generates a deterministic multi-vehicle stream:
// sinusoidal signals with seeded jitter, chronologically interleaved
// across vehicles, plus one mid-stream service event per vehicle.
func syntheticStream(vehicles, perVehicle int) ([]timeseries.Record, []obd.Event) {
	rng := rand.New(rand.NewSource(99))
	base := time.Date(2023, 3, 1, 7, 0, 0, 0, time.UTC)
	var records []timeseries.Record
	var events []obd.Event
	for i := 0; i < perVehicle; i++ {
		for v := 0; v < vehicles; v++ {
			var vals [obd.NumPIDs]float64
			vals[obd.EngineRPM] = 1400 + 300*math.Sin(float64(i)/9+float64(v)) + rng.Float64()*80
			vals[obd.Speed] = 45 + 20*math.Sin(float64(i)/13) + rng.Float64()*5
			vals[obd.CoolantTemp] = 85 + rng.Float64()*6
			vals[obd.IntakeTemp] = 22 + rng.Float64()*4
			vals[obd.MAPIntake] = 35 + 12*math.Sin(float64(i)/7+float64(v)) + rng.Float64()*4
			vals[obd.MAFAirFlowRate] = 9 + 4*math.Sin(float64(i)/7+float64(v)) + rng.Float64()*2
			records = append(records, timeseries.Record{
				VehicleID: fmt.Sprintf("veh-%02d", v),
				Time:      base.Add(time.Duration(i)*time.Minute + time.Duration(v)*time.Second),
				Values:    vals,
			})
		}
	}
	for v := 0; v < vehicles; v++ {
		events = append(events, obd.Event{
			VehicleID: fmt.Sprintf("veh-%02d", v),
			Time:      base.Add(time.Duration(perVehicle/3)*time.Minute + time.Duration(v)*time.Second),
			Type:      obd.EventService,
		})
	}
	return records, events
}

// drainAlarms collects the engine's alarms in the background; the
// returned function waits for channel close and hands the slice back.
func drainAlarms(e *Engine) func() []detector.Alarm {
	var out []detector.Alarm
	done := make(chan struct{})
	go func() {
		defer close(done)
		for a := range e.Alarms() {
			out = append(out, a)
		}
	}()
	return func() []detector.Alarm {
		<-done
		return out
	}
}

// splitEvents partitions events around the split record's timestamp,
// preserving Merged's events-before-same-timestamp-records order.
func splitEvents(events []obd.Event, splitTime time.Time) (first, second []obd.Event) {
	for _, ev := range events {
		if ev.Time.Before(splitTime) {
			first = append(first, ev)
		} else {
			second = append(second, ev)
		}
	}
	return first, second
}

// bitEqualRows compares two score/threshold matrices bit-for-bit.
func bitEqualRows(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

func sameAlarms(a, b []detector.Alarm) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].VehicleID != b[i].VehicleID || !a[i].Time.Equal(b[i].Time) ||
			a[i].Channel != b[i].Channel || a[i].Feature != b[i].Feature ||
			math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) ||
			math.Float64bits(a[i].Threshold) != math.Float64bits(b[i].Threshold) {
			return false
		}
	}
	return true
}

// TestEngineCheckpointResumeGate is the fleet-level resume gate the
// state/config split exists for: for every paper technique × transform
// grid cell, checkpoint a LIVE engine mid-stream (exercising the
// barrier quiesce), restore the checkpoint into an engine with a
// different shard count, replay the remainder, and require alarms and
// per-sample scores bit-identical to the uninterrupted run.
func TestEngineCheckpointResumeGate(t *testing.T) {
	const (
		vehicles   = 2
		perVehicle = 200
		split      = 263 // arbitrary mid-stream cut, past the fit point
	)
	records, events := syntheticStream(vehicles, perVehicle)
	evFirst, evSecond := splitEvents(events, records[split].Time)

	for _, tech := range paperTechniques() {
		for _, kind := range transform.AllKinds() {
			tech, kind := tech, kind
			t.Run(fmt.Sprintf("%s_%s", tech.name, kind), func(t *testing.T) {
				// Uninterrupted reference.
				refTraces := newTraceSet()
				eRef, err := NewEngine(Config{NewConfig: gridConfig(tech, kind, refTraces), Shards: 3, BatchSize: 16})
				if err != nil {
					t.Fatal(err)
				}
				waitRef := drainAlarms(eRef)
				if err := eRef.Replay(records, events); err != nil {
					t.Fatal(err)
				}
				if err := eRef.Close(); err != nil {
					t.Fatal(err)
				}
				refAlarms := waitRef()
				sortAlarms(refAlarms)

				// Prefix run, checkpointed while live.
				preTraces := newTraceSet()
				e1, err := NewEngine(Config{NewConfig: gridConfig(tech, kind, preTraces), Shards: 3, BatchSize: 16})
				if err != nil {
					t.Fatal(err)
				}
				wait1 := drainAlarms(e1)
				if err := e1.Replay(records[:split], evFirst); err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := e1.Checkpoint(&buf); err != nil {
					t.Fatalf("live Checkpoint: %v", err)
				}
				if err := e1.Close(); err != nil {
					t.Fatal(err)
				}
				preAlarms := wait1()

				// Restore at a different shard count and replay the rest.
				postTraces := newTraceSet()
				e2, err := NewEngineFromCheckpoint(bytes.NewReader(buf.Bytes()),
					Config{NewConfig: gridConfig(tech, kind, postTraces), Shards: 1, BatchSize: 16})
				if err != nil {
					t.Fatalf("NewEngineFromCheckpoint: %v", err)
				}
				wait2 := drainAlarms(e2)
				if err := e2.Replay(records[split:], evSecond); err != nil {
					t.Fatal(err)
				}
				if err := e2.Close(); err != nil {
					t.Fatal(err)
				}
				postAlarms := wait2()

				got := append(append([]detector.Alarm{}, preAlarms...), postAlarms...)
				sortAlarms(got)
				if !sameAlarms(got, refAlarms) {
					t.Errorf("resumed alarms differ: %d+%d vs %d uninterrupted",
						len(preAlarms), len(postAlarms), len(refAlarms))
				}

				// Per-sample scores and thresholds: the prefix trace must be
				// the reference's head, the restored trace its tail.
				if st := e2.Stats(); st.RecordsIn != uint64(len(records)) {
					t.Errorf("restored RecordsIn = %d, want %d (totals must continue)", st.RecordsIn, len(records))
				}
				for id, ref := range refTraces.m {
					pre, post := preTraces.m[id], postTraces.m[id]
					if pre == nil || post == nil {
						t.Fatalf("vehicle %s missing from a run", id)
					}
					n := len(pre.Scores)
					if len(ref.Scores) != n+len(post.Scores) {
						t.Fatalf("vehicle %s: %d+%d samples vs %d uninterrupted",
							id, n, len(post.Scores), len(ref.Scores))
					}
					if !bitEqualRows(pre.Scores, ref.Scores[:n]) {
						t.Errorf("vehicle %s: prefix scores diverge from reference", id)
					}
					if !bitEqualRows(post.Scores, ref.Scores[n:]) {
						t.Errorf("vehicle %s: post-restore scores diverge from reference", id)
					}
					if !bitEqualRows(pre.Thresholds, ref.Thresholds[:n]) ||
						!bitEqualRows(post.Thresholds, ref.Thresholds[n:]) {
						t.Errorf("vehicle %s: thresholds diverge from reference", id)
					}
				}
			})
		}
	}
}

// TestEngineCheckpointClosedAndSkip covers the post-Close checkpoint
// path and skip-set persistence: a fleet checkpointed after Close
// restores (at a different shard count) into an engine that resumes
// exactly and keeps excluding the skipped vehicle.
func TestEngineCheckpointClosedAndSkip(t *testing.T) {
	f := smallFleet()
	ids := f.AllVehicleIDs()
	skipID := ids[len(ids)-1]
	factory := func(v string) (core.Config, error) {
		if v == skipID {
			return core.Config{}, ErrSkipVehicle
		}
		return testConfig(), nil
	}
	run := func(e *Engine, records []timeseries.Record, events []obd.Event) []detector.Alarm {
		t.Helper()
		wait := drainAlarms(e)
		if err := e.Replay(records, events); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		return wait()
	}

	eRef, err := NewEngine(Config{NewConfig: factory, Shards: 3, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	want := run(eRef, f.Records, f.Events)
	sortAlarms(want)
	if len(want) == 0 {
		t.Fatal("reference run raised no alarms; resume check is vacuous")
	}

	split := len(f.Records) / 2
	evFirst, evSecond := splitEvents(f.Events, f.Records[split].Time)
	e1, err := NewEngine(Config{NewConfig: factory, Shards: 3, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	got := run(e1, f.Records[:split], evFirst)
	var buf bytes.Buffer
	if err := e1.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint after Close: %v", err)
	}

	e2, err := NewEngineFromCheckpoint(bytes.NewReader(buf.Bytes()),
		Config{NewConfig: factory, Shards: 5, BatchSize: 32})
	if err != nil {
		t.Fatalf("NewEngineFromCheckpoint: %v", err)
	}
	got = append(got, run(e2, f.Records[split:], evSecond)...)
	sortAlarms(got)
	if !sameAlarms(got, want) {
		t.Errorf("resumed alarms differ: got %d, want %d", len(got), len(want))
	}
	e2.Handlers(func(id string, _ Handler) {
		if id == skipID {
			t.Errorf("skipped vehicle %s grew a handler after restore", id)
		}
	})
}

// TestEngineCheckpointNotSnapshottable: a fleet of transform-only
// trace collectors cannot be checkpointed; the engine must say so with
// the typed error and stay usable afterwards.
func TestEngineCheckpointNotSnapshottable(t *testing.T) {
	e, err := NewEngine(Config{
		NewHandler: func(v string) (Handler, error) {
			tr, err := transform.New(transform.Correlation, 12)
			if err != nil {
				return nil, err
			}
			return core.NewTraceCollector(v, core.TransformConfig{
				Transformer: tr,
				Filter:      func(*timeseries.Record) bool { return true },
			}, &core.TransformedTrace{})
		},
		Shards:     2,
		DropAlarms: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	records, _ := syntheticStream(2, 40)
	if err := e.Replay(records, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); !errors.Is(err, ErrNotSnapshottable) {
		t.Fatalf("Checkpoint = %v, want ErrNotSnapshottable", err)
	}
	// The failed checkpoint released the barrier: the engine still
	// ingests and closes cleanly.
	if err := e.IngestRecord(records[0]); err != nil {
		t.Fatalf("ingest after failed checkpoint: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestNewEngineFromCheckpointRejectsBadInput walks the typed-error
// contract: truncation, foreign bytes, future versions, corruption,
// unknown sections, duplicate vehicles and mismatched configurations
// must all refuse to restore — never panic, never half-restore.
func TestNewEngineFromCheckpointRejectsBadInput(t *testing.T) {
	factory := func(string) (core.Config, error) { return testConfig(), nil }
	records, events := syntheticStream(2, 120)
	e, err := NewEngine(Config{NewConfig: factory, Shards: 2, DropAlarms: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Replay(records, events); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cfg := Config{NewConfig: factory, Shards: 3}
	restore := func(b []byte) error {
		re, err := NewEngineFromCheckpoint(bytes.NewReader(b), cfg)
		if err == nil {
			_ = re.Close()
		}
		return err
	}

	if err := restore(valid); err != nil {
		t.Fatalf("valid checkpoint refused: %v", err)
	}
	if err := restore(nil); !errors.Is(err, checkpoint.ErrTruncated) {
		t.Errorf("empty input = %v, want ErrTruncated", err)
	}
	if err := restore([]byte("definitely not a checkpoint stream")); !errors.Is(err, checkpoint.ErrBadMagic) {
		t.Errorf("foreign bytes = %v, want ErrBadMagic", err)
	}
	future := append([]byte{}, valid...)
	binary.LittleEndian.PutUint32(future[8:], checkpoint.Version+1)
	var fv *checkpoint.FutureVersionError
	if err := restore(future); !errors.As(err, &fv) {
		t.Errorf("future version = %v, want FutureVersionError", err)
	}
	if err := restore(valid[:len(valid)-3]); !errors.Is(err, checkpoint.ErrTruncated) {
		t.Errorf("truncated = %v, want ErrTruncated", err)
	}
	corrupt := append([]byte{}, valid...)
	corrupt[len(corrupt)-7] ^= 0x40
	if err := restore(corrupt); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Errorf("flipped byte = %v, want ErrCorrupt", err)
	}

	var unknown bytes.Buffer
	uenc := checkpoint.NewEncoder(&unknown)
	if err := uenc.Section("mystery", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := restore(unknown.Bytes()); !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("unknown section = %v, want ErrBadCheckpoint", err)
	}

	// Duplicate vehicle section.
	var dup bytes.Buffer
	denc := checkpoint.NewEncoder(&dup)
	dec := checkpoint.NewDecoder(bytes.NewReader(valid))
	for {
		name, payload, err := dec.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := denc.Section(name, payload); err != nil {
			t.Fatal(err)
		}
		if name == "vehicle" {
			if err := denc.Section(name, payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := restore(dup.Bytes()); !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("duplicate vehicle = %v, want ErrBadCheckpoint", err)
	}

	// A configuration that cannot host the state (different density
	// window) must be refused by the handler's own restore validation.
	mis := Config{NewConfig: func(string) (core.Config, error) {
		c := testConfig()
		c.DensityM = 3
		c.DensityK = 4
		return c, nil
	}, Shards: 2}
	if _, err := NewEngineFromCheckpoint(bytes.NewReader(valid), mis); err == nil {
		t.Error("mismatched pipeline configuration accepted a foreign checkpoint")
	}
}
