package fleet

import (
	"runtime"
	"testing"
	"time"

	"github.com/navarchos/pdm/internal/core"
	"github.com/navarchos/pdm/internal/detector/closestpair"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/thresholds"
	"github.com/navarchos/pdm/internal/timeseries"
	"github.com/navarchos/pdm/internal/transform"
)

// benchStream synthesises a time-interleaved multi-vehicle record stream
// without the fleet simulator's cost: every vehicle drives continuously,
// values vary enough to dodge the stationary filter.
func benchStream(vehicles, perVehicle int) []timeseries.Record {
	ids := make([]string, vehicles)
	for v := range ids {
		ids[v] = "veh-" + itoa(v)
	}
	base := time.Date(2023, 6, 1, 8, 0, 0, 0, time.UTC)
	out := make([]timeseries.Record, 0, vehicles*perVehicle)
	for i := 0; i < perVehicle; i++ {
		t := base.Add(time.Duration(i) * time.Minute)
		for v := 0; v < vehicles; v++ {
			var vals [obd.NumPIDs]float64
			vals[obd.EngineRPM] = 1500 + float64((i+v)%37)*20
			vals[obd.Speed] = 40 + float64((i+2*v)%23)
			vals[obd.CoolantTemp] = 87 + float64(i%5)
			vals[obd.IntakeTemp] = 24 + float64((i+v)%11)
			vals[obd.MAPIntake] = 38 + float64(i%13)
			vals[obd.MAFAirFlowRate] = 9 + float64((i+3*v)%7)
			out = append(out, timeseries.Record{VehicleID: ids[v], Time: t, Values: vals})
		}
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for n > 0 {
		pos--
		buf[pos] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[pos:])
}

// benchPipelineConfig is the complete solution without the warmup
// filter, so the whole stream exercises transform + scoring.
func benchPipelineConfig(string) (core.Config, error) {
	tr, err := transform.New(transform.Correlation, 12)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		Transformer:   tr,
		Detector:      closestpair.New(tr.FeatureNames()),
		Thresholder:   thresholds.NewSelfTuning(10),
		ProfileLength: 45,
		Filter:        func(*timeseries.Record) bool { return true },
	}, nil
}

// BenchmarkFleetThroughput measures aggregate engine throughput
// (records/sec) as the shard count grows — the ISSUE's scaling
// criterion: on a multi-core runner, NumCPU shards must clear ≥2× the
// single-shard rate. Each iteration replays a 64-vehicle stream through
// a fresh engine.
func BenchmarkFleetThroughput(b *testing.B) {
	const vehicles, perVehicle = 64, 700
	records := benchStream(vehicles, perVehicle)
	shardCounts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		shardCounts = append(shardCounts, n)
	}
	for _, shards := range shardCounts {
		b.Run("shards-"+itoa(shards), func(b *testing.B) {
			b.ResetTimer()
			processed := 0
			for i := 0; i < b.N; i++ {
				e, err := NewEngine(Config{
					NewConfig:  benchPipelineConfig,
					Shards:     shards,
					DropAlarms: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := e.Replay(records, nil); err != nil {
					b.Fatal(err)
				}
				if err := e.Close(); err != nil {
					b.Fatal(err)
				}
				if got := e.Stats().RecordsIn; got != uint64(len(records)) {
					b.Fatalf("RecordsIn = %d, want %d", got, len(records))
				}
				processed += len(records)
			}
			b.StopTimer()
			b.ReportMetric(float64(processed)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkEngineIngestOverhead isolates the envelope/batching/channel
// cost: a config that skips every vehicle measures the engine minus the
// scoring work.
func BenchmarkEngineIngestOverhead(b *testing.B) {
	records := benchStream(64, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewEngine(Config{
			NewConfig:  func(string) (core.Config, error) { return core.Config{}, ErrSkipVehicle },
			Shards:     4,
			DropAlarms: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Replay(records, nil); err != nil {
			b.Fatal(err)
		}
		if err := e.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(records))/b.Elapsed().Seconds(), "records/s")
}
