package fleet

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/navarchos/pdm/internal/core"
	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/timeseries"
)

// gateHandler blocks every HandleRecord on a gate channel, simulating a
// slow consumer so tests can hold a shard mid-batch deterministically.
type gateHandler struct {
	gate <-chan struct{}
	n    uint64
}

func (h *gateHandler) HandleRecord(timeseries.Record) ([]detector.Alarm, error) {
	<-h.gate
	h.n++
	return nil, nil
}
func (h *gateHandler) HandleEvent(obd.Event) {}
func (h *gateHandler) ScoredSamples() uint64 { return h.n }

// TestEngineBackpressureBlocksAtQueueDepth pins the backpressure
// contract: with the shard queue full (QueueDepth batches) and the
// shard goroutine held inside a handler, the next batch-completing
// ingest must block — and must complete once the consumer drains.
func TestEngineBackpressureBlocksAtQueueDepth(t *testing.T) {
	const queueDepth = 2
	gate := make(chan struct{})
	e, err := NewEngine(Config{
		NewHandler: func(string) (Handler, error) {
			return &gateHandler{gate: gate}, nil
		},
		Shards:     1,
		BatchSize:  1, // every record is its own batch
		QueueDepth: queueDepth,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := timeseries.Record{VehicleID: "veh-0"}

	// First record: dequeued immediately, shard parks inside the handler.
	if err := e.IngestRecord(rec); err != nil {
		t.Fatal(err)
	}
	// The drain loop may pull one more queued batch into the shard's
	// local variable before the handler gate is reached, so give the
	// shard time to settle, then fill the queue to capacity.
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < queueDepth; i++ {
		if err := e.IngestRecord(rec); err != nil {
			t.Fatal(err)
		}
	}

	// Queue is full: the next ingest must block on the channel send.
	blocked := make(chan struct{})
	go func() {
		if err := e.IngestRecord(rec); err != nil {
			t.Error(err)
		}
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("ingest into a full shard queue returned without blocking")
	case <-time.After(50 * time.Millisecond):
	}

	// Release the consumer: the blocked producer must complete and every
	// record must be processed.
	close(gate)
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked ingest never completed after the consumer drained")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := e.Stats().RecordsIn, uint64(queueDepth+2); got != want {
		t.Fatalf("RecordsIn = %d, want %d", got, want)
	}
}

// TestEngineFlushDuringCheckpointBarrier runs Flush concurrently with a
// live checkpoint. The checkpoint barrier holds every ingest mutex
// while shards are parked; Flush must wait for the release instead of
// deadlocking or injecting a batch into the quiesced window, and no
// record may be lost or double-counted afterwards.
func TestEngineFlushDuringCheckpointBarrier(t *testing.T) {
	e, err := NewEngine(Config{
		NewConfig: func(string) (core.Config, error) { return testConfig(), nil },
		Shards:    2,
		BatchSize: 64, // large: records below stay pending until flushed
	})
	if err != nil {
		t.Fatal(err)
	}
	f := smallFleet()
	// Stage a partial batch on every shard.
	const staged = 40
	for i := 0; i < staged; i++ {
		r := f.Records[i%len(f.Records)]
		r.VehicleID = fmt.Sprintf("veh-%02d", i%8)
		if err := e.IngestRecord(r); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	var buf bytes.Buffer
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := e.Checkpoint(&buf); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		// Races the quiesce: lands either entirely before the barrier or
		// entirely after the release.
		e.Flush()
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Flush deadlocked against an in-flight checkpoint barrier")
	}
	if buf.Len() == 0 {
		t.Fatal("checkpoint wrote no data")
	}

	// More traffic after the barrier, then settle and audit the counts.
	for i := 0; i < staged; i++ {
		r := f.Records[i%len(f.Records)]
		r.VehicleID = fmt.Sprintf("veh-%02d", i%8)
		if err := e.IngestRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := e.Stats().RecordsIn, uint64(2*staged); got != want {
		t.Fatalf("RecordsIn = %d, want %d (lost or duplicated by the barrier race)", got, want)
	}
}

// TestEngineBatchPoolRecyclesUnderChurn pins the batch recycling
// contract: a long single-producer stream must reuse pooled batch
// buffers rather than allocating one per handoff — steady-state pool
// misses stay bounded by the queue capacity, not by the stream length.
func TestEngineBatchPoolRecyclesUnderChurn(t *testing.T) {
	const (
		queueDepth = 8
		batchSize  = 16
		records    = 8192
	)
	e, err := NewEngine(Config{
		NewHandler: func(string) (Handler, error) { return &countHandler{}, nil },
		Shards:     1,
		BatchSize:  batchSize,
		QueueDepth: queueDepth,
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		for i := 0; i < records/4; i++ {
			r := timeseries.Record{VehicleID: fmt.Sprintf("veh-%02d", i%8)}
			if err := e.IngestRecord(r); err != nil {
				t.Fatal(err)
			}
		}
		e.Flush()
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().RecordsIn; got != records {
		t.Fatalf("RecordsIn = %d, want %d", got, records)
	}
	if raceEnabled {
		// sync.Pool drops items on purpose under -race; the recycling
		// bound is only meaningful without the detector.
		t.Skip("pool recycling is deliberately degraded under -race")
	}
	handoffs := uint64(records / batchSize)
	// At most queueDepth+2 buffers are ever live at once (queued,
	// in-flight, pending); allow generous slack for Put/Get races and
	// the occasional GC-cleared pool, but a linear-in-handoffs number
	// means recycling is broken.
	allocated := e.poolNew.Load()
	if allocated > handoffs/4 {
		t.Fatalf("pool allocated %d fresh batches over %d handoffs; batch recycling is not engaging",
			allocated, handoffs)
	}
}
