package fleet

import (
	"errors"
	"fmt"
	"sort"

	"github.com/navarchos/pdm/internal/checkpoint"
)

// This file makes a single vehicle a first-class unit of checkpointable
// state. VehicleState is the movable representation — the same bytes
// whether it travels inside a whole-engine checkpoint stream, over an
// NVWIRE1 handoff frame between serve instances, or through an
// in-process Extract/Adopt pair — and the engine grows the two verbs
// the control plane's cordon/drain is built from:
//
//   - ExtractVehicle quiesces only the owning shard at a batch
//     boundary, snapshots the vehicle's handler (pipeline stages,
//     filter positions, trained fits, live thresholds) and removes it
//     from the fleet, leaving the vehicle cordoned so late records are
//     refused with a typed, retryable error instead of silently
//     growing a fresh diverging handler.
//   - AdoptVehicle quiesces the target shard, rebuilds the handler
//     from the engine's own configuration and restores the state into
//     it — the exact restore path a whole-engine checkpoint uses, so a
//     migrated vehicle's alarms stay bit-identical to an unmigrated
//     run.
//
// The whole-engine Checkpoint is itself written in terms of this
// codec ("extract every vehicle + engine header"), so there is one
// per-vehicle format, not two.

// Vehicle-availability states, carried in VehicleUnavailableError and
// the per-shard cordon map.
const (
	// StateCordoned marks a vehicle administratively fenced by Cordon:
	// its handler is still resident but ingest is refused until
	// Uncordon.
	StateCordoned = "cordoned"
	// StateMigrating marks a vehicle whose state has been (or is being)
	// extracted: ingest is refused here until another engine adopts it
	// — or this one re-adopts it.
	StateMigrating = "migrating"
)

// VehicleUnavailableError is returned by IngestRecord and IngestBatch
// when a record or event arrives for a vehicle that is cordoned or
// mid-handoff. It is a retryable condition, not a stream error: the
// producer should re-resolve the vehicle's placement (the control
// plane's table, or the serving front end's 409 hint) and resend.
// For IngestBatch the refusal is all-or-nothing per vehicle — either
// every one of a vehicle's items in the call was admitted or none was
// — so a retry of the refused vehicles cannot duplicate records.
type VehicleUnavailableError struct {
	// VehicleID is the first refused vehicle.
	VehicleID string
	// State is StateCordoned or StateMigrating.
	State string
	// Refused counts the items (records + events) the call refused,
	// across all unavailable vehicles.
	Refused int
}

// Error implements error.
func (e *VehicleUnavailableError) Error() string {
	return fmt.Sprintf("fleet: vehicle %s is %s (%d items refused); retry after the handoff completes",
		e.VehicleID, e.State, e.Refused)
}

// ErrUnknownVehicle is returned by ExtractVehicle for a vehicle the
// engine has never built a handler for.
var ErrUnknownVehicle = errors.New("fleet: no state for vehicle")

// ErrVehicleExists is returned by AdoptVehicle when the engine already
// holds a live handler for the vehicle.
var ErrVehicleExists = errors.New("fleet: vehicle already active")

// VehicleState is one vehicle's complete mutable state, detached from
// any engine: the opaque handler snapshot (transformer windows, filter
// positions, reference profiles, trained detector fits, threshold
// state — everything core.Pipeline.Snapshot captures) keyed by the
// vehicle's identity. It is the unit of placement: a VehicleState
// adopted by any engine with an equivalent configuration continues the
// vehicle's stream bit-identically, whatever the shard count or host.
type VehicleState struct {
	ID       string
	Snapshot []byte
}

// Encode serializes the state as the canonical per-vehicle payload —
// the same bytes a whole-engine checkpoint stores per vehicle section
// and an NVWIRE1 handoff frame carries.
func (vs *VehicleState) Encode() []byte {
	var b checkpoint.Buf
	b.String(vs.ID)
	b.Bytes64(vs.Snapshot)
	return b.Bytes()
}

// DecodeVehicleState parses one per-vehicle payload. Malformed input
// fails with ErrBadCheckpoint-wrapped errors, never a panic — the
// payload may arrive off the network.
func DecodeVehicleState(payload []byte) (VehicleState, error) {
	rb := checkpoint.NewRBuf(payload)
	vs := VehicleState{ID: rb.String(), Snapshot: rb.Bytes64()}
	if err := rb.Close(); err != nil {
		return VehicleState{}, fmt.Errorf("%w: vehicle state: %v", ErrBadCheckpoint, err)
	}
	return vs, nil
}

// quiesceShard parks one shard goroutine at a batch boundary: the
// shard's ingest mutex is held (blocking its producers), its pending
// batch is flushed, and a barrier envelope drains the queue — in-flight
// fits included — before the shard acknowledges and parks. Between
// quiesceShard and release the caller is the only goroutine touching
// that shard's handlers; every other shard keeps scoring. Callers obey
// the live-checkpoint restrictions scoped to this shard: no concurrent
// Replay or Close, and alarms drained when DropAlarms is unset.
func (e *Engine) quiesceShard(s *shard) (release func()) {
	s.mu.Lock()
	bar := &barrier{resume: make(chan struct{})}
	bar.ack.Add(1)
	if len(s.pending) > 0 {
		batch := s.pending
		s.pending = nil
		s.in <- batch
	}
	s.in <- []envelope{{bar: bar}}
	bar.ack.Wait()
	return func() {
		close(bar.resume)
		s.mu.Unlock()
	}
}

// setCordon records a vehicle's availability state. It holds the
// owning shard's ingest mutex around the fence write, and ordering
// matters: once setCordon returns, no producer can enqueue the
// vehicle's envelopes, and anything enqueued before sits ahead of any
// barrier a subsequent quiesceShard posts — so an extraction that
// cordons first observes every admitted record.
func (e *Engine) setCordon(id, state string) {
	s := e.shardFor(id)
	s.mu.Lock()
	setCordonLocked(s, id, state)
	s.mu.Unlock()
}

// setCordonLocked is setCordon with the shard's ingest mutex already
// held by the caller.
func setCordonLocked(s *shard, id, state string) {
	s.cordonMu.Lock()
	if s.cordon == nil {
		s.cordon = map[string]string{}
	}
	if _, ok := s.cordon[id]; !ok {
		s.cordonN.Add(1)
	}
	s.cordon[id] = state
	s.cordonMu.Unlock()
}

// swapCordonLocked sets a vehicle's availability state and returns
// the previous one ("" when the vehicle was serving), as a single
// operation under the shard's cordon lock. The caller holds the
// shard's ingest mutex.
func swapCordonLocked(s *shard, id, state string) (prev string) {
	s.cordonMu.Lock()
	if s.cordon == nil {
		s.cordon = map[string]string{}
	}
	prev = s.cordon[id]
	if prev == "" {
		s.cordonN.Add(1)
	}
	s.cordon[id] = state
	s.cordonMu.Unlock()
	return prev
}

// swapCordon is swapCordonLocked with the shard's ingest mutex taken:
// reading the previous fence and writing the new one are one atomic
// step, so a concurrent Cordon/Uncordon can never slip between the
// read and the write and be lost.
func (e *Engine) swapCordon(id, state string) (prev string) {
	s := e.shardFor(id)
	s.mu.Lock()
	prev = swapCordonLocked(s, id, state)
	s.mu.Unlock()
	return prev
}

// restoreCordon undoes a swapCordon(id, StateMigrating) after a failed
// extraction: prev is restored (or the fence cleared when prev was
// empty) only while the vehicle is still marked migrating — a
// Cordon/Uncordon that raced in after the swap wins over the restore
// instead of being resurrected or stomped.
func (e *Engine) restoreCordon(id, prev string) {
	s := e.shardFor(id)
	s.mu.Lock()
	s.cordonMu.Lock()
	if s.cordon[id] == StateMigrating {
		if prev == "" {
			delete(s.cordon, id)
			s.cordonN.Add(-1)
		} else {
			s.cordon[id] = prev
		}
	}
	s.cordonMu.Unlock()
	s.mu.Unlock()
}

// clearCordon removes a vehicle's availability mark.
func (e *Engine) clearCordon(id string) {
	s := e.shardFor(id)
	s.mu.Lock()
	clearCordonLocked(s, id)
	s.mu.Unlock()
}

// clearCordonLocked is clearCordon with the shard's ingest mutex
// already held by the caller.
func clearCordonLocked(s *shard, id string) {
	s.cordonMu.Lock()
	if _, ok := s.cordon[id]; ok {
		delete(s.cordon, id)
		s.cordonN.Add(-1)
	}
	s.cordonMu.Unlock()
}

// Cordon fences a vehicle: its handler stays resident and keeps any
// already-queued envelopes, but new ingest is refused with
// VehicleUnavailableError until Uncordon (or until another engine
// adopts the vehicle after an extraction). Cordoning an unknown
// vehicle is allowed — it pre-fences a vehicle expected to arrive.
func (e *Engine) Cordon(vehicleID string) { e.setCordon(vehicleID, StateCordoned) }

// Uncordon lifts a vehicle's fence.
func (e *Engine) Uncordon(vehicleID string) { e.clearCordon(vehicleID) }

// CordonState reports a vehicle's availability mark ("" when the
// vehicle is serving normally).
func (e *Engine) CordonState(vehicleID string) string {
	s := e.shardFor(vehicleID)
	s.cordonMu.Lock()
	st := s.cordon[vehicleID]
	s.cordonMu.Unlock()
	return st
}

// snapshotVehicle captures one handler as a movable VehicleState.
// Callers guarantee exclusive access to the handler (shard quiesced or
// engine closed).
func snapshotVehicle(id string, h Handler) (VehicleState, error) {
	sn, ok := h.(Snapshotter)
	if !ok {
		return VehicleState{}, fmt.Errorf("%w: vehicle %s handler %T", ErrNotSnapshottable, id, h)
	}
	snap, err := sn.Snapshot()
	if err != nil {
		return VehicleState{}, fmt.Errorf("fleet: snapshot vehicle %s: %w", id, err)
	}
	return VehicleState{ID: id, Snapshot: snap}, nil
}

// extractOwned removes a vehicle from a shard the caller owns and
// returns its state.
func (e *Engine) extractOwned(s *shard, id string) (VehicleState, error) {
	h, ok := s.handlers[id]
	if !ok {
		if s.skip[id] {
			return VehicleState{}, fmt.Errorf("fleet: extract vehicle %s: %w (vehicle is skipped)", id, ErrUnknownVehicle)
		}
		return VehicleState{}, fmt.Errorf("fleet: extract vehicle %s: %w", id, ErrUnknownVehicle)
	}
	vs, err := snapshotVehicle(id, h)
	if err != nil {
		return VehicleState{}, err
	}
	delete(s.handlers, id)
	s.vehicles.Add(-1)
	return vs, nil
}

// adoptOwned installs a VehicleState into a shard the caller owns,
// building the handler from the engine's own configuration and
// restoring the state into it — the same path a whole-engine restore
// takes, so adopted vehicles continue bit-identically.
func (e *Engine) adoptOwned(s *shard, vs VehicleState) error {
	if _, exists := s.handlers[vs.ID]; exists {
		return fmt.Errorf("fleet: adopt vehicle %s: %w", vs.ID, ErrVehicleExists)
	}
	if s.skip[vs.ID] {
		return fmt.Errorf("%w: vehicle %s is both active and skipped", ErrBadCheckpoint, vs.ID)
	}
	h, err := e.buildHandler(vs.ID)
	if err != nil {
		// ErrSkipVehicle included: a config that excludes a vehicle
		// cannot host that vehicle's state.
		return fmt.Errorf("fleet: adopt vehicle %s: %w", vs.ID, err)
	}
	sn, ok := h.(Snapshotter)
	if !ok {
		return fmt.Errorf("%w: vehicle %s handler %T", ErrNotSnapshottable, vs.ID, h)
	}
	if err := sn.Restore(vs.Snapshot); err != nil {
		return fmt.Errorf("fleet: adopt vehicle %s: %w", vs.ID, err)
	}
	s.handlers[vs.ID] = h
	s.vehicles.Add(1)
	return nil
}

// ExtractVehicle detaches one vehicle from a live engine: the vehicle
// is cordoned (late producers get VehicleUnavailableError), only the
// owning shard is quiesced at a batch boundary — the rest of the fleet
// keeps scoring — and the handler's state comes back as a movable
// VehicleState while the vehicle is removed here. The cordon mark
// stays behind (state "migrating") so records that keep arriving for
// the moved vehicle are refused with a retry hint rather than silently
// re-warming a fresh handler; AdoptVehicle on this engine lifts it.
//
// On a closed engine ExtractVehicle reads the stopped shard directly,
// under the same ownership contract as Checkpoint after Close.
func (e *Engine) ExtractVehicle(id string) (VehicleState, error) {
	s := e.shardFor(id)
	if e.closed.Load() {
		vs, err := e.extractOwned(s, id)
		if err != nil {
			return VehicleState{}, err
		}
		e.setCordon(id, StateMigrating)
		return vs, nil
	}
	// Cordon before quiescing: producers that got in first are flushed
	// ahead of the barrier and therefore included in the snapshot;
	// producers that come after are refused. The swap captures any
	// pre-existing fence atomically so the failure path can hand it
	// back.
	prev := e.swapCordon(id, StateMigrating)
	release := e.quiesceShard(s)
	vs, err := e.extractOwned(s, id)
	release()
	if err != nil {
		// A failed extraction must not wedge the vehicle's ingest; only
		// the migrating mark this call set is undone — an operator
		// fence, pre-existing or raced in since, stays.
		e.restoreCordon(id, prev)
		return VehicleState{}, err
	}
	return vs, nil
}

// AdoptVehicle attaches a VehicleState to this engine: the owning
// shard is quiesced at a batch boundary, the handler is rebuilt from
// this engine's configuration, the state restored into it, and any
// cordon mark lifted — from the release on, the vehicle's ingest and
// scoring continue here exactly where the source engine left off.
// Typical errors are typed: ErrVehicleExists for a double adoption,
// ErrNotSnapshottable for a configuration whose handlers cannot host
// state, the handler's own restore error for incompatible state.
func (e *Engine) AdoptVehicle(vs VehicleState) error {
	if e.closed.Load() {
		return ErrClosed
	}
	s := e.shardFor(vs.ID)
	release := e.quiesceShard(s)
	err := e.adoptOwned(s, vs)
	if err == nil {
		// Still under the shard's ingest mutex (held by the quiesce), so
		// the cordon lifts atomically with the handler becoming live.
		clearCordonLocked(s, vs.ID)
	}
	release()
	return err
}

// VehicleIDs returns the IDs of every vehicle with an active handler,
// sorted. On a live engine it takes a fleet-wide batch-boundary
// quiesce (the same consistency cut as StatsConsistent, with the same
// restrictions); on a closed engine it reads the stopped shards
// directly.
func (e *Engine) VehicleIDs() []string {
	if !e.closed.Load() {
		release := e.quiesce()
		defer release()
	}
	var ids []string
	for _, s := range e.shards {
		for id := range s.handlers {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}
