package fleet

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/navarchos/pdm/internal/core"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/timeseries"
	"github.com/navarchos/pdm/internal/transform"
)

// handlerStream is a small two-vehicle stream with one reset each.
func handlerStream() ([]timeseries.Record, []obd.Event) {
	base := time.Date(2023, 6, 1, 7, 0, 0, 0, time.UTC)
	var records []timeseries.Record
	for i := 0; i < 400; i++ {
		for _, v := range []string{"veh-1", "veh-2"} {
			var vals [obd.NumPIDs]float64
			vals[obd.EngineRPM] = 1500 + float64(i%29)*17
			vals[obd.Speed] = 45 + float64(i%13)
			vals[obd.CoolantTemp] = 88
			vals[obd.IntakeTemp] = 22
			vals[obd.MAPIntake] = 40 + float64(i%7)
			vals[obd.MAFAirFlowRate] = 10 + float64(i%5)
			records = append(records, timeseries.Record{
				VehicleID: v, Time: base.Add(time.Duration(i) * time.Minute), Values: vals,
			})
		}
	}
	events := []obd.Event{
		{VehicleID: "veh-1", Time: base.Add(200 * time.Minute), Type: obd.EventService},
		{VehicleID: "veh-2", Time: base.Add(250 * time.Minute), Type: obd.EventRepair},
	}
	return records, events
}

// TestEngineNewHandlerTraceCollection drives core.TraceCollectors through
// the sharded engine and checks the cached traces are identical to a
// serial single-vehicle transform pass, at any shard count.
func TestEngineNewHandlerTraceCollection(t *testing.T) {
	records, events := handlerStream()

	serial := func(vehicleID string) *core.TransformedTrace {
		tr, err := transform.New(transform.Correlation, 12)
		if err != nil {
			t.Fatal(err)
		}
		out := &core.TransformedTrace{}
		col, err := core.NewTraceCollector(vehicleID, core.TransformConfig{
			Transformer: tr,
			Filter:      func(*timeseries.Record) bool { return true },
		}, out)
		if err != nil {
			t.Fatal(err)
		}
		err = core.Merged(vehicleID, records, events,
			func(ev obd.Event) error { col.HandleEvent(ev); return nil },
			func(r timeseries.Record) error { _, err := col.HandleRecord(r); return err })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := map[string]*core.TransformedTrace{"veh-1": serial("veh-1"), "veh-2": serial("veh-2")}

	for _, shards := range []int{1, 4} {
		var mu sync.Mutex
		got := map[string]*core.TransformedTrace{}
		eng, err := NewEngine(Config{
			NewHandler: func(vehicleID string) (Handler, error) {
				tr, err := transform.New(transform.Correlation, 12)
				if err != nil {
					return nil, err
				}
				out := &core.TransformedTrace{}
				mu.Lock()
				got[vehicleID] = out
				mu.Unlock()
				return core.NewTraceCollector(vehicleID, core.TransformConfig{
					Transformer: tr,
					Filter:      func(*timeseries.Record) bool { return true },
				}, out)
			},
			Shards:     shards,
			DropAlarms: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Replay(records, events); err != nil {
			t.Fatal(err)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("shards=%d: %d traces, want 2", shards, len(got))
		}
		for v, tt := range got {
			if !reflect.DeepEqual(tt, want[v]) {
				t.Errorf("shards=%d: trace for %s differs from serial transform pass", shards, v)
			}
		}
		stats := eng.Stats()
		if stats.SamplesScored != uint64(len(want["veh-1"].Samples)+len(want["veh-2"].Samples)) {
			t.Errorf("shards=%d: SamplesScored = %d, want emitted-sample total", shards, stats.SamplesScored)
		}
		seen := 0
		eng.Handlers(func(string, Handler) { seen++ })
		if seen != 2 {
			t.Errorf("Handlers visited %d, want 2", seen)
		}
		// Trace collectors are not pipelines; Pipelines must skip them.
		eng.Pipelines(func(*core.Pipeline) { t.Error("Pipelines should not see TraceCollectors") })
	}
}

// TestEngineConfigFactoryExclusivity pins the exactly-one-factory rule.
func TestEngineConfigFactoryExclusivity(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Error("no factory should error")
	}
	cfgFn := func(string) (core.Config, error) { return core.Config{}, ErrSkipVehicle }
	hFn := func(string) (Handler, error) { return nil, ErrSkipVehicle }
	if _, err := NewEngine(Config{NewConfig: cfgFn, NewHandler: hFn}); err == nil {
		t.Error("both factories should error")
	}
}
