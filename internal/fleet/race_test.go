//go:build race

package fleet

// raceEnabled reports that the race detector is on: sync.Pool
// deliberately drops items under -race to shake out races, so tests
// asserting pool-recycling efficiency must not bound misses then.
const raceEnabled = true
