package fleet

import (
	"errors"
	"testing"

	"github.com/navarchos/pdm/internal/core"
	"github.com/navarchos/pdm/internal/detector"
)

// engineAlarmsMode replays the shared test fleet with the given fit
// mode and returns the sorted alarms.
func engineAlarmsMode(t *testing.T, syncFits bool, shards int) []detector.Alarm {
	t.Helper()
	f := smallFleet()
	e, err := NewEngine(Config{
		NewConfig: func(string) (core.Config, error) { return testConfig(), nil },
		Shards:    shards,
		BatchSize: 7,
		SyncFits:  syncFits,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []detector.Alarm
	done := make(chan struct{})
	go func() {
		defer close(done)
		for a := range e.Alarms() {
			out = append(out, a)
		}
	}()
	if err := e.Replay(f.Records, f.Events); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	sortAlarms(out)
	return out
}

// TestAsyncFitsMatchSyncFits is the asynchronous-refit determinism
// guarantee: parking a fitting vehicle's envelopes and replaying them
// after the fit must yield exactly the alarms of inline fitting, for any
// shard count.
func TestAsyncFitsMatchSyncFits(t *testing.T) {
	want := engineAlarmsMode(t, true, 1)
	if len(want) == 0 {
		t.Fatal("test fleet produced no alarms; equivalence check is vacuous")
	}
	for _, shards := range []int{1, 3} {
		got := engineAlarmsMode(t, false, shards)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: async %d alarms, sync %d", shards, len(got), len(want))
		}
		for i := range got {
			g, w := got[i], want[i]
			if g.VehicleID != w.VehicleID || !g.Time.Equal(w.Time) ||
				g.Channel != w.Channel || g.Score != w.Score || g.Threshold != w.Threshold {
				t.Fatalf("shards=%d: alarm %d differs:\n got %+v\nwant %+v", shards, i, g, w)
			}
		}
	}
}

// failingFitDetector scores nothing and fails its first Fit — the
// asynchronous error path must drop the vehicle exactly like an inline
// fit error, without wedging the shard.
type failingFitDetector struct{}

var errFitBoom = errors.New("fit boom")

func (failingFitDetector) Name() string          { return "failing" }
func (failingFitDetector) Fit([][]float64) error { return errFitBoom }
func (failingFitDetector) Score([]float64) ([]float64, error) {
	return nil, detector.ErrNotFitted
}
func (failingFitDetector) Channels() int          { return 1 }
func (failingFitDetector) ChannelNames() []string { return []string{"x"} }

// TestAsyncFitErrorDropsVehicle checks an asynchronous fit failure is
// surfaced through Err and the engine still drains cleanly.
func TestAsyncFitErrorDropsVehicle(t *testing.T) {
	f := smallFleet()
	e, err := NewEngine(Config{
		NewConfig: func(string) (core.Config, error) {
			cfg := testConfig()
			cfg.Detector = failingFitDetector{}
			return cfg, nil
		},
		Shards:    2,
		BatchSize: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range e.Alarms() {
		}
	}()
	if err := e.Replay(f.Records, f.Events); err != nil {
		t.Fatal(err)
	}
	err = e.Close()
	<-done
	if !errors.Is(err, errFitBoom) {
		t.Fatalf("Close error = %v, want wrapped errFitBoom", err)
	}
	if e.Stats().Vehicles != 0 {
		t.Fatalf("failed vehicles still active: %+v", e.Stats())
	}
}
