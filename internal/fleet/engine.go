// Package fleet implements a sharded, concurrent multi-vehicle
// streaming engine on top of the per-vehicle core.Pipeline — the
// production-scale driver the ROADMAP's fleet-level condition monitoring
// calls for.
//
// Vehicles are hashed to N shards. Each shard goroutine exclusively owns
// its vehicles' pipelines, so the scoring hot path takes no locks:
// synchronisation happens only at the edges, on the bounded per-shard
// batch channels (ingest backpressure) and the fan-in alarm channel.
// Within a shard, envelopes are processed strictly in arrival order, so
// feeding a chronologically merged stream (events before same-timestamp
// records, as core.RunVehicle orders them — Replay does this) makes the
// engine's per-vehicle behaviour bit-identical to a serial replay,
// whatever the shard count.
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/navarchos/pdm/internal/core"
	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/fitpool"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/obs"
	"github.com/navarchos/pdm/internal/timeseries"
)

// FitDeferrer is the optional handler seam behind asynchronous refits:
// handlers that support it (core.Pipeline does) raise profile-fill fits
// as pending closures instead of fitting inline, and the engine runs the
// closure on a fitpool worker while the shard keeps scoring its other
// vehicles. Envelopes for the fitting vehicle are parked and replayed in
// arrival order once the fit lands, so per-vehicle behaviour stays
// bit-identical to synchronous fits.
type FitDeferrer interface {
	SetDeferFits(bool)
	TakePendingFit() func() error
}

// ErrSkipVehicle can be returned by Config.NewConfig to tell the engine
// that a vehicle is not part of this run: its records and events are
// counted but otherwise ignored, and no pipeline is built for it.
var ErrSkipVehicle = errors.New("fleet: vehicle not in run set")

// ErrClosed is returned by ingestion methods after Close.
var ErrClosed = errors.New("fleet: engine closed")

// Handler processes one vehicle's stream elements. core.Pipeline is the
// production handler (transform + detect + threshold); core.TraceCollector
// runs just the transform stage, which is how the evaluation grid
// materialises each (transformation, vehicle) stream exactly once.
// Handlers are owned by a single shard goroutine and need no internal
// synchronisation.
type Handler interface {
	// HandleRecord feeds one raw record, returning any alarms raised.
	HandleRecord(timeseries.Record) ([]detector.Alarm, error)
	// HandleEvent feeds one maintenance event.
	HandleEvent(obd.Event)
	// ScoredSamples reports the handler's monotone output counter (scored
	// or emitted samples); the engine aggregates deltas into shard stats.
	ScoredSamples() uint64
}

// ProvenanceSink is implemented by handlers that can attribute the
// alarms they raise to an ingest batch (core.Pipeline implements it).
// The engine calls SetProvenance before HandleRecord: with the record's
// batch context and the shard's dequeue clock read on the traced path,
// and with (nil, zero) to clear stale context when untraced records
// follow traced ones. Handlers without the method simply never carry
// provenance — the engine probes with a type assertion, never requires
// it.
type ProvenanceSink interface {
	SetProvenance(bc *obs.BatchCtx, dequeue time.Time)
}

// Config assembles an Engine. Exactly one of NewConfig and NewHandler is
// required; everything else has defaults chosen for a laptop-scale
// deployment.
type Config struct {
	// NewConfig builds the pipeline configuration for a vehicle the
	// first time one of its records or events arrives. Return
	// ErrSkipVehicle to exclude the vehicle from the run. NewConfig is
	// called from shard goroutines, one call per vehicle; it must be
	// safe for concurrent use across vehicles.
	NewConfig func(vehicleID string) (core.Config, error)

	// NewHandler builds an arbitrary per-vehicle Handler instead of a
	// core.Pipeline — the seam that lets the same sharded engine drive
	// transform-only trace collection or custom stages. Same contract as
	// NewConfig: called once per vehicle from shard goroutines, return
	// ErrSkipVehicle to exclude a vehicle. Mutually exclusive with
	// NewConfig.
	NewHandler func(vehicleID string) (Handler, error)

	// Shards is the number of shard goroutines (default runtime.NumCPU).
	Shards int
	// QueueDepth is the per-shard channel capacity in batches (default
	// 256). A full queue blocks ingestion — that is the backpressure.
	QueueDepth int
	// BatchSize is the number of envelopes per batch (default 64).
	// Batching amortises channel synchronisation across records.
	BatchSize int
	// AlarmBuffer is the fan-in alarm channel capacity (default 1024).
	AlarmBuffer int
	// DropAlarms makes shards drop (and count) alarms when the fan-in
	// channel is full instead of blocking on it. Set it when alarms are
	// advisory; leave it unset when every alarm must be observed, and
	// drain Alarms() concurrently.
	DropAlarms bool
	// SyncFits forces profile-fill refits to run inline on the shard
	// goroutine (the pre-optimisation behaviour). By default fits of
	// FitDeferrer handlers run asynchronously on fitpool workers, so one
	// vehicle's expensive refit never serialises the rest of its shard's
	// batch; the fitting vehicle's envelopes are parked and replayed in
	// order when the fit completes, keeping per-vehicle alarms
	// bit-identical either way.
	SyncFits bool
	// Observer, when non-nil, registers the engine's fleet-level
	// metrics in the observer's registry: per-shard queue depth and
	// counters (collection-time callbacks, free on the hot path), a
	// batch-processing latency histogram and a checkpoint-duration
	// histogram. The same observer is typically also set on the
	// per-vehicle core.Config built by NewConfig, which instruments the
	// pipeline stages themselves. One registry should observe one
	// engine at a time; a newer engine's registration takes over the
	// callback series of an older one.
	Observer *obs.Observer
}

func (c *Config) validate() error {
	if c.NewConfig == nil && c.NewHandler == nil {
		return errors.New("fleet: Config requires NewConfig or NewHandler")
	}
	if c.NewConfig != nil && c.NewHandler != nil {
		return errors.New("fleet: Config requires exactly one of NewConfig and NewHandler")
	}
	if c.Shards <= 0 {
		c.Shards = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.AlarmBuffer <= 0 {
		c.AlarmBuffer = 1024
	}
	return nil
}

// envelope is one queued stream element: a record, an event, or a
// checkpoint barrier. prov is the shared provenance context of the
// ingest batch the element arrived in (nil on the Replay and
// per-record paths): one pointer per envelope, one allocation per
// frame, so tracing never adds per-record allocations.
type envelope struct {
	isEvent bool
	rec     timeseries.Record
	ev      obd.Event
	bar     *barrier
	prov    *obs.BatchCtx
}

// barrier pauses a shard at a batch boundary: the shard acknowledges
// arrival and then parks until the checkpoint releases it. While every
// shard is parked the checkpointing goroutine is the only one touching
// handler state.
type barrier struct {
	ack    sync.WaitGroup
	resume chan struct{}
}

// shard owns a disjoint subset of the fleet's pipelines. The struct is
// laid out in ownership bands with cache-line padding between them:
// producers mutate the ingest band (mu, pending) while the shard
// goroutine bumps the counter band on every envelope, and without the
// padding those writes false-share — each counter increment would
// bounce the line holding the ingest mutex across cores and vice
// versa, which is one of the ways BENCH_2's shards=2 run managed to be
// slower than shards=1.
type shard struct {
	// Read-only header, set once at construction: the shard's identity
	// and its channels. free is the shard's batch free list — consumer→
	// producer recycling that pairs each Put with a Get for the same
	// shard, so recycled batches never migrate through sync.Pool's
	// per-P caches (a producer on another P would miss there and
	// allocate; the misses are what poolNew counts). Padded from the
	// ingest band so producers hammering mu don't bounce the line the
	// consumer re-reads these pointers from.
	index int
	in    chan []envelope
	free  chan []envelope
	_     [64]byte

	// ingest band: touched by producer goroutines under mu.
	mu      sync.Mutex
	pending []envelope
	_       [64]byte

	// cordon band: the vehicle-availability fence behind Cordon and
	// ExtractVehicle. cordonMu guards the map; cordonN mirrors its size
	// so producers (under mu) and the shard goroutine (handler-build
	// path) both skip the lock entirely while no vehicle is fenced —
	// the steady state, which therefore costs one atomic load. The
	// fence gets its own mutex because the shard goroutine must be able
	// to consult it while a quiescer holds mu waiting for the barrier
	// acknowledgement. Setters additionally hold mu, which orders a new
	// fence against in-flight enqueues: envelopes admitted before the
	// fence sit ahead of any barrier a subsequent quiesce posts.
	cordonMu sync.Mutex
	cordon   map[string]string
	cordonN  atomic.Int64
	_        [64]byte

	// consumer band: owned by the shard goroutine, no synchronisation.
	handlers map[string]Handler
	skip     map[string]bool

	// Provenance tracking, also shard-goroutine-owned. lastProv is the
	// most recent batch context seen (pointer identity marks "same
	// frame"), lastDequeue the clock read taken when it first surfaced —
	// reused as every one of its records' dequeue time so tracing costs
	// one clock read per (shard, frame), not per record. sawProv stays
	// false until the first traced envelope, which keeps the untraced
	// deliver path (Replay, bit-identity gates, overhead gate) at a
	// single nil check.
	lastProv    *obs.BatchCtx
	lastDequeue time.Time
	sawProv     bool

	// Asynchronous refits. busy[id] exists exactly while a fit for
	// vehicle id is in flight; its value is the queue of envelopes that
	// arrived for the vehicle meanwhile, replayed in order when the fit
	// lands on fitDone. Both are touched only by the shard goroutine.
	busy    map[string][]envelope
	fitDone chan fitResult
	_       [64]byte

	// counter band: written by the shard goroutine per envelope, read
	// by Stats and the metrics callbacks.
	vehicles  atomic.Int64
	recordsIn atomic.Uint64
	eventsIn  atomic.Uint64
	scored    atomic.Uint64
	alarms    atomic.Uint64
	drops     atomic.Uint64
	_         [64]byte
}

// ShardStats is a point-in-time snapshot of one shard's counters.
type ShardStats struct {
	Shard         int
	Vehicles      int
	RecordsIn     uint64
	EventsIn      uint64
	SamplesScored uint64
	Alarms        uint64
	Drops         uint64
}

// EngineStats aggregates the per-shard snapshots.
type EngineStats struct {
	Shards        []ShardStats
	Vehicles      int
	RecordsIn     uint64
	EventsIn      uint64
	SamplesScored uint64
	Alarms        uint64
	Drops         uint64
}

// Engine is the sharded fleet driver. Ingestion methods are safe for
// concurrent use from any number of producers; per-vehicle processing
// order follows per-producer ingestion order.
type Engine struct {
	cfg       Config
	shards    []*shard
	alarmCh   chan detector.Alarm
	pool      sync.Pool     // *[]envelope batch recycling
	poolNew   atomic.Uint64 // batches allocated because the pool was empty
	stagePool sync.Pool     // *ingestStage per-producer batch staging
	wg        sync.WaitGroup

	batchH *obs.Histogram // per-batch processing latency (nil without observer)
	ckptH  *obs.Histogram // live checkpoint duration (nil without observer)

	closed atomic.Bool
	errMu  sync.Mutex
	err    error
}

// NewEngine builds and starts an engine; its shard goroutines run until
// Close.
func NewEngine(cfg Config) (*Engine, error) {
	e, err := newEngineStopped(cfg)
	if err != nil {
		return nil, err
	}
	e.start()
	return e, nil
}

// newEngineStopped builds the engine's shards without starting their
// goroutines, so checkpoint restore can pre-populate handler maps
// race-free before processing begins.
func newEngineStopped(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		shards:  make([]*shard, cfg.Shards),
		alarmCh: make(chan detector.Alarm, cfg.AlarmBuffer),
	}
	e.pool.New = func() any {
		e.poolNew.Add(1)
		b := make([]envelope, 0, cfg.BatchSize)
		return &b
	}
	for i := range e.shards {
		e.shards[i] = &shard{
			index:    i,
			in:       make(chan []envelope, cfg.QueueDepth),
			free:     make(chan []envelope, cfg.QueueDepth),
			handlers: map[string]Handler{},
			skip:     map[string]bool{},
			busy:     map[string][]envelope{},
			fitDone:  make(chan fitResult),
		}
	}
	e.registerMetrics()
	return e, nil
}

// registerMetrics publishes the engine's fleet-level metric families in
// the observer's registry. Everything except the two histograms is a
// collection-time callback over the shard atomics, so the shard loop
// pays nothing for them.
func (e *Engine) registerMetrics() {
	o := e.cfg.Observer
	if o == nil {
		return
	}
	reg := o.Registry()
	e.batchH = reg.Histogram("pdm_fleet_batch_seconds",
		"Shard batch processing latency (one batch = up to BatchSize envelopes).", obs.DefLatencyBuckets)
	e.ckptH = reg.Histogram("pdm_fleet_checkpoint_seconds",
		"Live checkpoint duration: barrier quiesce + state serialization.", obs.DefLatencyBuckets)
	reg.GaugeFunc("pdm_fleet_vehicles",
		"Vehicles with an active handler across all shards.",
		func() float64 {
			var n int64
			for _, s := range e.shards {
				n += s.vehicles.Load()
			}
			return float64(n)
		})
	for _, s := range e.shards {
		s := s
		l := obs.Label{Key: "shard", Value: strconv.Itoa(s.index)}
		reg.GaugeFunc("pdm_fleet_shard_queue_depth",
			"Queued batches per shard (capacity is QueueDepth; a full queue is the backpressure point).",
			func() float64 { return float64(len(s.in)) }, l)
		reg.CounterFunc("pdm_fleet_shard_records_total",
			"Raw records processed per shard.",
			func() float64 { return float64(s.recordsIn.Load()) }, l)
		reg.CounterFunc("pdm_fleet_shard_events_total",
			"Maintenance events processed per shard.",
			func() float64 { return float64(s.eventsIn.Load()) }, l)
		reg.CounterFunc("pdm_fleet_shard_samples_scored_total",
			"Transformed samples scored per shard.",
			func() float64 { return float64(s.scored.Load()) }, l)
		reg.CounterFunc("pdm_fleet_shard_alarms_total",
			"Alarms delivered to the fan-in channel per shard.",
			func() float64 { return float64(s.alarms.Load()) }, l)
		reg.CounterFunc("pdm_fleet_shard_alarm_drops_total",
			"Alarms dropped per shard because the fan-in channel was full (DropAlarms mode).",
			func() float64 { return float64(s.drops.Load()) }, l)
	}
}

// start launches the shard goroutines.
func (e *Engine) start() {
	for _, s := range e.shards {
		e.wg.Add(1)
		go e.run(s)
	}
}

// Alarms returns the fan-in alarm channel. It is closed by Close, after
// all shards have drained.
func (e *Engine) Alarms() <-chan detector.Alarm { return e.alarmCh }

// shardFor hashes a vehicle ID onto its owning shard (FNV-1a).
func (e *Engine) shardFor(vehicleID string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(vehicleID); i++ {
		h ^= uint64(vehicleID[i])
		h *= prime64
	}
	return e.shards[h%uint64(len(e.shards))]
}

// IngestRecord queues one record for its vehicle's shard, blocking when
// the shard's queue is full (backpressure). A cordoned or mid-handoff
// vehicle is refused with a typed *VehicleUnavailableError.
func (e *Engine) IngestRecord(r timeseries.Record) error {
	return e.ingest(envelope{rec: r}, r.VehicleID)
}

// IngestEvent queues one maintenance event for its vehicle's shard. An
// event ingested before a record is processed before it — callers feed
// streams chronologically with events first on equal timestamps, the
// same contract as core.RunVehicle (Replay does this automatically).
func (e *Engine) IngestEvent(ev obd.Event) error {
	return e.ingest(envelope{isEvent: true, ev: ev}, ev.VehicleID)
}

func (e *Engine) ingest(env envelope, vehicleID string) error {
	if e.closed.Load() {
		return ErrClosed
	}
	s := e.shardFor(vehicleID)
	s.mu.Lock()
	if s.cordonN.Load() != 0 {
		s.cordonMu.Lock()
		st, fenced := s.cordon[vehicleID]
		s.cordonMu.Unlock()
		if fenced {
			s.mu.Unlock()
			return &VehicleUnavailableError{VehicleID: vehicleID, State: st, Refused: 1}
		}
	}
	if s.pending == nil {
		s.pending = e.getBatch(s)
	}
	s.pending = append(s.pending, env)
	if len(s.pending) >= e.cfg.BatchSize {
		batch := s.pending
		s.pending = nil
		// The send stays under the ingest mutex so concurrent producers
		// cannot reorder a shard's batches; this is the backpressure
		// point, not the hot path.
		s.in <- batch
	}
	s.mu.Unlock()
	return nil
}

// ingestStage is the producer-local staging area IngestBatch reuses
// across calls: one envelope run per shard, so a whole batch crosses
// each shard's ingest mutex in a single critical section instead of one
// lock round trip per record.
type ingestStage struct {
	perShard [][]envelope
}

// IngestBatch queues a whole decoded batch — records and events merged
// chronologically, events before same-timestamp records, exactly as
// Replay orders them — routing it to shards in one pass. Compared with
// per-record IngestRecord calls it pays the shard hash once per item
// but the ingest mutex only once per (shard, batch), which is what
// keeps a network ingest path off the engine's synchronisation edges.
// Each input slice must be time-sorted (the usual telemetry upload
// shape); unsorted batches are handled but fall back to a sorting
// merge.
//
// Backpressure semantics match IngestRecord: a full shard queue blocks
// the call (holding only that shard's ingest mutex) until the shard
// drains. Like IngestRecord it leaves a partial batch pending — call
// Flush to push tails out when latency matters more than batching.
// Safe for concurrent use; per-shard envelope order follows
// per-producer call order.
//
// Items for a cordoned or mid-handoff vehicle are refused with a typed
// *VehicleUnavailableError. The refusal is all-or-nothing per vehicle
// (a vehicle's items all hash to one shard and are filtered before any
// of them is enqueued) but not per call: other vehicles' items in the
// same batch are admitted normally, and the error reports how many
// items were refused so the producer can retry exactly those vehicles
// against their new placement.
func (e *Engine) IngestBatch(records []timeseries.Record, events []obd.Event) error {
	return e.ingestBatch(records, events, nil)
}

// IngestBatchCtx is IngestBatch with provenance: every envelope of the
// batch carries bc by pointer, so alarms raised by these records can
// report which ingest batch caused them and how long the path took.
// bc.Enqueue is stamped here, once, when the batch enters the shard
// queues — before the first channel send, so the channel's
// happens-before edge publishes the stamp to every consumer (a fast
// shard can start delivering while other shards' envelopes are still
// being enqueued). Producer blocking on a full queue therefore counts
// as queue wait. bc must not be mutated by the caller afterwards. A
// nil bc degrades to IngestBatch.
func (e *Engine) IngestBatchCtx(records []timeseries.Record, events []obd.Event, bc *obs.BatchCtx) error {
	return e.ingestBatch(records, events, bc)
}

func (e *Engine) ingestBatch(records []timeseries.Record, events []obd.Event, bc *obs.BatchCtx) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if len(records) == 0 && len(events) == 0 {
		return nil
	}
	st, _ := e.stagePool.Get().(*ingestStage)
	if st == nil {
		st = &ingestStage{perShard: make([][]envelope, len(e.shards))}
	}
	push := func(env envelope, vehicleID string) error {
		env.prov = bc
		i := e.shardFor(vehicleID).index
		st.perShard[i] = append(st.perShard[i], env)
		return nil
	}
	err := core.Merged("", records, events,
		func(ev obd.Event) error { return push(envelope{isEvent: true, ev: ev}, ev.VehicleID) },
		func(r timeseries.Record) error { return push(envelope{rec: r}, r.VehicleID) })
	var refusal VehicleUnavailableError
	if err == nil {
		if bc != nil {
			// Stamped before the first channel send: consumers read
			// Enqueue through the channel's happens-before edge.
			bc.Enqueue = time.Now()
		}
		for i, staged := range st.perShard {
			if len(staged) > 0 {
				e.enqueueStaged(e.shards[i], staged, &refusal)
			}
		}
		if bc != nil {
			e.cfg.Observer.TracedBatch()
		}
	}
	for i := range st.perShard {
		st.perShard[i] = st.perShard[i][:0]
	}
	e.stagePool.Put(st)
	if err == nil && refusal.Refused > 0 {
		return &refusal
	}
	return err
}

// getBatch returns an empty batch for shard s: the shard's own free
// list first, then the shared pool. The free list is the steady-state
// path — every processed batch comes back through it — so the
// sync.Pool (whose per-P caches a cross-P producer misses, and whose
// victim cache each GC clears) only sees startup and overflow traffic.
func (e *Engine) getBatch(s *shard) []envelope {
	select {
	case b := <-s.free:
		return b
	default:
		return *(e.pool.Get().(*[]envelope))
	}
}

// putBatch recycles a processed batch onto the shard's free list,
// overflowing into the shared pool when producers are not taking
// batches back fast enough (e.g. after a Replay finished).
func (e *Engine) putBatch(s *shard, batch []envelope) {
	batch = batch[:0]
	select {
	case s.free <- batch:
	default:
		e.pool.Put(&batch)
	}
}

// envID returns the vehicle an envelope belongs to.
func envID(env *envelope) string {
	if env.isEvent {
		return env.ev.VehicleID
	}
	return env.rec.VehicleID
}

// enqueueStaged appends one shard's staged envelopes to its pending
// batch under a single mutex acquisition, flushing full batches into
// the queue as they fill — the same BatchSize chunking and blocking
// send as the per-record path, amortised over the run. When the shard
// has cordoned vehicles, their items are filtered out — before any of
// them is enqueued, so per-vehicle admission stays all-or-nothing —
// and counted into refusal.
func (e *Engine) enqueueStaged(s *shard, staged []envelope, refusal *VehicleUnavailableError) {
	s.mu.Lock()
	if s.cordonN.Load() != 0 {
		s.cordonMu.Lock()
		kept := staged[:0]
		for i := range staged {
			id := envID(&staged[i])
			if st, fenced := s.cordon[id]; fenced {
				if refusal.VehicleID == "" {
					refusal.VehicleID = id
					refusal.State = st
				}
				refusal.Refused++
				continue
			}
			kept = append(kept, staged[i])
		}
		s.cordonMu.Unlock()
		staged = kept
	}
	for len(staged) > 0 {
		if s.pending == nil {
			s.pending = e.getBatch(s)
		}
		free := e.cfg.BatchSize - len(s.pending)
		if free > len(staged) {
			free = len(staged)
		}
		s.pending = append(s.pending, staged[:free]...)
		staged = staged[free:]
		if len(s.pending) >= e.cfg.BatchSize {
			batch := s.pending
			s.pending = nil
			s.in <- batch
		}
	}
	s.mu.Unlock()
}

// Flush pushes every shard's partially filled batch into its queue.
func (e *Engine) Flush() {
	for _, s := range e.shards {
		s.mu.Lock()
		if len(s.pending) > 0 {
			batch := s.pending
			s.pending = nil
			s.in <- batch
		}
		s.mu.Unlock()
	}
}

// Replay feeds whole record and event streams through the engine in
// chronological order — events before same-timestamp records, exactly as
// core.RunVehicle merges them — and flushes. Replay must be the only
// producer while it runs: it batches per shard in producer-local buffers
// with no per-record locking, which is what lets a single replaying
// goroutine saturate many scoring shards. It does not Close the engine,
// so streams can be replayed back to back.
func (e *Engine) Replay(records []timeseries.Record, events []obd.Event) error {
	if e.closed.Load() {
		return ErrClosed
	}
	// Push out anything queued via IngestRecord/IngestEvent first so
	// batches stay ordered behind it.
	e.Flush()
	local := make([][]envelope, len(e.shards))
	// Adaptive batch sizing: batch boundaries carry no semantics (shards
	// process envelopes in order either way), so the producer trades
	// latency for handoff amortisation per shard. A backed-up shard
	// queue means the consumer is the bottleneck — double the batch so
	// each channel operation moves more work; an empty queue means the
	// producer is — shrink back toward BatchSize so the shard is not
	// left idle waiting for a huge batch to fill.
	caps := make([]int, len(e.shards))
	for i := range caps {
		caps[i] = e.cfg.BatchSize
	}
	// The growth ceiling is bounded on both axes: never more than 16
	// batches' worth of envelopes in one send, and never more than a
	// quarter of the queue's total envelope capacity — so an adapted
	// producer still leaves the consumer a queue of several batches to
	// drain opportunistically, instead of one giant batch that
	// serialises the pipeline behind a single channel handoff.
	maxCap := e.cfg.BatchSize * 16
	if lim := e.cfg.BatchSize * e.cfg.QueueDepth / 4; lim > e.cfg.BatchSize && maxCap > lim {
		maxCap = lim
	}
	push := func(env envelope, vehicleID string) error {
		s := e.shardFor(vehicleID)
		i := s.index
		if local[i] == nil {
			local[i] = e.getBatch(s)
		}
		local[i] = append(local[i], env)
		if len(local[i]) >= caps[i] {
			s.in <- local[i]
			local[i] = nil
			if q := len(s.in); q > e.cfg.QueueDepth/4 {
				if c := caps[i] * 2; c <= maxCap {
					caps[i] = c
				}
			} else if q <= 1 && caps[i] > e.cfg.BatchSize {
				// Near-empty, not just empty: a queue hovering at one
				// batch is already consumer-bound enough that a big
				// batch only adds producer-side latency.
				caps[i] /= 2
			}
		}
		return nil
	}
	err := core.Merged("", records, events,
		func(ev obd.Event) error { return push(envelope{isEvent: true, ev: ev}, ev.VehicleID) },
		func(r timeseries.Record) error { return push(envelope{rec: r}, r.VehicleID) })
	for i, batch := range local {
		if len(batch) > 0 {
			e.shards[i].in <- batch
		}
	}
	return err
}

// Close flushes pending batches, stops every shard, closes the alarm
// channel and returns the first pipeline or configuration error the run
// encountered (nil on a clean run). Producers must have stopped
// ingesting before Close is called; Close only synchronises with the
// consumer side.
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return e.Err()
	}
	e.Flush()
	for _, s := range e.shards {
		close(s.in)
	}
	e.wg.Wait()
	close(e.alarmCh)
	return e.Err()
}

// Err returns the first error recorded by any shard (sticky).
func (e *Engine) Err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.err
}

func (e *Engine) setErr(err error) {
	e.errMu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.errMu.Unlock()
}

// Stats snapshots the per-shard counters. Safe to call at any time from
// any goroutine.
//
// Consistency semantics: each counter is read atomically, but the
// group is not — a shard mid-batch may have counted a record in
// RecordsIn whose scored samples or alarms are not yet in
// SamplesScored/Alarms, and different shards are read at slightly
// different instants. Totals are exact once the engine is closed (or
// quiesced). Use StatsConsistent for a cross-counter-consistent cut of
// a live engine.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{Shards: make([]ShardStats, len(e.shards))}
	for i, s := range e.shards {
		ss := ShardStats{
			Shard:         i,
			Vehicles:      int(s.vehicles.Load()),
			RecordsIn:     s.recordsIn.Load(),
			EventsIn:      s.eventsIn.Load(),
			SamplesScored: s.scored.Load(),
			Alarms:        s.alarms.Load(),
			Drops:         s.drops.Load(),
		}
		st.Shards[i] = ss
		st.Vehicles += ss.Vehicles
		st.RecordsIn += ss.RecordsIn
		st.EventsIn += ss.EventsIn
		st.SamplesScored += ss.SamplesScored
		st.Alarms += ss.Alarms
		st.Drops += ss.Drops
	}
	return st
}

// StatsConsistent snapshots the per-shard counters at a batch
// boundary: it reuses the checkpoint barrier to park every shard
// between batches, reads the counters while nothing is in flight, and
// releases the fleet. The returned stats are therefore a consistent
// cut — every ingested element is either fully reflected (record,
// derived samples, alarms) or not at all.
//
// It shares the live-checkpoint restrictions: do not call it
// concurrently with Replay or Close, and keep draining Alarms() while
// it runs when DropAlarms is unset. On a closed engine it is plain
// Stats (already exact). Cost is one fleet quiesce — micro to
// milliseconds — so prefer Stats for dashboards polling at high rates.
func (e *Engine) StatsConsistent() EngineStats {
	if e.closed.Load() {
		return e.Stats()
	}
	release := e.quiesce()
	st := e.Stats()
	release()
	return st
}

// quiesce parks every shard goroutine at a batch boundary and blocks
// producers on the ingest mutexes. It returns the release function;
// between quiesce and release the caller is the only goroutine
// touching handler state. Callers must obey the live-checkpoint
// restrictions (no concurrent Replay/Close, alarms drained).
func (e *Engine) quiesce() (release func()) {
	for _, s := range e.shards {
		s.mu.Lock()
	}
	bar := &barrier{resume: make(chan struct{})}
	bar.ack.Add(len(e.shards))
	for _, s := range e.shards {
		if len(s.pending) > 0 {
			batch := s.pending
			s.pending = nil
			s.in <- batch
		}
		s.in <- []envelope{{bar: bar}}
	}
	// Every shard drains its queue up to the barrier, then parks.
	bar.ack.Wait()
	return func() {
		close(bar.resume)
		for _, s := range e.shards {
			s.mu.Unlock()
		}
	}
}

// Pipelines calls fn for every core.Pipeline the engine has built, shard
// by shard (handlers of other types are skipped). It must only be used
// after Close: handlers are owned by shard goroutines while the engine
// runs.
func (e *Engine) Pipelines(fn func(*core.Pipeline)) {
	for _, s := range e.shards {
		for _, h := range s.handlers {
			if p, ok := h.(*core.Pipeline); ok {
				fn(p)
			}
		}
	}
}

// Handlers calls fn for every handler the engine has built, shard by
// shard. Same ownership contract as Pipelines: only after Close.
func (e *Engine) Handlers(fn func(vehicleID string, h Handler)) {
	for _, s := range e.shards {
		for id, h := range s.handlers {
			fn(id, h)
		}
	}
}

// fitResult is an asynchronous fit completion, delivered back to the
// owning shard goroutine.
type fitResult struct {
	vehicleID string
	err       error
}

// maxDrainBatches bounds how many already-queued batches a shard
// processes per wakeup before re-checking fitDone and the stop signal.
const maxDrainBatches = 8

// run is the shard loop: the lock-free hot path. It exclusively owns
// s.handlers, so pipeline calls need no synchronisation; asynchronous
// fit completions re-enter the loop through s.fitDone and are therefore
// landed by the same goroutine that owns the handler.
//
// Two receive paths keep channel overhead off the throughput-bound
// profile: while no fit is in flight nothing can arrive on fitDone (a
// completion is only ever sent for a vehicle currently in s.busy), so
// the loop blocks on a plain channel receive instead of a two-case
// select; and after each processed batch it opportunistically drains up
// to maxDrainBatches more batches that are already queued, so a shard
// running behind its producers stays on-CPU instead of parking and
// re-waking per batch.
func (e *Engine) run(s *shard) {
	defer e.wg.Done()
	for {
		var batch []envelope
		var ok bool
		if len(s.busy) == 0 {
			batch, ok = <-s.in
		} else {
			select {
			case batch, ok = <-s.in:
			case res := <-s.fitDone:
				e.finishFit(s, res)
				continue
			}
		}
		if !ok {
			e.drainFits(s)
			return
		}
		e.runBatch(s, batch)
	drain:
		for n := 0; n < maxDrainBatches && len(s.busy) == 0; n++ {
			select {
			case batch, ok = <-s.in:
				if !ok {
					e.drainFits(s)
					return
				}
				e.runBatch(s, batch)
			default:
				break drain
			}
		}
	}
}

func (e *Engine) runBatch(s *shard, batch []envelope) {
	var batchStart time.Time
	if e.batchH != nil {
		batchStart = time.Now()
	}
	sawBarrier := false
	for i := range batch {
		env := &batch[i]
		if env.bar != nil {
			sawBarrier = true
			// Checkpoint barrier: a checkpoint must observe fully
			// settled handler state, so in-flight fits are drained
			// (replaying their parked envelopes) before the shard
			// acknowledges and parks at this batch boundary.
			e.drainFits(s)
			env.bar.ack.Done()
			<-env.bar.resume
			continue
		}
		e.processEnv(s, env)
	}
	// Barrier batches spend their time parked waiting on the
	// checkpointer; recording that wait would drown the histogram.
	if e.batchH != nil && !sawBarrier {
		e.batchH.Observe(time.Since(batchStart).Seconds())
	}
	e.putBatch(s, batch)
}

// processEnv routes one envelope: parked when its vehicle has a fit in
// flight (preserving arrival order), delivered otherwise.
func (e *Engine) processEnv(s *shard, env *envelope) {
	id := env.rec.VehicleID
	if env.isEvent {
		id = env.ev.VehicleID
	}
	// The busy map is empty except while a fit is in flight; the len
	// check keeps the per-envelope map lookup off the common path.
	if len(s.busy) != 0 {
		if parked, inFlight := s.busy[id]; inFlight {
			s.busy[id] = append(parked, *env)
			return
		}
	}
	e.deliver(s, env, id)
}

// deliver feeds one envelope to its vehicle's handler and, when the
// handler raised a deferred fit, launches the fit on a fitpool worker
// and marks the vehicle busy.
func (e *Engine) deliver(s *shard, env *envelope, id string) {
	if env.isEvent {
		s.eventsIn.Add(1)
		if h, ok := e.handlerFor(s, id); ok {
			h.HandleEvent(env.ev)
		}
		return
	}
	s.recordsIn.Add(1)
	h, ok := e.handlerFor(s, id)
	if !ok {
		return
	}
	if env.prov != nil {
		if env.prov != s.lastProv {
			// First envelope of a new traced frame on this shard: one
			// clock read covers the whole frame's dequeue time, and the
			// frame's queue wait is observed once.
			s.lastProv = env.prov
			s.lastDequeue = time.Now()
			s.sawProv = true
			e.cfg.Observer.ObserveQueueWait(s.lastDequeue.Sub(env.prov.Enqueue))
		}
		if ps, ok := h.(ProvenanceSink); ok {
			ps.SetProvenance(env.prov, s.lastDequeue)
		}
	} else if s.sawProv {
		// A shard that has ever delivered traced records must clear a
		// handler's provenance before untraced ones, or an untraced
		// record's alarm would inherit the previous frame's context.
		// Shards that never saw provenance never take this branch, so
		// Replay-only runs keep the bare hot path.
		if ps, ok := h.(ProvenanceSink); ok {
			ps.SetProvenance(nil, time.Time{})
		}
	}
	before := h.ScoredSamples()
	alarms, err := h.HandleRecord(env.rec)
	s.scored.Add(h.ScoredSamples() - before)
	if err != nil {
		e.failVehicle(s, id, err)
		return
	}
	for _, a := range alarms {
		if e.cfg.DropAlarms {
			select {
			case e.alarmCh <- a:
				s.alarms.Add(1)
			default:
				s.drops.Add(1)
			}
		} else {
			e.alarmCh <- a
			s.alarms.Add(1)
		}
	}
	if e.cfg.SyncFits {
		return
	}
	fd, ok := h.(FitDeferrer)
	if !ok {
		return
	}
	fit := fd.TakePendingFit()
	if fit == nil {
		return
	}
	s.busy[id] = nil // in flight; parked envelopes append here
	go func() {
		fitpool.Acquire()
		err := fit()
		fitpool.Release()
		s.fitDone <- fitResult{vehicleID: id, err: err}
	}()
}

// failVehicle drops a vehicle after a handler error, exactly as the
// synchronous path always has: record the error, forget the handler,
// skip the vehicle's future envelopes.
func (e *Engine) failVehicle(s *shard, id string, err error) {
	e.setErr(fmt.Errorf("fleet: vehicle %s: %w", id, err))
	delete(s.handlers, id)
	s.skip[id] = true
	s.vehicles.Add(-1)
}

// finishFit lands one asynchronous fit completion: a failed fit drops
// the vehicle like an inline fit error would, and either way the
// envelopes parked during the fit replay in arrival order. A replayed
// envelope may raise the vehicle's next fit, re-parking the remainder.
func (e *Engine) finishFit(s *shard, res fitResult) {
	parked := s.busy[res.vehicleID]
	delete(s.busy, res.vehicleID)
	if res.err != nil {
		e.failVehicle(s, res.vehicleID, res.err)
	}
	for i := range parked {
		e.processEnv(s, &parked[i])
	}
}

// drainFits blocks until the shard has no fit in flight, landing each
// completion (and its parked replay) as it arrives.
func (e *Engine) drainFits(s *shard) {
	for len(s.busy) > 0 {
		e.finishFit(s, <-s.fitDone)
	}
}

// handlerFor returns the shard's handler for a vehicle, building it on
// first contact. Skipped and previously failed vehicles return false.
func (e *Engine) handlerFor(s *shard, vehicleID string) (Handler, bool) {
	if h, ok := s.handlers[vehicleID]; ok {
		return h, true
	}
	if s.skip[vehicleID] {
		return nil, false
	}
	// Note the build path deliberately has no cordon check: an envelope
	// only reaches the shard goroutine if it was admitted before the
	// vehicle's fence went up (the fence is set under the ingest mutex),
	// and such envelopes are flushed ahead of any extraction barrier —
	// so building a first handler here is always legitimate, and an
	// extracted vehicle can never be re-warmed through this path.
	h, err := e.buildHandler(vehicleID)
	if err != nil {
		if !errors.Is(err, ErrSkipVehicle) {
			e.setErr(fmt.Errorf("fleet: configure vehicle %s: %w", vehicleID, err))
		}
		s.skip[vehicleID] = true
		return nil, false
	}
	s.handlers[vehicleID] = h
	s.vehicles.Add(1)
	return h, true
}

// buildHandler constructs a vehicle's handler through whichever factory
// the config provides, enabling deferred fits on handlers that support
// them unless SyncFits pins the engine to inline fitting. Checkpoint
// restore also builds handlers here, so a restored fleet inherits the
// same fit mode.
func (e *Engine) buildHandler(vehicleID string) (Handler, error) {
	h, err := e.newHandler(vehicleID)
	if err != nil {
		return nil, err
	}
	if !e.cfg.SyncFits {
		if fd, ok := h.(FitDeferrer); ok {
			fd.SetDeferFits(true)
		}
	}
	return h, nil
}

func (e *Engine) newHandler(vehicleID string) (Handler, error) {
	if e.cfg.NewHandler != nil {
		h, err := e.cfg.NewHandler(vehicleID)
		if err != nil {
			return nil, err
		}
		if h == nil {
			return nil, errors.New("fleet: NewHandler returned nil handler")
		}
		return h, nil
	}
	cfg, err := e.cfg.NewConfig(vehicleID)
	if err != nil {
		return nil, err
	}
	return core.NewPipeline(vehicleID, cfg)
}
