package fleet

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/navarchos/pdm/internal/checkpoint"
)

// This file implements whole-fleet checkpoint/restore on top of the
// per-handler snapshot seam. The state/config split mirrors
// core.Pipeline's: a checkpoint stream carries only mutable runtime
// state (per-vehicle handler snapshots, the skip set, counter totals),
// while configuration — transformers, detectors, thresholds, shard
// count, batch sizes — is supplied again at restore time through a
// Config. Because state is keyed by vehicle ID and placement is
// recomputed with shardFor, a checkpoint taken at one shard count
// restores into an engine with any other shard count.

// Snapshotter is the optional Handler extension the fleet checkpoint
// requires: Snapshot captures the handler's mutable state and Restore
// loads it into a freshly configured handler of the same type.
// core.Pipeline implements it.
type Snapshotter interface {
	Snapshot() ([]byte, error)
	Restore(data []byte) error
}

// ErrNotSnapshottable is returned by Checkpoint when a vehicle's
// handler does not implement Snapshotter (core.TraceCollector, say),
// and by NewEngineFromCheckpoint when the restored configuration
// builds such a handler.
var ErrNotSnapshottable = errors.New("fleet: handler does not support snapshot/restore")

// ErrBadCheckpoint is returned when a checkpoint stream decodes at the
// container level but violates the fleet's semantic invariants
// (duplicate vehicles, unknown sections, malformed section payloads).
var ErrBadCheckpoint = errors.New("fleet: malformed checkpoint")

// Checkpoint section names.
const (
	statsSection   = "stats"
	skipSection    = "skip"
	vehicleSection = "vehicle"
)

// Checkpoint writes the engine's mutable state to w as a versioned
// checkpoint stream.
//
// On a running engine it quiesces the fleet first: every shard's
// ingest mutex is held (blocking producers), pending batches are
// flushed, and a barrier envelope parks each shard goroutine at a
// batch boundary, so the serialized state is a consistent cut — every
// element ingested before Checkpoint is reflected, nothing ingested
// after it is. Processing resumes when Checkpoint returns.
// Restrictions on the live path: Checkpoint must not run concurrently
// with Replay (Replay bypasses the ingest mutexes) or with Close, and
// when DropAlarms is unset the caller must keep draining Alarms()
// while Checkpoint runs — shards may need to deliver alarms before
// they can reach the barrier.
//
// On a closed engine Checkpoint serializes directly under the same
// ownership contract as Pipelines: the shards have stopped and the
// caller owns the handlers.
func (e *Engine) Checkpoint(w io.Writer) error {
	if e.closed.Load() {
		return e.writeCheckpoint(w)
	}
	var start time.Time
	if e.ckptH != nil {
		start = time.Now()
	}
	// After quiesce, this goroutine is the only one touching handler
	// state until release.
	release := e.quiesce()
	err := e.writeCheckpoint(w)
	release()
	if e.ckptH != nil {
		e.ckptH.Observe(time.Since(start).Seconds())
	}
	return err
}

// writeCheckpoint serializes counters, the skip set and every
// handler's snapshot. Callers guarantee exclusive access to shard
// state (barrier quiesce or closed engine).
func (e *Engine) writeCheckpoint(w io.Writer) error {
	enc := checkpoint.NewEncoder(w)

	var stats checkpoint.Buf
	var recs, evs, scored, alarms, drops uint64
	for _, s := range e.shards {
		recs += s.recordsIn.Load()
		evs += s.eventsIn.Load()
		scored += s.scored.Load()
		alarms += s.alarms.Load()
		drops += s.drops.Load()
	}
	stats.Uint64(recs)
	stats.Uint64(evs)
	stats.Uint64(scored)
	stats.Uint64(alarms)
	stats.Uint64(drops)
	if err := enc.Section(statsSection, stats.Bytes()); err != nil {
		return err
	}

	var skipIDs []string
	for _, s := range e.shards {
		for id := range s.skip {
			skipIDs = append(skipIDs, id)
		}
	}
	sort.Strings(skipIDs)
	var sb checkpoint.Buf
	sb.Int(len(skipIDs))
	for _, id := range skipIDs {
		sb.String(id)
	}
	if err := enc.Section(skipSection, sb.Bytes()); err != nil {
		return err
	}

	type entry struct {
		id string
		h  Handler
	}
	var entries []entry
	for _, s := range e.shards {
		for id, h := range s.handlers {
			entries = append(entries, entry{id, h})
		}
	}
	// Sorted vehicle order makes the stream deterministic for a given
	// fleet state, whatever the shard count.
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	for _, en := range entries {
		// A whole-engine checkpoint is "extract every vehicle": each
		// section body is exactly the movable VehicleState payload a
		// handoff frame carries, so there is one per-vehicle codec.
		vs, err := snapshotVehicle(en.id, en.h)
		if err != nil {
			return err
		}
		if err := enc.Section(vehicleSection, vs.Encode()); err != nil {
			return err
		}
	}
	return enc.Flush()
}

// NewEngineFromCheckpoint builds an engine from cfg, restores the
// checkpoint stream r into it and starts it. cfg must describe the
// same per-vehicle processing as the checkpointed run (each handler's
// Restore validates its own state/config compatibility) but is free to
// change the engine-level deployment: shard count, batch size, queue
// depth. Restored vehicles are re-placed by hashing their IDs over the
// new shard set; counter totals are credited to shard 0 so EngineStats
// totals continue across the restart.
//
// Typed failures: container-level problems surface the checkpoint
// package's errors (ErrBadMagic, ErrTruncated, FutureVersionError,
// ErrCorrupt inside SectionError); fleet-level violations wrap
// ErrBadCheckpoint; a configuration that cannot host the state
// surfaces ErrNotSnapshottable or the handler's own restore error.
func NewEngineFromCheckpoint(r io.Reader, cfg Config) (*Engine, error) {
	e, err := newEngineStopped(cfg)
	if err != nil {
		return nil, err
	}
	dec := checkpoint.NewDecoder(r)
	seen := map[string]bool{}
	for {
		name, payload, err := dec.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		switch name {
		case statsSection:
			rb := checkpoint.NewRBuf(payload)
			recs := rb.Uint64()
			evs := rb.Uint64()
			scored := rb.Uint64()
			alarms := rb.Uint64()
			drops := rb.Uint64()
			if err := rb.Close(); err != nil {
				return nil, fmt.Errorf("%w: stats section: %v", ErrBadCheckpoint, err)
			}
			s0 := e.shards[0]
			s0.recordsIn.Add(recs)
			s0.eventsIn.Add(evs)
			s0.scored.Add(scored)
			s0.alarms.Add(alarms)
			s0.drops.Add(drops)
		case skipSection:
			rb := checkpoint.NewRBuf(payload)
			n := rb.Int()
			// Each entry needs at least its 8-byte length prefix; a
			// hostile count cannot drive a long loop.
			if n < 0 || n*8 > len(payload) {
				return nil, fmt.Errorf("%w: skip section claims %d entries", ErrBadCheckpoint, n)
			}
			for i := 0; i < n; i++ {
				id := rb.String()
				if rb.Err() != nil {
					break
				}
				if seen[id] {
					return nil, fmt.Errorf("%w: vehicle %s is both active and skipped", ErrBadCheckpoint, id)
				}
				e.shardFor(id).skip[id] = true
			}
			if err := rb.Close(); err != nil {
				return nil, fmt.Errorf("%w: skip section: %v", ErrBadCheckpoint, err)
			}
		case vehicleSection:
			vs, err := DecodeVehicleState(payload)
			if err != nil {
				return nil, err
			}
			if seen[vs.ID] {
				return nil, fmt.Errorf("%w: duplicate vehicle %s", ErrBadCheckpoint, vs.ID)
			}
			// Restoring a vehicle is adopting it: the same build + restore
			// path ExtractVehicle/AdoptVehicle migration takes.
			if err := e.adoptOwned(e.shardFor(vs.ID), vs); err != nil {
				return nil, err
			}
			seen[vs.ID] = true
		default:
			return nil, fmt.Errorf("%w: unknown section %q", ErrBadCheckpoint, name)
		}
	}
	e.start()
	return e, nil
}
