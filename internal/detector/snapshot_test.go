package detector_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/eval"
)

// makeRef builds a deterministic reference profile.
func makeRef(rng *rand.Rand, rows, dim int) [][]float64 {
	ref := make([][]float64, rows)
	for i := range ref {
		ref[i] = make([]float64, dim)
		for c := range ref[i] {
			ref[i][c] = rng.NormFloat64()
		}
	}
	return ref
}

// TestDetectorSnapshotRoundTrip fits every technique, scores a stream
// prefix, freezes the detector, restores the snapshot into a freshly
// constructed instance and verifies the restored detector scores the
// stream suffix bit-identically to the uninterrupted original. This is
// the per-technique leg of the checkpoint/restore contract: Fit-time
// randomness must not be needed at restore time, and streaming state
// (Grand's martingale, TranAD's window) must survive the round-trip.
func TestDetectorSnapshotRoundTrip(t *testing.T) {
	const (
		dim  = 5
		rows = 60
		pre  = 25
		post = 25
		seed = 42
	)
	techniques := append(eval.PaperTechniques(), eval.ExtensionTechniques()...)
	for _, tech := range techniques {
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			ref := makeRef(rng, rows, dim)
			stream := makeRef(rng, pre+post, dim)

			orig, err := eval.NewDetector(tech, nil, seed)
			if err != nil {
				t.Fatal(err)
			}
			if err := orig.Fit(ref); err != nil {
				t.Fatalf("Fit: %v", err)
			}
			for _, x := range stream[:pre] {
				if _, err := orig.Score(x); err != nil {
					t.Fatalf("Score: %v", err)
				}
			}

			snap, err := orig.(detector.Snapshotter).Snapshot()
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			restored, err := eval.NewDetector(tech, nil, seed)
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.(detector.Snapshotter).Restore(snap); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if got, want := restored.Channels(), orig.Channels(); got != want {
				t.Fatalf("Channels = %d, want %d", got, want)
			}

			for i, x := range stream[pre:] {
				a, err := orig.Score(x)
				if err != nil {
					t.Fatalf("original Score: %v", err)
				}
				b, err := restored.Score(x)
				if err != nil {
					t.Fatalf("restored Score: %v", err)
				}
				if len(a) != len(b) {
					t.Fatalf("channel count diverged: %d vs %d", len(a), len(b))
				}
				for c := range a {
					if math.Float64bits(a[c]) != math.Float64bits(b[c]) {
						t.Fatalf("sample %d channel %d: original %v, restored %v", i, c, a[c], b[c])
					}
				}
			}
		})
	}
}

// TestDetectorSnapshotRejectsForeign feeds each technique's snapshot to
// every OTHER technique: all must refuse with an error, never panic or
// silently accept.
func TestDetectorSnapshotRejectsForeign(t *testing.T) {
	const dim, rows, seed = 5, 40, 7
	rng := rand.New(rand.NewSource(3))
	ref := makeRef(rng, rows, dim)
	techniques := append(eval.PaperTechniques(), eval.ExtensionTechniques()...)

	snaps := make(map[eval.Technique][]byte)
	for _, tech := range techniques {
		d, err := eval.NewDetector(tech, nil, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Fit(ref); err != nil {
			t.Fatal(err)
		}
		snap, err := d.(detector.Snapshotter).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		snaps[tech] = snap
	}
	for _, victim := range techniques {
		for _, donor := range techniques {
			if victim == donor {
				continue
			}
			d, err := eval.NewDetector(victim, nil, seed)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.(detector.Snapshotter).Restore(snaps[donor]); err == nil {
				t.Fatalf("%s accepted a %s snapshot", victim, donor)
			}
		}
	}
	// Truncated and empty payloads must also error, never panic.
	for _, tech := range techniques {
		d, _ := eval.NewDetector(tech, nil, seed)
		snap := snaps[tech]
		for _, cut := range []int{0, 1, len(snap) / 2, len(snap) - 1} {
			if err := d.(detector.Snapshotter).Restore(snap[:cut]); err == nil {
				t.Fatalf("%s accepted a snapshot truncated to %d bytes", tech, cut)
			}
		}
	}
}

// TestUnfittedDetectorSnapshotRoundTrip checks the unfitted state also
// round-trips: a snapshot taken before Fit restores to a detector that
// still refuses to score.
func TestUnfittedDetectorSnapshotRoundTrip(t *testing.T) {
	techniques := append(eval.PaperTechniques(), eval.ExtensionTechniques()...)
	for _, tech := range techniques {
		d, err := eval.NewDetector(tech, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := d.(detector.Snapshotter).Snapshot()
		if err != nil {
			t.Fatalf("%s unfitted Snapshot: %v", tech, err)
		}
		restored, _ := eval.NewDetector(tech, nil, 1)
		if err := restored.(detector.Snapshotter).Restore(snap); err != nil {
			t.Fatalf("%s unfitted Restore: %v", tech, err)
		}
		if _, err := restored.Score(make([]float64, 5)); err == nil {
			t.Fatalf("%s scored after restoring an unfitted snapshot", tech)
		}
	}
}
