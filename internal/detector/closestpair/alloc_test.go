package closestpair

import (
	"math/rand"
	"testing"
)

// fittedDetector builds a detector fitted on a 45×15 reference — the
// complete solution's shape (correlation features, windowed profile).
func fittedDetector(tb testing.TB) (*Detector, []float64, []float64) {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	ref := make([][]float64, 45)
	for i := range ref {
		row := make([]float64, 15)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		ref[i] = row
	}
	d := New(nil)
	if err := d.Fit(ref); err != nil {
		tb.Fatal(err)
	}
	x := make([]float64, 15)
	for j := range x {
		x[j] = rng.NormFloat64()
	}
	return d, x, make([]float64, 15)
}

// TestScoreIntoZeroAlloc pins the acceptance criterion: the steady-state
// closest-pair scoring fast path performs no heap allocation.
func TestScoreIntoZeroAlloc(t *testing.T) {
	d, x, dst := fittedDetector(t)
	allocs := testing.AllocsPerRun(1000, func() {
		if err := d.ScoreInto(x, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ScoreInto allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkScoreInto measures the allocation-free scoring fast path;
// allocs/op must report 0.
func BenchmarkScoreInto(b *testing.B) {
	d, x, dst := fittedDetector(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.ScoreInto(x, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScore measures the allocating interface path for contrast.
func BenchmarkScore(b *testing.B) {
	d, x, _ := fittedDetector(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Score(x); err != nil {
			b.Fatal(err)
		}
	}
}
