// Package closestpair implements the paper's winning technique
// (Section 3.3): per-feature nearest-neighbour distance against the
// reference profile. Each feature of a transformed sample is scored by
// its distance to the closest value of that feature anywhere in Ref,
// yielding one score channel per feature and therefore directly
// explainable alarms.
//
// The per-feature formulation reduces each query to a binary search in a
// sorted slice, which is why this detector is an order of magnitude
// faster than its competitors (Table 1 of the paper).
package closestpair

import (
	"sort"

	"github.com/navarchos/pdm/internal/detector"
)

// Detector scores each feature by distance to its nearest reference
// value. The zero value is usable after Fit.
type Detector struct {
	names  []string
	sorted [][]float64 // per feature: ascending reference values
	loo    [][]float64 // per reference sample: leave-one-out scores
}

// New returns a closest-pair detector. featureNames labels the score
// channels (pass the transformer's FeatureNames); it may be nil, in
// which case numbered labels are generated at Fit time.
func New(featureNames []string) *Detector {
	return &Detector{names: featureNames}
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "closest-pair" }

// Fit implements detector.Detector: it indexes each feature column of
// the reference profile for O(log n) nearest-value queries.
func (d *Detector) Fit(ref [][]float64) error {
	if len(ref) == 0 {
		return detector.ErrEmptyReference
	}
	dim := len(ref[0])
	d.sorted = make([][]float64, dim)
	for c := 0; c < dim; c++ {
		col := make([]float64, len(ref))
		for i, row := range ref {
			if len(row) != dim {
				return detector.ErrDimension
			}
			col[i] = row[c]
		}
		sort.Float64s(col)
		d.sorted[c] = col
	}
	if d.names == nil || len(d.names) != dim {
		d.names = detector.NumberedChannels(dim)
	}
	// Leave-one-out self-calibration scores: for each reference sample
	// and channel, the distance to the nearest OTHER reference value.
	d.loo = make([][]float64, len(ref))
	for i, row := range ref {
		s := make([]float64, dim)
		for c, v := range row {
			s[c] = nearestGapLOO(d.sorted[c], v)
		}
		d.loo[i] = s
	}
	return nil
}

// LOOScores implements detector.SelfCalibrator.
func (d *Detector) LOOScores() [][]float64 { return d.loo }

// Score implements detector.Detector.
func (d *Detector) Score(x []float64) ([]float64, error) {
	out := make([]float64, len(x))
	if err := d.ScoreInto(x, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ScoreInto implements detector.IntoScorer: the allocation-free scoring
// fast path. Each channel is a binary search in a sorted slice, so a
// steady-state score costs O(dim·log n) with zero heap traffic.
func (d *Detector) ScoreInto(x, dst []float64) error {
	if d.sorted == nil {
		return detector.ErrNotFitted
	}
	if len(x) != len(d.sorted) || len(dst) != len(d.sorted) {
		return detector.ErrDimension
	}
	for c, v := range x {
		dst[c] = nearestGap(d.sorted[c], v)
	}
	return nil
}

// Channels implements detector.Detector.
func (d *Detector) Channels() int { return len(d.sorted) }

// ChannelNames implements detector.Detector.
func (d *Detector) ChannelNames() []string { return d.names }

// nearestGap returns the distance from v to the closest element of the
// ascending slice col (which is non-empty).
func nearestGap(col []float64, v float64) float64 {
	i := sort.SearchFloat64s(col, v)
	best := -1.0
	if i < len(col) {
		best = col[i] - v
	}
	if i > 0 {
		if d := v - col[i-1]; best < 0 || d < best {
			best = d
		}
	}
	return best
}

// nearestGapLOO returns the distance from reference value v to its
// nearest OTHER element in col (v itself is a member of col). A
// duplicated value has distance 0.
func nearestGapLOO(col []float64, v float64) float64 {
	i := sort.SearchFloat64s(col, v) // first index with col[i] >= v
	// Count occurrences of v starting at i.
	j := i
	for j < len(col) && col[j] == v {
		j++
	}
	if j-i > 1 {
		return 0 // duplicate: another sample has the same value
	}
	best := -1.0
	if j < len(col) {
		best = col[j] - v
	}
	if i > 0 {
		if d := v - col[i-1]; best < 0 || d < best {
			best = d
		}
	}
	if best < 0 {
		return 0 // single-element column: no other value exists
	}
	return best
}
