package closestpair

import (
	"github.com/navarchos/pdm/internal/checkpoint"
	"github.com/navarchos/pdm/internal/detector"
)

// snapshotTag identifies closest-pair payloads among the detector
// snapshot formats.
const snapshotTag = uint8(10)

// Snapshot implements detector.Snapshotter: the per-feature sorted
// reference columns, channel names and leave-one-out calibration scores
// — the detector's entire post-Fit state.
func (d *Detector) Snapshot() ([]byte, error) {
	var b checkpoint.Buf
	b.Uint8(snapshotTag)
	b.Int(len(d.names))
	for _, n := range d.names {
		b.String(n)
	}
	b.Float64Rows(d.sorted)
	b.Float64Rows(d.loo)
	return b.Bytes(), nil
}

// Restore implements detector.Snapshotter.
func (d *Detector) Restore(data []byte) error {
	r := checkpoint.NewRBuf(data)
	if r.Uint8() != snapshotTag {
		return detector.ErrBadSnapshot
	}
	numNames := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if numNames < 0 || numNames > 1<<20 {
		return detector.ErrBadSnapshot
	}
	names := make([]string, numNames)
	for i := range names {
		names[i] = r.String()
	}
	sorted := r.Float64Rows()
	loo := r.Float64Rows()
	if err := r.Close(); err != nil {
		return err
	}
	// A fitted detector always has one sorted column per channel, all
	// the same length; enforce the invariants ScoreInto relies on.
	for _, col := range sorted {
		if len(col) == 0 {
			return detector.ErrBadSnapshot
		}
	}
	if sorted != nil && len(names) != len(sorted) {
		return detector.ErrBadSnapshot
	}
	for _, row := range loo {
		if len(row) != len(sorted) {
			return detector.ErrBadSnapshot
		}
	}
	d.names = names
	if numNames == 0 {
		d.names = nil // unfitted snapshot restores to unfitted state
	}
	d.sorted = sorted
	d.loo = loo
	return nil
}
