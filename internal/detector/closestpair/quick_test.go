package closestpair

import (
	"math"
	"testing"
	"testing/quick"
)

// TestQuickScoreProperties checks, for arbitrary reference sets and
// queries: scores are non-negative and finite, reference members score
// exactly zero, and scores are monotone in the query's distance beyond
// the reference hull.
func TestQuickScoreProperties(t *testing.T) {
	f := func(refRaw [12]float64, q float64) bool {
		q = math.Remainder(q, 1e6)
		if math.IsNaN(q) {
			q = 0
		}
		ref := make([][]float64, len(refRaw))
		for i, v := range refRaw {
			v = math.Remainder(v, 1e6)
			if math.IsNaN(v) {
				v = 0
			}
			ref[i] = []float64{v}
		}
		d := New(nil)
		if err := d.Fit(ref); err != nil {
			return false
		}
		// Non-negative, finite.
		s, err := d.Score([]float64{q})
		if err != nil || s[0] < 0 || math.IsNaN(s[0]) || math.IsInf(s[0], 0) {
			return false
		}
		// Members score zero.
		for _, r := range ref {
			sm, err := d.Score([]float64{r[0]})
			if err != nil || sm[0] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickLOOConsistency checks that every leave-one-out calibration
// score equals the score of that sample against a reference set with one
// matching value removed.
func TestQuickLOOConsistency(t *testing.T) {
	f := func(refRaw [9]float64) bool {
		ref := make([][]float64, len(refRaw))
		for i, v := range refRaw {
			v = math.Remainder(v, 1e3)
			if math.IsNaN(v) {
				v = 0
			}
			ref[i] = []float64{v}
		}
		d := New(nil)
		if err := d.Fit(ref); err != nil {
			return false
		}
		loo := d.LOOScores()
		if len(loo) != len(ref) {
			return false
		}
		for i := range ref {
			// Build the reference without sample i and score it.
			rest := make([][]float64, 0, len(ref)-1)
			for j := range ref {
				if j != i {
					rest = append(rest, ref[j])
				}
			}
			d2 := New(nil)
			if err := d2.Fit(rest); err != nil {
				return false
			}
			want, err := d2.Score(ref[i])
			if err != nil {
				return false
			}
			if math.Abs(loo[i][0]-want[0]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
