package closestpair

import (
	"math/rand"
	"testing"

	"github.com/navarchos/pdm/internal/detector"
)

func TestFitScoreBasics(t *testing.T) {
	d := New([]string{"a", "b"})
	if _, err := d.Score([]float64{1, 2}); err != detector.ErrNotFitted {
		t.Error("unfitted Score should error")
	}
	ref := [][]float64{{1, 10}, {2, 20}, {3, 30}}
	if err := d.Fit(ref); err != nil {
		t.Fatal(err)
	}
	if d.Channels() != 2 {
		t.Errorf("Channels = %d", d.Channels())
	}
	if names := d.ChannelNames(); names[0] != "a" || names[1] != "b" {
		t.Errorf("ChannelNames = %v", names)
	}
	// Exact member: zero scores.
	s, err := d.Score([]float64{2, 20})
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 0 || s[1] != 0 {
		t.Errorf("member score = %v, want zeros", s)
	}
	// Between values: distance to nearer one.
	s, _ = d.Score([]float64{2.4, 14})
	if diff := s[0] - 0.4; diff > 1e-12 || diff < -1e-12 { // |2.4-2|
		t.Errorf("s[0] = %v, want 0.4", s[0])
	}
	if s[1] != 4 { // |14-10|
		t.Errorf("s[1] = %v, want 4", s[1])
	}
	// Outside the range: distance to extreme.
	s, _ = d.Score([]float64{-1, 100})
	if s[0] != 2 || s[1] != 70 {
		t.Errorf("outside scores = %v, want [2 70]", s)
	}
	if _, err := d.Score([]float64{1}); err != detector.ErrDimension {
		t.Error("dimension mismatch should error")
	}
}

func TestFitErrors(t *testing.T) {
	d := New(nil)
	if err := d.Fit(nil); err != detector.ErrEmptyReference {
		t.Error("empty ref should error")
	}
	if err := d.Fit([][]float64{{1, 2}, {3}}); err != detector.ErrDimension {
		t.Error("ragged ref should error")
	}
	// Nil names fall back to numbered channels.
	if err := d.Fit([][]float64{{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	names := d.ChannelNames()
	if names[0] != "feature-0" || names[2] != "feature-2" {
		t.Errorf("fallback names = %v", names)
	}
}

func TestRefit(t *testing.T) {
	d := New(nil)
	if err := d.Fit([][]float64{{0}, {100}}); err != nil {
		t.Fatal(err)
	}
	s1, _ := d.Score([]float64{50})
	if s1[0] != 50 {
		t.Errorf("pre-refit score = %v", s1)
	}
	if err := d.Fit([][]float64{{49}, {51}}); err != nil {
		t.Fatal(err)
	}
	s2, _ := d.Score([]float64{50})
	if s2[0] != 1 {
		t.Errorf("post-refit score = %v, want 1", s2)
	}
}

func TestScoreIsMinDistanceProperty(t *testing.T) {
	// Property: the score equals the true minimum |x - ref_i| computed
	// by brute force, for random data.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		ref := make([][]float64, n)
		for i := range ref {
			ref[i] = []float64{rng.NormFloat64() * 10}
		}
		d := New(nil)
		if err := d.Fit(ref); err != nil {
			t.Fatal(err)
		}
		q := rng.NormFloat64() * 15
		s, _ := d.Score([]float64{q})
		best := -1.0
		for _, r := range ref {
			diff := q - r[0]
			if diff < 0 {
				diff = -diff
			}
			if best < 0 || diff < best {
				best = diff
			}
		}
		if diff := s[0] - best; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("score %v != brute-force min %v", s[0], best)
		}
	}
}

func TestAnomalousFeatureGetsHighChannel(t *testing.T) {
	// Reference: correlations near +1 on channel 0, near 0 on channel 1.
	var ref [][]float64
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		ref = append(ref, []float64{0.95 + rng.Float64()*0.05, rng.Float64()*0.1 - 0.05})
	}
	d := New([]string{"corr(rpm,speed)", "corr(rpm,coolant)"})
	if err := d.Fit(ref); err != nil {
		t.Fatal(err)
	}
	// A fault flips channel 0 toward 0.2: only channel 0 should score high.
	s, _ := d.Score([]float64{0.2, 0.0})
	if s[0] < 0.5 {
		t.Errorf("faulty channel score = %v, want large", s[0])
	}
	if s[1] > 0.06 {
		t.Errorf("healthy channel score = %v, want small", s[1])
	}
}
