package tranad

import (
	"math"
	"math/rand"
	"testing"

	"github.com/navarchos/pdm/internal/fitpool"
)

func synthRef(rng *rand.Rand, n, dim int) [][]float64 {
	ref := make([][]float64, n)
	for i := range ref {
		row := make([]float64, dim)
		for j := range row {
			row[j] = math.Sin(float64(i)/7+float64(j)) + 0.1*rng.NormFloat64()
		}
		ref[i] = row
	}
	return ref
}

// TestFastFitBitIdenticalToLegacy trains the default (Batch 1) fast path
// and the LegacyFitKernels path on the same reference and requires
// Float64bits-identical weights and streaming scores: the kernel rewrite
// must not move the optimisation trajectory by a single bit, which is
// what keeps the grid-cell equivalence gate deterministic.
func TestFastFitBitIdenticalToLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := synthRef(rng, 120, 4)

	legacy := New(Config{Epochs: 3, Seed: 5, LegacyFitKernels: true})
	fast := New(Config{Epochs: 3, Seed: 5})
	if err := legacy.Fit(ref); err != nil {
		t.Fatal(err)
	}
	if err := fast.Fit(ref); err != nil {
		t.Fatal(err)
	}

	lp, fp := legacy.params(), fast.params()
	if len(lp) != len(fp) {
		t.Fatalf("param count differs: %d vs %d", len(lp), len(fp))
	}
	for pi := range lp {
		for j := range lp[pi].W {
			if math.Float64bits(lp[pi].W[j]) != math.Float64bits(fp[pi].W[j]) {
				t.Fatalf("param %d weight %d differs: legacy %v fast %v",
					pi, j, lp[pi].W[j], fp[pi].W[j])
			}
		}
	}

	scoreRng := rand.New(rand.NewSource(6))
	for i := 0; i < 40; i++ {
		x := make([]float64, 4)
		for j := range x {
			x[j] = scoreRng.NormFloat64()
		}
		sl, err := legacy.Score(x)
		if err != nil {
			t.Fatal(err)
		}
		sf, err := fast.Score(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(sl[0]) != math.Float64bits(sf[0]) {
			t.Fatalf("score %d differs: legacy %v fast %v", i, sl[0], sf[0])
		}
	}
}

// TestFitTolEarlyStop pins the opt-in cold-fit training budget: a
// loose FitTol must actually cut epochs (different weights than the
// full run), the truncation must land exactly on an epoch boundary
// (the stopped weights bit-match a full run with a smaller Epochs
// budget — early stop is epoch truncation, nothing else), and the
// stopped model must still score.
func TestFitTolEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ref := synthRef(rng, 120, 4)

	flat := func(cfg Config) []float64 {
		d := New(cfg)
		if err := d.Fit(ref); err != nil {
			t.Fatal(err)
		}
		var w []float64
		for _, p := range d.params() {
			w = append(w, p.W...)
		}
		return w
	}
	same := func(a, b []float64) bool {
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				return false
			}
		}
		return true
	}

	const epochs = 6
	full := flat(Config{Epochs: epochs, Seed: 5})
	stopped := flat(Config{Epochs: epochs, Seed: 5, FitTol: 0.9})

	if same(full, stopped) {
		t.Fatal("FitTol=0.9 did not stop early: weights identical to the full run")
	}
	boundary := -1
	for e := 1; e < epochs; e++ {
		if same(stopped, flat(Config{Epochs: e, Seed: 5})) {
			boundary = e
			break
		}
	}
	if boundary < 0 {
		t.Fatal("early-stopped weights match no truncated epoch budget: FitTol is not pure epoch truncation")
	}
	t.Logf("FitTol=0.9 stopped after %d of %d epochs", boundary, epochs)

	d := New(Config{Epochs: 6, Seed: 5, FitTol: 0.9})
	if err := d.Fit(ref); err != nil {
		t.Fatal(err)
	}
	s, err := d.Score(ref[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(s[0]) || math.IsInf(s[0], 0) {
		t.Fatalf("early-stopped model scored %v", s[0])
	}
}

// TestMinibatchDeterministicAcrossWorkers checks the minibatch contract:
// the trained weights depend on Batch but not on how many fitpool
// workers computed the per-window gradients.
func TestMinibatchDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := synthRef(rng, 100, 3)

	train := func(workers int) []float64 {
		defer fitpool.SetWorkers(fitpool.Workers())
		fitpool.SetWorkers(workers)
		d := New(Config{Epochs: 2, Seed: 9, Batch: 4})
		if err := d.Fit(ref); err != nil {
			t.Fatal(err)
		}
		var flat []float64
		for _, p := range d.params() {
			flat = append(flat, p.W...)
		}
		return flat
	}

	serial := train(1)
	parallel := train(4)
	if len(serial) != len(parallel) {
		t.Fatalf("weight count differs: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if math.Float64bits(serial[i]) != math.Float64bits(parallel[i]) {
			t.Fatalf("weight %d depends on worker count: 1w %v 4w %v", i, serial[i], parallel[i])
		}
	}
}

// TestMinibatchTrainsUsableModel is a smoke check that Batch > 1
// produces a model that still scores and separates an obvious level
// shift from the training regime.
func TestMinibatchTrainsUsableModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ref := synthRef(rng, 150, 3)
	d := New(Config{Epochs: 4, Seed: 2, Batch: 8})
	if err := d.Fit(ref); err != nil {
		t.Fatal(err)
	}
	var normal, shifted float64
	for i := 0; i < 60; i++ {
		s, err := d.Score(ref[i%len(ref)])
		if err != nil {
			t.Fatal(err)
		}
		if i >= 20 {
			normal += s[0]
		}
	}
	for i := 0; i < 40; i++ {
		x := []float64{8, -8, 8}
		s, err := d.Score(x)
		if err != nil {
			t.Fatal(err)
		}
		if i >= 10 {
			shifted += s[0]
		}
	}
	if !(shifted/30 > normal/40) {
		t.Fatalf("level shift not separated: normal %v shifted %v", normal/40, shifted/30)
	}
}
