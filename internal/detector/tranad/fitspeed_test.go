package tranad

import (
	"math/rand"
	"testing"
)

func mkref(n, dim int) [][]float64 {
	rng := rand.New(rand.NewSource(1))
	ref := make([][]float64, n)
	for i := range ref {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		ref[i] = row
	}
	return ref
}

func benchCfg(legacy bool) Config {
	cfg := Config{Window: 16, DModel: 48, Heads: 4, Epochs: 3, MaxWindows: 256, Seed: 1, LegacyFitKernels: legacy}
	if !legacy {
		cfg.Batch = 8
	}
	return cfg
}

func BenchmarkFitLegacy(b *testing.B) {
	ref := mkref(200, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := New(benchCfg(true))
		if err := d.Fit(ref); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitFast(b *testing.B) {
	ref := mkref(200, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := New(benchCfg(false))
		if err := d.Fit(ref); err != nil {
			b.Fatal(err)
		}
	}
}
