// Package tranad implements a transformer-based reconstruction anomaly
// detector in the style of TranAD (Tuli, Casale & Jennings, VLDB 2022),
// the deep-learning comparator of the paper's step 3: a self-attention
// encoder over a short window of samples feeds two decoders; the second
// decoder is self-conditioned on the first one's reconstruction error
// (the "focus score"), and the anomaly score of a sample is the averaged
// reconstruction error of both decoders on the window's last position.
//
// Compared to the reference PyTorch implementation the model is
// miniaturised (small model dimension, single encoder block, focus score
// treated as a constant input during backpropagation) so that training
// stays tractable on a CPU in pure Go; what the paper relies on — a
// reconstruction model that learns healthy signal structure from Ref and
// produces elevated errors on behavioural change, trainable with few
// samples and epochs — is preserved.
package tranad

import (
	"math/rand"

	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/mat"
	"github.com/navarchos/pdm/internal/nn"
)

// Config parametrises the model.
type Config struct {
	// Window is the sequence length the encoder attends over (default 8).
	Window int
	// DModel is the model width; must be divisible by Heads (default 16).
	DModel int
	// Heads is the number of attention heads (default 2).
	Heads int
	// Epochs is the number of training passes over the window set
	// (default 8 — TranAD is explicitly designed to converge in few
	// epochs).
	Epochs int
	// LR is the Adam learning rate (default 0.005).
	LR float64
	// MaxWindows caps the number of training windows drawn from Ref;
	// larger references are subsampled evenly (default 512).
	MaxWindows int
	// Seed drives weight initialisation and shuffling (default 1).
	Seed int64
}

func (c *Config) defaults() {
	if c.Window <= 1 {
		c.Window = 8
	}
	if c.DModel <= 0 {
		c.DModel = 16
	}
	if c.Heads <= 0 {
		c.Heads = 2
	}
	if c.DModel%c.Heads != 0 {
		c.DModel = (c.DModel/c.Heads + 1) * c.Heads
	}
	if c.Epochs <= 0 {
		c.Epochs = 8
	}
	if c.LR <= 0 {
		c.LR = 0.005
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = 512
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Detector is the TranAD-style reconstruction detector. It emits a
// single score channel (window reconstruction error).
type Detector struct {
	cfg Config
	dim int

	// standardisation from Ref
	means, stds []float64

	enc  *nn.Sequential // d -> dm, positional, attention block
	dec1 *nn.Sequential // dm -> d
	fuse *nn.Linear     // dm+d -> dm (self-conditioning input of decoder 2)
	dec2 *nn.Sequential // dm -> d

	// streaming window of standardised samples
	ring [][]float64
	pos  int
	n    int
}

// New returns a TranAD detector with the given configuration.
func New(cfg Config) *Detector {
	cfg.defaults()
	return &Detector{cfg: cfg}
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "tranad" }

// Channels implements detector.Detector.
func (d *Detector) Channels() int { return 1 }

// ChannelNames implements detector.Detector.
func (d *Detector) ChannelNames() []string { return []string{"reconstruction"} }

// Fit implements detector.Detector: it standardises Ref, builds training
// windows, and trains the encoder and both decoders with the two-term
// reconstruction loss.
func (d *Detector) Fit(ref [][]float64) error {
	if len(ref) == 0 {
		return detector.ErrEmptyReference
	}
	dim := len(ref[0])
	for _, row := range ref {
		if len(row) != dim {
			return detector.ErrDimension
		}
	}
	d.dim = dim
	refM, err := mat.FromRows(ref)
	if err != nil {
		return err
	}
	std, means, stds := refM.Standardize()
	d.means, d.stds = means, stds

	rng := rand.New(rand.NewSource(d.cfg.Seed))
	d.buildNet(dim, rng)
	opt := nn.NewAdam(d.params(), d.cfg.LR)

	// Training windows: consecutive slices of the standardised Ref,
	// evenly subsampled down to MaxWindows.
	w := d.cfg.Window
	var starts []int
	if std.Rows >= w {
		total := std.Rows - w + 1
		stride := 1
		if total > d.cfg.MaxWindows {
			stride = total / d.cfg.MaxWindows
		}
		for s := 0; s+w <= std.Rows; s += stride {
			starts = append(starts, s)
		}
	} else {
		// Reference shorter than a window: train on the whole profile
		// as one (short) sequence.
		starts = append(starts, 0)
		w = std.Rows
	}

	for epoch := 0; epoch < d.cfg.Epochs; epoch++ {
		rng.Shuffle(len(starts), func(i, j int) { starts[i], starts[j] = starts[j], starts[i] })
		for _, s := range starts {
			win := mat.NewMatrix(w, dim)
			for r := 0; r < w; r++ {
				copy(win.Row(r), std.Row(s+r))
			}
			d.trainStep(win, opt)
		}
	}

	d.ring = make([][]float64, d.cfg.Window)
	d.pos, d.n = 0, 0
	return nil
}

// buildNet constructs the encoder, both decoders and the fusion layer
// for input dimensionality dim. rng seeds the weight initialisation;
// restore rebuilds the same architecture and then overwrites every
// weight from the snapshot, so there the rng values are discarded.
func (d *Detector) buildNet(dim int, rng *rand.Rand) {
	dm := d.cfg.DModel
	d.enc = nn.NewSequential(
		nn.NewLinear(dim, dm, rng),
		nn.NewPositionalEncoding(dm),
		nn.NewResidual(nn.NewSelfAttention(dm, d.cfg.Heads, rng)),
		nn.NewLayerNorm(dm),
		nn.NewResidual(nn.NewSequential(
			nn.NewLinear(dm, 2*dm, rng),
			nn.NewReLU(),
			nn.NewLinear(2*dm, dm, rng),
		)),
		nn.NewLayerNorm(dm),
	)
	d.dec1 = nn.NewSequential(
		nn.NewLinear(dm, dm, rng),
		nn.NewReLU(),
		nn.NewLinear(dm, dim, rng),
	)
	d.fuse = nn.NewLinear(dm+dim, dm, rng)
	d.dec2 = nn.NewSequential(
		nn.NewReLU(),
		nn.NewLinear(dm, dim, rng),
	)
}

// params collects every trainable parameter across the four sub-nets in
// a fixed order (also the snapshot serialisation order).
func (d *Detector) params() []*nn.Param {
	var params []*nn.Param
	params = append(params, d.enc.Params()...)
	params = append(params, d.dec1.Params()...)
	params = append(params, d.fuse.Params()...)
	params = append(params, d.dec2.Params()...)
	return params
}

// trainStep runs one forward/backward pass on a window and applies Adam.
func (d *Detector) trainStep(win *mat.Matrix, opt *nn.Adam) {
	z := d.enc.Forward(win)
	o1 := d.dec1.Forward(z)
	_, g1 := nn.MSELoss(o1, win)

	x2 := concatCols(z, focus(o1, win))
	o2 := d.dec2.Forward(d.fuse.Forward(x2))
	_, g2 := nn.MSELoss(o2, win)

	dz1 := d.dec1.Backward(g1)
	dx2 := d.fuse.Backward(d.dec2.Backward(g2))
	// Only the z-columns of the fused input propagate into the encoder;
	// the focus score is treated as a constant (stop-gradient).
	dz := dz1.Clone()
	for r := 0; r < dz.Rows; r++ {
		zrow := dz.Row(r)
		frow := dx2.Row(r)
		for c := 0; c < dz.Cols; c++ {
			zrow[c] += frow[c]
		}
	}
	d.enc.Backward(dz)
	opt.Step()
}

// focus returns the squared reconstruction error (O1 − W)², the
// self-conditioning input of decoder 2.
func focus(o1, win *mat.Matrix) *mat.Matrix {
	f := mat.NewMatrix(win.Rows, win.Cols)
	for i := range f.Data {
		diff := o1.Data[i] - win.Data[i]
		f.Data[i] = diff * diff
	}
	return f
}

// concatCols returns [a | b] column-wise.
func concatCols(a, b *mat.Matrix) *mat.Matrix {
	out := mat.NewMatrix(a.Rows, a.Cols+b.Cols)
	for r := 0; r < a.Rows; r++ {
		copy(out.Row(r)[:a.Cols], a.Row(r))
		copy(out.Row(r)[a.Cols:], b.Row(r))
	}
	return out
}

// Score implements detector.Detector: it appends x to the streaming
// window and returns the averaged two-decoder reconstruction error of
// the window's last position. Until the window fills the score is 0 (no
// alarm can fire while context is insufficient).
func (d *Detector) Score(x []float64) ([]float64, error) {
	if d.enc == nil {
		return nil, detector.ErrNotFitted
	}
	if len(x) != d.dim {
		return nil, detector.ErrDimension
	}
	std, err := mat.ApplyStandardization(x, d.means, d.stds)
	if err != nil {
		return nil, err
	}
	d.ring[d.pos] = std
	d.pos = (d.pos + 1) % len(d.ring)
	if d.n < len(d.ring) {
		d.n++
	}
	if d.n < len(d.ring) {
		return []float64{0}, nil
	}
	w := len(d.ring)
	win := mat.NewMatrix(w, d.dim)
	for r := 0; r < w; r++ {
		copy(win.Row(r), d.ring[(d.pos+r)%w])
	}
	z := d.enc.Forward(win)
	o1 := d.dec1.Forward(z)
	o2 := d.dec2.Forward(d.fuse.Forward(concatCols(z, focus(o1, win))))
	last := w - 1
	var mse float64
	for c := 0; c < d.dim; c++ {
		d1 := o1.At(last, c) - win.At(last, c)
		d2 := o2.At(last, c) - win.At(last, c)
		mse += (d1*d1 + d2*d2) / 2
	}
	return []float64{mse / float64(d.dim)}, nil
}
