// Package tranad implements a transformer-based reconstruction anomaly
// detector in the style of TranAD (Tuli, Casale & Jennings, VLDB 2022),
// the deep-learning comparator of the paper's step 3: a self-attention
// encoder over a short window of samples feeds two decoders; the second
// decoder is self-conditioned on the first one's reconstruction error
// (the "focus score"), and the anomaly score of a sample is the averaged
// reconstruction error of both decoders on the window's last position.
//
// Compared to the reference PyTorch implementation the model is
// miniaturised (small model dimension, single encoder block, focus score
// treated as a constant input during backpropagation) so that training
// stays tractable on a CPU in pure Go; what the paper relies on — a
// reconstruction model that learns healthy signal structure from Ref and
// produces elevated errors on behavioural change, trainable with few
// samples and epochs — is preserved.
//
// Fit runs on the scratch-reuse nn kernels by default: training windows
// are zero-copy views into the standardised reference, every gradient
// buffer is owned by the detector, and (at Batch 1, the default) the
// optimisation trajectory is bit-identical to the legacy
// allocate-per-call path preserved behind Config.LegacyFitKernels.
// Batch > 1 switches to minibatch gradient accumulation: each batch's
// per-window gradients are computed (in parallel across fitpool workers
// on multicore hosts) into per-window slots and reduced in window order,
// so results depend only on the Batch value, never on GOMAXPROCS.
package tranad

import (
	"math"
	"math/rand"

	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/fitpool"
	"github.com/navarchos/pdm/internal/mat"
	"github.com/navarchos/pdm/internal/nn"
)

// Config parametrises the model.
type Config struct {
	// Window is the sequence length the encoder attends over (default 8).
	Window int
	// DModel is the model width; must be divisible by Heads (default 16).
	DModel int
	// Heads is the number of attention heads (default 2).
	Heads int
	// Epochs is the number of training passes over the window set
	// (default 8 — TranAD is explicitly designed to converge in few
	// epochs).
	Epochs int
	// LR is the Adam learning rate (default 0.005).
	LR float64
	// MaxWindows caps the number of training windows drawn from Ref;
	// larger references are subsampled evenly (default 512).
	MaxWindows int
	// Seed drives weight initialisation and shuffling (default 1).
	Seed int64
	// Batch is the number of windows whose gradients are accumulated
	// into one Adam step (default 1, which reproduces the per-window
	// SGD trajectory of the legacy path bit for bit). Larger batches
	// train on the reassociating fast-dot kernels and fan window
	// gradients across the fitpool; the trajectory then depends only on
	// Batch, not on the worker count.
	Batch int
	// LegacyFitKernels restores the pre-optimisation allocate-per-call
	// training path (PR 2's LegacyKernels precedent). It is the
	// baseline leg of the fitperf benchmark and the oracle of the
	// kernel-equivalence tests.
	LegacyFitKernels bool
	// FullWindowScore pins scoring to the full-window forward pass (the
	// whole ring mapped through every layer each record) instead of the
	// default last-row path, which only evaluates the positions a score
	// actually depends on. Both are bit-identical to the legacy scorer;
	// the flag exists so scoreperf can measure the last-row win against
	// an honest scratch-kernel baseline.
	FullWindowScore bool
	// WarmStart seeds a refit from the previous fit's weights instead of
	// reinitialising: when the detector has already been fitted at the
	// same dimensionality, Fit keeps the trained parameters, trains for
	// at most WarmEpochs and stops early once an epoch improves the loss
	// by less than WarmTol (relative). Asynchronous fleet refits re-fit
	// the same detector instance after every profile refill, so warm
	// starts cut the dominant refit cost to the few epochs needed to
	// track drift. Not available on the legacy path, and intentionally
	// NOT bit-identical to a cold fit — equivalence gates must leave it
	// unset.
	WarmStart bool
	// WarmEpochs is the warm refit epoch budget (default max(1, Epochs/2)).
	WarmEpochs int
	// WarmTol is the relative epoch-over-epoch loss improvement under
	// which a warm refit stops early (default 1e-3).
	WarmTol float64
	// FitTol is an opt-in early-stop budget for COLD full fits on the
	// fast path: when positive, a cold fit stops after any epoch whose
	// summed window loss improved on the previous epoch's by less than
	// FitTol relative — the same rule warm refits apply via WarmTol.
	// The default (0) runs every epoch, keeping cold fits bit-identical
	// to the legacy trainer; equivalence gates must leave it unset.
	// TranAD converges in few epochs by design, so a budget of ~1e-4
	// typically saves the tail epochs of profile-sized fits unchanged
	// in F-score.
	FitTol float64
}

func (c *Config) defaults() {
	if c.Window <= 1 {
		c.Window = 8
	}
	if c.DModel <= 0 {
		c.DModel = 16
	}
	if c.Heads <= 0 {
		c.Heads = 2
	}
	if c.DModel%c.Heads != 0 {
		c.DModel = (c.DModel/c.Heads + 1) * c.Heads
	}
	if c.Epochs <= 0 {
		c.Epochs = 8
	}
	if c.LR <= 0 {
		c.LR = 0.005
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = 512
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.WarmEpochs <= 0 {
		c.WarmEpochs = c.Epochs / 2
		if c.WarmEpochs < 1 {
			c.WarmEpochs = 1
		}
	}
	if c.WarmTol <= 0 {
		c.WarmTol = 1e-3
	}
}

// fitNet bundles one instance of the model's four sub-nets with the
// scratch a training step needs. The detector's own nets form the
// master fitNet; minibatch training builds additional replicas.
type fitNet struct {
	enc  *nn.Sequential
	dec1 *nn.Sequential
	fuse *nn.Linear
	dec2 *nn.Sequential

	// inf holds typed references to the individual layers inside the
	// sequentials above, in evaluation order, for the last-row scoring
	// path: per-record inference walks the layers directly through
	// their ApplyRow/AttendLast kernels instead of Forward-mapping the
	// whole window.
	inf inferRefs

	params []*nn.Param

	g1, g2, foc, x2, dz mat.Matrix
	winView             mat.Matrix
}

// inferRefs names the layers of one model instance for row-level
// inference. fuse is the detector's fuse Linear and is not repeated
// here.
type inferRefs struct {
	encLin *nn.Linear             // dim -> dm input projection
	pe     *nn.PositionalEncoding // sinusoidal table
	attn   *nn.SelfAttention      // inside the first residual block
	ln1    *nn.LayerNorm          // post-attention norm
	ffn1   *nn.Linear             // dm -> 2dm
	ffn2   *nn.Linear             // 2dm -> dm
	ln2    *nn.LayerNorm          // post-FFN norm
	dec1a  *nn.Linear             // dm -> dm
	dec1b  *nn.Linear             // dm -> dim
	dec2b  *nn.Linear             // dm -> dim (after the fuse ReLU)
}

// Detector is the TranAD-style reconstruction detector. It emits a
// single score channel (window reconstruction error).
type Detector struct {
	cfg Config
	dim int

	// standardisation from Ref
	means, stds []float64

	enc  *nn.Sequential // d -> dm, positional, attention block
	dec1 *nn.Sequential // dm -> d
	fuse *nn.Linear     // dm+d -> dm (self-conditioning input of decoder 2)
	dec2 *nn.Sequential // dm -> d

	master *fitNet // scratch bound to the nets above (fast path)

	// streaming window of standardised samples
	ring [][]float64
	pos  int
	n    int

	swin mat.Matrix // Score window scratch (full-window fast path)

	// last-row scoring state: the input projection of each ring slot is
	// position-independent, so it is computed once when the slot is
	// (re)written and replayed until then. linOK goes false wholesale
	// whenever the weights or the ring change under the cache (Fit,
	// Restore).
	linCache [][]float64
	linOK    []bool
	sc       scoreScratch
}

// scoreScratch holds the per-detector row buffers of the last-row
// scoring path; everything is sized once per fit, so a warm Score
// allocates nothing.
type scoreScratch struct {
	l1           mat.Matrix // window after input projection + positional encoding
	attnOut      []float64  // dm: attention output for the last row
	res1, ln1row []float64  // dm
	ffnH         []float64  // 2dm
	ffnOut, res2 []float64  // dm
	zLast        []float64  // dm: encoder output for the last row
	d1h, fuseOut []float64  // dm
	o1, o2       []float64  // dim: both decoders' last-row reconstructions
	x2           []float64  // dm+dim: fused decoder-2 input
}

// New returns a TranAD detector with the given configuration.
func New(cfg Config) *Detector {
	cfg.defaults()
	return &Detector{cfg: cfg}
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "tranad" }

// Channels implements detector.Detector.
func (d *Detector) Channels() int { return 1 }

// ChannelNames implements detector.Detector.
func (d *Detector) ChannelNames() []string { return []string{"reconstruction"} }

// Fit implements detector.Detector: it standardises Ref, builds training
// windows, and trains the encoder and both decoders with the two-term
// reconstruction loss.
func (d *Detector) Fit(ref [][]float64) error {
	if len(ref) == 0 {
		return detector.ErrEmptyReference
	}
	dim := len(ref[0])
	for _, row := range ref {
		if len(row) != dim {
			return detector.ErrDimension
		}
	}
	// Warm start: an already-fitted detector at the same dimensionality
	// keeps its trained weights and runs a short budgeted refit instead
	// of a cold retrain.
	warm := d.cfg.WarmStart && !d.cfg.LegacyFitKernels && d.master != nil && d.dim == dim
	d.dim = dim
	refM, err := mat.FromRows(ref)
	if err != nil {
		return err
	}
	std, means, stds := refM.Standardize()
	d.means, d.stds = means, stds

	rng := rand.New(rand.NewSource(d.cfg.Seed))
	if !warm {
		d.buildNet(dim, rng)
	}
	opt := nn.NewAdam(d.params(), d.cfg.LR)
	opt.Legacy = d.cfg.LegacyFitKernels

	// Training windows: consecutive slices of the standardised Ref,
	// evenly subsampled down to MaxWindows.
	w := d.cfg.Window
	var starts []int
	if std.Rows >= w {
		total := std.Rows - w + 1
		stride := 1
		if total > d.cfg.MaxWindows {
			stride = total / d.cfg.MaxWindows
		}
		for s := 0; s+w <= std.Rows; s += stride {
			starts = append(starts, s)
		}
	} else {
		// Reference shorter than a window: train on the whole profile
		// as one (short) sequence.
		starts = append(starts, 0)
		w = std.Rows
	}

	if d.cfg.LegacyFitKernels {
		for epoch := 0; epoch < d.cfg.Epochs; epoch++ {
			rng.Shuffle(len(starts), func(i, j int) { starts[i], starts[j] = starts[j], starts[i] })
			for _, s := range starts {
				win := mat.NewMatrix(w, dim)
				for r := 0; r < w; r++ {
					copy(win.Row(r), std.Row(s+r))
				}
				d.trainStepLegacy(win, opt)
			}
		}
	} else {
		epochs, tol := d.cfg.Epochs, d.cfg.FitTol
		if warm {
			epochs, tol = d.cfg.WarmEpochs, d.cfg.WarmTol
		}
		d.fitFast(std, starts, w, dim, rng, opt, epochs, tol)
	}

	d.ring = make([][]float64, d.cfg.Window)
	d.pos, d.n = 0, 0
	d.resetInferCache()
	return nil
}

// fitFast is the scratch-kernel training loop. Windows are views into
// the standardised reference (the rows of one window are contiguous in
// memory), so the epoch loop performs no copies and — once the layer
// scratch is warm — no allocations. epochs bounds the pass count; a
// positive tol additionally stops after any epoch whose summed window
// loss improved on the previous epoch's by less than tol relative (the
// warm-start early-stop budget; cold fits pass tol 0 and always run
// every epoch).
func (d *Detector) fitFast(std *mat.Matrix, starts []int, w, dim int, rng *rand.Rand, opt *nn.Adam, epochs int, tol float64) {
	batch := d.cfg.Batch
	if batch > len(starts) {
		batch = len(starts)
	}
	workers := fitpool.Workers()
	if workers > batch {
		workers = batch
	}

	// Minibatch machinery, built only when a batch can actually span
	// more than one window: per-window gradient slots plus net replicas
	// for the extra workers.
	var slots [][][]float64
	var nets []*fitNet
	var gradBufs [][][]float64
	if batch > 1 {
		slots = make([][][]float64, batch)
		for i := range slots {
			slots[i] = make([][]float64, len(d.master.params))
			for pi, p := range d.master.params {
				slots[i][pi] = make([]float64, len(p.G))
			}
		}
		nets = make([]*fitNet, workers)
		nets[0] = d.master
		throwaway := rand.New(rand.NewSource(1))
		for r := 1; r < workers; r++ {
			nets[r] = d.newFitNet(dim, throwaway)
		}
		// Each net's original gradient buffers, restored after every
		// chunk pass (the pass aliases them onto the window slots).
		gradBufs = make([][][]float64, workers)
		for r, n := range nets {
			gradBufs[r] = make([][]float64, len(n.params))
			for pi, p := range n.params {
				gradBufs[r][pi] = p.G
			}
		}
	}

	var lossSlots []float64
	if batch > 1 {
		lossSlots = make([]float64, batch)
	}
	var prevLoss float64
	for epoch := 0; epoch < epochs; epoch++ {
		var epochLoss float64
		rng.Shuffle(len(starts), func(i, j int) { starts[i], starts[j] = starts[j], starts[i] })
		for lo := 0; lo < len(starts); lo += batch {
			hi := lo + batch
			if hi > len(starts) {
				hi = len(starts)
			}
			chunk := starts[lo:hi]
			if batch == 1 {
				epochLoss += d.master.windowGrad(std, chunk[0], w, dim)
			} else {
				// Always reduce through per-window slots, even with one
				// worker: direct sequential accumulation into G nests
				// the additions differently and would make the bits
				// depend on the worker count. The nets' gradient
				// accumulators are pointed at the item's slot for the
				// duration of the pass, so the window gradient lands in
				// its slot without an extra copy.
				for r := 1; r < workers; r++ {
					nn.CopyWeights(nets[r].params, d.master.params)
				}
				fitpool.Run(len(chunk), workers, func(worker, item int) {
					net := nets[worker]
					slot := slots[item]
					for pi, p := range net.params {
						p.G = slot[pi]
					}
					nn.ZeroGrads(net.params)
					lossSlots[item] = net.windowGrad(std, chunk[item], w, dim)
				})
				// Restore every net's own gradient buffers (the master's
				// are about to accumulate the reduction, and aliasing a
				// slot would corrupt it).
				for r := 0; r < workers; r++ {
					for pi, p := range nets[r].params {
						p.G = gradBufs[r][pi]
					}
				}
				nn.ZeroGrads(d.master.params)
				for item := range chunk {
					// Loss slots reduce in item order like the gradient
					// slots, so the early-stop decision is as
					// worker-count-independent as the weights.
					epochLoss += lossSlots[item]
					for pi, p := range d.master.params {
						mat.AddScaled(p.G, 1, slots[item][pi])
					}
				}
			}
			opt.Step()
		}
		if tol > 0 && epoch > 0 && prevLoss-epochLoss < tol*math.Abs(prevLoss) {
			break
		}
		prevLoss = epochLoss
	}
}

// buildNet constructs the encoder, both decoders and the fusion layer
// for input dimensionality dim. rng seeds the weight initialisation;
// restore rebuilds the same architecture and then overwrites every
// weight from the snapshot, so there the rng values are discarded.
func (d *Detector) buildNet(dim int, rng *rand.Rand) {
	net := d.newFitNet(dim, rng)
	d.enc, d.dec1, d.fuse, d.dec2 = net.enc, net.dec1, net.fuse, net.dec2
	d.master = net
}

// newFitNet builds one instance of the model (used for the detector
// itself and for minibatch replicas) and applies the configured kernel
// mode.
func (d *Detector) newFitNet(dim int, rng *rand.Rand) *fitNet {
	dm := d.cfg.DModel
	// Layers are constructed in the exact order of the original
	// composite literals so the rng draws (and therefore the initial
	// weights) are unchanged; the locals feed both the sequentials and
	// the inferRefs.
	encLin := nn.NewLinear(dim, dm, rng)
	pe := nn.NewPositionalEncoding(dm)
	attn := nn.NewSelfAttention(dm, d.cfg.Heads, rng)
	ln1 := nn.NewLayerNorm(dm)
	ffn1 := nn.NewLinear(dm, 2*dm, rng)
	ffn2 := nn.NewLinear(2*dm, dm, rng)
	ln2 := nn.NewLayerNorm(dm)
	net := &fitNet{
		enc: nn.NewSequential(
			encLin,
			pe,
			nn.NewResidual(attn),
			ln1,
			nn.NewResidual(nn.NewSequential(
				ffn1,
				nn.NewReLU(),
				ffn2,
			)),
			ln2,
		),
	}
	dec1a := nn.NewLinear(dm, dm, rng)
	dec1b := nn.NewLinear(dm, dim, rng)
	net.dec1 = nn.NewSequential(
		dec1a,
		nn.NewReLU(),
		dec1b,
	)
	net.fuse = nn.NewLinear(dm+dim, dm, rng)
	dec2b := nn.NewLinear(dm, dim, rng)
	net.dec2 = nn.NewSequential(
		nn.NewReLU(),
		dec2b,
	)
	net.inf = inferRefs{
		encLin: encLin, pe: pe, attn: attn,
		ln1: ln1, ffn1: ffn1, ffn2: ffn2, ln2: ln2,
		dec1a: dec1a, dec1b: dec1b, dec2b: dec2b,
	}
	net.params = net.collectParams()
	for _, l := range []nn.Layer{net.enc, net.dec1, net.fuse, net.dec2} {
		nn.SetLegacyKernels(l, d.cfg.LegacyFitKernels)
		// The reassociating attention dots are only enabled where the
		// bit-identical-to-legacy contract does not apply.
		nn.SetFastDots(l, !d.cfg.LegacyFitKernels && d.cfg.Batch > 1)
	}
	return net
}

func (n *fitNet) collectParams() []*nn.Param {
	var params []*nn.Param
	params = append(params, n.enc.Params()...)
	params = append(params, n.dec1.Params()...)
	params = append(params, n.fuse.Params()...)
	params = append(params, n.dec2.Params()...)
	return params
}

// params collects every trainable parameter across the four sub-nets in
// a fixed order (also the snapshot serialisation order).
func (d *Detector) params() []*nn.Param {
	return d.master.params
}

// windowGrad runs one forward/backward pass on the window starting at
// row s of std, accumulating parameter gradients (no optimiser step)
// and returning the window's summed two-decoder loss. The window is a
// zero-copy view: w consecutive rows of std are contiguous in its
// backing slice.
func (n *fitNet) windowGrad(std *mat.Matrix, s, w, dim int) float64 {
	n.winView.Rows, n.winView.Cols = w, dim
	n.winView.Data = std.Data[s*dim : (s+w)*dim]
	return n.forwardBackward(&n.winView)
}

// forwardBackward is the shared two-decoder loss pass of the fast path:
// the same operations as trainStepLegacy, on detector-owned scratch. It
// returns the summed loss of both decoders (the warm-start early-stop
// signal).
func (n *fitNet) forwardBackward(win *mat.Matrix) float64 {
	z := n.enc.Forward(win)
	o1 := n.dec1.Forward(z)
	l1, g1 := nn.MSELossInto(&n.g1, o1, win)

	x2 := concatColsInto(&n.x2, z, focusInto(&n.foc, o1, win))
	o2 := n.dec2.Forward(n.fuse.Forward(x2))
	l2, g2 := nn.MSELossInto(&n.g2, o2, win)

	dz1 := n.dec1.Backward(g1)
	dx2 := n.fuse.Backward(n.dec2.Backward(g2))
	// Only the z-columns of the fused input propagate into the encoder;
	// the focus score is treated as a constant (stop-gradient).
	dz := n.dz.EnsureShape(dz1.Rows, dz1.Cols)
	copy(dz.Data, dz1.Data)
	for r := 0; r < dz.Rows; r++ {
		zrow := dz.Row(r)
		frow := dx2.Row(r)
		for c := 0; c < dz.Cols; c++ {
			zrow[c] += frow[c]
		}
	}
	n.enc.Backward(dz)
	return l1 + l2
}

// trainStepLegacy runs one forward/backward pass on a window and applies
// Adam, allocating every intermediate — the pre-optimisation baseline.
func (d *Detector) trainStepLegacy(win *mat.Matrix, opt *nn.Adam) {
	z := d.enc.Forward(win)
	o1 := d.dec1.Forward(z)
	_, g1 := nn.MSELoss(o1, win)

	x2 := concatCols(z, focus(o1, win))
	o2 := d.dec2.Forward(d.fuse.Forward(x2))
	_, g2 := nn.MSELoss(o2, win)

	dz1 := d.dec1.Backward(g1)
	dx2 := d.fuse.Backward(d.dec2.Backward(g2))
	// Only the z-columns of the fused input propagate into the encoder;
	// the focus score is treated as a constant (stop-gradient).
	dz := dz1.Clone()
	for r := 0; r < dz.Rows; r++ {
		zrow := dz.Row(r)
		frow := dx2.Row(r)
		for c := 0; c < dz.Cols; c++ {
			zrow[c] += frow[c]
		}
	}
	d.enc.Backward(dz)
	opt.Step()
}

// focus returns the squared reconstruction error (O1 − W)², the
// self-conditioning input of decoder 2.
func focus(o1, win *mat.Matrix) *mat.Matrix {
	return focusInto(mat.NewMatrix(win.Rows, win.Cols), o1, win)
}

// focusInto is the allocation-free focus.
func focusInto(f, o1, win *mat.Matrix) *mat.Matrix {
	f.EnsureShape(win.Rows, win.Cols)
	for i := range f.Data {
		diff := o1.Data[i] - win.Data[i]
		f.Data[i] = diff * diff
	}
	return f
}

// concatCols returns [a | b] column-wise.
func concatCols(a, b *mat.Matrix) *mat.Matrix {
	return concatColsInto(mat.NewMatrix(a.Rows, a.Cols+b.Cols), a, b)
}

// concatColsInto is the allocation-free concatCols.
func concatColsInto(out, a, b *mat.Matrix) *mat.Matrix {
	out.EnsureShape(a.Rows, a.Cols+b.Cols)
	for r := 0; r < a.Rows; r++ {
		copy(out.Row(r)[:a.Cols], a.Row(r))
		copy(out.Row(r)[a.Cols:], b.Row(r))
	}
	return out
}

// Score implements detector.Detector: it appends x to the streaming
// window and returns the averaged two-decoder reconstruction error of
// the window's last position. Until the window fills the score is 0 (no
// alarm can fire while context is insufficient). The allocation-free
// equivalent is ScoreInto (score.go).
func (d *Detector) Score(x []float64) ([]float64, error) {
	out := make([]float64, 1)
	if err := d.ScoreInto(x, out); err != nil {
		return nil, err
	}
	return out, nil
}
