// Package tranad implements a transformer-based reconstruction anomaly
// detector in the style of TranAD (Tuli, Casale & Jennings, VLDB 2022),
// the deep-learning comparator of the paper's step 3: a self-attention
// encoder over a short window of samples feeds two decoders; the second
// decoder is self-conditioned on the first one's reconstruction error
// (the "focus score"), and the anomaly score of a sample is the averaged
// reconstruction error of both decoders on the window's last position.
//
// Compared to the reference PyTorch implementation the model is
// miniaturised (small model dimension, single encoder block, focus score
// treated as a constant input during backpropagation) so that training
// stays tractable on a CPU in pure Go; what the paper relies on — a
// reconstruction model that learns healthy signal structure from Ref and
// produces elevated errors on behavioural change, trainable with few
// samples and epochs — is preserved.
//
// Fit runs on the scratch-reuse nn kernels by default: training windows
// are zero-copy views into the standardised reference, every gradient
// buffer is owned by the detector, and (at Batch 1, the default) the
// optimisation trajectory is bit-identical to the legacy
// allocate-per-call path preserved behind Config.LegacyFitKernels.
// Batch > 1 switches to minibatch gradient accumulation: each batch's
// per-window gradients are computed (in parallel across fitpool workers
// on multicore hosts) into per-window slots and reduced in window order,
// so results depend only on the Batch value, never on GOMAXPROCS.
package tranad

import (
	"math/rand"

	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/fitpool"
	"github.com/navarchos/pdm/internal/mat"
	"github.com/navarchos/pdm/internal/nn"
)

// Config parametrises the model.
type Config struct {
	// Window is the sequence length the encoder attends over (default 8).
	Window int
	// DModel is the model width; must be divisible by Heads (default 16).
	DModel int
	// Heads is the number of attention heads (default 2).
	Heads int
	// Epochs is the number of training passes over the window set
	// (default 8 — TranAD is explicitly designed to converge in few
	// epochs).
	Epochs int
	// LR is the Adam learning rate (default 0.005).
	LR float64
	// MaxWindows caps the number of training windows drawn from Ref;
	// larger references are subsampled evenly (default 512).
	MaxWindows int
	// Seed drives weight initialisation and shuffling (default 1).
	Seed int64
	// Batch is the number of windows whose gradients are accumulated
	// into one Adam step (default 1, which reproduces the per-window
	// SGD trajectory of the legacy path bit for bit). Larger batches
	// train on the reassociating fast-dot kernels and fan window
	// gradients across the fitpool; the trajectory then depends only on
	// Batch, not on the worker count.
	Batch int
	// LegacyFitKernels restores the pre-optimisation allocate-per-call
	// training path (PR 2's LegacyKernels precedent). It is the
	// baseline leg of the fitperf benchmark and the oracle of the
	// kernel-equivalence tests.
	LegacyFitKernels bool
}

func (c *Config) defaults() {
	if c.Window <= 1 {
		c.Window = 8
	}
	if c.DModel <= 0 {
		c.DModel = 16
	}
	if c.Heads <= 0 {
		c.Heads = 2
	}
	if c.DModel%c.Heads != 0 {
		c.DModel = (c.DModel/c.Heads + 1) * c.Heads
	}
	if c.Epochs <= 0 {
		c.Epochs = 8
	}
	if c.LR <= 0 {
		c.LR = 0.005
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = 512
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
}

// fitNet bundles one instance of the model's four sub-nets with the
// scratch a training step needs. The detector's own nets form the
// master fitNet; minibatch training builds additional replicas.
type fitNet struct {
	enc  *nn.Sequential
	dec1 *nn.Sequential
	fuse *nn.Linear
	dec2 *nn.Sequential

	params []*nn.Param

	g1, g2, foc, x2, dz mat.Matrix
	winView             mat.Matrix
}

// Detector is the TranAD-style reconstruction detector. It emits a
// single score channel (window reconstruction error).
type Detector struct {
	cfg Config
	dim int

	// standardisation from Ref
	means, stds []float64

	enc  *nn.Sequential // d -> dm, positional, attention block
	dec1 *nn.Sequential // dm -> d
	fuse *nn.Linear     // dm+d -> dm (self-conditioning input of decoder 2)
	dec2 *nn.Sequential // dm -> d

	master *fitNet // scratch bound to the nets above (fast path)

	// streaming window of standardised samples
	ring [][]float64
	pos  int
	n    int

	swin mat.Matrix // Score window scratch (fast path)
}

// New returns a TranAD detector with the given configuration.
func New(cfg Config) *Detector {
	cfg.defaults()
	return &Detector{cfg: cfg}
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "tranad" }

// Channels implements detector.Detector.
func (d *Detector) Channels() int { return 1 }

// ChannelNames implements detector.Detector.
func (d *Detector) ChannelNames() []string { return []string{"reconstruction"} }

// Fit implements detector.Detector: it standardises Ref, builds training
// windows, and trains the encoder and both decoders with the two-term
// reconstruction loss.
func (d *Detector) Fit(ref [][]float64) error {
	if len(ref) == 0 {
		return detector.ErrEmptyReference
	}
	dim := len(ref[0])
	for _, row := range ref {
		if len(row) != dim {
			return detector.ErrDimension
		}
	}
	d.dim = dim
	refM, err := mat.FromRows(ref)
	if err != nil {
		return err
	}
	std, means, stds := refM.Standardize()
	d.means, d.stds = means, stds

	rng := rand.New(rand.NewSource(d.cfg.Seed))
	d.buildNet(dim, rng)
	opt := nn.NewAdam(d.params(), d.cfg.LR)
	opt.Legacy = d.cfg.LegacyFitKernels

	// Training windows: consecutive slices of the standardised Ref,
	// evenly subsampled down to MaxWindows.
	w := d.cfg.Window
	var starts []int
	if std.Rows >= w {
		total := std.Rows - w + 1
		stride := 1
		if total > d.cfg.MaxWindows {
			stride = total / d.cfg.MaxWindows
		}
		for s := 0; s+w <= std.Rows; s += stride {
			starts = append(starts, s)
		}
	} else {
		// Reference shorter than a window: train on the whole profile
		// as one (short) sequence.
		starts = append(starts, 0)
		w = std.Rows
	}

	if d.cfg.LegacyFitKernels {
		for epoch := 0; epoch < d.cfg.Epochs; epoch++ {
			rng.Shuffle(len(starts), func(i, j int) { starts[i], starts[j] = starts[j], starts[i] })
			for _, s := range starts {
				win := mat.NewMatrix(w, dim)
				for r := 0; r < w; r++ {
					copy(win.Row(r), std.Row(s+r))
				}
				d.trainStepLegacy(win, opt)
			}
		}
	} else {
		d.fitFast(std, starts, w, dim, rng, opt)
	}

	d.ring = make([][]float64, d.cfg.Window)
	d.pos, d.n = 0, 0
	return nil
}

// fitFast is the scratch-kernel training loop. Windows are views into
// the standardised reference (the rows of one window are contiguous in
// memory), so the epoch loop performs no copies and — once the layer
// scratch is warm — no allocations.
func (d *Detector) fitFast(std *mat.Matrix, starts []int, w, dim int, rng *rand.Rand, opt *nn.Adam) {
	batch := d.cfg.Batch
	if batch > len(starts) {
		batch = len(starts)
	}
	workers := fitpool.Workers()
	if workers > batch {
		workers = batch
	}

	// Minibatch machinery, built only when a batch can actually span
	// more than one window: per-window gradient slots plus net replicas
	// for the extra workers.
	var slots [][][]float64
	var nets []*fitNet
	var gradBufs [][][]float64
	if batch > 1 {
		slots = make([][][]float64, batch)
		for i := range slots {
			slots[i] = make([][]float64, len(d.master.params))
			for pi, p := range d.master.params {
				slots[i][pi] = make([]float64, len(p.G))
			}
		}
		nets = make([]*fitNet, workers)
		nets[0] = d.master
		throwaway := rand.New(rand.NewSource(1))
		for r := 1; r < workers; r++ {
			nets[r] = d.newFitNet(dim, throwaway)
		}
		// Each net's original gradient buffers, restored after every
		// chunk pass (the pass aliases them onto the window slots).
		gradBufs = make([][][]float64, workers)
		for r, n := range nets {
			gradBufs[r] = make([][]float64, len(n.params))
			for pi, p := range n.params {
				gradBufs[r][pi] = p.G
			}
		}
	}

	for epoch := 0; epoch < d.cfg.Epochs; epoch++ {
		rng.Shuffle(len(starts), func(i, j int) { starts[i], starts[j] = starts[j], starts[i] })
		for lo := 0; lo < len(starts); lo += batch {
			hi := lo + batch
			if hi > len(starts) {
				hi = len(starts)
			}
			chunk := starts[lo:hi]
			if batch == 1 {
				d.master.windowGrad(std, chunk[0], w, dim)
			} else {
				// Always reduce through per-window slots, even with one
				// worker: direct sequential accumulation into G nests
				// the additions differently and would make the bits
				// depend on the worker count. The nets' gradient
				// accumulators are pointed at the item's slot for the
				// duration of the pass, so the window gradient lands in
				// its slot without an extra copy.
				for r := 1; r < workers; r++ {
					nn.CopyWeights(nets[r].params, d.master.params)
				}
				fitpool.Run(len(chunk), workers, func(worker, item int) {
					net := nets[worker]
					slot := slots[item]
					for pi, p := range net.params {
						p.G = slot[pi]
					}
					nn.ZeroGrads(net.params)
					net.windowGrad(std, chunk[item], w, dim)
				})
				// Restore every net's own gradient buffers (the master's
				// are about to accumulate the reduction, and aliasing a
				// slot would corrupt it).
				for r := 0; r < workers; r++ {
					for pi, p := range nets[r].params {
						p.G = gradBufs[r][pi]
					}
				}
				nn.ZeroGrads(d.master.params)
				for item := range chunk {
					for pi, p := range d.master.params {
						mat.AddScaled(p.G, 1, slots[item][pi])
					}
				}
			}
			opt.Step()
		}
	}
}

// buildNet constructs the encoder, both decoders and the fusion layer
// for input dimensionality dim. rng seeds the weight initialisation;
// restore rebuilds the same architecture and then overwrites every
// weight from the snapshot, so there the rng values are discarded.
func (d *Detector) buildNet(dim int, rng *rand.Rand) {
	net := d.newFitNet(dim, rng)
	d.enc, d.dec1, d.fuse, d.dec2 = net.enc, net.dec1, net.fuse, net.dec2
	d.master = net
}

// newFitNet builds one instance of the model (used for the detector
// itself and for minibatch replicas) and applies the configured kernel
// mode.
func (d *Detector) newFitNet(dim int, rng *rand.Rand) *fitNet {
	dm := d.cfg.DModel
	net := &fitNet{
		enc: nn.NewSequential(
			nn.NewLinear(dim, dm, rng),
			nn.NewPositionalEncoding(dm),
			nn.NewResidual(nn.NewSelfAttention(dm, d.cfg.Heads, rng)),
			nn.NewLayerNorm(dm),
			nn.NewResidual(nn.NewSequential(
				nn.NewLinear(dm, 2*dm, rng),
				nn.NewReLU(),
				nn.NewLinear(2*dm, dm, rng),
			)),
			nn.NewLayerNorm(dm),
		),
	}
	net.dec1 = nn.NewSequential(
		nn.NewLinear(dm, dm, rng),
		nn.NewReLU(),
		nn.NewLinear(dm, dim, rng),
	)
	net.fuse = nn.NewLinear(dm+dim, dm, rng)
	net.dec2 = nn.NewSequential(
		nn.NewReLU(),
		nn.NewLinear(dm, dim, rng),
	)
	net.params = net.collectParams()
	for _, l := range []nn.Layer{net.enc, net.dec1, net.fuse, net.dec2} {
		nn.SetLegacyKernels(l, d.cfg.LegacyFitKernels)
		// The reassociating attention dots are only enabled where the
		// bit-identical-to-legacy contract does not apply.
		nn.SetFastDots(l, !d.cfg.LegacyFitKernels && d.cfg.Batch > 1)
	}
	return net
}

func (n *fitNet) collectParams() []*nn.Param {
	var params []*nn.Param
	params = append(params, n.enc.Params()...)
	params = append(params, n.dec1.Params()...)
	params = append(params, n.fuse.Params()...)
	params = append(params, n.dec2.Params()...)
	return params
}

// params collects every trainable parameter across the four sub-nets in
// a fixed order (also the snapshot serialisation order).
func (d *Detector) params() []*nn.Param {
	return d.master.params
}

// windowGrad runs one forward/backward pass on the window starting at
// row s of std, accumulating parameter gradients (no optimiser step).
// The window is a zero-copy view: w consecutive rows of std are
// contiguous in its backing slice.
func (n *fitNet) windowGrad(std *mat.Matrix, s, w, dim int) {
	n.winView.Rows, n.winView.Cols = w, dim
	n.winView.Data = std.Data[s*dim : (s+w)*dim]
	n.forwardBackward(&n.winView)
}

// forwardBackward is the shared two-decoder loss pass of the fast path:
// the same operations as trainStepLegacy, on detector-owned scratch.
func (n *fitNet) forwardBackward(win *mat.Matrix) {
	z := n.enc.Forward(win)
	o1 := n.dec1.Forward(z)
	_, g1 := nn.MSELossInto(&n.g1, o1, win)

	x2 := concatColsInto(&n.x2, z, focusInto(&n.foc, o1, win))
	o2 := n.dec2.Forward(n.fuse.Forward(x2))
	_, g2 := nn.MSELossInto(&n.g2, o2, win)

	dz1 := n.dec1.Backward(g1)
	dx2 := n.fuse.Backward(n.dec2.Backward(g2))
	// Only the z-columns of the fused input propagate into the encoder;
	// the focus score is treated as a constant (stop-gradient).
	dz := n.dz.EnsureShape(dz1.Rows, dz1.Cols)
	copy(dz.Data, dz1.Data)
	for r := 0; r < dz.Rows; r++ {
		zrow := dz.Row(r)
		frow := dx2.Row(r)
		for c := 0; c < dz.Cols; c++ {
			zrow[c] += frow[c]
		}
	}
	n.enc.Backward(dz)
}

// trainStepLegacy runs one forward/backward pass on a window and applies
// Adam, allocating every intermediate — the pre-optimisation baseline.
func (d *Detector) trainStepLegacy(win *mat.Matrix, opt *nn.Adam) {
	z := d.enc.Forward(win)
	o1 := d.dec1.Forward(z)
	_, g1 := nn.MSELoss(o1, win)

	x2 := concatCols(z, focus(o1, win))
	o2 := d.dec2.Forward(d.fuse.Forward(x2))
	_, g2 := nn.MSELoss(o2, win)

	dz1 := d.dec1.Backward(g1)
	dx2 := d.fuse.Backward(d.dec2.Backward(g2))
	// Only the z-columns of the fused input propagate into the encoder;
	// the focus score is treated as a constant (stop-gradient).
	dz := dz1.Clone()
	for r := 0; r < dz.Rows; r++ {
		zrow := dz.Row(r)
		frow := dx2.Row(r)
		for c := 0; c < dz.Cols; c++ {
			zrow[c] += frow[c]
		}
	}
	d.enc.Backward(dz)
	opt.Step()
}

// focus returns the squared reconstruction error (O1 − W)², the
// self-conditioning input of decoder 2.
func focus(o1, win *mat.Matrix) *mat.Matrix {
	return focusInto(mat.NewMatrix(win.Rows, win.Cols), o1, win)
}

// focusInto is the allocation-free focus.
func focusInto(f, o1, win *mat.Matrix) *mat.Matrix {
	f.EnsureShape(win.Rows, win.Cols)
	for i := range f.Data {
		diff := o1.Data[i] - win.Data[i]
		f.Data[i] = diff * diff
	}
	return f
}

// concatCols returns [a | b] column-wise.
func concatCols(a, b *mat.Matrix) *mat.Matrix {
	return concatColsInto(mat.NewMatrix(a.Rows, a.Cols+b.Cols), a, b)
}

// concatColsInto is the allocation-free concatCols.
func concatColsInto(out, a, b *mat.Matrix) *mat.Matrix {
	out.EnsureShape(a.Rows, a.Cols+b.Cols)
	for r := 0; r < a.Rows; r++ {
		copy(out.Row(r)[:a.Cols], a.Row(r))
		copy(out.Row(r)[a.Cols:], b.Row(r))
	}
	return out
}

// Score implements detector.Detector: it appends x to the streaming
// window and returns the averaged two-decoder reconstruction error of
// the window's last position. Until the window fills the score is 0 (no
// alarm can fire while context is insufficient).
func (d *Detector) Score(x []float64) ([]float64, error) {
	if d.enc == nil {
		return nil, detector.ErrNotFitted
	}
	if len(x) != d.dim {
		return nil, detector.ErrDimension
	}
	if d.cfg.LegacyFitKernels {
		std, err := mat.ApplyStandardization(x, d.means, d.stds)
		if err != nil {
			return nil, err
		}
		d.ring[d.pos] = std
	} else {
		// Standardise into the ring slot in place: the scoring path
		// allocates nothing once every slot exists.
		if d.ring[d.pos] == nil {
			d.ring[d.pos] = make([]float64, d.dim)
		}
		if _, err := mat.ApplyStandardizationInto(d.ring[d.pos], x, d.means, d.stds); err != nil {
			return nil, err
		}
	}
	d.pos = (d.pos + 1) % len(d.ring)
	if d.n < len(d.ring) {
		d.n++
	}
	if d.n < len(d.ring) {
		return []float64{0}, nil
	}
	w := len(d.ring)
	var win *mat.Matrix
	if d.cfg.LegacyFitKernels {
		win = mat.NewMatrix(w, d.dim)
	} else {
		win = d.swin.EnsureShape(w, d.dim)
	}
	for r := 0; r < w; r++ {
		copy(win.Row(r), d.ring[(d.pos+r)%w])
	}
	var z, o1, o2 *mat.Matrix
	if d.cfg.LegacyFitKernels {
		z = d.enc.Forward(win)
		o1 = d.dec1.Forward(z)
		o2 = d.dec2.Forward(d.fuse.Forward(concatCols(z, focus(o1, win))))
	} else {
		m := d.master
		z = d.enc.Forward(win)
		o1 = d.dec1.Forward(z)
		o2 = d.dec2.Forward(d.fuse.Forward(concatColsInto(&m.x2, z, focusInto(&m.foc, o1, win))))
	}
	last := w - 1
	var mse float64
	for c := 0; c < d.dim; c++ {
		d1 := o1.At(last, c) - win.At(last, c)
		d2 := o2.At(last, c) - win.At(last, c)
		mse += (d1*d1 + d2*d2) / 2
	}
	return []float64{mse / float64(d.dim)}, nil
}
