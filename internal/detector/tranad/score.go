package tranad

import (
	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/mat"
)

// Per-record scoring.
//
// A score reads only the window's LAST position of both decoder
// outputs, and every layer of the model except self-attention maps rows
// independently. The default scorer exploits that: the input projection
// and positional encoding are evaluated for the whole window (the last
// query attends over every position's keys and values), attention runs
// through nn.AttendLast, and everything downstream — both norms, the
// FFN, decoder 1, the fusion layer and decoder 2 — is evaluated for the
// last row only, through the same fused row kernels the full Forward
// uses per row. The arithmetic a score performs is therefore a strict
// operation-for-operation subset of the full-window pass, making the
// result bit-identical to it (and to the legacy scorer) while doing
// roughly 1/w of the post-attention work.
//
// The input projection is additionally cached per ring slot: a slot's
// projection only changes when the slot is rewritten, so each record
// pays for one projected row, not w. Fit and Restore invalidate the
// cache wholesale (new weights, new ring).

// ScoreInto implements detector.IntoScorer: Score without the per-call
// result allocation. dst must have length 1.
func (d *Detector) ScoreInto(x, dst []float64) error {
	if d.enc == nil {
		return detector.ErrNotFitted
	}
	if len(x) != d.dim || len(dst) != d.Channels() {
		return detector.ErrDimension
	}
	if d.cfg.LegacyFitKernels {
		std, err := mat.ApplyStandardization(x, d.means, d.stds)
		if err != nil {
			return err
		}
		d.ring[d.pos] = std
	} else {
		d.ensureInferScratch()
		// Standardise into the ring slot in place: the scoring path
		// allocates nothing once every slot exists.
		if d.ring[d.pos] == nil {
			d.ring[d.pos] = make([]float64, d.dim)
		}
		if _, err := mat.ApplyStandardizationInto(d.ring[d.pos], x, d.means, d.stds); err != nil {
			return err
		}
		d.linOK[d.pos] = false
	}
	d.pos = (d.pos + 1) % len(d.ring)
	if d.n < len(d.ring) {
		d.n++
	}
	if d.n < len(d.ring) {
		dst[0] = 0
		return nil
	}
	switch {
	case d.cfg.LegacyFitKernels:
		dst[0] = d.scoreLegacy()
	case d.cfg.FullWindowScore:
		dst[0] = d.scoreFullWindow()
	default:
		dst[0] = d.scoreLastRow()
	}
	return nil
}

// scoreLegacy is the pre-optimisation scorer: the window is copied into
// a fresh matrix and every layer allocates per call. It is the oracle
// both fast scorers are tested bit-identical against.
func (d *Detector) scoreLegacy() float64 {
	w := len(d.ring)
	win := mat.NewMatrix(w, d.dim)
	for r := 0; r < w; r++ {
		copy(win.Row(r), d.ring[(d.pos+r)%w])
	}
	z := d.enc.Forward(win)
	o1 := d.dec1.Forward(z)
	o2 := d.dec2.Forward(d.fuse.Forward(concatCols(z, focus(o1, win))))
	return lastRowMSE(o1, o2, win, d.dim)
}

// scoreFullWindow is the scratch-kernel full-window scorer (the PR 5
// hot path, kept behind Config.FullWindowScore as the honest baseline
// of the scoreperf benchmark): zero allocations, but the whole window
// still runs through every layer.
func (d *Detector) scoreFullWindow() float64 {
	w := len(d.ring)
	win := d.swin.EnsureShape(w, d.dim)
	for r := 0; r < w; r++ {
		copy(win.Row(r), d.ring[(d.pos+r)%w])
	}
	m := d.master
	z := d.enc.Forward(win)
	o1 := d.dec1.Forward(z)
	o2 := d.dec2.Forward(d.fuse.Forward(concatColsInto(&m.x2, z, focusInto(&m.foc, o1, win))))
	return lastRowMSE(o1, o2, win, d.dim)
}

// lastRowMSE is the score reduction shared by the legacy and
// full-window paths: the averaged two-decoder squared reconstruction
// error of the window's last position.
func lastRowMSE(o1, o2, win *mat.Matrix, dim int) float64 {
	last := win.Rows - 1
	var mse float64
	for c := 0; c < dim; c++ {
		d1 := o1.At(last, c) - win.At(last, c)
		d2 := o2.At(last, c) - win.At(last, c)
		mse += (d1*d1 + d2*d2) / 2
	}
	return mse / float64(dim)
}

// scoreLastRow is the default scorer: full-window work only where the
// last position actually depends on it (input projection + positional
// encoding feeding attention's keys and values), single-row kernels
// everywhere else.
func (d *Detector) scoreLastRow() float64 {
	w := len(d.ring)
	dm := d.cfg.DModel
	s := &d.sc
	inf := &d.master.inf

	// l1 = PositionalEncoding(Linear(win)): project each ring slot at
	// most once, replay the cached rows with the position offset of this
	// rotation.
	l1 := s.l1.EnsureShape(w, dm)
	for r := 0; r < w; r++ {
		slot := (d.pos + r) % w
		if !d.linOK[slot] {
			inf.encLin.ApplyRow(d.ring[slot], d.linCache[slot])
			d.linOK[slot] = true
		}
		cached := d.linCache[slot]
		perow := inf.pe.RowAt(r, dm)
		lrow := l1.Row(r)
		for j := range lrow {
			lrow[j] = cached[j] + perow[j]
		}
	}

	last := w - 1
	// Encoder, last row: attention residual, norm, FFN residual, norm.
	inf.attn.AttendLast(l1, s.attnOut)
	l1last := l1.Row(last)
	for j := range s.res1 {
		s.res1[j] = s.attnOut[j] + l1last[j]
	}
	inf.ln1.ApplyRow(s.res1, s.ln1row)
	inf.ffn1.ApplyRow(s.ln1row, s.ffnH)
	reluRow(s.ffnH)
	inf.ffn2.ApplyRow(s.ffnH, s.ffnOut)
	for j := range s.res2 {
		s.res2[j] = s.ffnOut[j] + s.ln1row[j]
	}
	inf.ln2.ApplyRow(s.res2, s.zLast)

	// Decoder 1, last row.
	inf.dec1a.ApplyRow(s.zLast, s.d1h)
	reluRow(s.d1h)
	inf.dec1b.ApplyRow(s.d1h, s.o1)

	// Decoder 2, last row: fuse([z | focus]) then ReLU then project.
	winLast := d.ring[(d.pos+last)%w]
	copy(s.x2[:dm], s.zLast)
	for c := 0; c < d.dim; c++ {
		diff := s.o1[c] - winLast[c]
		s.x2[dm+c] = diff * diff
	}
	d.fuse.ApplyRow(s.x2, s.fuseOut)
	reluRow(s.fuseOut)
	inf.dec2b.ApplyRow(s.fuseOut, s.o2)

	var mse float64
	for c := 0; c < d.dim; c++ {
		d1 := s.o1[c] - winLast[c]
		d2 := s.o2[c] - winLast[c]
		mse += (d1*d1 + d2*d2) / 2
	}
	return mse / float64(d.dim)
}

// reluRow clamps negatives to zero in place — elementwise, so it
// matches the ReLU layer's copy-then-clamp bit for bit (including
// leaving -0 untouched, which compares as not-less-than zero).
func reluRow(row []float64) {
	for i, v := range row {
		if v < 0 {
			row[i] = 0
		}
	}
}

// ensureInferScratch sizes the last-row scoring buffers for the current
// fit. Safe to call every score; it only does work when the shape
// changed.
func (d *Detector) ensureInferScratch() {
	w := len(d.ring)
	dm := d.cfg.DModel
	if len(d.linCache) != w || len(d.sc.o1) != d.dim || len(d.sc.attnOut) != dm {
		d.linCache = make([][]float64, w)
		d.linOK = make([]bool, w)
		for i := range d.linCache {
			d.linCache[i] = make([]float64, dm)
		}
		d.sc.attnOut = make([]float64, dm)
		d.sc.res1 = make([]float64, dm)
		d.sc.ln1row = make([]float64, dm)
		d.sc.ffnH = make([]float64, 2*dm)
		d.sc.ffnOut = make([]float64, dm)
		d.sc.res2 = make([]float64, dm)
		d.sc.zLast = make([]float64, dm)
		d.sc.d1h = make([]float64, dm)
		d.sc.fuseOut = make([]float64, dm)
		d.sc.o1 = make([]float64, d.dim)
		d.sc.o2 = make([]float64, d.dim)
		d.sc.x2 = make([]float64, dm+d.dim)
	}
}

// resetInferCache drops every cached input projection (called when the
// weights or the ring are replaced under the cache).
func (d *Detector) resetInferCache() {
	for i := range d.linOK {
		d.linOK[i] = false
	}
}
