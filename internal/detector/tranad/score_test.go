package tranad

import (
	"math"
	"math/rand"
	"testing"
)

// scoreStream feeds n pseudo-random samples (deterministic in seed) to
// d and returns every score.
func scoreStream(t *testing.T, d *Detector, seed int64, n, dim int) []float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, 0, n)
	x := make([]float64, dim)
	s := make([]float64, 1)
	for i := 0; i < n; i++ {
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		if err := d.ScoreInto(x, s); err != nil {
			t.Fatal(err)
		}
		out = append(out, s[0])
	}
	return out
}

// TestScorePathsBitIdentical trains three identically seeded detectors
// — legacy kernels, scratch-kernel full-window, and the default
// last-row path — and requires Float64bits-identical scores across a
// long stream. The last-row path must be a strict arithmetic subset of
// the full pass: any reassociation or skipped operation shows up here.
func TestScorePathsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ref := synthRef(rng, 140, 5)

	mk := func(mut func(*Config)) *Detector {
		cfg := Config{Epochs: 3, Seed: 7}
		mut(&cfg)
		d := New(cfg)
		if err := d.Fit(ref); err != nil {
			t.Fatal(err)
		}
		return d
	}
	legacy := mk(func(c *Config) { c.LegacyFitKernels = true })
	full := mk(func(c *Config) { c.FullWindowScore = true })
	last := mk(func(c *Config) {})

	sl := scoreStream(t, legacy, 23, 80, 5)
	sf := scoreStream(t, full, 23, 80, 5)
	sr := scoreStream(t, last, 23, 80, 5)
	for i := range sl {
		if math.Float64bits(sl[i]) != math.Float64bits(sf[i]) {
			t.Fatalf("score %d: full-window %v differs from legacy %v", i, sf[i], sl[i])
		}
		if math.Float64bits(sl[i]) != math.Float64bits(sr[i]) {
			t.Fatalf("score %d: last-row %v differs from legacy %v", i, sr[i], sl[i])
		}
	}
}

// TestScoreLastRowSurvivesRestore checkpoints the default detector
// mid-stream (with a warm projection cache), restores into a fresh
// instance, and requires the continuation to match the uninterrupted
// stream bit for bit — the Snapshotter contract, now covering the
// cached-projection invalidation in Restore.
func TestScoreLastRowSurvivesRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	ref := synthRef(rng, 120, 4)

	d := New(Config{Epochs: 2, Seed: 3})
	if err := d.Fit(ref); err != nil {
		t.Fatal(err)
	}
	stream := rand.New(rand.NewSource(31))
	samples := make([][]float64, 60)
	for i := range samples {
		row := make([]float64, 4)
		for j := range row {
			row[j] = stream.NormFloat64()
		}
		samples[i] = row
	}

	want := make([]float64, 0, len(samples))
	s := make([]float64, 1)
	var snap []byte
	for i, x := range samples {
		if i == 25 {
			var err error
			if snap, err = d.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.ScoreInto(x, s); err != nil {
			t.Fatal(err)
		}
		want = append(want, s[0])
	}

	re := New(Config{Epochs: 2, Seed: 3})
	if err := re.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for i := 25; i < len(samples); i++ {
		if err := re.ScoreInto(samples[i], s); err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(s[0]) != math.Float64bits(want[i]) {
			t.Fatalf("restored score %d differs: got %v want %v", i, s[0], want[i])
		}
	}
}

// TestScoreIntoAllocFree pins the zero-allocation contract of the warm
// default scoring path (and of the full-window path, which PR 5
// already made alloc-free).
func TestScoreIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ref := synthRef(rng, 100, 6)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"last-row", Config{Epochs: 2, Seed: 5}},
		{"full-window", Config{Epochs: 2, Seed: 5, FullWindowScore: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := New(tc.cfg)
			if err := d.Fit(ref); err != nil {
				t.Fatal(err)
			}
			x := make([]float64, 6)
			s := make([]float64, 1)
			stream := rand.New(rand.NewSource(43))
			next := func() {
				for j := range x {
					x[j] = stream.NormFloat64()
				}
			}
			// Warm every ring slot, the scratch and the kernels.
			for i := 0; i < 32; i++ {
				next()
				if err := d.ScoreInto(x, s); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(200, func() {
				next()
				if err := d.ScoreInto(x, s); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("warm ScoreInto allocates %v times per record", allocs)
			}
		})
	}
}

// TestScoreWrapperMatchesScoreInto keeps the allocating Score in lock
// step with ScoreInto (it is a thin wrapper, but the equivalence is
// what callers of the plain Detector interface rely on).
func TestScoreWrapperMatchesScoreInto(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	ref := synthRef(rng, 90, 3)
	a := New(Config{Epochs: 2, Seed: 13})
	b := New(Config{Epochs: 2, Seed: 13})
	if err := a.Fit(ref); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(ref); err != nil {
		t.Fatal(err)
	}
	stream := rand.New(rand.NewSource(59))
	x := make([]float64, 3)
	s := make([]float64, 1)
	for i := 0; i < 40; i++ {
		for j := range x {
			x[j] = stream.NormFloat64()
		}
		got, err := a.Score(x)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.ScoreInto(x, s); err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got[0]) != math.Float64bits(s[0]) {
			t.Fatalf("sample %d: Score %v vs ScoreInto %v", i, got[0], s[0])
		}
	}
}
