package tranad

import (
	"math/rand"

	"github.com/navarchos/pdm/internal/checkpoint"
	"github.com/navarchos/pdm/internal/detector"
)

// snapshotTag identifies TranAD payloads among the detector snapshot
// formats.
const snapshotTag = uint8(12)

// Snapshot implements detector.Snapshotter: the standardisation
// statistics, every trained weight (in the fixed params() order) and
// the streaming score window, written oldest-first so the payload is
// canonical under ring rotation.
func (d *Detector) Snapshot() ([]byte, error) {
	var b checkpoint.Buf
	b.Uint8(snapshotTag)
	b.Bool(d.enc != nil)
	if d.enc == nil {
		return b.Bytes(), nil
	}
	b.Int(d.dim)
	b.Float64s(d.means)
	b.Float64s(d.stds)
	params := d.params()
	b.Int(len(params))
	for _, p := range params {
		b.Float64s(p.W)
	}
	b.Int(d.n)
	for r := 0; r < d.n; r++ {
		w := len(d.ring)
		b.Float64s(d.ring[(d.pos-d.n+r+2*w)%w])
	}
	return b.Bytes(), nil
}

// Restore implements detector.Snapshotter. The architecture is rebuilt
// from the configuration (the throwaway rng only initialises weights
// that are immediately overwritten), then every parameter slice is
// replaced from the snapshot.
func (d *Detector) Restore(data []byte) error {
	r := checkpoint.NewRBuf(data)
	if r.Uint8() != snapshotTag {
		return detector.ErrBadSnapshot
	}
	if !r.Bool() {
		if err := r.Close(); err != nil {
			return err
		}
		d.enc, d.dec1, d.fuse, d.dec2, d.master = nil, nil, nil, nil, nil
		d.means, d.stds, d.ring = nil, nil, nil
		d.dim, d.pos, d.n = 0, 0, 0
		return nil
	}
	dim := r.Int()
	means := r.Float64s()
	stds := r.Float64s()
	numParams := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if dim <= 0 || len(means) != dim || len(stds) != dim ||
		numParams <= 0 || numParams > 1<<16 {
		return detector.ErrBadSnapshot
	}
	weights := make([][]float64, numParams)
	for i := range weights {
		weights[i] = r.Float64s()
	}
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n < 0 || n > d.cfg.Window {
		return detector.ErrBadSnapshot
	}
	ring := make([][]float64, d.cfg.Window)
	for i := 0; i < n; i++ {
		row := r.Float64s()
		if len(row) != dim {
			return detector.ErrBadSnapshot
		}
		ring[i] = row
	}
	if err := r.Close(); err != nil {
		return err
	}

	restored := &Detector{cfg: d.cfg, dim: dim}
	restored.buildNet(dim, rand.New(rand.NewSource(d.cfg.Seed)))
	params := restored.params()
	if len(params) != numParams {
		return detector.ErrBadSnapshot
	}
	for i, p := range params {
		if len(weights[i]) != len(p.W) {
			return detector.ErrBadSnapshot
		}
		copy(p.W, weights[i])
	}

	d.dim = dim
	d.means, d.stds = means, stds
	d.enc, d.dec1, d.fuse, d.dec2 = restored.enc, restored.dec1, restored.fuse, restored.dec2
	d.master = restored.master
	d.ring = ring
	d.pos = n % len(ring)
	d.n = n
	d.resetInferCache()
	return nil
}
