package tranad

import (
	"math"
	"math/rand"
	"testing"

	"github.com/navarchos/pdm/internal/fitpool"
)

// TestWarmStartReusesWeights refits a WarmStart detector on a second
// reference and checks the refit started from the first fit's weights
// rather than a fresh initialisation: a cold refit with the same seed
// lands on different weights than the warm one.
func TestWarmStartReusesWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ref1 := synthRef(rng, 120, 4)
	ref2 := synthRef(rng, 120, 4)

	warm := New(Config{Epochs: 3, Seed: 5, WarmStart: true})
	cold := New(Config{Epochs: 3, Seed: 5})
	if err := warm.Fit(ref1); err != nil {
		t.Fatal(err)
	}
	if err := cold.Fit(ref1); err != nil {
		t.Fatal(err)
	}
	// First fits are identical: WarmStart only changes refits.
	wp, cp := warm.params(), cold.params()
	for pi := range wp {
		for j := range wp[pi].W {
			if math.Float64bits(wp[pi].W[j]) != math.Float64bits(cp[pi].W[j]) {
				t.Fatalf("first fit differs with WarmStart set (param %d weight %d)", pi, j)
			}
		}
	}

	if err := warm.Fit(ref2); err != nil {
		t.Fatal(err)
	}
	if err := cold.Fit(ref2); err != nil {
		t.Fatal(err)
	}
	same := true
	for pi := range wp {
		for j := range wp[pi].W {
			if math.Float64bits(wp[pi].W[j]) != math.Float64bits(cp[pi].W[j]) {
				same = false
			}
		}
	}
	if same {
		t.Fatal("warm refit produced identical weights to a cold refit; warm start did not engage")
	}
}

// TestWarmStartDimensionChangeFallsBack changes the feature
// dimensionality between fits; the warm path cannot reuse weights then
// and must rebuild without error.
func TestWarmStartDimensionChangeFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	d := New(Config{Epochs: 2, Seed: 3, WarmStart: true})
	if err := d.Fit(synthRef(rng, 100, 3)); err != nil {
		t.Fatal(err)
	}
	if err := d.Fit(synthRef(rng, 100, 5)); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 5)
	if _, err := d.Score(x); err != nil {
		t.Fatal(err)
	}
}

// TestWarmStartScoresUsableAfterRefit smoke-checks that a warm refit
// still yields a model that separates a level shift, and that the
// refitted detector scores through the last-row path without error.
func TestWarmStartScoresUsableAfterRefit(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ref := synthRef(rng, 150, 3)
	d := New(Config{Epochs: 4, Seed: 2, WarmStart: true})
	if err := d.Fit(ref); err != nil {
		t.Fatal(err)
	}
	if err := d.Fit(synthRef(rng, 150, 3)); err != nil {
		t.Fatal(err)
	}
	var normal, shifted float64
	for i := 0; i < 60; i++ {
		s, err := d.Score(ref[i%len(ref)])
		if err != nil {
			t.Fatal(err)
		}
		if i >= 20 {
			normal += s[0]
		}
	}
	for i := 0; i < 40; i++ {
		s, err := d.Score([]float64{8, -8, 8})
		if err != nil {
			t.Fatal(err)
		}
		if i >= 10 {
			shifted += s[0]
		}
	}
	if !(shifted/30 > normal/40) {
		t.Fatalf("level shift not separated after warm refit: normal %v shifted %v", normal/40, shifted/30)
	}
}

// TestWarmStartDeterministicAcrossWorkers extends the minibatch
// determinism contract to warm refits: the early-stop decision reduces
// per-item losses in item order, so the refit trajectory must not
// depend on the fitpool worker count.
func TestWarmStartDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	ref1 := synthRef(rng, 100, 3)
	ref2 := synthRef(rng, 100, 3)

	train := func(workers int) []float64 {
		defer fitpool.SetWorkers(fitpool.Workers())
		fitpool.SetWorkers(workers)
		d := New(Config{Epochs: 2, Seed: 9, Batch: 4, WarmStart: true})
		if err := d.Fit(ref1); err != nil {
			t.Fatal(err)
		}
		if err := d.Fit(ref2); err != nil {
			t.Fatal(err)
		}
		var flat []float64
		for _, p := range d.params() {
			flat = append(flat, p.W...)
		}
		return flat
	}

	serial := train(1)
	parallel := train(4)
	if len(serial) != len(parallel) {
		t.Fatalf("weight count differs: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if math.Float64bits(serial[i]) != math.Float64bits(parallel[i]) {
			t.Fatalf("warm refit depends on worker count at weight %d: 1w %v 4w %v",
				i, serial[i], parallel[i])
		}
	}
}
