package tranad

import (
	"math"
	"math/rand"
	"testing"

	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/mat"
)

// coupledSample returns a 4-dim sample whose features are linearly
// coupled (x2 = x0+x1, x3 = x0−x1) plus small noise — structure a
// reconstruction model can learn.
func coupledSample(rng *rand.Rand) []float64 {
	a, b := rng.NormFloat64(), rng.NormFloat64()
	return []float64{
		a + 0.02*rng.NormFloat64(),
		b + 0.02*rng.NormFloat64(),
		a + b + 0.02*rng.NormFloat64(),
		a - b + 0.02*rng.NormFloat64(),
	}
}

// brokenSample has the same marginals but a broken coupling: x2 is
// independent of x0+x1.
func brokenSample(rng *rand.Rand) []float64 {
	a, b := rng.NormFloat64(), rng.NormFloat64()
	return []float64{a, b, 1.5 * rng.NormFloat64(), a - b}
}

func coupledRef(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		out[i] = coupledSample(rng)
	}
	return out
}

func TestLifecycleAndErrors(t *testing.T) {
	d := New(Config{})
	if d.Name() != "tranad" || d.Channels() != 1 || d.ChannelNames()[0] != "reconstruction" {
		t.Error("metadata wrong")
	}
	if _, err := d.Score([]float64{1}); err != detector.ErrNotFitted {
		t.Error("unfitted Score should error")
	}
	if err := d.Fit(nil); err != detector.ErrEmptyReference {
		t.Error("empty ref should error")
	}
	if err := d.Fit([][]float64{{1, 2}, {3}}); err != detector.ErrDimension {
		t.Error("ragged ref should error")
	}
	if err := d.Fit(coupledRef(120, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Score([]float64{1}); err != detector.ErrDimension {
		t.Error("dim mismatch should error")
	}
	// Warm-up: first Window-1 scores are zero.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 7; i++ { // default window 8
		s, err := d.Score(coupledSample(rng))
		if err != nil {
			t.Fatal(err)
		}
		if s[0] != 0 {
			t.Errorf("warm-up score %d = %v, want 0", i, s[0])
		}
	}
	s, _ := d.Score(coupledSample(rng))
	if s[0] <= 0 {
		t.Errorf("full-window score = %v, want > 0", s[0])
	}
}

func TestDetectsBrokenCoupling(t *testing.T) {
	d := New(Config{Epochs: 12, Seed: 3})
	if err := d.Fit(coupledRef(300, 3)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	// Healthy stream scores.
	var healthy []float64
	for i := 0; i < 80; i++ {
		s, _ := d.Score(coupledSample(rng))
		if s[0] > 0 {
			healthy = append(healthy, s[0])
		}
	}
	// Broken-coupling stream scores (after warm-up refill).
	var broken []float64
	for i := 0; i < 80; i++ {
		s, _ := d.Score(brokenSample(rng))
		if i >= 8 && s[0] > 0 {
			broken = append(broken, s[0])
		}
	}
	hm, bm := mat.Mean(healthy), mat.Mean(broken)
	if !(bm > 2*hm) {
		t.Errorf("broken-coupling mean score %v not clearly above healthy %v", bm, hm)
	}
}

func TestDeterministicTraining(t *testing.T) {
	ref := coupledRef(150, 7)
	mk := func() []float64 {
		d := New(Config{Seed: 9, Epochs: 4})
		if err := d.Fit(ref); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(10))
		var out []float64
		for i := 0; i < 20; i++ {
			s, _ := d.Score(coupledSample(rng))
			out = append(out, s[0])
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("training not deterministic at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestShortReference(t *testing.T) {
	// Fewer samples than one window must still train and score.
	d := New(Config{Window: 10, Epochs: 3})
	if err := d.Fit(coupledRef(5, 11)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 15; i++ {
		s, err := d.Score(coupledSample(rng))
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(s[0]) || math.IsInf(s[0], 0) {
			t.Fatalf("score %d = %v", i, s[0])
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	c.defaults()
	if c.Window != 8 || c.DModel != 16 || c.Heads != 2 || c.Epochs != 8 || c.LR != 0.005 || c.MaxWindows != 512 || c.Seed != 1 {
		t.Errorf("defaults = %+v", c)
	}
	c = Config{DModel: 15, Heads: 4}
	c.defaults()
	if c.DModel%c.Heads != 0 {
		t.Errorf("DModel %d not adjusted to Heads %d", c.DModel, c.Heads)
	}
}
