package grand

import (
	"math"
	"math/rand"
	"testing"

	"github.com/navarchos/pdm/internal/neighbors"
)

// TestPValueBinaryMatchesLinear pins the O(log n) conformal p-value to
// the original linear scan, to exact float equality, across ties,
// in-between values, extremes and NaN queries.
func TestPValueBinaryMatchesLinear(t *testing.T) {
	d := New(Config{Measure: KNN})
	if err := d.Fit(normalRef(300, 21)); err != nil {
		t.Fatal(err)
	}
	queries := []float64{math.Inf(-1), -1, 0, 1e-9, 0.5, 1e12, math.Inf(1), math.NaN()}
	// Exact reference scores are the tie cases that matter.
	queries = append(queries, d.refNC[0], d.refNC[17], d.refNC[299])
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 200; i++ {
		queries = append(queries, rng.NormFloat64()*2)
	}
	for _, s := range queries {
		want, got := d.pValueLinear(s), d.pValue(s)
		if want != got && !(math.IsNaN(want) && math.IsNaN(got)) {
			t.Errorf("pValue(%v) = %v, linear scan = %v", s, got, want)
		}
	}
}

// TestPValueWithDuplicateRefs exercises heavy ties: many identical
// reference scores must still count half-mass exactly like the scan.
func TestPValueWithDuplicateRefs(t *testing.T) {
	d := New(Config{Measure: Median})
	ref := make([][]float64, 120)
	for i := range ref {
		ref[i] = []float64{float64(i % 4), 0} // only 4 distinct distances
	}
	if err := d.Fit(ref); err != nil {
		t.Fatal(err)
	}
	for _, s := range []float64{0, 0.5, 1, 1.5, 2, 3, 5} {
		if want, got := d.pValueLinear(s), d.pValue(s); want != got {
			t.Errorf("pValue(%v) = %v, linear scan = %v", s, got, want)
		}
	}
}

// TestGrandKDRefNCMatchesBrute verifies that crossing the k-d tree
// cutoff changes nothing observable for the KNN measure: every
// reference non-conformity score computed through the tree equals the
// brute-force mean k-NN distance to the last bit.
func TestGrandKDRefNCMatchesBrute(t *testing.T) {
	ref := normalRef(kdCutoff+150, 31) // forces the tree path
	d := New(Config{Measure: KNN})
	if err := d.Fit(ref); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.index.(*neighbors.KDTree); !ok {
		t.Fatalf("reference of %d points should build a KDTree, got %T", len(ref), d.index)
	}
	brute, err := neighbors.NewBrute(ref)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range ref {
		if want := neighbors.KNNDistance(brute, row, d.cfg.K); want != d.refNC[i] {
			t.Fatalf("refNC[%d] = %v via tree, %v via brute scan", i, d.refNC[i], want)
		}
	}
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 100; i++ {
		x := []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2}
		if want, got := neighbors.KNNDistance(brute, x, d.cfg.K), d.strangeness(x); want != got {
			t.Fatalf("strangeness(%v) = %v via tree, %v via brute scan", x, got, want)
		}
	}
}

// TestGrandScoreIntoMatchesScore pins ScoreInto to Score on identical
// martingale state.
func TestGrandScoreIntoMatchesScore(t *testing.T) {
	for _, m := range []Measure{Median, KNN, LOF} {
		a := New(Config{Measure: m})
		b := New(Config{Measure: m})
		ref := normalRef(kdCutoff+44, 41)
		if err := a.Fit(ref); err != nil {
			t.Fatal(err)
		}
		if err := b.Fit(ref); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		dst := make([]float64, 1)
		for i := 0; i < 80; i++ {
			x := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
			s, err := a.Score(x)
			if err != nil {
				t.Fatal(err)
			}
			if err := b.ScoreInto(x, dst); err != nil {
				t.Fatal(err)
			}
			if s[0] != dst[0] {
				t.Fatalf("%v: Score %v != ScoreInto %v at step %d", m, s[0], dst[0], i)
			}
		}
	}
}

// TestGrandLegacyKernelsMatch pins the LegacyKernels baseline (brute
// index, index re-queries for refNC, linear p-value) to the optimised
// kernels score-for-score, on both sides of the k-d tree cutoff and for
// every measure. This is what makes the grid-throughput benchmark's
// reference leg a fair baseline: same outputs, original asymptotics.
func TestGrandLegacyKernelsMatch(t *testing.T) {
	for _, m := range []Measure{Median, KNN, LOF} {
		for _, n := range []int{120, kdCutoff + 90} {
			fast := New(Config{Measure: m})
			legacy := New(Config{Measure: m, LegacyKernels: true})
			ref := normalRef(n, 61)
			if err := fast.Fit(ref); err != nil {
				t.Fatal(err)
			}
			if err := legacy.Fit(ref); err != nil {
				t.Fatal(err)
			}
			if _, ok := legacy.index.(*neighbors.KDTree); ok && m != Median {
				t.Fatalf("%v n=%d: legacy detector must not build a KDTree", m, n)
			}
			for i := range fast.refNC {
				if fast.refNC[i] != legacy.refNC[i] {
					t.Fatalf("%v n=%d: refNC[%d] = %v fast, %v legacy", m, n, i, fast.refNC[i], legacy.refNC[i])
				}
			}
			rng := rand.New(rand.NewSource(62))
			for i := 0; i < 60; i++ {
				x := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
				a, err := fast.Score(x)
				if err != nil {
					t.Fatal(err)
				}
				b, err := legacy.Score(x)
				if err != nil {
					t.Fatal(err)
				}
				if a[0] != b[0] {
					t.Fatalf("%v n=%d: fast score %v != legacy score %v at step %d", m, n, a[0], b[0], i)
				}
			}
		}
	}
}

// TestGrandScoreIntoZeroAlloc pins the steady-state scoring path to
// zero allocations for the Median and KNN measures, on both sides of
// the index cutoff.
func TestGrandScoreIntoZeroAlloc(t *testing.T) {
	for _, m := range []Measure{Median, KNN} {
		for _, n := range []int{100, kdCutoff + 144} {
			d := New(Config{Measure: m})
			if err := d.Fit(normalRef(n, 51)); err != nil {
				t.Fatal(err)
			}
			x := []float64{0.3, -0.7}
			dst := make([]float64, 1)
			// Warm the reusable query buffers.
			for i := 0; i < 5; i++ {
				if err := d.ScoreInto(x, dst); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(200, func() {
				if err := d.ScoreInto(x, dst); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%v n=%d: ScoreInto allocated %.1f per run, want 0", m, n, allocs)
			}
		}
	}
}
