// Package grand implements the Grand inductive anomaly detector
// (Rögnvaldsson et al., DMKD 2018; extended by Giannoulidis & Gounaris
// 2023) in the per-vehicle variant the paper uses: the strangeness of a
// new sample is measured against the vehicle's own reference data with a
// non-conformity measure (Median, KNN or LOF), converted into a conformal
// p-value, and accumulated into a deviation score in [0, 1) with a power
// martingale over a sliding window of recent p-values (the
// exchangeability test of Dai & Bouguelia).
package grand

import (
	"fmt"
	"math"

	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/mat"
	"github.com/navarchos/pdm/internal/neighbors"
)

// Measure selects the non-conformity measure.
type Measure int

const (
	// Median scores a sample by its distance from the componentwise
	// median of Ref — its "most central pattern".
	Median Measure = iota
	// KNN scores by the average distance to the k nearest reference
	// samples.
	KNN
	// LOF scores by the Local Outlier Factor against Ref.
	LOF
)

// String implements fmt.Stringer.
func (m Measure) String() string {
	switch m {
	case Median:
		return "median"
	case KNN:
		return "knn"
	case LOF:
		return "lof"
	default:
		return fmt.Sprintf("Measure(%d)", int(m))
	}
}

// Config parametrises the detector.
type Config struct {
	// Measure is the non-conformity measure (default KNN).
	Measure Measure
	// K is the neighbourhood size for KNN and LOF (default 10).
	K int
	// MartingaleWindow is the number of recent p-values the power
	// martingale accumulates over (default 30).
	MartingaleWindow int
	// Epsilon is the power-martingale exponent in (0, 1) (default 0.92,
	// a standard choice in the martingale-testing literature).
	Epsilon float64
}

func (c *Config) defaults() {
	if c.K <= 0 {
		c.K = 10
	}
	if c.MartingaleWindow <= 0 {
		c.MartingaleWindow = 30
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		c.Epsilon = 0.92
	}
}

// Detector is the Grand inductive detector. It emits a single score
// channel: the deviation level in [0, 1), suited to a constant
// threshold.
type Detector struct {
	cfg Config

	ref     [][]float64
	median  []float64
	index   neighbors.Index
	lof     *neighbors.LOF
	refNC   []float64 // non-conformity of each reference sample
	logBets []float64 // sliding window of log martingale bets
	betPos  int
	betN    int
}

// New returns a Grand detector with the given configuration.
func New(cfg Config) *Detector {
	cfg.defaults()
	return &Detector{cfg: cfg}
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "grand" }

// Channels implements detector.Detector.
func (d *Detector) Channels() int { return 1 }

// ChannelNames implements detector.Detector.
func (d *Detector) ChannelNames() []string { return []string{"deviation"} }

// Fit implements detector.Detector. It stores the reference set, builds
// the structures behind the chosen non-conformity measure, precomputes
// the reference samples' own non-conformity scores (needed for the
// conformal p-value) and resets the martingale.
func (d *Detector) Fit(ref [][]float64) error {
	if len(ref) == 0 {
		return detector.ErrEmptyReference
	}
	dim := len(ref[0])
	for _, row := range ref {
		if len(row) != dim {
			return detector.ErrDimension
		}
	}
	d.ref = ref
	d.logBets = make([]float64, d.cfg.MartingaleWindow)
	d.betPos, d.betN = 0, 0

	switch d.cfg.Measure {
	case Median:
		d.median = make([]float64, dim)
		col := make([]float64, len(ref))
		for c := 0; c < dim; c++ {
			for i, row := range ref {
				col[i] = row[c]
			}
			d.median[c] = mat.Median(col)
		}
	case KNN, LOF:
		idx, err := neighbors.NewBrute(ref)
		if err != nil {
			return err
		}
		d.index = idx
		if d.cfg.Measure == LOF {
			d.lof = neighbors.FitLOF(idx, d.cfg.K)
		}
	default:
		return fmt.Errorf("grand: unknown measure %d", int(d.cfg.Measure))
	}

	// Reference non-conformity scores. For KNN/LOF the reference sample
	// itself is among the neighbours; excluding it would require n
	// leave-one-out fits, so like the reference implementation we keep
	// the inductive approximation.
	d.refNC = make([]float64, len(ref))
	for i, row := range ref {
		d.refNC[i] = d.strangeness(row)
	}
	return nil
}

// strangeness computes the configured non-conformity score for x.
func (d *Detector) strangeness(x []float64) float64 {
	switch d.cfg.Measure {
	case Median:
		dist, err := mat.Euclidean(x, d.median)
		if err != nil {
			return math.NaN()
		}
		return dist
	case KNN:
		return neighbors.KNNDistance(d.index, x, d.cfg.K)
	case LOF:
		return d.lof.Score(x)
	default:
		return math.NaN()
	}
}

// pValue is the deterministic conformal p-value of a strangeness score
// against the reference scores: ties contribute half their mass (the
// usual smoothed p-value with θ fixed at ½ for reproducibility).
func (d *Detector) pValue(s float64) float64 {
	greater, equal := 0, 0
	for _, r := range d.refNC {
		switch {
		case r > s:
			greater++
		case r == s:
			equal++
		}
	}
	return (float64(greater) + 0.5*float64(equal) + 0.5) / float64(len(d.refNC)+1)
}

// Score implements detector.Detector: it pushes the sample's p-value
// into the power martingale and returns the current deviation level
// M/(1+M) ∈ [0, 1). Exchangeable (healthy) data keeps the martingale
// near 1 (deviation ≈ 0.5); a run of small p-values grows it toward 1.
func (d *Detector) Score(x []float64) ([]float64, error) {
	if d.ref == nil {
		return nil, detector.ErrNotFitted
	}
	if len(x) != len(d.ref[0]) {
		return nil, detector.ErrDimension
	}
	p := d.pValue(d.strangeness(x))
	// Power-martingale bet ε·p^(ε−1); log kept bounded for stability.
	logBet := math.Log(d.cfg.Epsilon) + (d.cfg.Epsilon-1)*math.Log(p)
	d.logBets[d.betPos] = logBet
	d.betPos = (d.betPos + 1) % len(d.logBets)
	if d.betN < len(d.logBets) {
		d.betN++
	}
	var sum float64
	for i := 0; i < d.betN; i++ {
		sum += d.logBets[i]
	}
	sum = mat.Clamp(sum, -50, 50)
	m := math.Exp(sum)
	return []float64{m / (1 + m)}, nil
}
