// Package grand implements the Grand inductive anomaly detector
// (Rögnvaldsson et al., DMKD 2018; extended by Giannoulidis & Gounaris
// 2023) in the per-vehicle variant the paper uses: the strangeness of a
// new sample is measured against the vehicle's own reference data with a
// non-conformity measure (Median, KNN or LOF), converted into a conformal
// p-value, and accumulated into a deviation score in [0, 1) with a power
// martingale over a sliding window of recent p-values (the
// exchangeability test of Dai & Bouguelia).
package grand

import (
	"fmt"
	"math"
	"sort"

	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/mat"
	"github.com/navarchos/pdm/internal/neighbors"
)

// kdCutoff is the reference size above which KNN/LOF queries run on a
// k-d tree instead of the brute-force scan. Below it the linear scan's
// cache behaviour wins; above it the tree's pruning makes both the
// refNC fit loop and steady-state scoring sublinear in practice.
const kdCutoff = 256

// Measure selects the non-conformity measure.
type Measure int

const (
	// Median scores a sample by its distance from the componentwise
	// median of Ref — its "most central pattern".
	Median Measure = iota
	// KNN scores by the average distance to the k nearest reference
	// samples.
	KNN
	// LOF scores by the Local Outlier Factor against Ref.
	LOF
)

// String implements fmt.Stringer.
func (m Measure) String() string {
	switch m {
	case Median:
		return "median"
	case KNN:
		return "knn"
	case LOF:
		return "lof"
	default:
		return fmt.Sprintf("Measure(%d)", int(m))
	}
}

// Config parametrises the detector.
type Config struct {
	// Measure is the non-conformity measure (default KNN).
	Measure Measure
	// K is the neighbourhood size for KNN and LOF (default 10).
	K int
	// MartingaleWindow is the number of recent p-values the power
	// martingale accumulates over (default 30).
	MartingaleWindow int
	// Epsilon is the power-martingale exponent in (0, 1) (default 0.92,
	// a standard choice in the martingale-testing literature).
	Epsilon float64
	// LegacyKernels restores the pre-optimisation kernels: a brute-force
	// index regardless of reference size, index re-queries for every
	// reference point's own non-conformity, and the O(n) linear p-value
	// scan. Scores are identical either way (see the equivalence tests);
	// only the asymptotics differ. It exists as the baseline leg of the
	// grid-throughput benchmark (experiments.GridPerf).
	LegacyKernels bool
}

func (c *Config) defaults() {
	if c.K <= 0 {
		c.K = 10
	}
	if c.MartingaleWindow <= 0 {
		c.MartingaleWindow = 30
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		c.Epsilon = 0.92
	}
}

// Detector is the Grand inductive detector. It emits a single score
// channel: the deviation level in [0, 1), suited to a constant
// threshold.
type Detector struct {
	cfg Config

	ref    [][]float64
	median []float64
	index  neighbors.Index
	lof    *neighbors.LOF
	query  neighbors.Query
	// refNC holds the non-conformity of each reference sample in fit
	// order; sortedNC is its NaN-free ascending copy, so the conformal
	// p-value counts run in O(log n) by binary search. ncN is the full
	// reference count (NaN entries included), fixing the p-value
	// denominator at n+1 exactly as the linear scan had it.
	refNC    []float64
	sortedNC []float64
	ncN      int
	logBets  []float64 // sliding window of log martingale bets
	betPos   int
	betN     int
}

// New returns a Grand detector with the given configuration.
func New(cfg Config) *Detector {
	cfg.defaults()
	return &Detector{cfg: cfg}
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "grand" }

// Channels implements detector.Detector.
func (d *Detector) Channels() int { return 1 }

// ChannelNames implements detector.Detector.
func (d *Detector) ChannelNames() []string { return []string{"deviation"} }

// Fit implements detector.Detector. It stores the reference set, builds
// the structures behind the chosen non-conformity measure, precomputes
// the reference samples' own non-conformity scores (needed for the
// conformal p-value) and resets the martingale.
func (d *Detector) Fit(ref [][]float64) error {
	if len(ref) == 0 {
		return detector.ErrEmptyReference
	}
	dim := len(ref[0])
	for _, row := range ref {
		if len(row) != dim {
			return detector.ErrDimension
		}
	}
	d.ref = ref
	d.logBets = make([]float64, d.cfg.MartingaleWindow)
	d.betPos, d.betN = 0, 0

	if err := d.buildMeasure(dim); err != nil {
		return err
	}

	// Reference non-conformity scores. For KNN/LOF the reference sample
	// itself is among the neighbours; excluding it would require n
	// leave-one-out fits, so like the reference implementation we keep
	// the inductive approximation. LOF rescoring reuses the neighbour
	// lists already computed by FitLOF instead of re-querying the index
	// for every reference point.
	d.refNC = make([]float64, len(ref))
	for i, row := range ref {
		if d.cfg.Measure == LOF && !d.cfg.LegacyKernels {
			d.refNC[i] = d.lof.ScoreRef(i)
		} else {
			d.refNC[i] = d.strangeness(row)
		}
	}
	d.ncN = len(d.refNC)
	d.sortedNC = d.sortedNC[:0]
	for _, v := range d.refNC {
		if !math.IsNaN(v) {
			d.sortedNC = append(d.sortedNC, v)
		}
	}
	sort.Float64s(d.sortedNC)
	return nil
}

// buildMeasure constructs the structures behind the configured
// non-conformity measure from d.ref. The build is deterministic in the
// reference set, so snapshot restore re-derives the measure instead of
// serialising k-d trees and LOF tables.
func (d *Detector) buildMeasure(dim int) error {
	switch d.cfg.Measure {
	case Median:
		d.median = make([]float64, dim)
		col := make([]float64, len(d.ref))
		for c := 0; c < dim; c++ {
			for i, row := range d.ref {
				col[i] = row[c]
			}
			d.median[c] = mat.Median(col)
		}
	case KNN, LOF:
		var idx neighbors.Index
		var err error
		if len(d.ref) >= kdCutoff && !d.cfg.LegacyKernels {
			idx, err = neighbors.NewKDTree(d.ref)
		} else {
			idx, err = neighbors.NewBrute(d.ref)
		}
		if err != nil {
			return err
		}
		d.index = idx
		if d.cfg.Measure == LOF {
			d.lof = neighbors.FitLOF(idx, d.cfg.K)
		}
	default:
		return fmt.Errorf("grand: unknown measure %d", int(d.cfg.Measure))
	}
	return nil
}

// strangeness computes the configured non-conformity score for x.
func (d *Detector) strangeness(x []float64) float64 {
	switch d.cfg.Measure {
	case Median:
		dist, err := mat.Euclidean(x, d.median)
		if err != nil {
			return math.NaN()
		}
		return dist
	case KNN:
		if d.cfg.LegacyKernels {
			return neighbors.KNNDistance(d.index, x, d.cfg.K)
		}
		return d.query.MeanDistance(d.index, x, d.cfg.K)
	case LOF:
		return d.lof.Score(x)
	default:
		return math.NaN()
	}
}

// pValue is the deterministic conformal p-value of a strangeness score
// against the reference scores: ties contribute half their mass (the
// usual smoothed p-value with θ fixed at ½ for reproducibility).
// Implemented as two binary searches over the sorted reference scores —
// identical counts to the linear scan (including the NaN conventions:
// NaN reference entries count toward neither bucket, and a NaN query
// matches nothing) in O(log n).
func (d *Detector) pValue(s float64) float64 {
	arr := d.sortedNC
	// lower: first index with arr[i] >= s. A NaN query fails every
	// comparison, driving both bounds to len(arr).
	lo, hi := 0, len(arr)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if arr[mid] >= s {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	lower := lo
	// upper: first index with arr[i] > s.
	hi = len(arr)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if arr[mid] > s {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	greater := len(arr) - lo
	equal := lo - lower
	return (float64(greater) + 0.5*float64(equal) + 0.5) / float64(d.ncN+1)
}

// pValueLinear is the original O(n) scan, kept as the oracle for the
// binary-search equivalence test and as the LegacyKernels path.
func (d *Detector) pValueLinear(s float64) float64 {
	greater, equal := 0, 0
	for _, r := range d.refNC {
		switch {
		case r > s:
			greater++
		case r == s:
			equal++
		}
	}
	return (float64(greater) + 0.5*float64(equal) + 0.5) / float64(len(d.refNC)+1)
}

// Score implements detector.Detector: it pushes the sample's p-value
// into the power martingale and returns the current deviation level
// M/(1+M) ∈ [0, 1). Exchangeable (healthy) data keeps the martingale
// near 1 (deviation ≈ 0.5); a run of small p-values grows it toward 1.
func (d *Detector) Score(x []float64) ([]float64, error) {
	out := make([]float64, 1)
	if err := d.ScoreInto(x, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ScoreInto implements detector.IntoScorer: the same martingale update
// as Score, writing the deviation into dst without allocating. With the
// Median or KNN measure the whole steady-state path — strangeness,
// binary-search p-value, martingale window — is allocation-free; LOF
// still allocates inside its reachability computation.
func (d *Detector) ScoreInto(x, dst []float64) error {
	if d.ref == nil {
		return detector.ErrNotFitted
	}
	if len(x) != len(d.ref[0]) || len(dst) != 1 {
		return detector.ErrDimension
	}
	s := d.strangeness(x)
	var p float64
	if d.cfg.LegacyKernels {
		p = d.pValueLinear(s)
	} else {
		p = d.pValue(s)
	}
	// Power-martingale bet ε·p^(ε−1); log kept bounded for stability.
	logBet := math.Log(d.cfg.Epsilon) + (d.cfg.Epsilon-1)*math.Log(p)
	d.logBets[d.betPos] = logBet
	d.betPos = (d.betPos + 1) % len(d.logBets)
	if d.betN < len(d.logBets) {
		d.betN++
	}
	var sum float64
	for i := 0; i < d.betN; i++ {
		sum += d.logBets[i]
	}
	sum = mat.Clamp(sum, -50, 50)
	m := math.Exp(sum)
	dst[0] = m / (1 + m)
	return nil
}
