package grand

import (
	"github.com/navarchos/pdm/internal/checkpoint"
	"github.com/navarchos/pdm/internal/detector"
)

// snapshotTag identifies Grand payloads among the detector snapshot
// formats.
const snapshotTag = uint8(11)

// Snapshot implements detector.Snapshotter. The reference set and the
// martingale's streaming state (reference non-conformity scores, sorted
// copy, sliding log-bet window) are serialised directly — the bets are
// history that Fit would destroy, so re-fitting on restore is not an
// option. The k-d tree / LOF tables are NOT serialised: buildMeasure
// re-derives them deterministically from the reference set.
func (d *Detector) Snapshot() ([]byte, error) {
	var b checkpoint.Buf
	b.Uint8(snapshotTag)
	b.Uint8(uint8(d.cfg.Measure))
	b.Int(d.cfg.MartingaleWindow)
	b.Bool(d.ref != nil)
	if d.ref == nil {
		return b.Bytes(), nil
	}
	b.Float64Rows(d.ref)
	b.Float64s(d.refNC)
	b.Float64s(d.sortedNC)
	b.Int(d.ncN)
	b.Float64s(d.logBets)
	b.Int(d.betPos)
	b.Int(d.betN)
	return b.Bytes(), nil
}

// Restore implements detector.Snapshotter.
func (d *Detector) Restore(data []byte) error {
	r := checkpoint.NewRBuf(data)
	if r.Uint8() != snapshotTag {
		return detector.ErrBadSnapshot
	}
	if Measure(r.Uint8()) != d.cfg.Measure {
		return detector.ErrBadSnapshot // snapshot from a different measure
	}
	if r.Int() != d.cfg.MartingaleWindow {
		return detector.ErrBadSnapshot
	}
	fitted := r.Bool()
	if !fitted {
		if err := r.Close(); err != nil {
			return err
		}
		d.ref, d.median, d.index, d.lof = nil, nil, nil, nil
		d.refNC, d.sortedNC, d.logBets = nil, nil, nil
		d.ncN, d.betPos, d.betN = 0, 0, 0
		return nil
	}
	ref := r.Float64Rows()
	refNC := r.Float64s()
	sortedNC := r.Float64s()
	ncN := r.Int()
	logBets := r.Float64s()
	betPos := r.Int()
	betN := r.Int()
	if err := r.Close(); err != nil {
		return err
	}
	if len(ref) == 0 || len(refNC) != len(ref) || ncN != len(refNC) ||
		len(sortedNC) > len(refNC) ||
		len(logBets) != d.cfg.MartingaleWindow ||
		betPos < 0 || betPos >= len(logBets) ||
		betN < 0 || betN > len(logBets) {
		return detector.ErrBadSnapshot
	}
	dim := len(ref[0])
	for _, row := range ref {
		if len(row) != dim {
			return detector.ErrBadSnapshot
		}
	}
	d.ref = ref
	d.refNC = refNC
	d.sortedNC = sortedNC
	d.ncN = ncN
	d.logBets = logBets
	d.betPos = betPos
	d.betN = betN
	return d.buildMeasure(dim)
}
