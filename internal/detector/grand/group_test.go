package grand

import (
	"testing"
	"time"

	"github.com/navarchos/pdm/internal/fleetsim"
	"github.com/navarchos/pdm/internal/transform"
)

func TestGroupDeviationErrors(t *testing.T) {
	g := NewGroupDeviation(Config{}, 0)
	if g.Window != 14*24*time.Hour {
		t.Errorf("default window = %v", g.Window)
	}
	if _, err := g.Run(nil, transform.Correlation, 12); err != ErrNoData {
		t.Error("empty records should error")
	}
}

func TestGroupDeviationOnFleet(t *testing.T) {
	cfg := fleetsim.SmallConfig()
	cfg.Days = 60
	cfg.NumVehicles = 5
	cfg.RecordedVehicles = 5
	cfg.RecordedFailures = 1
	cfg.HiddenFailures = 0
	f := fleetsim.Generate(cfg)

	g := NewGroupDeviation(Config{Measure: KNN, MartingaleWindow: 20}, 20*24*time.Hour)
	devs, err := g.Run(f.Records, transform.Correlation, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) == 0 {
		t.Fatal("no deviations computed")
	}
	vehicles := map[string]bool{}
	for _, d := range devs {
		if d.Deviation < 0 || d.Deviation >= 1 {
			t.Fatalf("deviation out of [0,1): %v", d.Deviation)
		}
		if d.Samples < 3 {
			t.Fatalf("period with too few samples emitted: %+v", d)
		}
		vehicles[d.VehicleID] = true
	}
	if len(vehicles) < 3 {
		t.Errorf("deviations cover only %d vehicles", len(vehicles))
	}
	// Output is sorted by period then vehicle.
	for i := 1; i < len(devs); i++ {
		a, b := devs[i-1], devs[i]
		if a.Period.After(b.Period) {
			t.Fatal("output not sorted by period")
		}
		if a.Period.Equal(b.Period) && a.VehicleID > b.VehicleID {
			t.Fatal("output not sorted by vehicle within period")
		}
	}
}

// TestGroupVsVehicleVariant demonstrates the paper's argument: on a
// heterogeneous fleet the group strategy flags vehicles whose USAGE
// differs from their peers, not only failing ones — its deviation levels
// for healthy-but-different vehicles are routinely high.
func TestGroupVsVehicleVariant(t *testing.T) {
	cfg := fleetsim.SmallConfig()
	cfg.Days = 50
	cfg.RecordedFailures = 0
	cfg.HiddenFailures = 0
	f := fleetsim.Generate(cfg)

	g := NewGroupDeviation(Config{Measure: KNN}, 25*24*time.Hour)
	devs, err := g.Run(f.Records, transform.MeanAgg, 12)
	if err != nil {
		t.Fatal(err)
	}
	// With mean-aggregated (raw-level) features on an all-healthy
	// heterogeneous fleet, some vehicle still deviates strongly from the
	// crowd — usage masquerading as anomaly.
	var maxDev float64
	for _, d := range devs {
		if d.Deviation > maxDev {
			maxDev = d.Deviation
		}
	}
	if maxDev < 0.9 {
		t.Errorf("expected usage heterogeneity to drive group deviation toward 1, max=%v", maxDev)
	}
}
