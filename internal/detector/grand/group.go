package grand

import (
	"errors"
	"sort"
	"time"

	"github.com/navarchos/pdm/internal/timeseries"
	"github.com/navarchos/pdm/internal/transform"
)

// GroupDeviation implements the ORIGINAL Grand strategy (Rögnvaldsson et
// al., DMKD 2018) that the paper describes before adopting the
// per-vehicle variant: the "wisdom of the crowd". Each vehicle's recent
// behaviour is compared against the rest of the fleet over the same
// calendar window; a vehicle whose samples are consistently strange
// relative to its peers is deviating.
//
// The paper argues this strategy suits homogeneous fleets (the original
// work studied city buses on similar routes) and is ill-suited to the
// Navarchos fleet, whose vehicles differ in model and usage. Having the
// group variant in the library makes that argument testable: run both
// on the synthetic fleet and compare.
type GroupDeviation struct {
	cfg Config

	// Window is the calendar period over which peers are pooled
	// (default 14 days).
	Window time.Duration
}

// NewGroupDeviation returns a fleet-level Grand detector.
func NewGroupDeviation(cfg Config, window time.Duration) *GroupDeviation {
	cfg.defaults()
	if window <= 0 {
		window = 14 * 24 * time.Hour
	}
	return &GroupDeviation{cfg: cfg, Window: window}
}

// VehicleDeviation is one vehicle's deviation level over one period.
type VehicleDeviation struct {
	VehicleID string
	Period    time.Time // period start
	Deviation float64   // martingale deviation level in [0, 1)
	Samples   int
}

// ErrNoData is returned when no transformed samples can be built.
var ErrNoData = errors.New("grand: no data for group deviation")

// Run computes, for every vehicle and every Window-sized period, the
// vehicle's deviation level against its peers: a Grand detector is
// fitted on ALL OTHER vehicles' transformed samples of the period, and
// the vehicle's own samples are streamed through it; the final
// martingale deviation is the vehicle's score for the period.
//
// kind/window parametrise the shared data transformation (the paper
// applies the group method to correlation features too).
func (g *GroupDeviation) Run(records []timeseries.Record, kind transform.Kind, trWindow int) ([]VehicleDeviation, error) {
	if len(records) == 0 {
		return nil, ErrNoData
	}
	// Transform every vehicle's stream once.
	byVehicle := timeseries.SplitByVehicle(records)
	type sample struct {
		t time.Time
		x []float64
	}
	transformed := map[string][]sample{}
	for vid, recs := range byVehicle {
		tr, err := transform.New(kind, trWindow)
		if err != nil {
			return nil, err
		}
		clean := timeseries.FilterRecords(recs, timeseries.CleanFilter)
		for _, r := range clean {
			tr.Collect(r)
			if tr.Ready() {
				transformed[vid] = append(transformed[vid], sample{t: r.Time, x: tr.Emit()})
			}
		}
	}
	// Period boundaries from the global time range.
	start, end := records[0].Time, records[len(records)-1].Time
	for _, r := range records {
		if r.Time.Before(start) {
			start = r.Time
		}
		if r.Time.After(end) {
			end = r.Time
		}
	}
	var out []VehicleDeviation
	for p := start.Truncate(24 * time.Hour); p.Before(end); p = p.Add(g.Window) {
		pEnd := p.Add(g.Window)
		// Per vehicle: own samples and peer samples of the period.
		own := map[string][][]float64{}
		for vid, ss := range transformed {
			for _, s := range ss {
				if !s.t.Before(p) && s.t.Before(pEnd) {
					own[vid] = append(own[vid], s.x)
				}
			}
		}
		for vid, mine := range own {
			if len(mine) < 3 {
				continue
			}
			var peers [][]float64
			for other, xs := range own {
				if other != vid {
					peers = append(peers, xs...)
				}
			}
			if len(peers) < 10 {
				continue
			}
			det := New(g.cfg)
			if err := det.Fit(peers); err != nil {
				continue
			}
			var last float64
			for _, x := range mine {
				s, err := det.Score(x)
				if err != nil {
					return nil, err
				}
				last = s[0]
			}
			out = append(out, VehicleDeviation{VehicleID: vid, Period: p, Deviation: last, Samples: len(mine)})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].Period.Equal(out[b].Period) {
			return out[a].Period.Before(out[b].Period)
		}
		return out[a].VehicleID < out[b].VehicleID
	})
	if len(out) == 0 {
		return nil, ErrNoData
	}
	return out, nil
}
