package grand

import (
	"math/rand"
	"testing"

	"github.com/navarchos/pdm/internal/detector"
)

func normalRef(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	ref := make([][]float64, n)
	for i := range ref {
		ref[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	return ref
}

func TestMeasureString(t *testing.T) {
	if Median.String() != "median" || KNN.String() != "knn" || LOF.String() != "lof" {
		t.Error("measure names wrong")
	}
	if Measure(9).String() != "Measure(9)" {
		t.Error("unknown measure format")
	}
}

func TestGrandLifecycle(t *testing.T) {
	for _, m := range []Measure{Median, KNN, LOF} {
		d := New(Config{Measure: m})
		if d.Channels() != 1 || d.ChannelNames()[0] != "deviation" {
			t.Errorf("%v: channel metadata wrong", m)
		}
		if _, err := d.Score([]float64{0, 0}); err != detector.ErrNotFitted {
			t.Errorf("%v: unfitted Score should error", m)
		}
		if err := d.Fit(nil); err != detector.ErrEmptyReference {
			t.Errorf("%v: empty ref should error", m)
		}
		if err := d.Fit([][]float64{{1, 2}, {3}}); err != detector.ErrDimension {
			t.Errorf("%v: ragged ref should error", m)
		}
		if err := d.Fit(normalRef(100, 1)); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if _, err := d.Score([]float64{0}); err != detector.ErrDimension {
			t.Errorf("%v: dim mismatch should error", m)
		}
		s, err := d.Score([]float64{0, 0})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(s) != 1 || s[0] < 0 || s[0] >= 1 {
			t.Errorf("%v: deviation = %v, want [0,1)", m, s)
		}
	}
}

func TestGrandDeviationGrowsUnderShift(t *testing.T) {
	// Healthy stream keeps deviation moderate; a shifted stream drives
	// it toward 1 for every measure.
	for _, m := range []Measure{Median, KNN, LOF} {
		d := New(Config{Measure: m, MartingaleWindow: 20})
		if err := d.Fit(normalRef(200, 7)); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(8))
		var healthyMax float64
		for i := 0; i < 60; i++ {
			s, err := d.Score([]float64{rng.NormFloat64(), rng.NormFloat64()})
			if err != nil {
				t.Fatal(err)
			}
			if s[0] > healthyMax {
				healthyMax = s[0]
			}
		}
		// Shifted regime: consistently strange samples.
		var last float64
		for i := 0; i < 40; i++ {
			s, _ := d.Score([]float64{8 + rng.NormFloat64(), 8 + rng.NormFloat64()})
			last = s[0]
		}
		if last < 0.95 {
			t.Errorf("%v: deviation after sustained shift = %v, want ≈1", m, last)
		}
		if healthyMax >= 0.999 {
			t.Errorf("%v: healthy deviation reached %v — martingale too jumpy", m, healthyMax)
		}
	}
}

func TestGrandRecoversAfterRefit(t *testing.T) {
	d := New(Config{Measure: KNN})
	if err := d.Fit(normalRef(150, 3)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		d.Score([]float64{9, 9})
	}
	s, _ := d.Score([]float64{9, 9})
	if s[0] < 0.9 {
		t.Fatalf("pre-refit deviation = %v", s[0])
	}
	// Refit resets the martingale: deviation drops back.
	if err := d.Fit(normalRef(150, 5)); err != nil {
		t.Fatal(err)
	}
	s, _ = d.Score([]float64{rng.NormFloat64(), rng.NormFloat64()})
	if s[0] > 0.9 {
		t.Errorf("post-refit deviation = %v, want reset", s[0])
	}
}

func TestGrandPValueRange(t *testing.T) {
	d := New(Config{Measure: Median})
	if err := d.Fit(normalRef(50, 11)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 100; i++ {
		p := d.pValue(d.strangeness([]float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}))
		if p <= 0 || p > 1 {
			t.Fatalf("p-value out of range: %v", p)
		}
	}
	// The strangest possible sample still has p >= 0.5/(n+1) > 0.
	p := d.pValue(1e12)
	if p <= 0 {
		t.Errorf("max-strangeness p-value = %v, want > 0", p)
	}
}

func TestGrandConfigDefaults(t *testing.T) {
	c := Config{}
	c.defaults()
	if c.K != 10 || c.MartingaleWindow != 30 || c.Epsilon != 0.92 {
		t.Errorf("defaults = %+v", c)
	}
	c = Config{Epsilon: 1.5}
	c.defaults()
	if c.Epsilon != 0.92 {
		t.Error("invalid epsilon should default")
	}
}
