// Package isoforest adapts Isolation Forest to the framework's step-3
// Detector interface. The paper's related work (Khan et al. 2019, UAVs)
// uses isolation forests for real-time anomaly alarms and conjectures
// that XGBoost "is expected to behave at least as well as IF"; wiring IF
// into the same harness lets that comparison run.
package isoforest

import (
	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/iforest"
)

// Detector scores samples with an isolation forest fitted on the
// reference profile. It emits a single score channel in (0, 1), suited
// to a constant threshold (like Grand's deviation score).
type Detector struct {
	cfg    iforest.Config
	forest *iforest.Forest
	dim    int
}

// New returns an isolation-forest detector.
func New(cfg iforest.Config) *Detector { return &Detector{cfg: cfg} }

// Name implements detector.Detector.
func (d *Detector) Name() string { return "isolation-forest" }

// Channels implements detector.Detector.
func (d *Detector) Channels() int { return 1 }

// ChannelNames implements detector.Detector.
func (d *Detector) ChannelNames() []string { return []string{"isolation"} }

// Fit implements detector.Detector.
func (d *Detector) Fit(ref [][]float64) error {
	if len(ref) == 0 {
		return detector.ErrEmptyReference
	}
	dim := len(ref[0])
	for _, row := range ref {
		if len(row) != dim {
			return detector.ErrDimension
		}
	}
	f, err := iforest.Fit(ref, d.cfg)
	if err != nil {
		return err
	}
	d.forest = f
	d.dim = dim
	return nil
}

// Score implements detector.Detector.
func (d *Detector) Score(x []float64) ([]float64, error) {
	if d.forest == nil {
		return nil, detector.ErrNotFitted
	}
	if len(x) != d.dim {
		return nil, detector.ErrDimension
	}
	s, err := d.forest.Score(x)
	if err != nil {
		return nil, err
	}
	return []float64{s}, nil
}
