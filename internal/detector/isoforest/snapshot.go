package isoforest

import (
	"github.com/navarchos/pdm/internal/checkpoint"
	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/iforest"
)

// snapshotTag identifies isolation-forest payloads among the detector
// snapshot formats.
const snapshotTag = uint8(14)

// Snapshot implements detector.Snapshotter: the fitted forest (with its
// effective config — see iforest.AppendTo) and input dimensionality.
func (d *Detector) Snapshot() ([]byte, error) {
	var b checkpoint.Buf
	b.Uint8(snapshotTag)
	b.Bool(d.forest != nil)
	if d.forest == nil {
		return b.Bytes(), nil
	}
	b.Int(d.dim)
	d.forest.AppendTo(&b)
	return b.Bytes(), nil
}

// Restore implements detector.Snapshotter.
func (d *Detector) Restore(data []byte) error {
	r := checkpoint.NewRBuf(data)
	if r.Uint8() != snapshotTag {
		return detector.ErrBadSnapshot
	}
	if !r.Bool() {
		if err := r.Close(); err != nil {
			return err
		}
		d.forest, d.dim = nil, 0
		return nil
	}
	dim := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if dim <= 0 {
		return detector.ErrBadSnapshot
	}
	f, err := iforest.ReadForest(r)
	if err != nil {
		return err
	}
	if err := r.Close(); err != nil {
		return err
	}
	d.forest = f
	d.dim = dim
	return nil
}
