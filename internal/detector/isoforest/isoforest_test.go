package isoforest

import (
	"math/rand"
	"testing"

	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/iforest"
)

func ref(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	return out
}

func TestLifecycle(t *testing.T) {
	d := New(iforest.Config{Trees: 50})
	if d.Name() != "isolation-forest" || d.Channels() != 1 || d.ChannelNames()[0] != "isolation" {
		t.Error("metadata wrong")
	}
	if _, err := d.Score([]float64{0, 0, 0}); err != detector.ErrNotFitted {
		t.Error("unfitted Score should error")
	}
	if err := d.Fit(nil); err != detector.ErrEmptyReference {
		t.Error("empty ref should error")
	}
	if err := d.Fit([][]float64{{1, 2}, {3}}); err != detector.ErrDimension {
		t.Error("ragged ref should error")
	}
	if err := d.Fit(ref(300, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Score([]float64{1}); err != detector.ErrDimension {
		t.Error("dim mismatch should error")
	}
	in, err := d.Score([]float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := d.Score([]float64{8, 8, 8})
	if out[0] <= in[0] {
		t.Errorf("outlier %v should outscore inlier %v", out[0], in[0])
	}
	if in[0] <= 0 || in[0] >= 1 || out[0] <= 0 || out[0] >= 1 {
		t.Errorf("scores out of (0,1): %v %v", in[0], out[0])
	}
}

func TestWorksInPipelineStyle(t *testing.T) {
	// Refit replaces the previous forest.
	d := New(iforest.Config{Trees: 30})
	if err := d.Fit(ref(100, 2)); err != nil {
		t.Fatal(err)
	}
	s1, _ := d.Score([]float64{5, 5, 5})
	// Refit on data centred at (5,5,5): the same point becomes an inlier.
	shifted := ref(100, 3)
	for _, row := range shifted {
		for c := range row {
			row[c] += 5
		}
	}
	if err := d.Fit(shifted); err != nil {
		t.Fatal(err)
	}
	s2, _ := d.Score([]float64{5, 5, 5})
	if s2[0] >= s1[0] {
		t.Errorf("score after refit (%v) should drop below %v", s2[0], s1[0])
	}
}
