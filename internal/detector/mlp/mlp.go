// Package mlp implements the engine-load-regression detector of Massaro
// et al. (IoT 2020), which the paper's related work describes: a
// multi-layer perceptron is trained on healthy data to predict one
// target signal (engine load, approximated here by manifold pressure,
// or any chosen channel) from the remaining signals; the prediction
// error on new data is the anomaly score. It is the simplest
// representative of the regression family the paper generalises with
// XGBoost.
package mlp

import (
	"math"
	"math/rand"

	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/mat"
	"github.com/navarchos/pdm/internal/nn"
)

// Config parametrises the regressor.
type Config struct {
	// Target is the feature index the MLP predicts from the others.
	Target int
	// Hidden is the hidden-layer width (default 16).
	Hidden int
	// Epochs is the number of training passes (default 60).
	Epochs int
	// LR is the Adam learning rate (default 0.01).
	LR float64
	// Seed drives initialisation and shuffling (default 1).
	Seed int64
}

func (c *Config) defaults() {
	if c.Hidden <= 0 {
		c.Hidden = 16
	}
	if c.Epochs <= 0 {
		c.Epochs = 60
	}
	if c.LR <= 0 {
		c.LR = 0.01
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Detector is the MLP regression detector. It emits a single channel:
// the absolute prediction error on the target feature.
type Detector struct {
	cfg  Config
	name string

	dim     int
	net     *nn.Sequential
	inMeans []float64
	inStds  []float64
	outMean float64
	outStd  float64
}

// New returns an MLP detector predicting the configured target channel.
// targetName labels the channel in alarms (may be empty).
func New(cfg Config, targetName string) *Detector {
	cfg.defaults()
	if targetName == "" {
		targetName = "target"
	}
	return &Detector{cfg: cfg, name: targetName}
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "mlp" }

// Channels implements detector.Detector.
func (d *Detector) Channels() int { return 1 }

// ChannelNames implements detector.Detector.
func (d *Detector) ChannelNames() []string { return []string{"pred(" + d.name + ")"} }

// Fit implements detector.Detector: standardise the reference profile
// and train the MLP to regress the target feature from the rest.
func (d *Detector) Fit(ref [][]float64) error {
	if len(ref) == 0 {
		return detector.ErrEmptyReference
	}
	dim := len(ref[0])
	for _, row := range ref {
		if len(row) != dim {
			return detector.ErrDimension
		}
	}
	if d.cfg.Target < 0 || d.cfg.Target >= dim {
		d.cfg.Target = dim - 1
	}
	d.dim = dim

	// Standardisation statistics for inputs and target.
	refM, err := mat.FromRows(ref)
	if err != nil {
		return err
	}
	means := refM.ColMeans()
	stds := refM.ColStds()
	d.inMeans = make([]float64, 0, dim-1)
	d.inStds = make([]float64, 0, dim-1)
	for c := 0; c < dim; c++ {
		if c == d.cfg.Target {
			d.outMean = means[c]
			d.outStd = stds[c]
			continue
		}
		d.inMeans = append(d.inMeans, means[c])
		d.inStds = append(d.inStds, stds[c])
	}
	if d.outStd == 0 {
		d.outStd = 1
	}

	rng := rand.New(rand.NewSource(d.cfg.Seed))
	d.net = nn.NewSequential(
		nn.NewLinear(dim-1, d.cfg.Hidden, rng),
		nn.NewTanh(),
		nn.NewLinear(d.cfg.Hidden, d.cfg.Hidden, rng),
		nn.NewTanh(),
		nn.NewLinear(d.cfg.Hidden, 1, rng),
	)
	opt := nn.NewAdam(d.net.Params(), d.cfg.LR)

	const batch = 16
	order := make([]int, len(ref))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < d.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += batch {
			end := start + batch
			if end > len(order) {
				end = len(order)
			}
			x := mat.NewMatrix(end-start, dim-1)
			y := mat.NewMatrix(end-start, 1)
			for bi, oi := range order[start:end] {
				d.fillInput(x.Row(bi), ref[oi])
				y.Set(bi, 0, (ref[oi][d.cfg.Target]-d.outMean)/d.outStd)
			}
			pred := d.net.Forward(x)
			_, grad := nn.MSELoss(pred, y)
			d.net.Backward(grad)
			opt.Step()
		}
	}
	return nil
}

// fillInput writes the standardised non-target features of row into dst.
func (d *Detector) fillInput(dst []float64, row []float64) {
	j := 0
	for c := 0; c < d.dim; c++ {
		if c == d.cfg.Target {
			continue
		}
		dst[j] = row[c] - d.inMeans[j]
		if d.inStds[j] > 0 {
			dst[j] /= d.inStds[j]
		}
		j++
	}
}

// Score implements detector.Detector: the absolute error of the target
// prediction, in the target's original units.
func (d *Detector) Score(x []float64) ([]float64, error) {
	if d.net == nil {
		return nil, detector.ErrNotFitted
	}
	if len(x) != d.dim {
		return nil, detector.ErrDimension
	}
	in := mat.NewMatrix(1, d.dim-1)
	d.fillInput(in.Row(0), x)
	pred := d.net.Forward(in).At(0, 0)*d.outStd + d.outMean
	return []float64{math.Abs(pred - x[d.cfg.Target])}, nil
}
