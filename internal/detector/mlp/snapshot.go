package mlp

import (
	"math/rand"

	"github.com/navarchos/pdm/internal/checkpoint"
	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/nn"
)

// snapshotTag identifies MLP payloads among the detector snapshot
// formats.
const snapshotTag = uint8(15)

// Snapshot implements detector.Snapshotter: the effective target index
// (Fit clamps an out-of-range configured target, making it state), the
// standardisation statistics and every trained weight.
func (d *Detector) Snapshot() ([]byte, error) {
	var b checkpoint.Buf
	b.Uint8(snapshotTag)
	b.Bool(d.net != nil)
	if d.net == nil {
		return b.Bytes(), nil
	}
	b.Int(d.dim)
	b.Int(d.cfg.Target)
	b.Float64s(d.inMeans)
	b.Float64s(d.inStds)
	b.Float64(d.outMean)
	b.Float64(d.outStd)
	params := d.net.Params()
	b.Int(len(params))
	for _, p := range params {
		b.Float64s(p.W)
	}
	return b.Bytes(), nil
}

// Restore implements detector.Snapshotter: rebuild the architecture
// from the configuration, then overwrite every weight.
func (d *Detector) Restore(data []byte) error {
	r := checkpoint.NewRBuf(data)
	if r.Uint8() != snapshotTag {
		return detector.ErrBadSnapshot
	}
	if !r.Bool() {
		if err := r.Close(); err != nil {
			return err
		}
		d.net, d.inMeans, d.inStds = nil, nil, nil
		d.dim, d.outMean, d.outStd = 0, 0, 0
		return nil
	}
	dim := r.Int()
	target := r.Int()
	inMeans := r.Float64s()
	inStds := r.Float64s()
	outMean := r.Float64()
	outStd := r.Float64()
	numParams := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if dim <= 1 || target < 0 || target >= dim ||
		len(inMeans) != dim-1 || len(inStds) != dim-1 ||
		numParams <= 0 || numParams > 1<<16 {
		return detector.ErrBadSnapshot
	}
	weights := make([][]float64, numParams)
	for i := range weights {
		weights[i] = r.Float64s()
	}
	if err := r.Close(); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(d.cfg.Seed))
	net := nn.NewSequential(
		nn.NewLinear(dim-1, d.cfg.Hidden, rng),
		nn.NewTanh(),
		nn.NewLinear(d.cfg.Hidden, d.cfg.Hidden, rng),
		nn.NewTanh(),
		nn.NewLinear(d.cfg.Hidden, 1, rng),
	)
	params := net.Params()
	if len(params) != numParams {
		return detector.ErrBadSnapshot
	}
	for i, p := range params {
		if len(weights[i]) != len(p.W) {
			return detector.ErrBadSnapshot
		}
		copy(p.W, weights[i])
	}

	d.dim = dim
	d.cfg.Target = target
	d.inMeans, d.inStds = inMeans, inStds
	d.outMean, d.outStd = outMean, outStd
	d.net = net
	return nil
}
