package mlp

import (
	"math"
	"math/rand"
	"testing"

	"github.com/navarchos/pdm/internal/detector"
)

// coupledRef: target (index 2) = x0 + 2*x1 with small noise.
func coupledRef(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		out[i] = []float64{a, b, a + 2*b + 0.02*rng.NormFloat64()}
	}
	return out
}

func TestLifecycle(t *testing.T) {
	d := New(Config{Target: 2, Epochs: 5}, "load")
	if d.Name() != "mlp" || d.Channels() != 1 || d.ChannelNames()[0] != "pred(load)" {
		t.Errorf("metadata wrong: %v", d.ChannelNames())
	}
	if _, err := d.Score([]float64{1, 2, 3}); err != detector.ErrNotFitted {
		t.Error("unfitted Score should error")
	}
	if err := d.Fit(nil); err != detector.ErrEmptyReference {
		t.Error("empty ref should error")
	}
	if err := d.Fit([][]float64{{1, 2}, {3}}); err != detector.ErrDimension {
		t.Error("ragged ref should error")
	}
	if err := d.Fit(coupledRef(200, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Score([]float64{1}); err != detector.ErrDimension {
		t.Error("dim mismatch should error")
	}
}

func TestLearnsCouplingAndDetectsBreak(t *testing.T) {
	d := New(Config{Target: 2, Epochs: 80, Seed: 2}, "x2")
	if err := d.Fit(coupledRef(400, 2)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var healthy, broken float64
	n := 40
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		s, err := d.Score([]float64{a, b, a + 2*b})
		if err != nil {
			t.Fatal(err)
		}
		healthy += s[0]
		s, _ = d.Score([]float64{a, b, a + 2*b + 3})
		broken += s[0]
	}
	healthy /= float64(n)
	broken /= float64(n)
	if healthy > 0.5 {
		t.Errorf("healthy prediction error = %v, want small", healthy)
	}
	if broken < healthy+2 {
		t.Errorf("broken-coupling error %v should exceed healthy %v by ~3", broken, healthy)
	}
}

func TestDefaultTargetAndDeterminism(t *testing.T) {
	// Out-of-range target falls back to the last channel.
	d1 := New(Config{Target: 99, Epochs: 8, Seed: 5}, "")
	if err := d1.Fit(coupledRef(150, 4)); err != nil {
		t.Fatal(err)
	}
	d2 := New(Config{Target: 99, Epochs: 8, Seed: 5}, "")
	if err := d2.Fit(coupledRef(150, 4)); err != nil {
		t.Fatal(err)
	}
	q := []float64{0.5, -0.5, -0.5}
	s1, _ := d1.Score(q)
	s2, _ := d2.Score(q)
	if s1[0] != s2[0] {
		t.Error("same seed should give identical models")
	}
	if math.IsNaN(s1[0]) {
		t.Error("score is NaN")
	}
}

func TestConstantTarget(t *testing.T) {
	// A constant target must not produce NaN (outStd guards).
	var ref [][]float64
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		ref = append(ref, []float64{rng.NormFloat64(), rng.NormFloat64(), 7})
	}
	d := New(Config{Target: 2, Epochs: 10}, "const")
	if err := d.Fit(ref); err != nil {
		t.Fatal(err)
	}
	s, err := d.Score([]float64{0, 0, 7})
	if err != nil || math.IsNaN(s[0]) {
		t.Errorf("constant-target score = %v err=%v", s, err)
	}
}
