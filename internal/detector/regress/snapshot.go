package regress

import (
	"github.com/navarchos/pdm/internal/checkpoint"
	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/gbt"
)

// snapshotTag identifies regression-detector payloads among the
// detector snapshot formats.
const snapshotTag = uint8(13)

// Snapshot implements detector.Snapshotter: channel names plus the
// per-feature boosted ensembles (each serialised with its full config —
// see gbt.AppendTo).
func (d *Detector) Snapshot() ([]byte, error) {
	var b checkpoint.Buf
	b.Uint8(snapshotTag)
	b.Bool(d.models != nil)
	if d.models == nil {
		return b.Bytes(), nil
	}
	b.Int(d.dim)
	for _, n := range d.names {
		b.String(n)
	}
	for _, m := range d.models {
		m.AppendTo(&b)
	}
	return b.Bytes(), nil
}

// Restore implements detector.Snapshotter.
func (d *Detector) Restore(data []byte) error {
	r := checkpoint.NewRBuf(data)
	if r.Uint8() != snapshotTag {
		return detector.ErrBadSnapshot
	}
	if !r.Bool() {
		if err := r.Close(); err != nil {
			return err
		}
		d.models, d.dim = nil, 0
		return nil
	}
	dim := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if dim <= 0 || dim > 1<<20 {
		return detector.ErrBadSnapshot
	}
	names := make([]string, dim)
	for i := range names {
		names[i] = r.String()
	}
	models := make([]*gbt.Regressor, 0, dim)
	for c := 0; c < dim; c++ {
		m, err := gbt.ReadRegressor(r)
		if err != nil {
			return err
		}
		// Each model predicts its feature from the dim-1 others.
		if m.NumFeatures() != dim-1 {
			return detector.ErrBadSnapshot
		}
		models = append(models, m)
	}
	if err := r.Close(); err != nil {
		return err
	}
	d.dim = dim
	d.names = names
	d.models = models
	return nil
}
