package regress

import (
	"math"
	"math/rand"
	"testing"

	"github.com/navarchos/pdm/internal/fitpool"
	"github.com/navarchos/pdm/internal/gbt"
)

// TestParallelChannelsMatchSerial trains the same reference with one and
// with many fitpool workers and requires identical scores: channel
// fan-out must not change what any booster learns.
func TestParallelChannelsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ref := make([][]float64, 160)
	for i := range ref {
		a := rng.NormFloat64()
		ref[i] = []float64{a, 2*a + 0.1*rng.NormFloat64(), rng.NormFloat64(), a * a}
	}
	cfg := gbt.Config{NumTrees: 10, MaxDepth: 3}

	fit := func(workers int) *Detector {
		defer fitpool.SetWorkers(fitpool.Workers())
		fitpool.SetWorkers(workers)
		d := New(nil, cfg)
		if err := d.Fit(ref); err != nil {
			t.Fatal(err)
		}
		return d
	}
	serial := fit(1)
	parallel := fit(4)

	probe := rand.New(rand.NewSource(22))
	for i := 0; i < 50; i++ {
		x := []float64{probe.NormFloat64(), probe.NormFloat64(), probe.NormFloat64(), probe.NormFloat64()}
		ss, err := serial.Score(x)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := parallel.Score(x)
		if err != nil {
			t.Fatal(err)
		}
		for c := range ss {
			if math.Float64bits(ss[c]) != math.Float64bits(ps[c]) {
				t.Fatalf("probe %d channel %d depends on worker count: %v vs %v", i, c, ss[c], ps[c])
			}
		}
	}
}
