package regress

import (
	"math/rand"
	"testing"

	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/gbt"
	"github.com/navarchos/pdm/internal/mat"
)

// coupledRef: x2 = x0 + x1 (learnable), x3 independent.
func coupledRef(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		out[i] = []float64{a, b, a + b + 0.05*rng.NormFloat64(), rng.NormFloat64()}
	}
	return out
}

func TestLifecycleAndErrors(t *testing.T) {
	d := New([]string{"a", "b", "c", "d"}, gbt.Config{NumTrees: 10})
	if d.Name() != "xgboost" {
		t.Error("name wrong")
	}
	if _, err := d.Score([]float64{1, 2, 3, 4}); err != detector.ErrNotFitted {
		t.Error("unfitted Score should error")
	}
	if err := d.Fit(nil); err != detector.ErrEmptyReference {
		t.Error("empty ref should error")
	}
	if err := d.Fit([][]float64{{1, 2}, {3}}); err != detector.ErrDimension {
		t.Error("ragged ref should error")
	}
	if err := d.Fit(coupledRef(150, 1)); err != nil {
		t.Fatal(err)
	}
	if d.Channels() != 4 {
		t.Errorf("Channels = %d", d.Channels())
	}
	if names := d.ChannelNames(); names[2] != "c" {
		t.Errorf("names = %v", names)
	}
	if _, err := d.Score([]float64{1}); err != detector.ErrDimension {
		t.Error("dim mismatch should error")
	}
}

func TestDetectsBrokenCouplingOnRightChannel(t *testing.T) {
	d := New(nil, gbt.Config{NumTrees: 40, MaxDepth: 4})
	if err := d.Fit(coupledRef(400, 2)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	// Healthy samples: channel 2 (the coupled one) scores low.
	var healthy2 []float64
	for i := 0; i < 50; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		s, err := d.Score([]float64{a, b, a + b, rng.NormFloat64()})
		if err != nil {
			t.Fatal(err)
		}
		healthy2 = append(healthy2, s[2])
	}
	// Broken coupling: x2 no longer equals x0+x1.
	var broken2 []float64
	for i := 0; i < 50; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		s, _ := d.Score([]float64{a, b, a + b + 4, rng.NormFloat64()})
		broken2 = append(broken2, s[2])
	}
	hm, bm := mat.Mean(healthy2), mat.Mean(broken2)
	if bm < hm+2 {
		t.Errorf("broken-coupling channel-2 score %v not clearly above healthy %v", bm, hm)
	}
	// Fallback channel names.
	if d.ChannelNames()[0] != "feature-0" {
		t.Errorf("fallback names = %v", d.ChannelNames())
	}
}

func TestScoreIsAbsoluteError(t *testing.T) {
	// With a perfectly learnable deterministic relation the score on a
	// shifted sample is approximately the shift magnitude.
	var ref [][]float64
	for i := 0; i < 200; i++ {
		v := float64(i%20) - 10
		ref = append(ref, []float64{v, 2 * v})
	}
	d := New(nil, gbt.Config{NumTrees: 60, MaxDepth: 4})
	if err := d.Fit(ref); err != nil {
		t.Fatal(err)
	}
	s, _ := d.Score([]float64{5, 10})
	if s[1] > 0.5 {
		t.Errorf("on-manifold score = %v, want ≈ 0", s[1])
	}
	s, _ = d.Score([]float64{5, 13}) // channel 1 off by 3
	if s[1] < 2 || s[1] > 4 {
		t.Errorf("shifted score = %v, want ≈ 3", s[1])
	}
}
