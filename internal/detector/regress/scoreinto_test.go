package regress

import (
	"math"
	"math/rand"
	"testing"

	"github.com/navarchos/pdm/internal/gbt"
)

func fitSynth(t *testing.T, seed int64, rows, dim int) (*Detector, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref := make([][]float64, rows)
	for i := range ref {
		row := make([]float64, dim)
		base := rng.NormFloat64()
		for j := range row {
			row[j] = base*float64(j+1) + 0.1*rng.NormFloat64()
		}
		ref[i] = row
	}
	d := New(nil, gbt.Config{NumTrees: 10, MaxDepth: 3})
	if err := d.Fit(ref); err != nil {
		t.Fatal(err)
	}
	return d, rng
}

// TestScoreIntoMatchesScore requires bit-identical per-channel scores
// from the allocating and the scratch paths: ScoreInto reorders no
// arithmetic, it only reuses buffers.
func TestScoreIntoMatchesScore(t *testing.T) {
	d, rng := fitSynth(t, 7, 150, 5)
	x := make([]float64, 5)
	dst := make([]float64, 5)
	for i := 0; i < 50; i++ {
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		want, err := d.Score(x)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.ScoreInto(x, dst); err != nil {
			t.Fatal(err)
		}
		for c := range want {
			if math.Float64bits(want[c]) != math.Float64bits(dst[c]) {
				t.Fatalf("sample %d channel %d: Score %v vs ScoreInto %v", i, c, want[c], dst[c])
			}
		}
	}
}

// TestScoreIntoAllocFree pins the zero-allocation contract of the warm
// regression scoring path.
func TestScoreIntoAllocFree(t *testing.T) {
	d, rng := fitSynth(t, 11, 150, 6)
	x := make([]float64, 6)
	dst := make([]float64, 6)
	for j := range x {
		x[j] = rng.NormFloat64()
	}
	if err := d.ScoreInto(x, dst); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := d.ScoreInto(x, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm ScoreInto allocates %v times per record", allocs)
	}
}
