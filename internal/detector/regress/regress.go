// Package regress implements the paper's regression-based detector
// (Section 3.6): one gradient-boosted regressor per feature, each
// trained on the reference profile to predict its target feature from
// the remaining ones. At inference the absolute prediction error of each
// regressor is that feature's anomaly score, so alarms carry the same
// per-feature explanations as closest-pair detection.
package regress

import (
	"math"

	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/fitpool"
	"github.com/navarchos/pdm/internal/gbt"
)

// Detector is the per-feature regression detector ("xgboost" in the
// paper's result tables).
type Detector struct {
	cfg    gbt.Config
	names  []string
	models []*gbt.Regressor
	dim    int

	dropBuf []float64 // ScoreInto scratch: x without the target column
}

// New returns a regression detector. featureNames labels the channels
// (pass the transformer's FeatureNames; nil falls back to numbered
// labels). cfg parametrises every per-feature booster; the zero Config
// takes the gbt defaults.
func New(featureNames []string, cfg gbt.Config) *Detector {
	return &Detector{cfg: cfg, names: featureNames}
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "xgboost" }

// Fit implements detector.Detector: it trains dim regressors, the c-th
// one predicting feature c from all others.
func (d *Detector) Fit(ref [][]float64) error {
	if len(ref) == 0 {
		return detector.ErrEmptyReference
	}
	dim := len(ref[0])
	for _, row := range ref {
		if len(row) != dim {
			return detector.ErrDimension
		}
	}
	d.dim = dim
	d.models = make([]*gbt.Regressor, dim)
	// Each channel's booster trains independently, so channels fan out
	// across the fitpool (each with its own design-matrix buffers —
	// results land in per-channel slots, making the fit worker-count
	// independent). LegacyFitKernels also restores the serial
	// channel-by-channel loop.
	workers := fitpool.Workers()
	if d.cfg.LegacyFitKernels {
		workers = 1
	}
	if workers > dim {
		workers = dim
	}
	errs := make([]error, dim)
	buffers := make([]struct {
		X [][]float64
		y []float64
	}, workers)
	fitpool.Run(dim, workers, func(worker, c int) {
		buf := &buffers[worker]
		if buf.X == nil {
			buf.X = make([][]float64, len(ref))
			buf.y = make([]float64, len(ref))
		}
		for i, row := range ref {
			buf.X[i] = dropColumn(row, c)
			buf.y[i] = row[c]
		}
		cfg := d.cfg
		cfg.Seed = d.cfg.Seed + int64(c) + 1
		d.models[c], errs[c] = gbt.Train(buf.X, buf.y, cfg)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if d.names == nil || len(d.names) != dim {
		d.names = detector.NumberedChannels(dim)
	}
	return nil
}

// Score implements detector.Detector: per channel, the absolute error of
// predicting that feature from the others.
func (d *Detector) Score(x []float64) ([]float64, error) {
	out := make([]float64, d.Channels())
	if err := d.ScoreInto(x, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ScoreInto implements detector.IntoScorer: Score with both the result
// and the per-channel dropped-column vectors in detector-owned scratch.
// gbt prediction walks fitted trees without allocating, so a warm
// ScoreInto is allocation-free — at fleet rates the two slices Score
// built per record (dim+1 allocations each call) were the regression
// path's dominant garbage.
func (d *Detector) ScoreInto(x, dst []float64) error {
	if d.models == nil {
		return detector.ErrNotFitted
	}
	if len(x) != d.dim || len(dst) != d.dim {
		return detector.ErrDimension
	}
	if cap(d.dropBuf) < d.dim-1 {
		d.dropBuf = make([]float64, d.dim-1)
	}
	drop := d.dropBuf[:d.dim-1]
	// Dropping column c and then column c+1 differ only at index c
	// (x[c+1] becomes x[c]), so after the initial fill each channel
	// updates one element instead of recopying the whole vector —
	// O(dim) writes across the loop rather than O(dim²).
	copy(drop, x[1:])
	for c := 0; c < d.dim; c++ {
		if c > 0 {
			drop[c-1] = x[c-1]
		}
		pred := d.models[c].Predict(drop)
		dst[c] = math.Abs(pred - x[c])
	}
	return nil
}

// ScoreLegacy is the pre-optimisation scorer, kept as the reference leg
// of the scoring benchmark (experiments.ScorePerf): per channel it
// allocates a fresh dropped-column vector, plus the result slice —
// dim+1 allocations per record. Bit-identical to Score and ScoreInto;
// only the buffer handling differs.
func (d *Detector) ScoreLegacy(x []float64) ([]float64, error) {
	if d.models == nil {
		return nil, detector.ErrNotFitted
	}
	if len(x) != d.dim {
		return nil, detector.ErrDimension
	}
	out := make([]float64, d.dim)
	for c := 0; c < d.dim; c++ {
		pred := d.models[c].Predict(dropColumn(x, c))
		out[c] = math.Abs(pred - x[c])
	}
	return out, nil
}

// Channels implements detector.Detector.
func (d *Detector) Channels() int { return d.dim }

// ChannelNames implements detector.Detector.
func (d *Detector) ChannelNames() []string { return d.names }

// dropColumn returns row without its c-th entry (fresh slice).
func dropColumn(row []float64, c int) []float64 {
	out := make([]float64, 0, len(row)-1)
	out = append(out, row[:c]...)
	return append(out, row[c+1:]...)
}
