// Package detector defines the scoring-model interface of step 3 of the
// paper's framework and its alarm vocabulary. Concrete detectors live in
// subpackages (closestpair, grand, tranad, regress).
package detector

import (
	"errors"
	"time"
)

// ErrNotFitted is returned when Score is called before a successful Fit.
var ErrNotFitted = errors.New("detector: not fitted")

// ErrEmptyReference is returned when Fit receives no reference samples.
var ErrEmptyReference = errors.New("detector: empty reference profile")

// ErrDimension is returned when a sample's dimensionality does not match
// the fitted reference.
var ErrDimension = errors.New("detector: feature dimension mismatch")

// Detector scores transformed samples against a fitted reference profile
// (the framework's Ref). Implementations are per-vehicle and not safe
// for concurrent use.
//
// A detector exposes one or more score channels: the similarity- and
// regression-based techniques in the paper score every feature
// separately (enabling the per-feature alarm explanations of Section
// 3.3/3.6), whereas the reconstruction and conformal techniques emit a
// single aggregate channel.
type Detector interface {
	// Name returns the canonical technique name used in result tables.
	Name() string
	// Fit (re)trains the detector on the reference profile; rows are
	// transformed samples. It replaces any previous fit.
	Fit(ref [][]float64) error
	// Score returns one anomaly score per channel for sample x. Higher
	// means more anomalous.
	Score(x []float64) ([]float64, error)
	// Channels returns the number of score channels (fixed after Fit).
	Channels() int
	// ChannelNames returns a label per channel for alarm explanations.
	ChannelNames() []string
}

// IntoScorer is an optional Detector extension for techniques whose
// scoring can run without per-sample allocation. ScoreInto writes one
// score per channel into dst, which must have length Channels(). The
// fleet engine and the streaming pipeline prefer this path: at millions
// of records per second the per-call []float64 of Score dominates the
// garbage collector's workload.
type IntoScorer interface {
	// ScoreInto scores x into dst without allocating. dst must not
	// alias detector-internal state and is fully overwritten.
	ScoreInto(x, dst []float64) error
}

// ScoreInto scores x into dst using d's allocation-free fast path when
// it implements IntoScorer, and falls back to Score plus a copy
// otherwise. dst must have length d.Channels().
func ScoreInto(d Detector, x, dst []float64) error {
	if is, ok := d.(IntoScorer); ok {
		return is.ScoreInto(x, dst)
	}
	s, err := d.Score(x)
	if err != nil {
		return err
	}
	if len(s) != len(dst) {
		return ErrDimension
	}
	copy(dst, s)
	return nil
}

// Snapshotter is the optional Detector extension behind the stack-wide
// checkpoint/restore seam. Snapshot serialises the detector's mutable
// fitted state — reference indexes, trained weights, streaming score
// state — never its configuration, which the owner reconstructs by
// calling the technique's New with the same parameters before Restore.
// A detector that implements Snapshotter promises bit-identical scoring
// after a snapshot/restore round-trip: Score on the restored instance
// must return exactly what the original would have returned.
type Snapshotter interface {
	// Snapshot returns the detector's fitted and streaming state.
	Snapshot() ([]byte, error)
	// Restore replaces the detector's state with a snapshot taken from
	// an identically configured instance.
	Restore(data []byte) error
}

// ErrBadSnapshot is returned by Restore when a snapshot payload does not
// decode as state for this detector type and configuration.
var ErrBadSnapshot = errors.New("detector: malformed snapshot")

// SelfCalibrator is an optional Detector extension for techniques that
// can score their own reference data leave-one-out. When implemented,
// the pipeline fits the detector on the FULL reference profile and
// calibrates thresholds from the leave-one-out scores instead of holding
// out a calibration tail — both the fit and the calibration then see all
// of Ref, which matters when profiles are only a few dozen samples.
type SelfCalibrator interface {
	// LOOScores returns, for each reference sample used in the last
	// Fit, its per-channel score computed as if that sample were not
	// part of the reference.
	LOOScores() [][]float64
}

// Alarm is an emitted anomaly alert with its explanation.
type Alarm struct {
	VehicleID string
	Time      time.Time
	Channel   int     // which score channel fired
	Feature   string  // human-readable channel label
	Score     float64 // the offending score
	Threshold float64 // the threshold it violated
}

// numberedChannels builds fallback channel names ("feature-0", ...)
// when the caller provides none.
func NumberedChannels(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "feature-" + itoa(i)
	}
	return out
}

// itoa avoids importing strconv for a two-digit label.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
