package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CriticalDiagram is the textual equivalent of the autorank critical
// diagrams in the paper's Figures 6 and 7: treatments ordered by mean
// rank, with cliques of treatments whose pairwise differences are NOT
// statistically significant connected into groups.
type CriticalDiagram struct {
	Names     []string  // treatment names ordered best (lowest mean rank) first
	MeanRanks []float64 // mean ranks in the same order
	Friedman  *FriedmanResult
	Alpha     float64
	// PairwiseP[i][j] holds the Holm-corrected significance decision
	// between ordered treatments i and j (i < j): true = significantly
	// different.
	Significant [][]bool
	// Cliques lists maximal runs of adjacent treatments that are not
	// significantly different from one another (the horizontal bars in a
	// critical diagram). Each clique is a pair of inclusive indices into
	// Names.
	Cliques [][2]int
}

// RankTreatments runs the full autorank-style procedure on a score table
// where scores[i][j] is treatment j's performance on block i (larger is
// better): Friedman omnibus test, then pairwise Wilcoxon signed-rank
// tests with Holm correction, then clique construction.
func RankTreatments(names []string, scores [][]float64, alpha float64) (*CriticalDiagram, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("stats: RankTreatments: no treatments")
	}
	for i, row := range scores {
		if len(row) != len(names) {
			return nil, fmt.Errorf("stats: RankTreatments: block %d has %d scores, want %d", i, len(row), len(names))
		}
	}
	fr, err := Friedman(scores)
	if err != nil {
		return nil, err
	}
	k := len(names)
	// Order treatments by mean rank ascending (best first).
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return fr.MeanRanks[order[a]] < fr.MeanRanks[order[b]] })

	ordNames := make([]string, k)
	ordRanks := make([]float64, k)
	for pos, idx := range order {
		ordNames[pos] = names[idx]
		ordRanks[pos] = fr.MeanRanks[idx]
	}

	// Pairwise Wilcoxon on the ordered treatments, then Holm across all
	// pairs (the autorank default for post-hoc analysis).
	type pair struct{ a, b int }
	var pairs []pair
	var pvals []float64
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			xa := column(scores, order[a])
			xb := column(scores, order[b])
			res, err := Wilcoxon(xa, xb)
			p := 1.0
			if err == nil {
				p = res.PValue
			}
			pairs = append(pairs, pair{a, b})
			pvals = append(pvals, p)
		}
	}
	rejected := HolmBonferroni(pvals, alpha)
	sig := make([][]bool, k)
	for i := range sig {
		sig[i] = make([]bool, k)
	}
	for i, pr := range pairs {
		sig[pr.a][pr.b] = rejected[i]
		sig[pr.b][pr.a] = rejected[i]
	}

	cd := &CriticalDiagram{
		Names:       ordNames,
		MeanRanks:   ordRanks,
		Friedman:    fr,
		Alpha:       alpha,
		Significant: sig,
	}
	cd.Cliques = buildCliques(sig)
	return cd, nil
}

// buildCliques finds maximal intervals [a, b] of ordered treatments in
// which no pair is significantly different, dropping intervals contained
// in larger ones — the horizontal connector bars of a critical diagram.
func buildCliques(sig [][]bool) [][2]int {
	k := len(sig)
	var cliques [][2]int
	for a := 0; a < k; a++ {
		b := a
		for b+1 < k && intervalClean(sig, a, b+1) {
			b++
		}
		if b > a {
			// Drop if contained in the previous clique.
			if len(cliques) > 0 {
				last := cliques[len(cliques)-1]
				if last[0] <= a && b <= last[1] {
					continue
				}
			}
			cliques = append(cliques, [2]int{a, b})
		}
	}
	return cliques
}

func intervalClean(sig [][]bool, a, b int) bool {
	for i := a; i <= b; i++ {
		for j := i + 1; j <= b; j++ {
			if sig[i][j] {
				return false
			}
		}
	}
	return true
}

func column(scores [][]float64, j int) []float64 {
	out := make([]float64, len(scores))
	for i, row := range scores {
		out[i] = row[j]
	}
	return out
}

// String renders the diagram as text, e.g.:
//
//	Friedman chi2=14.20 p=0.0027 (n=16 blocks, k=4 treatments)
//	 1.53  correlation ──┐
//	 2.09  raw         ──┤
//	 2.88  mean        ──┘
//	 3.50  delta
//	groups (α=0.05): {correlation raw mean}
func (cd *CriticalDiagram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Friedman chi2=%.3f p=%.4g (n=%d blocks, k=%d treatments)\n",
		cd.Friedman.Statistic, cd.Friedman.PValue, cd.Friedman.N, cd.Friedman.K)
	for i, name := range cd.Names {
		fmt.Fprintf(&b, " %5.2f  %s\n", cd.MeanRanks[i], name)
	}
	if len(cd.Cliques) == 0 {
		fmt.Fprintf(&b, "groups (alpha=%g): all pairwise differences significant\n", cd.Alpha)
		return b.String()
	}
	fmt.Fprintf(&b, "groups (alpha=%g):", cd.Alpha)
	for _, cl := range cd.Cliques {
		fmt.Fprintf(&b, " {%s}", strings.Join(cd.Names[cl[0]:cl[1]+1], " "))
	}
	b.WriteByte('\n')
	return b.String()
}
