// Package stats implements the nonparametric statistical procedures the
// paper uses to rank techniques and data transformations: rank
// assignment with tie handling, the Friedman test, the Wilcoxon
// signed-rank test, Holm–Bonferroni correction, and critical-diagram
// construction (the role the Python autorank package plays in the
// paper's Figures 6 and 7).
package stats

import "math"

// NormalCDF returns P(Z ≤ z) for a standard normal variable, computed via
// the complementary error function.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalSurvival returns P(Z > z) for a standard normal variable.
func NormalSurvival(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// ChiSquareSurvival returns P(X > x) for a chi-square variable with k
// degrees of freedom, i.e. the upper regularized incomplete gamma
// function Q(k/2, x/2). k must be ≥ 1 and x ≥ 0; invalid input yields
// NaN.
func ChiSquareSurvival(x float64, k int) float64 {
	if k < 1 || x < 0 || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	return upperRegularizedGamma(float64(k)/2, x/2)
}

// upperRegularizedGamma computes Q(a, x) = Γ(a, x)/Γ(a) using the series
// expansion for x < a+1 and the continued fraction otherwise (Numerical
// Recipes' gammp/gammq split).
func upperRegularizedGamma(a, x float64) float64 {
	if x < a+1 {
		return 1 - lowerGammaSeries(a, x)
	}
	return upperGammaContinuedFraction(a, x)
}

func lowerGammaSeries(a, x float64) float64 {
	const itmax = 500
	const eps = 1e-14
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < itmax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func upperGammaContinuedFraction(a, x float64) float64 {
	const itmax = 500
	const eps = 1e-14
	const fpmin = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
