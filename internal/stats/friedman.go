package stats

import (
	"errors"
	"fmt"
)

// FriedmanResult holds the outcome of a Friedman test across k treatments
// (methods) measured on n blocks (datasets / configurations).
type FriedmanResult struct {
	Statistic float64   // chi-square statistic (tie-corrected)
	PValue    float64   // upper-tail chi-square p-value, k-1 dof
	MeanRanks []float64 // average rank per treatment (rank 1 = best)
	N         int       // number of blocks
	K         int       // number of treatments
}

// Friedman runs the Friedman rank-sum test on a score table where
// scores[i][j] is the performance of treatment j on block i, with LARGER
// scores being better (treatments are ranked descending within each
// block). It applies the standard tie correction. Requires at least 2
// treatments and 2 blocks.
func Friedman(scores [][]float64) (*FriedmanResult, error) {
	n := len(scores)
	if n < 2 {
		return nil, errors.New("stats: Friedman needs at least 2 blocks")
	}
	k := len(scores[0])
	if k < 2 {
		return nil, errors.New("stats: Friedman needs at least 2 treatments")
	}
	rankSums := make([]float64, k)
	// Tie correction term: sum over blocks of sum(t^3 - t) for tie
	// groups of size t.
	var tieSum float64
	for i, row := range scores {
		if len(row) != k {
			return nil, fmt.Errorf("stats: Friedman: block %d has %d treatments, want %d", i, len(row), k)
		}
		ranks := RankDescending(row)
		for j, r := range ranks {
			rankSums[j] += r
		}
		tieSum += tieCorrection(row)
	}
	meanRanks := make([]float64, k)
	for j := range rankSums {
		meanRanks[j] = rankSums[j] / float64(n)
	}
	nf, kf := float64(n), float64(k)
	var ssq float64
	for _, rs := range rankSums {
		ssq += rs * rs
	}
	chi := 12/(nf*kf*(kf+1))*ssq - 3*nf*(kf+1)
	// Tie correction (Conover): divide by 1 - tieSum / (n k (k^2-1)).
	denom := 1 - tieSum/(nf*kf*(kf*kf-1))
	if denom > 0 {
		chi /= denom
	}
	p := ChiSquareSurvival(chi, k-1)
	return &FriedmanResult{Statistic: chi, PValue: p, MeanRanks: meanRanks, N: n, K: k}, nil
}

// tieCorrection returns sum(t^3 - t) over groups of tied values in row.
func tieCorrection(row []float64) float64 {
	counts := map[float64]int{}
	for _, v := range row {
		counts[v]++
	}
	var s float64
	for _, t := range counts {
		tf := float64(t)
		s += tf*tf*tf - tf
	}
	return s
}
