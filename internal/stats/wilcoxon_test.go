package stats

import (
	"math/rand"
	"testing"
)

func TestWilcoxonExactKnown(t *testing.T) {
	// scipy.stats.wilcoxon(x, y, mode='exact') on these pairs gives
	// W = 1.5? — avoid ties: use differences 1..6 all positive except one.
	x := []float64{10, 20, 30, 40, 50, 60}
	y := []float64{9, 18, 27, 36, 45, 66} // diffs: 1,2,3,4,5,-6
	res, err := Wilcoxon(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Error("n=6 without ties should use the exact distribution")
	}
	// |diffs| = 1..6 -> ranks 1..6; W- = 6, W+ = 15, W = 6.
	if res.W != 6 {
		t.Errorf("W = %v, want 6", res.W)
	}
	// Exact two-sided p: 2*P(W<=6) with n=6. Number of subsets of
	// {1..6} with sum<=6: sums 0..6 -> counts 1,1,1,2,2,3,4 = 14.
	// p = 2*14/64 = 0.4375 (matches scipy).
	if !approx(res.PValue, 0.4375, 1e-12) {
		t.Errorf("p = %v, want 0.4375", res.PValue)
	}
}

func TestWilcoxonAllSameSign(t *testing.T) {
	// Distinct |differences| 1..5 so the exact path is used.
	x := []float64{2, 4, 6, 8, 10}
	y := []float64{1, 2, 3, 4, 5}
	res, err := Wilcoxon(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.W != 0 {
		t.Errorf("W = %v, want 0 for one-sided dominance", res.W)
	}
	// p = 2 * P(W <= 0) = 2 * 1/2^5 = 0.0625
	if !approx(res.PValue, 0.0625, 1e-12) {
		t.Errorf("p = %v, want 0.0625", res.PValue)
	}
}

func TestWilcoxonZeroDiffsDropped(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{1, 2, 2, 5} // two zero diffs dropped -> n=2
	res, err := Wilcoxon(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 2 {
		t.Errorf("N = %d, want 2", res.N)
	}
	if _, err := Wilcoxon([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("all-zero differences should error")
	}
	if _, err := Wilcoxon([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestWilcoxonApproxLargeN(t *testing.T) {
	// n > exactThreshold forces the normal approximation; a strongly
	// one-sided difference must give a small p, a symmetric one a large p.
	rng := rand.New(rand.NewSource(5))
	n := 40
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		base := rng.NormFloat64()
		x[i] = base + 2
		y[i] = base + rng.NormFloat64()*0.1
	}
	res, err := Wilcoxon(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Error("n=40 should use normal approximation")
	}
	if res.PValue > 1e-4 {
		t.Errorf("strong shift: p = %v, want tiny", res.PValue)
	}
	// Symmetric noise: p should not be extreme.
	for i := 0; i < n; i++ {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	res, err = Wilcoxon(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.001 {
		t.Errorf("pure noise: p = %v, suspiciously small", res.PValue)
	}
}

func TestHolmBonferroni(t *testing.T) {
	// Example: p = [0.01, 0.04, 0.03, 0.005], alpha = 0.05.
	// Sorted: 0.005 (m=4: 0.0125 ok), 0.01 (m-1=3: 0.0167 ok),
	// 0.03 (2: 0.025 FAIL) -> stop. Rejected: 0.005, 0.01 only.
	p := []float64{0.01, 0.04, 0.03, 0.005}
	rej := HolmBonferroni(p, 0.05)
	want := []bool{true, false, false, true}
	for i := range want {
		if rej[i] != want[i] {
			t.Errorf("Holm[%d] = %v, want %v", i, rej[i], want[i])
		}
	}
}

func TestHolmBonferroniEdge(t *testing.T) {
	if got := HolmBonferroni(nil, 0.05); len(got) != 0 {
		t.Error("empty input should give empty output")
	}
	rej := HolmBonferroni([]float64{1, 1, 1}, 0.05)
	for _, r := range rej {
		if r {
			t.Error("p=1 must never be rejected")
		}
	}
	rej = HolmBonferroni([]float64{0, 0}, 0.05)
	for _, r := range rej {
		if !r {
			t.Error("p=0 must always be rejected")
		}
	}
}

func TestWilcoxonScipyReference(t *testing.T) {
	// scipy.stats.wilcoxon([1,2,3,4,5,6,7,8], [2,4,6,8,10,12,14,16],
	// mode='exact') -> statistic 0, p = 2/2^8 = 0.0078125.
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{2, 4, 6, 8, 10, 12, 14, 16}
	res, err := Wilcoxon(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.W != 0 {
		t.Fatalf("W=%v exact=%v", res.W, res.Exact)
	}
	if !approx(res.PValue, 0.0078125, 1e-12) {
		t.Errorf("p = %v, want 0.0078125", res.PValue)
	}
}

func TestFriedmanWithTies(t *testing.T) {
	// Ties within blocks exercise the tie-corrected statistic; the
	// p-value must stay in range and the statistic finite.
	scores := [][]float64{
		{1, 1, 2},
		{2, 2, 3},
		{1, 2, 2},
		{3, 3, 3},
		{2, 1, 1},
	}
	res, err := Friedman(scores)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic < 0 || res.PValue < 0 || res.PValue > 1 {
		t.Errorf("tie-corrected Friedman out of range: chi2=%v p=%v", res.Statistic, res.PValue)
	}
	// All-tied block contributes rank 2 to everyone; rank sums still
	// total n*k*(k+1)/2.
	var total float64
	for _, r := range res.MeanRanks {
		total += r * float64(res.N)
	}
	want := float64(res.N*res.K*(res.K+1)) / 2
	if !approx(total, want, 1e-9) {
		t.Errorf("rank mass = %v, want %v", total, want)
	}
}
