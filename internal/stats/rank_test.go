package stats

import (
	"math/rand"
	"testing"
)

func TestRankData(t *testing.T) {
	got := RankData([]float64{3, 1, 4, 1, 5})
	want := []float64{3, 1.5, 4, 1.5, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("RankData[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRankDataAllTied(t *testing.T) {
	got := RankData([]float64{7, 7, 7})
	for _, r := range got {
		if r != 2 {
			t.Errorf("all-tied ranks = %v, want all 2", got)
		}
	}
}

func TestRankDescending(t *testing.T) {
	got := RankDescending([]float64{0.9, 0.5, 0.7})
	want := []float64{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("RankDescending[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRankSumInvariant(t *testing.T) {
	// Sum of ranks must always be n(n+1)/2 regardless of ties.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(5)) // force ties
		}
		ranks := RankData(x)
		var s float64
		for _, r := range ranks {
			s += r
		}
		want := float64(n*(n+1)) / 2
		if s != want {
			t.Fatalf("rank sum = %v, want %v (x=%v)", s, want, x)
		}
	}
}
