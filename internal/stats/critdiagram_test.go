package stats

import (
	"strings"
	"testing"
)

func TestRankTreatmentsOrdering(t *testing.T) {
	// Treatment "good" always wins, "bad" always loses, mid in between.
	names := []string{"mid", "good", "bad"}
	var scores [][]float64
	for i := 0; i < 12; i++ {
		f := float64(i)
		scores = append(scores, []float64{0.5 + f/100, 0.9 + f/100, 0.1 + f/100})
	}
	cd, err := RankTreatments(names, scores, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if cd.Names[0] != "good" || cd.Names[1] != "mid" || cd.Names[2] != "bad" {
		t.Errorf("order = %v, want [good mid bad]", cd.Names)
	}
	if cd.MeanRanks[0] != 1 || cd.MeanRanks[2] != 3 {
		t.Errorf("mean ranks = %v", cd.MeanRanks)
	}
	if cd.Friedman.PValue > 0.01 {
		t.Errorf("omnibus p = %v, want significant", cd.Friedman.PValue)
	}
	// With 12 consistent blocks, every pairwise difference is
	// significant: no cliques.
	if len(cd.Cliques) != 0 {
		t.Errorf("cliques = %v, want none", cd.Cliques)
	}
	s := cd.String()
	if !strings.Contains(s, "good") || !strings.Contains(s, "Friedman") {
		t.Errorf("String() missing content: %q", s)
	}
}

func TestRankTreatmentsCliques(t *testing.T) {
	// Two statistically indistinguishable treatments plus one clear loser.
	names := []string{"a", "b", "loser"}
	var scores [][]float64
	alt := []float64{0.8, 0.81}
	for i := 0; i < 14; i++ {
		a, b := alt[i%2], alt[(i+1)%2]
		scores = append(scores, []float64{a, b, 0.1})
	}
	cd, err := RankTreatments(names, scores, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// a and b should form a clique; the loser should be outside it.
	found := false
	for _, cl := range cd.Cliques {
		members := cd.Names[cl[0] : cl[1]+1]
		has := map[string]bool{}
		for _, m := range members {
			has[m] = true
		}
		if has["a"] && has["b"] && !has["loser"] {
			found = true
		}
	}
	if !found {
		t.Errorf("expected clique {a b}; got %v (names %v)", cd.Cliques, cd.Names)
	}
}

func TestRankTreatmentsErrors(t *testing.T) {
	if _, err := RankTreatments(nil, nil, 0.05); err == nil {
		t.Error("no treatments should error")
	}
	if _, err := RankTreatments([]string{"a", "b"}, [][]float64{{1}}, 0.05); err == nil {
		t.Error("ragged scores should error")
	}
}
