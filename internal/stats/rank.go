package stats

import "sort"

// RankData assigns ranks 1..n to the values of x, averaging the ranks of
// ties (fractional ranks), matching scipy.stats.rankdata's "average"
// method. Smaller values receive smaller ranks.
func RankData(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	ranks := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		// Positions i..j (0-based) share the average rank.
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// RankDescending assigns rank 1 to the LARGEST value (ties averaged).
// This is the convention of classifier-ranking critical diagrams where
// "rank 1" means "best" and larger scores are better.
func RankDescending(x []float64) []float64 {
	neg := make([]float64, len(x))
	for i, v := range x {
		neg[i] = -v
	}
	return RankData(neg)
}
