package stats

import (
	"errors"
	"math"
)

// WilcoxonResult holds the outcome of a Wilcoxon signed-rank test.
type WilcoxonResult struct {
	W      float64 // min(W+, W-) statistic
	PValue float64 // two-sided p-value
	N      int     // effective sample size after dropping zero differences
	Exact  bool    // whether the exact null distribution was used
}

// exactThreshold is the largest effective n for which the exact signed
// rank null distribution is enumerated; above it the normal
// approximation with tie correction is used (scipy switches at n=25 by
// default as well).
const exactThreshold = 25

// Wilcoxon runs the two-sided Wilcoxon signed-rank test on paired samples
// x and y, testing the null hypothesis that the median of x-y is zero.
// Zero differences are discarded (Wilcoxon's original treatment). It
// errors when the slices differ in length or fewer than one nonzero
// difference remains.
func Wilcoxon(x, y []float64) (*WilcoxonResult, error) {
	if len(x) != len(y) {
		return nil, errors.New("stats: Wilcoxon: length mismatch")
	}
	diffs := make([]float64, 0, len(x))
	for i := range x {
		d := x[i] - y[i]
		if d != 0 {
			diffs = append(diffs, d)
		}
	}
	n := len(diffs)
	if n < 1 {
		return nil, errors.New("stats: Wilcoxon: all differences are zero")
	}
	abs := make([]float64, n)
	for i, d := range diffs {
		abs[i] = math.Abs(d)
	}
	ranks := RankData(abs)
	var wPlus, wMinus float64
	hasTies := false
	seen := map[float64]bool{}
	for i, d := range diffs {
		if seen[abs[i]] {
			hasTies = true
		}
		seen[abs[i]] = true
		if d > 0 {
			wPlus += ranks[i]
		} else {
			wMinus += ranks[i]
		}
	}
	w := math.Min(wPlus, wMinus)

	if n <= exactThreshold && !hasTies {
		p := exactSignedRankP(w, n)
		return &WilcoxonResult{W: w, PValue: p, N: n, Exact: true}, nil
	}
	// Normal approximation with tie correction and continuity correction.
	nf := float64(n)
	mean := nf * (nf + 1) / 4
	varW := nf * (nf + 1) * (2*nf + 1) / 24
	varW -= tieCorrection(abs) / 48
	if varW <= 0 {
		return &WilcoxonResult{W: w, PValue: 1, N: n, Exact: false}, nil
	}
	z := (w - mean + 0.5) / math.Sqrt(varW)
	p := 2 * NormalCDF(z)
	if p > 1 {
		p = 1
	}
	return &WilcoxonResult{W: w, PValue: p, N: n, Exact: false}, nil
}

// exactSignedRankP returns the exact two-sided p-value
// P(W ≤ w) * 2 under the signed-rank null distribution for n untied
// observations, computed by dynamic programming over the 2^n sign
// assignments: counts[s] = number of subsets of {1..n} summing to s.
func exactSignedRankP(w float64, n int) float64 {
	maxSum := n * (n + 1) / 2
	counts := make([]float64, maxSum+1)
	counts[0] = 1
	for r := 1; r <= n; r++ {
		for s := maxSum; s >= r; s-- {
			counts[s] += counts[s-r]
		}
	}
	var cum float64
	limit := int(math.Floor(w))
	for s := 0; s <= limit && s <= maxSum; s++ {
		cum += counts[s]
	}
	total := math.Pow(2, float64(n))
	p := 2 * cum / total
	if p > 1 {
		p = 1
	}
	return p
}

// HolmBonferroni applies the Holm step-down correction to a slice of
// p-values at significance level alpha. It returns, for each hypothesis,
// whether it is rejected (significant) after correction, preserving the
// input order.
func HolmBonferroni(pvalues []float64, alpha float64) []bool {
	m := len(pvalues)
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	// Sort ascending by p-value (insertion sort: m is tiny here).
	for i := 1; i < m; i++ {
		j := i
		for j > 0 && pvalues[order[j-1]] > pvalues[order[j]] {
			order[j-1], order[j] = order[j], order[j-1]
			j--
		}
	}
	rejected := make([]bool, m)
	for k, idx := range order {
		threshold := alpha / float64(m-k)
		if pvalues[idx] <= threshold {
			rejected[idx] = true
		} else {
			break // step-down: once we fail to reject, stop
		}
	}
	return rejected
}
