package stats

import (
	"math"
	"testing"
)

func TestFriedmanKnownValue(t *testing.T) {
	// Perfectly consistent ordering t0 > t2 > t1 in every block: rank
	// sums 8, 24, 16; chi2 = 12/(8*3*4)*(64+576+256) - 3*8*4 = 16,
	// the maximum n*(k-1) for k=3, n=8 (matches
	// scipy.stats.friedmanchisquare, which is rank-direction invariant
	// without ties).
	scores := [][]float64{
		{4, 2, 3},
		{4, 2, 3},
		{3, 1, 2},
		{5, 3, 4},
		{6, 4, 5},
		{5, 2, 3},
		{6, 3, 4},
		{4, 1, 2},
	}
	res, err := Friedman(scores)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Statistic, 16, 1e-9) {
		t.Errorf("chi2 = %v, want 16", res.Statistic)
	}
	// Treatment 0 is always best => mean rank 1; treatment 1 always
	// worst => mean rank 3.
	if res.MeanRanks[0] != 1 || res.MeanRanks[1] != 3 || res.MeanRanks[2] != 2 {
		t.Errorf("mean ranks = %v, want [1 3 2]", res.MeanRanks)
	}
	if res.PValue >= 0.01 {
		t.Errorf("p = %v, want < 0.01 for perfectly consistent ordering", res.PValue)
	}
}

func TestFriedmanNoDifference(t *testing.T) {
	// Identical scores in every block: chi-square statistic 0, p = 1.
	scores := [][]float64{
		{1, 1, 1},
		{2, 2, 2},
		{3, 3, 3},
	}
	res, err := Friedman(scores)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic != 0 {
		t.Errorf("chi2 = %v, want 0", res.Statistic)
	}
	if !approx(res.PValue, 1, 1e-9) {
		t.Errorf("p = %v, want 1", res.PValue)
	}
	for _, r := range res.MeanRanks {
		if r != 2 {
			t.Errorf("mean ranks = %v, want all 2", res.MeanRanks)
		}
	}
}

func TestFriedmanErrors(t *testing.T) {
	if _, err := Friedman([][]float64{{1, 2}}); err == nil {
		t.Error("single block should error")
	}
	if _, err := Friedman([][]float64{{1}, {2}}); err == nil {
		t.Error("single treatment should error")
	}
	if _, err := Friedman([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged table should error")
	}
}

func TestFriedmanPValueRange(t *testing.T) {
	scores := [][]float64{
		{0.1, 0.9, 0.5, 0.3},
		{0.2, 0.8, 0.6, 0.1},
		{0.9, 0.2, 0.4, 0.3},
		{0.5, 0.5, 0.5, 0.5},
	}
	res, err := Friedman(scores)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0 || res.PValue > 1 || math.IsNaN(res.PValue) {
		t.Errorf("p out of range: %v", res.PValue)
	}
}
