package stats

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNormalCDF(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); !approx(got, c.want, 1e-10) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestNormalSurvival(t *testing.T) {
	for _, z := range []float64{-2, -0.5, 0, 0.5, 2} {
		if got := NormalSurvival(z) + NormalCDF(z); !approx(got, 1, 1e-12) {
			t.Errorf("CDF+survival at %v = %v, want 1", z, got)
		}
	}
}

func TestChiSquareSurvival(t *testing.T) {
	// Reference values from scipy.stats.chi2.sf.
	cases := []struct {
		x    float64
		k    int
		want float64
	}{
		{0, 3, 1},
		{3.841458820694124, 1, 0.05},
		{5.991464547107979, 2, 0.05},
		{7.814727903251179, 3, 0.05},
		{2, 2, math.Exp(-1)}, // chi2(2) is Exp(1/2): sf(x) = exp(-x/2)
		{10, 2, math.Exp(-5)},
	}
	for _, c := range cases {
		if got := ChiSquareSurvival(c.x, c.k); !approx(got, c.want, 1e-9) {
			t.Errorf("ChiSquareSurvival(%v, %d) = %v, want %v", c.x, c.k, got, c.want)
		}
	}
	if !math.IsNaN(ChiSquareSurvival(-1, 2)) {
		t.Error("negative x should be NaN")
	}
	if !math.IsNaN(ChiSquareSurvival(1, 0)) {
		t.Error("k=0 should be NaN")
	}
}

func TestChiSquareSurvivalMonotone(t *testing.T) {
	for k := 1; k <= 10; k++ {
		prev := 1.0
		for x := 0.0; x < 30; x += 0.5 {
			s := ChiSquareSurvival(x, k)
			if s > prev+1e-12 {
				t.Fatalf("survival not monotone at x=%v k=%d: %v > %v", x, k, s, prev)
			}
			if s < 0 || s > 1 {
				t.Fatalf("survival out of range at x=%v k=%d: %v", x, k, s)
			}
			prev = s
		}
	}
}
