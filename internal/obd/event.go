package obd

import (
	"fmt"
	"time"
)

// EventType classifies maintenance events of interest. The paper's key
// distinction: repairs are urgent, non-periodic maintenance ("failures"
// in the evaluation), services are scheduled maintenance, and DTC events
// are ECU code emissions.
type EventType int

const (
	// EventService is a standard periodic service.
	EventService EventType = iota
	// EventRepair is an unscheduled repair; the 30/15-day window before
	// it is the failure state the detectors must flag.
	EventRepair
	// EventDTC is a diagnostic trouble code emission.
	EventDTC
)

// String implements fmt.Stringer.
func (t EventType) String() string {
	switch t {
	case EventService:
		return "service"
	case EventRepair:
		return "repair"
	case EventDTC:
		return "dtc"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// Event is a recorded maintenance or diagnostic occurrence on a vehicle.
type Event struct {
	VehicleID string
	Time      time.Time
	Type      EventType
	DTC       *DTC   // non-nil only for EventDTC
	Note      string // free-text description (e.g. repaired component)
}

// String renders the event compactly for logs.
func (e Event) String() string {
	s := fmt.Sprintf("%s %s %s", e.Time.Format("2006-01-02"), e.VehicleID, e.Type)
	if e.DTC != nil {
		s += " " + e.DTC.Code
	}
	if e.Note != "" {
		s += " (" + e.Note + ")"
	}
	return s
}

// IsReset reports whether the event should trigger a reference-profile
// reset under the paper's default policy (step 2 of the framework):
// services and repairs both imply "the vehicle operates normally
// afterwards".
func (e Event) IsReset() bool {
	return e.Type == EventService || e.Type == EventRepair
}
