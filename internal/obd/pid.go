// Package obd models the vehicle-side domain objects of the paper's
// setting: the six OBD-II Parameter ID (PID) signals collected by the
// fleet management system, Diagnostic Trouble Codes (DTCs), and the
// maintenance events (services, repairs) whose partial recording defines
// the problem.
package obd

import "fmt"

// PID identifies one of the monitored OBD-II parameters.
type PID int

// The six PIDs collected by the Navarchos FMS (Section 1 of the paper),
// in the order used throughout the library for feature vectors.
const (
	EngineRPM      PID = iota // engine speed, revolutions per minute
	Speed                     // vehicle speed, km/h
	CoolantTemp               // engine coolant temperature, °C
	IntakeTemp                // intake manifold air temperature, °C
	MAPIntake                 // manifold absolute pressure, kPa
	MAFAirFlowRate            // mass air flow rate, g/s
	NumPIDs                   // count of PIDs; keep last
)

var pidNames = [NumPIDs]string{
	"rpm", "speed", "coolantTemp", "intakeTemp", "mapIntake", "MAFairFlowRate",
}

// String returns the short signal name used in logs and result tables.
func (p PID) String() string {
	if p < 0 || p >= NumPIDs {
		return fmt.Sprintf("PID(%d)", int(p))
	}
	return pidNames[p]
}

// AllPIDs returns the six monitored PIDs in canonical order.
func AllPIDs() []PID {
	out := make([]PID, NumPIDs)
	for i := range out {
		out[i] = PID(i)
	}
	return out
}

// PIDNames returns the canonical signal names in PID order.
func PIDNames() []string {
	out := make([]string, NumPIDs)
	for i := range out {
		out[i] = PID(i).String()
	}
	return out
}

// Range describes the physically plausible envelope of a PID; values
// outside it are treated as sensor faults and filtered before any
// transformation (Section 3.2 of the paper).
type Range struct{ Min, Max float64 }

// Envelope returns the plausible range for each PID. The bounds are
// generous: they are meant to reject transmission glitches (e.g. -40 °C
// coolant while driving, 20 000 rpm), not to clip legitimate operation.
func Envelope(p PID) Range {
	switch p {
	case EngineRPM:
		return Range{0, 8000}
	case Speed:
		return Range{0, 220}
	case CoolantTemp:
		return Range{-30, 135}
	case IntakeTemp:
		return Range{-30, 90}
	case MAPIntake:
		return Range{10, 255}
	case MAFAirFlowRate:
		return Range{0, 350}
	default:
		return Range{0, 0}
	}
}

// InEnvelope reports whether v is physically plausible for PID p.
func InEnvelope(p PID, v float64) bool {
	r := Envelope(p)
	return v >= r.Min && v <= r.Max
}
