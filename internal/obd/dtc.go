package obd

import "fmt"

// DTCKind distinguishes the two classes of Diagnostic Trouble Codes the
// ECU produces (Section 1): pending codes are one-off observations that
// do not repeat; stored codes indicate a repeating malfunction.
type DTCKind int

const (
	// DTCPending marks a malfunction observed once.
	DTCPending DTCKind = iota
	// DTCStored marks a repeating malfunction.
	DTCStored
)

// String implements fmt.Stringer.
func (k DTCKind) String() string {
	switch k {
	case DTCPending:
		return "pending"
	case DTCStored:
		return "stored"
	default:
		return fmt.Sprintf("DTCKind(%d)", int(k))
	}
}

// DTC is a diagnostic trouble code report.
type DTC struct {
	Code string // e.g. "P0128" (coolant thermostat), "P0101" (MAF range)
	Kind DTCKind
}

// Common powertrain codes used by the simulator. The fleet in the paper
// consists of new vehicles, so DTCs are sparse and — crucially — poorly
// aligned with actual failures (Figure 1).
var (
	DTCThermostat    = DTC{Code: "P0128", Kind: DTCStored}  // coolant below thermostat temp
	DTCMAFRange      = DTC{Code: "P0101", Kind: DTCStored}  // MAF circuit range/performance
	DTCMAPRange      = DTC{Code: "P0106", Kind: DTCPending} // MAP range/performance
	DTCIntakeLeak    = DTC{Code: "P0171", Kind: DTCPending} // system too lean
	DTCMisfire       = DTC{Code: "P0300", Kind: DTCPending} // random misfire
	DTCCoolantSensor = DTC{Code: "P0117", Kind: DTCPending} // coolant sensor low input
)

// KnownDTCs lists the codes the simulator can emit.
func KnownDTCs() []DTC {
	return []DTC{DTCThermostat, DTCMAFRange, DTCMAPRange, DTCIntakeLeak, DTCMisfire, DTCCoolantSensor}
}
