package obd

import (
	"testing"
	"time"
)

func TestPIDNames(t *testing.T) {
	names := PIDNames()
	if len(names) != int(NumPIDs) {
		t.Fatalf("got %d names, want %d", len(names), NumPIDs)
	}
	want := []string{"rpm", "speed", "coolantTemp", "intakeTemp", "mapIntake", "MAFairFlowRate"}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("names[%d] = %q, want %q", i, names[i], w)
		}
	}
	if PID(99).String() != "PID(99)" {
		t.Errorf("out-of-range PID String = %q", PID(99).String())
	}
	if len(AllPIDs()) != int(NumPIDs) {
		t.Error("AllPIDs wrong length")
	}
}

func TestEnvelope(t *testing.T) {
	if !InEnvelope(EngineRPM, 800) {
		t.Error("idle rpm should be plausible")
	}
	if InEnvelope(EngineRPM, 20000) {
		t.Error("20000 rpm should be implausible")
	}
	if InEnvelope(CoolantTemp, -40) {
		t.Error("-40C coolant should be implausible")
	}
	if !InEnvelope(Speed, 0) {
		t.Error("0 km/h must be in envelope")
	}
	if InEnvelope(MAFAirFlowRate, -5) {
		t.Error("negative MAF should be implausible")
	}
	r := Envelope(PID(99))
	if r.Min != 0 || r.Max != 0 {
		t.Error("unknown PID should have empty envelope")
	}
}

func TestDTCKindString(t *testing.T) {
	if DTCPending.String() != "pending" || DTCStored.String() != "stored" {
		t.Error("DTCKind names wrong")
	}
	if DTCKind(9).String() != "DTCKind(9)" {
		t.Error("unknown kind format wrong")
	}
	if len(KnownDTCs()) < 5 {
		t.Error("expected several known DTCs")
	}
}

func TestEventString(t *testing.T) {
	ts := time.Date(2023, 4, 1, 12, 0, 0, 0, time.UTC)
	e := Event{VehicleID: "veh-01", Time: ts, Type: EventRepair, Note: "thermostat"}
	got := e.String()
	want := "2023-04-01 veh-01 repair (thermostat)"
	if got != want {
		t.Errorf("Event.String = %q, want %q", got, want)
	}
	d := DTCThermostat
	e2 := Event{VehicleID: "veh-02", Time: ts, Type: EventDTC, DTC: &d}
	if got := e2.String(); got != "2023-04-01 veh-02 dtc P0128" {
		t.Errorf("DTC event string = %q", got)
	}
	if EventType(7).String() != "EventType(7)" {
		t.Error("unknown event type format wrong")
	}
}

func TestEventIsReset(t *testing.T) {
	if !(Event{Type: EventService}).IsReset() {
		t.Error("service should reset")
	}
	if !(Event{Type: EventRepair}).IsReset() {
		t.Error("repair should reset")
	}
	if (Event{Type: EventDTC}).IsReset() {
		t.Error("DTC should not reset")
	}
}
