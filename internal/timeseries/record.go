// Package timeseries provides the record, window and aggregation
// machinery shared by the data transformations and the detection
// pipeline: timestamped multivariate samples, sliding windows over them,
// per-day aggregates for the exploratory analysis, and the
// stationary-state / sensor-fault filters the paper applies before every
// transformation (Section 3.2).
package timeseries

import (
	"errors"
	"time"

	"github.com/navarchos/pdm/internal/checkpoint"
	"github.com/navarchos/pdm/internal/obd"
)

// Record is one multivariate PID measurement from one vehicle, sampled
// at one-minute frequency while the vehicle operates.
type Record struct {
	VehicleID string
	Time      time.Time
	Values    [obd.NumPIDs]float64
}

// Value returns the measurement for PID p.
func (r *Record) Value(p obd.PID) float64 { return r.Values[p] }

// Slice returns the values as a freshly allocated []float64 in PID order.
func (r *Record) Slice() []float64 {
	out := make([]float64, obd.NumPIDs)
	copy(out, r.Values[:])
	return out
}

// IsStationary reports whether the record corresponds to the stationary
// state of the vehicle: engine off or idling with no road speed. The
// paper filters these out before transforming data because correlations
// computed over idle periods carry no information about driving
// behaviour.
func (r *Record) IsStationary() bool {
	return r.Values[obd.Speed] < 3 && r.Values[obd.EngineRPM] < 950
}

// HasSensorFault reports whether any PID value is outside its physically
// plausible envelope, indicating a sensor or transmission fault that
// must be dropped rather than scored.
func (r *Record) HasSensorFault() bool {
	for p := obd.PID(0); p < obd.NumPIDs; p++ {
		if !obd.InEnvelope(p, r.Values[p]) {
			return true
		}
	}
	return false
}

// CleanFilter reports whether the record should be kept for analysis:
// non-stationary and free of sensor faults.
func CleanFilter(r *Record) bool {
	return !r.IsStationary() && !r.HasSensorFault()
}

// WarmupFilter is a STATEFUL filter that combines CleanFilter with
// cold-start suppression: after any gap longer than tripGap in the
// kept stream, the next skip records are dropped. Engine warm-up
// transients (coolant climbing to its setpoint, heat-soaked intake air)
// dominate cross-signal correlations for the first minutes of a trip and
// would otherwise pollute both the reference profile and the scored
// stream. The filter is per-vehicle state; build a fresh one per
// pipeline. skip and tripGap are configuration; the last-seen timestamp
// and the countdown are mutable state exposed through Snapshot/Restore
// so a checkpointed pipeline resumes mid-trip without re-suppressing
// warm records.
type WarmupFilter struct {
	skip    int
	tripGap time.Duration

	last      time.Time
	remaining int
}

// NewWarmupFilter builds a warm-up filter; pass its Keep method as a
// pipeline Filter (and the filter itself as FilterState to make the
// pipeline snapshottable).
func NewWarmupFilter(skip int, tripGap time.Duration) *WarmupFilter {
	return &WarmupFilter{skip: skip, tripGap: tripGap, remaining: skip}
}

// Keep reports whether the record survives cleaning and warm-up
// suppression, advancing the trip state.
func (f *WarmupFilter) Keep(r *Record) bool {
	if !CleanFilter(r) {
		return false
	}
	if f.last.IsZero() || r.Time.Sub(f.last) > f.tripGap {
		f.remaining = f.skip
	}
	f.last = r.Time
	if f.remaining > 0 {
		f.remaining--
		return false
	}
	return true
}

// ErrBadSnapshot is returned when a payload does not decode as warm-up
// filter state for this configuration.
var ErrBadSnapshot = errors.New("timeseries: malformed warmup filter snapshot")

// warmupFilterTag types WarmupFilter snapshot payloads.
const warmupFilterTag = uint8(30)

// Snapshot captures the filter's mutable state (trip position), not its
// configuration.
func (f *WarmupFilter) Snapshot() ([]byte, error) {
	var b checkpoint.Buf
	b.Uint8(warmupFilterTag)
	b.Bool(!f.last.IsZero())
	var nanos int64
	if !f.last.IsZero() {
		nanos = f.last.UnixNano()
	}
	b.Int64(nanos)
	b.Int(f.remaining)
	return b.Bytes(), nil
}

// Restore loads a snapshot taken from a filter with the same
// configuration.
func (f *WarmupFilter) Restore(data []byte) error {
	r := checkpoint.NewRBuf(data)
	if r.Uint8() != warmupFilterTag {
		return ErrBadSnapshot
	}
	hasLast := r.Bool()
	nanos := r.Int64()
	remaining := r.Int()
	if err := r.Close(); err != nil {
		return err
	}
	if remaining < 0 || remaining > f.skip {
		return ErrBadSnapshot
	}
	if hasLast {
		f.last = time.Unix(0, nanos).UTC()
	} else {
		f.last = time.Time{}
	}
	f.remaining = remaining
	return nil
}

// FilterRecords returns the subset of records for which keep returns
// true, preserving order. A nil keep function keeps everything.
func FilterRecords(recs []Record, keep func(*Record) bool) []Record {
	if keep == nil {
		out := make([]Record, len(recs))
		copy(out, recs)
		return out
	}
	out := make([]Record, 0, len(recs))
	for i := range recs {
		if keep(&recs[i]) {
			out = append(out, recs[i])
		}
	}
	return out
}
