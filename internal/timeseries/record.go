// Package timeseries provides the record, window and aggregation
// machinery shared by the data transformations and the detection
// pipeline: timestamped multivariate samples, sliding windows over them,
// per-day aggregates for the exploratory analysis, and the
// stationary-state / sensor-fault filters the paper applies before every
// transformation (Section 3.2).
package timeseries

import (
	"time"

	"github.com/navarchos/pdm/internal/obd"
)

// Record is one multivariate PID measurement from one vehicle, sampled
// at one-minute frequency while the vehicle operates.
type Record struct {
	VehicleID string
	Time      time.Time
	Values    [obd.NumPIDs]float64
}

// Value returns the measurement for PID p.
func (r *Record) Value(p obd.PID) float64 { return r.Values[p] }

// Slice returns the values as a freshly allocated []float64 in PID order.
func (r *Record) Slice() []float64 {
	out := make([]float64, obd.NumPIDs)
	copy(out, r.Values[:])
	return out
}

// IsStationary reports whether the record corresponds to the stationary
// state of the vehicle: engine off or idling with no road speed. The
// paper filters these out before transforming data because correlations
// computed over idle periods carry no information about driving
// behaviour.
func (r *Record) IsStationary() bool {
	return r.Values[obd.Speed] < 3 && r.Values[obd.EngineRPM] < 950
}

// HasSensorFault reports whether any PID value is outside its physically
// plausible envelope, indicating a sensor or transmission fault that
// must be dropped rather than scored.
func (r *Record) HasSensorFault() bool {
	for p := obd.PID(0); p < obd.NumPIDs; p++ {
		if !obd.InEnvelope(p, r.Values[p]) {
			return true
		}
	}
	return false
}

// CleanFilter reports whether the record should be kept for analysis:
// non-stationary and free of sensor faults.
func CleanFilter(r *Record) bool {
	return !r.IsStationary() && !r.HasSensorFault()
}

// NewWarmupFilter returns a STATEFUL filter that combines CleanFilter
// with cold-start suppression: after any gap longer than tripGap in the
// kept stream, the next skip records are dropped. Engine warm-up
// transients (coolant climbing to its setpoint, heat-soaked intake air)
// dominate cross-signal correlations for the first minutes of a trip and
// would otherwise pollute both the reference profile and the scored
// stream. The filter is per-vehicle state; build a fresh one per
// pipeline.
func NewWarmupFilter(skip int, tripGap time.Duration) func(*Record) bool {
	var last time.Time
	remaining := skip
	return func(r *Record) bool {
		if !CleanFilter(r) {
			return false
		}
		if last.IsZero() || r.Time.Sub(last) > tripGap {
			remaining = skip
		}
		last = r.Time
		if remaining > 0 {
			remaining--
			return false
		}
		return true
	}
}

// FilterRecords returns the subset of records for which keep returns
// true, preserving order. A nil keep function keeps everything.
func FilterRecords(recs []Record, keep func(*Record) bool) []Record {
	if keep == nil {
		out := make([]Record, len(recs))
		copy(out, recs)
		return out
	}
	out := make([]Record, 0, len(recs))
	for i := range recs {
		if keep(&recs[i]) {
			out = append(out, recs[i])
		}
	}
	return out
}
