package timeseries

import (
	"time"

	"github.com/navarchos/pdm/internal/obd"
)

// Window is a fixed-capacity sliding window of records used by the data
// transformations: new records push the oldest out once the window is
// full.
type Window struct {
	size int
	buf  []Record
	next int
	full bool
}

// NewWindow returns a sliding window holding up to size records. size
// must be positive; NewWindow panics otherwise, since a zero-size window
// is a programming error.
func NewWindow(size int) *Window {
	if size <= 0 {
		panic("timeseries: NewWindow: size must be positive")
	}
	return &Window{size: size, buf: make([]Record, size)}
}

// Push adds a record, evicting the oldest if the window is full.
func (w *Window) Push(r Record) {
	w.buf[w.next] = r
	w.next = (w.next + 1) % w.size
	if w.next == 0 {
		w.full = true
	}
}

// Len returns the number of records currently held.
func (w *Window) Len() int {
	if w.full {
		return w.size
	}
	return w.next
}

// Full reports whether the window has reached capacity.
func (w *Window) Full() bool { return w.full }

// Reset empties the window.
func (w *Window) Reset() {
	w.next = 0
	w.full = false
}

// Records returns the window contents oldest-first as a fresh slice.
func (w *Window) Records() []Record {
	n := w.Len()
	out := make([]Record, 0, n)
	if w.full {
		out = append(out, w.buf[w.next:]...)
		out = append(out, w.buf[:w.next]...)
		return out
	}
	out = append(out, w.buf[:w.next]...)
	return out
}

// Column returns the values of PID p across the window, oldest-first.
func (w *Window) Column(p obd.PID) []float64 {
	n := w.Len()
	out := make([]float64, 0, n)
	if w.full {
		for i := w.next; i < w.size; i++ {
			out = append(out, w.buf[i].Values[p])
		}
		for i := 0; i < w.next; i++ {
			out = append(out, w.buf[i].Values[p])
		}
		return out
	}
	for i := 0; i < w.next; i++ {
		out = append(out, w.buf[i].Values[p])
	}
	return out
}

// Columns returns all PID columns as a [NumPIDs][]float64 matrix,
// oldest-first.
func (w *Window) Columns() [][]float64 {
	out := make([][]float64, obd.NumPIDs)
	recs := w.Records()
	for p := 0; p < int(obd.NumPIDs); p++ {
		col := make([]float64, len(recs))
		for i := range recs {
			col[i] = recs[i].Values[p]
		}
		out[p] = col
	}
	return out
}

// Span returns the time covered by the window (zero if fewer than two
// records).
func (w *Window) Span() time.Duration {
	recs := w.Records()
	if len(recs) < 2 {
		return 0
	}
	return recs[len(recs)-1].Time.Sub(recs[0].Time)
}
