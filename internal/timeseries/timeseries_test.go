package timeseries

import (
	"math"
	"testing"
	"time"

	"github.com/navarchos/pdm/internal/obd"
)

func mkRecord(vehicle string, t time.Time, rpm, speed, coolant, intake, mapv, maf float64) Record {
	var r Record
	r.VehicleID = vehicle
	r.Time = t
	r.Values[obd.EngineRPM] = rpm
	r.Values[obd.Speed] = speed
	r.Values[obd.CoolantTemp] = coolant
	r.Values[obd.IntakeTemp] = intake
	r.Values[obd.MAPIntake] = mapv
	r.Values[obd.MAFAirFlowRate] = maf
	return r
}

var t0 = time.Date(2023, 1, 1, 8, 0, 0, 0, time.UTC)

func drivingRecord(vehicle string, t time.Time) Record {
	return mkRecord(vehicle, t, 2200, 60, 88, 25, 100, 20)
}

func TestRecordAccessors(t *testing.T) {
	r := drivingRecord("v1", t0)
	if r.Value(obd.Speed) != 60 {
		t.Errorf("Value(Speed) = %v", r.Value(obd.Speed))
	}
	s := r.Slice()
	if len(s) != int(obd.NumPIDs) || s[0] != 2200 {
		t.Errorf("Slice = %v", s)
	}
	s[0] = 0
	if r.Values[0] == 0 {
		t.Error("Slice must copy")
	}
}

func TestStationaryAndFaultFilters(t *testing.T) {
	driving := drivingRecord("v1", t0)
	if driving.IsStationary() {
		t.Error("driving record flagged stationary")
	}
	idle := mkRecord("v1", t0, 800, 0, 85, 25, 35, 3)
	if !idle.IsStationary() {
		t.Error("idle record not flagged stationary")
	}
	if driving.HasSensorFault() {
		t.Error("clean record flagged faulty")
	}
	bad := driving
	bad.Values[obd.CoolantTemp] = -40
	if !bad.HasSensorFault() {
		t.Error("-40C coolant not flagged as sensor fault")
	}
	if !CleanFilter(&driving) || CleanFilter(&idle) || CleanFilter(&bad) {
		t.Error("CleanFilter decisions wrong")
	}
}

func TestFilterRecords(t *testing.T) {
	recs := []Record{
		drivingRecord("v1", t0),
		mkRecord("v1", t0.Add(time.Minute), 700, 0, 85, 25, 35, 3), // idle
		drivingRecord("v1", t0.Add(2*time.Minute)),
	}
	kept := FilterRecords(recs, CleanFilter)
	if len(kept) != 2 {
		t.Errorf("kept %d records, want 2", len(kept))
	}
	all := FilterRecords(recs, nil)
	if len(all) != 3 {
		t.Errorf("nil filter kept %d, want 3", len(all))
	}
	all[0].VehicleID = "changed"
	if recs[0].VehicleID == "changed" {
		t.Error("FilterRecords must copy")
	}
}

func TestWindowBasics(t *testing.T) {
	w := NewWindow(3)
	if w.Full() || w.Len() != 0 {
		t.Error("fresh window should be empty")
	}
	for i := 0; i < 2; i++ {
		w.Push(drivingRecord("v1", t0.Add(time.Duration(i)*time.Minute)))
	}
	if w.Full() || w.Len() != 2 {
		t.Errorf("Len = %d Full = %v", w.Len(), w.Full())
	}
	w.Push(drivingRecord("v1", t0.Add(2*time.Minute)))
	if !w.Full() || w.Len() != 3 {
		t.Error("window should be full after 3 pushes")
	}
	// Fourth push evicts the oldest.
	w.Push(drivingRecord("v1", t0.Add(3*time.Minute)))
	recs := w.Records()
	if len(recs) != 3 {
		t.Fatalf("Records len = %d", len(recs))
	}
	if !recs[0].Time.Equal(t0.Add(time.Minute)) {
		t.Errorf("oldest record time = %v, want %v", recs[0].Time, t0.Add(time.Minute))
	}
	if !recs[2].Time.Equal(t0.Add(3 * time.Minute)) {
		t.Errorf("newest record time = %v", recs[2].Time)
	}
	if got := w.Span(); got != 2*time.Minute {
		t.Errorf("Span = %v, want 2m", got)
	}
	w.Reset()
	if w.Len() != 0 || w.Full() {
		t.Error("Reset should empty the window")
	}
	if w.Span() != 0 {
		t.Error("Span of near-empty window should be 0")
	}
}

func TestWindowColumnOrdering(t *testing.T) {
	w := NewWindow(3)
	for i := 0; i < 5; i++ {
		r := drivingRecord("v1", t0.Add(time.Duration(i)*time.Minute))
		r.Values[obd.Speed] = float64(i)
		w.Push(r)
	}
	col := w.Column(obd.Speed)
	want := []float64{2, 3, 4}
	for i := range want {
		if col[i] != want[i] {
			t.Errorf("Column[%d] = %v, want %v", i, col[i], want[i])
		}
	}
	cols := w.Columns()
	if len(cols) != int(obd.NumPIDs) {
		t.Fatalf("Columns len = %d", len(cols))
	}
	for i := range want {
		if cols[obd.Speed][i] != want[i] {
			t.Errorf("Columns[Speed][%d] = %v", i, cols[obd.Speed][i])
		}
	}
	// Partial window column.
	w2 := NewWindow(5)
	w2.Push(drivingRecord("v1", t0))
	if len(w2.Column(obd.Speed)) != 1 {
		t.Error("partial window column length wrong")
	}
}

func TestNewWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWindow(0) should panic")
		}
	}()
	NewWindow(0)
}

func TestAggregateDaily(t *testing.T) {
	day1 := time.Date(2023, 5, 1, 9, 0, 0, 0, time.UTC)
	day2 := time.Date(2023, 5, 2, 9, 0, 0, 0, time.UTC)
	var recs []Record
	// v1 day1: speeds 40, 60 -> mean 50, std 10.
	r := drivingRecord("v1", day1)
	r.Values[obd.Speed] = 40
	recs = append(recs, r)
	r = drivingRecord("v1", day1.Add(time.Minute))
	r.Values[obd.Speed] = 60
	recs = append(recs, r)
	// v1 day2: single record (dropped with minRecords=2).
	recs = append(recs, drivingRecord("v1", day2))
	// v2 day1: two identical records.
	recs = append(recs, drivingRecord("v2", day1), drivingRecord("v2", day1.Add(time.Minute)))

	aggs := AggregateDaily(recs, 2)
	if len(aggs) != 2 {
		t.Fatalf("got %d aggregates, want 2", len(aggs))
	}
	// Sorted by vehicle then date: v1/day1 first.
	a := aggs[0]
	if a.VehicleID != "v1" || a.Count != 2 {
		t.Errorf("first aggregate = %+v", a)
	}
	if a.Means[obd.Speed] != 50 || a.Stds[obd.Speed] != 10 {
		t.Errorf("speed mean/std = %v/%v, want 50/10", a.Means[obd.Speed], a.Stds[obd.Speed])
	}
	fv := a.FeatureVector()
	if len(fv) != 12 {
		t.Fatalf("feature vector len = %d, want 12", len(fv))
	}
	if fv[int(obd.Speed)] != 50 || fv[int(obd.NumPIDs)+int(obd.Speed)] != 10 {
		t.Errorf("feature vector layout wrong: %v", fv)
	}
	b := aggs[1]
	if b.VehicleID != "v2" {
		t.Errorf("second aggregate vehicle = %s", b.VehicleID)
	}
	for p := 0; p < int(obd.NumPIDs); p++ {
		if b.Stds[p] != 0 {
			t.Errorf("identical records should have zero std, got %v", b.Stds[p])
		}
		if math.IsNaN(b.Means[p]) {
			t.Error("mean should not be NaN")
		}
	}
}

func TestSplitByVehicle(t *testing.T) {
	recs := []Record{
		drivingRecord("a", t0),
		drivingRecord("b", t0),
		drivingRecord("a", t0.Add(time.Minute)),
	}
	m := SplitByVehicle(recs)
	if len(m) != 2 || len(m["a"]) != 2 || len(m["b"]) != 1 {
		t.Errorf("split = %v", m)
	}
	if !m["a"][0].Time.Before(m["a"][1].Time) {
		t.Error("order not preserved")
	}
}
