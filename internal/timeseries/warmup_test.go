package timeseries

import (
	"testing"
	"time"
)

func TestWarmupFilterSkipsColdStarts(t *testing.T) {
	f := NewWarmupFilter(3, 20*time.Minute)
	start := time.Date(2023, 2, 1, 8, 0, 0, 0, time.UTC)
	kept := 0
	// First trip: 10 contiguous driving minutes; the first 3 are skipped.
	for i := 0; i < 10; i++ {
		r := drivingRecord("v1", start.Add(time.Duration(i)*time.Minute))
		if f.Keep(&r) {
			kept++
		}
	}
	if kept != 7 {
		t.Errorf("first trip kept %d of 10, want 7", kept)
	}
	// Second trip after a 2-hour gap: warm-up skip applies again.
	second := start.Add(2 * time.Hour)
	kept = 0
	for i := 0; i < 5; i++ {
		r := drivingRecord("v1", second.Add(time.Duration(i)*time.Minute))
		if f.Keep(&r) {
			kept++
		}
	}
	if kept != 2 {
		t.Errorf("second trip kept %d of 5, want 2", kept)
	}
}

func TestWarmupFilterNoGapNoSkip(t *testing.T) {
	f := NewWarmupFilter(3, 20*time.Minute)
	start := time.Date(2023, 2, 1, 8, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		r := drivingRecord("v1", start.Add(time.Duration(i)*time.Minute))
		f.Keep(&r)
	}
	// A 15-minute pause (under the 20-minute trip gap) does NOT retrigger
	// the warm-up skip.
	resume := start.Add(5*time.Minute + 15*time.Minute)
	r := drivingRecord("v1", resume)
	if !f.Keep(&r) {
		t.Error("sub-gap pause should not retrigger warm-up skipping")
	}
}

func TestWarmupFilterStillCleans(t *testing.T) {
	f := NewWarmupFilter(0, 20*time.Minute)
	idle := mkRecord("v1", t0, 700, 0, 85, 25, 35, 3)
	if f.Keep(&idle) {
		t.Error("stationary record must still be dropped")
	}
	bad := drivingRecord("v1", t0)
	bad.Values[3] = -40 // implausible intake temp
	if f.Keep(&bad) {
		t.Error("sensor-fault record must still be dropped")
	}
}

func TestWarmupFilterSnapshotRoundTrip(t *testing.T) {
	start := time.Date(2023, 2, 1, 8, 0, 0, 0, time.UTC)
	// Freeze mid-warm-up (1 of 3 suppressions spent) and verify both
	// filters agree on every subsequent decision, including the trip-gap
	// retrigger.
	orig := NewWarmupFilter(3, 20*time.Minute)
	r := drivingRecord("v1", start)
	orig.Keep(&r)
	snap, err := orig.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewWarmupFilter(3, 20*time.Minute)
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	times := []time.Time{
		start.Add(1 * time.Minute),
		start.Add(2 * time.Minute),
		start.Add(3 * time.Minute), // first kept record
		start.Add(4 * time.Minute),
		start.Add(3 * time.Hour), // new trip: suppression retriggers
		start.Add(3*time.Hour + time.Minute),
	}
	for i, ts := range times {
		a := drivingRecord("v1", ts)
		b := drivingRecord("v1", ts)
		if got, want := restored.Keep(&b), orig.Keep(&a); got != want {
			t.Fatalf("decision %d: restored %v, original %v", i, got, want)
		}
	}
}

func TestWarmupFilterSnapshotRejectsBadInput(t *testing.T) {
	f := NewWarmupFilter(3, 20*time.Minute)
	snap, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, len(snap) - 1} {
		if err := NewWarmupFilter(3, 20*time.Minute).Restore(snap[:cut]); err == nil {
			t.Errorf("truncated snapshot (%d bytes) accepted", cut)
		}
	}
	bad := append([]byte{}, snap...)
	bad[0] ^= 0xFF // foreign tag
	if err := NewWarmupFilter(3, 20*time.Minute).Restore(bad); err == nil {
		t.Error("foreign tag accepted")
	}
	// A countdown larger than the configured skip cannot come from an
	// identically configured filter.
	if err := NewWarmupFilter(1, 20*time.Minute).Restore(snap); err == nil {
		t.Error("snapshot with remaining > skip accepted")
	}
}
