package timeseries

import (
	"testing"
	"time"
)

func TestWarmupFilterSkipsColdStarts(t *testing.T) {
	f := NewWarmupFilter(3, 20*time.Minute)
	start := time.Date(2023, 2, 1, 8, 0, 0, 0, time.UTC)
	kept := 0
	// First trip: 10 contiguous driving minutes; the first 3 are skipped.
	for i := 0; i < 10; i++ {
		r := drivingRecord("v1", start.Add(time.Duration(i)*time.Minute))
		if f(&r) {
			kept++
		}
	}
	if kept != 7 {
		t.Errorf("first trip kept %d of 10, want 7", kept)
	}
	// Second trip after a 2-hour gap: warm-up skip applies again.
	second := start.Add(2 * time.Hour)
	kept = 0
	for i := 0; i < 5; i++ {
		r := drivingRecord("v1", second.Add(time.Duration(i)*time.Minute))
		if f(&r) {
			kept++
		}
	}
	if kept != 2 {
		t.Errorf("second trip kept %d of 5, want 2", kept)
	}
}

func TestWarmupFilterNoGapNoSkip(t *testing.T) {
	f := NewWarmupFilter(3, 20*time.Minute)
	start := time.Date(2023, 2, 1, 8, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		r := drivingRecord("v1", start.Add(time.Duration(i)*time.Minute))
		f(&r)
	}
	// A 15-minute pause (under the 20-minute trip gap) does NOT retrigger
	// the warm-up skip.
	resume := start.Add(5*time.Minute + 15*time.Minute)
	r := drivingRecord("v1", resume)
	if !f(&r) {
		t.Error("sub-gap pause should not retrigger warm-up skipping")
	}
}

func TestWarmupFilterStillCleans(t *testing.T) {
	f := NewWarmupFilter(0, 20*time.Minute)
	idle := mkRecord("v1", t0, 700, 0, 85, 25, 35, 3)
	if f(&idle) {
		t.Error("stationary record must still be dropped")
	}
	bad := drivingRecord("v1", t0)
	bad.Values[3] = -40 // implausible intake temp
	if f(&bad) {
		t.Error("sensor-fault record must still be dropped")
	}
}
