package timeseries

import (
	"sort"
	"time"

	"github.com/navarchos/pdm/internal/mat"
	"github.com/navarchos/pdm/internal/obd"
)

// DailyAggregate is one vehicle-day summarised by the mean and standard
// deviation of each PID — the 12-dimensional feature space of the
// paper's Section 2 exploration (6 means followed by 6 stds).
type DailyAggregate struct {
	VehicleID string
	Date      time.Time // midnight UTC of the day
	Count     int       // records aggregated
	Means     [obd.NumPIDs]float64
	Stds      [obd.NumPIDs]float64
}

// FeatureVector returns the 12-dimensional [means..., stds...] vector.
func (d *DailyAggregate) FeatureVector() []float64 {
	out := make([]float64, 2*obd.NumPIDs)
	copy(out, d.Means[:])
	copy(out[obd.NumPIDs:], d.Stds[:])
	return out
}

// AggregateDaily groups records by (vehicle, UTC day) and produces one
// DailyAggregate per group, sorted by vehicle then date. Days with fewer
// than minRecords records are dropped (short stubs of driving produce
// meaningless statistics; the paper aggregates full operating days).
func AggregateDaily(recs []Record, minRecords int) []DailyAggregate {
	type key struct {
		vehicle string
		day     int64
	}
	groups := map[key][]*Record{}
	for i := range recs {
		r := &recs[i]
		day := r.Time.UTC().Truncate(24 * time.Hour).Unix()
		k := key{r.VehicleID, day}
		groups[k] = append(groups[k], r)
	}
	out := make([]DailyAggregate, 0, len(groups))
	for k, rs := range groups {
		if len(rs) < minRecords {
			continue
		}
		agg := DailyAggregate{
			VehicleID: k.vehicle,
			Date:      time.Unix(k.day, 0).UTC(),
			Count:     len(rs),
		}
		col := make([]float64, len(rs))
		for p := 0; p < int(obd.NumPIDs); p++ {
			for i, r := range rs {
				col[i] = r.Values[p]
			}
			agg.Means[p] = mat.Mean(col)
			agg.Stds[p] = mat.Std(col)
		}
		out = append(out, agg)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].VehicleID != out[j].VehicleID {
			return out[i].VehicleID < out[j].VehicleID
		}
		return out[i].Date.Before(out[j].Date)
	})
	return out
}

// SplitByVehicle partitions records by vehicle ID, preserving the input
// order within each vehicle.
func SplitByVehicle(recs []Record) map[string][]Record {
	out := map[string][]Record{}
	for _, r := range recs {
		out[r.VehicleID] = append(out[r.VehicleID], r)
	}
	return out
}
