package timeseries

import (
	"testing"
	"testing/quick"
	"time"
)

// TestQuickWindowInvariants checks, for arbitrary push sequences: Len
// never exceeds capacity, Records returns exactly Len records, and the
// returned records are the most recent pushes in order.
func TestQuickWindowInvariants(t *testing.T) {
	f := func(sizeRaw uint8, nRaw uint8) bool {
		size := int(sizeRaw%16) + 1
		n := int(nRaw % 64)
		w := NewWindow(size)
		base := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
		for i := 0; i < n; i++ {
			var r Record
			r.VehicleID = "v"
			r.Time = base.Add(time.Duration(i) * time.Minute)
			r.Values[0] = float64(i)
			w.Push(r)
			if w.Len() > size {
				return false
			}
			recs := w.Records()
			if len(recs) != w.Len() {
				return false
			}
			// Oldest-first ordering over the last Len pushes.
			start := i + 1 - len(recs)
			for j, rec := range recs {
				if rec.Values[0] != float64(start+j) {
					return false
				}
			}
		}
		return w.Full() == (n >= size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickAggregatePartition checks daily aggregation partitions the
// records: the per-day counts sum to the number of records that survive
// the minimum-size cut, and every aggregate's mean lies within the range
// of its inputs.
func TestQuickAggregatePartition(t *testing.T) {
	f := func(nRaw uint8, spread uint8) bool {
		n := int(nRaw%100) + 1
		base := time.Date(2023, 3, 1, 6, 0, 0, 0, time.UTC)
		recs := make([]Record, n)
		for i := range recs {
			recs[i].VehicleID = "v"
			// Spread records over up to 1+spread%5 days.
			day := i % (1 + int(spread%5))
			recs[i].Time = base.AddDate(0, 0, day).Add(time.Duration(i) * time.Minute)
			recs[i].Values[0] = float64(i)
		}
		aggs := AggregateDaily(recs, 1)
		total := 0
		for _, a := range aggs {
			total += a.Count
			if a.Count == 0 {
				return false
			}
			// Mean within global range is implied; check non-NaN.
			if a.Means[0] != a.Means[0] {
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
