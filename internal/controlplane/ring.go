// Package controlplane places vehicles across fleet engines and moves
// them: a consistent-hash ring above the engines' own FNV shard hash,
// a sticky placement table, periodic health checks against each
// engine's Stats()/Err(), and cordon/drain built from the fleet's
// per-vehicle ExtractVehicle/AdoptVehicle handoff.
//
// The hashing is two-level by design. The ring decides which *engine*
// serves a vehicle and must reshuffle as little as possible when
// membership changes — that is what the virtual-node consistent hash
// buys. The engine's own FNV hash then decides which *shard* inside
// that engine owns the vehicle, and is free to be a plain modulo
// because a vehicle adopted by an engine is re-placed over that
// engine's shards anyway (fleet state is keyed by vehicle ID, never by
// shard index). Neither level's choice constrains the other's.
package controlplane

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring mapping string keys (vehicle IDs) to
// named nodes (engine instances). Each node projects Replicas virtual
// points onto the ring so load spreads evenly and removing one node
// only moves the keys it owned. The zero value is unusable; use
// NewRing. Ring is not goroutine-safe — the Plane serializes access.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by hash
	members  map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultReplicas is the virtual-node count used when NewRing is given
// a non-positive replica count: enough for single-digit-percent load
// spread across a handful of engines without making membership
// changes expensive.
const DefaultReplicas = 128

// NewRing returns an empty ring with the given virtual-node count per
// member (DefaultReplicas when replicas <= 0).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, members: map[string]bool{}}
}

// ringHash is 64-bit FNV-1a (the same family the fleet engine's shard
// hash uses, kept separate so the two levels stay independently
// stable) pushed through a 64-bit finalizer. The finalizer matters:
// raw FNV over short, similar keys ("a#0", "veh-0001") leaves the high
// bits — which decide ring position — strongly correlated, and the
// resulting point clustering can hand one engine nearly the whole key
// space. The mix spreads every input bit across the word.
func ringHash(key string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(key)) //nolint:errcheck // fnv never fails
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Add inserts a node's virtual points. Adding a present node is a
// no-op.
func (r *Ring) Add(node string) {
	if r.members[node] {
		return
	}
	r.members[node] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{ringHash(node + "#" + strconv.Itoa(i)), node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node's virtual points; keys it owned fall to their
// next clockwise neighbours while every other key keeps its owner.
func (r *Ring) Remove(node string) {
	if !r.members[node] {
		return
	}
	delete(r.members, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner maps a key to its node: the first virtual point clockwise from
// the key's hash. Returns "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.points[i].node
}

// Members returns the node names, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
