package controlplane

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/navarchos/pdm/internal/core"
	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/detector/closestpair"
	"github.com/navarchos/pdm/internal/fleet"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/obs"
	"github.com/navarchos/pdm/internal/thresholds"
	"github.com/navarchos/pdm/internal/timeseries"
	"github.com/navarchos/pdm/internal/transform"
)

// planeStream mirrors the fleet package's synthetic stream: seeded
// sinusoidal telemetry interleaved across vehicles plus one mid-stream
// service event each.
func planeStream(vehicles, perVehicle int) ([]timeseries.Record, []obd.Event) {
	rng := rand.New(rand.NewSource(41))
	base := time.Date(2023, 5, 1, 6, 0, 0, 0, time.UTC)
	var records []timeseries.Record
	var events []obd.Event
	for i := 0; i < perVehicle; i++ {
		for v := 0; v < vehicles; v++ {
			var vals [obd.NumPIDs]float64
			vals[obd.EngineRPM] = 1500 + 280*math.Sin(float64(i)/8+float64(v)) + rng.Float64()*70
			vals[obd.Speed] = 50 + 18*math.Sin(float64(i)/11) + rng.Float64()*4
			vals[obd.CoolantTemp] = 86 + rng.Float64()*5
			vals[obd.IntakeTemp] = 21 + rng.Float64()*3
			vals[obd.MAPIntake] = 33 + 11*math.Sin(float64(i)/6+float64(v)) + rng.Float64()*3
			vals[obd.MAFAirFlowRate] = 8 + 3*math.Sin(float64(i)/6+float64(v)) + rng.Float64()*2
			records = append(records, timeseries.Record{
				VehicleID: fmt.Sprintf("veh-%02d", v),
				Time:      base.Add(time.Duration(i)*time.Minute + time.Duration(v)*time.Second),
				Values:    vals,
			})
		}
	}
	for v := 0; v < vehicles; v++ {
		events = append(events, obd.Event{
			VehicleID: fmt.Sprintf("veh-%02d", v),
			Time:      base.Add(time.Duration(perVehicle/3)*time.Minute + time.Duration(v)*time.Second),
			Type:      obd.EventService,
		})
	}
	return records, events
}

func planeEngineConfig(shards int) fleet.Config {
	return fleet.Config{
		NewConfig: func(string) (core.Config, error) {
			tr, err := transform.New(transform.Correlation, 12)
			if err != nil {
				return core.Config{}, err
			}
			return core.Config{
				Transformer:   tr,
				Detector:      closestpair.New(tr.FeatureNames()),
				Thresholder:   thresholds.NewSelfTuning(3),
				ProfileLength: 30,
				Filter:        func(*timeseries.Record) bool { return true },
			}, nil
		},
		Shards:    shards,
		BatchSize: 8,
	}
}

func collectAlarms(e *fleet.Engine) func() []detector.Alarm {
	var out []detector.Alarm
	done := make(chan struct{})
	go func() {
		defer close(done)
		for a := range e.Alarms() {
			out = append(out, a)
		}
	}()
	return func() []detector.Alarm {
		<-done
		return out
	}
}

func sortPlaneAlarms(a []detector.Alarm) {
	sort.Slice(a, func(i, j int) bool {
		if a[i].VehicleID != a[j].VehicleID {
			return a[i].VehicleID < a[j].VehicleID
		}
		if !a[i].Time.Equal(a[j].Time) {
			return a[i].Time.Before(a[j].Time)
		}
		return a[i].Channel < a[j].Channel
	})
}

func planeSameAlarms(a, b []detector.Alarm) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].VehicleID != b[i].VehicleID || !a[i].Time.Equal(b[i].Time) ||
			a[i].Channel != b[i].Channel ||
			math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) ||
			math.Float64bits(a[i].Threshold) != math.Float64bits(b[i].Threshold) {
			return false
		}
	}
	return true
}

// TestPlaneDrainGate is the control-plane half of the drain gate: a
// fleet streamed through ring placement across two live engines at
// different shard counts, with one engine drained mid-stream, must
// produce the Float64bits-identical alarm stream of an uninterrupted
// single-engine replay.
func TestPlaneDrainGate(t *testing.T) {
	const (
		vehicles   = 6
		perVehicle = 160
		chunk      = 16
	)
	records, events := planeStream(vehicles, perVehicle)

	// Uninterrupted single-engine reference.
	eRef, err := fleet.NewEngine(planeEngineConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	waitRef := collectAlarms(eRef)
	if err := eRef.Replay(records, events); err != nil {
		t.Fatal(err)
	}
	if err := eRef.Close(); err != nil {
		t.Fatal(err)
	}
	refAlarms := waitRef()
	sortPlaneAlarms(refAlarms)

	reg := obs.NewRegistry()
	metrics := obs.NewCtrlMetrics(reg)
	p := New(Config{Metrics: metrics})
	eA, err := fleet.NewEngine(planeEngineConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	eB, err := fleet.NewEngine(planeEngineConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	waitA, waitB := collectAlarms(eA), collectAlarms(eB)
	if err := p.Register("engine-a", eA); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("engine-b", eB); err != nil {
		t.Fatal(err)
	}

	// Per-vehicle chronological streams with the service event attached
	// to the chunk covering its timestamp.
	type stream struct {
		recs []timeseries.Record
		evs  []obd.Event
	}
	perVeh := map[string]*stream{}
	for _, r := range records {
		if perVeh[r.VehicleID] == nil {
			perVeh[r.VehicleID] = &stream{}
		}
		perVeh[r.VehicleID].recs = append(perVeh[r.VehicleID].recs, r)
	}
	for _, ev := range events {
		perVeh[ev.VehicleID].evs = append(perVeh[ev.VehicleID].evs, ev)
	}
	feed := func(id string, st *stream, from, to int) {
		t.Helper()
		for i := from; i < to; i += chunk {
			j := i + chunk
			if j > to {
				j = to
			}
			var evs []obd.Event
			for _, ev := range st.evs {
				if !ev.Time.Before(st.recs[i].Time) && (j == len(st.recs) || ev.Time.Before(st.recs[j].Time)) {
					evs = append(evs, ev)
				}
			}
			_, eng, err := p.EngineFor(id)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.(*fleet.Engine).IngestBatch(st.recs[i:j], evs); err != nil {
				t.Fatalf("vehicle %s chunk %d: %v", id, i, err)
			}
		}
	}

	split := perVehicle / 2
	for id, st := range perVeh {
		feed(id, st, 0, split)
	}

	// Drain engine-a mid-stream: every vehicle placed on it must move,
	// with its state, to engine-b.
	var onA []string
	for v, n := range p.Placements() {
		if n == "engine-a" {
			onA = append(onA, v)
		}
	}
	if len(onA) == 0 || len(onA) == vehicles {
		t.Fatalf("degenerate pre-drain placement: %d of %d vehicles on engine-a", len(onA), vehicles)
	}
	moved, err := p.Drain("engine-a")
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if moved != len(onA) {
		t.Fatalf("Drain moved %d vehicles, want %d", moved, len(onA))
	}
	for v, n := range p.Placements() {
		if n != "engine-b" {
			t.Fatalf("post-drain placement %s -> %s", v, n)
		}
	}
	if !p.Cordoned("engine-a") {
		t.Fatal("drained engine not cordoned")
	}
	if got := metrics.Handoffs.Value(); got != uint64(moved) {
		t.Errorf("handoffs counter = %d, want %d", got, moved)
	}
	if got := metrics.HandoffH.Count(); got != uint64(moved) {
		t.Errorf("handoff histogram count = %d, want %d", got, moved)
	}
	if got := metrics.Cordoned.Value(); got != 1 {
		t.Errorf("cordoned gauge = %d, want 1", got)
	}

	// A producer with a stale placement is refused by the source's
	// per-vehicle fence, not silently forked.
	var vu *fleet.VehicleUnavailableError
	if err := eA.IngestRecord(timeseries.Record{VehicleID: onA[0]}); !errors.As(err, &vu) {
		t.Fatalf("stale ingest on drained engine: %v", err)
	}

	for id, st := range perVeh {
		feed(id, st, split, len(st.recs))
	}

	if err := eA.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eB.Close(); err != nil {
		t.Fatal(err)
	}
	got := append(waitA(), waitB()...)
	sortPlaneAlarms(got)
	if !planeSameAlarms(got, refAlarms) {
		t.Errorf("drained alarms differ: %d vs %d uninterrupted", len(got), len(refAlarms))
	}
	stA, stB := eA.Stats(), eB.Stats()
	if n := stA.RecordsIn + stB.RecordsIn; n != uint64(len(records)) {
		t.Errorf("records processed = %d, want %d", n, len(records))
	}

	hs := p.CheckHealth()
	if len(hs) != 2 || !hs[0].Healthy || !hs[1].Healthy {
		t.Errorf("CheckHealth = %+v, want two healthy engines", hs)
	}
}

// stubEngine is a minimal Engine for orchestration-path tests.
type stubEngine struct {
	mu       sync.Mutex
	vehicles map[string][]byte
	cordons  map[string]bool
	err      error
	adoptErr error
}

func newStub() *stubEngine {
	return &stubEngine{vehicles: map[string][]byte{}, cordons: map[string]bool{}}
}

func (s *stubEngine) Stats() fleet.EngineStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fleet.EngineStats{Vehicles: len(s.vehicles)}
}

func (s *stubEngine) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *stubEngine) VehicleIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ids []string
	for id := range s.vehicles {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func (s *stubEngine) Cordon(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cordons[id] = true
}

func (s *stubEngine) ExtractVehicle(id string) (fleet.VehicleState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, ok := s.vehicles[id]
	if !ok {
		return fleet.VehicleState{}, fleet.ErrUnknownVehicle
	}
	delete(s.vehicles, id)
	return fleet.VehicleState{ID: id, Snapshot: snap}, nil
}

func (s *stubEngine) AdoptVehicle(vs fleet.VehicleState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.adoptErr != nil {
		return s.adoptErr
	}
	s.vehicles[vs.ID] = vs.Snapshot
	delete(s.cordons, vs.ID)
	return nil
}

func TestPlaneRegistrationAndPlacement(t *testing.T) {
	p := New(Config{})
	if _, _, err := p.EngineFor("veh-0"); !errors.Is(err, ErrNoEngines) {
		t.Fatalf("EngineFor on empty plane: %v", err)
	}
	a := newStub()
	if err := p.Register("a", a); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("a", a); !errors.Is(err, ErrEngineExists) {
		t.Fatalf("duplicate Register: %v", err)
	}
	if err := p.Cordon("ghost"); !errors.Is(err, ErrUnknownEngine) {
		t.Fatalf("Cordon unknown: %v", err)
	}
	if _, err := p.Drain("ghost"); !errors.Is(err, ErrUnknownEngine) {
		t.Fatalf("Drain unknown: %v", err)
	}

	name, _, err := p.EngineFor("veh-0")
	if err != nil || name != "a" {
		t.Fatalf("EngineFor = %s, %v", name, err)
	}
	// Placement is sticky: adding an engine must not re-route an
	// already-placed vehicle.
	b := newStub()
	if err := p.Register("b", b); err != nil {
		t.Fatal(err)
	}
	if name, _, _ := p.EngineFor("veh-0"); name != "a" {
		t.Fatalf("placement moved to %s on membership change", name)
	}
	// A cordoned engine takes no new placements but keeps existing
	// ones.
	if err := p.Cordon("a"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		name, _, err := p.EngineFor(fmt.Sprintf("fresh-%d", i))
		if err != nil || name != "b" {
			t.Fatalf("placement on cordoned plane = %s, %v", name, err)
		}
	}
	if name, _, _ := p.EngineFor("veh-0"); name != "a" {
		t.Fatal("cordon evicted an existing placement")
	}
	if err := p.Uncordon("a"); err != nil {
		t.Fatal(err)
	}
	if p.Cordoned("a") {
		t.Fatal("Uncordon did not lift the cordon")
	}
}

func TestPlaneDrainAdoptFailureRestoresSource(t *testing.T) {
	reg := obs.NewRegistry()
	p := New(Config{Metrics: obs.NewCtrlMetrics(reg)})
	a, b := newStub(), newStub()
	a.vehicles["veh-0"] = []byte("state")
	b.adoptErr = errors.New("target full")
	if err := p.Register("a", a); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("b", b); err != nil {
		t.Fatal(err)
	}
	if name, _, _ := p.EngineFor("veh-0"); name != "a" {
		t.Skip("ring placed veh-0 on b; stub scenario needs it on a")
	}
	moved, err := p.Drain("a")
	if err == nil {
		t.Fatal("Drain with refusing target succeeded")
	}
	if moved != 0 {
		t.Fatalf("moved = %d, want 0", moved)
	}
	// The state went back to the source instead of vanishing.
	if string(a.vehicles["veh-0"]) != "state" {
		t.Fatalf("source no longer holds the vehicle: %v", a.vehicles)
	}
	if name, _ := p.Lookup("veh-0"); name != "a" {
		t.Fatalf("placement moved to %s despite failed drain", name)
	}
}

func TestPlaneHealth(t *testing.T) {
	reg := obs.NewRegistry()
	m := obs.NewCtrlMetrics(reg)
	p := New(Config{Metrics: m})
	a, b := newStub(), newStub()
	a.err = errors.New("shard wedged")
	if err := p.Register("a", a); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("b", b); err != nil {
		t.Fatal(err)
	}
	hs := p.CheckHealth()
	if len(hs) != 2 {
		t.Fatalf("CheckHealth returned %d entries", len(hs))
	}
	if hs[0].Name != "a" || hs[0].Healthy || hs[0].Err == "" {
		t.Errorf("unhealthy engine reported %+v", hs[0])
	}
	if hs[1].Name != "b" || !hs[1].Healthy {
		t.Errorf("healthy engine reported %+v", hs[1])
	}
	if got := m.HealthFailures.Value(); got != 1 {
		t.Errorf("health failure counter = %d, want 1", got)
	}

	// The periodic checker drives the same pass.
	ch := make(chan []Health, 1)
	stop := p.StartHealth(time.Millisecond, func(hs []Health) {
		select {
		case ch <- hs:
		default:
		}
	})
	defer stop()
	select {
	case hs := <-ch:
		if len(hs) != 2 {
			t.Errorf("periodic check returned %d entries", len(hs))
		}
	case <-time.After(5 * time.Second):
		t.Error("periodic health check never fired")
	}
}
