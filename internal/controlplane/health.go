package controlplane

import (
	"sort"
	"time"

	"github.com/navarchos/pdm/internal/obs"
)

// Health is one engine's state as seen by a health-check pass.
type Health struct {
	Name     string `json:"name"`
	Healthy  bool   `json:"healthy"`
	Cordoned bool   `json:"cordoned"`
	// Err carries the engine's first processing error when unhealthy.
	Err string `json:"err,omitempty"`
	// A thumbnail of the engine's Stats() so a health scrape doubles as
	// a capacity view.
	Vehicles  int    `json:"vehicles"`
	RecordsIn uint64 `json:"records_in"`
	Alarms    uint64 `json:"alarms"`
}

// CheckHealth runs one health pass over every registered engine:
// Err() decides healthy/unhealthy (a fleet engine latches its first
// vehicle-processing error there), Stats() fills the capacity
// thumbnail, and each unhealthy engine counts one health-check
// failure. Results are sorted by name.
//
// The check reports; it does not act. Draining an unhealthy engine is
// an operator (or serving-layer) decision — an automatic drain on a
// transient error would move every vehicle twice.
func (p *Plane) CheckHealth() []Health {
	p.mu.Lock()
	type probe struct {
		name     string
		eng      Engine
		cordoned bool
	}
	probes := make([]probe, 0, len(p.members))
	for name, m := range p.members {
		probes = append(probes, probe{name, m.eng, m.cordoned})
	}
	p.mu.Unlock()

	// Stats()/Err() are atomic reads on a fleet engine but may be RPCs
	// on a proxy, so probe outside the plane lock.
	out := make([]Health, 0, len(probes))
	for _, pr := range probes {
		h := Health{Name: pr.name, Cordoned: pr.cordoned, Healthy: true}
		if err := pr.eng.Err(); err != nil {
			h.Healthy = false
			h.Err = err.Error()
			p.metrics.HealthFailure()
		}
		st := pr.eng.Stats()
		h.Vehicles = st.Vehicles
		h.RecordsIn = st.RecordsIn
		h.Alarms = st.Alarms
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	p.recordHealthTransitions(out)
	return out
}

// recordHealthTransitions diffs a health pass against each member's
// previous state and logs healthy<->failing flips. The first pass only
// seeds the baseline — a steady state is not a transition.
func (p *Plane) recordHealthTransitions(hs []Health) {
	if p.events == nil {
		return
	}
	p.mu.Lock()
	for _, h := range hs {
		m, ok := p.members[h.Name]
		if !ok {
			continue
		}
		if m.probed && m.lastHealthy != h.Healthy {
			kind := obs.EventHealthUp
			if !h.Healthy {
				kind = obs.EventHealthDown
			}
			p.events.Record(obs.ControlEvent{Kind: kind, Engine: h.Name, Detail: h.Err})
		}
		m.probed = true
		m.lastHealthy = h.Healthy
	}
	p.mu.Unlock()
}

// StartHealth runs CheckHealth every interval until the returned stop
// function is called. Results go to onCheck when non-nil (the serving
// layer logs or exports them); the metrics side effects fire either
// way.
func (p *Plane) StartHealth(interval time.Duration, onCheck func([]Health)) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				hs := p.CheckHealth()
				if onCheck != nil {
					onCheck(hs)
				}
			}
		}
	}()
	return func() { close(done) }
}
