package controlplane

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/navarchos/pdm/internal/fleet"
	"github.com/navarchos/pdm/internal/obs"
)

// Engine is the slice of a fleet engine the control plane drives:
// enough to health-check it, enumerate and fence its vehicles, and
// move per-vehicle state in and out. *fleet.Engine implements it; so
// can a proxy for an engine in another process.
type Engine interface {
	Stats() fleet.EngineStats
	Err() error
	VehicleIDs() []string
	Cordon(vehicleID string)
	ExtractVehicle(id string) (fleet.VehicleState, error)
	AdoptVehicle(vs fleet.VehicleState) error
}

// Typed control-plane errors.
var (
	// ErrNoEngines is returned by EngineFor when no registered,
	// uncordoned engine can accept a placement.
	ErrNoEngines = errors.New("controlplane: no active engines")
	// ErrUnknownEngine is returned for operations on a name that was
	// never registered.
	ErrUnknownEngine = errors.New("controlplane: unknown engine")
	// ErrEngineExists is returned by Register for a duplicate name.
	ErrEngineExists = errors.New("controlplane: engine already registered")
)

// Config parameterises a Plane.
type Config struct {
	// Replicas is the virtual-node count per engine on the placement
	// ring (DefaultReplicas when <= 0).
	Replicas int
	// Metrics receives placement/handoff/health instrumentation; nil
	// disables it.
	Metrics *obs.CtrlMetrics
	// Events receives control-plane lifecycle events (cordon/uncordon,
	// per-vehicle drain start/finish/abort, health transitions); nil
	// disables the audit trail.
	Events *obs.EventLog
}

type member struct {
	eng      Engine
	cordoned bool
	// Health-probe transition tracking: probed latches after the first
	// CheckHealth pass so the initial observation is not reported as a
	// transition.
	probed      bool
	lastHealthy bool
}

// Plane is the control plane: a registry of named engines, the
// consistent-hash ring that places vehicles onto them, the sticky
// placement table recording where each vehicle actually lives, and the
// cordon/drain verbs that move vehicles with the fleet's per-vehicle
// handoff. All methods are safe for concurrent use.
//
// Placement is sticky by design: the ring only decides where a vehicle
// goes the *first* time it is seen (or when a drain re-pins it), and
// the table remembers the decision. Registering a new engine therefore
// shifts future placements without silently splitting an existing
// vehicle's state across two engines — vehicles only move through
// Drain, which moves their state along with them.
type Plane struct {
	mu         sync.Mutex
	ring       *Ring // uncordoned members only
	members    map[string]*member
	placements map[string]string // vehicle ID -> engine name
	metrics    *obs.CtrlMetrics
	events     *obs.EventLog
}

// New returns an empty Plane.
func New(cfg Config) *Plane {
	return &Plane{
		ring:       NewRing(cfg.Replicas),
		members:    map[string]*member{},
		placements: map[string]string{},
		metrics:    cfg.Metrics,
		events:     cfg.Events,
	}
}

// Events returns the plane's event log (may be nil).
func (p *Plane) Events() *obs.EventLog { return p.events }

// Register adds a named engine and makes it eligible for placements.
func (p *Plane) Register(name string, eng Engine) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.members[name]; ok {
		return fmt.Errorf("%w: %s", ErrEngineExists, name)
	}
	p.members[name] = &member{eng: eng}
	p.ring.Add(name)
	return nil
}

// Engine returns a registered engine by name.
func (p *Plane) Engine(name string) (Engine, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, ok := p.members[name]
	if !ok {
		return nil, false
	}
	return m.eng, true
}

// EngineFor resolves a vehicle to its serving engine, placing it by
// ring ownership on first contact and sticking to that decision until
// a drain moves it.
func (p *Plane) EngineFor(vehicleID string) (string, Engine, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if name, ok := p.placements[vehicleID]; ok {
		return name, p.members[name].eng, nil
	}
	name := p.ring.Owner(vehicleID)
	if name == "" {
		return "", nil, ErrNoEngines
	}
	p.placements[vehicleID] = name
	p.metrics.Placed()
	return name, p.members[name].eng, nil
}

// Lookup reports a vehicle's current placement without creating one.
func (p *Plane) Lookup(vehicleID string) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	name, ok := p.placements[vehicleID]
	return name, ok
}

// Placements returns a copy of the placement table.
func (p *Plane) Placements() map[string]string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]string, len(p.placements))
	for v, n := range p.placements {
		out[v] = n
	}
	return out
}

// Cordon fences an engine off from new placements: it leaves the ring,
// but vehicles already placed on it keep serving until Drain moves
// them.
func (p *Plane) Cordon(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cordonLocked(name)
}

func (p *Plane) cordonLocked(name string) error {
	m, ok := p.members[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownEngine, name)
	}
	if !m.cordoned {
		m.cordoned = true
		p.ring.Remove(name)
		p.metrics.SetCordoned(p.cordonedCountLocked())
		p.events.Record(obs.ControlEvent{Kind: obs.EventCordon, Engine: name})
	}
	return nil
}

// Uncordon returns an engine to the placement ring.
func (p *Plane) Uncordon(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, ok := p.members[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownEngine, name)
	}
	if m.cordoned {
		m.cordoned = false
		p.ring.Add(name)
		p.metrics.SetCordoned(p.cordonedCountLocked())
		p.events.Record(obs.ControlEvent{Kind: obs.EventUncordon, Engine: name})
	}
	return nil
}

func (p *Plane) cordonedCountLocked() int {
	n := 0
	for _, m := range p.members {
		if m.cordoned {
			n++
		}
	}
	return n
}

// Cordoned reports whether an engine is cordoned.
func (p *Plane) Cordoned(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, ok := p.members[name]
	return ok && m.cordoned
}

// Drain evacuates an engine: it is cordoned, then every vehicle placed
// or resident on it is fenced, extracted at its owning shard's batch
// boundary, adopted by its new ring owner, and re-pinned in the
// placement table. The engine stays registered and cordoned afterwards
// — Uncordon returns it to service, deregistration is the operator's
// next move. Returns the number of vehicles whose state moved.
//
// The handoffs run outside the plane lock, so placements of unrelated
// vehicles keep resolving while a drain is in flight; producers racing
// the drain are refused by the source engine's per-vehicle fence and
// re-resolve to the new placement. If a target refuses adoption the
// vehicle's state is re-adopted by the source (nothing is lost), the
// drain stops, and the error reports the vehicle; the engine remains
// cordoned with the remaining vehicles still on it.
func (p *Plane) Drain(name string) (moved int, err error) {
	p.mu.Lock()
	m, ok := p.members[name]
	if !ok {
		p.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrUnknownEngine, name)
	}
	if err := p.cordonLocked(name); err != nil {
		p.mu.Unlock()
		return 0, err
	}
	src := m.eng
	// Both views of "on this engine" matter: the placement table holds
	// vehicles routed here that may not have materialised state yet,
	// VehicleIDs holds state that may predate the table (an engine
	// restored from a checkpoint).
	idSet := map[string]bool{}
	for v, n := range p.placements {
		if n == name {
			idSet[v] = true
		}
	}
	p.mu.Unlock()
	for _, v := range src.VehicleIDs() {
		idSet[v] = true
	}
	ids := make([]string, 0, len(idSet))
	for v := range idSet {
		ids = append(ids, v)
	}
	sort.Strings(ids)

	for _, v := range ids {
		// Fence first so a vehicle with no state yet cannot grow one on
		// the draining engine after we look; ExtractVehicle preserves
		// the fence on failure and upgrades it to "migrating" on
		// success.
		src.Cordon(v)
		start := time.Now()
		p.events.Record(obs.ControlEvent{Kind: obs.EventDrainStart, Engine: name, VehicleID: v})
		vs, extractErr := src.ExtractVehicle(v)
		if extractErr != nil {
			if errors.Is(extractErr, fleet.ErrUnknownVehicle) {
				// Placed but never materialised: nothing to move, just
				// re-pin.
				if err := p.repoint(v, name); err != nil {
					p.events.Record(obs.ControlEvent{Kind: obs.EventDrainAbort, Engine: name,
						VehicleID: v, Detail: err.Error()})
					return moved, err
				}
				p.events.Record(obs.ControlEvent{Kind: obs.EventDrainFinish, Engine: name,
					VehicleID: v, Detail: "repointed without state",
					DurationS: time.Since(start).Seconds()})
				continue
			}
			p.events.Record(obs.ControlEvent{Kind: obs.EventDrainAbort, Engine: name,
				VehicleID: v, Detail: extractErr.Error()})
			return moved, fmt.Errorf("controlplane: drain %s: %w", name, extractErr)
		}
		target, targetName, pickErr := p.pickTarget(v, name)
		if pickErr == nil {
			pickErr = target.AdoptVehicle(vs)
		}
		if pickErr != nil {
			// Put the state back where it came from rather than dropping
			// it on the floor; the vehicle keeps serving on the cordoned
			// engine.
			p.events.Record(obs.ControlEvent{Kind: obs.EventDrainAbort, Engine: name, Peer: targetName,
				VehicleID: v, Detail: pickErr.Error()})
			if backErr := src.AdoptVehicle(vs); backErr != nil {
				return moved, fmt.Errorf("controlplane: drain %s: vehicle %s stranded: %v (after: %w)",
					name, v, backErr, pickErr)
			}
			return moved, fmt.Errorf("controlplane: drain %s: vehicle %s: %w", name, v, pickErr)
		}
		p.mu.Lock()
		p.placements[v] = targetName
		p.mu.Unlock()
		p.metrics.ObserveHandoff(time.Since(start))
		p.metrics.Placed()
		p.events.Record(obs.ControlEvent{Kind: obs.EventDrainFinish, Engine: name, Peer: targetName,
			VehicleID: v, DurationS: time.Since(start).Seconds()})
		moved++
	}
	return moved, nil
}

// pickTarget resolves a drained vehicle's new owner on the current
// ring (the source is already off it).
func (p *Plane) pickTarget(vehicleID, exclude string) (Engine, string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	name := p.ring.Owner(vehicleID)
	if name == "" || name == exclude {
		return nil, "", ErrNoEngines
	}
	return p.members[name].eng, name, nil
}

// repoint re-pins a stateless vehicle off a draining engine.
func (p *Plane) repoint(vehicleID, from string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	name := p.ring.Owner(vehicleID)
	if name == "" || name == from {
		return ErrNoEngines
	}
	p.placements[vehicleID] = name
	p.metrics.Placed()
	return nil
}

// EngineNames returns the registered engine names, sorted.
func (p *Plane) EngineNames() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.members))
	for n := range p.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
