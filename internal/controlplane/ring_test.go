package controlplane

import (
	"fmt"
	"testing"
)

func TestRingOwnerDeterministic(t *testing.T) {
	mk := func() *Ring {
		r := NewRing(0)
		r.Add("engine-b")
		r.Add("engine-a")
		r.Add("engine-c")
		return r
	}
	r1, r2 := mk(), mk()
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("veh-%04d", i)
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("key %s: owners differ across identical rings", key)
		}
	}
	if got := r1.Members(); len(got) != 3 || got[0] != "engine-a" || got[2] != "engine-c" {
		t.Fatalf("Members = %v", got)
	}
}

// TestRingMinimalMovement is the property the ring exists for: removing
// one node must move only the keys that node owned — every other key
// keeps its owner, so a drain touches exactly the drained engine's
// vehicles.
func TestRingMinimalMovement(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"a", "b", "c"} {
		r.Add(n)
	}
	before := map[string]string{}
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("veh-%04d", i)
		before[key] = r.Owner(key)
	}
	r.Remove("b")
	for key, prev := range before {
		got := r.Owner(key)
		if prev != "b" && got != prev {
			t.Fatalf("key %s moved %s -> %s though its owner stayed in the ring", key, prev, got)
		}
		if prev == "b" && got == "b" {
			t.Fatalf("key %s still owned by removed node", key)
		}
	}
}

// TestRingBalance bounds the spread: with DefaultReplicas virtual
// nodes, no engine in a trio should own less than half or more than
// double its fair share of a large key set.
func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"a", "b", "c"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := map[string]int{}
	const keys = 6000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("veh-%05d", i))]++
	}
	fair := keys / len(nodes)
	for _, n := range nodes {
		if counts[n] < fair/2 || counts[n] > fair*2 {
			t.Errorf("node %s owns %d of %d keys (fair %d): spread too skewed", n, counts[n], keys, fair)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := NewRing(4)
	if got := r.Owner("veh-0"); got != "" {
		t.Fatalf("empty ring Owner = %q", got)
	}
	r.Add("a")
	r.Add("a") // duplicate add is a no-op
	if got := len(r.points); got != 4 {
		t.Fatalf("duplicate Add grew the ring to %d points", got)
	}
	r.Remove("ghost") // unknown remove is a no-op
	if got := r.Owner("anything"); got != "a" {
		t.Fatalf("single-node ring Owner = %q", got)
	}
	r.Remove("a")
	if got := r.Owner("veh-0"); got != "" {
		t.Fatalf("emptied ring Owner = %q", got)
	}
}
