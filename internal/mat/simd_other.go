//go:build !amd64

package mat

// Non-amd64 builds run the pure Go kernels; the dispatch flags stay
// false and the assembly entry points are never reached.

const (
	hasAVX = false
	hasFMA = false
)

func axpyAVX(alpha float64, x, y []float64) { panic("mat: axpyAVX without AVX") }

func dotFMA(x, y []float64) float64 { panic("mat: dotFMA without FMA") }

func adamAVX(w, g, m, v []float64, b1, omb1, b2, omb2, bc1, bc2, lr, eps float64) {
	panic("mat: adamAVX without AVX")
}

func linBwdFMA(x, g, w, wg, dx []float64) { panic("mat: linBwdFMA without FMA") }

func linFwdAVX(x, b, w, out []float64) { panic("mat: linFwdAVX without AVX") }

func distPackAVX(q, block, out []float64) { panic("mat: distPackAVX without AVX") }

func normRowAVX(x, gain, bias, out []float64, m, inv float64) {
	panic("mat: normRowAVX without AVX")
}

func simdMode() string { return "scalar" }
