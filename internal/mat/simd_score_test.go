package mat

import (
	"math"
	"math/rand"
	"testing"
)

// Scoring-path kernel tests: the distance and row kernels sit on
// bit-exactness-contracted paths (neighbour searches feed the grand
// conformal gates, NormRow feeds the tranad last-row scorer), so every
// test here asserts Float64bits identity against the scalar reference
// at awkward lengths — 0, 1, either side of the vector width, and
// unaligned tails — whatever kernel the CPU dispatches to.

// TestSquaredDistances8BitIdentical packs 8 points dim-major and checks
// every lane of the block kernel against a scalar SquaredEuclidean of
// the same point, bit for bit, across dims spanning the blocking
// boundaries (the lane reduction must run in element order).
func TestSquaredDistances8BitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, dim := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 45, 64} {
		pts := make([][]float64, DistLanes)
		block := make([]float64, dim*DistLanes)
		for p := range pts {
			pts[p] = randVec(rng, dim)
			for j := 0; j < dim; j++ {
				block[j*DistLanes+p] = pts[p][j]
			}
		}
		q := randVec(rng, dim)
		if dim > 0 {
			// Exercise exact-cancellation lanes too: identical elements
			// must produce exact zero contributions.
			copy(pts[3], q)
			for j := 0; j < dim; j++ {
				block[j*DistLanes+3] = q[j]
			}
		}
		out := make([]float64, DistLanes)
		SquaredDistances8(q, block, out)
		for p := range pts {
			want, err := SquaredEuclidean(q, pts[p])
			if err != nil {
				t.Fatalf("dim=%d: reference error: %v", dim, err)
			}
			if math.Float64bits(out[p]) != math.Float64bits(want) {
				t.Fatalf("dim=%d lane=%d: SquaredDistances8=%x scalar=%x (simd=%s)",
					dim, p, math.Float64bits(out[p]), math.Float64bits(want), SIMDMode())
			}
		}
	}
}

// TestNormRowBitIdentical drives NormRow against the scalar loop the
// layer-norm row evaluator used to inline, at every length across the
// SIMD blocking boundaries.
func TestNormRowBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for n := 0; n <= 67; n++ {
		x := randVec(rng, n)
		gain := randVec(rng, n)
		bias := randVec(rng, n)
		got := make([]float64, n)
		want := make([]float64, n)
		m := rng.NormFloat64()
		inv := math.Abs(rng.NormFloat64()) + 0.5
		NormRow(x, gain, bias, got, m, inv)
		for j := range want {
			want[j] = (x[j]-m)*inv*gain[j] + bias[j]
		}
		for j := range got {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("n=%d j=%d: NormRow=%x scalar=%x (simd=%s)",
					n, j, math.Float64bits(got[j]), math.Float64bits(want[j]), SIMDMode())
			}
		}
	}
}

// TestLinFwdStripBitIdentical re-pins LinFwd after the strip-mined
// register-accumulator rewrite: wider shape sweep than the original
// test, including NaN inputs (which must be processed, not skipped)
// and in=0 rows (out must equal the bias).
func TestLinFwdStripBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, shape := range [][2]int{
		{1, 8}, {2, 8}, {16, 16}, {16, 24}, {48, 48}, {3, 40}, {17, 32},
		{0, 8}, {0, 16}, {5, 7}, {5, 9}, {6, 1}, {4, 0},
	} {
		in, width := shape[0], shape[1]
		x := randVec(rng, in)
		for i := range x {
			switch i % 5 {
			case 0:
				x[i] = 0
			case 3:
				if i%10 == 3 {
					x[i] = math.NaN()
				}
			}
		}
		b, w := randVec(rng, width), randVec(rng, in*width)
		got := make([]float64, width)
		want := make([]float64, width)
		LinFwd(x, b, w, got)
		copy(want, b)
		for k, v := range x {
			if v == 0 {
				continue
			}
			for j := 0; j < width; j++ {
				want[j] += v * w[k*width+j]
			}
		}
		for j := range got {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("in=%d width=%d: out[%d]=%x want %x (simd=%s)",
					in, width, j, math.Float64bits(got[j]), math.Float64bits(want[j]), SIMDMode())
			}
		}
	}
}

func BenchmarkSquaredDistances8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const dim = 45
	q := randVec(rng, dim)
	block := randVec(rng, dim*DistLanes)
	out := make([]float64, DistLanes)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SquaredDistances8(q, block, out)
	}
}

func BenchmarkNormRow(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 48
	x, gain, bias := randVec(rng, n), randVec(rng, n), randVec(rng, n)
	out := make([]float64, n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NormRow(x, gain, bias, out, 0.1, 1.7)
	}
}

func BenchmarkLinFwd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const in, width = 48, 48
	x, bias, w := randVec(rng, in), randVec(rng, width), randVec(rng, in*width)
	out := make([]float64, width)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LinFwd(x, bias, w, out)
	}
}
