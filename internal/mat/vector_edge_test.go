package mat

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Edge-case coverage for the order-statistics helpers: tiny inputs, NaN
// handling, the q=0/1 interpolation boundaries, and the insertion/merge
// sort crossover.

func TestQuantileTinyInputs(t *testing.T) {
	// len 1: every valid q returns the single element.
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := Quantile([]float64{7}, q); got != 7 {
			t.Fatalf("Quantile([7], %v) = %v, want 7", q, got)
		}
	}
	if got := Median([]float64{-3}); got != -3 {
		t.Fatalf("Median([-3]) = %v", got)
	}
	// len 2: boundaries hit the order statistics exactly, interior
	// interpolates linearly between them.
	x := []float64{10, 20}
	if got := Quantile(x, 0); got != 10 {
		t.Fatalf("q=0 of [10,20] = %v, want 10", got)
	}
	if got := Quantile(x, 1); got != 20 {
		t.Fatalf("q=1 of [10,20] = %v, want 20", got)
	}
	if got := Quantile(x, 0.5); got != 15 {
		t.Fatalf("q=0.5 of [10,20] = %v, want 15", got)
	}
	if got := Quantile(x, 0.25); got != 12.5 {
		t.Fatalf("q=0.25 of [10,20] = %v, want 12.5", got)
	}
	if got := Median(x); got != 15 {
		t.Fatalf("Median([10,20]) = %v", got)
	}
}

func TestQuantileBoundariesExactOnLargerInput(t *testing.T) {
	// q=0 and q=1 must return min and max exactly (lo == hi, no
	// interpolation arithmetic that could perturb the value).
	x := []float64{0.3, -1.7, 2.9, 0.1, -0.4}
	if got := Quantile(x, 0); got != -1.7 {
		t.Fatalf("q=0 = %v, want -1.7", got)
	}
	if got := Quantile(x, 1); got != 2.9 {
		t.Fatalf("q=1 = %v, want 2.9", got)
	}
	// Input must not be reordered by the copy-and-sort.
	want := []float64{0.3, -1.7, 2.9, 0.1, -0.4}
	for i := range x {
		if x[i] != want[i] {
			t.Fatal("Quantile mutated its input")
		}
	}
}

func TestQuantileInvalidQ(t *testing.T) {
	x := []float64{1, 2, 3}
	for _, q := range []float64{-0.001, 1.001, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := Quantile(x, q); !math.IsNaN(got) {
			t.Fatalf("Quantile(x, %v) = %v, want NaN", q, got)
		}
	}
}

func TestQuantileNaNInput(t *testing.T) {
	// All-NaN input yields NaN at every quantile.
	allNaN := []float64{math.NaN(), math.NaN()}
	for _, q := range []float64{0, 0.5, 1} {
		if got := Quantile(allNaN, q); !math.IsNaN(got) {
			t.Fatalf("all-NaN Quantile(q=%v) = %v, want NaN", q, got)
		}
	}
	if got := Median([]float64{math.NaN()}); !math.IsNaN(got) {
		t.Fatalf("Median([NaN]) = %v, want NaN", got)
	}
	// Mixed NaN input must not panic; the result is either NaN or one
	// of the finite members (NaN ordering under comparison sorts is
	// unspecified, matching sort.Float64s).
	mixed := []float64{math.NaN(), 1, 2, math.NaN(), 3}
	for _, q := range []float64{0, 0.5, 1} {
		got := Quantile(mixed, q)
		if !math.IsNaN(got) && (got < 1 || got > 3) {
			t.Fatalf("mixed-NaN Quantile(q=%v) = %v, outside member range", q, got)
		}
	}
}

func TestSortCrossoverThreshold(t *testing.T) {
	// insertionSort hands off to mergeSort above 64 elements. Exercise
	// both sides of the crossover (and the exact boundary) with
	// adversarial and random inputs; each must agree with sort.Float64s.
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{63, 64, 65, 66, 128, 257} {
		for _, gen := range []string{"reversed", "random", "constant"} {
			x := make([]float64, n)
			for i := range x {
				switch gen {
				case "reversed":
					x[i] = float64(n - i)
				case "random":
					x[i] = rng.NormFloat64()
				case "constant":
					x[i] = 5
				}
			}
			want := make([]float64, n)
			copy(want, x)
			sort.Float64s(want)
			insertionSort(x)
			for i := range x {
				if x[i] != want[i] {
					t.Fatalf("n=%d %s: element %d = %v, want %v", n, gen, i, x[i], want[i])
				}
			}
		}
	}
}

func TestQuantileCrossoverConsistency(t *testing.T) {
	// The same distribution must give the same quantiles whether the
	// sort ran on the insertion path (n=64) or the merge path (n=65,
	// with one duplicated element that cannot change the median).
	small := make([]float64, 64)
	rng := rand.New(rand.NewSource(43))
	for i := range small {
		small[i] = rng.NormFloat64()
	}
	sorted := make([]float64, len(small))
	copy(sorted, small)
	sort.Float64s(sorted)
	pos := 0.5 * float64(len(small)-1)
	lo, hi := int(math.Floor(pos)), int(math.Ceil(pos))
	want := sorted[lo]*(1-(pos-float64(lo))) + sorted[hi]*(pos-float64(lo))
	if got := Median(small); got != want {
		t.Fatalf("insertion-path median = %v, want %v", got, want)
	}
}
