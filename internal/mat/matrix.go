package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64. The zero value is an
// empty matrix; use NewMatrix to allocate one with dimensions.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zeroed r×c matrix. It panics if r or c is
// negative, which indicates a programming error rather than bad data.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: NewMatrix(%d, %d): negative dimension", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix by copying the given rows. All rows must have
// equal length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("mat: FromRows: row %d has %d columns, want %d: %w", i, len(row), c, ErrDimension)
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	return m.ColInto(make([]float64, m.Rows), j)
}

// ColInto gathers column j into dst, which must have length m.Rows, and
// returns dst. It is the allocation-free form of Col for callers that
// walk many columns (CorrelationMatrix, ColStds).
func (m *Matrix) ColInto(dst []float64, j int) []float64 {
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: ColInto: len(dst)=%d, Rows=%d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Data[i*m.Cols+j]
	}
	return dst
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// ColMeans returns the per-column means.
func (m *Matrix) ColMeans() []float64 {
	out := make([]float64, m.Cols)
	if m.Rows == 0 {
		for j := range out {
			out[j] = math.NaN()
		}
		return out
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	inv := 1 / float64(m.Rows)
	for j := range out {
		out[j] *= inv
	}
	return out
}

// ColStds returns the per-column population standard deviations.
func (m *Matrix) ColStds() []float64 {
	out := make([]float64, m.Cols)
	if m.Rows == 0 {
		for j := range out {
			out[j] = math.NaN()
		}
		return out
	}
	// Gather each column once and reduce it contiguously. The per-column
	// accumulation order (row index ascending, mean then squared
	// deviations, both scaled by 1/rows) matches the row-major loops this
	// replaces bit for bit.
	inv := 1 / float64(m.Rows)
	buf := make([]float64, m.Rows)
	for j := 0; j < m.Cols; j++ {
		m.ColInto(buf, j)
		var mean float64
		for _, v := range buf {
			mean += v
		}
		mean *= inv
		var ss float64
		for _, v := range buf {
			d := v - mean
			ss += d * d
		}
		out[j] = math.Sqrt(ss * inv)
	}
	return out
}

// CorrelationMatrix returns the Cols×Cols Pearson correlation matrix of
// the columns of m. Constant columns correlate 0 with everything and 1
// with themselves.
func (m *Matrix) CorrelationMatrix() (*Matrix, error) {
	out := NewMatrix(m.Cols, m.Cols)
	// One backing slab for all gathered columns instead of an
	// allocation per column.
	back := make([]float64, m.Cols*m.Rows)
	cols := make([][]float64, m.Cols)
	for j := 0; j < m.Cols; j++ {
		cols[j] = m.ColInto(back[j*m.Rows:(j+1)*m.Rows], j)
	}
	for a := 0; a < m.Cols; a++ {
		out.Set(a, a, 1)
		for b := a + 1; b < m.Cols; b++ {
			r, err := Pearson(cols[a], cols[b])
			if err != nil {
				return nil, err
			}
			out.Set(a, b, r)
			out.Set(b, a, r)
		}
	}
	return out, nil
}

// UpperTriangle returns the strict upper triangle of a square matrix in
// row-major order: (0,1), (0,2), ..., (n-2, n-1). This is the
// f*(f-1)/2-dimensional feature vector used by the correlation transform.
func (m *Matrix) UpperTriangle() ([]float64, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("mat: UpperTriangle of %dx%d matrix: %w", m.Rows, m.Cols, ErrDimension)
	}
	out := make([]float64, 0, m.Rows*(m.Rows-1)/2)
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			out = append(out, m.At(i, j))
		}
	}
	return out, nil
}

// Standardize returns a copy of m with each column shifted to zero mean
// and scaled to unit standard deviation, along with the means and stds
// used (so new data can be projected into the same space). Constant
// columns are left centred but unscaled.
func (m *Matrix) Standardize() (out *Matrix, means, stds []float64) {
	means = m.ColMeans()
	stds = m.ColStds()
	out = m.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] -= means[j]
			if stds[j] > 0 {
				row[j] /= stds[j]
			}
		}
	}
	return out, means, stds
}

// ApplyStandardization projects x (a single row) into the standardized
// space defined by means and stds.
func ApplyStandardization(x, means, stds []float64) ([]float64, error) {
	return ApplyStandardizationInto(make([]float64, len(x)), x, means, stds)
}

// ApplyStandardizationInto is the allocation-free ApplyStandardization:
// it writes into out, which must have x's length, and returns out.
func ApplyStandardizationInto(out, x, means, stds []float64) ([]float64, error) {
	if len(x) != len(means) || len(x) != len(stds) || len(out) != len(x) {
		return nil, ErrDimension
	}
	for j := range x {
		out[j] = x[j] - means[j]
		if stds[j] > 0 {
			out[j] /= stds[j]
		}
	}
	return out, nil
}
