package mat

import (
	"math"
	"math/rand"
	"testing"
)

// addScaledScalar is the reference axpy: the exact loop the SIMD kernel
// must reproduce bit-for-bit.
func addScaledScalar(dst []float64, alpha float64, x []float64) {
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

// adamStepScalar is the reference Adam update (mirrors the historic
// nn.Adam loop).
func adamStepScalar(w, g, m, v []float64, beta1, beta2, bc1, bc2, lr, eps float64) {
	for j := range w {
		gj := g[j]
		m[j] = beta1*m[j] + (1-beta1)*gj
		v[j] = beta2*v[j] + (1-beta2)*gj*gj
		mh := m[j] / bc1
		vh := v[j] / bc2
		w[j] -= lr * mh / (math.Sqrt(vh) + eps)
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// TestAddScaledBitIdentical drives AddScaled (whatever kernel the CPU
// dispatches to) against the scalar reference at every length across
// the SIMD blocking boundaries.
func TestAddScaledBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n <= 67; n++ {
		x := randVec(rng, n)
		dst := randVec(rng, n)
		want := append([]float64(nil), dst...)
		alpha := rng.NormFloat64()
		AddScaled(dst, alpha, x)
		addScaledScalar(want, alpha, x)
		for i := range dst {
			if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
				t.Fatalf("n=%d i=%d: AddScaled=%x scalar=%x (simd=%s)",
					n, i, math.Float64bits(dst[i]), math.Float64bits(want[i]), SIMDMode())
			}
		}
	}
}

// TestAdamStepBitIdentical checks the vectorised Adam update replays
// the scalar operation sequence exactly, including denormal-ish tiny
// gradients and the sqrt/div tail.
func TestAdamStepBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 0; n <= 67; n++ {
		w, g := randVec(rng, n), randVec(rng, n)
		m, v := randVec(rng, n), randVec(rng, n)
		for i := range v {
			v[i] = math.Abs(v[i]) * 1e-3 // v must stay non-negative
			if i%7 == 0 {
				g[i] *= 1e-150
			}
		}
		w2 := append([]float64(nil), w...)
		g2 := append([]float64(nil), g...)
		m2 := append([]float64(nil), m...)
		v2 := append([]float64(nil), v...)
		AdamStep(w, g, m, v, 0.9, 0.999, 0.19, 0.0299, 1e-3, 1e-8)
		adamStepScalar(w2, g2, m2, v2, 0.9, 0.999, 0.19, 0.0299, 1e-3, 1e-8)
		for i := range w {
			if math.Float64bits(w[i]) != math.Float64bits(w2[i]) ||
				math.Float64bits(m[i]) != math.Float64bits(m2[i]) ||
				math.Float64bits(v[i]) != math.Float64bits(v2[i]) {
				t.Fatalf("n=%d i=%d: AdamStep diverges from scalar (simd=%s)", n, i, SIMDMode())
			}
		}
	}
}

// TestDotUnrolled4Accuracy sanity-checks the reassociated dot (FMA
// kernel included) against a compensated reference within a small
// relative error — bit-equality is explicitly NOT contracted here.
func TestDotUnrolled4Accuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 4, 15, 16, 17, 31, 32, 33, 64, 1000} {
		x, y := randVec(rng, n), randVec(rng, n)
		var want float64
		for i := range x {
			want += x[i] * y[i]
		}
		got := DotUnrolled4(x, y)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("n=%d: DotUnrolled4=%g reference=%g (simd=%s)", n, got, want, SIMDMode())
		}
	}
}

func BenchmarkAddScaled(b *testing.B) {
	x := randVec(rand.New(rand.NewSource(1)), 256)
	dst := make([]float64, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AddScaled(dst, 1.0000001, x)
	}
}

func BenchmarkAdamStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w, g := randVec(rng, 4096), randVec(rng, 4096)
	m, v := randVec(rng, 4096), make([]float64, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AdamStep(w, g, m, v, 0.9, 0.999, 0.1, 0.01, 1e-3, 1e-8)
	}
}

// TestLinBwdFastMatchesReference checks the fused backward kernel
// against the unfused per-row reference at assorted shapes, including
// non-multiple-of-8 widths that exercise the Go fallback.
func TestLinBwdFastMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, shape := range [][2]int{{1, 8}, {3, 16}, {10, 48}, {48, 48}, {5, 7}, {7, 24}, {4, 0}} {
		in, out := shape[0], shape[1]
		x, g := randVec(rng, in), randVec(rng, out)
		w := randVec(rng, in*out)
		wg := randVec(rng, in*out)
		dx := make([]float64, in)
		wg2 := append([]float64(nil), wg...)
		dx2 := make([]float64, in)
		LinBwdFast(x, g, w, wg, dx)
		for k := 0; k < in; k++ {
			addScaledScalar(wg2[k*out:(k+1)*out], x[k], g)
			var acc float64
			for j := 0; j < out; j++ {
				acc += g[j] * w[k*out+j]
			}
			dx2[k] = acc
		}
		for i := range wg {
			// axpy lanes are bit-exact.
			if math.Float64bits(wg[i]) != math.Float64bits(wg2[i]) {
				t.Fatalf("in=%d out=%d: wg[%d] differs (simd=%s)", in, out, i, SIMDMode())
			}
		}
		for k := range dx {
			// dots reassociate: tolerance, not bits.
			if math.Abs(dx[k]-dx2[k]) > 1e-9*(1+math.Abs(dx2[k])) {
				t.Fatalf("in=%d out=%d: dx[%d]=%g want %g (simd=%s)", in, out, k, dx[k], dx2[k], SIMDMode())
			}
		}
	}
}

// TestLinFwdBitIdentical checks the fused forward kernel against the
// scalar zero-skipping loop, bit for bit, including rows with exact
// zeros (post-ReLU sparsity) and widths that exercise the Go fallback.
func TestLinFwdBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, shape := range [][2]int{{1, 8}, {3, 16}, {10, 48}, {48, 48}, {5, 7}, {7, 24}, {0, 8}} {
		in, out := shape[0], shape[1]
		x := randVec(rng, in)
		for i := range x {
			if i%3 == 0 {
				x[i] = 0 // exercise the zero skip
			}
		}
		b, w := randVec(rng, out), randVec(rng, in*out)
		got := make([]float64, out)
		want := make([]float64, out)
		LinFwd(x, b, w, got)
		copy(want, b)
		for k, v := range x {
			if v == 0 {
				continue
			}
			for j := 0; j < out; j++ {
				want[j] += v * w[k*out+j]
			}
		}
		for j := range got {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("in=%d out=%d: out[%d]=%x want %x (simd=%s)",
					in, out, j, math.Float64bits(got[j]), math.Float64bits(want[j]), SIMDMode())
			}
		}
	}
}
