#include "textflag.h"

// CPUID with explicit EAX/ECX inputs.
// func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// XGETBV with ECX=0 (XCR0). Only called once OSXSAVE is confirmed.
// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// y[i] += alpha*x[i], len(x) a positive multiple of 8. Elementwise
// multiply-then-add (no FMA), so every lane produces exactly the bits
// of the scalar loop.
// func axpyAVX(alpha float64, x, y []float64)
TEXT ·axpyAVX(SB), NOSPLIT, $0-56
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ x_base+8(FP), SI
	MOVQ y_base+32(FP), DI
	MOVQ x_len+16(FP), CX
	XORQ AX, AX

axpyloop:
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VADDPD  (DI)(AX*8), Y1, Y1
	VADDPD  32(DI)(AX*8), Y2, Y2
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	ADDQ $8, AX
	CMPQ AX, CX
	JL   axpyloop
	VZEROUPPER
	RET

// Inner product with four vector accumulators and fused multiply-adds.
// Reassociates: DotUnrolled4 callers only. len(x) a positive multiple
// of 16.
// func dotFMA(x, y []float64) float64
TEXT ·dotFMA(SB), NOSPLIT, $0-56
	MOVQ x_base+0(FP), SI
	MOVQ y_base+24(FP), DI
	MOVQ x_len+8(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	XORQ AX, AX

dotloop:
	VMOVUPD (SI)(AX*8), Y4
	VMOVUPD 32(SI)(AX*8), Y5
	VMOVUPD 64(SI)(AX*8), Y6
	VMOVUPD 96(SI)(AX*8), Y7
	VFMADD231PD (DI)(AX*8), Y4, Y0
	VFMADD231PD 32(DI)(AX*8), Y5, Y1
	VFMADD231PD 64(DI)(AX*8), Y6, Y2
	VFMADD231PD 96(DI)(AX*8), Y7, Y3
	ADDQ $16, AX
	CMPQ AX, CX
	JL   dotloop

	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	VMOVSD X0, ret+48(FP)
	VZEROUPPER
	RET

// One Adam update over 4k elements (len(w) a positive multiple of 4).
// The lane arithmetic replays adamScalar's exact operation sequence —
// separate multiplies and adds, correctly-rounded VSQRTPD/VDIVPD — so
// the result is bit-identical to the pure Go loop.
// func adamAVX(w, g, m, v []float64, b1, omb1, b2, omb2, bc1, bc2, lr, eps float64)
TEXT ·adamAVX(SB), NOSPLIT, $0-160
	MOVQ w_base+0(FP), DI
	MOVQ g_base+24(FP), SI
	MOVQ m_base+48(FP), R8
	MOVQ v_base+72(FP), R9
	MOVQ w_len+8(FP), CX
	VBROADCASTSD b1+96(FP), Y8
	VBROADCASTSD omb1+104(FP), Y9
	VBROADCASTSD b2+112(FP), Y10
	VBROADCASTSD omb2+120(FP), Y11
	VBROADCASTSD bc1+128(FP), Y12
	VBROADCASTSD bc2+136(FP), Y13
	VBROADCASTSD lr+144(FP), Y14
	VBROADCASTSD eps+152(FP), Y15
	XORQ AX, AX

adamloop:
	VMOVUPD (SI)(AX*8), Y0      // g
	VMOVUPD (R8)(AX*8), Y1      // m
	VMOVUPD (R9)(AX*8), Y2      // v
	VMULPD  Y8, Y1, Y1          // b1*m
	VMULPD  Y9, Y0, Y3          // omb1*g
	VADDPD  Y3, Y1, Y1          // m' = b1*m + omb1*g
	VMULPD  Y10, Y2, Y2         // b2*v
	VMULPD  Y11, Y0, Y4         // omb2*g
	VMULPD  Y0, Y4, Y4          // (omb2*g)*g
	VADDPD  Y4, Y2, Y2          // v' = b2*v + omb2*g*g
	VMOVUPD Y1, (R8)(AX*8)
	VMOVUPD Y2, (R9)(AX*8)
	VDIVPD  Y12, Y1, Y1         // mh = m'/bc1
	VDIVPD  Y13, Y2, Y2         // vh = v'/bc2
	VSQRTPD Y2, Y2              // sqrt(vh)
	VADDPD  Y15, Y2, Y2         // sqrt(vh)+eps
	VMULPD  Y14, Y1, Y1         // lr*mh
	VDIVPD  Y2, Y1, Y1          // step = lr*mh/(sqrt(vh)+eps)
	VMOVUPD (DI)(AX*8), Y5
	VSUBPD  Y1, Y5, Y5          // w -= step
	VMOVUPD Y5, (DI)(AX*8)
	ADDQ $4, AX
	CMPQ AX, CX
	JL   adamloop
	VZEROUPPER
	RET

// Fused dense-layer backward row update, one pass over W and its
// gradient: for each k, wg[k*out:] += x[k]*g (elementwise lanes, no
// FMA) and dx[k] = dot(g, w[k*out:]) (FMA-reassociated). out = len(g)
// a positive multiple of 8; len(x) = len(dx) = rows of W.
// func linBwdFMA(x, g, w, wg, dx []float64)
TEXT ·linBwdFMA(SB), NOSPLIT, $0-120
	MOVQ x_base+0(FP), R9
	MOVQ x_len+8(FP), R10   // in
	MOVQ g_base+24(FP), SI
	MOVQ g_len+32(FP), CX   // out
	MOVQ w_base+48(FP), DI
	MOVQ wg_base+72(FP), R8
	MOVQ dx_base+96(FP), DX
	XORQ R11, R11           // k

lbk:
	VBROADCASTSD (R9)(R11*8), Y0
	VXORPD Y1, Y1, Y1       // dot accumulators
	VXORPD Y2, Y2, Y2
	XORQ AX, AX             // j

lbj:
	VMOVUPD (SI)(AX*8), Y4
	VMOVUPD 32(SI)(AX*8), Y5
	VMULPD  Y0, Y4, Y6
	VMULPD  Y0, Y5, Y7
	VADDPD  (R8)(AX*8), Y6, Y6
	VADDPD  32(R8)(AX*8), Y7, Y7
	VMOVUPD Y6, (R8)(AX*8)
	VMOVUPD Y7, 32(R8)(AX*8)
	VFMADD231PD (DI)(AX*8), Y4, Y1
	VFMADD231PD 32(DI)(AX*8), Y5, Y2
	ADDQ $8, AX
	CMPQ AX, CX
	JL   lbj

	VADDPD Y2, Y1, Y1
	VEXTRACTF128 $1, Y1, X2
	VADDPD X2, X1, X1
	VHADDPD X1, X1, X1
	VMOVSD X1, (DX)(R11*8)
	LEAQ (DI)(CX*8), DI
	LEAQ (R8)(CX*8), R8
	INCQ R11
	CMPQ R11, R10
	JL   lbk
	VZEROUPPER
	RET

// Fused dense-layer forward row: out = b, then out += x[k]*w[k*out:]
// for every k with x[k] != 0 (matching the scalar path's post-ReLU
// zero skip; NaN x[k] is processed, as in the scalar path). Elementwise
// multiply-then-add lanes only, so the result is bit-identical to the
// scalar loop. len(out) = len(b) a positive multiple of 8.
//
// The output is strip-mined 8 columns at a time with the strip held in
// two YMM accumulators across the whole k loop, so the inner iteration
// is broadcast + two W loads + mul + add — no out-row load/store per k
// the way a column-sweeping axpy pays. Column strips are independent,
// and within a strip each element accumulates in k-order, so the bits
// are unchanged.
// func linFwdAVX(x, b, w, out []float64)
TEXT ·linFwdAVX(SB), NOSPLIT, $0-96
	MOVQ x_base+0(FP), R9
	MOVQ x_len+8(FP), R10   // in
	MOVQ b_base+24(FP), BX
	MOVQ w_base+48(FP), DI
	MOVQ out_base+72(FP), DX
	MOVQ out_len+80(FP), CX // out width

	VXORPD X3, X3, X3
	XORQ R12, R12           // column strip offset (elements)
fwdstrip:
	VMOVUPD (BX)(R12*8), Y4   // acc = bias strip
	VMOVUPD 32(BX)(R12*8), Y5
	LEAQ (DI)(R12*8), R13     // &w[0*width + strip]
	XORQ R11, R11             // k
	TESTQ R10, R10
	JZ   fwdstore
fwdk:
	VMOVSD (R9)(R11*8), X0
	VUCOMISD X3, X0
	JP   fwddo              // NaN: unordered → process like scalar path
	JE   fwdskip            // exact zero → skip row k of W
fwddo:
	VBROADCASTSD (R9)(R11*8), Y0
	VMOVUPD (R13), Y1
	VMOVUPD 32(R13), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VADDPD  Y1, Y4, Y4
	VADDPD  Y2, Y5, Y5
fwdskip:
	LEAQ (R13)(CX*8), R13   // next W row, same column strip
	INCQ R11
	CMPQ R11, R10
	JL   fwdk
fwdstore:
	VMOVUPD Y4, (DX)(R12*8)
	VMOVUPD Y5, 32(DX)(R12*8)
	ADDQ $8, R12
	CMPQ R12, CX
	JL   fwdstrip
	VZEROUPPER
	RET

// Squared Euclidean distances from q to the 8 points of one dim-major
// packed block: out[p] = Σ_j (q[j]-block[j*8+p])², accumulated in
// j-order per lane with separate subtract/multiply/add (no FMA), so
// every lane produces exactly the bits of a scalar SquaredEuclidean
// over that point. len(q) = dim (0 allowed: out is zeroed),
// len(block) = dim*8, len(out) = 8.
// func distPackAVX(q, block, out []float64)
TEXT ·distPackAVX(SB), NOSPLIT, $0-72
	MOVQ q_base+0(FP), SI
	MOVQ q_len+8(FP), CX    // dim
	MOVQ block_base+24(FP), DI
	MOVQ out_base+48(FP), DX
	VXORPD Y4, Y4, Y4       // acc lanes 0..3
	VXORPD Y5, Y5, Y5       // acc lanes 4..7
	XORQ AX, AX             // j
	TESTQ CX, CX
	JZ   dpdone
dploop:
	VBROADCASTSD (SI)(AX*8), Y0
	VMOVUPD (DI), Y1
	VMOVUPD 32(DI), Y2
	VSUBPD  Y1, Y0, Y1      // q[j] - p[j], lanes 0..3
	VSUBPD  Y2, Y0, Y2      // lanes 4..7
	VMULPD  Y1, Y1, Y1
	VMULPD  Y2, Y2, Y2
	VADDPD  Y1, Y4, Y4
	VADDPD  Y2, Y5, Y5
	ADDQ $64, DI
	INCQ AX
	CMPQ AX, CX
	JL   dploop
dpdone:
	VMOVUPD Y4, (DX)
	VMOVUPD Y5, 32(DX)
	VZEROUPPER
	RET

// One layer-norm output row: out[j] = ((x[j]-m)*inv)*gain[j] + bias[j]
// — the exact scalar operation sequence (separate subtract and two
// multiplies, never an FMA), four lanes at a time, so the result is
// bit-identical to the Go loop. len(x) a positive multiple of 4; the
// caller handles tails.
// func normRowAVX(x, gain, bias, out []float64, m, inv float64)
TEXT ·normRowAVX(SB), NOSPLIT, $0-112
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX
	MOVQ gain_base+24(FP), R8
	MOVQ bias_base+48(FP), R9
	MOVQ out_base+72(FP), DX
	VBROADCASTSD m+96(FP), Y8
	VBROADCASTSD inv+104(FP), Y9
	XORQ AX, AX
nrloop:
	VMOVUPD (SI)(AX*8), Y0
	VSUBPD  Y8, Y0, Y0            // x - m
	VMULPD  Y9, Y0, Y0            // * inv
	VMULPD  (R8)(AX*8), Y0, Y0    // * gain
	VADDPD  (R9)(AX*8), Y0, Y0    // + bias
	VMOVUPD Y0, (DX)(AX*8)
	ADDQ $4, AX
	CMPQ AX, CX
	JL   nrloop
	VZEROUPPER
	RET
