package mat

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestSumMean(t *testing.T) {
	cases := []struct {
		in        []float64
		sum, mean float64
	}{
		{nil, 0, math.NaN()},
		{[]float64{}, 0, math.NaN()},
		{[]float64{5}, 5, 5},
		{[]float64{1, 2, 3, 4}, 10, 2.5},
		{[]float64{-1, 1}, 0, 0},
	}
	for _, c := range cases {
		if got := Sum(c.in); !almostEq(got, c.sum, 1e-12) {
			t.Errorf("Sum(%v) = %v, want %v", c.in, got, c.sum)
		}
		if got := Mean(c.in); !almostEq(got, c.mean, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.mean)
		}
	}
}

func TestVarianceStd(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(x); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := Std(x); !almostEq(got, 2, 1e-12) {
		t.Errorf("Std = %v, want 2", got)
	}
	if got := SampleVariance(x); !almostEq(got, 32.0/7.0, 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", got, 32.0/7.0)
	}
	if !math.IsNaN(Variance(nil)) {
		t.Error("Variance(nil) should be NaN")
	}
	if !math.IsNaN(SampleVariance([]float64{1})) {
		t.Error("SampleVariance of singleton should be NaN")
	}
	if got := Variance([]float64{3, 3, 3}); got != 0 {
		t.Errorf("Variance of constant = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", min, max)
	}
	min, max = MinMax(nil)
	if !math.IsNaN(min) || !math.IsNaN(max) {
		t.Error("MinMax(nil) should be (NaN, NaN)")
	}
	min, max = MinMax([]float64{4})
	if min != 4 || max != 4 {
		t.Errorf("MinMax singleton = (%v, %v), want (4, 4)", min, max)
	}
}

func TestMedianQuantile(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median even = %v, want 2.5", got)
	}
	x := []float64{1, 2, 3, 4, 5}
	if got := Quantile(x, 0); got != 1 {
		t.Errorf("Q0 = %v, want 1", got)
	}
	if got := Quantile(x, 1); got != 5 {
		t.Errorf("Q1 = %v, want 5", got)
	}
	if got := Quantile(x, 0.25); got != 2 {
		t.Errorf("Q.25 = %v, want 2", got)
	}
	// NumPy: quantile([1,2,3,4], 0.9) == 3.7
	if got := Quantile([]float64{1, 2, 3, 4}, 0.9); !almostEq(got, 3.7, 1e-12) {
		t.Errorf("Q.9 = %v, want 3.7", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
	if !math.IsNaN(Quantile(x, -0.1)) || !math.IsNaN(Quantile(x, 1.1)) {
		t.Error("Quantile outside [0,1] should be NaN")
	}
	// Quantile must not mutate its input.
	orig := []float64{9, 1, 5}
	Quantile(orig, 0.5)
	if orig[0] != 9 || orig[1] != 1 || orig[2] != 5 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileAgainstSortLargeInput(t *testing.T) {
	// Exercise the merge-sort path (len > 64) against the stdlib sort.
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 501)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	sorted := Clone(x)
	sort.Float64s(sorted)
	if got := Quantile(x, 0); got != sorted[0] {
		t.Errorf("Q0 = %v, want %v", got, sorted[0])
	}
	if got := Quantile(x, 1); got != sorted[len(sorted)-1] {
		t.Errorf("Q1 = %v, want %v", got, sorted[len(sorted)-1])
	}
	if got := Quantile(x, 0.5); got != sorted[250] {
		t.Errorf("Q.5 = %v, want %v", got, sorted[250])
	}
}

func TestZScores(t *testing.T) {
	z := ZScores([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(z[0], -1.5, 1e-12) {
		t.Errorf("z[0] = %v, want -1.5", z[0])
	}
	if !almostEq(Mean(z), 0, 1e-12) {
		t.Errorf("mean of z-scores = %v, want 0", Mean(z))
	}
	z = ZScores([]float64{5, 5, 5})
	for _, v := range z {
		if v != 0 {
			t.Errorf("z-scores of constant input should be 0, got %v", z)
		}
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil || !almostEq(r, 1, 1e-12) {
		t.Errorf("perfect positive: r=%v err=%v", r, err)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(x, yneg)
	if !almostEq(r, -1, 1e-12) {
		t.Errorf("perfect negative: r=%v", r)
	}
	// Hand-computed: x=[1,2,3], y=[1,3,2] => r = 0.5
	r, _ = Pearson([]float64{1, 2, 3}, []float64{1, 3, 2})
	if !almostEq(r, 0.5, 1e-12) {
		t.Errorf("r = %v, want 0.5", r)
	}
	// Constant signal => defined as 0.
	r, err = Pearson(x, []float64{7, 7, 7, 7, 7})
	if err != nil || r != 0 {
		t.Errorf("constant signal: r=%v err=%v", r, err)
	}
	if _, err := Pearson(x, []float64{1}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := Pearson(nil, nil); err == nil {
		t.Error("empty inputs should error")
	}
}

func TestPearsonPropertyBounded(t *testing.T) {
	f := func(a, b [8]float64) bool {
		// Map quick's unbounded values into a finite range so the
		// moment sums cannot overflow to ±Inf.
		x := make([]float64, len(a))
		y := make([]float64, len(b))
		for i := range a {
			x[i] = math.Remainder(a[i], 1e6)
			y[i] = math.Remainder(b[i], 1e6)
			if math.IsNaN(x[i]) {
				x[i] = 0
			}
			if math.IsNaN(y[i]) {
				y[i] = 0
			}
		}
		r, err := Pearson(x, y)
		if err != nil {
			return false
		}
		return r >= -1 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearsonPropertySymmetricAndScaleInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		rxy, _ := Pearson(x, y)
		ryx, _ := Pearson(y, x)
		if !almostEq(rxy, ryx, 1e-12) {
			t.Fatalf("Pearson not symmetric: %v vs %v", rxy, ryx)
		}
		// Positive affine transform must not change r.
		x2 := make([]float64, n)
		for i := range x {
			x2[i] = 3.5*x[i] + 100
		}
		r2, _ := Pearson(x2, y)
		if !almostEq(rxy, r2, 1e-9) {
			t.Fatalf("Pearson not scale invariant: %v vs %v", rxy, r2)
		}
	}
}

func TestDistances(t *testing.T) {
	x := []float64{0, 0}
	y := []float64{3, 4}
	if d, _ := Euclidean(x, y); !almostEq(d, 5, 1e-12) {
		t.Errorf("Euclidean = %v, want 5", d)
	}
	if d, _ := SquaredEuclidean(x, y); !almostEq(d, 25, 1e-12) {
		t.Errorf("SquaredEuclidean = %v, want 25", d)
	}
	if d, _ := Manhattan(x, y); !almostEq(d, 7, 1e-12) {
		t.Errorf("Manhattan = %v, want 7", d)
	}
	if d, _ := Chebyshev(x, y); !almostEq(d, 4, 1e-12) {
		t.Errorf("Chebyshev = %v, want 4", d)
	}
	if _, err := Euclidean(x, []float64{1}); err == nil {
		t.Error("mismatched Euclidean should error")
	}
	if _, err := Manhattan(x, []float64{1}); err == nil {
		t.Error("mismatched Manhattan should error")
	}
	if _, err := Chebyshev(x, []float64{1}); err == nil {
		t.Error("mismatched Chebyshev should error")
	}
	if _, err := SquaredEuclidean(x, []float64{1}); err == nil {
		t.Error("mismatched SquaredEuclidean should error")
	}
}

func TestDistancePropertiesTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		}
		dab, _ := Euclidean(a, b)
		dbc, _ := Euclidean(b, c)
		dac, _ := Euclidean(a, c)
		if dac > dab+dbc+1e-9 {
			t.Fatalf("triangle inequality violated: %v > %v + %v", dac, dab, dbc)
		}
		dba, _ := Euclidean(b, a)
		if !almostEq(dab, dba, 1e-12) {
			t.Fatalf("Euclidean not symmetric")
		}
	}
}

func TestDotNorm(t *testing.T) {
	d, err := Dot([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil || d != 32 {
		t.Errorf("Dot = %v err=%v, want 32", d, err)
	}
	if _, err := Dot([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched Dot should error")
	}
	if n := Norm([]float64{3, 4}); !almostEq(n, 5, 1e-12) {
		t.Errorf("Norm = %v, want 5", n)
	}
}

func TestScaleAddToClone(t *testing.T) {
	x := []float64{1, 2}
	Scale(x, 2)
	if x[0] != 2 || x[1] != 4 {
		t.Errorf("Scale: %v", x)
	}
	if _, err := AddTo(x, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 5 {
		t.Errorf("AddTo: %v", x)
	}
	if _, err := AddTo(x, []float64{1}); err == nil {
		t.Error("mismatched AddTo should error")
	}
	c := Clone(x)
	c[0] = 99
	if x[0] == 99 {
		t.Error("Clone did not copy")
	}
}

func TestHasNaNClamp(t *testing.T) {
	if HasNaN([]float64{1, 2}) {
		t.Error("no NaN expected")
	}
	if !HasNaN([]float64{1, math.NaN()}) {
		t.Error("NaN expected")
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp wrong")
	}
}
