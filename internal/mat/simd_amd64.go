package mat

// SIMD dispatch for the fit-path kernels on amd64.
//
// The assembly kernels in simd_amd64.s come in two bit-exactness
// classes, mirroring the package's determinism contract:
//
//   - axpyAVX, adamAVX, normRowAVX and distPackAVX are elementwise (or
//     per-lane in-order, for the distance kernel): each output element
//     is produced by exactly the scalar sequence of IEEE-754 operations
//     (separate multiply and add — never a fused multiply-add), just on
//     four lanes at a time. distPackAVX vectorises ACROSS points — one
//     lane per point, each lane's reduction running in element order —
//     which is how a sum that may not be reassociated still gets SIMD
//     throughput. Their results are bit-identical to the pure Go loops,
//     so AddScaled, AdamStep, NormRow and SquaredDistances8 stay inside
//     the bit-exact contract even when vectorised.
//   - dotFMA keeps four vector accumulators and uses VFMADD231PD, so it
//     reassociates and changes rounding. It only ever backs
//     DotUnrolled4, which already documents reassociation.
//
// Feature detection is done once at init via CPUID/XGETBV (AVX needs
// both the CPU flag and OS-enabled YMM state). GOAMD64=v1 binaries
// therefore still run on any amd64 and light up the fast kernels only
// where the hardware has them.

// Implemented in simd_amd64.s.
func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// axpyAVX computes y[i] += alpha*x[i] for len(x) elements. len(x) must
// be a positive multiple of 8; the caller handles tails.
func axpyAVX(alpha float64, x, y []float64)

// dotFMA returns the FMA-reassociated inner product of x and y. len(x)
// must be a positive multiple of 16; the caller handles tails.
func dotFMA(x, y []float64) float64

// adamAVX applies the Adam update to 4k elements (len(w) must be a
// positive multiple of 4; the caller handles tails). The per-element
// operation sequence matches adamScalar exactly.
func adamAVX(w, g, m, v []float64, b1, omb1, b2, omb2, bc1, bc2, lr, eps float64)

// linBwdFMA fuses the dense-layer weight-gradient axpy and the
// input-gradient dots into one pass over W. len(g) must be a positive
// multiple of 8. Reassociates the dots (FMA): fast-dots callers only.
func linBwdFMA(x, g, w, wg, dx []float64)

// linFwdAVX computes out = b + x·W in one call, bit-identical to the
// scalar loop (including its zero-input skip). len(out) must be a
// positive multiple of 8. The output is strip-mined through YMM
// accumulators, so the k loop performs no out-row loads or stores.
func linFwdAVX(x, b, w, out []float64)

// distPackAVX computes the 8 squared Euclidean distances from q to one
// dim-major packed block. Per lane the accumulation runs in j-order
// with separate sub/mul/add, so each lane is bit-identical to a scalar
// SquaredEuclidean. len(block) = len(q)*8, len(out) = 8; len(q) may be
// 0 (out is zeroed). noescape: callers pass stack scratch from the
// query hot paths, which must stay alloc-free.
//
//go:noescape
func distPackAVX(q, block, out []float64)

// normRowAVX computes out[j] = ((x[j]-m)*inv)*gain[j] + bias[j] with
// the exact scalar operation sequence per lane (bit-identical). len(x)
// must be a positive multiple of 4; the caller handles tails.
//
//go:noescape
func normRowAVX(x, gain, bias, out []float64, m, inv float64)

var (
	hasAVX bool // VMULPD/VADDPD/VDIVPD/VSQRTPD kernels usable
	hasFMA bool // VFMADD231PD dot kernel usable
)

func init() {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 1 {
		return
	}
	_, _, ecx, _ := cpuidex(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx&osxsaveBit == 0 || ecx&avxBit == 0 {
		return
	}
	// XCR0 bits 1 (SSE) and 2 (YMM) must both be OS-enabled.
	xlo, _ := xgetbv0()
	if xlo&6 != 6 {
		return
	}
	hasAVX = true
	hasFMA = ecx&fmaBit != 0
}

// simdMode reports the kernel classes in use, for bench metadata.
func simdMode() string {
	switch {
	case hasAVX && hasFMA:
		return "avx+fma"
	case hasAVX:
		return "avx"
	default:
		return "scalar"
	}
}
