package mat

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// matMulNaive is the reference: per-output-element accumulation in
// k-order, the same order the kernels contract to preserve.
func matMulNaive(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMatMulBitIdenticalToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 4}, {8, 12, 24}, {64, 17, 33}, {130, 9, 7}} {
		a := randMatrix(rng, dims[0], dims[1])
		b := randMatrix(rng, dims[1], dims[2])
		want := matMulNaive(a, b)
		got := MatMul(NewMatrix(0, 0), a, b)
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("dims %v: got %dx%d", dims, got.Rows, got.Cols)
		}
		for i := range want.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
				t.Fatalf("dims %v: element %d: got %v want %v (not bit-identical)", dims, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatMulParallelBitIdentical(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prevProcs)
	prevFlops := MatMulParallelFlops()
	SetMatMulParallelFlops(0) // force the parallel path
	defer SetMatMulParallelFlops(prevFlops)

	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 257, 31)
	b := randMatrix(rng, 31, 19)
	want := matMulNaive(a, b)
	got := MatMul(NewMatrix(0, 0), a, b)
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("parallel MatMul diverges from serial at element %d", i)
		}
	}
}

func TestMatMulReusesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 6, 4)
	b := randMatrix(rng, 4, 5)
	dst := NewMatrix(10, 10) // larger than needed: must shrink in place
	backing := &dst.Data[0]
	MatMul(dst, a, b)
	if dst.Rows != 6 || dst.Cols != 5 {
		t.Fatalf("dst not reshaped: %dx%d", dst.Rows, dst.Cols)
	}
	if &dst.Data[0] != backing {
		t.Fatal("dst reallocated despite sufficient capacity")
	}
	allocs := testing.AllocsPerRun(100, func() { MatMul(dst, a, b) })
	if allocs != 0 {
		t.Fatalf("MatMul into warm dst allocates %v times", allocs)
	}
}

func TestMatMulTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMatrix(rng, 7, 13)
	b := randMatrix(rng, 9, 13) // b is c×k: dst = a·bᵀ is 7×9
	got := MatMulT(NewMatrix(0, 0), a, b)
	for i := 0; i < 7; i++ {
		for j := 0; j < 9; j++ {
			var want float64
			for k := 0; k < 13; k++ {
				want += a.At(i, k) * b.At(j, k)
			}
			if d := math.Abs(got.At(i, j) - want); d > 1e-12 {
				t.Fatalf("(%d,%d): got %v want %v", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestAddScaledBitIdenticalToScalarLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 3, 4, 7, 8, 33} {
		x := make([]float64, n)
		dst := make([]float64, n)
		want := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = rng.NormFloat64()
			dst[i] = rng.NormFloat64()
			want[i] = dst[i]
		}
		alpha := rng.NormFloat64()
		for i := range want {
			want[i] += alpha * x[i]
		}
		AddScaled(dst, alpha, x)
		for i := range want {
			if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
				t.Fatalf("n=%d element %d: got %v want %v", n, i, dst[i], want[i])
			}
		}
	}
}

func TestDotUnrolled4MatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 8, 9, 100} {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		want, err := Dot(x, y)
		if err != nil {
			t.Fatal(err)
		}
		got := DotUnrolled4(x, y)
		scale := math.Abs(want)
		if scale < 1 {
			scale = 1
		}
		if math.Abs(got-want) > 1e-12*scale {
			t.Fatalf("n=%d: got %v want %v", n, got, want)
		}
	}
}

func TestKernelPanicsOnMismatch(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic on dimension mismatch", name)
			}
		}()
		fn()
	}
	expectPanic("AddScaled", func() { AddScaled(make([]float64, 3), 1, make([]float64, 4)) })
	expectPanic("DotUnrolled4", func() { DotUnrolled4(make([]float64, 3), make([]float64, 4)) })
	expectPanic("MatMul", func() { MatMul(NewMatrix(0, 0), NewMatrix(2, 3), NewMatrix(4, 2)) })
	expectPanic("MatMulT", func() { MatMulT(NewMatrix(0, 0), NewMatrix(2, 3), NewMatrix(2, 4)) })
	expectPanic("ColInto", func() { NewMatrix(3, 2).ColInto(make([]float64, 2), 0) })
	a := NewMatrix(2, 2)
	expectPanic("MatMul alias", func() { MatMul(a, a, NewMatrix(2, 2)) })
}

func TestColIntoMatchesColZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randMatrix(rng, 17, 5)
	dst := make([]float64, m.Rows)
	for j := 0; j < m.Cols; j++ {
		want := m.Col(j)
		got := m.ColInto(dst, j)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("col %d row %d: got %v want %v", j, i, got[i], want[i])
			}
		}
	}
	allocs := testing.AllocsPerRun(100, func() { m.ColInto(dst, 3) })
	if allocs != 0 {
		t.Fatalf("ColInto allocates %v times per call", allocs)
	}
}

func TestEnsureShapeAndZero(t *testing.T) {
	m := NewMatrix(4, 4)
	backing := &m.Data[0]
	m.EnsureShape(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("EnsureShape shrink: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	if &m.Data[0] != backing {
		t.Fatal("EnsureShape reallocated a sufficient backing slice")
	}
	m.EnsureShape(5, 5)
	if len(m.Data) != 25 {
		t.Fatalf("EnsureShape grow: len %d", len(m.Data))
	}
	m.Data[7] = 42
	m.Zero()
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Zero left element %d = %v", i, v)
		}
	}
}

func TestTransposeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randMatrix(rng, 5, 3)
	tr := m.TransposeInto(NewMatrix(0, 0))
	if tr.Rows != 3 || tr.Cols != 5 {
		t.Fatalf("transpose dims %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("(%d,%d) mismatch", i, j)
			}
		}
	}
}

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randMatrix(rng, 64, 64)
	y := randMatrix(rng, 64, 64)
	dst := NewMatrix(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, x, y)
	}
}

func BenchmarkDotUnrolled4(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x := make([]float64, 1024)
	y := make([]float64, 1024)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkFloat = DotUnrolled4(x, y)
	}
}

func BenchmarkColInto(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	m := randMatrix(rng, 512, 16)
	dst := make([]float64, m.Rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ColInto(dst, i%m.Cols)
	}
}

var sinkFloat float64
