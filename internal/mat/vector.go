// Package mat provides the small dense linear-algebra and descriptive
// statistics kernel used throughout the PdM library: vectors, matrices,
// moments, quantiles, Pearson correlation and distance functions.
//
// The package is deliberately minimal — it implements exactly what the
// detection framework needs — but every routine is defined for the edge
// cases that show up in streaming sensor data (empty input, constant
// signals, NaN propagation).
package mat

import (
	"errors"
	"math"
)

// ErrDimension is returned when two operands have incompatible sizes.
var ErrDimension = errors.New("mat: dimension mismatch")

// Sum returns the sum of the elements of x. An empty slice sums to 0.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x, or NaN for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	return Sum(x) / float64(len(x))
}

// Variance returns the population variance of x (dividing by n), or NaN
// for an empty slice. The detection thresholds in the paper use the
// population form; see SampleVariance for the n-1 form.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	m := Mean(x)
	var ss float64
	for _, v := range x {
		d := v - m
		ss += d * d
	}
	return ss / float64(len(x))
}

// SampleVariance returns the unbiased sample variance of x (dividing by
// n-1), or NaN when len(x) < 2.
func SampleVariance(x []float64) float64 {
	if len(x) < 2 {
		return math.NaN()
	}
	m := Mean(x)
	var ss float64
	for _, v := range x {
		d := v - m
		ss += d * d
	}
	return ss / float64(len(x)-1)
}

// Std returns the population standard deviation of x.
func Std(x []float64) float64 {
	return math.Sqrt(Variance(x))
}

// SampleStd returns the sample standard deviation of x.
func SampleStd(x []float64) float64 {
	return math.Sqrt(SampleVariance(x))
}

// MinMax returns the minimum and maximum of x. It returns (NaN, NaN) for
// an empty slice.
func MinMax(x []float64) (min, max float64) {
	if len(x) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = x[0], x[0]
	for _, v := range x[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Median returns the median of x without modifying it, or NaN for an
// empty slice.
func Median(x []float64) float64 {
	return Quantile(x, 0.5)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of x using linear
// interpolation between order statistics, matching NumPy's default
// behaviour. It copies x and returns NaN for an empty slice or q outside
// [0, 1].
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	c := make([]float64, len(x))
	copy(c, x)
	insertionSort(c)
	pos := q * float64(len(c)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c[lo]
	}
	frac := pos - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// insertionSort sorts small slices in place; for larger inputs it falls
// back to a bottom-up merge to keep worst-case behaviour O(n log n).
func insertionSort(x []float64) {
	if len(x) > 64 {
		mergeSort(x)
		return
	}
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}

func mergeSort(x []float64) {
	buf := make([]float64, len(x))
	for width := 1; width < len(x); width *= 2 {
		for lo := 0; lo < len(x); lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > len(x) {
				mid = len(x)
			}
			if hi > len(x) {
				hi = len(x)
			}
			merge(x[lo:mid], x[mid:hi], buf[lo:hi])
			copy(x[lo:hi], buf[lo:hi])
		}
	}
}

func merge(a, b, out []float64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	for i < len(a) {
		out[k] = a[i]
		i++
		k++
	}
	for j < len(b) {
		out[k] = b[j]
		j++
		k++
	}
}

// ZScores returns (x - mean) / std for every element. When the standard
// deviation is zero the z-scores are all zero, mirroring the behaviour of
// conformal detectors on constant reference data.
func ZScores(x []float64) []float64 {
	out := make([]float64, len(x))
	m := Mean(x)
	s := Std(x)
	if s == 0 || math.IsNaN(s) {
		return out
	}
	for i, v := range x {
		out[i] = (v - m) / s
	}
	return out
}

// Pearson returns the Pearson correlation coefficient between x and y.
// When either signal is constant over the window the correlation is
// undefined; this implementation returns 0 in that case, which the
// correlation transform documents as "no linear relationship observable".
// It returns an error when the slices differ in length or are empty.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrDimension
	}
	if len(x) == 0 {
		return 0, errors.New("mat: Pearson of empty slices")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Clamp tiny floating-point excursions outside [-1, 1].
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r, nil
}

// Euclidean returns the L2 distance between x and y.
func Euclidean(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrDimension
	}
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}

// SquaredEuclidean returns the squared L2 distance between x and y. It is
// the hot inner loop of the neighbour searches, so it avoids the sqrt.
func SquaredEuclidean(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrDimension
	}
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s, nil
}

// Manhattan returns the L1 distance between x and y.
func Manhattan(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrDimension
	}
	var s float64
	for i := range x {
		s += math.Abs(x[i] - y[i])
	}
	return s, nil
}

// Chebyshev returns the L∞ distance between x and y.
func Chebyshev(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrDimension
	}
	var s float64
	for i := range x {
		d := math.Abs(x[i] - y[i])
		if d > s {
			s = d
		}
	}
	return s, nil
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrDimension
	}
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s, nil
}

// Norm returns the L2 norm of x.
func Norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Scale multiplies every element of x by a in place and returns x.
func Scale(x []float64, a float64) []float64 {
	for i := range x {
		x[i] *= a
	}
	return x
}

// AddTo adds y to x element-wise in place and returns x.
func AddTo(x, y []float64) ([]float64, error) {
	if len(x) != len(y) {
		return nil, ErrDimension
	}
	for i := range x {
		x[i] += y[i]
	}
	return x, nil
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}

// HasNaN reports whether any element of x is NaN.
func HasNaN(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
