package mat

import (
	"math"
	"testing"
)

func TestNewMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMatrix with negative dims should panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestFromRowsAndAccess(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("dims = %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 1) != 4 {
		t.Errorf("At(1,1) = %v", m.At(1, 1))
	}
	m.Set(1, 1, 40)
	if m.At(1, 1) != 40 {
		t.Errorf("Set failed")
	}
	if r := m.Row(2); r[0] != 5 || r[1] != 6 {
		t.Errorf("Row(2) = %v", r)
	}
	if c := m.Col(0); c[0] != 1 || c[1] != 3 || c[2] != 5 {
		t.Errorf("Col(0) = %v", c)
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows should error")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Error("FromRows(nil) should give empty matrix")
	}
}

func TestCloneIndependence(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Error("Clone shares storage")
	}
}

func TestColMeansStds(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 10}, {3, 10}})
	means := m.ColMeans()
	if means[0] != 2 || means[1] != 10 {
		t.Errorf("ColMeans = %v", means)
	}
	stds := m.ColStds()
	if stds[0] != 1 || stds[1] != 0 {
		t.Errorf("ColStds = %v", stds)
	}
	e := NewMatrix(0, 2)
	for _, v := range e.ColMeans() {
		if !math.IsNaN(v) {
			t.Error("empty ColMeans should be NaN")
		}
	}
	for _, v := range e.ColStds() {
		if !math.IsNaN(v) {
			t.Error("empty ColStds should be NaN")
		}
	}
}

func TestCorrelationMatrix(t *testing.T) {
	// col0 and col1 perfectly correlated, col2 anti-correlated with col0.
	m, _ := FromRows([][]float64{
		{1, 2, 3},
		{2, 4, 2},
		{3, 6, 1},
	})
	cm, err := m.CorrelationMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if cm.Rows != 3 || cm.Cols != 3 {
		t.Fatalf("dims %dx%d", cm.Rows, cm.Cols)
	}
	for i := 0; i < 3; i++ {
		if cm.At(i, i) != 1 {
			t.Errorf("diag[%d] = %v", i, cm.At(i, i))
		}
	}
	if !almostEq(cm.At(0, 1), 1, 1e-12) {
		t.Errorf("r(0,1) = %v, want 1", cm.At(0, 1))
	}
	if !almostEq(cm.At(0, 2), -1, 1e-12) {
		t.Errorf("r(0,2) = %v, want -1", cm.At(0, 2))
	}
	if cm.At(1, 2) != cm.At(2, 1) {
		t.Error("correlation matrix not symmetric")
	}
}

func TestUpperTriangle(t *testing.T) {
	m, _ := FromRows([][]float64{
		{1, 2, 3},
		{2, 1, 4},
		{3, 4, 1},
	})
	ut, err := m.UpperTriangle()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4}
	if len(ut) != 3 {
		t.Fatalf("len = %d", len(ut))
	}
	for i := range want {
		if ut[i] != want[i] {
			t.Errorf("ut[%d] = %v, want %v", i, ut[i], want[i])
		}
	}
	rect, _ := FromRows([][]float64{{1, 2, 3}})
	if _, err := rect.UpperTriangle(); err == nil {
		t.Error("UpperTriangle of non-square should error")
	}
	// n features => n*(n-1)/2 entries
	big := NewMatrix(6, 6)
	ut, _ = big.UpperTriangle()
	if len(ut) != 15 {
		t.Errorf("6x6 upper triangle has %d entries, want 15", len(ut))
	}
}

func TestStandardize(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 5}, {3, 5}})
	s, means, stds := m.Standardize()
	if means[0] != 2 || stds[0] != 1 {
		t.Errorf("means=%v stds=%v", means, stds)
	}
	if s.At(0, 0) != -1 || s.At(1, 0) != 1 {
		t.Errorf("standardized col0 = %v, %v", s.At(0, 0), s.At(1, 0))
	}
	// Constant column: centred, not scaled.
	if s.At(0, 1) != 0 || s.At(1, 1) != 0 {
		t.Errorf("constant col should centre to 0: %v %v", s.At(0, 1), s.At(1, 1))
	}
	// Original untouched.
	if m.At(0, 0) != 1 {
		t.Error("Standardize mutated input")
	}
	x, err := ApplyStandardization([]float64{5, 5}, means, stds)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 0 {
		t.Errorf("ApplyStandardization = %v", x)
	}
	if _, err := ApplyStandardization([]float64{1}, means, stds); err == nil {
		t.Error("mismatched ApplyStandardization should error")
	}
}
