package mat

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Dense fit-path kernels.
//
// These are the building blocks the neural fit path (internal/nn) is
// written against. Two properties matter as much as speed:
//
//   - Determinism: MatMul and AddScaled accumulate each output element
//     strictly in k-order (the reduction index), so they are bit-identical
//     to the scalar triple loops they replace. Parallelism only splits
//     the *row* dimension, whose outputs are independent, so a parallel
//     MatMul produces the same bits as a serial one.
//   - Zero allocation: every kernel writes into a caller-owned dst. The
//     only allocations are inside EnsureShape when a scratch matrix has
//     to grow, which happens once per layer lifetime.
//
// DotUnrolled4 is the exception to the determinism rule: it keeps four
// accumulators and therefore reassociates the reduction. It is for
// consumers without a bit-exactness contract (diagnostics, benchmarks),
// and MatMulT documents which variant it uses.

// matMulParallelFlops is the flop count (rows·cols·inner) above which
// MatMul fans row blocks out across GOMAXPROCS goroutines. Below it the
// goroutine handoff costs more than the arithmetic. The default is sized
// so the tiny per-window matmuls of a TranAD fit (8×12 · 12×24) stay
// serial while profile-sized products go wide on multicore hardware.
var matMulParallelFlops = 1 << 16

// matMulBlockRows is the row-block granule of the parallel path.
const matMulBlockRows = 32

// SetMatMulParallelFlops overrides the parallel threshold (rows·cols·
// inner flops). It exists for tests and benchmarks; n <= 0 forces every
// product onto the parallel path.
func SetMatMulParallelFlops(n int) { matMulParallelFlops = n }

// MatMulParallelFlops returns the current parallel threshold.
func MatMulParallelFlops() int { return matMulParallelFlops }

// EnsureShape reshapes m to r×c, reusing the backing slice when it is
// large enough and reallocating (once) when it is not. Contents are NOT
// zeroed; callers that accumulate must zero explicitly. It returns m.
func (m *Matrix) EnsureShape(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: EnsureShape(%d, %d): negative dimension", r, c))
	}
	n := r * c
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = r, c
	return m
}

// Zero sets every element of m to 0 and returns m.
func (m *Matrix) Zero() *Matrix {
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// AddScaled computes dst[i] += alpha*x[i] (the BLAS axpy). Elements are
// independent, so both the four-wide unrolled Go loop and the AVX kernel
// (separate VMULPD/VADDPD per lane, never an FMA) produce bits identical
// to the scalar loop. It panics on length mismatch — the kernels are
// internal plumbing, so a mismatch is a programming error.
func AddScaled(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("mat: AddScaled: len(dst)=%d len(x)=%d", len(dst), len(x)))
	}
	i := 0
	if hasAVX && len(dst) >= 8 {
		n := len(dst) &^ 7
		axpyAVX(alpha, x[:n], dst[:n])
		i = n
	}
	n := i + (len(dst)-i)&^3
	for ; i < n; i += 4 {
		dst[i] += alpha * x[i]
		dst[i+1] += alpha * x[i+1]
		dst[i+2] += alpha * x[i+2]
		dst[i+3] += alpha * x[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] += alpha * x[i]
	}
}

// DotUnrolled4 returns the inner product of x and y using four
// accumulators. It is ~2-3× faster than Dot on long vectors but
// reassociates the sum, so its result may differ from Dot in the last
// ulps — use it only where bit-exactness against the serial reduction is
// not contracted. It panics on length mismatch.
func DotUnrolled4(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: DotUnrolled4: len(x)=%d len(y)=%d", len(x), len(y)))
	}
	i := 0
	var s float64
	if hasFMA && len(x) >= 16 {
		n := len(x) &^ 15
		s = dotFMA(x[:n], y[:n])
		i = n
	}
	var s0, s1, s2, s3 float64
	n := i + (len(x)-i)&^3
	for ; i < n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s += (s0 + s1) + (s2 + s3)
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// AdamStep applies one Adam optimiser update in place:
//
//	m = β1·m + (1-β1)·g
//	v = β2·v + (1-β2)·g²
//	w -= lr · (m/bc1) / (sqrt(v/bc2) + eps)
//
// where bc1/bc2 are the bias-correction denominators 1-β1ᵗ and 1-β2ᵗ.
// Gradients are NOT cleared — callers zero them separately. The update
// is elementwise, and the AVX kernel replays the scalar operation
// sequence with correctly-rounded vector ops, so SIMD and scalar
// produce identical bits. Panics on length mismatch.
func AdamStep(w, g, m, v []float64, beta1, beta2, bc1, bc2, lr, eps float64) {
	if len(g) != len(w) || len(m) != len(w) || len(v) != len(w) {
		panic(fmt.Sprintf("mat: AdamStep: len(w)=%d len(g)=%d len(m)=%d len(v)=%d",
			len(w), len(g), len(m), len(v)))
	}
	omb1, omb2 := 1-beta1, 1-beta2
	i := 0
	if hasAVX && len(w) >= 4 {
		n := len(w) &^ 3
		adamAVX(w[:n], g[:n], m[:n], v[:n], beta1, omb1, beta2, omb2, bc1, bc2, lr, eps)
		i = n
	}
	for ; i < len(w); i++ {
		gj := g[i]
		m[i] = beta1*m[i] + omb1*gj
		v[i] = beta2*v[i] + omb2*gj*gj
		mh := m[i] / bc1
		vh := v[i] / bc2
		w[i] -= lr * mh / (math.Sqrt(vh) + eps)
	}
}

// LinBwdFast is the fused dense-layer backward row update. For each
// k < len(x) it accumulates the weight gradient and computes the input
// gradient in a single pass over W:
//
//	wg[k·out:(k+1)·out] += x[k]·g   (elementwise — bit-exact lanes)
//	dx[k] = Σ_j g[j]·w[k·out+j]     (reassociated reduction)
//
// where out = len(g). The dots reassociate (FMA where available), so
// this kernel is for fast-dots consumers only — the bit-exact path
// keeps its in-order scalar reduction. Panics on length mismatch.
func LinBwdFast(x, g, w, wg, dx []float64) {
	in, out := len(x), len(g)
	if len(dx) != in || len(w) != in*out || len(wg) != in*out {
		panic(fmt.Sprintf("mat: LinBwdFast: len(x)=%d len(g)=%d len(w)=%d len(wg)=%d len(dx)=%d",
			in, out, len(w), len(wg), len(dx)))
	}
	if hasFMA && in > 0 && out >= 8 && out&7 == 0 {
		linBwdFMA(x, g, w, wg, dx)
		return
	}
	for k := 0; k < in; k++ {
		AddScaled(wg[k*out:(k+1)*out], x[k], g)
		dx[k] = DotUnrolled4(g, w[k*out:(k+1)*out])
	}
}

// LinFwd computes one dense-layer forward row, out = b + x·W (W is
// len(x)×len(out) row-major), skipping exact-zero inputs the way the
// scalar loop does (post-ReLU rows are sparse). Both the AVX kernel and
// the Go fallback produce bits identical to the scalar loop. Panics on
// length mismatch.
func LinFwd(x, b, w, out []float64) {
	in, width := len(x), len(out)
	if len(b) != width || len(w) != in*width {
		panic(fmt.Sprintf("mat: LinFwd: len(x)=%d len(b)=%d len(w)=%d len(out)=%d",
			in, len(b), len(w), width))
	}
	if hasAVX && width >= 8 && width&7 == 0 {
		linFwdAVX(x, b, w, out)
		return
	}
	copy(out, b)
	for k, v := range x {
		if v == 0 {
			continue
		}
		AddScaled(out, v, w[k*width:(k+1)*width])
	}
}

// DistLanes is the point count of one packed distance block: the
// granule at which SquaredDistances8 processes a point set. Consumers
// (the neighbour indexes) pack points dim-major in groups of DistLanes
// and scan the remainder scalar.
const DistLanes = 8

// SquaredDistances8 computes the squared Euclidean distances from q to
// the DistLanes points of one packed block: out[p] = Σ_j (q[j]-P_p[j])²
// where element j of point p lives at block[j*DistLanes+p] (dim-major
// packing). Every lane accumulates its own point's sum in j-order with
// separate subtract/multiply/add — the exact SquaredEuclidean scalar
// sequence — so each distance is bit-identical to a per-point scalar
// call at every dispatch level. The kernel vectorises across points
// instead of within one, which is the only way to give an
// unreassociable in-order reduction SIMD throughput. len(q) may be 0
// (all distances are 0). Panics on length mismatch.
func SquaredDistances8(q, block, out []float64) {
	dim := len(q)
	if len(block) != dim*DistLanes || len(out) != DistLanes {
		panic(fmt.Sprintf("mat: SquaredDistances8: len(q)=%d len(block)=%d len(out)=%d",
			dim, len(block), len(out)))
	}
	if hasAVX {
		distPackAVX(q, block, out)
		return
	}
	for p := range out {
		out[p] = 0
	}
	for j := 0; j < dim; j++ {
		qj := q[j]
		row := block[j*DistLanes : j*DistLanes+DistLanes]
		for p, bv := range row {
			d := qj - bv
			out[p] += d * d
		}
	}
}

// NormRow computes one layer-norm output row,
// out[j] = ((x[j]-m)*inv)*gain[j] + bias[j], with exactly the scalar
// operation sequence per element (separate subtract and multiplies,
// never an FMA), so SIMD and scalar dispatch produce identical bits.
// Panics on length mismatch.
func NormRow(x, gain, bias, out []float64, m, inv float64) {
	n := len(x)
	if len(gain) != n || len(bias) != n || len(out) != n {
		panic(fmt.Sprintf("mat: NormRow: len(x)=%d len(gain)=%d len(bias)=%d len(out)=%d",
			n, len(gain), len(bias), len(out)))
	}
	i := 0
	if hasAVX && n >= 4 {
		k := n &^ 3
		normRowAVX(x[:k], gain[:k], bias[:k], out[:k], m, inv)
		i = k
	}
	for ; i < n; i++ {
		out[i] = (x[i]-m)*inv*gain[i] + bias[i]
	}
}

// SIMDMode reports which vector kernel classes the running CPU enables
// ("avx+fma", "avx" or "scalar"). Recorded in benchmark metadata so
// perf numbers are interpretable across machines.
func SIMDMode() string { return simdMode() }

// MatMul computes dst = a·b (a is r×k, b is k×c) and returns dst, which
// is reshaped to r×c via EnsureShape. dst must not alias a or b.
//
// Each output row accumulates as row += a[i][k]·b.Row(k) in k-order —
// exactly the axpy order of the scalar loops the nn layers used before,
// so results are bit-identical to those loops. Products above the
// package parallel threshold split their rows into blocks across
// GOMAXPROCS goroutines; rows are independent, so the bits don't change.
func MatMul(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MatMul: a is %dx%d, b is %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst == a || dst == b {
		panic("mat: MatMul: dst must not alias an operand")
	}
	dst.EnsureShape(a.Rows, b.Cols)
	if a.Rows*a.Cols*b.Cols < matMulParallelFlops || runtime.GOMAXPROCS(0) == 1 || a.Rows < 2 {
		matMulRows(dst, a, b, 0, a.Rows)
		return dst
	}
	workers := runtime.GOMAXPROCS(0)
	blocks := (a.Rows + matMulBlockRows - 1) / matMulBlockRows
	if workers > blocks {
		workers = blocks
	}
	var next int
	var mu sync.Mutex
	take := func() (int, bool) {
		mu.Lock()
		blk := next
		next++
		mu.Unlock()
		return blk, blk < blocks
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				blk, ok := take()
				if !ok {
					return
				}
				lo := blk * matMulBlockRows
				hi := lo + matMulBlockRows
				if hi > a.Rows {
					hi = a.Rows
				}
				matMulRows(dst, a, b, lo, hi)
			}
		}()
	}
	wg.Wait()
	return dst
}

// matMulRows computes rows [lo, hi) of dst = a·b with k-ordered axpy
// accumulation.
func matMulRows(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		out := dst.Row(i)
		for j := range out {
			out[j] = 0
		}
		arow := a.Row(i)
		for k, v := range arow {
			AddScaled(out, v, b.Row(k))
		}
	}
}

// MatMulT computes dst = a·bᵀ (a is r×k, b is c×k) and returns dst,
// reshaped to r×c. dst must not alias a or b. Each output element is a
// row-row inner product evaluated with DotUnrolled4, so MatMulT inherits
// its reassociation: use it where bit-exactness against a serial
// reduction is not contracted (the in-order alternative is MatMul with an
// explicitly transposed operand).
func MatMulT(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MatMulT: a is %dx%d, b is %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst == a || dst == b {
		panic("mat: MatMulT: dst must not alias an operand")
	}
	dst.EnsureShape(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		out := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			out[j] = DotUnrolled4(arow, b.Row(j))
		}
	}
	return dst
}

// TransposeInto writes mᵀ into dst (reshaped to Cols×Rows) and returns
// dst. dst must not alias m.
func (m *Matrix) TransposeInto(dst *Matrix) *Matrix {
	if dst == m {
		panic("mat: TransposeInto: dst must not alias m")
	}
	dst.EnsureShape(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst.Data[j*m.Rows+i] = v
		}
	}
	return dst
}
