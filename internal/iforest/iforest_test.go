package iforest

import (
	"math"
	"math/rand"
	"testing"
)

func cluster(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	return out
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, Config{}); err != ErrNoData {
		t.Error("empty data should error")
	}
	if _, err := Fit([][]float64{{1, 2}, {3}}, Config{}); err != ErrDimension {
		t.Error("ragged data should error")
	}
}

func TestScoreSeparatesOutliers(t *testing.T) {
	data := cluster(500, 1)
	f, err := Fit(data, Config{Trees: 100})
	if err != nil {
		t.Fatal(err)
	}
	inlier, err := f.Score([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	outlier, err := f.Score([]float64{9, 9})
	if err != nil {
		t.Fatal(err)
	}
	if outlier <= inlier {
		t.Errorf("outlier score %v not above inlier %v", outlier, inlier)
	}
	if outlier < 0.65 {
		t.Errorf("far outlier score = %v, want > 0.65", outlier)
	}
	if inlier > 0.55 {
		t.Errorf("dense inlier score = %v, want < 0.55", inlier)
	}
}

func TestScoreRangeAndDim(t *testing.T) {
	data := cluster(200, 2)
	f, _ := Fit(data, Config{Trees: 50})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		s, err := f.Score([]float64{rng.NormFloat64() * 5, rng.NormFloat64() * 5})
		if err != nil {
			t.Fatal(err)
		}
		if s <= 0 || s >= 1 || math.IsNaN(s) {
			t.Fatalf("score out of (0,1): %v", s)
		}
	}
	if _, err := f.Score([]float64{1}); err != ErrDimension {
		t.Error("dim mismatch should error")
	}
}

func TestDeterminism(t *testing.T) {
	data := cluster(300, 4)
	f1, _ := Fit(data, Config{Seed: 7})
	f2, _ := Fit(data, Config{Seed: 7})
	f3, _ := Fit(data, Config{Seed: 8})
	q := []float64{2, -1}
	s1, _ := f1.Score(q)
	s2, _ := f2.Score(q)
	s3, _ := f3.Score(q)
	if s1 != s2 {
		t.Error("same seed should give identical forests")
	}
	if s1 == s3 {
		t.Error("different seeds should differ")
	}
}

func TestConstantData(t *testing.T) {
	// All-identical points: no split possible; scores must stay sane.
	data := make([][]float64, 50)
	for i := range data {
		data[i] = []float64{3, 3}
	}
	f, err := Fit(data, Config{Trees: 20})
	if err != nil {
		t.Fatal(err)
	}
	s, err := f.Score([]float64{3, 3})
	if err != nil || math.IsNaN(s) || s <= 0 || s >= 1 {
		t.Errorf("constant-data score = %v err=%v", s, err)
	}
}

func TestAvgPathLength(t *testing.T) {
	if avgPathLength(0) != 0 || avgPathLength(1) != 0 {
		t.Error("c(<=1) should be 0")
	}
	if avgPathLength(2) != 1 {
		t.Error("c(2) should be 1")
	}
	// c(n) grows ~ 2 ln(n); monotone.
	prev := 0.0
	for n := 2; n < 1000; n *= 2 {
		c := avgPathLength(n)
		if c <= prev {
			t.Fatalf("c(%d) = %v not increasing", n, c)
		}
		prev = c
	}
	// Reference value: c(256) ≈ 10.244.
	if got := avgPathLength(256); math.Abs(got-10.244) > 0.01 {
		t.Errorf("c(256) = %v, want ≈ 10.244", got)
	}
}

func TestSampleSizeClamp(t *testing.T) {
	data := cluster(20, 5)
	f, err := Fit(data, Config{Trees: 10, SampleSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if f.cfg.SampleSize != 20 {
		t.Errorf("sample size not clamped: %d", f.cfg.SampleSize)
	}
}
