// Package iforest implements Isolation Forest (Liu, Ting & Zhou, ICDM
// 2008) — the unsupervised detector the paper's related-work section
// discusses via Khan et al.'s UAV study, noting that "XGBoost ... is
// expected to behave at least as well as IF". Implementing it makes
// that claim testable inside the same framework.
//
// An isolation forest isolates points by random axis-aligned splits;
// anomalous points are isolated in fewer splits. The anomaly score of x
// is 2^(−E[h(x)]/c(n)) ∈ (0, 1), where E[h(x)] is the average path
// length over the trees and c(n) the expected path length of an
// unsuccessful BST search — scores near 1 indicate anomalies, scores
// well below 0.5 indicate dense inliers.
package iforest

import (
	"errors"
	"math"
	"math/rand"
)

// Config holds the forest hyper-parameters.
type Config struct {
	// Trees is the ensemble size (default 100).
	Trees int
	// SampleSize is the sub-sample used to build each tree (default
	// 256, per the original paper; clamped to the dataset size).
	SampleSize int
	// Seed makes training deterministic (default 1).
	Seed int64
}

func (c *Config) defaults() {
	if c.Trees <= 0 {
		c.Trees = 100
	}
	if c.SampleSize <= 0 {
		c.SampleSize = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ErrNoData is returned when Fit receives no samples.
var ErrNoData = errors.New("iforest: no training data")

// ErrDimension is returned for ragged or mismatched inputs.
var ErrDimension = errors.New("iforest: dimension mismatch")

type node struct {
	feature     int
	split       float64
	left, right int // node indices; -1 for leaves
	size        int // training points that ended here (leaves)
}

type tree struct {
	nodes []node
}

// Forest is a fitted isolation forest.
type Forest struct {
	cfg   Config
	trees []tree
	dim   int
	cn    float64 // c(sampleSize): path-length normaliser
}

// Fit trains the forest on data.
func Fit(data [][]float64, cfg Config) (*Forest, error) {
	cfg.defaults()
	n := len(data)
	if n == 0 {
		return nil, ErrNoData
	}
	dim := len(data[0])
	for _, row := range data {
		if len(row) != dim {
			return nil, ErrDimension
		}
	}
	if cfg.SampleSize > n {
		cfg.SampleSize = n
	}
	f := &Forest{cfg: cfg, dim: dim, cn: avgPathLength(cfg.SampleSize)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	maxDepth := int(math.Ceil(math.Log2(float64(cfg.SampleSize)))) + 1
	sample := make([][]float64, cfg.SampleSize)
	for t := 0; t < cfg.Trees; t++ {
		for i := range sample {
			sample[i] = data[rng.Intn(n)]
		}
		var tr tree
		buildNode(&tr, sample, 0, maxDepth, dim, rng)
		f.trees = append(f.trees, tr)
	}
	return f, nil
}

// buildNode grows an isolation tree over pts and returns its node index.
func buildNode(tr *tree, pts [][]float64, depth, maxDepth, dim int, rng *rand.Rand) int {
	idx := len(tr.nodes)
	tr.nodes = append(tr.nodes, node{left: -1, right: -1, size: len(pts)})
	if depth >= maxDepth || len(pts) <= 1 {
		return idx
	}
	// Pick a feature with spread; give up after a few tries (constant
	// subsample).
	var feature int
	var lo, hi float64
	found := false
	for try := 0; try < dim; try++ {
		feature = rng.Intn(dim)
		lo, hi = pts[0][feature], pts[0][feature]
		for _, p := range pts[1:] {
			v := p[feature]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi > lo {
			found = true
			break
		}
	}
	if !found {
		return idx
	}
	split := lo + rng.Float64()*(hi-lo)
	var left, right [][]float64
	for _, p := range pts {
		if p[feature] < split {
			left = append(left, p)
		} else {
			right = append(right, p)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return idx
	}
	l := buildNode(tr, left, depth+1, maxDepth, dim, rng)
	r := buildNode(tr, right, depth+1, maxDepth, dim, rng)
	tr.nodes[idx].feature = feature
	tr.nodes[idx].split = split
	tr.nodes[idx].left = l
	tr.nodes[idx].right = r
	return idx
}

// pathLength returns h(x) for one tree, including the c(size) adjustment
// at truncated leaves.
func (t *tree) pathLength(x []float64) float64 {
	i := 0
	depth := 0.0
	for {
		nd := &t.nodes[i]
		if nd.left < 0 {
			return depth + avgPathLength(nd.size)
		}
		if x[nd.feature] < nd.split {
			i = nd.left
		} else {
			i = nd.right
		}
		depth++
	}
}

// Score returns the anomaly score of x in (0, 1); higher = more
// anomalous.
func (f *Forest) Score(x []float64) (float64, error) {
	if len(x) != f.dim {
		return 0, ErrDimension
	}
	var sum float64
	for i := range f.trees {
		sum += f.trees[i].pathLength(x)
	}
	mean := sum / float64(len(f.trees))
	return math.Pow(2, -mean/f.cn), nil
}

// avgPathLength is c(n): the average path length of an unsuccessful
// search in a BST of n nodes.
func avgPathLength(n int) float64 {
	switch {
	case n <= 1:
		return 0
	case n == 2:
		return 1
	default:
		nf := float64(n)
		h := math.Log(nf-1) + 0.5772156649015329 // Euler–Mascheroni
		return 2*h - 2*(nf-1)/nf
	}
}
