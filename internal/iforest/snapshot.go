package iforest

import (
	"errors"

	"github.com/navarchos/pdm/internal/checkpoint"
)

// ErrBadSnapshot is returned when serialized forest bytes do not decode
// into a valid ensemble.
var ErrBadSnapshot = errors.New("iforest: malformed forest snapshot")

// forestTag marks serialized Forest payloads.
const forestTag = uint8(0x49) // 'I'

// maxNodes bounds one serialized tree's arena against hostile length
// prefixes.
const maxNodes = 1 << 22

// AppendTo serialises the fitted forest into b, including the (possibly
// clamped) Config: Score depends on cn, which Fit derives from the
// effective SampleSize.
func (f *Forest) AppendTo(b *checkpoint.Buf) {
	b.Uint8(forestTag)
	b.Int(f.cfg.Trees)
	b.Int(f.cfg.SampleSize)
	b.Int64(f.cfg.Seed)
	b.Int(f.dim)
	b.Float64(f.cn)
	b.Int(len(f.trees))
	for i := range f.trees {
		nodes := f.trees[i].nodes
		b.Int(len(nodes))
		for j := range nodes {
			n := &nodes[j]
			b.Int(n.feature)
			b.Float64(n.split)
			b.Int(n.left)
			b.Int(n.right)
			b.Int(n.size)
		}
	}
}

// ReadForest decodes a forest serialised by AppendTo, validating node
// links so a corrupted arena cannot send pathLength out of bounds or
// into a cycle.
func ReadForest(rb *checkpoint.RBuf) (*Forest, error) {
	if rb.Uint8() != forestTag {
		return nil, ErrBadSnapshot
	}
	var f Forest
	f.cfg.Trees = rb.Int()
	f.cfg.SampleSize = rb.Int()
	f.cfg.Seed = rb.Int64()
	f.dim = rb.Int()
	f.cn = rb.Float64()
	numTrees := rb.Int()
	if err := rb.Err(); err != nil {
		return nil, err
	}
	if f.dim <= 0 || numTrees <= 0 || numTrees > maxNodes {
		return nil, ErrBadSnapshot
	}
	f.trees = make([]tree, 0, numTrees)
	for t := 0; t < numTrees; t++ {
		numNodes := rb.Int()
		if err := rb.Err(); err != nil {
			return nil, err
		}
		if numNodes <= 0 || numNodes > maxNodes {
			return nil, ErrBadSnapshot
		}
		nodes := make([]node, numNodes)
		for j := range nodes {
			n := &nodes[j]
			n.feature = rb.Int()
			n.split = rb.Float64()
			n.left = rb.Int()
			n.right = rb.Int()
			n.size = rb.Int()
			if rb.Err() != nil {
				return nil, rb.Err()
			}
			if n.left >= 0 || n.right >= 0 {
				// Internal node: both children must exist strictly after
				// the parent (buildNode appends parents before subtrees).
				if n.feature < 0 || n.feature >= f.dim ||
					n.left <= j || n.left >= numNodes ||
					n.right <= j || n.right >= numNodes {
					return nil, ErrBadSnapshot
				}
			}
		}
		f.trees = append(f.trees, tree{nodes: nodes})
	}
	if err := rb.Err(); err != nil {
		return nil, err
	}
	return &f, nil
}
