package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func journalEvent(i int) AlarmEvent {
	return AlarmEvent{
		Time:            time.Date(2023, 5, 1, 0, 0, i, 0, time.UTC),
		VehicleID:       fmt.Sprintf("veh-%02d", i%4),
		Technique:       "closest-pair",
		Transform:       "correlation",
		Feature:         "corr(speed,coolantTemp)",
		Channel:         i % 15,
		Score:           float64(i) * 1.5,
		Threshold:       3.25,
		RefLen:          45,
		RefCap:          45,
		RefAge:          uint64(i),
		SinceLastEventS: float64(i) * 60,
	}
}

func TestJournalRingAndSeq(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Append(journalEvent(i))
	}
	if got := j.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	last := j.Last(0) // 0 = everything retained
	if len(last) != 4 {
		t.Fatalf("retained %d entries, want 4", len(last))
	}
	for i, e := range last {
		wantSeq := uint64(6 + i) // oldest retained is seq 6, oldest first
		if e.Seq != wantSeq {
			t.Fatalf("entry %d has seq %d, want %d (%+v)", i, e.Seq, wantSeq, last)
		}
		if e.RefAge != wantSeq {
			t.Fatalf("entry %d payload mismatch: RefAge %d, want %d", i, e.RefAge, wantSeq)
		}
	}
	// Last(n) smaller than retained.
	last2 := j.Last(2)
	if len(last2) != 2 || last2[0].Seq != 8 || last2[1].Seq != 9 {
		t.Fatalf("Last(2) = %+v", last2)
	}
}

func TestJournalPartiallyFilled(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 3; i++ {
		j.Append(journalEvent(i))
	}
	last := j.Last(5)
	if len(last) != 3 {
		t.Fatalf("Last(5) on 3 entries = %d", len(last))
	}
	for i, e := range last {
		if e.Seq != uint64(i) {
			t.Fatalf("seq order wrong: %+v", last)
		}
	}
}

func TestJournalLastFor(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 20; i++ {
		j.Append(journalEvent(i)) // vehicles cycle veh-00..veh-03
	}
	// Retained window is seqs 12..19; veh-01 owns 13 and 17.
	got := j.LastFor("veh-01", 0)
	if len(got) != 2 || got[0].Seq != 13 || got[1].Seq != 17 {
		t.Fatalf("LastFor(veh-01) = %+v", got)
	}
	if got := j.LastFor("veh-01", 1); len(got) != 1 || got[0].Seq != 17 {
		t.Fatalf("LastFor(veh-01, 1) = %+v", got)
	}
	if got := j.LastFor("veh-99", 0); len(got) != 0 {
		t.Fatalf("LastFor on an unknown vehicle = %+v", got)
	}
	// A partially filled ring must not fabricate entries.
	j2 := NewJournal(8)
	j2.Append(journalEvent(1))
	if got := j2.LastFor("veh-01", 0); len(got) != 1 || got[0].Seq != 0 {
		t.Fatalf("partial-ring LastFor = %+v", got)
	}
}

func TestJournalJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(2)
	j.SetSink(&buf)
	for i := 0; i < 5; i++ {
		j.Append(journalEvent(i))
	}
	sc := bufio.NewScanner(&buf)
	var n int
	for sc.Scan() {
		var e AlarmEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", n, err)
		}
		if e.Seq != uint64(n) || e.VehicleID == "" || e.Technique != "closest-pair" {
			t.Fatalf("line %d decoded wrong: %+v", n, e)
		}
		n++
	}
	// The sink sees every entry, not just the retained window.
	if n != 5 {
		t.Fatalf("sink got %d lines, want 5", n)
	}
}

func TestJournalConcurrentAppendLast(t *testing.T) {
	j := NewJournal(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				j.Append(journalEvent(i))
				if i%17 == 0 {
					j.Last(8)
				}
			}
		}()
	}
	wg.Wait()
	if got := j.Total(); got != 2000 {
		t.Fatalf("Total = %d, want 2000", got)
	}
	last := j.Last(0)
	if len(last) != 16 {
		t.Fatalf("retained %d, want 16", len(last))
	}
	for i := 1; i < len(last); i++ {
		if last[i].Seq != last[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs: %d then %d", last[i-1].Seq, last[i].Seq)
		}
	}
}
