// Command obscheck verifies that every metric family the stack
// registers is documented in DESIGN.md's observability inventory
// (§10). It instantiates the real registration paths — an Observer
// with a score distribution plus an instrumented fleet engine — reads
// the family list back from the registry, and requires each name to
// appear in the doc as `name`. Run by `make vet-obs` (part of
// `make ci`), so adding a metric without documenting it fails CI.
//
// Usage: obscheck [path/to/DESIGN.md]
package main

import (
	"fmt"
	"os"
	"strings"

	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/fleet"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/obs"
	"github.com/navarchos/pdm/internal/timeseries"
)

// nopHandler satisfies fleet.Handler; obscheck only needs the engine's
// metric registration, never its processing.
type nopHandler struct{}

func (nopHandler) HandleRecord(timeseries.Record) ([]detector.Alarm, error) { return nil, nil }
func (nopHandler) HandleEvent(obd.Event)                                    {}
func (nopHandler) ScoredSamples() uint64                                    { return 0 }

func main() {
	designPath := "DESIGN.md"
	if len(os.Args) > 1 {
		designPath = os.Args[1]
	}
	doc, err := os.ReadFile(designPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
		os.Exit(1)
	}

	// Exercise the real registration paths so the family list is the
	// code's, not a hand-maintained mirror of the doc.
	reg := obs.NewRegistry()
	o := obs.NewObserver(reg, obs.ObserverConfig{}) // registers pdm_pipeline_* and pdm_e2e_*
	o.ScoreDist("closest-pair")
	obs.NewIngestMetrics(reg)
	obs.NewCtrlMetrics(reg)
	// The event log registers its per-kind counter family lazily, so
	// record one event of each kind the control plane and serving layer
	// emit.
	events := obs.NewEventLog(8, reg)
	for _, kind := range []string{
		obs.EventDrainStart, obs.EventDrainFinish, obs.EventDrainAbort,
		obs.EventCordon, obs.EventUncordon, obs.EventAdopt,
		obs.EventPeerConflict, obs.EventHealthDown, obs.EventHealthUp,
	} {
		events.Record(obs.ControlEvent{Kind: kind})
	}
	eng, err := fleet.NewEngine(fleet.Config{
		NewHandler: func(string) (fleet.Handler, error) { return nopHandler{}, nil },
		Shards:     1,
		Observer:   o,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
		os.Exit(1)
	}
	eng.Close() //nolint:errcheck // nothing was ingested

	var missing []string
	fams := reg.Families()
	for _, f := range fams {
		if !strings.Contains(string(doc), "`"+f.Name+"`") {
			missing = append(missing, f.Name)
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "obscheck: %d registered metric famil(ies) undocumented in %s:\n", len(missing), designPath)
		for _, name := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", name)
		}
		os.Exit(1)
	}
	fmt.Printf("obscheck: all %d registered metric families documented in %s\n", len(fams), designPath)
}
