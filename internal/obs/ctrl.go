package obs

import "time"

// CtrlMetrics is the control-plane instrumentation family: placement
// decisions, vehicle handoffs with their latency, health-check
// failures, and the cordon gauge. It sits above the per-engine
// families — the fleet/ingest metrics say how one engine is doing,
// this family says how vehicles move *between* engines — so a drain
// that stalls or a flapping health check shows up on its own dial
// instead of as unexplained per-engine churn.
type CtrlMetrics struct {
	// Placements counts placement decisions (a vehicle resolved to an
	// engine for the first time, or re-pinned after a drain).
	Placements *Counter
	// Handoffs counts completed vehicle migrations (extract on the
	// source + adopt on the target).
	Handoffs *Counter
	// HandoffH observes wall-clock migration time per vehicle, in
	// seconds: cordon + owning-shard quiesce + snapshot + adopt.
	HandoffH *Histogram
	// HealthFailures counts health-check passes that found an engine
	// unhealthy (a wedged shard error, an unreachable instance).
	HealthFailures *Counter
	// Cordoned gauges the engines currently cordoned (fenced off from
	// new placements, usually mid-drain).
	Cordoned *Gauge
}

// NewCtrlMetrics registers the control-plane metric families in reg.
func NewCtrlMetrics(reg *Registry) *CtrlMetrics {
	return &CtrlMetrics{
		Placements: reg.Counter("pdm_ctrl_placements_total",
			"Vehicle placement decisions made by the control plane."),
		Handoffs: reg.Counter("pdm_ctrl_handoffs_total",
			"Completed vehicle handoffs (extract + adopt) between engines."),
		HandoffH: reg.Histogram("pdm_ctrl_handoff_seconds",
			"Per-vehicle handoff latency: cordon, shard quiesce, snapshot, adopt.", DefLatencyBuckets),
		HealthFailures: reg.Counter("pdm_ctrl_health_check_failures_total",
			"Health-check passes that found an engine unhealthy."),
		Cordoned: reg.Gauge("pdm_ctrl_cordoned_engines",
			"Engines currently cordoned off from new placements."),
	}
}

// Placed counts one placement decision.
func (m *CtrlMetrics) Placed() {
	if m != nil {
		m.Placements.Inc()
	}
}

// ObserveHandoff records one completed vehicle migration.
func (m *CtrlMetrics) ObserveHandoff(d time.Duration) {
	if m == nil {
		return
	}
	m.Handoffs.Inc()
	m.HandoffH.Observe(d.Seconds())
}

// HealthFailure counts one failed health check.
func (m *CtrlMetrics) HealthFailure() {
	if m != nil {
		m.HealthFailures.Inc()
	}
}

// SetCordoned gauges the current cordoned-engine count.
func (m *CtrlMetrics) SetCordoned(n int) {
	if m != nil {
		m.Cordoned.Set(int64(n))
	}
}
