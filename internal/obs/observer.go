package obs

import (
	"sync"
	"time"
)

// ObserverConfig assembles an Observer.
type ObserverConfig struct {
	// Journal receives one entry per alarm when non-nil.
	Journal *Journal
	// SampleRate is the 1-in-N deterministic sampling rate for stage
	// latency timing and score-distribution observations (rounded up to
	// a power of two; default 64, 1 = observe everything). Lifecycle
	// counters and the journal are never sampled — sampling only skips
	// clock reads and the max-score scan, which dominate the
	// enabled-path overhead at nanosecond stage costs (~25 ns per clock
	// read against a ~135 ns/record hot path).
	SampleRate int
}

// Observer is the instrumentation hub threaded through core.Pipeline,
// fleet.Engine and the detectors. All its metrics live in one Registry;
// all methods are safe on a nil receiver (nil observer ⇒ no overhead),
// and none of them allocates on the scoring hot path, so instrumented
// pipelines keep the zero-allocation steady-state guarantee.
//
// One Observer aggregates across every pipeline and shard that shares
// it: metric cardinality is bounded by metric family × technique ×
// shard, never by vehicle.
type Observer struct {
	reg     *Registry
	journal *Journal
	mask    uint32

	// Pipeline stage latency histograms (seconds, sampled 1-in-N).
	transformH *Histogram
	scoreH     *Histogram
	thresholdH *Histogram
	fitH       *Histogram

	// Pipeline lifecycle counters (unsampled).
	resets      *Counter
	refills     *Counter
	warmupDrops *Counter
	alarms      *Counter

	// End-to-end provenance metrics (pdm_e2e_*), observed only on the
	// ingest and alarm paths — never per scored sample.
	e2e e2eMetrics

	// Per-technique score distributions, resolved once per stage build.
	distMu sync.Mutex
	dists  map[string]*Histogram
}

// NewObserver builds an observer registering the pipeline metric
// families in reg.
func NewObserver(reg *Registry, cfg ObserverConfig) *Observer {
	rate := cfg.SampleRate
	if rate <= 0 {
		rate = 64
	}
	mask := uint32(1)
	for int(mask) < rate {
		mask <<= 1
	}
	o := &Observer{
		reg:     reg,
		journal: cfg.Journal,
		mask:    mask - 1,
		transformH: reg.Histogram("pdm_pipeline_transform_seconds",
			"Transform-stage latency per raw record (filter + collect + emit), sampled.", DefLatencyBuckets),
		scoreH: reg.Histogram("pdm_pipeline_score_seconds",
			"Detector scoring latency per transformed sample, sampled.", DefLatencyBuckets),
		thresholdH: reg.Histogram("pdm_pipeline_threshold_seconds",
			"Threshold-check latency per scored sample, sampled.", DefLatencyBuckets),
		fitH: reg.Histogram("pdm_pipeline_fit_seconds",
			"Detector fit + threshold calibration latency per profile refill.", DefLatencyBuckets),
		resets: reg.Counter("pdm_pipeline_profile_resets_total",
			"Reference profile resets triggered by maintenance events."),
		refills: reg.Counter("pdm_pipeline_profile_refills_total",
			"Reference profiles filled and fitted (initial fills and post-reset refills)."),
		warmupDrops: reg.Counter("pdm_pipeline_warmup_drops_total",
			"Raw records dropped by the pre-transform filter (warm-up and stationary-state cleaning)."),
		alarms: reg.Counter("pdm_pipeline_alarms_total",
			"Alarms emitted by instrumented pipelines (before day-level consolidation)."),
		e2e:   newE2EMetrics(reg),
		dists: map[string]*Histogram{},
	}
	return o
}

// Registry returns the observer's registry (nil on a nil observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Journal returns the attached alarm journal (may be nil).
func (o *Observer) Journal() *Journal {
	if o == nil {
		return nil
	}
	return o.journal
}

// SampleMask returns the sampling mask: stage timing runs when
// tick&mask == 0. Instrumented stages cache it at build time.
func (o *Observer) SampleMask() uint32 {
	if o == nil {
		return 0
	}
	return o.mask
}

// ObserveTransform records one sampled transform-stage duration.
func (o *Observer) ObserveTransform(d time.Duration) { o.transformH.Observe(d.Seconds()) }

// ObserveScore records one sampled detector-scoring duration.
func (o *Observer) ObserveScore(d time.Duration) { o.scoreH.Observe(d.Seconds()) }

// ObserveThreshold records one sampled threshold-check duration.
func (o *Observer) ObserveThreshold(d time.Duration) { o.thresholdH.Observe(d.Seconds()) }

// ObserveFit records one profile fit duration.
func (o *Observer) ObserveFit(d time.Duration) { o.fitH.Observe(d.Seconds()) }

// ProfileReset counts one maintenance-triggered profile reset.
func (o *Observer) ProfileReset() {
	if o != nil {
		o.resets.Inc()
	}
}

// ProfileRefill counts one completed profile fill + fit.
func (o *Observer) ProfileRefill() {
	if o != nil {
		o.refills.Inc()
	}
}

// WarmupDrop counts one record dropped by the pre-transform filter.
func (o *Observer) WarmupDrop() {
	if o != nil {
		o.warmupDrops.Inc()
	}
}

// Alarms counts n emitted alarms.
func (o *Observer) Alarms(n int) {
	if o != nil && n > 0 {
		o.alarms.Add(uint64(n))
	}
}

// ScoreDist returns the score-distribution histogram for a technique
// (family pdm_detector_score, label technique). Stages resolve it once
// at build time and observe each sampled (1-in-N) scored sample's
// maximum channel score into it. Returns nil on a nil observer.
func (o *Observer) ScoreDist(technique string) *Histogram {
	if o == nil {
		return nil
	}
	o.distMu.Lock()
	defer o.distMu.Unlock()
	h, ok := o.dists[technique]
	if !ok {
		h = o.reg.Histogram("pdm_detector_score",
			"Distribution of sampled scored samples' maximum channel score, per technique.",
			DefScoreBuckets, Label{Key: "technique", Value: technique})
		o.dists[technique] = h
	}
	return h
}

// RecordAlarm appends one entry to the alarm journal (no-op without a
// journal). The alarm path already allocates, so journaling here does
// not disturb the zero-allocation steady state.
func (o *Observer) RecordAlarm(e AlarmEvent) {
	if o == nil || o.journal == nil {
		return
	}
	o.journal.Append(e)
}
