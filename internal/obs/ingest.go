package obs

import "time"

// IngestMetrics is the wire-ingest instrumentation family threaded
// through navarchos-serve: decode latency plus volume and reject
// counters for the batch and streaming admission endpoints. It sits in
// front of the engine — the pipeline families in Observer start where
// these stop — so a fleet operator can tell "the network path is slow
// or rejecting" apart from "the detector is slow" from one scrape.
type IngestMetrics struct {
	// DecodeH observes wall-clock decode time per request body (all
	// formats: NVWIRE1, CSV, JSON), in seconds.
	DecodeH *Histogram

	// Frames counts decoded NVWIRE1 frames (CSV/JSON batches count as
	// one frame per delivered batch).
	Frames *Counter
	// Records and Events count admitted telemetry items.
	Records *Counter
	Events  *Counter
	// Bytes counts request-body bytes consumed by decoders.
	Bytes *Counter
	// Rejects counts request bodies refused at decode (bad magic,
	// CRC mismatch, truncation, schema violations) — the dial that
	// pages when a producer ships a corrupt or incompatible encoder.
	Rejects *Counter
}

// NewIngestMetrics registers the ingest metric families in reg.
func NewIngestMetrics(reg *Registry) *IngestMetrics {
	return &IngestMetrics{
		DecodeH: reg.Histogram("pdm_ingest_decode_seconds",
			"Wire decode latency per ingest request body, all formats.", DefLatencyBuckets),
		Frames: reg.Counter("pdm_ingest_frames_total",
			"Decoded ingest frames (one per NVWIRE1 frame or text batch)."),
		Records: reg.Counter("pdm_ingest_records_total",
			"Telemetry records admitted through the ingest endpoints."),
		Events: reg.Counter("pdm_ingest_events_total",
			"Maintenance events admitted through the ingest endpoints."),
		Bytes: reg.Counter("pdm_ingest_bytes_total",
			"Request-body bytes consumed by the ingest decoders."),
		Rejects: reg.Counter("pdm_ingest_rejects_total",
			"Ingest request bodies rejected at decode (corrupt, truncated, or schema-invalid)."),
	}
}

// ObserveDecode records one request body's decode outcome: duration,
// consumed bytes, and delivered item counts.
func (m *IngestMetrics) ObserveDecode(d time.Duration, bytes int64, frames, records, events int) {
	if m == nil {
		return
	}
	m.DecodeH.Observe(d.Seconds())
	if bytes > 0 {
		m.Bytes.Add(uint64(bytes))
	}
	if frames > 0 {
		m.Frames.Add(uint64(frames))
	}
	if records > 0 {
		m.Records.Add(uint64(records))
	}
	if events > 0 {
		m.Events.Add(uint64(events))
	}
}

// Reject counts one refused request body.
func (m *IngestMetrics) Reject() {
	if m != nil {
		m.Rejects.Inc()
	}
}
