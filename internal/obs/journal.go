package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// AlarmEvent is one alarm-lifecycle journal entry: the full detection
// context at the moment an alarm fired, recorded so the alarm is
// explainable after the fact. Fleet-level condition monitoring
// (Hendrickx et al.) and PH-based evaluation (Carrasco et al.) both
// stress that per-asset context — reference state, score trajectory,
// threshold at alarm time — is what makes an alarm actionable; this is
// that context as a first-class artifact.
type AlarmEvent struct {
	// Seq is the journal-assigned monotone sequence number.
	Seq uint64 `json:"seq"`
	// Time is the record timestamp that raised the alarm.
	Time time.Time `json:"time"`
	// VehicleID is the alarming vehicle.
	VehicleID string `json:"vehicle"`
	// Technique is the detector's canonical name ("closest-pair", ...).
	Technique string `json:"technique"`
	// Transform is the transformation's canonical name ("correlation", ...).
	Transform string `json:"transform"`
	// Feature is the violated score channel's human-readable label.
	Feature string `json:"feature"`
	// Channel is the violated score channel index.
	Channel int `json:"channel"`
	// Score is the offending anomaly score.
	Score float64 `json:"score"`
	// Threshold is the live threshold value the score violated.
	Threshold float64 `json:"threshold"`
	// RefLen and RefCap are the reference profile's fill level and
	// configured length. While detecting RefLen == RefCap; an entry can
	// only exist with a fitted profile.
	RefLen int `json:"ref_len"`
	RefCap int `json:"ref_cap"`
	// RefAge is the number of samples scored under the current fit —
	// how stale the reference profile is, in samples.
	RefAge uint64 `json:"ref_age_samples"`
	// SinceLastEventS is the time in seconds since the vehicle's last
	// profile-resetting maintenance event (0 when no event has been
	// seen: the vehicle is still on its initial profile).
	SinceLastEventS float64 `json:"since_last_event_s"`

	// Provenance (zero-valued and omitted when the alarming record was
	// not ingested under a BatchCtx — e.g. plain Replay). BatchID is the
	// receiver-assigned ingest batch, TraceID the producer-assigned wire
	// trace context (0 when the frame carried none), ArrivalTime when
	// the frame hit the process, QueueWaitS how long the batch sat in
	// its shard queue, and E2ELatencyS wire arrival to this alarm.
	BatchID     uint64    `json:"batch_id,omitempty"`
	TraceID     uint64    `json:"trace_id,omitempty"`
	ArrivalTime time.Time `json:"arrival_time,omitzero"`
	QueueWaitS  float64   `json:"queue_wait_s,omitempty"`
	E2ELatencyS float64   `json:"e2e_latency_s,omitempty"`
}

// Journal is a bounded structured ring of alarm events. Appends and
// reads are guarded by a mutex — alarms are rare next to scored
// samples, so the journal is never on the allocation-free hot path.
// An optional sink receives every entry as one JSON line.
type Journal struct {
	mu   sync.Mutex
	buf  []AlarmEvent
	next uint64 // total appends ever; Seq of the next entry
	sink io.Writer
}

// NewJournal returns a journal retaining the last capacity entries
// (default 256 when capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = 256
	}
	return &Journal{buf: make([]AlarmEvent, 0, capacity)}
}

// SetSink attaches a writer that receives every appended entry as one
// JSON line (pass nil to detach). Sink errors are ignored: journaling
// must never fail the detection path.
func (j *Journal) SetSink(w io.Writer) {
	j.mu.Lock()
	j.sink = w
	j.mu.Unlock()
}

// Append records one alarm event, assigning its sequence number.
func (j *Journal) Append(e AlarmEvent) {
	j.mu.Lock()
	e.Seq = j.next
	j.next++
	if len(j.buf) < cap(j.buf) {
		j.buf = append(j.buf, e)
	} else {
		j.buf[int(e.Seq)%cap(j.buf)] = e
	}
	sink := j.sink
	j.mu.Unlock()
	if sink != nil {
		if b, err := json.Marshal(e); err == nil {
			sink.Write(append(b, '\n')) //nolint:errcheck // advisory sink
		}
	}
}

// Total returns how many entries have ever been appended.
func (j *Journal) Total() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// LastFor returns up to n most recent retained entries for one vehicle,
// oldest first (n <= 0 means all retained). The ring is scanned under
// the mutex — bounded by capacity, not fleet size — which keeps the
// per-vehicle read endpoint O(capacity) with no extra index to maintain
// on the alarm path.
func (j *Journal) LastFor(vehicleID string, n int) []AlarmEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []AlarmEvent
	for i := 0; i < len(j.buf); i++ {
		// Walk oldest retained Seq upwards so out stays ordered.
		seq := j.next - uint64(len(j.buf)) + uint64(i)
		if e := j.buf[int(seq)%cap(j.buf)]; e.VehicleID == vehicleID {
			out = append(out, e)
		}
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Last returns up to n most recent entries, oldest first.
func (j *Journal) Last(n int) []AlarmEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n <= 0 || n > len(j.buf) {
		n = len(j.buf)
	}
	out := make([]AlarmEvent, 0, n)
	for i := 0; i < n; i++ {
		// Entries live at Seq % cap; the oldest retained Seq is next-len.
		seq := j.next - uint64(n) + uint64(i)
		out = append(out, j.buf[int(seq)%cap(j.buf)])
	}
	return out
}
