package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func debugFixture() (DebugConfig, *Registry, *Journal) {
	reg := NewRegistry()
	reg.Counter("pdm_debug_records_total", "h").Add(42)
	h := reg.Histogram("pdm_debug_latency_seconds", "h", DefLatencyBuckets)
	h.Observe(3e-6)
	j := NewJournal(8)
	for i := 0; i < 12; i++ {
		j.Append(journalEvent(i))
	}
	status := func() any {
		return map[string]any{"vehicles": 4, "records_in": 1000}
	}
	return DebugConfig{Registry: reg, Journal: j, FleetStatus: status, JournalN: 4}, reg, j
}

func TestDebugMetricsEndpoint(t *testing.T) {
	cfg, _, _ := debugFixture()
	srv := httptest.NewServer(NewDebugMux(cfg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE pdm_debug_records_total counter",
		"pdm_debug_records_total 42",
		"# TYPE pdm_debug_latency_seconds histogram",
		`pdm_debug_latency_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	validateExposition(t, text)
}

func TestDebugFleetEndpoint(t *testing.T) {
	cfg, _, _ := debugFixture()
	srv := httptest.NewServer(NewDebugMux(cfg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Engine       map[string]any `json:"engine"`
		JournalTotal uint64         `json:"journal_total"`
		Journal      []AlarmEvent   `json:"journal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Engine["vehicles"] != float64(4) {
		t.Fatalf("engine status = %+v", got.Engine)
	}
	if got.JournalTotal != 12 {
		t.Fatalf("journal_total = %d, want 12", got.JournalTotal)
	}
	if len(got.Journal) != 4 { // JournalN default from config
		t.Fatalf("journal entries = %d, want 4", len(got.Journal))
	}
	last := got.Journal[len(got.Journal)-1]
	if last.Seq != 11 || last.VehicleID == "" || last.Score == 0 || last.Threshold == 0 || last.RefLen == 0 {
		t.Fatalf("journal entry missing context: %+v", last)
	}

	// ?n= overrides the entry count.
	resp2, err := http.Get(srv.URL + "/fleet?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Journal) != 2 {
		t.Fatalf("journal entries with n=2: %d", len(got.Journal))
	}
}

func TestDebugVarsAndPprof(t *testing.T) {
	cfg, _, _ := debugFixture()
	srv := httptest.NewServer(NewDebugMux(cfg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if _, ok := vars["pdm"]; !ok {
		t.Fatalf("/debug/vars missing pdm section (keys: %d)", len(vars))
	}

	resp2, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", resp2.StatusCode)
	}
}

func TestStartDebugServer(t *testing.T) {
	cfg, _, _ := debugFixture()
	s, err := StartDebugServer("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestObserverNilSafety(t *testing.T) {
	var o *Observer
	o.ProfileReset()
	o.ProfileRefill()
	o.WarmupDrop()
	o.Alarms(3)
	o.RecordAlarm(AlarmEvent{})
	if o.ScoreDist("x") != nil {
		t.Fatal("nil observer ScoreDist should be nil")
	}
	if o.Registry() != nil || o.Journal() != nil {
		t.Fatal("nil observer accessors should return nil")
	}
	if o.SampleMask() != 0 {
		t.Fatal("nil observer mask should be 0")
	}
}

func TestObserverSampleMask(t *testing.T) {
	reg := NewRegistry()
	for _, tc := range []struct {
		rate int
		mask uint32
	}{{0, 63}, {1, 0}, {2, 1}, {3, 3}, {8, 7}, {9, 15}} {
		o := NewObserver(reg, ObserverConfig{SampleRate: tc.rate})
		if o.SampleMask() != tc.mask {
			t.Fatalf("rate %d: mask = %d, want %d", tc.rate, o.SampleMask(), tc.mask)
		}
	}
}
