package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"
	"sync"
	"testing"
)

// TestEventLogRingAndSeq pins the ring semantics shared with the alarm
// Journal: monotone sequence numbers survive wraparound, Last returns
// the newest entries oldest-first, and Total counts every append ever.
func TestEventLogRingAndSeq(t *testing.T) {
	l := NewEventLog(4, nil)
	for i := 0; i < 10; i++ {
		l.Record(ControlEvent{Kind: EventCordon, VehicleID: fmt.Sprintf("veh-%02d", i)})
	}
	if got := l.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	last := l.Last(0)
	if len(last) != 4 {
		t.Fatalf("Last(0) returned %d entries, want the 4 retained", len(last))
	}
	for i, e := range last {
		if want := uint64(6 + i); e.Seq != want {
			t.Fatalf("entry %d has Seq %d, want %d", i, e.Seq, want)
		}
		if want := fmt.Sprintf("veh-%02d", 6+i); e.VehicleID != want {
			t.Fatalf("entry %d is %s, want %s", i, e.VehicleID, want)
		}
		if e.Time.IsZero() {
			t.Fatalf("entry %d missing auto-stamped time", i)
		}
	}
	if got := l.Last(2); len(got) != 2 || got[1].Seq != 9 {
		t.Fatalf("Last(2) = %+v, want the 2 newest ending at Seq 9", got)
	}
	if got := l.Last(99); len(got) != 4 {
		t.Fatalf("Last(99) returned %d entries, want 4", len(got))
	}
}

// TestEventLogLastFor pins the per-vehicle audit view used by
// /admin/events?vehicle=.
func TestEventLogLastFor(t *testing.T) {
	l := NewEventLog(8, nil)
	for i := 0; i < 6; i++ {
		l.Record(ControlEvent{Kind: EventDrainStart, VehicleID: fmt.Sprintf("veh-%02d", i%2)})
	}
	got := l.LastFor("veh-01", 0)
	if len(got) != 3 {
		t.Fatalf("LastFor(veh-01) returned %d entries, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("LastFor not oldest-first: %d then %d", got[i-1].Seq, got[i].Seq)
		}
	}
	if capped := l.LastFor("veh-01", 1); len(capped) != 1 || capped[0].Seq != got[2].Seq {
		t.Fatalf("LastFor cap kept %+v, want only the newest", capped)
	}
	if stranger := l.LastFor("veh-99", 0); len(stranger) != 0 {
		t.Fatalf("LastFor(veh-99) = %+v, want none", stranger)
	}
}

// TestEventLogCountersAndSink pins the export surface: every append
// increments pdm_ctrl_events_total for its kind, and an attached sink
// receives each event as one well-formed JSON line.
func TestEventLogCountersAndSink(t *testing.T) {
	reg := NewRegistry()
	l := NewEventLog(4, reg)
	var sink bytes.Buffer
	l.SetSink(&sink)
	for i := 0; i < 3; i++ {
		l.Record(ControlEvent{Kind: EventAdopt, Engine: "a", Peer: "b", VehicleID: "veh-00"})
	}
	l.Record(ControlEvent{Kind: EventPeerConflict, Engine: "a", Peer: "b", Detail: "409"})

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, re := range []string{
		`pdm_ctrl_events_total\{kind="adopt"\} 3\b`,
		`pdm_ctrl_events_total\{kind="peer-conflict"\} 1\b`,
	} {
		if !regexp.MustCompile(re).MatchString(buf.String()) {
			t.Fatalf("exposition missing %s in:\n%s", re, buf.String())
		}
	}

	lines := 0
	sc := bufio.NewScanner(&sink)
	for sc.Scan() {
		var e ControlEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("sink line %d not JSON: %v", lines, err)
		}
		if e.Kind == "" {
			t.Fatalf("sink line %d lost its kind", lines)
		}
		lines++
	}
	if lines != 4 {
		t.Fatalf("sink received %d lines, want 4", lines)
	}
}

// TestEventLogNilSafety mirrors the Observer's nil contract: every
// method must be a no-op on a nil log, so control-plane call sites
// need no log-enabled branch.
func TestEventLogNilSafety(t *testing.T) {
	var l *EventLog
	l.Record(ControlEvent{Kind: EventCordon})
	l.SetSink(&bytes.Buffer{})
	if l.Total() != 0 || l.Last(5) != nil || l.LastFor("veh-00", 5) != nil {
		t.Fatal("nil EventLog leaked state")
	}
}

// TestEventLogConcurrent hammers one log from concurrent recorders and
// readers. Run under `go test -race` this is the data-race gate; the
// final sequence accounting proves no append was lost or duplicated.
func TestEventLogConcurrent(t *testing.T) {
	reg := NewRegistry()
	l := NewEventLog(16, reg)
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Record(ControlEvent{
					Kind:      []string{EventDrainStart, EventDrainFinish, EventHealthDown, EventHealthUp}[i%4],
					Engine:    fmt.Sprintf("eng-%d", w),
					VehicleID: fmt.Sprintf("veh-%02d", i%8),
				})
			}
		}()
	}
	readers := make(chan struct{})
	go func() {
		defer close(readers)
		for i := 0; i < 50; i++ {
			if got := len(l.Last(0)); got > 16 {
				t.Errorf("Last(0) returned %d entries from a 16-slot ring", got)
				return
			}
			l.LastFor("veh-03", 4)
			l.Total()
		}
	}()
	wg.Wait()
	<-readers

	if got := l.Total(); got != writers*perWriter {
		t.Fatalf("Total = %d, want %d", got, writers*perWriter)
	}
	last := l.Last(0)
	if len(last) != 16 {
		t.Fatalf("retained %d entries, want 16", len(last))
	}
	seen := map[uint64]bool{}
	for i, e := range last {
		if i > 0 && e.Seq != last[i-1].Seq+1 {
			t.Fatalf("retained window not contiguous: Seq %d after %d", e.Seq, last[i-1].Seq)
		}
		if seen[e.Seq] {
			t.Fatalf("duplicate Seq %d in retained window", e.Seq)
		}
		seen[e.Seq] = true
	}
	if newest := last[len(last)-1].Seq; newest != writers*perWriter-1 {
		t.Fatalf("newest retained Seq %d, want %d", newest, writers*perWriter-1)
	}
}
