package obs

import "expvar"

// PublishExpvar publishes the registry under the given expvar name as a
// nested map: counters and gauges as numbers, histograms as
// {count, sum} objects, keyed by series name (labels included). The
// map is rebuilt on every /debug/vars scrape, so it always reflects
// live values. Publishing the same name twice is a no-op (expvar
// forbids re-publication), which makes PublishExpvar safe to call from
// multiple components sharing one registry.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.expvarMap() }))
}

func (r *Registry) expvarMap() map[string]any {
	r.mu.Lock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()
	out := make(map[string]any, len(entries))
	for _, e := range entries {
		key := seriesName(e.name, e.labels)
		switch e.kind {
		case KindCounter:
			out[key] = e.counter.Value()
		case KindGauge:
			out[key] = e.gauge.Value()
		case KindCounterFunc, KindGaugeFunc:
			out[key] = e.fn.value()
		case KindHistogram:
			out[key] = map[string]any{"count": e.hist.Count(), "sum": e.hist.Sum()}
		}
	}
	return out
}
