package obs

import "time"

// BatchCtx is the provenance context attached to one ingested wire
// frame (or one replayed batch). It is allocated once per frame on the
// ingest path — never per record — and shared by pointer through the
// shard queues, so the scoring hot path pays only a nil check when no
// tracing is active and a pointer copy when it is.
//
// The distinction between Arrival and Enqueue is the point of the
// type: Arrival is when the bytes hit the process (wire arrival),
// Enqueue is when the decoded records were admitted into shard queues.
// End-to-end alarm latency is measured from Arrival — detection
// latency in temporal-AD evaluation (Carrasco et al.) counts from the
// moment the evidence exists, not from when the system got around to
// queueing it.
type BatchCtx struct {
	// BatchID is a process-monotone ingest batch identifier assigned by
	// the receiver (serve handler or bench harness).
	BatchID uint64
	// TraceID is the producer-assigned trace context carried in the
	// NVWIRE1 frame (0 when the frame carried none).
	TraceID uint64
	// Arrival is when the frame's first byte was seen by the receiver.
	Arrival time.Time
	// Enqueue is when the decoded batch was staged into shard queues.
	Enqueue time.Time
}

// DefE2EBuckets spans end-to-end ingest-to-alarm latencies: from tens
// of microseconds (in-process bench loops) up to ten seconds (deep
// queues under backpressure).
var DefE2EBuckets = []float64{
	5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
	2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// e2eMetrics registers the pdm_e2e_* family. Split out of NewObserver
// only for readability; every Observer carries it so the family is
// always exposed once an observer exists.
type e2eMetrics struct {
	latencyH  *Histogram
	queueH    *Histogram
	tracedIn  *Counter
	tracedOut *Counter
}

func newE2EMetrics(reg *Registry) e2eMetrics {
	return e2eMetrics{
		latencyH: reg.Histogram("pdm_e2e_alarm_latency_seconds",
			"Ingest-to-alarm latency measured from wire arrival of the frame that carried the alarming record.", DefE2EBuckets),
		queueH: reg.Histogram("pdm_e2e_queue_wait_seconds",
			"Shard-queue wait of traced batches: enqueue to first dequeue.", DefLatencyBuckets),
		tracedIn: reg.Counter("pdm_e2e_traced_batches_total",
			"Ingest batches admitted with provenance context attached."),
		tracedOut: reg.Counter("pdm_e2e_traced_alarms_total",
			"Alarms emitted with provenance context attached."),
	}
}

// TracedBatch counts one batch admitted with provenance attached.
func (o *Observer) TracedBatch() {
	if o != nil {
		o.e2e.tracedIn.Inc()
	}
}

// ObserveQueueWait records one traced batch's shard-queue wait.
func (o *Observer) ObserveQueueWait(d time.Duration) {
	if o != nil && d > 0 {
		o.e2e.queueH.Observe(d.Seconds())
	}
}

// ObserveAlarmLatency records one alarm's wire-arrival-to-alarm
// latency and counts the traced alarm. Called only on the alarm path,
// which already allocates, so the zero-allocation steady state holds.
func (o *Observer) ObserveAlarmLatency(d time.Duration) {
	if o == nil {
		return
	}
	o.e2e.tracedOut.Inc()
	if d > 0 {
		o.e2e.latencyH.Observe(d.Seconds())
	}
}
