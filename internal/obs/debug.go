package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// DebugConfig assembles the debug HTTP endpoint.
type DebugConfig struct {
	// Registry backs /metrics (and the pdm section of /debug/vars).
	// Optional: without it /metrics serves an empty exposition.
	Registry *Registry
	// Journal backs the journal section of /fleet. Optional.
	Journal *Journal
	// FleetStatus, when non-nil, is called per /fleet request and
	// marshaled into the response's "engine" field — wire it to
	// fleet.Engine.Stats.
	FleetStatus func() any
	// Placement, when non-nil, is called per /fleet request and
	// marshaled into the response's "placement" field — the
	// control-plane view (ring owners, cordons, migrations) that pairs
	// with the data-plane engine stats. Serving layers running with
	// peers wire it to their placement snapshot; single-instance
	// deployments leave it nil and the field is omitted.
	Placement func() any
	// JournalN is the default number of journal entries /fleet returns
	// (override per request with ?n=; default 32).
	JournalN int
}

// NewDebugMux builds the debug endpoint's routes:
//
//	/metrics        Prometheus text exposition of Registry
//	/debug/vars     Go expvar (Registry published as "pdm")
//	/debug/pprof/*  the standard pprof handlers
//	/fleet          JSON: engine status + last N alarm-journal entries
func NewDebugMux(cfg DebugConfig) *http.ServeMux {
	if cfg.JournalN <= 0 {
		cfg.JournalN = 32
	}
	if cfg.Registry != nil {
		cfg.Registry.PublishExpvar("pdm")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if cfg.Registry != nil {
			cfg.Registry.WritePrometheus(w) //nolint:errcheck // client went away
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, r *http.Request) {
		n := cfg.JournalN
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		resp := fleetStatus{}
		if cfg.FleetStatus != nil {
			resp.Engine = cfg.FleetStatus()
		}
		if cfg.Placement != nil {
			resp.Placement = cfg.Placement()
		}
		if cfg.Journal != nil {
			resp.JournalTotal = cfg.Journal.Total()
			resp.Journal = cfg.Journal.Last(n)
		}
		if resp.Journal == nil {
			resp.Journal = []AlarmEvent{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp) //nolint:errcheck // client went away
	})
	return mux
}

// fleetStatus is the /fleet response shape.
type fleetStatus struct {
	Engine       any          `json:"engine,omitempty"`
	Placement    any          `json:"placement,omitempty"`
	JournalTotal uint64       `json:"journal_total"`
	Journal      []AlarmEvent `json:"journal"`
}

// DebugServer is a running debug endpoint.
type DebugServer struct {
	srv *http.Server
	lis net.Listener
}

// StartDebugServer listens on addr (":8080", "127.0.0.1:0", ...) and
// serves the debug mux in a background goroutine until Close.
func StartDebugServer(addr string, cfg DebugConfig) (*DebugServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewDebugMux(cfg)}
	go srv.Serve(lis) //nolint:errcheck // ErrServerClosed after Close
	return &DebugServer{srv: srv, lis: lis}, nil
}

// Addr returns the bound address (resolves ":0" to the real port).
func (s *DebugServer) Addr() string { return s.lis.Addr().String() }

// Close stops the server.
func (s *DebugServer) Close() error { return s.srv.Close() }
