package obs

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_counter_total", "h")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("t_gauge", "h")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	// Idempotent re-registration returns the same instruments.
	if r.Counter("t_counter_total", "h") != c {
		t.Fatal("re-registration returned a different counter")
	}
	if r.Gauge("t_gauge", "h") != g {
		t.Fatal("re-registration returned a different gauge")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_metric", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("registering t_metric as a gauge should panic")
		}
	}()
	r.Gauge("t_metric", "h")
}

// TestHistogramBucketBoundaries pins the bucket semantics: bounds are
// inclusive upper bounds, values above the last bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_hist", "h", []float64{1, 2, 5})
	for _, v := range []float64{
		0,    // -> le=1
		1,    // -> le=1 (inclusive)
		1.5,  // -> le=2
		2,    // -> le=2 (inclusive)
		2.01, // -> le=5
		5,    // -> le=5 (inclusive)
		5.01, // -> +Inf
		1e9,  // -> +Inf
	} {
		h.Observe(v)
	}
	counts := h.snapshot()
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], w, counts)
		}
	}
	if got := h.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	wantSum := 0.0 + 1 + 1.5 + 2 + 2.01 + 5 + 5.01 + 1e9
	if got := h.Sum(); got != wantSum {
		t.Fatalf("Sum = %v, want %v", got, wantSum)
	}
}

// TestHistogramConcurrentObserveCollect hammers Observe from many
// goroutines while collecting expositions; run with -race this is the
// registry's data-race gate, and the final counts must be exact.
func TestHistogramConcurrentObserveCollect(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_hist", "h", DefLatencyBuckets)
	c := r.Counter("t_counter_total", "h")
	r.GaugeFunc("t_gauge_fn", "h", func() float64 { return float64(c.Value()) })
	const (
		workers = 8
		perW    = 5000
	)
	stop := make(chan struct{})
	var collector sync.WaitGroup
	collector.Add(1)
	go func() { // concurrent collector
		defer collector.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(float64(i%100) * 1e-6)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	close(stop)
	collector.Wait()
	if got := h.Count(); got != workers*perW {
		t.Fatalf("histogram lost observations: %d, want %d", got, workers*perW)
	}
	if got := c.Value(); got != workers*perW {
		t.Fatalf("counter = %d, want %d", got, workers*perW)
	}
}

// TestExpositionGolden locks the Prometheus text rendering to a golden
// file (regenerate with -update).
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pdm_test_records_total", "Records processed.")
	c.Add(1234)
	g := r.Gauge("pdm_test_queue_depth", "Queued batches.", Label{Key: "shard", Value: "0"})
	g.Set(3)
	g2 := r.Gauge("pdm_test_queue_depth", "Queued batches.", Label{Key: "shard", Value: "1"})
	g2.Set(7)
	r.GaugeFunc("pdm_test_vehicles", "Active vehicles.", func() float64 { return 40 })
	r.CounterFunc("pdm_test_scored_total", "Scored samples.", func() float64 { return 99 })
	h := r.Histogram("pdm_test_latency_seconds", "Stage latency.", []float64{0.001, 0.01, 0.1},
		Label{Key: "stage", Value: "score"})
	for _, v := range []float64{0.0005, 0.002, 0.02, 0.2, 0.05} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	validateExposition(t, buf.String())
}

// validateExposition checks Prometheus text-format validity line by
// line: HELP/TYPE comments, metric lines `name{labels} value`, and for
// histograms cumulative buckets ending in +Inf with matching _count.
func validateExposition(t *testing.T, text string) {
	t.Helper()
	metricLine := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[+-]?(Inf|[0-9].*))$`)
	helpLine := regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	sc := bufio.NewScanner(strings.NewReader(text))
	typed := map[string]string{}
	var lastType, lastName string
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !helpLine.MatchString(line) {
				t.Fatalf("invalid comment line: %q", line)
			}
			f := strings.Fields(line)
			if f[1] == "TYPE" {
				if _, dup := typed[f[2]]; dup {
					t.Fatalf("duplicate TYPE for %s", f[2])
				}
				typed[f[2]] = f[3]
				lastName, lastType = f[2], f[3]
			}
			continue
		}
		if !metricLine.MatchString(line) {
			t.Fatalf("invalid metric line: %q", line)
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if base != lastName && name != lastName {
			t.Fatalf("metric %q appears under TYPE block of %q", name, lastName)
		}
		_ = lastType
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramCumulativeBuckets checks the rendered bucket lines are
// cumulative and _count equals the +Inf bucket.
func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_hist", "h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		`t_hist_bucket{le="1"} 1`,
		`t_hist_bucket{le="2"} 2`,
		`t_hist_bucket{le="+Inf"} 3`,
		`t_hist_count 3`,
		`t_hist_sum 101`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("exposition missing %q:\n%s", want, got)
		}
	}
}

// TestFuncReplacement pins last-writer-wins for callback series, which
// is what lets a restored engine take over its predecessor's series.
func TestFuncReplacement(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("t_fn", "h", func() float64 { return 1 })
	r.GaugeFunc("t_fn", "h", func() float64 { return 2 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "t_fn 2") {
		t.Fatalf("callback not replaced:\n%s", buf.String())
	}
}

func TestFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "ha")
	r.Histogram("b_seconds", "hb", DefLatencyBuckets)
	r.Counter("a_total", "ha", Label{Key: "x", Value: "1"}) // same family
	fams := r.Families()
	if len(fams) != 2 {
		t.Fatalf("Families = %d, want 2 (%v)", len(fams), fams)
	}
	if fams[0].Name != "a_total" || fams[0].Kind != KindCounter || fams[0].Help != "ha" {
		t.Fatalf("unexpected family %+v", fams[0])
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_total", "h", Label{Key: "v", Value: `a"b\c` + "\n"})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `v="a\"b\\c\n"`) {
		t.Fatalf("label not escaped:\n%q", buf.String())
	}
}

func TestObserveNs(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "h", []float64{1e-6, 1e-3})
	h.ObserveNs(500)      // 0.5µs -> first bucket
	h.ObserveNs(2_000_00) // 0.2ms -> second bucket
	counts := h.snapshot()
	if counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	want := float64(500e-9) + float64(2e-4) // float64 accumulation order, not exact constant folding
	if got := h.Sum(); got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "h", DefLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-7)
	}
}

func ExampleRegistry_WritePrometheus() {
	r := NewRegistry()
	r.Counter("pdm_example_total", "An example counter.").Add(3)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	fmt.Print(buf.String())
	// Output:
	// # HELP pdm_example_total An example counter.
	// # TYPE pdm_example_total counter
	// pdm_example_total 3
}
