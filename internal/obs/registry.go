// Package obs is the stack's zero-dependency observability layer: a
// metrics registry (atomic counters, gauges and fixed-bucket latency
// histograms with a lock-free, allocation-free Observe), Prometheus
// text-format exposition plus Go expvar publication, a bounded
// alarm-lifecycle journal that makes every alarm explainable after the
// fact, and a debug HTTP endpoint bundling /metrics, /debug/vars,
// /debug/pprof/* and a /fleet JSON status.
//
// Everything in this package is safe for concurrent use. Instrumented
// call sites throughout core and fleet are nil-safe: a nil *Observer
// means no instrumentation and no overhead, which is how the scoring
// hot path keeps its zero-allocation guarantee intact.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a registered metric for exposition and for the
// vet-obs documentation check.
type Kind int

// The metric kinds. Counter and Gauge own their value; CounterFunc and
// GaugeFunc read it from a callback at collection time (free on the hot
// path — the instrumented code never touches them).
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
	KindCounterFunc
	KindGaugeFunc
)

func (k Kind) String() string {
	switch k {
	case KindCounter, KindCounterFunc:
		return "counter"
	case KindGauge, KindGaugeFunc:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Label is one metric label pair. Series of the same family are told
// apart by their labels (e.g. per-shard queue depths).
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// funcMetric is a collection-time callback series (CounterFunc or
// GaugeFunc). Re-registering the same name+labels replaces the
// callback — last writer wins — so a freshly built engine can take over
// the series its predecessor registered on a shared registry.
type funcMetric struct {
	mu sync.Mutex
	fn func() float64
}

func (f *funcMetric) set(fn func() float64) {
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

func (f *funcMetric) value() float64 {
	f.mu.Lock()
	fn := f.fn
	f.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// Histogram is a fixed-bucket histogram with lock-free, allocation-free
// observation: bucket counts and the value sum are atomics, and the
// bucket search walks a small fixed bounds slice. Bounds are inclusive
// upper bounds in ascending order; an implicit +Inf bucket catches the
// rest. Latency histograms observe seconds (Prometheus convention);
// ObserveNs converts from integer nanoseconds.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, last is +Inf
	sumBits atomic.Uint64   // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveNs records a duration given in integer nanoseconds into a
// seconds-based histogram.
func (h *Histogram) ObserveNs(ns int64) { h.Observe(float64(ns) / 1e9) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot reads all bucket counts once.
func (h *Histogram) snapshot() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// DefLatencyBuckets are the default bounds, in seconds, for stage and
// batch latency histograms: 1µs to 1s, roughly ×2.5 per step, with a
// sub-microsecond bucket for the allocation-free scoring fast path.
var DefLatencyBuckets = []float64{
	250e-9, 1e-6, 2.5e-6, 5e-6, 10e-6, 25e-6, 50e-6, 100e-6,
	250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 100e-3, 1,
}

// DefScoreBuckets are the default bounds for anomaly-score distribution
// histograms. Scores are non-negative but live on very different scales
// per technique (conformal deviations in [0,1], closest-pair distances
// in raw feature units), so the bounds span seven decades.
var DefScoreBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 25, 50, 100, 250, 1000,
}

// entry is one registered series.
type entry struct {
	name   string
	labels string // preformatted, sorted: `shard="0"` — empty for none
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      *funcMetric
}

// Family describes one metric family (all series sharing a name): the
// unit the vet-obs documentation check works in.
type Family struct {
	Name string
	Help string
	Kind Kind
}

// Registry holds registered metrics and renders them in Prometheus text
// exposition format. Registration is idempotent: requesting an existing
// name+labels returns the existing instrument (for Func variants the
// callback is replaced). Registering the same name with a different
// kind or help panics — that is a programming error the vet-obs check
// exists to keep out of the tree.
type Registry struct {
	mu       sync.Mutex
	families []Family
	famIdx   map[string]int
	entries  []*entry
	index    map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		famIdx: map[string]int{},
		index:  map[string]*entry{},
	}
}

// labelString renders labels sorted by key, Prometheus-escaped.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register returns the series for name+labels, creating family and
// series on first sight.
func (r *Registry) register(name, help string, kind Kind, labels []Label, make func() *entry) *entry {
	ls := labelString(labels)
	key := name + "\x00" + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if fi, ok := r.famIdx[name]; ok {
		f := r.families[fi]
		if f.Kind != kind || f.Help != help {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v/%q, first seen as %v/%q",
				name, kind, help, f.Kind, f.Help))
		}
	} else {
		r.famIdx[name] = len(r.families)
		r.families = append(r.families, Family{Name: name, Help: help, Kind: kind})
	}
	if e, ok := r.index[key]; ok {
		return e
	}
	e := make()
	e.name, e.labels, e.kind = name, ls, kind
	r.index[key] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	e := r.register(name, help, KindCounter, labels, func() *entry {
		return &entry{counter: &Counter{}}
	})
	return e.counter
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	e := r.register(name, help, KindGauge, labels, func() *entry {
		return &entry{gauge: &Gauge{}}
	})
	return e.gauge
}

// CounterFunc registers a collection-time counter callback. The
// callback must be monotone non-decreasing and safe to call from any
// goroutine. Re-registering replaces the callback.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	e := r.register(name, help, KindCounterFunc, labels, func() *entry {
		return &entry{fn: &funcMetric{}}
	})
	e.fn.set(fn)
}

// GaugeFunc registers a collection-time gauge callback, replacing any
// previous callback for the series.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	e := r.register(name, help, KindGaugeFunc, labels, func() *entry {
		return &entry{fn: &funcMetric{}}
	})
	e.fn.set(fn)
}

// Histogram registers (or finds) a histogram series with the given
// inclusive upper bounds (ascending; an implicit +Inf bucket is added).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	e := r.register(name, help, KindHistogram, labels, func() *entry {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
			}
		}
		return &entry{hist: &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}}
	})
	return e.hist
}

// Families lists every registered metric family in registration order
// (the vet-obs documentation check walks this).
func (r *Registry) Families() []Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Family, len(r.families))
	copy(out, r.families)
	return out
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): families in registration order, each with its
// HELP and TYPE line followed by every series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := make([]Family, len(r.families))
	copy(families, r.families)
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range families {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, f.Help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, e := range entries {
			if e.name != f.Name {
				continue
			}
			writeSeries(bw, e)
		}
	}
	return bw.Flush()
}

func writeSeries(w *bufio.Writer, e *entry) {
	switch e.kind {
	case KindCounter:
		fmt.Fprintf(w, "%s %d\n", seriesName(e.name, e.labels), e.counter.Value())
	case KindGauge:
		fmt.Fprintf(w, "%s %d\n", seriesName(e.name, e.labels), e.gauge.Value())
	case KindCounterFunc, KindGaugeFunc:
		fmt.Fprintf(w, "%s %s\n", seriesName(e.name, e.labels), formatFloat(e.fn.value()))
	case KindHistogram:
		h := e.hist
		counts := h.snapshot()
		var cum uint64
		for i, b := range h.bounds {
			cum += counts[i]
			fmt.Fprintf(w, "%s %d\n", seriesName(e.name+"_bucket", joinLabels(e.labels, `le="`+formatFloat(b)+`"`)), cum)
		}
		cum += counts[len(counts)-1]
		fmt.Fprintf(w, "%s %d\n", seriesName(e.name+"_bucket", joinLabels(e.labels, `le="+Inf"`)), cum)
		fmt.Fprintf(w, "%s %s\n", seriesName(e.name+"_sum", e.labels), formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s %d\n", seriesName(e.name+"_count", e.labels), cum)
	}
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
