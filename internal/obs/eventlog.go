package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Control-plane event kinds recorded in the EventLog. The set is
// closed on purpose: each kind maps to one labelled series of
// pdm_ctrl_events_total, so free-form kinds would leak cardinality.
const (
	EventDrainStart   = "drain-start"   // per-vehicle drain began
	EventDrainFinish  = "drain-finish"  // per-vehicle drain landed on the target
	EventDrainAbort   = "drain-abort"   // per-vehicle drain failed; state restored
	EventCordon       = "cordon"        // operator or drain fence raised
	EventUncordon     = "uncordon"      // fence lowered
	EventAdopt        = "adopt"         // vehicle state adopted from a peer
	EventPeerConflict = "peer-conflict" // peer refused a handoff (409 split-brain rule)
	EventHealthDown   = "health-down"   // health probe transition healthy -> failing
	EventHealthUp     = "health-up"     // health probe transition failing -> healthy
)

// ControlEvent is one control-plane lifecycle entry: who did what to
// which vehicle or engine, when, and how long it took. It is the
// drain/cordon/adoption counterpart of the alarm Journal's AlarmEvent —
// the audit trail an operator replays to answer "why is this vehicle
// served here now?".
type ControlEvent struct {
	// Seq is the log-assigned monotone sequence number.
	Seq uint64 `json:"seq"`
	// Time is when the event was recorded.
	Time time.Time `json:"time"`
	// Kind is one of the Event* constants.
	Kind string `json:"kind"`
	// Engine is the member the event happened on (source engine for
	// drains and handoffs).
	Engine string `json:"engine,omitempty"`
	// Peer is the counterpart member (drain target, adoption source,
	// refusing peer), when the event involves two engines.
	Peer string `json:"peer,omitempty"`
	// VehicleID is set for per-vehicle events (drain, adopt, conflict).
	VehicleID string `json:"vehicle,omitempty"`
	// Detail carries free-form context (HTTP status, probe error, ...).
	Detail string `json:"detail,omitempty"`
	// DurationS is the event duration in seconds where one is
	// meaningful (drain-finish, adopt), else 0.
	DurationS float64 `json:"duration_s,omitempty"`
}

// EventLog is a bounded structured ring of control-plane events with
// the same shape and guarantees as the alarm Journal: mutex-guarded
// appends and reads, an optional JSONL sink whose errors are ignored,
// and O(capacity) reads. Control-plane events are orders of magnitude
// rarer than records, so a mutex is plenty.
//
// When built with a Registry it also counts every append into
// pdm_ctrl_events_total labelled by kind.
type EventLog struct {
	mu       sync.Mutex
	buf      []ControlEvent
	next     uint64 // total appends ever; Seq of the next entry
	sink     io.Writer
	reg      *Registry
	counters map[string]*Counter
}

// NewEventLog returns an event log retaining the last capacity entries
// (default 256 when capacity <= 0). reg may be nil — the log then only
// retains, without exporting counters.
func NewEventLog(capacity int, reg *Registry) *EventLog {
	if capacity <= 0 {
		capacity = 256
	}
	l := &EventLog{buf: make([]ControlEvent, 0, capacity), reg: reg}
	if reg != nil {
		l.counters = map[string]*Counter{}
	}
	return l
}

// SetSink attaches a writer that receives every recorded event as one
// JSON line (pass nil to detach). Sink errors are ignored: auditing
// must never fail the control plane.
func (l *EventLog) SetSink(w io.Writer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sink = w
	l.mu.Unlock()
}

// counter resolves the per-kind counter under l.mu.
func (l *EventLog) counter(kind string) *Counter {
	if l.counters == nil {
		return nil
	}
	c, ok := l.counters[kind]
	if !ok {
		c = l.reg.Counter("pdm_ctrl_events_total",
			"Control-plane lifecycle events recorded in the event log, per kind.",
			Label{Key: "kind", Value: kind})
		l.counters[kind] = c
	}
	return c
}

// Record appends one event, assigning its sequence number and stamping
// Time when the caller left it zero. Safe on a nil receiver so call
// sites need no log-enabled branch.
func (l *EventLog) Record(e ControlEvent) {
	if l == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	l.mu.Lock()
	e.Seq = l.next
	l.next++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[int(e.Seq)%cap(l.buf)] = e
	}
	c := l.counter(e.Kind)
	sink := l.sink
	l.mu.Unlock()
	if c != nil {
		c.Inc()
	}
	if sink != nil {
		if b, err := json.Marshal(e); err == nil {
			sink.Write(append(b, '\n')) //nolint:errcheck // advisory sink
		}
	}
}

// Total returns how many events have ever been recorded.
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Last returns up to n most recent events, oldest first (n <= 0 means
// all retained).
func (l *EventLog) Last(n int) []ControlEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > len(l.buf) {
		n = len(l.buf)
	}
	out := make([]ControlEvent, 0, n)
	for i := 0; i < n; i++ {
		// Entries live at Seq % cap; the oldest retained Seq is next-len.
		seq := l.next - uint64(n) + uint64(i)
		out = append(out, l.buf[int(seq)%cap(l.buf)])
	}
	return out
}

// LastFor returns up to n most recent retained events touching one
// vehicle, oldest first (n <= 0 means all retained).
func (l *EventLog) LastFor(vehicleID string, n int) []ControlEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []ControlEvent
	for i := 0; i < len(l.buf); i++ {
		seq := l.next - uint64(len(l.buf)) + uint64(i)
		if e := l.buf[int(seq)%cap(l.buf)]; e.VehicleID == vehicleID {
			out = append(out, e)
		}
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}
