// Package transform implements step 1 of the paper's framework: mapping
// raw PID records into a feature space where failure-related behavioural
// change is visible. It provides the four transformations the paper
// evaluates — correlation, mean aggregation, delta and raw — plus the two
// additional alternatives its Section 3.1 mentions (histograms and a
// frequency-domain transformation), all behind one streaming interface.
package transform

import (
	"fmt"

	"github.com/navarchos/pdm/internal/timeseries"
)

// Transformer consumes raw records one at a time and emits transformed
// feature vectors, mirroring Algorithm 1's transformer object:
//
//	tr.Collect(rec)
//	if tr.Ready() {
//	    x := tr.Emit()
//	    ...
//	}
//
// Implementations are single-vehicle and not safe for concurrent use;
// the pipeline owns one Transformer per vehicle.
type Transformer interface {
	// Name returns the canonical transformation name used in result
	// tables ("correlation", "raw", ...).
	Name() string
	// Dim returns the dimensionality of emitted feature vectors.
	Dim() int
	// FeatureNames returns one descriptive name per output feature, for
	// alarm explanations (e.g. "corr(speed,coolantTemp)").
	FeatureNames() []string
	// Collect pushes one raw record into the transformer's buffer.
	Collect(r timeseries.Record)
	// Ready reports whether a transformed sample can be emitted.
	Ready() bool
	// Emit returns the next transformed vector and consumes the
	// buffered state behind it. It must only be called when Ready().
	Emit() []float64
	// Reset clears all buffered state (used when the reference profile
	// is rebuilt or the stream restarts).
	Reset()
}

// IntoEmitter is an optional Transformer extension for transformations
// that can emit without allocating. EmitInto writes the next transformed
// vector into dst (length Dim()) and consumes the buffered state, exactly
// like Emit. The streaming pipeline uses it once the reference profile is
// full: emitted vectors are then scored and discarded, so a scratch
// buffer can be reused sample after sample. During profile collection the
// pipeline still calls Emit, because those vectors are retained in Ref.
type IntoEmitter interface {
	// EmitInto emits the ready sample into dst. It must only be called
	// when Ready() and with len(dst) == Dim().
	EmitInto(dst []float64)
}

// Kind selects a transformation.
type Kind int

// The transformation kinds, in the paper's presentation order.
const (
	Correlation Kind = iota
	Raw
	Delta
	MeanAgg
	Histogram
	Spectral
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Correlation:
		return "correlation"
	case Raw:
		return "raw"
	case Delta:
		return "delta"
	case MeanAgg:
		return "mean"
	case Histogram:
		return "histogram"
	case Spectral:
		return "spectral"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// PaperKinds returns the four transformations evaluated in the paper's
// Figures 4–7, in presentation order.
func PaperKinds() []Kind { return []Kind{Correlation, Raw, MeanAgg, Delta} }

// AllKinds returns every implemented transformation including the
// future-work extensions.
func AllKinds() []Kind {
	return []Kind{Correlation, Raw, Delta, MeanAgg, Histogram, Spectral}
}

// New constructs a transformer of the given kind. window is the sliding
// window length in records for the windowed kinds (correlation, mean,
// histogram, spectral); it is ignored by raw and delta. A non-positive
// window defaults to 60 (one driving hour at the fleet's 1/min rate).
func New(kind Kind, window int) (Transformer, error) {
	if window <= 0 {
		window = 60
	}
	switch kind {
	case Correlation:
		return newCorrelation(window), nil
	case Raw:
		return newRaw(), nil
	case Delta:
		return newDelta(), nil
	case MeanAgg:
		return newMeanAgg(window), nil
	case Histogram:
		return newHistogram(window, 5), nil
	case Spectral:
		return newSpectral(window, 4), nil
	default:
		return nil, fmt.Errorf("transform: unknown kind %d", int(kind))
	}
}
