package transform

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/navarchos/pdm/internal/mat"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/timeseries"
)

// randRecord builds a record with plausible in-envelope PID values at
// one-minute cadence so the gap guard and filters stay out of the way.
func randRecord(rng *rand.Rand, t time.Time) timeseries.Record {
	rec := timeseries.Record{VehicleID: "v1", Time: t}
	for p := 0; p < int(obd.NumPIDs); p++ {
		env := obd.Envelope(obd.PID(p))
		rec.Values[p] = env.Min + rng.Float64()*(env.Max-env.Min)
	}
	return rec
}

// emitAll drives tr over records, emitting whenever ready, and returns
// every emitted vector.
func emitAll(tr Transformer, records []timeseries.Record) [][]float64 {
	var out [][]float64
	for _, r := range records {
		tr.Collect(r)
		if tr.Ready() {
			out = append(out, tr.Emit())
		}
	}
	return out
}

// TestSnapshotRoundTripAllKinds freezes each transformer mid-stream,
// restores it into a fresh instance and verifies the restored one emits
// bit-identical vectors for the remainder of the stream.
func TestSnapshotRoundTripAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := time.Date(2023, 3, 1, 8, 0, 0, 0, time.UTC)
	var records []timeseries.Record
	for i := 0; i < 400; i++ {
		// A mid-stream trip gap exercises the gap-guard clock in the
		// snapshot.
		gap := time.Duration(0)
		if i >= 250 {
			gap = 2 * time.Hour
		}
		records = append(records, randRecord(rng, base.Add(time.Duration(i)*time.Minute+gap)))
	}

	for _, kind := range AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			// Split at an index that leaves windowed transformers
			// mid-window (window is 12; 137 = 11×12 + 5).
			const split = 137
			full, err := New(kind, 12)
			if err != nil {
				t.Fatal(err)
			}
			wantAll := emitAll(full, records)

			first, err := New(kind, 12)
			if err != nil {
				t.Fatal(err)
			}
			got := emitAll(first, records[:split])
			snap, err := first.(Snapshotter).Snapshot()
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			second, err := New(kind, 12)
			if err != nil {
				t.Fatal(err)
			}
			if err := second.(Snapshotter).Restore(snap); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			got = append(got, emitAll(second, records[split:])...)

			if len(got) != len(wantAll) {
				t.Fatalf("emitted %d vectors, want %d", len(got), len(wantAll))
			}
			for i := range got {
				for c := range got[i] {
					if math.Float64bits(got[i][c]) != math.Float64bits(wantAll[i][c]) {
						t.Fatalf("sample %d channel %d: resumed %v != uninterrupted %v",
							i, c, got[i][c], wantAll[i][c])
					}
				}
			}
		})
	}
}

// TestSnapshotRejectsWrongKind ensures payload tags keep a snapshot
// from one transformer kind out of another.
func TestSnapshotRejectsWrongKind(t *testing.T) {
	corr, _ := New(Correlation, 12)
	delta, _ := New(Delta, 12)
	snap, err := corr.(Snapshotter).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := delta.(Snapshotter).Restore(snap); err == nil {
		t.Fatal("delta transformer accepted a correlation snapshot")
	}
	// A different window is a different configuration: refuse too.
	corr24, _ := New(Correlation, 24)
	if err := corr24.(Snapshotter).Restore(snap); err == nil {
		t.Fatal("window-24 correlation accepted a window-12 snapshot")
	}
	// Corrupt payloads must error, never panic.
	if err := corr.(Snapshotter).Restore(snap[:len(snap)/2]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if err := corr.(Snapshotter).Restore(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}

// TestCorrSlidingOverflowMatchesTwoPass is the property test for the
// sliding-overflow path: pushing past a full window without emitting
// must keep the running moments equal to a two-pass Pearson over
// exactly the retained window, for arbitrary streams and overflow
// amounts.
func TestCorrSlidingOverflowMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	base := time.Date(2023, 5, 1, 9, 0, 0, 0, time.UTC)
	for trial := 0; trial < 60; trial++ {
		window := 3 + rng.Intn(10)
		overflow := 1 + rng.Intn(3*window)
		n := window + overflow
		c := newCorrelation(window)
		records := make([]timeseries.Record, n)
		for i := range records {
			records[i] = randRecord(rng, base.Add(time.Duration(i)*time.Minute))
			if trial%5 == 0 {
				// Constant-signal trials: every PID pinned, so the
				// no-variance → r = 0 convention is exercised through
				// eviction as well.
				for p := range records[i].Values {
					records[i].Values[p] = 42
				}
			}
			c.Collect(records[i])
		}
		if !c.Ready() {
			t.Fatalf("trial %d: transformer not ready after %d records", trial, n)
		}
		got := c.Emit()

		// Oracle: two-pass Pearson over the last `window` records only.
		kept := records[n-window:]
		cols := make([][]float64, obd.NumPIDs)
		for p := range cols {
			cols[p] = make([]float64, window)
			for i, r := range kept {
				cols[p][i] = r.Values[p]
			}
		}
		k := 0
		for i := 0; i < int(obd.NumPIDs); i++ {
			for j := i + 1; j < int(obd.NumPIDs); j++ {
				want, err := mat.Pearson(cols[i], cols[j])
				if err != nil || math.IsNaN(want) {
					want = 0 // no-variance convention
				}
				if math.Abs(got[k]-want) > 1e-9 {
					t.Fatalf("trial %d (window=%d overflow=%d) pair (%d,%d): running %v vs two-pass %v",
						trial, window, overflow, i, j, got[k], want)
				}
				k++
			}
		}
	}
}

// TestCorrSnapshotMidOverflowRoundTrip freezes the correlation
// transformer after the eviction path has run (full window, no emit)
// and checks the restored instance continues bit-identically through
// further evictions and the eventual emit.
func TestCorrSnapshotMidOverflowRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	base := time.Date(2023, 6, 1, 7, 0, 0, 0, time.UTC)
	for trial := 0; trial < 20; trial++ {
		window := 4 + rng.Intn(8)
		preRoll := window + 1 + rng.Intn(2*window) // guaranteed past full: eviction has run
		tail := 1 + rng.Intn(2*window)
		records := make([]timeseries.Record, preRoll+tail)
		for i := range records {
			records[i] = randRecord(rng, base.Add(time.Duration(i)*time.Minute))
		}

		orig := newCorrelation(window)
		for _, r := range records[:preRoll] {
			orig.Collect(r)
		}
		snap, err := orig.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		restored := newCorrelation(window)
		if err := restored.Restore(snap); err != nil {
			t.Fatal(err)
		}

		for _, r := range records[preRoll:] {
			orig.Collect(r)
			restored.Collect(r)
		}
		if orig.Ready() != restored.Ready() {
			t.Fatalf("trial %d: Ready diverged", trial)
		}
		a, b := orig.Emit(), restored.Emit()
		for k := range a {
			if math.Float64bits(a[k]) != math.Float64bits(b[k]) {
				t.Fatalf("trial %d channel %d: original %v != restored %v", trial, k, a[k], b[k])
			}
		}
	}
}

// TestThresholderSnapshotCompat pins the transformer list: every kind
// constructed through New must implement the snapshot seam (a new kind
// without Snapshot/Restore would silently break fleet checkpoints).
func TestAllKindsImplementSnapshotter(t *testing.T) {
	for _, kind := range AllKinds() {
		tr, err := New(kind, 12)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := tr.(Snapshotter); !ok {
			t.Fatalf("transformer %s does not implement Snapshotter", kind)
		}
	}
}
