package transform

import (
	"fmt"
	"math"
	"time"

	"github.com/navarchos/pdm/internal/dsp"
	"github.com/navarchos/pdm/internal/mat"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/timeseries"
)

// maxGap is the largest time gap between consecutive records that a
// stateful transformer will bridge. Records further apart belong to
// different trips (or different days, with different weather and driver
// behaviour); correlating or differencing across such a gap produces
// artefacts — e.g. an overnight −60 °C coolant "delta" — so the buffer
// is restarted instead.
const maxGap = 45 * time.Minute

// gapGuard tracks the last accepted record time and reports whether a
// new record is separated from it by more than maxGap.
type gapGuard struct {
	last time.Time
}

func (g *gapGuard) broken(t time.Time) bool {
	defer func() { g.last = t }()
	return !g.last.IsZero() && t.Sub(g.last) > maxGap
}

func (g *gapGuard) reset() { g.last = time.Time{} }

// corrTransformer emits, for each tumbling window of records, the
// f·(f−1)/2 pairwise Pearson correlations between the PID signals — the
// paper's winning transformation. Tumbling (non-overlapping) windows
// match the paper's execution-time profile: the correlation stream is
// roughly window-times smaller than the raw stream (Table 1).
//
// Instead of materialising window columns and re-deriving the moments
// pairwise on every Emit, the transformer maintains running sums — per
// PID Σx and per pair Σxy — updated in O(f²) per record. Values are
// shifted by the first record of the current window before accumulation:
// any fixed shift leaves the covariance algebra exact, and it keeps the
// sums of a constant signal at exactly zero, so "no variance → r = 0"
// holds bit-for-bit like the two-pass mat.Pearson it replaces. A small
// ring of shifted records is kept only to support eviction if a caller
// pushes past a full window without emitting.
type corrTransformer struct {
	window int
	gap    gapGuard

	ring  [][obd.NumPIDs]float64 // shifted values, for eviction only
	next  int
	n     int                  // records currently accumulated (≤ window)
	shift [obd.NumPIDs]float64 // per-PID offset fixed at window start

	sum  [obd.NumPIDs]float64              // Σ(x−shift) per PID
	prod [obd.NumPIDs][obd.NumPIDs]float64 // Σ(x−shift)(y−shift), i ≤ j
}

func newCorrelation(window int) *corrTransformer {
	return &corrTransformer{
		window: window,
		ring:   make([][obd.NumPIDs]float64, window),
	}
}

func (c *corrTransformer) Name() string { return Correlation.String() }

func (c *corrTransformer) Dim() int {
	n := int(obd.NumPIDs)
	return n * (n - 1) / 2
}

func (c *corrTransformer) FeatureNames() []string {
	names := obd.PIDNames()
	out := make([]string, 0, c.Dim())
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			out = append(out, fmt.Sprintf("corr(%s,%s)", names[i], names[j]))
		}
	}
	return out
}

func (c *corrTransformer) Collect(r timeseries.Record) {
	if c.gap.broken(r.Time) {
		c.clear()
	}
	if c.n == 0 {
		c.shift = r.Values
	}
	var v [obd.NumPIDs]float64
	for i := range v {
		v[i] = r.Values[i] - c.shift[i]
	}
	if c.n == c.window {
		// Sliding overflow (a caller pushed past a full window without
		// emitting): evict the oldest record's contributions.
		old := c.ring[c.next]
		for i := 0; i < int(obd.NumPIDs); i++ {
			c.sum[i] -= old[i]
			for j := i; j < int(obd.NumPIDs); j++ {
				c.prod[i][j] -= old[i] * old[j]
			}
		}
		c.n--
	}
	c.ring[c.next] = v
	c.next = (c.next + 1) % c.window
	c.n++
	for i := 0; i < int(obd.NumPIDs); i++ {
		c.sum[i] += v[i]
		for j := i; j < int(obd.NumPIDs); j++ {
			c.prod[i][j] += v[i] * v[j]
		}
	}
}

func (c *corrTransformer) Ready() bool { return c.n == c.window }

func (c *corrTransformer) Emit() []float64 {
	out := make([]float64, c.Dim())
	c.EmitInto(out)
	return out
}

// EmitInto implements IntoEmitter: correlations are derived from the
// running moments, n·Σxy − Σx·Σy over the geometric mean of the
// variances, then the accumulator restarts (tumbling windows).
func (c *corrTransformer) EmitInto(dst []float64) {
	n := float64(c.n)
	k := 0
	for i := 0; i < int(obd.NumPIDs); i++ {
		for j := i + 1; j < int(obd.NumPIDs); j++ {
			sxx := n*c.prod[i][i] - c.sum[i]*c.sum[i]
			syy := n*c.prod[j][j] - c.sum[j]*c.sum[j]
			sxy := n*c.prod[i][j] - c.sum[i]*c.sum[j]
			r := 0.0
			if sxx > 0 && syy > 0 {
				r = sxy / math.Sqrt(sxx*syy)
				// Clamp tiny floating-point excursions outside [-1, 1].
				if r > 1 {
					r = 1
				} else if r < -1 {
					r = -1
				}
			}
			dst[k] = r
			k++
		}
	}
	c.clear()
}

// clear restarts the accumulator for the next tumbling window.
func (c *corrTransformer) clear() {
	c.n = 0
	c.next = 0
	c.sum = [obd.NumPIDs]float64{}
	c.prod = [obd.NumPIDs][obd.NumPIDs]float64{}
}

func (c *corrTransformer) Reset() {
	c.clear()
	c.gap.reset()
}

// rawTransformer passes each record's six PID values straight through.
type rawTransformer struct {
	cur  [obd.NumPIDs]float64
	have bool
}

func newRaw() *rawTransformer { return &rawTransformer{} }

func (t *rawTransformer) Name() string           { return Raw.String() }
func (t *rawTransformer) Dim() int               { return int(obd.NumPIDs) }
func (t *rawTransformer) FeatureNames() []string { return obd.PIDNames() }

func (t *rawTransformer) Collect(r timeseries.Record) {
	t.cur = r.Values
	t.have = true
}

func (t *rawTransformer) Ready() bool { return t.have }

func (t *rawTransformer) Emit() []float64 {
	out := make([]float64, obd.NumPIDs)
	t.EmitInto(out)
	return out
}

// EmitInto implements IntoEmitter.
func (t *rawTransformer) EmitInto(dst []float64) {
	t.have = false
	copy(dst, t.cur[:])
}

func (t *rawTransformer) Reset() { t.have = false }

// deltaTransformer emits the first difference of consecutive records —
// the discrete derivative transformation of Giobergia et al. that the
// paper includes as a candidate.
type deltaTransformer struct {
	prev    [obd.NumPIDs]float64
	cur     [obd.NumPIDs]float64
	n       int
	pending bool
	gap     gapGuard
}

func newDelta() *deltaTransformer { return &deltaTransformer{} }

func (t *deltaTransformer) Name() string { return Delta.String() }
func (t *deltaTransformer) Dim() int     { return int(obd.NumPIDs) }

func (t *deltaTransformer) FeatureNames() []string {
	names := obd.PIDNames()
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = "d(" + n + ")"
	}
	return out
}

func (t *deltaTransformer) Collect(r timeseries.Record) {
	if t.gap.broken(r.Time) {
		t.n = 0
		t.pending = false
	}
	if t.n > 0 {
		t.prev = t.cur
	}
	t.cur = r.Values
	t.n++
	t.pending = t.n >= 2
}

func (t *deltaTransformer) Ready() bool { return t.pending }

func (t *deltaTransformer) Emit() []float64 {
	out := make([]float64, obd.NumPIDs)
	t.EmitInto(out)
	return out
}

// EmitInto implements IntoEmitter.
func (t *deltaTransformer) EmitInto(dst []float64) {
	t.pending = false
	for i := range dst[:obd.NumPIDs] {
		dst[i] = t.cur[i] - t.prev[i]
	}
}

func (t *deltaTransformer) Reset() {
	t.n = 0
	t.pending = false
	t.gap.reset()
}

// meanTransformer emits per-PID means over tumbling windows (the same
// windows as the correlation transform, per Section 3.2).
type meanTransformer struct {
	win *timeseries.Window
	gap gapGuard
}

func newMeanAgg(window int) *meanTransformer {
	return &meanTransformer{win: timeseries.NewWindow(window)}
}

func (t *meanTransformer) Name() string { return MeanAgg.String() }
func (t *meanTransformer) Dim() int     { return int(obd.NumPIDs) }

func (t *meanTransformer) FeatureNames() []string {
	names := obd.PIDNames()
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = "mean(" + n + ")"
	}
	return out
}

func (t *meanTransformer) Collect(r timeseries.Record) {
	if t.gap.broken(r.Time) {
		t.win.Reset()
	}
	t.win.Push(r)
}

func (t *meanTransformer) Ready() bool { return t.win.Full() }

func (t *meanTransformer) Emit() []float64 {
	cols := t.win.Columns()
	out := make([]float64, len(cols))
	for i, col := range cols {
		out[i] = mat.Mean(col)
	}
	t.win.Reset()
	return out
}

func (t *meanTransformer) Reset() {
	t.win.Reset()
	t.gap.reset()
}

// histTransformer emits, per tumbling window, a normalised occupancy
// histogram of each PID over its physical envelope — the "histograms"
// alternative of Section 3.1 and a step toward the paper's future-work
// idea of discretising signals into artificial events.
type histTransformer struct {
	win  *timeseries.Window
	bins int
	gap  gapGuard
}

func newHistogram(window, bins int) *histTransformer {
	return &histTransformer{win: timeseries.NewWindow(window), bins: bins}
}

func (t *histTransformer) Name() string { return Histogram.String() }
func (t *histTransformer) Dim() int     { return int(obd.NumPIDs) * t.bins }

func (t *histTransformer) FeatureNames() []string {
	names := obd.PIDNames()
	out := make([]string, 0, t.Dim())
	for _, n := range names {
		for b := 0; b < t.bins; b++ {
			out = append(out, fmt.Sprintf("hist(%s)[%d]", n, b))
		}
	}
	return out
}

func (t *histTransformer) Collect(r timeseries.Record) {
	if t.gap.broken(r.Time) {
		t.win.Reset()
	}
	t.win.Push(r)
}

func (t *histTransformer) Ready() bool { return t.win.Full() }

func (t *histTransformer) Emit() []float64 {
	cols := t.win.Columns()
	out := make([]float64, 0, t.Dim())
	for p, col := range cols {
		env := obd.Envelope(obd.PID(p))
		counts := make([]float64, t.bins)
		for _, v := range col {
			frac := (v - env.Min) / (env.Max - env.Min)
			b := int(frac * float64(t.bins))
			if b < 0 {
				b = 0
			}
			if b >= t.bins {
				b = t.bins - 1
			}
			counts[b]++
		}
		inv := 1 / float64(len(col))
		for i := range counts {
			counts[i] *= inv
		}
		out = append(out, counts...)
	}
	t.win.Reset()
	return out
}

func (t *histTransformer) Reset() {
	t.win.Reset()
	t.gap.reset()
}

// spectralTransformer emits, per tumbling window, normalised FFT band
// energies of each PID — the frequency-domain alternative of
// Section 3.1.
type spectralTransformer struct {
	win   *timeseries.Window
	bands int
	gap   gapGuard
}

func newSpectral(window, bands int) *spectralTransformer {
	return &spectralTransformer{win: timeseries.NewWindow(window), bands: bands}
}

func (t *spectralTransformer) Name() string { return Spectral.String() }
func (t *spectralTransformer) Dim() int     { return int(obd.NumPIDs) * t.bands }

func (t *spectralTransformer) FeatureNames() []string {
	names := obd.PIDNames()
	out := make([]string, 0, t.Dim())
	for _, n := range names {
		for b := 0; b < t.bands; b++ {
			out = append(out, fmt.Sprintf("spec(%s)[%d]", n, b))
		}
	}
	return out
}

func (t *spectralTransformer) Collect(r timeseries.Record) {
	if t.gap.broken(r.Time) {
		t.win.Reset()
	}
	t.win.Push(r)
}

func (t *spectralTransformer) Ready() bool { return t.win.Full() }

func (t *spectralTransformer) Emit() []float64 {
	cols := t.win.Columns()
	out := make([]float64, 0, t.Dim())
	for _, col := range cols {
		be, err := dsp.BandEnergies(col, t.bands)
		if err != nil {
			be = make([]float64, t.bands)
		}
		out = append(out, be...)
	}
	t.win.Reset()
	return out
}

func (t *spectralTransformer) Reset() {
	t.win.Reset()
	t.gap.reset()
}
