package transform

import (
	"math"
	"testing"
	"time"

	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/timeseries"
)

var base = time.Date(2023, 3, 1, 8, 0, 0, 0, time.UTC)

func rec(i int, vals [obd.NumPIDs]float64) timeseries.Record {
	return timeseries.Record{
		VehicleID: "v1",
		Time:      base.Add(time.Duration(i) * time.Minute),
		Values:    vals,
	}
}

// linkedRecord produces a record where rpm, speed and MAF rise together
// (strong positive correlation) and coolant is constant.
func linkedRecord(i int, x float64) timeseries.Record {
	var v [obd.NumPIDs]float64
	v[obd.EngineRPM] = 1000 + 100*x
	v[obd.Speed] = 30 + 3*x
	v[obd.CoolantTemp] = 88
	v[obd.IntakeTemp] = 25 + 0.1*x
	v[obd.MAPIntake] = 40 + 2*x
	v[obd.MAFAirFlowRate] = 10 + x
	return rec(i, v)
}

func TestKindStringsAndSets(t *testing.T) {
	want := map[Kind]string{
		Correlation: "correlation", Raw: "raw", Delta: "delta",
		MeanAgg: "mean", Histogram: "histogram", Spectral: "spectral",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(42).String() != "Kind(42)" {
		t.Error("unknown kind string wrong")
	}
	if len(PaperKinds()) != 4 {
		t.Error("PaperKinds should have 4 entries")
	}
	if len(AllKinds()) != 6 {
		t.Error("AllKinds should have 6 entries")
	}
	if _, err := New(Kind(42), 10); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestAllTransformersContract(t *testing.T) {
	// Every transformer must: have consistent Dim/FeatureNames, not be
	// Ready before data, emit vectors of length Dim, and Reset cleanly.
	for _, k := range AllKinds() {
		tr, err := New(k, 8)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if tr.Name() != k.String() {
			t.Errorf("%v: Name = %q", k, tr.Name())
		}
		if got := len(tr.FeatureNames()); got != tr.Dim() {
			t.Errorf("%v: %d feature names for Dim %d", k, got, tr.Dim())
		}
		if tr.Ready() {
			t.Errorf("%v: Ready before any data", k)
		}
		for i := 0; i < 20; i++ {
			tr.Collect(linkedRecord(i, float64(i%10)))
			if tr.Ready() {
				x := tr.Emit()
				if len(x) != tr.Dim() {
					t.Fatalf("%v: Emit len %d, want %d", k, len(x), tr.Dim())
				}
				for j, v := range x {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("%v: feature %d is %v", k, j, v)
					}
				}
			}
		}
		tr.Reset()
		if tr.Ready() {
			t.Errorf("%v: Ready after Reset", k)
		}
	}
}

func TestCorrelationValues(t *testing.T) {
	tr, _ := New(Correlation, 10)
	for i := 0; i < 10; i++ {
		tr.Collect(linkedRecord(i, float64(i)))
	}
	if !tr.Ready() {
		t.Fatal("should be ready after window filled")
	}
	x := tr.Emit()
	names := tr.FeatureNames()
	byName := map[string]float64{}
	for i, n := range names {
		byName[n] = x[i]
	}
	// rpm and speed rise together: correlation 1.
	if got := byName["corr(rpm,speed)"]; math.Abs(got-1) > 1e-9 {
		t.Errorf("corr(rpm,speed) = %v, want 1", got)
	}
	// coolant constant: correlation defined as 0.
	if got := byName["corr(rpm,coolantTemp)"]; got != 0 {
		t.Errorf("corr(rpm,coolantTemp) = %v, want 0", got)
	}
	// Tumbling window: not ready again until another full window.
	if tr.Ready() {
		t.Error("tumbling window should not be ready right after Emit")
	}
	for i := 0; i < 9; i++ {
		tr.Collect(linkedRecord(i, float64(i)))
	}
	if tr.Ready() {
		t.Error("9 of 10 records should not fill the window")
	}
	tr.Collect(linkedRecord(9, 9))
	if !tr.Ready() {
		t.Error("10th record should fill the window")
	}
}

func TestCorrelationDim(t *testing.T) {
	tr, _ := New(Correlation, 5)
	// 6 PIDs -> 15 pairs.
	if tr.Dim() != 15 {
		t.Errorf("Dim = %d, want 15", tr.Dim())
	}
}

func TestRawPassThrough(t *testing.T) {
	tr, _ := New(Raw, 0)
	r := linkedRecord(0, 3)
	tr.Collect(r)
	if !tr.Ready() {
		t.Fatal("raw should be ready after one record")
	}
	x := tr.Emit()
	for p := 0; p < int(obd.NumPIDs); p++ {
		if x[p] != r.Values[p] {
			t.Errorf("raw[%d] = %v, want %v", p, x[p], r.Values[p])
		}
	}
	if tr.Ready() {
		t.Error("raw should not be ready after Emit until next Collect")
	}
}

func TestDeltaValues(t *testing.T) {
	tr, _ := New(Delta, 0)
	tr.Collect(linkedRecord(0, 1))
	if tr.Ready() {
		t.Fatal("delta needs two records")
	}
	tr.Collect(linkedRecord(1, 3))
	if !tr.Ready() {
		t.Fatal("delta should be ready after two records")
	}
	x := tr.Emit()
	// rpm delta: (1000+300)-(1000+100) = 200.
	if math.Abs(x[obd.EngineRPM]-200) > 1e-9 {
		t.Errorf("delta rpm = %v, want 200", x[obd.EngineRPM])
	}
	if math.Abs(x[obd.Speed]-6) > 1e-9 {
		t.Errorf("delta speed = %v, want 6", x[obd.Speed])
	}
	// After Reset, needs two records again.
	tr.Reset()
	tr.Collect(linkedRecord(2, 5))
	if tr.Ready() {
		t.Error("delta ready after reset with one record")
	}
}

func TestMeanValues(t *testing.T) {
	tr, _ := New(MeanAgg, 4)
	for i := 0; i < 4; i++ {
		var v [obd.NumPIDs]float64
		v[obd.Speed] = float64(i * 10) // 0,10,20,30 -> mean 15
		v[obd.CoolantTemp] = 88
		tr.Collect(rec(i, v))
	}
	x := tr.Emit()
	if x[obd.Speed] != 15 {
		t.Errorf("mean speed = %v, want 15", x[obd.Speed])
	}
	if x[obd.CoolantTemp] != 88 {
		t.Errorf("mean coolant = %v, want 88", x[obd.CoolantTemp])
	}
}

func TestHistogramValues(t *testing.T) {
	tr, _ := New(Histogram, 10)
	// All speed values at envelope minimum: first speed bin gets mass 1.
	for i := 0; i < 10; i++ {
		var v [obd.NumPIDs]float64
		v[obd.Speed] = 0
		v[obd.CoolantTemp] = 88
		tr.Collect(rec(i, v))
	}
	x := tr.Emit()
	names := tr.FeatureNames()
	var sum float64
	for i, n := range names {
		if n == "hist(speed)[0]" && x[i] != 1 {
			t.Errorf("hist(speed)[0] = %v, want 1", x[i])
		}
		if len(n) >= 10 && n[:11] == "hist(speed)" {
			sum += x[i]
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("speed histogram mass = %v, want 1", sum)
	}
}

func TestSpectralShape(t *testing.T) {
	tr, _ := New(Spectral, 32)
	// Slow sinusoidal speed: low-band energy dominates.
	for i := 0; i < 32; i++ {
		var v [obd.NumPIDs]float64
		v[obd.Speed] = 50 + 20*math.Sin(2*math.Pi*float64(i)/32)
		tr.Collect(rec(i, v))
	}
	x := tr.Emit()
	names := tr.FeatureNames()
	for i, n := range names {
		if n == "spec(speed)[0]" && x[i] < 0.9 {
			t.Errorf("spec(speed)[0] = %v, want ~1", x[i])
		}
	}
}
