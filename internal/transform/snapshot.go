package transform

import (
	"errors"
	"time"

	"github.com/navarchos/pdm/internal/checkpoint"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/timeseries"
)

// Snapshotter is the optional Transformer extension behind the
// stack-wide checkpoint/restore seam. Snapshot serialises only the
// mutable buffered state — ring contents, running sums, gap-guard
// clock — never the configuration (kind, window, bins), which the
// owner reconstructs with New before calling Restore. Every
// transformer in this package implements it, so a pipeline can be
// frozen mid-window and resumed bit-identically.
type Snapshotter interface {
	// Snapshot returns the transformer's buffered state.
	Snapshot() ([]byte, error)
	// Restore replaces the buffered state with a snapshot taken from an
	// identically configured transformer.
	Restore(data []byte) error
}

// ErrBadSnapshot is returned when a snapshot payload does not decode as
// state for this transformer kind and configuration.
var ErrBadSnapshot = errors.New("transform: malformed snapshot")

// Per-kind payload tags: restoring a delta snapshot into a correlation
// transformer must fail loudly, not bend state.
const (
	corrTag     = uint8(1)
	rawTag      = uint8(2)
	deltaTag    = uint8(3)
	meanTag     = uint8(4)
	histTag     = uint8(5)
	spectralTag = uint8(6)
)

// putTime serialises a wall-clock instant, keeping the zero time
// distinguishable (time.Unix(0, 0) is 1970, not the zero time, and the
// gap guard's broken() branches on IsZero).
func putTime(b *checkpoint.Buf, t time.Time) {
	b.Bool(t.IsZero())
	if t.IsZero() {
		b.Int64(0)
	} else {
		b.Int64(t.UnixNano())
	}
}

// getTime reads a putTime instant.
func getTime(r *checkpoint.RBuf) time.Time {
	zero := r.Bool()
	nanos := r.Int64()
	if zero {
		return time.Time{}
	}
	return time.Unix(0, nanos).UTC()
}

// putRecord serialises one raw record (for buffered windows).
func putRecord(b *checkpoint.Buf, rec timeseries.Record) {
	b.String(rec.VehicleID)
	putTime(b, rec.Time)
	for _, v := range rec.Values {
		b.Float64(v)
	}
}

// getRecord reads a putRecord record.
func getRecord(r *checkpoint.RBuf) timeseries.Record {
	var rec timeseries.Record
	rec.VehicleID = r.String()
	rec.Time = getTime(r)
	for i := range rec.Values {
		rec.Values[i] = r.Float64()
	}
	return rec
}

// Snapshot implements Snapshotter. The ring is written oldest-first, so
// the payload is canonical regardless of how the ring happened to be
// rotated when the snapshot was taken.
func (c *corrTransformer) Snapshot() ([]byte, error) {
	var b checkpoint.Buf
	b.Uint8(corrTag)
	b.Int(c.window)
	b.Int(c.n)
	putTime(&b, c.gap.last)
	for _, v := range c.shift {
		b.Float64(v)
	}
	for _, v := range c.sum {
		b.Float64(v)
	}
	for i := 0; i < int(obd.NumPIDs); i++ {
		for j := i; j < int(obd.NumPIDs); j++ {
			b.Float64(c.prod[i][j])
		}
	}
	for r := 0; r < c.n; r++ {
		row := c.ring[(c.next-c.n+r+2*c.window)%c.window]
		for _, v := range row {
			b.Float64(v)
		}
	}
	return b.Bytes(), nil
}

// Restore implements Snapshotter.
func (c *corrTransformer) Restore(data []byte) error {
	r := checkpoint.NewRBuf(data)
	if r.Uint8() != corrTag {
		return ErrBadSnapshot
	}
	if r.Int() != c.window {
		return ErrBadSnapshot // snapshot from a differently configured window
	}
	n := r.Int()
	last := getTime(r)
	var shift, sum [obd.NumPIDs]float64
	var prod [obd.NumPIDs][obd.NumPIDs]float64
	for i := range shift {
		shift[i] = r.Float64()
	}
	for i := range sum {
		sum[i] = r.Float64()
	}
	for i := 0; i < int(obd.NumPIDs); i++ {
		for j := i; j < int(obd.NumPIDs); j++ {
			prod[i][j] = r.Float64()
		}
	}
	if n < 0 || n > c.window {
		return ErrBadSnapshot
	}
	ring := make([][obd.NumPIDs]float64, c.window)
	for i := 0; i < n; i++ {
		for k := range ring[i] {
			ring[i][k] = r.Float64()
		}
	}
	if err := r.Close(); err != nil {
		return err
	}
	c.n = n
	c.next = n % c.window
	c.gap.last = last
	c.shift = shift
	c.sum = sum
	c.prod = prod
	c.ring = ring
	return nil
}

// Snapshot implements Snapshotter.
func (t *rawTransformer) Snapshot() ([]byte, error) {
	var b checkpoint.Buf
	b.Uint8(rawTag)
	b.Bool(t.have)
	for _, v := range t.cur {
		b.Float64(v)
	}
	return b.Bytes(), nil
}

// Restore implements Snapshotter.
func (t *rawTransformer) Restore(data []byte) error {
	r := checkpoint.NewRBuf(data)
	if r.Uint8() != rawTag {
		return ErrBadSnapshot
	}
	have := r.Bool()
	var cur [obd.NumPIDs]float64
	for i := range cur {
		cur[i] = r.Float64()
	}
	if err := r.Close(); err != nil {
		return err
	}
	t.have = have
	t.cur = cur
	return nil
}

// Snapshot implements Snapshotter: the last sample pair the first
// difference is pending over, plus the gap-guard clock.
func (t *deltaTransformer) Snapshot() ([]byte, error) {
	var b checkpoint.Buf
	b.Uint8(deltaTag)
	b.Int64(int64(t.n))
	b.Bool(t.pending)
	putTime(&b, t.gap.last)
	for _, v := range t.prev {
		b.Float64(v)
	}
	for _, v := range t.cur {
		b.Float64(v)
	}
	return b.Bytes(), nil
}

// Restore implements Snapshotter.
func (t *deltaTransformer) Restore(data []byte) error {
	r := checkpoint.NewRBuf(data)
	if r.Uint8() != deltaTag {
		return ErrBadSnapshot
	}
	n := r.Int64()
	pending := r.Bool()
	last := getTime(r)
	var prev, cur [obd.NumPIDs]float64
	for i := range prev {
		prev[i] = r.Float64()
	}
	for i := range cur {
		cur[i] = r.Float64()
	}
	if err := r.Close(); err != nil {
		return err
	}
	if n < 0 {
		return ErrBadSnapshot
	}
	t.n = int(n)
	t.pending = pending
	t.gap.last = last
	t.prev = prev
	t.cur = cur
	return nil
}

// windowedSnapshot serialises the shared state shape of the windowed
// transformers (mean, histogram, spectral): the buffered records
// oldest-first plus the gap-guard clock.
func windowedSnapshot(tag uint8, win *timeseries.Window, last time.Time) ([]byte, error) {
	var b checkpoint.Buf
	b.Uint8(tag)
	putTime(&b, last)
	recs := win.Records()
	b.Int(len(recs))
	for _, rec := range recs {
		putRecord(&b, rec)
	}
	return b.Bytes(), nil
}

// windowedRestore rebuilds a windowedSnapshot by replaying the buffered
// records into the (freshly reset) window; ring rotation is not
// observable, so re-pushing oldest-first reproduces identical
// behaviour.
func windowedRestore(tag uint8, data []byte, win *timeseries.Window, last *time.Time) error {
	r := checkpoint.NewRBuf(data)
	if r.Uint8() != tag {
		return ErrBadSnapshot
	}
	gapLast := getTime(r)
	n := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if n < 0 {
		return ErrBadSnapshot
	}
	recs := make([]timeseries.Record, n)
	for i := range recs {
		recs[i] = getRecord(r)
	}
	if err := r.Close(); err != nil {
		return err
	}
	win.Reset()
	for _, rec := range recs {
		win.Push(rec)
	}
	*last = gapLast
	return nil
}

// Snapshot implements Snapshotter.
func (t *meanTransformer) Snapshot() ([]byte, error) {
	return windowedSnapshot(meanTag, t.win, t.gap.last)
}

// Restore implements Snapshotter.
func (t *meanTransformer) Restore(data []byte) error {
	return windowedRestore(meanTag, data, t.win, &t.gap.last)
}

// Snapshot implements Snapshotter.
func (t *histTransformer) Snapshot() ([]byte, error) {
	return windowedSnapshot(histTag, t.win, t.gap.last)
}

// Restore implements Snapshotter.
func (t *histTransformer) Restore(data []byte) error {
	return windowedRestore(histTag, data, t.win, &t.gap.last)
}

// Snapshot implements Snapshotter.
func (t *spectralTransformer) Snapshot() ([]byte, error) {
	return windowedSnapshot(spectralTag, t.win, t.gap.last)
}

// Restore implements Snapshotter.
func (t *spectralTransformer) Restore(data []byte) error {
	return windowedRestore(spectralTag, data, t.win, &t.gap.last)
}
