package transform

import (
	"testing"
	"time"

	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/timeseries"
)

// TestGapGuardResetsWindows verifies that windowed transformers refuse
// to correlate across trip gaps: a window interrupted by a >45-minute
// gap restarts instead of mixing two trips.
func TestGapGuardResetsWindows(t *testing.T) {
	for _, kind := range []Kind{Correlation, MeanAgg, Histogram, Spectral} {
		tr, err := New(kind, 8)
		if err != nil {
			t.Fatal(err)
		}
		// 7 records, one short of a full window.
		for i := 0; i < 7; i++ {
			tr.Collect(rec(i, valuesAt(float64(i))))
		}
		if tr.Ready() {
			t.Fatalf("%v: ready with 7 of 8 records", kind)
		}
		// The 8th record arrives two hours later: the window must reset,
		// so it is still not ready.
		late := timeseries.Record{VehicleID: "v1", Time: base.Add(2 * time.Hour), Values: valuesAt(7)}
		tr.Collect(late)
		if tr.Ready() {
			t.Errorf("%v: window bridged a 2-hour gap", kind)
		}
		// 7 more contiguous records after the gap complete a clean window.
		for i := 1; i <= 7; i++ {
			tr.Collect(timeseries.Record{VehicleID: "v1", Time: late.Time.Add(time.Duration(i) * time.Minute), Values: valuesAt(float64(i))})
		}
		if !tr.Ready() {
			t.Errorf("%v: contiguous post-gap records should fill the window", kind)
		}
	}
}

// TestGapGuardResetsDelta verifies the delta transformer never emits a
// difference across a long gap (e.g. an overnight coolant drop).
func TestGapGuardResetsDelta(t *testing.T) {
	tr, _ := New(Delta, 0)
	tr.Collect(rec(0, valuesAt(1)))
	tr.Collect(rec(1, valuesAt(2)))
	if !tr.Ready() {
		t.Fatal("delta should be ready after two contiguous records")
	}
	tr.Emit()
	// Overnight gap: the next record must NOT pair with the previous one.
	overnight := timeseries.Record{VehicleID: "v1", Time: base.Add(14 * time.Hour), Values: valuesAt(50)}
	tr.Collect(overnight)
	if tr.Ready() {
		t.Fatal("delta bridged an overnight gap")
	}
	tr.Collect(timeseries.Record{VehicleID: "v1", Time: overnight.Time.Add(time.Minute), Values: valuesAt(51)})
	if !tr.Ready() {
		t.Fatal("delta should resume after two post-gap records")
	}
	x := tr.Emit()
	// The difference reflects the post-gap pair (51-50), not (50-2).
	if got := x[obd.Speed]; got != valuesAt(51)[obd.Speed]-valuesAt(50)[obd.Speed] {
		t.Errorf("delta after gap = %v, want the post-gap difference", got)
	}
}

// TestResetClearsGapState verifies Reset also forgets the last-seen
// timestamp, so a fresh stream starting long after the old one is not
// treated as a gap.
func TestResetClearsGapState(t *testing.T) {
	tr, _ := New(Correlation, 4)
	tr.Collect(rec(0, valuesAt(1)))
	tr.Reset()
	// New stream 3 hours later: 4 contiguous records must fill.
	start := base.Add(3 * time.Hour)
	for i := 0; i < 4; i++ {
		tr.Collect(timeseries.Record{VehicleID: "v1", Time: start.Add(time.Duration(i) * time.Minute), Values: valuesAt(float64(i))})
	}
	if !tr.Ready() {
		t.Error("post-Reset stream should fill the window without a phantom gap")
	}
}

func valuesAt(x float64) [obd.NumPIDs]float64 {
	var v [obd.NumPIDs]float64
	v[obd.EngineRPM] = 1000 + 50*x
	v[obd.Speed] = 30 + x
	v[obd.CoolantTemp] = 88
	v[obd.IntakeTemp] = 25
	v[obd.MAPIntake] = 50 + x
	v[obd.MAFAirFlowRate] = 10 + 0.5*x
	return v
}
