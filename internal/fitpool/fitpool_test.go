package fitpool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRunCoversAllItems(t *testing.T) {
	defer SetWorkers(runtime.GOMAXPROCS(0))
	for _, w := range []int{1, 2, 8} {
		SetWorkers(w)
		for _, n := range []int{0, 1, 5, 100} {
			var hits atomic.Int64
			seen := make([]atomic.Bool, n+1)
			Run(n, 4, func(worker, item int) {
				hits.Add(1)
				if seen[item].Swap(true) {
					t.Errorf("workers=%d n=%d: item %d ran twice", w, n, item)
				}
			})
			if int(hits.Load()) != n {
				t.Fatalf("workers=%d n=%d: ran %d items", w, n, hits.Load())
			}
		}
	}
}

func TestRunWorkerIDsDense(t *testing.T) {
	defer SetWorkers(runtime.GOMAXPROCS(0))
	SetWorkers(8)
	var maxWorker atomic.Int64
	Run(64, 4, func(worker, item int) {
		for {
			cur := maxWorker.Load()
			if int64(worker) <= cur || maxWorker.CompareAndSwap(cur, int64(worker)) {
				return
			}
		}
	})
	if maxWorker.Load() >= 4 {
		t.Fatalf("worker id %d outside bound 4", maxWorker.Load())
	}
}

func TestNestedRunStaysSerial(t *testing.T) {
	defer SetWorkers(runtime.GOMAXPROCS(0))
	SetWorkers(1)
	// With one token held by an outer fit, the inner Run must not block
	// and must complete inline.
	Acquire()
	defer Release()
	done := 0
	Run(10, 10, func(worker, item int) {
		if worker != 0 {
			t.Errorf("helper goroutine spawned with no free tokens")
		}
		done++
	})
	if done != 10 {
		t.Fatalf("inline run completed %d/10 items", done)
	}
}

func TestTryAcquireBounded(t *testing.T) {
	defer SetWorkers(runtime.GOMAXPROCS(0))
	SetWorkers(2)
	if !TryAcquire() || !TryAcquire() {
		t.Fatal("could not take the two configured tokens")
	}
	if TryAcquire() {
		t.Fatal("third TryAcquire succeeded on a two-token pool")
	}
	Release()
	if !TryAcquire() {
		t.Fatal("token not reusable after Release")
	}
	Release()
	Release()
}
