// Package fitpool bounds the process-wide concurrency of model refits.
//
// Every subsystem that parallelises fitting — the fleet engine's
// asynchronous per-vehicle refits, the evaluation grid's per-vehicle
// detector fits, gbt's feature-parallel split search and regress's
// per-channel model training — draws workers from one GOMAXPROCS-sized
// token pool instead of spawning its own unbounded goroutines. That
// keeps a fleet engine refit from oversubscribing the machine when the
// evaluation grid is also running, and it makes nesting safe by
// construction: a parallel fit that was itself started from a pool
// worker finds no free tokens and simply runs serially inline, with
// zero goroutines spawned. On a single-CPU host every Run call
// degenerates to an inline loop.
//
// Determinism contract: Run hands work items to workers by an atomic
// counter, so *which* goroutine runs an item is scheduling-dependent —
// callers that need deterministic results must make each item's output
// independent of the worker that produced it (write to per-item slots,
// reduce in item order). Every caller in this repository follows that
// pattern; see DESIGN.md §11.
package fitpool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	mu      sync.Mutex
	tokens  chan struct{}
	workers int
)

func init() { SetWorkers(runtime.GOMAXPROCS(0)) }

// SetWorkers resizes the pool to n tokens (minimum 1). It is intended
// for process start-up and tests; resizing while fits are in flight
// redefines the bound only for subsequent acquisitions.
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	mu.Lock()
	defer mu.Unlock()
	workers = n
	tokens = make(chan struct{}, n)
	for i := 0; i < n; i++ {
		tokens <- struct{}{}
	}
}

// Workers returns the pool size.
func Workers() int {
	mu.Lock()
	defer mu.Unlock()
	return workers
}

func pool() chan struct{} {
	mu.Lock()
	defer mu.Unlock()
	return tokens
}

// Acquire blocks until a fit token is free. Pair with Release.
func Acquire() { <-pool() }

// Release returns a token taken by Acquire or TryAcquire.
func Release() { pool() <- struct{}{} }

// TryAcquire takes a token only if one is free.
func TryAcquire() bool {
	select {
	case <-pool():
		return true
	default:
		return false
	}
}

// Run executes fn(worker, item) for every item in [0, n), using the
// calling goroutine as worker 0 and up to bound-1 helper goroutines,
// each gated on a free pool token. Items are handed out by an atomic
// counter; worker ids are dense in [0, bound). Run returns when every
// item has completed. With bound <= 1, a single-item workload, or no
// free tokens, it is a plain inline loop.
func Run(n, bound int, fn func(worker, item int)) {
	if n <= 0 {
		return
	}
	if bound > n {
		bound = n
	}
	if bound <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	work := func(w int) {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(w, i)
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < bound; w++ {
		if !TryAcquire() {
			break
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer Release()
			work(id)
		}(w)
	}
	work(0)
	wg.Wait()
}
