package eval

import (
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"github.com/navarchos/pdm/internal/core"
	"github.com/navarchos/pdm/internal/fleetsim"
	"github.com/navarchos/pdm/internal/timeseries"
	"github.com/navarchos/pdm/internal/transform"
)

// cacheSpec is the shared grid configuration for the cache tests: two
// techniques (one self-tuning, one constant-threshold) over two
// transform kinds, including a per-record kind with a profile long
// enough to push Grand onto its tree-index path.
func cacheSpec(t *testing.T) GridSpec {
	t.Helper()
	f := fleetsim.Generate(fleetsim.SmallConfig())
	return GridSpec{
		Records: f.Records,
		Events:  f.Events,
		Settings: map[string][]string{
			"settingAll":    f.AllVehicleIDs(),
			"settingEvents": f.EventVehicleIDs(),
		},
		Techniques:      []Technique{ClosestPair, Grand},
		Transforms:      []transform.Kind{transform.Correlation, transform.Raw},
		PHs:             []time.Duration{15 * 24 * time.Hour, 30 * 24 * time.Hour},
		Factors:         []float64{2, 3, 6, 10},
		ConstThresholds: []float64{0.8, 0.9, 0.99},
		Window:          15,
		ProfileWindowed: 25,
		ProfileRaw:      300,
	}
}

func sortCells(cells []Cell) {
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.Technique != b.Technique {
			return a.Technique < b.Technique
		}
		if a.Transform != b.Transform {
			return a.Transform < b.Transform
		}
		if a.PH != b.PH {
			return a.PH < b.PH
		}
		return a.Setting < b.Setting
	})
}

// TestRunGridCachedMatchesReference is the tentpole contract: the
// transform-once cached grid must produce byte-identical cells (metrics
// and winning parameters, to exact float equality) to the pre-cache
// implementation that re-transforms per technique.
func TestRunGridCachedMatchesReference(t *testing.T) {
	spec := cacheSpec(t)

	ref, err := RunGridReference(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunGrid(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(ref.Cells) {
		t.Fatalf("cell count %d vs reference %d", len(got.Cells), len(ref.Cells))
	}
	sortCells(ref.Cells)
	sortCells(got.Cells)
	for i := range ref.Cells {
		if !reflect.DeepEqual(ref.Cells[i], got.Cells[i]) {
			t.Errorf("cell %d differs:\n  cached:    %+v\n  reference: %+v", i, got.Cells[i], ref.Cells[i])
		}
	}

	// The timing split must be recorded and sum back into the
	// backward-compatible totals.
	if len(got.TransformTiming) != len(spec.Transforms) {
		t.Errorf("TransformTiming entries = %d, want %d", len(got.TransformTiming), len(spec.Transforms))
	}
	for key, total := range got.Timing {
		want := got.TransformTiming[key.Transform] + got.ScoreTiming[key]
		if total != want {
			t.Errorf("Timing[%v] = %v, want TransformTiming+ScoreTiming = %v", key, total, want)
		}
	}
}

// countingTransformer wraps a real transformer and counts constructions
// and Collect calls through shared atomic counters.
type countingTransformer struct {
	transform.Transformer
	collects *atomic.Int64
}

func (c *countingTransformer) Collect(r timeseries.Record) {
	c.collects.Add(1)
	c.Transformer.Collect(r)
}

// TestRunGridTransformOnce verifies the cache's core claim: each
// (transform kind, vehicle) stream is materialised exactly once no
// matter how many techniques consume it.
func TestRunGridTransformOnce(t *testing.T) {
	spec := cacheSpec(t)
	var constructions, collects atomic.Int64
	spec.NewTransformer = func(kind transform.Kind, window int) (transform.Transformer, error) {
		inner, err := transform.New(kind, window)
		if err != nil {
			return nil, err
		}
		constructions.Add(1)
		return &countingTransformer{Transformer: inner, collects: &collects}, nil
	}

	if _, err := RunGrid(spec); err != nil {
		t.Fatal(err)
	}
	vehicles, err := spec.vehicleUnion()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len(spec.Transforms) * len(vehicles))
	if constructions.Load() != want {
		t.Errorf("transformer constructions = %d, want %d (kinds × vehicles, independent of %d techniques)",
			constructions.Load(), want, len(spec.Techniques))
	}
	firstCollects := collects.Load()
	if firstCollects == 0 {
		t.Fatal("counting transformer saw no records")
	}

	// Doubling the technique count must not add a single Collect call.
	constructions.Store(0)
	collects.Store(0)
	spec.Techniques = []Technique{ClosestPair, ClosestPair, Grand, Grand}
	if _, err := RunGrid(spec); err != nil {
		t.Fatal(err)
	}
	if constructions.Load() != want {
		t.Errorf("constructions with 4 techniques = %d, want %d", constructions.Load(), want)
	}
	if collects.Load() != firstCollects {
		t.Errorf("Collect calls changed with technique count: %d vs %d", collects.Load(), firstCollects)
	}
}

// TestRunGridParallelSweep exercises the concurrent sweep and detect
// fan-out under forced parallelism (the -race build of this test is the
// sweep's data-race gate, wired into make ci).
func TestRunGridParallelSweep(t *testing.T) {
	spec := cacheSpec(t)
	spec.Parallelism = 8
	spec.Factors = []float64{1, 2, 3, 4, 5, 6, 7, 8, 10, 14, 20}
	res, err := RunGrid(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(spec.Techniques)*len(spec.Transforms)*len(spec.PHs)*len(spec.Settings) {
		t.Fatalf("unexpected cell count %d", len(res.Cells))
	}
	seq, err := RunGridReference(spec)
	if err != nil {
		t.Fatal(err)
	}
	sortCells(res.Cells)
	sortCells(seq.Cells)
	if !reflect.DeepEqual(res.Cells, seq.Cells) {
		t.Error("parallel sweep cells differ from sequential reference")
	}
}

// syntheticTraces builds a small trace set directly (no detectors) for
// the sweep-replay allocation test.
func syntheticTraces(vehicles, samples, channels int) []vehicleTrace {
	base := time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)
	out := make([]vehicleTrace, vehicles)
	for v := range out {
		tr := &core.Trace{
			SegCalib: []core.Calib{{
				Means: make([]float64, channels),
				Stds:  make([]float64, channels),
			}},
		}
		for c := 0; c < channels; c++ {
			tr.SegCalib[0].Means[c] = 0.2 * float64(c+1)
			tr.SegCalib[0].Stds[c] = 0.05
		}
		for i := 0; i < samples; i++ {
			scores := make([]float64, channels)
			for c := range scores {
				scores[c] = 0.2*float64(c+1) + 0.01*float64(i%7)
			}
			tr.Times = append(tr.Times, base.Add(time.Duration(i)*time.Minute))
			tr.Scores = append(tr.Scores, scores)
			tr.Segments = append(tr.Segments, 0)
		}
		out[v] = vehicleTrace{vehicleID: "veh", trace: tr}
	}
	return out
}

// TestSweepReplayZeroAlloc pins the restructured sweep inner loop: with
// the ring and alarm buffer reused and the floored stds precomputed, a
// replay pass that raises no alarms must not allocate at all, and an
// alarm-raising pass must match replayAlarmsDensity exactly.
func TestSweepReplayZeroAlloc(t *testing.T) {
	traces := syntheticTraces(3, 500, 4)
	const absFloor = 0.01
	segSD := precomputeSegSD(traces, absFloor)
	rep := newSweepReplayer(traces, segSD, false, 5, 15)

	// Equivalence at an alarm-raising parameter.
	for _, param := range []float64{0.0, 0.5, 3} {
		want := replayAlarmsDensity(traces, param, false, 5, 15, absFloor)
		got := rep.replay(param)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("param %v: replayer diverges from replayAlarmsDensity (%d vs %d alarms)",
				param, len(got), len(want))
		}
	}
	if len(rep.replay(0)) == 0 {
		t.Fatal("expected alarms at param 0; synthetic traces too quiet for the test to mean anything")
	}

	allocs := testing.AllocsPerRun(100, func() {
		rep.replay(1e18) // beyond every score: zero alarms
	})
	if allocs != 0 {
		t.Errorf("sweep replay allocated %.1f times per run, want 0", allocs)
	}

	// Constant-threshold path, same contract.
	crep := newSweepReplayer(traces, nil, true, 5, 15)
	want := replayAlarmsDensity(traces, 0.3, true, 5, 15, 0)
	if got := crep.replay(0.3); !reflect.DeepEqual(want, got) {
		t.Errorf("constant path diverges (%d vs %d alarms)", len(got), len(want))
	}
	allocs = testing.AllocsPerRun(100, func() {
		crep.replay(1e18)
	})
	if allocs != 0 {
		t.Errorf("constant sweep replay allocated %.1f times per run, want 0", allocs)
	}
}
