package eval

import (
	"fmt"

	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/detector/closestpair"
	"github.com/navarchos/pdm/internal/detector/grand"
	"github.com/navarchos/pdm/internal/detector/isoforest"
	"github.com/navarchos/pdm/internal/detector/mlp"
	"github.com/navarchos/pdm/internal/detector/regress"
	"github.com/navarchos/pdm/internal/detector/tranad"
	"github.com/navarchos/pdm/internal/gbt"
	"github.com/navarchos/pdm/internal/iforest"
)

// Technique enumerates the four step-3 techniques the paper compares.
type Technique int

const (
	// ClosestPair is the similarity-based per-feature nearest-value
	// detector (Section 3.3).
	ClosestPair Technique = iota
	// Grand is the conformal/martingale detector (Section 3.4).
	Grand
	// TranAD is the transformer reconstruction detector (Section 3.5).
	TranAD
	// XGBoost is the per-feature gradient-boosted regression detector
	// (Section 3.6).
	XGBoost
	// IsolationForest is the related-work baseline of Khan et al. 2019
	// (not part of the paper's grid; an extension of this repository).
	IsolationForest
	// MLP is the engine-load-regression baseline of Massaro et al. 2020
	// (related work; extension).
	MLP
)

// String implements fmt.Stringer, matching the paper's labels.
func (t Technique) String() string {
	switch t {
	case ClosestPair:
		return "closest-pair"
	case Grand:
		return "grand"
	case TranAD:
		return "tranad"
	case XGBoost:
		return "xgboost"
	case IsolationForest:
		return "isolation-forest"
	case MLP:
		return "mlp"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// PaperTechniques returns the four techniques in presentation order.
func PaperTechniques() []Technique { return []Technique{ClosestPair, Grand, TranAD, XGBoost} }

// ExtensionTechniques returns the related-work baselines implemented
// beyond the paper's grid.
func ExtensionTechniques() []Technique { return []Technique{IsolationForest, MLP} }

// UsesConstantThreshold reports whether the technique's score is
// normalised to [0, 1) and therefore thresholded with constants rather
// than the self-tuning factor (Grand per the paper's Section 4;
// isolation forest's score is likewise bounded).
func (t Technique) UsesConstantThreshold() bool { return t == Grand || t == IsolationForest }

// NewBaselineDetector builds the technique with its pre-optimisation
// kernels where the repository keeps one: Grand's brute-force index and
// linear p-value scan, TranAD's allocate-per-call training loop and
// XGBoost's exact (non-histogram) split search. Hyper-parameters match
// NewDetector exactly — only the fit/score kernels differ, and for
// Grand/TranAD the scores are bit-identical, while XGBoost's histogram
// trees are structurally identical on discretised features. It is the
// reference leg of the throughput benchmarks (experiments.GridPerf and
// experiments.FitPerf) and of the grid cell-equivalence gate, so the
// measured speedup is against the code as it stood before the kernel
// work.
func NewBaselineDetector(t Technique, featureNames []string, seed int64) (detector.Detector, error) {
	switch t {
	case Grand:
		return grand.New(grand.Config{Measure: grand.KNN, LegacyKernels: true}), nil
	case TranAD:
		return tranad.New(tranad.Config{
			Window:           8,
			DModel:           12,
			Heads:            2,
			Epochs:           5,
			MaxWindows:       256,
			Seed:             seed,
			LegacyFitKernels: true,
		}), nil
	case XGBoost:
		return regress.New(featureNames, gbt.Config{
			NumTrees:         25,
			MaxDepth:         3,
			Seed:             seed,
			LegacyFitKernels: true,
		}), nil
	default:
		return NewDetector(t, featureNames, seed)
	}
}

// NewFullWindowDetector builds the technique with the current fit
// kernels but, for TranAD, the full-window scratch scorer (the scoring
// hot path as it stood before the last-row rewrite) instead of the
// default last-row scorer. It is the reference leg of the scoring-path
// equivalence gate (experiments.ScorePerf); both scorers are
// bit-identical by construction, so cells must match everywhere.
func NewFullWindowDetector(t Technique, featureNames []string, seed int64) (detector.Detector, error) {
	if t != TranAD {
		return NewDetector(t, featureNames, seed)
	}
	return tranad.New(tranad.Config{
		Window:          8,
		DModel:          12,
		Heads:           2,
		Epochs:          5,
		MaxWindows:      256,
		Seed:            seed,
		FullWindowScore: true,
	}), nil
}

// NewDetector builds a fresh detector instance for the technique.
// featureNames labels per-feature channels; seed makes the trainable
// techniques deterministic. The default hyper-parameters are sized for
// the benchmark-scale fleet so that the full grid runs in minutes.
func NewDetector(t Technique, featureNames []string, seed int64) (detector.Detector, error) {
	switch t {
	case ClosestPair:
		return closestpair.New(featureNames), nil
	case Grand:
		return grand.New(grand.Config{Measure: grand.KNN}), nil
	case TranAD:
		return tranad.New(tranad.Config{
			Window:     8,
			DModel:     12,
			Heads:      2,
			Epochs:     5,
			MaxWindows: 256,
			Seed:       seed,
		}), nil
	case XGBoost:
		return regress.New(featureNames, gbt.Config{
			NumTrees: 25,
			MaxDepth: 3,
			Seed:     seed,
		}), nil
	case IsolationForest:
		return isoforest.New(iforest.Config{Trees: 100, Seed: seed}), nil
	case MLP:
		// Predict the last feature from the rest (for the correlation
		// transform that is corr(mapIntake, MAFairFlowRate); for raw,
		// the MAF signal — close to Massaro et al.'s engine-load
		// target).
		name := "target"
		if n := len(featureNames); n > 0 {
			name = featureNames[n-1]
		}
		return mlp.New(mlp.Config{Epochs: 30, Seed: seed}, name), nil
	default:
		return nil, fmt.Errorf("eval: unknown technique %d", int(t))
	}
}
