// Package eval implements the paper's evaluation protocol (Section 4):
// prediction-horizon-based true/false-positive accounting, the F0.5
// headline metric, daily alarm consolidation, and the grid runner that
// sweeps technique × transformation × threshold × setting and reproduces
// Figures 4–7 and Tables 1–3.
package eval

import (
	"time"

	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/obd"
)

// Metrics aggregates detection quality over a set of vehicles.
type Metrics struct {
	TP            int // failures with at least one alarm inside PH
	FP            int // alarms (after consolidation) outside every PH
	TotalFailures int

	Precision float64
	Recall    float64
	F1        float64
	F05       float64
}

// FBeta computes the Fβ score from precision and recall (0 when both are
// 0).
func FBeta(precision, recall, beta float64) float64 {
	b2 := beta * beta
	den := b2*precision + recall
	if den == 0 {
		return 0
	}
	return (1 + b2) * precision * recall / den
}

// Evaluate scores alarms against recorded failures using the paper's
// protocol: a prediction horizon PH ends at each repair event; one or
// more alarms inside a failure's PH count as a single true positive, and
// every alarm outside every PH counts as one false positive. Alarms and
// failures are matched per vehicle. Callers normally consolidate alarms
// (see ConsolidateDaily) first, mirroring the day-level alarm row at the
// bottom of the paper's Figure 8.
func Evaluate(alarms []detector.Alarm, failures []obd.Event, ph time.Duration) Metrics {
	failuresByVehicle := map[string][]time.Time{}
	for _, ev := range failures {
		if ev.Type == obd.EventRepair {
			failuresByVehicle[ev.VehicleID] = append(failuresByVehicle[ev.VehicleID], ev.Time)
		}
	}
	var m Metrics
	for _, fs := range failuresByVehicle {
		m.TotalFailures += len(fs)
	}
	detected := map[string]map[int]bool{}
	for _, a := range alarms {
		fs := failuresByVehicle[a.VehicleID]
		hit := -1
		for i, ft := range fs {
			if !a.Time.After(ft) && a.Time.After(ft.Add(-ph)) {
				hit = i
				break
			}
		}
		if hit < 0 {
			m.FP++
			continue
		}
		if detected[a.VehicleID] == nil {
			detected[a.VehicleID] = map[int]bool{}
		}
		detected[a.VehicleID][hit] = true
	}
	for _, hits := range detected {
		m.TP += len(hits)
	}
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if m.TotalFailures > 0 {
		m.Recall = float64(m.TP) / float64(m.TotalFailures)
	}
	m.F1 = FBeta(m.Precision, m.Recall, 1)
	m.F05 = FBeta(m.Precision, m.Recall, 0.5)
	return m
}

// ConsolidateDaily collapses alarms to at most one per vehicle per UTC
// day, keeping the first. Streaming detectors can fire on many
// consecutive samples for one behavioural change; operationally (and in
// the paper's Figure 8) those are one day-level alert.
func ConsolidateDaily(alarms []detector.Alarm) []detector.Alarm {
	type key struct {
		vehicle string
		day     int64
	}
	seen := map[key]bool{}
	var out []detector.Alarm
	for _, a := range alarms {
		k := key{a.VehicleID, a.Time.UTC().Truncate(24 * time.Hour).Unix()}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, a)
	}
	return out
}

// FilterByVehicles keeps only alarms from the given vehicle set.
func FilterByVehicles(alarms []detector.Alarm, vehicles []string) []detector.Alarm {
	keep := map[string]bool{}
	for _, v := range vehicles {
		keep[v] = true
	}
	var out []detector.Alarm
	for _, a := range alarms {
		if keep[a.VehicleID] {
			out = append(out, a)
		}
	}
	return out
}

// FilterEventsByVehicles keeps only events from the given vehicle set.
func FilterEventsByVehicles(events []obd.Event, vehicles []string) []obd.Event {
	keep := map[string]bool{}
	for _, v := range vehicles {
		keep[v] = true
	}
	var out []obd.Event
	for _, ev := range events {
		if keep[ev.VehicleID] {
			out = append(out, ev)
		}
	}
	return out
}
