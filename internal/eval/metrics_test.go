package eval

import (
	"math"
	"testing"
	"time"

	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/obd"
)

var base = time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)

const day = 24 * time.Hour

func alarm(vehicle string, daysIn float64) detector.Alarm {
	return detector.Alarm{VehicleID: vehicle, Time: base.Add(time.Duration(daysIn * float64(day)))}
}

func failure(vehicle string, daysIn float64) obd.Event {
	return obd.Event{VehicleID: vehicle, Time: base.Add(time.Duration(daysIn * float64(day))), Type: obd.EventRepair}
}

func TestFBeta(t *testing.T) {
	if got := FBeta(0, 0, 0.5); got != 0 {
		t.Errorf("FBeta(0,0) = %v", got)
	}
	// Paper's headline: P=0.78, R=0.44 → F0.5 ≈ 0.68.
	got := FBeta(0.78, 0.44, 0.5)
	if math.Abs(got-0.68) > 0.01 {
		t.Errorf("F0.5(0.78, 0.44) = %v, want ≈ 0.68", got)
	}
	// F1 is symmetric in P and R.
	if FBeta(0.3, 0.7, 1) != FBeta(0.7, 0.3, 1) {
		t.Error("F1 should be symmetric")
	}
	// F0.5 weighs precision more: raising precision helps more than
	// raising recall by the same amount.
	if FBeta(0.8, 0.4, 0.5) <= FBeta(0.4, 0.8, 0.5) {
		t.Error("F0.5 should favour precision")
	}
}

func TestEvaluateBasicTPFP(t *testing.T) {
	failures := []obd.Event{failure("v1", 100)}
	// Two alarms inside PH=30d (one TP total), one outside (FP).
	alarms := []detector.Alarm{
		alarm("v1", 80),
		alarm("v1", 95),
		alarm("v1", 20),
	}
	m := Evaluate(alarms, failures, 30*day)
	if m.TP != 1 || m.FP != 1 || m.TotalFailures != 1 {
		t.Fatalf("TP=%d FP=%d total=%d", m.TP, m.FP, m.TotalFailures)
	}
	if m.Precision != 0.5 || m.Recall != 1 {
		t.Errorf("P=%v R=%v", m.Precision, m.Recall)
	}
	if math.Abs(m.F05-(1.25*0.5*1)/(0.25*0.5+1)) > 1e-12 {
		t.Errorf("F05 = %v", m.F05)
	}
}

func TestEvaluatePHBoundary(t *testing.T) {
	failures := []obd.Event{failure("v1", 100)}
	// Exactly PH days before: inside (interval is (failure-PH, failure]).
	m := Evaluate([]detector.Alarm{alarm("v1", 70.001)}, failures, 30*day)
	if m.TP != 1 {
		t.Errorf("alarm just inside PH not counted: %+v", m)
	}
	// Exactly at the failure time: inside.
	m = Evaluate([]detector.Alarm{alarm("v1", 100)}, failures, 30*day)
	if m.TP != 1 {
		t.Errorf("alarm at failure time not counted: %+v", m)
	}
	// After the failure: FP.
	m = Evaluate([]detector.Alarm{alarm("v1", 100.5)}, failures, 30*day)
	if m.TP != 0 || m.FP != 1 {
		t.Errorf("alarm after failure should be FP: %+v", m)
	}
	// Way before: FP.
	m = Evaluate([]detector.Alarm{alarm("v1", 60)}, failures, 30*day)
	if m.FP != 1 {
		t.Errorf("alarm before PH should be FP: %+v", m)
	}
}

func TestEvaluatePerVehicleMatching(t *testing.T) {
	failures := []obd.Event{failure("v1", 50), failure("v2", 50)}
	// v1's alarm must not detect v2's failure.
	m := Evaluate([]detector.Alarm{alarm("v1", 45)}, failures, 30*day)
	if m.TP != 1 || m.TotalFailures != 2 {
		t.Fatalf("TP=%d total=%d", m.TP, m.TotalFailures)
	}
	if m.Recall != 0.5 {
		t.Errorf("recall = %v, want 0.5", m.Recall)
	}
}

func TestEvaluateMultipleFailuresSameVehicle(t *testing.T) {
	failures := []obd.Event{failure("v1", 50), failure("v1", 200)}
	alarms := []detector.Alarm{
		alarm("v1", 45),  // inside first PH
		alarm("v1", 190), // inside second PH
		alarm("v1", 120), // between failures: FP
	}
	m := Evaluate(alarms, failures, 30*day)
	if m.TP != 2 || m.FP != 1 {
		t.Errorf("TP=%d FP=%d, want 2, 1", m.TP, m.FP)
	}
	if m.Recall != 1 {
		t.Errorf("recall = %v", m.Recall)
	}
}

func TestEvaluateNonRepairEventsIgnored(t *testing.T) {
	events := []obd.Event{
		{VehicleID: "v1", Time: base.Add(50 * day), Type: obd.EventService},
		failure("v1", 100),
	}
	m := Evaluate([]detector.Alarm{alarm("v1", 45)}, events, 30*day)
	// The alarm is not within 30d of the repair; the service must not
	// count as a failure.
	if m.TotalFailures != 1 || m.TP != 0 || m.FP != 1 {
		t.Errorf("%+v", m)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	m := Evaluate(nil, nil, 30*day)
	if m.TP != 0 || m.FP != 0 || m.Precision != 0 || m.Recall != 0 || m.F05 != 0 {
		t.Errorf("empty evaluation = %+v", m)
	}
}

func TestConsolidateDaily(t *testing.T) {
	alarms := []detector.Alarm{
		alarm("v1", 10.1),
		alarm("v1", 10.5), // same vehicle, same day -> dropped
		alarm("v1", 11.1),
		alarm("v2", 10.2), // different vehicle -> kept
	}
	got := ConsolidateDaily(alarms)
	if len(got) != 3 {
		t.Fatalf("consolidated to %d alarms, want 3", len(got))
	}
	// First alarm of the day wins.
	if !got[0].Time.Equal(alarms[0].Time) {
		t.Error("should keep the first alarm of the day")
	}
}

func TestFilters(t *testing.T) {
	alarms := []detector.Alarm{alarm("v1", 1), alarm("v2", 2)}
	got := FilterByVehicles(alarms, []string{"v2"})
	if len(got) != 1 || got[0].VehicleID != "v2" {
		t.Errorf("FilterByVehicles = %v", got)
	}
	events := []obd.Event{failure("v1", 1), failure("v3", 2)}
	gotE := FilterEventsByVehicles(events, []string{"v3"})
	if len(gotE) != 1 || gotE[0].VehicleID != "v3" {
		t.Errorf("FilterEventsByVehicles = %v", gotE)
	}
}
