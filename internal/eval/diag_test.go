package eval

import (
	"fmt"
	"testing"
	"time"

	"github.com/navarchos/pdm/internal/core"
	"github.com/navarchos/pdm/internal/fleetsim"
	"github.com/navarchos/pdm/internal/thresholds"
	"github.com/navarchos/pdm/internal/timeseries"
	"github.com/navarchos/pdm/internal/transform"
)

// TestDiagnoseAlarmDistribution is a diagnostic aid, normally skipped;
// run with -run TestDiagnoseAlarmDistribution -v to inspect where
// closest-pair/correlation alarms fall relative to ground truth.
func TestDiagnoseAlarmDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	cfg := fleetsim.SmallConfig()
	f := fleetsim.Generate(cfg)
	byVehicle := timeseries.SplitByVehicle(f.Records)
	for i := range f.Vehicles {
		v := &f.Vehicles[i]
		if !v.Recorded {
			continue
		}
		tr := &core.Trace{}
		makeCfg := func() core.Config {
			tt, _ := transform.New(transform.Correlation, 15)
			det, _ := NewDetector(ClosestPair, tt.FeatureNames(), 1)
			return core.Config{
				Transformer: tt, Detector: det,
				Thresholder: thresholds.NewSelfTuning(3), ProfileLength: 25, Trace: tr,
			}
		}
		if _, err := core.RunVehicle(v.ID, byVehicle[v.ID], f.Events, makeCfg); err != nil {
			t.Fatal(err)
		}
		alarms := replayAlarms([]vehicleTrace{{v.ID, tr}}, 6, false)
		alarms = ConsolidateDaily(alarms)
		var days []string
		for _, a := range alarms {
			days = append(days, fmt.Sprintf("%d", int(a.Time.Sub(cfg.Start).Hours()/24)))
		}
		t.Logf("%s fault=%v failDay=%d drift=%d segs=%d scored=%d alarmDays=%v",
			v.ID, v.Fault, v.FailureDay, v.DriftDay, len(tr.SegCalib), len(tr.Times), days)
		_ = time.Hour
	}
}
