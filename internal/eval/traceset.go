package eval

import (
	"time"

	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/transform"
)

// TraceSet holds the score traces of one technique × transform across a
// vehicle set, enabling repeated threshold evaluations (Tables 2 and 3)
// without re-running the detectors.
type TraceSet struct {
	spec   GridSpec
	tech   Technique
	kind   transform.Kind
	traces []vehicleTrace
}

// CollectTraceSet runs the technique × transform over every vehicle in
// the union of spec.Settings and returns the score traces.
func CollectTraceSet(spec GridSpec, tech Technique, kind transform.Kind) (*TraceSet, error) {
	spec.defaults()
	union := map[string]bool{}
	for _, vs := range spec.Settings {
		for _, v := range vs {
			union[v] = true
		}
	}
	vehicles := make([]string, 0, len(union))
	for v := range union {
		vehicles = append(vehicles, v)
	}
	traces, err := collectTraces(&spec, tech, kind, vehicles)
	if err != nil {
		return nil, err
	}
	return &TraceSet{spec: spec, tech: tech, kind: kind, traces: traces}, nil
}

// Alarms replays the traces under one threshold parameter, applying the
// spec's density persistence, the transform's absolute floor, and daily
// consolidation.
func (ts *TraceSet) Alarms(param float64) []detector.Alarm {
	alarms := replayAlarmsDensity(ts.traces, param, ts.tech.UsesConstantThreshold(),
		ts.spec.DensityM, ts.spec.DensityK, absFloorFor(ts.spec.AbsFloor, ts.kind))
	return ConsolidateDaily(alarms)
}

// Evaluate scores one threshold parameter against the recorded failures
// of the given vehicle subset at the given prediction horizon.
func (ts *TraceSet) Evaluate(param float64, vehicles []string, ph time.Duration) Metrics {
	alarms := FilterByVehicles(ts.Alarms(param), vehicles)
	failures := FilterEventsByVehicles(ts.spec.Events, vehicles)
	return Evaluate(alarms, failures, ph)
}

// BestJointParam returns the sweep parameter maximising the mean F0.5
// across all (setting, PH) combinations — the paper's Table 2 uses "the
// same method parameters for all depicted results".
func (ts *TraceSet) BestJointParam() (float64, []Metrics) {
	sweep := ts.spec.Factors
	if ts.tech.UsesConstantThreshold() {
		sweep = ts.spec.ConstThresholds
	}
	bestParam := sweep[0]
	var bestMean float64 = -1
	var bestMetrics []Metrics
	for _, p := range sweep {
		var sum float64
		var all []Metrics
		for _, vehicles := range ts.spec.Settings {
			for _, ph := range ts.spec.PHs {
				m := ts.Evaluate(p, vehicles, ph)
				sum += m.F05
				all = append(all, m)
			}
		}
		if sum > bestMean {
			bestMean = sum
			bestParam = p
			bestMetrics = all
		}
	}
	return bestParam, bestMetrics
}

// Failures returns the recorded repair events among the given vehicles.
func (ts *TraceSet) Failures(vehicles []string) []obd.Event {
	var out []obd.Event
	for _, ev := range FilterEventsByVehicles(ts.spec.Events, vehicles) {
		if ev.Type == obd.EventRepair {
			out = append(out, ev)
		}
	}
	return out
}
