package eval

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/navarchos/pdm/internal/core"
	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/fitpool"
	"github.com/navarchos/pdm/internal/fleet"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/thresholds"
	"github.com/navarchos/pdm/internal/timeseries"
	"github.com/navarchos/pdm/internal/transform"
)

// GridSpec describes a full comparative evaluation over technique ×
// transformation × prediction horizon × setting, with a threshold sweep
// per cell (the paper's Figures 4 and 5 protocol).
type GridSpec struct {
	Records []timeseries.Record
	Events  []obd.Event

	// Settings maps a setting name ("setting40", "setting26") to the
	// vehicle IDs it evaluates.
	Settings map[string][]string

	Techniques []Technique
	Transforms []transform.Kind
	PHs        []time.Duration

	// Factors is the self-tuning threshold sweep (closest-pair, TranAD,
	// XGBoost).
	Factors []float64
	// ConstThresholds is the constant-threshold sweep for Grand's
	// bounded deviation score.
	ConstThresholds []float64

	// Window is the tumbling-window length (records) for windowed
	// transforms.
	Window int
	// ProfileWindowed / ProfileRaw are Ref sizes in transformed samples
	// for windowed and per-record transforms respectively.
	ProfileWindowed int
	ProfileRaw      int

	// DensityM / DensityK implement density-based alarm persistence: an
	// alarm fires when at least M of the last K scored samples violate
	// their thresholds (defaults 4 of 12). Degradation preceding a
	// failure violates frequently but not strictly consecutively —
	// windows alternate between ride regimes with different fault
	// visibility — while healthy excursions are isolated; a density
	// criterion separates the two where strict consecutive-run rules
	// fail both.
	DensityM int
	DensityK int

	// AbsFloor is an absolute per-unit-of-factor floor added under the
	// calibration std when replaying self-tuning thresholds, i.e.
	// threshold = mean + factor·max(std, floors..., AbsFloor). For
	// bounded feature spaces (correlations in [-1, 1]) it encodes the
	// minimum deviation considered physically meaningful; 0 disables it.
	// When negative or unset it defaults per transform kind (0.01 for
	// correlation/histogram/spectral, 0 otherwise).
	AbsFloor float64

	// NewTransformer overrides transformer construction when non-nil
	// (instrumentation and tests — e.g. counting how many streams are
	// materialised). The default is transform.New(kind, Window).
	NewTransformer func(kind transform.Kind, window int) (transform.Transformer, error)

	// NewDetector overrides detector construction when non-nil (the
	// grid-throughput benchmark's baseline leg swaps in pre-optimisation
	// kernels here). The default is the package-level NewDetector.
	NewDetector func(t Technique, featureNames []string, seed int64) (detector.Detector, error)

	ResetPolicy core.ResetPolicy
	Seed        int64
	// Parallelism caps concurrent per-vehicle runs (default: NumCPU).
	Parallelism int
}

func (s *GridSpec) defaults() {
	if len(s.Techniques) == 0 {
		s.Techniques = PaperTechniques()
	}
	if len(s.Transforms) == 0 {
		s.Transforms = transform.PaperKinds()
	}
	if len(s.PHs) == 0 {
		s.PHs = []time.Duration{15 * 24 * time.Hour, 30 * 24 * time.Hour}
	}
	if len(s.Factors) == 0 {
		s.Factors = []float64{2, 3, 4, 5, 7, 10, 14, 20, 28, 40, 60}
	}
	if len(s.ConstThresholds) == 0 {
		s.ConstThresholds = []float64{0.6, 0.8, 0.9, 0.95, 0.99, 0.999}
	}
	if s.Window <= 0 {
		s.Window = 12
	}
	if s.ProfileWindowed <= 0 {
		s.ProfileWindowed = 45
	}
	if s.ProfileRaw <= 0 {
		s.ProfileRaw = 900
	}
	if s.DensityM <= 0 {
		s.DensityM = 5
	}
	if s.DensityK < s.DensityM {
		s.DensityK = 15
		if s.DensityK < s.DensityM {
			s.DensityK = s.DensityM
		}
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Parallelism <= 0 {
		s.Parallelism = runtime.NumCPU()
	}
}

// profileFor returns the Ref size for a transform kind.
func (s *GridSpec) profileFor(k transform.Kind) int {
	switch k {
	case transform.Raw, transform.Delta:
		return s.ProfileRaw
	default:
		return s.ProfileWindowed
	}
}

// newDetector builds one detector instance for a technique.
func (s *GridSpec) newDetector(t Technique, featureNames []string) (detector.Detector, error) {
	if s.NewDetector != nil {
		return s.NewDetector(t, featureNames, s.Seed)
	}
	return NewDetector(t, featureNames, s.Seed)
}

// newTransformer builds one transformer instance for a kind.
func (s *GridSpec) newTransformer(kind transform.Kind) (transform.Transformer, error) {
	if s.NewTransformer != nil {
		return s.NewTransformer(kind, s.Window)
	}
	return transform.New(kind, s.Window)
}

// vehicleUnion returns the sorted union of all settings' vehicles.
func (s *GridSpec) vehicleUnion() ([]string, error) {
	union := map[string]bool{}
	for _, vs := range s.Settings {
		for _, v := range vs {
			union[v] = true
		}
	}
	if len(union) == 0 {
		return nil, fmt.Errorf("eval: RunGrid: no vehicles in any setting")
	}
	vehicles := make([]string, 0, len(union))
	for v := range union {
		vehicles = append(vehicles, v)
	}
	sort.Strings(vehicles)
	return vehicles, nil
}

// Cell is one bar of Figures 4/5: the best threshold's metrics for a
// (technique, transform, PH, setting) combination.
type Cell struct {
	Technique Technique
	Transform transform.Kind
	PH        time.Duration
	Setting   string
	Best      Metrics
	BestParam float64 // the winning threshold factor / constant
}

// TimingKey identifies a technique × transform timing entry (Table 1).
type TimingKey struct {
	Technique Technique
	Transform transform.Kind
}

// GridResult is the full outcome of RunGrid.
type GridResult struct {
	Cells []Cell
	// Timing holds the wall-clock duration of the full scoring pass
	// (all vehicles, transform + fit + score) per technique × transform
	// — the repository's Table 1 equivalent. With the transform-once
	// cache, each entry is TransformTiming[kind] + ScoreTiming[key], so
	// totals stay comparable across RunGrid and RunGridReference.
	Timing map[TimingKey]time.Duration
	// TransformTiming is the wall-clock duration of materialising every
	// vehicle's transformed stream once per transform kind.
	TransformTiming map[transform.Kind]time.Duration
	// ScoreTiming is the detect-only (fit + score over cached
	// transformed traces) duration per technique × transform.
	ScoreTiming map[TimingKey]time.Duration
}

// Cell returns the cell for the given coordinates, or nil.
func (g *GridResult) Cell(t Technique, k transform.Kind, ph time.Duration, setting string) *Cell {
	for i := range g.Cells {
		c := &g.Cells[i]
		if c.Technique == t && c.Transform == k && c.PH == ph && c.Setting == setting {
			return c
		}
	}
	return nil
}

// vehicleTrace pairs a vehicle with its scored trace.
type vehicleTrace struct {
	vehicleID string
	trace     *core.Trace
}

// vehicleTransformed pairs a vehicle with its cached transformed stream.
type vehicleTransformed struct {
	vehicleID string
	tt        *core.TransformedTrace
}

// RunGrid executes the full comparative grid in two stages. Stage one
// materialises every vehicle's transformed stream exactly once per
// transform kind on the sharded fleet engine (transformed samples plus
// profile-reset boundaries — all a detector ever sees). Stage two fans
// the techniques out over the cached traces with a worker pool, then
// replays the threshold sweep offline in parallel and keeps the
// best-F0.5 configuration per (PH, setting) cell — mirroring the paper's
// use of "multiple factors regarding the thresholding technique".
// Results are bit-identical to RunGridReference, which recomputes the
// transform for every technique.
func RunGrid(spec GridSpec) (*GridResult, error) {
	spec.defaults()
	vehicles, err := spec.vehicleUnion()
	if err != nil {
		return nil, err
	}

	result := &GridResult{
		Timing:          map[TimingKey]time.Duration{},
		TransformTiming: map[transform.Kind]time.Duration{},
		ScoreTiming:     map[TimingKey]time.Duration{},
	}

	// Stage 1: transform once per (kind, vehicle).
	cache := make(map[transform.Kind][]vehicleTransformed, len(spec.Transforms))
	names := make(map[transform.Kind][]string, len(spec.Transforms))
	for _, kind := range spec.Transforms {
		if _, done := cache[kind]; done {
			continue
		}
		start := time.Now()
		tts, err := collectTransformed(&spec, kind, vehicles)
		if err != nil {
			return nil, err
		}
		result.TransformTiming[kind] = time.Since(start)
		cache[kind] = tts
		// Feature names are metadata, not a stream pass: one throwaway
		// transformer, deliberately not via the NewTransformer hook.
		t, err := transform.New(kind, spec.Window)
		if err != nil {
			return nil, err
		}
		names[kind] = t.FeatureNames()
	}

	// Stage 2: detect per technique over the cached traces.
	for _, tech := range spec.Techniques {
		for _, kind := range spec.Transforms {
			start := time.Now()
			traces, err := detectTraces(&spec, tech, kind, names[kind], cache[kind])
			if err != nil {
				return nil, err
			}
			key := TimingKey{tech, kind}
			result.ScoreTiming[key] = time.Since(start)
			result.Timing[key] = result.TransformTiming[kind] + result.ScoreTiming[key]

			sweep := spec.Factors
			if tech.UsesConstantThreshold() {
				sweep = spec.ConstThresholds
			}
			cells, err := bestCells(&spec, tech, kind, traces, sweep, absFloorFor(spec.AbsFloor, kind))
			if err != nil {
				return nil, err
			}
			result.Cells = append(result.Cells, cells...)
		}
	}
	return result, nil
}

// RunGridReference is the pre-cache implementation kept as a correctness
// oracle and as the baseline leg of the grid-throughput benchmark: every
// technique × transform re-runs the full raw stream (transform included)
// through streaming pipelines. Cells are identical to RunGrid's up to
// ordering.
func RunGridReference(spec GridSpec) (*GridResult, error) {
	spec.defaults()
	vehicles, err := spec.vehicleUnion()
	if err != nil {
		return nil, err
	}

	result := &GridResult{Timing: map[TimingKey]time.Duration{}}
	for _, tech := range spec.Techniques {
		for _, kind := range spec.Transforms {
			start := time.Now()
			traces, err := collectTraces(&spec, tech, kind, vehicles)
			if err != nil {
				return nil, err
			}
			result.Timing[TimingKey{tech, kind}] = time.Since(start)

			sweep := spec.Factors
			if tech.UsesConstantThreshold() {
				sweep = spec.ConstThresholds
			}
			cells, err := bestCellsSequential(&spec, tech, kind, traces, sweep, absFloorFor(spec.AbsFloor, kind))
			if err != nil {
				return nil, err
			}
			result.Cells = append(result.Cells, cells...)
		}
	}
	return result, nil
}

// collectTransformed materialises every vehicle's transformed stream for
// one kind on a sharded fleet.Engine of core.TraceCollectors. This is
// the only pass over the raw records per transform kind; detectors
// replay the cached output.
func collectTransformed(spec *GridSpec, kind transform.Kind, vehicles []string) ([]vehicleTransformed, error) {
	out := make([]vehicleTransformed, len(vehicles))
	byID := make(map[string]*core.TransformedTrace, len(vehicles))
	for i, v := range vehicles {
		tt := &core.TransformedTrace{}
		out[i] = vehicleTransformed{vehicleID: v, tt: tt}
		byID[v] = tt
	}
	eng, err := fleet.NewEngine(fleet.Config{
		NewHandler: func(vehicleID string) (fleet.Handler, error) {
			tt, ok := byID[vehicleID]
			if !ok {
				return nil, fleet.ErrSkipVehicle
			}
			t, err := spec.newTransformer(kind)
			if err != nil {
				return nil, err
			}
			wf := timeseries.NewWarmupFilter(5, 20*time.Minute)
			return core.NewTraceCollector(vehicleID, core.TransformConfig{
				Transformer: t,
				Filter:      wf.Keep,
				FilterState: wf,
				ResetPolicy: spec.ResetPolicy,
			}, tt)
		},
		Shards:     spec.Parallelism,
		DropAlarms: true,
	})
	if err != nil {
		return nil, err
	}
	if err := eng.Replay(spec.Records, spec.Events); err != nil {
		eng.Close()
		return nil, err
	}
	if err := eng.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// detectTraces replays one technique's detector over every vehicle's
// cached transformed trace, fanning the per-vehicle fits across the
// process-wide fitpool (bounded additionally by spec.Parallelism).
// Vehicles are independent: each fit gets its own detector instance,
// results and errors land in per-vehicle slots, and the cached sample
// slices are shared read-only (detectors never mutate their input or
// reference rows) — so the outcome is worker-count independent.
func detectTraces(spec *GridSpec, tech Technique, kind transform.Kind, featureNames []string, tts []vehicleTransformed) ([]vehicleTrace, error) {
	traces := make([]vehicleTrace, len(tts))
	errs := make([]error, len(tts))
	bound := spec.Parallelism
	if bound < 1 {
		bound = 1
	}
	fitpool.Run(len(tts), bound, func(_, i int) {
		vt := tts[i]
		tr := &core.Trace{}
		det, err := spec.newDetector(tech, featureNames)
		if err == nil {
			err = core.DetectOnTrace(vt.vehicleID, vt.tt, core.DetectConfig{
				Detector:      det,
				Thresholder:   thresholds.NewSelfTuning(3), // placeholder; sweep is replayed offline
				ProfileLength: spec.profileFor(kind),
				Trace:         tr,
			})
		}
		if err != nil {
			errs[i] = fmt.Errorf("eval: detect %s/%s on %s: %w", tech, kind, vt.vehicleID, err)
			return
		}
		traces[i] = vehicleTrace{vehicleID: vt.vehicleID, trace: tr}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return traces, nil
}

// collectTraces runs one technique × transform over every vehicle on a
// sharded fleet.Engine, returning per-vehicle score traces. Transformer
// and detector construction errors propagate through the engine instead
// of crashing the process; the alarm stream is irrelevant here (the
// threshold sweep is replayed offline from the traces), so the engine
// runs in drop mode.
func collectTraces(spec *GridSpec, tech Technique, kind transform.Kind, vehicles []string) ([]vehicleTrace, error) {
	traces := make([]vehicleTrace, len(vehicles))
	byID := make(map[string]*core.Trace, len(vehicles))
	for i, v := range vehicles {
		tr := &core.Trace{}
		traces[i] = vehicleTrace{vehicleID: v, trace: tr}
		byID[v] = tr
	}
	eng, err := fleet.NewEngine(fleet.Config{
		NewConfig: func(vehicleID string) (core.Config, error) {
			tr, ok := byID[vehicleID]
			if !ok {
				return core.Config{}, fleet.ErrSkipVehicle
			}
			t, err := spec.newTransformer(kind)
			if err != nil {
				return core.Config{}, err
			}
			det, err := spec.newDetector(tech, t.FeatureNames())
			if err != nil {
				return core.Config{}, err
			}
			wf := timeseries.NewWarmupFilter(5, 20*time.Minute)
			return core.Config{
				Transformer:   t,
				Detector:      det,
				Thresholder:   thresholds.NewSelfTuning(3), // placeholder; sweep is replayed offline
				ProfileLength: spec.profileFor(kind),
				ResetPolicy:   spec.ResetPolicy,
				Filter:        wf.Keep,
				FilterState:   wf,
				Trace:         tr,
			}, nil
		},
		Shards:     spec.Parallelism,
		DropAlarms: true,
	})
	if err != nil {
		return nil, err
	}
	if err := eng.Replay(spec.Records, spec.Events); err != nil {
		eng.Close()
		return nil, err
	}
	if err := eng.Close(); err != nil {
		return nil, err
	}
	return traces, nil
}

// absFloorFor resolves the absolute std floor for a transform kind.
func absFloorFor(requested float64, kind transform.Kind) float64 {
	if requested > 0 {
		return requested
	}
	switch kind {
	case transform.Correlation, transform.Histogram, transform.Spectral:
		return 0.01
	default:
		return 0
	}
}

// cellKey identifies one (PH, setting) evaluation cell during the sweep.
type cellKey struct {
	ph      time.Duration
	setting string
}

// bestCells replays the threshold sweep over the traces in parallel and
// returns the best cell per (PH, setting). Per-parameter metrics are
// computed concurrently (each worker owns a sweepReplayer; the
// pre-floored calibration stds are shared read-only), then reduced
// serially in sweep order so tie-breaking — first strictly greater F0.5
// wins — is identical to the sequential implementation.
func bestCells(spec *GridSpec, tech Technique, kind transform.Kind, traces []vehicleTrace, sweep []float64, absFloor float64) ([]Cell, error) {
	constant := tech.UsesConstantThreshold()
	var segSD [][][]float64
	if !constant {
		segSD = precomputeSegSD(traces, absFloor)
	}
	failures := make(map[string][]obd.Event, len(spec.Settings))
	for setting, vehicles := range spec.Settings {
		failures[setting] = FilterEventsByVehicles(spec.Events, vehicles)
	}

	perParam := make([]map[cellKey]Metrics, len(sweep))
	workers := spec.Parallelism
	if workers > len(sweep) {
		workers = len(sweep)
	}
	if workers < 1 {
		workers = 1
	}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep := newSweepReplayer(traces, segSD, constant, spec.DensityM, spec.DensityK)
			for i := range idxCh {
				alarms := ConsolidateDaily(rep.replay(sweep[i]))
				res := make(map[cellKey]Metrics, len(spec.Settings)*len(spec.PHs))
				for setting, vehicles := range spec.Settings {
					settingAlarms := FilterByVehicles(alarms, vehicles)
					for _, ph := range spec.PHs {
						res[cellKey{ph, setting}] = Evaluate(settingAlarms, failures[setting], ph)
					}
				}
				perParam[i] = res
			}
		}()
	}
	for i := range sweep {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	best := map[cellKey]*Cell{}
	for i, param := range sweep {
		for k, m := range perParam[i] {
			cur := best[k]
			if cur == nil || m.F05 > cur.Best.F05 {
				best[k] = &Cell{
					Technique: tech, Transform: kind, PH: k.ph, Setting: k.setting,
					Best: m, BestParam: param,
				}
			}
		}
	}
	out := make([]Cell, 0, len(best))
	for _, c := range best {
		out = append(out, *c)
	}
	return out, nil
}

// bestCellsSequential is the original single-threaded sweep, kept as the
// oracle behind RunGridReference.
func bestCellsSequential(spec *GridSpec, tech Technique, kind transform.Kind, traces []vehicleTrace, sweep []float64, absFloor float64) ([]Cell, error) {
	best := map[cellKey]*Cell{}
	for _, param := range sweep {
		alarms := replayAlarmsDensity(traces, param, tech.UsesConstantThreshold(), spec.DensityM, spec.DensityK, absFloor)
		alarms = ConsolidateDaily(alarms)
		for setting, vehicles := range spec.Settings {
			settingAlarms := FilterByVehicles(alarms, vehicles)
			failures := FilterEventsByVehicles(spec.Events, vehicles)
			for _, ph := range spec.PHs {
				m := Evaluate(settingAlarms, failures, ph)
				k := cellKey{ph, setting}
				cur := best[k]
				if cur == nil || m.F05 > cur.Best.F05 {
					best[k] = &Cell{
						Technique: tech, Transform: kind, PH: ph, Setting: setting,
						Best: m, BestParam: param,
					}
				}
			}
		}
	}
	out := make([]Cell, 0, len(best))
	for _, c := range best {
		out = append(out, *c)
	}
	return out, nil
}

// precomputeSegSD flattens each trace's per-segment calibration stds
// through thresholds.FloorStd and the absolute floor once, so the sweep
// inner loop is a fused multiply-add per channel instead of recomputing
// the floor chain for every (sample, factor) pair.
func precomputeSegSD(traces []vehicleTrace, absFloor float64) [][][]float64 {
	out := make([][][]float64, len(traces))
	for ti, vt := range traces {
		segs := make([][]float64, len(vt.trace.SegCalib))
		for si, calib := range vt.trace.SegCalib {
			sds := make([]float64, len(calib.Stds))
			for c := range calib.Stds {
				sd := thresholds.FloorStd(calib.Stds[c], calib.Means[c])
				if sd < absFloor {
					sd = absFloor
				}
				sds[c] = sd
			}
			segs[si] = sds
		}
		out[ti] = segs
	}
	return out
}

// sweepReplayer replays one threshold parameter over a set of traces,
// reusing its violation ring and alarm buffer across calls so the sweep
// inner loop allocates only when alarms actually fire (and then only to
// grow the buffer). Not safe for concurrent use; each sweep worker owns
// one.
type sweepReplayer struct {
	traces   []vehicleTrace
	segSD    [][][]float64 // nil when constant
	constant bool
	m, k     int
	ring     []bool
	out      []detector.Alarm
}

func newSweepReplayer(traces []vehicleTrace, segSD [][][]float64, constant bool, m, k int) *sweepReplayer {
	if m < 1 {
		m = 1
	}
	if k < m {
		k = m
	}
	return &sweepReplayer{
		traces:   traces,
		segSD:    segSD,
		constant: constant,
		m:        m,
		k:        k,
		ring:     make([]bool, k),
	}
}

// replay converts the traces into alarms under one threshold parameter:
// self-tuning (mean + param·pre-floored-std from the segment's
// calibration stats) or constant. The returned slice is owned by the
// replayer and valid until the next call.
func (r *sweepReplayer) replay(param float64) []detector.Alarm {
	r.out = r.out[:0]
	for ti := range r.traces {
		vt := &r.traces[ti]
		tr := vt.trace
		for i := range r.ring {
			r.ring[i] = false
		}
		pos, count := 0, 0
		for i, scores := range tr.Scores {
			seg := tr.Segments[i]
			if seg < 0 || seg >= len(tr.SegCalib) {
				continue
			}
			violChan := -1
			var violScore, violTh float64
			if r.constant {
				for c, s := range scores {
					if s > param {
						violChan, violScore, violTh = c, s, param
						break
					}
				}
			} else {
				calib := &tr.SegCalib[seg]
				sds := r.segSD[ti][seg]
				for c, s := range scores {
					if c >= len(calib.Means) {
						continue
					}
					th := calib.Means[c] + param*sds[c]
					if s > th {
						violChan, violScore, violTh = c, s, th
						break
					}
				}
			}
			viol := violChan >= 0
			if r.ring[pos] {
				count--
			}
			r.ring[pos] = viol
			if viol {
				count++
			}
			pos = (pos + 1) % r.k
			if viol && count >= r.m {
				r.out = append(r.out, detector.Alarm{
					VehicleID: vt.vehicleID,
					Time:      tr.Times[i],
					Channel:   violChan,
					Score:     violScore,
					Threshold: violTh,
				})
			}
		}
	}
	return r.out
}

// replayAlarms converts traces into alarms under one threshold
// parameter: self-tuning (mean + factor·std from the segment's
// calibration stats) or constant.
func replayAlarms(traces []vehicleTrace, param float64, constant bool) []detector.Alarm {
	return replayAlarmsDensity(traces, param, constant, 1, 1, 0)
}

// replayAlarmsDensity is replayAlarms with density persistence: an alarm
// fires on samples where at least m of the vehicle's last k scored
// samples (including the current one) violate their thresholds.
func replayAlarmsDensity(traces []vehicleTrace, param float64, constant bool, m, k int, absFloor float64) []detector.Alarm {
	if m < 1 {
		m = 1
	}
	if k < m {
		k = m
	}
	var out []detector.Alarm
	ring := make([]bool, k)
	for _, vt := range traces {
		tr := vt.trace
		for i := range ring {
			ring[i] = false
		}
		pos, count := 0, 0
		for i, scores := range tr.Scores {
			seg := tr.Segments[i]
			if seg < 0 || seg >= len(tr.SegCalib) {
				continue
			}
			calib := tr.SegCalib[seg]
			violChan := -1
			var violScore, violTh float64
			for c, s := range scores {
				var th float64
				if constant {
					th = param
				} else {
					if c >= len(calib.Means) {
						continue
					}
					sd := thresholds.FloorStd(calib.Stds[c], calib.Means[c])
					if sd < absFloor {
						sd = absFloor
					}
					th = calib.Means[c] + param*sd
				}
				if s > th {
					violChan, violScore, violTh = c, s, th
					break
				}
			}
			viol := violChan >= 0
			if ring[pos] {
				count--
			}
			ring[pos] = viol
			if viol {
				count++
			}
			pos = (pos + 1) % k
			if viol && count >= m {
				out = append(out, detector.Alarm{
					VehicleID: vt.vehicleID,
					Time:      tr.Times[i],
					Channel:   violChan,
					Score:     violScore,
					Threshold: violTh,
				})
			}
		}
	}
	return out
}
