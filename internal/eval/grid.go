package eval

import (
	"fmt"
	"runtime"
	"time"

	"github.com/navarchos/pdm/internal/core"
	"github.com/navarchos/pdm/internal/detector"
	"github.com/navarchos/pdm/internal/fleet"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/thresholds"
	"github.com/navarchos/pdm/internal/timeseries"
	"github.com/navarchos/pdm/internal/transform"
)

// GridSpec describes a full comparative evaluation over technique ×
// transformation × prediction horizon × setting, with a threshold sweep
// per cell (the paper's Figures 4 and 5 protocol).
type GridSpec struct {
	Records []timeseries.Record
	Events  []obd.Event

	// Settings maps a setting name ("setting40", "setting26") to the
	// vehicle IDs it evaluates.
	Settings map[string][]string

	Techniques []Technique
	Transforms []transform.Kind
	PHs        []time.Duration

	// Factors is the self-tuning threshold sweep (closest-pair, TranAD,
	// XGBoost).
	Factors []float64
	// ConstThresholds is the constant-threshold sweep for Grand's
	// bounded deviation score.
	ConstThresholds []float64

	// Window is the tumbling-window length (records) for windowed
	// transforms.
	Window int
	// ProfileWindowed / ProfileRaw are Ref sizes in transformed samples
	// for windowed and per-record transforms respectively.
	ProfileWindowed int
	ProfileRaw      int

	// DensityM / DensityK implement density-based alarm persistence: an
	// alarm fires when at least M of the last K scored samples violate
	// their thresholds (defaults 4 of 12). Degradation preceding a
	// failure violates frequently but not strictly consecutively —
	// windows alternate between ride regimes with different fault
	// visibility — while healthy excursions are isolated; a density
	// criterion separates the two where strict consecutive-run rules
	// fail both.
	DensityM int
	DensityK int

	// AbsFloor is an absolute per-unit-of-factor floor added under the
	// calibration std when replaying self-tuning thresholds, i.e.
	// threshold = mean + factor·max(std, floors..., AbsFloor). For
	// bounded feature spaces (correlations in [-1, 1]) it encodes the
	// minimum deviation considered physically meaningful; 0 disables it.
	// When negative or unset it defaults per transform kind (0.01 for
	// correlation/histogram/spectral, 0 otherwise).
	AbsFloor float64

	ResetPolicy core.ResetPolicy
	Seed        int64
	// Parallelism caps concurrent per-vehicle runs (default: NumCPU).
	Parallelism int
}

func (s *GridSpec) defaults() {
	if len(s.Techniques) == 0 {
		s.Techniques = PaperTechniques()
	}
	if len(s.Transforms) == 0 {
		s.Transforms = transform.PaperKinds()
	}
	if len(s.PHs) == 0 {
		s.PHs = []time.Duration{15 * 24 * time.Hour, 30 * 24 * time.Hour}
	}
	if len(s.Factors) == 0 {
		s.Factors = []float64{2, 3, 4, 5, 7, 10, 14, 20, 28, 40, 60}
	}
	if len(s.ConstThresholds) == 0 {
		s.ConstThresholds = []float64{0.6, 0.8, 0.9, 0.95, 0.99, 0.999}
	}
	if s.Window <= 0 {
		s.Window = 12
	}
	if s.ProfileWindowed <= 0 {
		s.ProfileWindowed = 45
	}
	if s.ProfileRaw <= 0 {
		s.ProfileRaw = 900
	}
	if s.DensityM <= 0 {
		s.DensityM = 5
	}
	if s.DensityK < s.DensityM {
		s.DensityK = 15
		if s.DensityK < s.DensityM {
			s.DensityK = s.DensityM
		}
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Parallelism <= 0 {
		s.Parallelism = runtime.NumCPU()
	}
}

// profileFor returns the Ref size for a transform kind.
func (s *GridSpec) profileFor(k transform.Kind) int {
	switch k {
	case transform.Raw, transform.Delta:
		return s.ProfileRaw
	default:
		return s.ProfileWindowed
	}
}

// Cell is one bar of Figures 4/5: the best threshold's metrics for a
// (technique, transform, PH, setting) combination.
type Cell struct {
	Technique Technique
	Transform transform.Kind
	PH        time.Duration
	Setting   string
	Best      Metrics
	BestParam float64 // the winning threshold factor / constant
}

// TimingKey identifies a technique × transform timing entry (Table 1).
type TimingKey struct {
	Technique Technique
	Transform transform.Kind
}

// GridResult is the full outcome of RunGrid.
type GridResult struct {
	Cells []Cell
	// Timing holds the wall-clock duration of the full scoring pass
	// (all vehicles, fit + score) per technique × transform — the
	// repository's Table 1 equivalent.
	Timing map[TimingKey]time.Duration
}

// Cell returns the cell for the given coordinates, or nil.
func (g *GridResult) Cell(t Technique, k transform.Kind, ph time.Duration, setting string) *Cell {
	for i := range g.Cells {
		c := &g.Cells[i]
		if c.Technique == t && c.Transform == k && c.PH == ph && c.Setting == setting {
			return c
		}
	}
	return nil
}

// vehicleTrace pairs a vehicle with its scored trace.
type vehicleTrace struct {
	vehicleID string
	trace     *core.Trace
}

// RunGrid executes the full comparative grid. For every technique ×
// transform it runs each vehicle's stream once, recording score traces,
// then replays the threshold sweep offline and keeps the best-F0.5
// configuration per (PH, setting) cell — mirroring the paper's use of
// "multiple factors regarding the thresholding technique".
func RunGrid(spec GridSpec) (*GridResult, error) {
	spec.defaults()
	// The union of all settings is the vehicle universe to run.
	union := map[string]bool{}
	for _, vs := range spec.Settings {
		for _, v := range vs {
			union[v] = true
		}
	}
	if len(union) == 0 {
		return nil, fmt.Errorf("eval: RunGrid: no vehicles in any setting")
	}
	vehicles := make([]string, 0, len(union))
	for v := range union {
		vehicles = append(vehicles, v)
	}

	result := &GridResult{Timing: map[TimingKey]time.Duration{}}
	for _, tech := range spec.Techniques {
		for _, kind := range spec.Transforms {
			start := time.Now()
			traces, err := collectTraces(&spec, tech, kind, vehicles)
			if err != nil {
				return nil, err
			}
			result.Timing[TimingKey{tech, kind}] = time.Since(start)

			sweep := spec.Factors
			if tech.UsesConstantThreshold() {
				sweep = spec.ConstThresholds
			}
			cells, err := bestCells(&spec, tech, kind, traces, sweep, absFloorFor(spec.AbsFloor, kind))
			if err != nil {
				return nil, err
			}
			result.Cells = append(result.Cells, cells...)
		}
	}
	return result, nil
}

// collectTraces runs one technique × transform over every vehicle on a
// sharded fleet.Engine, returning per-vehicle score traces. Transformer
// and detector construction errors propagate through the engine instead
// of crashing the process; the alarm stream is irrelevant here (the
// threshold sweep is replayed offline from the traces), so the engine
// runs in drop mode.
func collectTraces(spec *GridSpec, tech Technique, kind transform.Kind, vehicles []string) ([]vehicleTrace, error) {
	traces := make([]vehicleTrace, len(vehicles))
	byID := make(map[string]*core.Trace, len(vehicles))
	for i, v := range vehicles {
		tr := &core.Trace{}
		traces[i] = vehicleTrace{vehicleID: v, trace: tr}
		byID[v] = tr
	}
	eng, err := fleet.NewEngine(fleet.Config{
		NewConfig: func(vehicleID string) (core.Config, error) {
			tr, ok := byID[vehicleID]
			if !ok {
				return core.Config{}, fleet.ErrSkipVehicle
			}
			t, err := transform.New(kind, spec.Window)
			if err != nil {
				return core.Config{}, err
			}
			det, err := NewDetector(tech, t.FeatureNames(), spec.Seed)
			if err != nil {
				return core.Config{}, err
			}
			return core.Config{
				Transformer:   t,
				Detector:      det,
				Thresholder:   thresholds.NewSelfTuning(3), // placeholder; sweep is replayed offline
				ProfileLength: spec.profileFor(kind),
				ResetPolicy:   spec.ResetPolicy,
				Filter:        timeseries.NewWarmupFilter(5, 20*time.Minute),
				Trace:         tr,
			}, nil
		},
		Shards:     spec.Parallelism,
		DropAlarms: true,
	})
	if err != nil {
		return nil, err
	}
	if err := eng.Replay(spec.Records, spec.Events); err != nil {
		eng.Close()
		return nil, err
	}
	if err := eng.Close(); err != nil {
		return nil, err
	}
	return traces, nil
}

// bestCells replays the threshold sweep over the traces and returns the
// best cell per (PH, setting).
// absFloorFor resolves the absolute std floor for a transform kind.
func absFloorFor(requested float64, kind transform.Kind) float64 {
	if requested > 0 {
		return requested
	}
	switch kind {
	case transform.Correlation, transform.Histogram, transform.Spectral:
		return 0.01
	default:
		return 0
	}
}

func bestCells(spec *GridSpec, tech Technique, kind transform.Kind, traces []vehicleTrace, sweep []float64, absFloor float64) ([]Cell, error) {
	type cellKey struct {
		ph      time.Duration
		setting string
	}
	best := map[cellKey]*Cell{}
	for _, param := range sweep {
		alarms := replayAlarmsDensity(traces, param, tech.UsesConstantThreshold(), spec.DensityM, spec.DensityK, absFloor)
		alarms = ConsolidateDaily(alarms)
		for setting, vehicles := range spec.Settings {
			settingAlarms := FilterByVehicles(alarms, vehicles)
			failures := FilterEventsByVehicles(spec.Events, vehicles)
			for _, ph := range spec.PHs {
				m := Evaluate(settingAlarms, failures, ph)
				k := cellKey{ph, setting}
				cur := best[k]
				if cur == nil || m.F05 > cur.Best.F05 {
					best[k] = &Cell{
						Technique: tech, Transform: kind, PH: ph, Setting: setting,
						Best: m, BestParam: param,
					}
				}
			}
		}
	}
	out := make([]Cell, 0, len(best))
	for _, c := range best {
		out = append(out, *c)
	}
	return out, nil
}

// replayAlarms converts traces into alarms under one threshold
// parameter: self-tuning (mean + factor·std from the segment's
// calibration stats) or constant.
func replayAlarms(traces []vehicleTrace, param float64, constant bool) []detector.Alarm {
	return replayAlarmsDensity(traces, param, constant, 1, 1, 0)
}

// replayAlarmsDensity is replayAlarms with density persistence: an alarm
// fires on samples where at least m of the vehicle's last k scored
// samples (including the current one) violate their thresholds.
func replayAlarmsDensity(traces []vehicleTrace, param float64, constant bool, m, k int, absFloor float64) []detector.Alarm {
	if m < 1 {
		m = 1
	}
	if k < m {
		k = m
	}
	var out []detector.Alarm
	ring := make([]bool, k)
	for _, vt := range traces {
		tr := vt.trace
		for i := range ring {
			ring[i] = false
		}
		pos, count := 0, 0
		for i, scores := range tr.Scores {
			seg := tr.Segments[i]
			if seg < 0 || seg >= len(tr.SegCalib) {
				continue
			}
			calib := tr.SegCalib[seg]
			violChan := -1
			var violScore, violTh float64
			for c, s := range scores {
				var th float64
				if constant {
					th = param
				} else {
					if c >= len(calib.Means) {
						continue
					}
					sd := thresholds.FloorStd(calib.Stds[c], calib.Means[c])
					if sd < absFloor {
						sd = absFloor
					}
					th = calib.Means[c] + param*sd
				}
				if s > th {
					violChan, violScore, violTh = c, s, th
					break
				}
			}
			viol := violChan >= 0
			if ring[pos] {
				count--
			}
			ring[pos] = viol
			if viol {
				count++
			}
			pos = (pos + 1) % k
			if viol && count >= m {
				out = append(out, detector.Alarm{
					VehicleID: vt.vehicleID,
					Time:      tr.Times[i],
					Channel:   violChan,
					Score:     violScore,
					Threshold: violTh,
				})
			}
		}
	}
	return out
}
