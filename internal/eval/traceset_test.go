package eval

import (
	"testing"
	"time"

	"github.com/navarchos/pdm/internal/fleetsim"
	"github.com/navarchos/pdm/internal/transform"
)

func TestCollectTraceSetAndEvaluate(t *testing.T) {
	f := fleetsim.Generate(fleetsim.SmallConfig())
	spec := GridSpec{
		Records:  f.Records,
		Events:   f.Events,
		Settings: map[string][]string{"s": f.EventVehicleIDs()},
	}
	ts, err := CollectTraceSet(spec, ClosestPair, transform.Correlation)
	if err != nil {
		t.Fatal(err)
	}
	// Alarms are daily-consolidated: at most one per vehicle-day.
	alarms := ts.Alarms(10)
	seen := map[string]bool{}
	for _, a := range alarms {
		key := a.VehicleID + a.Time.UTC().Truncate(24*time.Hour).String()
		if seen[key] {
			t.Fatal("Alarms not daily-consolidated")
		}
		seen[key] = true
	}
	// Higher factor never yields more alarms.
	if len(ts.Alarms(40)) > len(alarms) {
		t.Error("alarm count should be non-increasing in the factor")
	}
	m := ts.Evaluate(10, f.EventVehicleIDs(), 30*24*time.Hour)
	if m.TotalFailures == 0 {
		t.Fatal("no failures in evaluation universe")
	}
	// Failures helper matches the evaluation universe.
	fails := ts.Failures(f.EventVehicleIDs())
	if len(fails) != m.TotalFailures {
		t.Errorf("Failures() = %d, Evaluate saw %d", len(fails), m.TotalFailures)
	}
}

func TestBestJointParamIsSharedOptimum(t *testing.T) {
	f := fleetsim.Generate(fleetsim.SmallConfig())
	spec := GridSpec{
		Records:  f.Records,
		Events:   f.Events,
		Settings: map[string][]string{"s": f.EventVehicleIDs()},
		Factors:  []float64{5, 10, 20},
		PHs:      []time.Duration{30 * 24 * time.Hour},
	}
	ts, err := CollectTraceSet(spec, ClosestPair, transform.Correlation)
	if err != nil {
		t.Fatal(err)
	}
	best, metrics := ts.BestJointParam()
	if len(metrics) != 1 {
		t.Fatalf("expected 1 cell metric, got %d", len(metrics))
	}
	// No other sweep value may beat the chosen one on mean F0.5.
	bestScore := metrics[0].F05
	for _, p := range spec.Factors {
		if m := ts.Evaluate(p, f.EventVehicleIDs(), 30*24*time.Hour); m.F05 > bestScore+1e-12 {
			t.Errorf("param %v (F05=%v) beats chosen %v (F05=%v)", p, m.F05, best, bestScore)
		}
	}
}
