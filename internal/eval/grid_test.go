package eval

import (
	"testing"
	"time"

	"github.com/navarchos/pdm/internal/fleetsim"
	"github.com/navarchos/pdm/internal/transform"
)

func TestTechniqueMetadata(t *testing.T) {
	want := map[Technique]string{
		ClosestPair: "closest-pair", Grand: "grand", TranAD: "tranad", XGBoost: "xgboost",
	}
	for tech, name := range want {
		if tech.String() != name {
			t.Errorf("%d.String() = %q", tech, tech.String())
		}
		d, err := NewDetector(tech, []string{"a", "b", "c", "d", "e", "f"}, 1)
		if err != nil || d == nil {
			t.Errorf("NewDetector(%v) failed: %v", tech, err)
		}
	}
	if Technique(9).String() != "Technique(9)" {
		t.Error("unknown technique format")
	}
	if _, err := NewDetector(Technique(9), nil, 1); err == nil {
		t.Error("unknown technique should error")
	}
	if !Grand.UsesConstantThreshold() || ClosestPair.UsesConstantThreshold() {
		t.Error("constant-threshold flags wrong")
	}
	if len(PaperTechniques()) != 4 {
		t.Error("PaperTechniques should have 4 entries")
	}
}

func TestRunGridSmall(t *testing.T) {
	cfg := fleetsim.SmallConfig()
	f := fleetsim.Generate(cfg)
	spec := GridSpec{
		Records: f.Records,
		Events:  f.Events,
		Settings: map[string][]string{
			"settingAll":    f.AllVehicleIDs(),
			"settingEvents": f.EventVehicleIDs(),
		},
		Techniques:      []Technique{ClosestPair, Grand},
		Transforms:      []transform.Kind{transform.Correlation, transform.MeanAgg},
		PHs:             []time.Duration{15 * 24 * time.Hour, 30 * 24 * time.Hour},
		Factors:         []float64{3, 6},
		ConstThresholds: []float64{0.9, 0.99},
		Window:          15,
		ProfileWindowed: 25,
		ProfileRaw:      400,
	}
	res, err := RunGrid(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 2 techniques × 2 transforms × 2 PHs × 2 settings = 16 cells.
	if len(res.Cells) != 16 {
		t.Fatalf("got %d cells, want 16", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Best.Precision < 0 || c.Best.Precision > 1 || c.Best.Recall < 0 || c.Best.Recall > 1 {
			t.Errorf("cell %v/%v/%v/%s has invalid metrics %+v", c.Technique, c.Transform, c.PH, c.Setting, c.Best)
		}
		if c.Best.TotalFailures == 0 {
			t.Errorf("cell %s has no failures to detect", c.Setting)
		}
	}
	// Timing recorded for every technique × transform.
	if len(res.Timing) != 4 {
		t.Errorf("timing entries = %d, want 4", len(res.Timing))
	}
	for k, d := range res.Timing {
		if d <= 0 {
			t.Errorf("timing %v = %v", k, d)
		}
	}
	// Cell lookup.
	c := res.Cell(ClosestPair, transform.Correlation, 30*24*time.Hour, "settingEvents")
	if c == nil {
		t.Fatal("Cell lookup failed")
	}
	if res.Cell(TranAD, transform.Raw, time.Hour, "nope") != nil {
		t.Error("nonexistent cell should be nil")
	}
}

func TestRunGridClosestPairCorrelationDetects(t *testing.T) {
	// The headline sanity check: closest-pair on correlation data must
	// detect at least one failure with non-trivial precision on the
	// small fleet at PH=30d in the events setting.
	cfg := fleetsim.SmallConfig()
	f := fleetsim.Generate(cfg)
	spec := GridSpec{
		Records:    f.Records,
		Events:     f.Events,
		Settings:   map[string][]string{"setting": f.EventVehicleIDs()},
		Techniques: []Technique{ClosestPair},
		Transforms: []transform.Kind{transform.Correlation},
		PHs:        []time.Duration{30 * 24 * time.Hour},
	}
	res, err := RunGrid(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	t.Logf("closest-pair/correlation: F05=%.3f P=%.3f R=%.3f (TP=%d FP=%d of %d failures, param=%v)",
		c.Best.F05, c.Best.Precision, c.Best.Recall, c.Best.TP, c.Best.FP, c.Best.TotalFailures, c.BestParam)
	if c.Best.TP == 0 {
		t.Error("closest-pair on correlations detected no failures at all")
	}
	if c.Best.F05 < 0.2 {
		t.Errorf("closest-pair/correlation F05 = %v, implausibly low", c.Best.F05)
	}
}

func TestRunGridNoVehicles(t *testing.T) {
	if _, err := RunGrid(GridSpec{}); err == nil {
		t.Error("empty grid should error")
	}
}

func TestExtensionTechniques(t *testing.T) {
	exts := ExtensionTechniques()
	if len(exts) != 2 {
		t.Fatalf("expected 2 extension techniques, got %d", len(exts))
	}
	if IsolationForest.String() != "isolation-forest" || MLP.String() != "mlp" {
		t.Error("extension technique names wrong")
	}
	if !IsolationForest.UsesConstantThreshold() || MLP.UsesConstantThreshold() {
		t.Error("extension threshold kinds wrong")
	}
	for _, tech := range exts {
		d, err := NewDetector(tech, []string{"a", "b", "c"}, 1)
		if err != nil || d == nil {
			t.Fatalf("NewDetector(%v): %v", tech, err)
		}
		if err := d.Fit([][]float64{{1, 2, 3}, {2, 3, 4}, {3, 4, 5}, {1, 2, 3}}); err != nil {
			t.Fatalf("%v: Fit: %v", tech, err)
		}
		if _, err := d.Score([]float64{1, 2, 3}); err != nil {
			t.Fatalf("%v: Score: %v", tech, err)
		}
	}
}

func TestGridWithExtensionTechniques(t *testing.T) {
	f := fleetsim.Generate(fleetsim.SmallConfig())
	spec := GridSpec{
		Records:         f.Records,
		Events:          f.Events,
		Settings:        map[string][]string{"s": f.EventVehicleIDs()},
		Techniques:      ExtensionTechniques(),
		Transforms:      []transform.Kind{transform.Correlation},
		PHs:             []time.Duration{30 * 24 * time.Hour},
		Factors:         []float64{5, 14},
		ConstThresholds: []float64{0.6, 0.7},
	}
	res, err := RunGrid(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("expected 2 cells, got %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Best.Precision < 0 || c.Best.Precision > 1 {
			t.Errorf("%v: bad metrics %+v", c.Technique, c.Best)
		}
	}
}
