package fleetsim

import "testing"

func TestDebtAccumulatesAndResets(t *testing.T) {
	v := Vehicle{maintDays: []int{50, 120}}
	if got := v.debt(0); got != 0 {
		t.Errorf("debt at day 0 = %v, want 0", got)
	}
	// Day 40: 40 days since (virtual) day-0 baseline.
	if got := v.debt(40); got != 0.2 {
		t.Errorf("debt(40) = %v, want 0.2", got)
	}
	// Day 50: service day resets.
	if got := v.debt(50); got != 0 {
		t.Errorf("debt(50) = %v, want 0 (service day)", got)
	}
	// Day 100: 50 days after the day-50 service.
	if got := v.debt(100); got != 0.25 {
		t.Errorf("debt(100) = %v, want 0.25", got)
	}
	// Day 130: 10 days after the day-120 service.
	if got := v.debt(130); got != 0.05 {
		t.Errorf("debt(130) = %v, want 0.05", got)
	}
	// Saturates at 1.
	v2 := Vehicle{}
	if got := v2.debt(10_000); got != 1 {
		t.Errorf("debt should saturate at 1, got %v", got)
	}
}

func TestGeneratedFleetTracksMaintDays(t *testing.T) {
	f := Generate(SmallConfig())
	for i := range f.Vehicles {
		v := &f.Vehicles[i]
		// Every physical service/repair in HiddenEvents appears in
		// maintDays (debt is physical, independent of recording).
		count := 0
		for _, ev := range f.HiddenEvents {
			if ev.VehicleID == v.ID && ev.Type != 2 /* not DTC */ {
				count++
			}
		}
		if len(v.maintDays) != count {
			t.Errorf("%s: maintDays=%d, hidden maintenance events=%d", v.ID, len(v.maintDays), count)
		}
	}
}
