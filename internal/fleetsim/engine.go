package fleetsim

import (
	"math"
	"math/rand"

	"github.com/navarchos/pdm/internal/mat"
	"github.com/navarchos/pdm/internal/obd"
)

// engineState simulates one vehicle's powertrain minute by minute within
// a trip. The signal couplings are deliberately physical:
//
//	rpm  = idle + speed·gearing·(1+ε)            — strong rpm↔speed coupling
//	MAP  = base + gain·load                      — manifold pressure tracks load
//	MAF  = k · rpm · MAP / T_intake              — the speed-density equation
//	T_in = ambient + bayHeat·e^(−speed/40) + load heating
//	T_cool → regulated setpoint (healthy)        — i.e. ~uncorrelated once warm
//
// Faults perturb exactly one of those couplings (see faults.go), which
// is what makes the correlation transform discriminative.
type engineState struct {
	vehicle *Vehicle
	rng     *rand.Rand

	speed   float64
	coolant float64
	stopped int // minutes remaining stationary at a stop
	minute  int // minutes into the trip

	// Slow traffic/grade wander of the cruise target, so that every
	// analysis window contains genuine kinematic variation (steady
	// highway legs still see grades, traffic waves and overtakes).
	wanderAmp    float64
	wanderPeriod float64
	wanderPhase  float64

	// Day-level driver/vehicle volatility: an aggressive or economical
	// driving day scales engine load at a given speed, and tyre
	// pressure/wind scales the effective gearing. Both move raw signal
	// LEVELS day to day while leaving within-window correlations intact
	// — the paper's "driving behaviour and weather volatility" that
	// breaks raw-space methods.
	loadScale float64
	gearScale float64

	// ou is slowly varying (Ornstein–Uhlenbeck) process noise used by
	// the fault models: sensor contamination and leak geometry drift
	// over tens of minutes, not minute to minute, so faults corrupt
	// cross-signal correlations without lighting up the delta transform.
	ou1, ou2 float64

	// loadAvg and speedAvg are slow EWMAs of the engine's own operating
	// point; fault couplings are centred on them so that the injected
	// behavioural change stays level-free for every usage profile.
	loadAvg, speedAvg float64

	// debt is the vehicle's maintenance debt for the day (Vehicle.debt):
	// routine wear since the last physical service, mildly reshaping the
	// airflow and heat couplings. Services reset it — which is exactly
	// why ignoring service events (Table 3's ablation) leaves reference
	// profiles stale.
	debt float64
}

// newEngineState starts a trip with a cold-ish engine (coolant near
// ambient, a bit warmer if the engine ran recently).
func newEngineState(v *Vehicle, rng *rand.Rand, ambient float64, residualHeat float64, loadScale, gearScale float64) *engineState {
	return &engineState{
		vehicle:      v,
		rng:          rng,
		coolant:      ambient + residualHeat,
		wanderAmp:    12 + 7*rng.Float64(),
		wanderPeriod: 14 + 12*rng.Float64(),
		wanderPhase:  rng.Float64() * 2 * math.Pi,
		loadScale:    loadScale,
		gearScale:    gearScale,
		ou1:          rng.NormFloat64(),
		ou2:          rng.NormFloat64(),
		loadAvg:      0.5,
		speedAvg:     60,
	}
}

// step advances one minute of the given ride type at the given ambient
// temperature and fault severity, returning the six PID values.
func (e *engineState) step(ride rideParams, ambient, sev float64) [obd.NumPIDs]float64 {
	m := e.vehicle.Model
	prevSpeed := e.speed

	// --- kinematics -------------------------------------------------
	e.minute++
	if e.stopped > 0 {
		e.stopped--
		e.speed = 0
	} else if e.rng.Float64() < ride.stopProb {
		e.stopped = 1 + e.rng.Intn(2)
		e.speed = 0
	} else {
		wander := e.wanderAmp * math.Sin(2*math.Pi*float64(e.minute)/e.wanderPeriod+e.wanderPhase)
		target := ride.targetSpeed + wander + e.rng.NormFloat64()*ride.speedJitter
		if target < 0 {
			target = 0
		}
		// First-order approach toward the target plus noise.
		e.speed += (target-e.speed)*0.45 + e.rng.NormFloat64()*2.5
		if e.speed < 0 {
			e.speed = 0
		}
	}
	accel := e.speed - prevSpeed

	// Fault-noise processes with a few-minute correlation time: fast
	// enough to vary within an analysis window (breaking correlations),
	// slow enough not to light up the delta transform the way white
	// noise would.
	e.ou1 += -0.3*e.ou1 + 0.65*e.rng.NormFloat64()
	e.ou2 += -0.3*e.ou2 + 0.65*e.rng.NormFloat64()
	e.speedAvg += (e.speed - e.speedAvg) * 0.02

	// --- load & pressures -------------------------------------------
	load := (0.18 + 0.006*e.speed + 0.012*math.Max(accel, 0)) * e.loadScale
	load += 0.012 * e.rng.NormFloat64()
	load = mat.Clamp(load, 0.08, 1.0)
	e.loadAvg += (load - e.loadAvg) * 0.02

	var rpm float64
	if e.speed < 1 {
		rpm = m.IdleRPM + 25*e.rng.NormFloat64()
	} else {
		rpm = m.IdleRPM*0.35 + e.speed*m.RPMPerKmh*e.gearScale*(1+0.025*e.rng.NormFloat64())
	}
	if rpm < 600 {
		rpm = 600 + 20*e.rng.Float64()
	}

	mapKPa := m.MAPBase + m.MAPLoadGain*load + 0.8*e.rng.NormFloat64()
	// FaultIntakeLeak: unmetered air enters past the throttle; the
	// admitted flow fluctuates with the (unmodelled) leak geometry, so
	// MAP gains load-independent variance that decorrelates it from rpm
	// and speed, most visibly off-load.
	if e.vehicle.Fault == FaultIntakeLeak && sev > 0 {
		mapKPa += sev * (10*e.ou1 + 3*e.rng.NormFloat64())
	}
	mapKPa = mat.Clamp(mapKPa, 12, 250)

	// --- temperatures ------------------------------------------------
	intake := ambient + (17+4*e.debt)*math.Exp(-e.speed/40) + 7*load + 0.8*e.rng.NormFloat64()
	// FaultIntakeLeak: unmetered hot engine-bay air enters downstream of
	// the airbox, heating the intake charge erratically and decoupling
	// intake temperature from vehicle speed (ram-air no longer
	// dominates).
	if e.vehicle.Fault == FaultIntakeLeak && sev > 0 {
		intake += sev * 3.5 * e.ou2
	}
	intake = mat.Clamp(intake, -25, 85)

	// Healthy coolant: fast first-order rise while the thermostat is
	// closed (cold engine), then tight regulation at the setpoint with a
	// small load wiggle; once warm it is essentially decorrelated from
	// everything (that's what a thermostat is for).
	eqHealthy := m.Thermostat + 0.5*load - 0.2
	// Faulty equilibria are centred on the healthy operating point: the
	// paper's failures are essentially invisible in raw daily aggregates
	// (Section 2), so the injected faults shift LEVELS barely while the
	// coolant↔load/speed COUPLING — which a thermostat normally hides —
	// emerges clearly.
	var eq float64
	switch e.vehicle.Fault {
	case FaultThermostat:
		// Lost regulation: coolant tracks load and ram-air cooling
		// around the (roughly unchanged) mean.
		eq = eqHealthy + sev*(16*(load-e.loadAvg)-0.16*(e.speed-e.speedAvg)) - 4*sev*sev*sev
	case FaultHeadGasket:
		// Combustion gases in the jacket: temperature follows load
		// swings it normally ignores, overshooting slightly at the end.
		eq = eqHealthy + sev*24*(load-e.loadAvg) + 2*sev*sev*sev
	default:
		eq = eqHealthy
	}
	// A failing cooling circuit follows load swings faster than a
	// regulated one (no thermostat damping), tightening the within-
	// window coolant↔load coupling as severity grows.
	rate := 0.12 + 0.38*sev
	if e.coolant < eq-4 {
		rate = 0.30 // thermostat closed: rapid warm-up
	}
	e.coolant += (eq-e.coolant)*rate + 0.2*e.rng.NormFloat64()
	coolant := mat.Clamp(e.coolant, -25, 128)

	// --- airflow ------------------------------------------------------
	// Speed-density: MAF ∝ rpm · MAP / T_intake(K).
	maf := m.MAFScale * rpm * mapKPa / (intake + 273.15)
	// Maintenance debt: a clogging air filter restricts high flow
	// disproportionately, bending (not just scaling) the MAF↔rpm·MAP
	// coupling.
	maf -= e.debt * 0.012 * maf * maf
	maf *= 1 + 0.015*e.rng.NormFloat64()
	switch e.vehicle.Fault {
	case FaultMAFDrift:
		// Contamination under-reads and adds a slowly drifting bias that
		// is independent of the true flow — breaking MAF↔rpm and MAF↔MAP
		// without injecting minute-to-minute (delta-visible) noise.
		maf = maf*(1-0.06*sev*sev*sev) + sev*5*e.ou1
	case FaultHeadGasket:
		maf *= 1 - 0.10*sev
	}
	maf = mat.Clamp(maf, 0.3, 340)

	var out [obd.NumPIDs]float64
	out[obd.EngineRPM] = rpm
	out[obd.Speed] = e.speed
	out[obd.CoolantTemp] = coolant
	out[obd.IntakeTemp] = intake
	out[obd.MAPIntake] = mapKPa
	out[obd.MAFAirFlowRate] = maf
	return out
}

// ambientTemp returns the ambient temperature for a given simulated day
// and hour: a seasonal sinusoid plus a diurnal cycle plus day-level
// weather noise (deterministic per day via the provided value).
func ambientTemp(dayOfYear int, hour int, weatherNoise float64) float64 {
	seasonal := 12 + 10*math.Sin(2*math.Pi*float64(dayOfYear-100)/365)
	diurnal := 4 * math.Sin(2*math.Pi*float64(hour-9)/24)
	return seasonal + diurnal + weatherNoise
}
