package fleetsim

import (
	"fmt"
	"math"
)

// FaultKind enumerates the injected degradation mechanisms. Each one
// progressively breaks a physical coupling between signals — the
// behavioural change the paper's correlation transform is designed to
// expose — while moving raw levels only moderately compared to ordinary
// usage and weather variation.
type FaultKind int

const (
	// FaultNone means the vehicle never degrades.
	FaultNone FaultKind = iota
	// FaultThermostat models a thermostat stuck open: the coolant
	// temperature loses its regulated setpoint and starts tracking
	// airflow (speed) and load instead.
	FaultThermostat
	// FaultMAFDrift models a contaminated mass-airflow sensor: the MAF
	// reading decouples from the speed-density estimate rpm×MAP.
	FaultMAFDrift
	// FaultIntakeLeak models a leaking intake manifold: MAP rises at
	// low load, flattening the MAP↔rpm coupling.
	FaultIntakeLeak
	// FaultHeadGasket models early head-gasket failure: coolant
	// temperature becomes strongly load-dependent and airflow drops.
	FaultHeadGasket
	numFaultKinds
)

// String implements fmt.Stringer; the names double as repair notes.
func (f FaultKind) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultThermostat:
		return "thermostat stuck open"
	case FaultMAFDrift:
		return "MAF sensor drift"
	case FaultIntakeLeak:
		return "intake manifold leak"
	case FaultHeadGasket:
		return "head gasket failure"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(f))
	}
}

// cycleFault deterministically assigns the i-th failure a fault kind,
// cycling through the four mechanisms.
func cycleFault(i int) FaultKind {
	return FaultKind(1 + i%(int(numFaultKinds)-1))
}

// severity returns the degradation severity in [0, 1] for the given day,
// ramping linearly across the degradation window and saturating at 1 on
// the failure day. Zero outside the window or when no fault is set.
func (v *Vehicle) severity(day int) float64 {
	if v.Fault == FaultNone || v.FailureDay < 0 {
		return 0
	}
	start := v.FailureDay - v.DegradeDays
	if day < start || day > v.FailureDay {
		return 0
	}
	s := float64(day-start) / float64(v.DegradeDays)
	if s > 1 {
		s = 1
	}
	// Concave ramp: degradation progresses quickly at onset and then
	// saturates (a cracked hose or contaminated sensor does most of its
	// damage early), so behavioural change is already visible well
	// before the failure day — which is what makes PH=15 strictly
	// harder than PH=30 in the evaluation, as in the paper.
	return math.Pow(s, 0.75)
}
