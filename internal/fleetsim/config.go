// Package fleetsim generates synthetic vehicle-fleet telemetry that
// stands in for the proprietary Navarchos dataset analysed in the paper.
//
// The generator reproduces the dataset's documented statistics — 40
// vehicles, one year of operation at one measurement per minute while
// driving (~1.5M records), 121 recorded events on 26 of the 40 vehicles
// of which 9 are failures — and, more importantly, its documented
// *structure*:
//
//   - different vehicle models and usage regimes (urban, regional, long
//     and very short rides) move the raw signal levels around without
//     touching the cross-signal correlations, which is why raw-space
//     clustering and distance-based outlier detection fail (Section 2);
//   - failures are preceded by a degradation window during which the
//     physical couplings between signals progressively break (a stuck
//     thermostat decouples coolant temperature from its regulated
//     setpoint, a drifting MAF sensor decouples air flow from rpm×MAP,
//     ...), which is exactly the signature the correlation transform
//     exposes (Section 3);
//   - event recording is partial: only a subset of vehicles have any
//     events recorded, some failures happen on unmonitored vehicles, and
//     DTCs are noisy and mostly unrelated to failures (Figure 1).
//
// Everything is deterministic given Config.Seed.
package fleetsim

import "time"

// Config controls the synthetic fleet. The zero value is not valid; use
// DefaultConfig (paper scale) or SmallConfig (test/bench scale) and
// adjust fields as needed.
type Config struct {
	Seed int64

	// NumVehicles is the fleet size (paper: 40).
	NumVehicles int
	// Days is the number of simulated days (paper: ~365).
	Days int
	// Start is the first simulated day (midnight UTC).
	Start time.Time

	// AvgDriveMinutes is the average driving minutes per vehicle per
	// day; at one record per minute this determines dataset size
	// (paper: ~1.5M records / 40 vehicles / 365 days ≈ 103 min/day).
	AvgDriveMinutes float64

	// RecordedVehicles is how many vehicles have any events recorded by
	// the FMS (paper: 26 of 40).
	RecordedVehicles int
	// RecordedFailures is how many repair events are recorded, each on
	// a distinct recorded vehicle (paper: 9).
	RecordedFailures int
	// HiddenFailures is how many failures occur on vehicles without
	// event recording; they generate genuine anomalies that can only
	// ever count as false positives (the paper notes setting40 vehicles
	// "may have actual failures unknown to us").
	HiddenFailures int
	// ServiceIntervalDays is the nominal spacing of recorded standard
	// services (jittered ±25%). With 26 vehicles over a year the paper
	// total of 121 events implies roughly one service per vehicle per
	// ~85 days.
	ServiceIntervalDays int

	// DegradationDaysMin/Max bound the length of the pre-failure
	// degradation window during which fault severity ramps 0→1.
	DegradationDaysMin int
	DegradationDaysMax int

	// UsageDriftVehicles is how many vehicles switch usage regime
	// mid-simulation (stressing raw-data detectors exactly as weather
	// and driver volatility do in the paper).
	UsageDriftVehicles int
}

// DefaultConfig mirrors the paper's fleet: 40 vehicles, one year,
// ~103 driving minutes/day (≈1.5M records), 26 recorded vehicles,
// 9 recorded failures.
func DefaultConfig() Config {
	return Config{
		Seed:                1,
		NumVehicles:         40,
		Days:                365,
		Start:               time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC),
		AvgDriveMinutes:     103,
		RecordedVehicles:    26,
		RecordedFailures:    9,
		HiddenFailures:      3,
		ServiceIntervalDays: 85,
		DegradationDaysMin:  20,
		DegradationDaysMax:  32,
		UsageDriftVehicles:  6,
	}
}

// SmallConfig is a scaled-down fleet for tests and examples: same
// structure, ~2 orders of magnitude fewer records.
func SmallConfig() Config {
	c := DefaultConfig()
	c.NumVehicles = 8
	c.Days = 160
	c.AvgDriveMinutes = 95
	c.RecordedVehicles = 6
	c.RecordedFailures = 3
	c.HiddenFailures = 1
	c.ServiceIntervalDays = 50
	c.DegradationDaysMin = 18
	c.DegradationDaysMax = 28
	c.UsageDriftVehicles = 2
	return c
}

// BenchConfig sits between the two: large enough for the experiment
// harness to reproduce the paper's comparative shape, small enough that
// the full technique × transform grid runs in minutes on a laptop.
func BenchConfig() Config {
	c := DefaultConfig()
	c.NumVehicles = 40
	c.Days = 240
	c.AvgDriveMinutes = 95
	c.ServiceIntervalDays = 70
	return c
}

// validate normalises and sanity-checks the configuration.
func (c *Config) validate() {
	if c.NumVehicles < 1 {
		c.NumVehicles = 1
	}
	if c.Days < 30 {
		c.Days = 30
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.AvgDriveMinutes <= 0 {
		c.AvgDriveMinutes = 60
	}
	if c.RecordedVehicles > c.NumVehicles {
		c.RecordedVehicles = c.NumVehicles
	}
	if c.RecordedVehicles < 1 {
		c.RecordedVehicles = c.NumVehicles
	}
	if c.RecordedFailures > c.RecordedVehicles {
		c.RecordedFailures = c.RecordedVehicles
	}
	if c.HiddenFailures > c.NumVehicles-c.RecordedVehicles {
		c.HiddenFailures = c.NumVehicles - c.RecordedVehicles
	}
	if c.ServiceIntervalDays < 10 {
		c.ServiceIntervalDays = 10
	}
	if c.DegradationDaysMin < 5 {
		c.DegradationDaysMin = 5
	}
	if c.DegradationDaysMax < c.DegradationDaysMin {
		c.DegradationDaysMax = c.DegradationDaysMin
	}
}
