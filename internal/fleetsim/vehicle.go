package fleetsim

import "fmt"

// Model describes a vehicle model's engine characteristics. Different
// models shift raw signal levels (the single-vehicle clusters of
// Figure 2) without altering the physical couplings between signals.
type Model struct {
	Name        string
	RPMPerKmh   float64 // effective overall gearing: rpm ≈ idle + speed·RPMPerKmh
	IdleRPM     float64
	Thermostat  float64 // regulated coolant setpoint, °C
	MAFScale    float64 // volumetric-efficiency constant in the speed-density equation
	MAPBase     float64 // manifold pressure at zero load, kPa
	MAPLoadGain float64 // manifold pressure rise at full load, kPa
}

// The model catalogue. Indices matter only for deterministic assignment.
var models = []Model{
	{Name: "hatch-1.2", RPMPerKmh: 33, IdleRPM: 820, Thermostat: 88, MAFScale: 0.0105, MAPBase: 30, MAPLoadGain: 68},
	{Name: "sedan-1.6", RPMPerKmh: 28, IdleRPM: 780, Thermostat: 90, MAFScale: 0.0135, MAPBase: 32, MAPLoadGain: 70},
	{Name: "van-2.0d", RPMPerKmh: 24, IdleRPM: 850, Thermostat: 84, MAFScale: 0.0175, MAPBase: 36, MAPLoadGain: 85},
	{Name: "suv-2.2d", RPMPerKmh: 22, IdleRPM: 760, Thermostat: 86, MAFScale: 0.0190, MAPBase: 38, MAPLoadGain: 90},
	{Name: "pickup-2.4", RPMPerKmh: 26, IdleRPM: 800, Thermostat: 87, MAFScale: 0.0160, MAPBase: 34, MAPLoadGain: 80},
}

// RideType categorises a trip; each type induces a distinct raw-signal
// regime (the usage clusters of Figure 2) while preserving correlations.
type RideType int

const (
	RideUrban    RideType = iota // stop-and-go, 20–55 km/h
	RideShort                    // brief errands, engine often below temperature
	RideRegional                 // 60–90 km/h steady
	RideLong                     // long cruises, 80–110 km/h
	RideFast                     // high speed/rpm motorway legs
	numRideTypes
)

// String implements fmt.Stringer.
func (r RideType) String() string {
	switch r {
	case RideUrban:
		return "urban"
	case RideShort:
		return "short"
	case RideRegional:
		return "regional"
	case RideLong:
		return "long"
	case RideFast:
		return "fast"
	default:
		return fmt.Sprintf("RideType(%d)", int(r))
	}
}

// rideParams holds the trip-level kinematics of a ride type.
type rideParams struct {
	targetSpeed float64 // cruise target, km/h
	speedJitter float64 // short-term variation
	stopProb    float64 // probability per minute of a stop (urban lights)
	minMinutes  int
	maxMinutes  int
}

var rideCatalog = [numRideTypes]rideParams{
	RideUrban:    {targetSpeed: 38, speedJitter: 12, stopProb: 0.16, minMinutes: 12, maxMinutes: 45},
	RideShort:    {targetSpeed: 28, speedJitter: 9, stopProb: 0.12, minMinutes: 4, maxMinutes: 12},
	RideRegional: {targetSpeed: 74, speedJitter: 9, stopProb: 0.02, minMinutes: 25, maxMinutes: 70},
	RideLong:     {targetSpeed: 92, speedJitter: 7, stopProb: 0.005, minMinutes: 60, maxMinutes: 160},
	RideFast:     {targetSpeed: 112, speedJitter: 8, stopProb: 0.002, minMinutes: 30, maxMinutes: 90},
}

// UsageProfile is a vehicle's mixture over ride types; weights sum to 1.
type UsageProfile struct {
	Name    string
	Weights [numRideTypes]float64
}

var usageCatalog = []UsageProfile{
	{Name: "mixed", Weights: [numRideTypes]float64{0.45, 0.15, 0.25, 0.10, 0.05}},
	{Name: "city", Weights: [numRideTypes]float64{0.70, 0.20, 0.08, 0.02, 0.00}},
	{Name: "errand", Weights: [numRideTypes]float64{0.25, 0.65, 0.10, 0.00, 0.00}},
	{Name: "regional", Weights: [numRideTypes]float64{0.15, 0.05, 0.55, 0.20, 0.05}},
	{Name: "longhaul", Weights: [numRideTypes]float64{0.05, 0.02, 0.18, 0.45, 0.30}},
}

// Vehicle is the static description of one simulated vehicle.
type Vehicle struct {
	ID          string
	Model       Model
	Usage       UsageProfile
	DriftDay    int          // day the usage profile switches; -1 = never
	DriftUsage  UsageProfile // profile after DriftDay
	Recorded    bool         // whether the FMS records this vehicle's events
	FailureDay  int          // day of the (single) injected failure; -1 = none
	Fault       FaultKind    // fault behind the failure (FaultNone if none)
	DegradeDays int          // length of the pre-failure degradation ramp

	// maintDays lists every day (recorded or not) on which the vehicle
	// was physically serviced or repaired; routine wear accumulated
	// since the last such day (the "maintenance debt") is reset by it.
	maintDays []int
}

// debt returns the vehicle's maintenance debt in [0, 1] on the given
// day: routine wear (air-filter clogging, heat soak) accumulating since
// the last physical service or repair, saturating after ~200 days. It
// is what makes reference profiles gradually stale when service events
// are ignored (the paper's Table 3 ablation).
func (v *Vehicle) debt(day int) float64 {
	last := 0
	for _, d := range v.maintDays {
		if d <= day && d > last {
			last = d
		}
	}
	debt := float64(day-last) / 200
	if debt > 1 {
		debt = 1
	}
	return debt
}

// vehicleID formats the canonical vehicle identifier.
func vehicleID(i int) string { return fmt.Sprintf("veh-%02d", i) }
