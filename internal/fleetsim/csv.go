package fleetsim

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/timeseries"
)

const timeLayout = time.RFC3339

// WriteRecordsCSV writes telemetry records as CSV with a header row:
// vehicle,time,rpm,speed,coolantTemp,intakeTemp,mapIntake,MAFairFlowRate.
func WriteRecordsCSV(w io.Writer, recs []timeseries.Record) error {
	cw := csv.NewWriter(w)
	header := append([]string{"vehicle", "time"}, obd.PIDNames()...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("fleetsim: write header: %w", err)
	}
	row := make([]string, 2+int(obd.NumPIDs))
	for i := range recs {
		r := &recs[i]
		row[0] = r.VehicleID
		row[1] = r.Time.UTC().Format(timeLayout)
		for p := 0; p < int(obd.NumPIDs); p++ {
			row[2+p] = strconv.FormatFloat(r.Values[p], 'f', 3, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("fleetsim: write record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadRecordsCSV parses telemetry records written by WriteRecordsCSV.
func ReadRecordsCSV(r io.Reader) ([]timeseries.Record, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("fleetsim: read records csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("fleetsim: records csv is empty")
	}
	wantCols := 2 + int(obd.NumPIDs)
	out := make([]timeseries.Record, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != wantCols {
			return nil, fmt.Errorf("fleetsim: records csv row %d has %d columns, want %d", i+2, len(row), wantCols)
		}
		var rec timeseries.Record
		rec.VehicleID = row[0]
		rec.Time, err = time.Parse(timeLayout, row[1])
		if err != nil {
			return nil, fmt.Errorf("fleetsim: records csv row %d time: %w", i+2, err)
		}
		for p := 0; p < int(obd.NumPIDs); p++ {
			rec.Values[p], err = strconv.ParseFloat(row[2+p], 64)
			if err != nil {
				return nil, fmt.Errorf("fleetsim: records csv row %d col %s: %w", i+2, obd.PID(p), err)
			}
		}
		out = append(out, rec)
	}
	return out, nil
}

// WriteEventsCSV writes events as CSV: vehicle,time,type,dtc,note.
func WriteEventsCSV(w io.Writer, events []obd.Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"vehicle", "time", "type", "dtc", "note"}); err != nil {
		return fmt.Errorf("fleetsim: write events header: %w", err)
	}
	for i, ev := range events {
		dtc := ""
		if ev.DTC != nil {
			dtc = ev.DTC.Code + ":" + ev.DTC.Kind.String()
		}
		row := []string{ev.VehicleID, ev.Time.UTC().Format(timeLayout), ev.Type.String(), dtc, ev.Note}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("fleetsim: write event %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadEventsCSV parses events written by WriteEventsCSV.
func ReadEventsCSV(r io.Reader) ([]obd.Event, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("fleetsim: read events csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("fleetsim: events csv is empty")
	}
	out := make([]obd.Event, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != 5 {
			return nil, fmt.Errorf("fleetsim: events csv row %d has %d columns, want 5", i+2, len(row))
		}
		var ev obd.Event
		ev.VehicleID = row[0]
		ev.Time, err = time.Parse(timeLayout, row[1])
		if err != nil {
			return nil, fmt.Errorf("fleetsim: events csv row %d time: %w", i+2, err)
		}
		switch row[2] {
		case "service":
			ev.Type = obd.EventService
		case "repair":
			ev.Type = obd.EventRepair
		case "dtc":
			ev.Type = obd.EventDTC
		default:
			return nil, fmt.Errorf("fleetsim: events csv row %d: unknown type %q", i+2, row[2])
		}
		if row[3] != "" {
			var code, kind string
			if n, _ := fmt.Sscanf(row[3], "%5s:%s", &code, &kind); n >= 1 {
				d := obd.DTC{Code: code, Kind: obd.DTCPending}
				if kind == "stored" {
					d.Kind = obd.DTCStored
				}
				ev.DTC = &d
			}
		}
		ev.Note = row[4]
		out = append(out, ev)
	}
	return out, nil
}
