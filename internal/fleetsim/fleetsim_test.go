package fleetsim

import (
	"bytes"
	"testing"

	"github.com/navarchos/pdm/internal/mat"
	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/timeseries"
)

func TestGenerateSmallBasics(t *testing.T) {
	f := Generate(SmallConfig())
	if len(f.Vehicles) != 8 {
		t.Fatalf("vehicles = %d", len(f.Vehicles))
	}
	if len(f.Records) == 0 {
		t.Fatal("no records generated")
	}
	// Chronological order.
	for i := 1; i < len(f.Records); i++ {
		if f.Records[i].Time.Before(f.Records[i-1].Time) {
			t.Fatal("records not sorted by time")
		}
	}
	// All PID values inside physical envelopes.
	for i := range f.Records {
		r := &f.Records[i]
		for p := obd.PID(0); p < obd.NumPIDs; p++ {
			if !obd.InEnvelope(p, r.Values[p]) {
				t.Fatalf("record %d PID %s = %v outside envelope", i, p, r.Values[p])
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(SmallConfig())
	b := Generate(SmallConfig())
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs between runs", i)
		}
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("event counts differ")
	}
	c := SmallConfig()
	c.Seed = 999
	d := Generate(c)
	if len(d.Records) == len(a.Records) {
		same := true
		for i := range d.Records {
			if d.Records[i] != a.Records[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical fleets")
		}
	}
}

func TestGenerateFailuresAndRecording(t *testing.T) {
	cfg := SmallConfig()
	f := Generate(cfg)
	failures := f.FailureEvents()
	if len(failures) != cfg.RecordedFailures {
		t.Fatalf("recorded failures = %d, want %d", len(failures), cfg.RecordedFailures)
	}
	// Each recorded failure is on a distinct recorded vehicle.
	seen := map[string]bool{}
	for _, ev := range failures {
		if seen[ev.VehicleID] {
			t.Errorf("vehicle %s has two recorded failures", ev.VehicleID)
		}
		seen[ev.VehicleID] = true
		v := f.VehicleByID(ev.VehicleID)
		if v == nil || !v.Recorded {
			t.Errorf("failure on unrecorded/unknown vehicle %s", ev.VehicleID)
		}
		if v.Fault == FaultNone {
			t.Errorf("failing vehicle %s has no fault", ev.VehicleID)
		}
	}
	// No service/repair events recorded on unrecorded vehicles.
	recorded := map[string]bool{}
	for _, id := range f.RecordedVehicleIDs() {
		recorded[id] = true
	}
	for _, ev := range f.Events {
		if ev.Type != obd.EventDTC && !recorded[ev.VehicleID] {
			t.Errorf("maintenance event recorded for unrecorded vehicle %s", ev.VehicleID)
		}
	}
	// Hidden events must be a superset of recorded maintenance events.
	if len(f.HiddenEvents) <= len(f.Events)-countDTC(f.Events) {
		t.Error("hidden events should include unrecorded maintenance")
	}
	// setting26 universe: non-empty subset of recorded vehicles.
	ev26 := f.EventVehicleIDs()
	if len(ev26) == 0 || len(ev26) > cfg.RecordedVehicles {
		t.Errorf("EventVehicleIDs = %d vehicles", len(ev26))
	}
	if got := len(f.AllVehicleIDs()); got != cfg.NumVehicles {
		t.Errorf("AllVehicleIDs = %d", got)
	}
	if f.VehicleByID("nope") != nil {
		t.Error("VehicleByID of unknown ID should be nil")
	}
}

func countDTC(events []obd.Event) int {
	n := 0
	for _, ev := range events {
		if ev.Type == obd.EventDTC {
			n++
		}
	}
	return n
}

// TestFaultChangesCorrelationNotJustLevel is the core scientific
// property of the simulator: during late degradation the cross-signal
// correlation structure changes markedly relative to healthy operation
// of the SAME vehicle under the SAME usage, mirroring the paper's
// observation that failures are visible in correlation space.
func TestFaultChangesCorrelationNotJustLevel(t *testing.T) {
	cfg := SmallConfig()
	f := Generate(cfg)
	// Find a vehicle with a thermostat or head-gasket fault (coolant
	// coupling faults are the starkest).
	var target *Vehicle
	for i := range f.Vehicles {
		v := &f.Vehicles[i]
		if v.FailureDay >= 0 && (v.Fault == FaultThermostat || v.Fault == FaultHeadGasket || v.Fault == FaultMAFDrift) {
			target = v
			break
		}
	}
	if target == nil {
		t.Fatal("no suitable failing vehicle in small fleet")
	}
	byVehicle := timeseries.SplitByVehicle(f.Records)
	recs := timeseries.FilterRecords(byVehicle[target.ID], timeseries.CleanFilter)
	failT := f.dayTime(target.FailureDay, 19)
	degT := f.dayTime(target.FailureDay-target.DegradeDays, 0)
	var healthy, degraded []timeseries.Record
	for _, r := range recs {
		switch {
		case r.Time.Before(degT):
			healthy = append(healthy, r)
		case r.Time.After(degT.AddDate(0, 0, target.DegradeDays*3/4)) && r.Time.Before(failT):
			degraded = append(degraded, r)
		}
	}
	if len(healthy) < 500 || len(degraded) < 100 {
		t.Fatalf("not enough data: healthy=%d degraded=%d", len(healthy), len(degraded))
	}
	corrVec := func(rs []timeseries.Record) []float64 {
		rows := make([][]float64, len(rs))
		for i := range rs {
			rows[i] = rs[i].Slice()
		}
		m, err := mat.FromRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		cm, err := m.CorrelationMatrix()
		if err != nil {
			t.Fatal(err)
		}
		ut, err := cm.UpperTriangle()
		if err != nil {
			t.Fatal(err)
		}
		return ut
	}
	ch := corrVec(healthy)
	cd := corrVec(degraded)
	dist, err := mat.Euclidean(ch, cd)
	if err != nil {
		t.Fatal(err)
	}
	if dist < 0.25 {
		t.Errorf("correlation shift between healthy and degraded = %.3f, want noticeable (>= 0.25); fault=%v", dist, target.Fault)
	}

	// Control: a healthy vehicle split into two halves must show a much
	// smaller correlation shift.
	var control *Vehicle
	for i := range f.Vehicles {
		v := &f.Vehicles[i]
		if v.FailureDay < 0 && v.DriftDay < 0 {
			control = v
			break
		}
	}
	if control == nil {
		t.Fatal("no healthy control vehicle")
	}
	crecs := timeseries.FilterRecords(byVehicle[control.ID], timeseries.CleanFilter)
	half := len(crecs) / 2
	c1 := corrVec(crecs[:half])
	c2 := corrVec(crecs[half:])
	cdist, _ := mat.Euclidean(c1, c2)
	if cdist >= dist {
		t.Errorf("healthy control correlation shift (%.3f) not smaller than fault shift (%.3f)", cdist, dist)
	}
}

func TestSeverityRamp(t *testing.T) {
	v := Vehicle{Fault: FaultThermostat, FailureDay: 100, DegradeDays: 20}
	if v.severity(79) != 0 {
		t.Error("severity before window should be 0")
	}
	// Concave ramp: severity at mid-window is (0.5)^0.75 ≈ 0.59.
	if got := v.severity(90); !(got > 0.55 && got < 0.65) {
		t.Errorf("mid-window severity = %v", got)
	}
	// Monotone non-decreasing across the window.
	prev := 0.0
	for d := 80; d <= 100; d++ {
		s := v.severity(d)
		if s < prev {
			t.Errorf("severity not monotone at day %d: %v < %v", d, s, prev)
		}
		prev = s
	}
	if v.severity(100) != 1 {
		t.Errorf("failure-day severity = %v, want 1", v.severity(100))
	}
	if v.severity(101) != 0 {
		t.Error("severity after repair should be 0")
	}
	h := Vehicle{Fault: FaultNone, FailureDay: -1}
	if h.severity(50) != 0 {
		t.Error("healthy vehicle severity should be 0")
	}
}

func TestDTCPatterns(t *testing.T) {
	f := Generate(SmallConfig())
	var failing []*Vehicle
	for i := range f.Vehicles {
		if f.Vehicles[i].Recorded && f.Vehicles[i].FailureDay >= 0 {
			failing = append(failing, &f.Vehicles[i])
		}
	}
	if len(failing) == 0 {
		t.Skip("no recorded failing vehicles")
	}
	// Vehicle-1 pattern: DTCs after repair only.
	v := failing[0]
	failT := f.dayTime(v.FailureDay, 19)
	for _, ev := range f.Events {
		if ev.VehicleID == v.ID && ev.Type == obd.EventDTC && ev.Time.Before(failT) {
			t.Errorf("pattern-1 vehicle %s has a DTC before its failure", v.ID)
		}
	}
	after := 0
	for _, ev := range f.Events {
		if ev.VehicleID == v.ID && ev.Type == obd.EventDTC && ev.Time.After(failT) {
			after++
		}
	}
	if after == 0 {
		t.Errorf("pattern-1 vehicle %s should emit DTCs after repair", v.ID)
	}
	// Vehicles 2/3 pattern: no DTCs at all.
	if len(failing) > 2 {
		for _, vv := range failing[1:3] {
			for _, ev := range f.Events {
				if ev.VehicleID == vv.ID && ev.Type == obd.EventDTC {
					t.Errorf("pattern-2/3 vehicle %s should have no DTCs", vv.ID)
				}
			}
		}
	}
}

func TestStringers(t *testing.T) {
	if FaultThermostat.String() == "" || FaultKind(99).String() == "" {
		t.Error("FaultKind.String broken")
	}
	if RideUrban.String() != "urban" || RideType(99).String() == "" {
		t.Error("RideType.String broken")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cfg := SmallConfig()
	cfg.Days = 40
	cfg.NumVehicles = 2
	cfg.RecordedVehicles = 2
	cfg.RecordedFailures = 1
	cfg.HiddenFailures = 0
	f := Generate(cfg)

	var buf bytes.Buffer
	if err := WriteRecordsCSV(&buf, f.Records[:200]); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecordsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("round-tripped %d records, want 200", len(got))
	}
	for i := range got {
		if got[i].VehicleID != f.Records[i].VehicleID || !got[i].Time.Equal(f.Records[i].Time) {
			t.Fatalf("record %d identity mismatch", i)
		}
		for p := 0; p < int(obd.NumPIDs); p++ {
			d := got[i].Values[p] - f.Records[i].Values[p]
			if d > 0.001 || d < -0.001 {
				t.Fatalf("record %d PID %d: %v vs %v", i, p, got[i].Values[p], f.Records[i].Values[p])
			}
		}
	}

	buf.Reset()
	if err := WriteEventsCSV(&buf, f.Events); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadEventsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(f.Events) {
		t.Fatalf("round-tripped %d events, want %d", len(evs), len(f.Events))
	}
	for i := range evs {
		if evs[i].VehicleID != f.Events[i].VehicleID || evs[i].Type != f.Events[i].Type || !evs[i].Time.Equal(f.Events[i].Time) {
			t.Fatalf("event %d mismatch: %v vs %v", i, evs[i], f.Events[i])
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadRecordsCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty records csv should error")
	}
	if _, err := ReadRecordsCSV(bytes.NewBufferString("a,b\n1,2\n")); err == nil {
		t.Error("wrong column count should error")
	}
	if _, err := ReadEventsCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty events csv should error")
	}
	bad := "vehicle,time,type,dtc,note\nv1,2023-01-01T00:00:00Z,banana,,\n"
	if _, err := ReadEventsCSV(bytes.NewBufferString(bad)); err == nil {
		t.Error("unknown event type should error")
	}
}

func TestDefaultConfigScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation skipped in -short mode")
	}
	f := Generate(DefaultConfig())
	// Paper: ~1.5M records. Accept a generous band.
	if n := len(f.Records); n < 1_000_000 || n > 2_200_000 {
		t.Errorf("default fleet has %d records, want ~1.5M", n)
	}
	// Paper: 121 recorded events (services + repairs, excluding DTCs).
	maint := 0
	for _, ev := range f.Events {
		if ev.Type != obd.EventDTC {
			maint++
		}
	}
	if maint < 90 || maint > 160 {
		t.Errorf("recorded maintenance events = %d, want ≈121", maint)
	}
	if got := len(f.FailureEvents()); got != 9 {
		t.Errorf("recorded failures = %d, want 9", got)
	}
	if got := len(f.EventVehicleIDs()); got < 20 || got > 26 {
		t.Errorf("vehicles with events = %d, want ≈26", got)
	}
}

func TestValidateClamps(t *testing.T) {
	c := Config{Seed: 1, NumVehicles: 0, Days: 1, RecordedVehicles: 100, RecordedFailures: 50, HiddenFailures: 50}
	c.validate()
	if c.NumVehicles != 1 || c.Days != 30 {
		t.Errorf("clamps wrong: %+v", c)
	}
	if c.RecordedVehicles > c.NumVehicles || c.RecordedFailures > c.RecordedVehicles {
		t.Errorf("recording clamps wrong: %+v", c)
	}
	if c.HiddenFailures != 0 {
		t.Errorf("hidden failures should clamp to 0, got %d", c.HiddenFailures)
	}
}
