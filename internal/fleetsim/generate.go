package fleetsim

import (
	"math/rand"
	"sort"
	"time"

	"github.com/navarchos/pdm/internal/obd"
	"github.com/navarchos/pdm/internal/timeseries"
)

// Fleet is a generated synthetic dataset: telemetry records, the events
// the FMS actually sees (partial), and the full ground truth.
type Fleet struct {
	Config   Config
	Vehicles []Vehicle

	// Records holds all PID measurements, sorted chronologically.
	Records []timeseries.Record

	// Events is what the FMS records: services and repairs for recorded
	// vehicles only, plus DTC emissions for every vehicle (DTCs arrive
	// over the telemetry link, not via workshop reports).
	Events []obd.Event

	// HiddenEvents is the complete ground truth including maintenance
	// on unrecorded vehicles. Evaluation never uses it; it exists to
	// document what the partial-information setting hides.
	HiddenEvents []obd.Event
}

// Generate builds a deterministic synthetic fleet from cfg.
func Generate(cfg Config) *Fleet {
	cfg.validate()
	f := &Fleet{Config: cfg}
	f.assignVehicles()
	f.scheduleMaintenance()
	f.scheduleDTCs()
	f.generateTelemetry()
	sort.SliceStable(f.Records, func(i, j int) bool { return f.Records[i].Time.Before(f.Records[j].Time) })
	sort.SliceStable(f.Events, func(i, j int) bool { return f.Events[i].Time.Before(f.Events[j].Time) })
	sort.SliceStable(f.HiddenEvents, func(i, j int) bool { return f.HiddenEvents[i].Time.Before(f.HiddenEvents[j].Time) })
	return f
}

// assignVehicles gives every vehicle a model, usage profile, recording
// flag, optional usage drift, and optional failure.
func (f *Fleet) assignVehicles() {
	cfg := f.Config
	rng := rand.New(rand.NewSource(cfg.Seed*7919 + 13))
	f.Vehicles = make([]Vehicle, cfg.NumVehicles)
	for i := range f.Vehicles {
		v := &f.Vehicles[i]
		v.ID = vehicleID(i)
		v.Model = models[i%len(models)]
		v.Usage = usageCatalog[(i/len(models)+i)%len(usageCatalog)]
		v.Recorded = i < cfg.RecordedVehicles
		v.DriftDay = -1
		v.FailureDay = -1
		v.Fault = FaultNone
	}
	// Usage drift on a deterministic subset (spread across the fleet).
	for k := 0; k < cfg.UsageDriftVehicles && k < cfg.NumVehicles; k++ {
		idx := (k*7 + 3) % cfg.NumVehicles
		v := &f.Vehicles[idx]
		v.DriftDay = cfg.Days/3 + rng.Intn(cfg.Days/3)
		v.DriftUsage = usageCatalog[(k+2)%len(usageCatalog)]
	}
	// Recorded failures: spread across distinct recorded vehicles.
	for k := 0; k < cfg.RecordedFailures; k++ {
		idx := (k * cfg.RecordedVehicles) / cfg.RecordedFailures
		v := &f.Vehicles[idx]
		v.Fault = cycleFault(k)
		v.DegradeDays = cfg.DegradationDaysMin + rng.Intn(cfg.DegradationDaysMax-cfg.DegradationDaysMin+1)
		lo := v.DegradeDays + cfg.Days/4
		hi := cfg.Days - 8
		if hi <= lo {
			hi = lo + 1
		}
		v.FailureDay = lo + rng.Intn(hi-lo)
	}
	// Hidden failures on unrecorded vehicles.
	for k := 0; k < cfg.HiddenFailures; k++ {
		idx := cfg.RecordedVehicles + (k*max(1, cfg.NumVehicles-cfg.RecordedVehicles))/max(1, cfg.HiddenFailures)
		if idx >= cfg.NumVehicles {
			break
		}
		v := &f.Vehicles[idx]
		v.Fault = cycleFault(k + 2)
		v.DegradeDays = cfg.DegradationDaysMin + rng.Intn(cfg.DegradationDaysMax-cfg.DegradationDaysMin+1)
		lo := v.DegradeDays + cfg.Days/4
		hi := cfg.Days - 8
		if hi <= lo {
			hi = lo + 1
		}
		v.FailureDay = lo + rng.Intn(hi-lo)
	}
}

// scheduleMaintenance lays out services and repairs. Services on
// recorded vehicles are recorded; everything on unrecorded vehicles goes
// to HiddenEvents only. Repairs terminate the vehicle's fault.
func (f *Fleet) scheduleMaintenance() {
	cfg := f.Config
	rng := rand.New(rand.NewSource(cfg.Seed*104729 + 29))
	for i := range f.Vehicles {
		v := &f.Vehicles[i]
		// Periodic services with ±25% jitter. A first service lands
		// somewhere in the first interval so profiles reset early.
		interval := cfg.ServiceIntervalDays
		day := interval/3 + rng.Intn(interval)
		for day < cfg.Days {
			// Workshops catch imminent failures; skip services falling
			// in the last stretch of a degradation window.
			inLateDegradation := v.FailureDay >= 0 && day > v.FailureDay-18 && day <= v.FailureDay
			if !inLateDegradation {
				ev := obd.Event{
					VehicleID: v.ID,
					Time:      f.dayTime(day, 18),
					Type:      obd.EventService,
					Note:      "standard service",
				}
				f.HiddenEvents = append(f.HiddenEvents, ev)
				v.maintDays = append(v.maintDays, day)
				if v.Recorded {
					f.Events = append(f.Events, ev)
				}
			}
			jitter := rng.Intn(interval/2+1) - interval/4
			day += interval + jitter
		}
		if v.FailureDay >= 0 {
			ev := obd.Event{
				VehicleID: v.ID,
				Time:      f.dayTime(v.FailureDay, 19),
				Type:      obd.EventRepair,
				Note:      v.Fault.String(),
			}
			f.HiddenEvents = append(f.HiddenEvents, ev)
			v.maintDays = append(v.maintDays, v.FailureDay)
			if v.Recorded {
				f.Events = append(f.Events, ev)
			}
		}
	}
}

// scheduleDTCs reproduces the Figure 1 reality: DTCs mostly unrelated to
// failures. Among the failing recorded vehicles, the first emits stored
// codes long AFTER its repair without needing one, the second and third
// emit nothing at all, and the fourth emits codes shortly before its
// failure — the single helpful case. A few healthy vehicles emit
// sporadic pending codes.
func (f *Fleet) scheduleDTCs() {
	cfg := f.Config
	rng := rand.New(rand.NewSource(cfg.Seed*15485863 + 41))
	var failing []*Vehicle
	for i := range f.Vehicles {
		if f.Vehicles[i].Recorded && f.Vehicles[i].FailureDay >= 0 {
			failing = append(failing, &f.Vehicles[i])
		}
	}
	emit := func(v *Vehicle, day int, code obd.DTC) {
		if day < 0 || day >= cfg.Days {
			return
		}
		d := code
		ev := obd.Event{VehicleID: v.ID, Time: f.dayTime(day, 12), Type: obd.EventDTC, DTC: &d}
		f.Events = append(f.Events, ev)
		f.HiddenEvents = append(f.HiddenEvents, ev)
	}
	if len(failing) > 0 {
		// Vehicle 1 pattern: stored codes for ~60 days after repair.
		v := failing[0]
		for day := v.FailureDay + 3; day < v.FailureDay+60 && day < cfg.Days; day += 3 + rng.Intn(4) {
			emit(v, day, obd.DTCMisfire)
		}
	}
	if len(failing) > 3 {
		// Vehicle 4 pattern: codes in the 12 days before the failure.
		v := failing[3]
		for day := v.FailureDay - 12; day < v.FailureDay; day += 2 + rng.Intn(3) {
			emit(v, day, obd.DTCThermostat)
		}
	}
	// Sporadic pending codes on a few healthy vehicles.
	codes := obd.KnownDTCs()
	for k := 0; k < 4 && k < cfg.NumVehicles; k++ {
		idx := (k*11 + 5) % cfg.NumVehicles
		v := &f.Vehicles[idx]
		if v.FailureDay >= 0 {
			continue
		}
		n := 1 + rng.Intn(3)
		for j := 0; j < n; j++ {
			emit(v, rng.Intn(cfg.Days), codes[rng.Intn(len(codes))])
		}
	}
}

// generateTelemetry simulates every vehicle day by day, trip by trip, at
// one record per minute of driving.
func (f *Fleet) generateTelemetry() {
	cfg := f.Config
	// Day-level weather noise shared by the whole fleet.
	weatherRng := rand.New(rand.NewSource(cfg.Seed*2654435761 + 99))
	weather := make([]float64, cfg.Days)
	for d := range weather {
		weather[d] = weatherRng.NormFloat64() * 3
	}
	startDOY := cfg.Start.YearDay()

	for i := range f.Vehicles {
		v := &f.Vehicles[i]
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(i)*7_368_787))
		for day := 0; day < cfg.Days; day++ {
			// Occasional idle days.
			if rng.Float64() < 0.06 {
				continue
			}
			sev := v.severity(day)
			debt := v.debt(day)
			usage := v.Usage
			if v.DriftDay >= 0 && day >= v.DriftDay {
				usage = v.DriftUsage
			}
			// Total driving minutes today: lognormal-ish around the
			// configured average, lighter on "weekends" (every 6th/7th
			// simulated day).
			factor := 0.55 + rng.Float64()*1.1
			if day%7 >= 5 {
				factor *= 0.6
			}
			minutes := int(cfg.AvgDriveMinutes * factor)
			cursor := 6*60 + rng.Intn(150) // first departure 06:00–08:30
			trip := 0
			// Day-level volatility: driver aggressiveness and
			// tyre/wind conditions for the whole day.
			loadScale := 0.93 + 0.14*rng.Float64()
			gearScale := 0.98 + 0.04*rng.Float64()
			for minutes > 8 && cursor < 22*60 {
				ride := sampleRide(usage, rng)
				p := rideCatalog[ride]
				dur := p.minMinutes + rng.Intn(p.maxMinutes-p.minMinutes+1)
				if dur > minutes {
					dur = minutes
				}
				residual := 2.0
				if trip > 0 {
					residual = 25 + rng.Float64()*20 // engine still warm
				}
				dayOfYear := (startDOY + day - 1) % 365
				amb := ambientTemp(dayOfYear, cursor/60, weather[day])
				eng := newEngineState(v, rng, amb, residual, loadScale, gearScale)
				eng.debt = debt
				base := f.dayTime(day, 0).Add(time.Duration(cursor) * time.Minute)
				for m := 0; m < dur; m++ {
					vals := eng.step(p, amb, sev)
					f.Records = append(f.Records, timeseries.Record{
						VehicleID: v.ID,
						Time:      base.Add(time.Duration(m) * time.Minute),
						Values:    vals,
					})
				}
				minutes -= dur
				cursor += dur + 20 + rng.Intn(120) // gap before next trip
				trip++
			}
		}
	}
}

// sampleRide draws a ride type from the usage mixture.
func sampleRide(u UsageProfile, rng *rand.Rand) RideType {
	x := rng.Float64()
	var cum float64
	for r := RideType(0); r < numRideTypes; r++ {
		cum += u.Weights[r]
		if x < cum {
			return r
		}
	}
	return RideUrban
}

// dayTime returns the time at the given hour of simulated day d.
func (f *Fleet) dayTime(d, hour int) time.Time {
	return f.Config.Start.AddDate(0, 0, d).Add(time.Duration(hour) * time.Hour)
}

// RecordedVehicleIDs returns the IDs of vehicles whose maintenance
// events are recorded (the setting40 universe is all vehicles; this is
// the candidate set for setting26).
func (f *Fleet) RecordedVehicleIDs() []string {
	var out []string
	for i := range f.Vehicles {
		if f.Vehicles[i].Recorded {
			out = append(out, f.Vehicles[i].ID)
		}
	}
	return out
}

// EventVehicleIDs returns the IDs of vehicles with at least one recorded
// service or repair — the paper's setting26 subset.
func (f *Fleet) EventVehicleIDs() []string {
	seen := map[string]bool{}
	for _, ev := range f.Events {
		if ev.Type == obd.EventService || ev.Type == obd.EventRepair {
			seen[ev.VehicleID] = true
		}
	}
	out := make([]string, 0, len(seen))
	for i := range f.Vehicles {
		if seen[f.Vehicles[i].ID] {
			out = append(out, f.Vehicles[i].ID)
		}
	}
	return out
}

// AllVehicleIDs returns every vehicle ID in index order.
func (f *Fleet) AllVehicleIDs() []string {
	out := make([]string, len(f.Vehicles))
	for i := range f.Vehicles {
		out[i] = f.Vehicles[i].ID
	}
	return out
}

// FailureEvents returns the recorded repair events — the ground truth
// the evaluation scores against.
func (f *Fleet) FailureEvents() []obd.Event {
	var out []obd.Event
	for _, ev := range f.Events {
		if ev.Type == obd.EventRepair {
			out = append(out, ev)
		}
	}
	return out
}

// VehicleByID returns the vehicle with the given ID, or nil.
func (f *Fleet) VehicleByID(id string) *Vehicle {
	for i := range f.Vehicles {
		if f.Vehicles[i].ID == id {
			return &f.Vehicles[i]
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
